// Package fastrl's benchmark harness: one testing.B benchmark per paper
// table and figure, each regenerating the artefact through the
// internal/experiments runners in quick mode. Run all of them with
//
//	go test -bench=. -benchmem
//
// and individual artefacts with e.g. -bench=BenchmarkTable5. For
// full-scale outputs use cmd/tltbench instead (no -quick).
package fastrl

import (
	"testing"

	"fastrl/internal/experiments"
)

// benchExperiment runs one experiment per iteration and reports its key
// scalar (first numeric output) so regressions in the *shape* metrics are
// visible in benchmark diffs.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Tables) == 0 && len(r.Series) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

// ---- Figures.

func BenchmarkFig1a(b *testing.B) { benchExperiment(b, "fig1a") }
func BenchmarkFig2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3a(b *testing.B) { benchExperiment(b, "fig3a") }
func BenchmarkFig5c(b *testing.B) { benchExperiment(b, "fig5c") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }

// ---- Tables.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "tab2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "tab3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "tab4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "tab5") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "tab6") }
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "tab7") }
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "tab8") }

// ---- Design-choice ablations (DESIGN.md).

func BenchmarkAblationElastic(b *testing.B)    { benchExperiment(b, "abl-elastic") }
func BenchmarkAblationMAB(b *testing.B)        { benchExperiment(b, "abl-mab") }
func BenchmarkAblationDataBuffer(b *testing.B) { benchExperiment(b, "abl-buffer") }
func BenchmarkAblationTree(b *testing.B)       { benchExperiment(b, "abl-tree") }
func BenchmarkAblationSpot(b *testing.B)       { benchExperiment(b, "abl-spot") }

// ---- Discussion scenarios (paper §7).

func BenchmarkDiscussionMultiTurn(b *testing.B) { benchExperiment(b, "disc-multiturn") }
func BenchmarkDiscussionUniform(b *testing.B)   { benchExperiment(b, "disc-uniform") }
func BenchmarkDiscussionEarlyStop(b *testing.B) { benchExperiment(b, "disc-earlystop") }
