// Command tltbench regenerates the paper's tables and figures from the
// simulator. Run `tltbench -list` for available experiments, then e.g.
//
//	tltbench -exp fig11
//	tltbench -exp all -quick
//	tltbench -exp all -quick -json   // also write BENCH_<date>.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"fastrl/internal/experiments"
	"fastrl/internal/trace"
)

// expPerf records one experiment's cost in the -json snapshot: wall time
// plus heap allocation deltas from runtime.MemStats (each experiment run
// counts as one "op").
type expPerf struct {
	ID     string `json:"id"`
	Ns     int64  `json:"ns_per_op"`
	Allocs uint64 `json:"allocs_per_op"`
	Bytes  uint64 `json:"bytes_per_op"`
}

// expFigure records one experiment's headline values (e.g. per-policy
// P50/P95, shed rate, utilisation for -exp cluster) so the snapshot tracks
// what the figures say, not just what they cost.
type expFigure struct {
	ID      string             `json:"id"`
	Metrics map[string]float64 `json:"metrics"`
}

// benchSnapshot is the BENCH_<date>.json document tracking the repo's
// perf trajectory in-tree.
type benchSnapshot struct {
	Date        string                  `json:"date"`
	GoVersion   string                  `json:"go_version"`
	GOMAXPROCS  int                     `json:"gomaxprocs"`
	Quick       bool                    `json:"quick"`
	Experiments []expPerf               `json:"experiments"`
	Figures     []expFigure             `json:"figures,omitempty"`
	HotPath     []experiments.PerfEntry `json:"hot_path"`
}

// writeAndValidateTrace persists an experiment's Chrome trace export and
// then proves the artefact is usable: the written bytes must parse back,
// the reconstructed spans must validate (submit-first, retire-last,
// non-negative and non-overlapping busy intervals), and the request count
// must reconcile with the experiment's own traced_requests metric — a
// trace file that silently dropped requests fails the run.
func writeAndValidateTrace(path string, r *experiments.Result) error {
	if err := os.WriteFile(path, r.TraceChrome, 0o644); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read trace back: %w", err)
	}
	exp, err := trace.ParseChrome(data)
	if err != nil {
		return fmt.Errorf("trace file does not parse: %w", err)
	}
	sum, err := exp.Validate()
	if err != nil {
		return fmt.Errorf("trace file failed validation: %w", err)
	}
	want, ok := r.Metrics["traced_requests"]
	if !ok {
		return fmt.Errorf("experiment exported a trace but no traced_requests metric")
	}
	if float64(sum.Requests) != math.Round(want) {
		return fmt.Errorf("trace holds %d requests, experiment traced %.0f", sum.Requests, want)
	}
	if sum.Retired != sum.Requests {
		return fmt.Errorf("trace holds %d requests but only %d retire spans", sum.Requests, sum.Retired)
	}
	fmt.Printf("wrote %s (%d requests, %d spans; validated)\n", path, sum.Requests, sum.Spans)
	return nil
}

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		quick     = flag.Bool("quick", false, "reduced workload sizes")
		seed      = flag.Int64("seed", 0, "override experiment seed (0 = default)")
		list      = flag.Bool("list", false, "list available experiments")
		verbose   = flag.Bool("v", false, "verbose progress")
		jsonOut   = flag.Bool("json", false, "write a BENCH_<date>.json perf snapshot (ns/op and allocs/op per figure/table plus hot-path micro-benchmarks)")
		jsonPath  = flag.String("json-out", "", "write the perf snapshot to this path instead of BENCH_<date>.json (implies -json; lets CI diff against a committed baseline from the same date without clobbering it)")
		traceFile = flag.String("trace", "", "enable request-lifecycle tracing and write the Chrome trace_event export to this file (load in chrome://tracing or Perfetto); the export is parsed back and validated before exit")
	)
	flag.Parse()
	if *jsonPath != "" {
		*jsonOut = true
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-12s %s\n", id, experiments.Title(id))
		}
		if *exp == "" {
			fmt.Println("\nusage: tltbench -exp <id>|all [-quick] [-seed N] [-json]")
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed, Verbose: *verbose, Trace: *traceFile != ""}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	var perf []expPerf
	var figures []expFigure
	for _, id := range ids {
		var m0 runtime.MemStats
		if *jsonOut {
			runtime.ReadMemStats(&m0)
		}
		start := time.Now()
		r, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tltbench: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if *jsonOut {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			perf = append(perf, expPerf{
				ID:     id,
				Ns:     elapsed.Nanoseconds(),
				Allocs: m1.Mallocs - m0.Mallocs,
				Bytes:  m1.TotalAlloc - m0.TotalAlloc,
			})
			if len(r.Metrics) > 0 {
				figures = append(figures, expFigure{ID: id, Metrics: r.Metrics})
			}
		}
		fmt.Println(r)
		if *traceFile != "" && r.TraceChrome != nil {
			if err := writeAndValidateTrace(*traceFile, r); err != nil {
				fmt.Fprintf(os.Stderr, "tltbench: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		if *verbose {
			fmt.Printf("(%s completed in %v)\n\n", id, elapsed.Round(time.Millisecond))
		}
	}

	if *jsonOut {
		snap := benchSnapshot{
			Date:        time.Now().Format("2006-01-02"),
			GoVersion:   runtime.Version(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Quick:       *quick,
			Experiments: perf,
			Figures:     figures,
			HotPath:     experiments.PerfSnapshot(*quick),
		}
		name := *jsonPath
		if name == "" {
			name = fmt.Sprintf("BENCH_%s.json", snap.Date)
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tltbench: encode snapshot: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(name, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tltbench: write snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments, %d hot-path benchmarks)\n", name, len(snap.Experiments), len(snap.HotPath))
	}
}
