// Command tltbench regenerates the paper's tables and figures from the
// simulator. Run `tltbench -list` for available experiments, then e.g.
//
//	tltbench -exp fig11
//	tltbench -exp all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fastrl/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		quick   = flag.Bool("quick", false, "reduced workload sizes")
		seed    = flag.Int64("seed", 0, "override experiment seed (0 = default)")
		list    = flag.Bool("list", false, "list available experiments")
		verbose = flag.Bool("v", false, "verbose progress")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-12s %s\n", id, experiments.Title(id))
		}
		if *exp == "" {
			fmt.Println("\nusage: tltbench -exp <id>|all [-quick] [-seed N]")
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed, Verbose: *verbose}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tltbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r)
		if *verbose {
			fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
