// Command tlttrain runs a full reasoning-RL training session under one of
// the supported systems and reports per-step timing and learning metrics.
//
//	tlttrain -system tlt -model qwen7b -nodes 1 -steps 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fastrl/internal/core"
	"fastrl/internal/gpu"
)

func main() {
	var (
		system  = flag.String("system", "tlt", "tlt | tlt-base | verl | open-r1")
		modelF  = flag.String("model", "qwen7b", "qwen7b | deepseek7b | qwen32b | llama70b")
		gpuF    = flag.String("gpu", "H100", "GPU type (see gpu catalogue)")
		nodes   = flag.Int("nodes", 1, "nodes (8 GPUs each)")
		tp      = flag.Int("tp", 2, "tensor-parallel degree per rollout worker")
		steps   = flag.Int("steps", 5, "RL steps to run")
		prompts = flag.Int("prompts", 16, "prompts per step")
		group   = flag.Int("group", 8, "responses per prompt (GRPO group)")
		maxNew  = flag.Int("maxnew", 384, "max response tokens")
		seed    = flag.Int64("seed", 1, "random seed")
		noPrior = flag.Bool("nopriors", false, "disable synthetic length priors (learning-dynamics mode)")
	)
	flag.Parse()

	kind, err := parseKind(*system)
	check(err)
	arch, defTP, err := parseModel(*modelF)
	check(err)
	if *tp == 2 && defTP != 2 {
		*tp = defTP
	}
	spec, err := gpu.ByName(*gpuF)
	check(err)

	cfg := core.DefaultConfig()
	cfg.Kind = kind
	cfg.Arch = arch
	cfg.Cluster = core.DefaultCluster(spec, *nodes, *tp)
	cfg.RL.PromptsPerStep = *prompts
	cfg.RL.GroupSize = *group
	cfg.MaxNew = *maxNew
	cfg.Seed = *seed
	cfg.DisableLengthPrior = *noPrior

	sys, err := core.New(cfg)
	check(err)
	if err := sys.CheckMemory(); err != nil {
		check(err)
	}
	if kind == core.TLT {
		fmt.Println("warming up adaptive drafter...")
		sys.WarmUpDrafter(40, 3)
	}

	fmt.Printf("%s | %s on %d x %s node(s), TP=%d, %d workers\n",
		kind, arch.Name, *nodes, spec.Name, *tp, cfg.Cluster.Workers())
	fmt.Printf("%-5s %-12s %-12s %-10s %-10s %-8s %-8s %-8s %-8s\n",
		"step", "step-time", "rollout", "tput", "reward", "acc", "accept", "spot", "maxlen")
	var totalTokens int
	var totalTime time.Duration
	for i := 0; i < *steps; i++ {
		st, err := sys.Step()
		check(err)
		totalTokens += st.Tokens
		totalTime += st.StepTime
		fmt.Printf("%-5d %-12v %-12v %-10.0f %-10.3f %-8.3f %-8.2f %-8d %-8d\n",
			st.Step, st.StepTime.Round(time.Millisecond), st.Rollout.Round(time.Millisecond),
			st.Throughput, st.Summary.MeanReward, st.Summary.Accuracy,
			st.AcceptLen, st.SpotBatches, st.Summary.MaxLen)
	}
	fmt.Printf("\nmean throughput: %.0f tokens/s over %d steps (%v virtual)\n",
		float64(totalTokens)/totalTime.Seconds(), *steps, totalTime.Round(time.Millisecond))
}

func parseKind(s string) (core.Kind, error) {
	switch strings.ToLower(s) {
	case "tlt":
		return core.TLT, nil
	case "tlt-base", "tltbase":
		return core.TLTBase, nil
	case "verl":
		return core.VeRL, nil
	case "open-r1", "openr1":
		return core.OpenR1, nil
	}
	return 0, fmt.Errorf("unknown system %q", s)
}

func parseModel(s string) (gpu.Arch, int, error) {
	switch strings.ToLower(s) {
	case "qwen7b":
		return gpu.Qwen7B, 2, nil
	case "deepseek7b":
		return gpu.DeepSeek7B, 2, nil
	case "qwen32b":
		return gpu.Qwen32B, 4, nil
	case "llama70b":
		return gpu.Llama70B, 8, nil
	}
	return gpu.Arch{}, 0, fmt.Errorf("unknown model %q", s)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlttrain: %v\n", err)
		os.Exit(1)
	}
}
