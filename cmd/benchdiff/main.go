// Command benchdiff compares the pinned hot-path sections of two
// BENCH_<date>.json snapshots (written by `tltbench -json` /
// `-json-out`) and exits non-zero when the newer one regresses:
//
//	benchdiff BENCH_2026-08-08.json bench_head.json
//	benchdiff -tol 0.25 old.json new.json
//
// The gate is asymmetric on purpose. allocs/op on the pinned hot paths
// is deterministic — any increase is a real regression and fails
// immediately, tolerance-free. ns/op carries machine noise, so it only
// fails beyond -tol (default 10%). A hot-path entry present in the
// baseline but missing from the head snapshot also fails: silently
// dropping a pinned benchmark is how regressions go unmeasured. Entries
// new in the head are reported and pass — that's how new pins land.
//
// Only the hot_path section gates. The experiments section is whole-run
// wall time (useful trajectory data, far too noisy to gate on) and the
// figures section is checked by the per-experiment acceptance tests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fastrl/internal/experiments"
)

// snapshot is the subset of the BENCH_<date>.json document benchdiff
// reads; unknown fields are ignored so old and new snapshot layouts both
// parse.
type snapshot struct {
	Date    string                  `json:"date"`
	HotPath []experiments.PerfEntry `json:"hot_path"`
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.HotPath) == 0 {
		return s, fmt.Errorf("%s: no hot_path section (not a tltbench -json snapshot?)", path)
	}
	return s, nil
}

func main() {
	tol := flag.Float64("tol", 0.10, "ns/op regression tolerance as a fraction (0.10 = +10%); allocs/op increases always fail")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol 0.10] <baseline.json> <head.json>")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	head, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	byName := make(map[string]experiments.PerfEntry, len(head.HotPath))
	for _, e := range head.HotPath {
		byName[e.Name] = e
	}

	fmt.Printf("hot-path diff: %s (%s) -> %s (%s), ns/op tolerance %+.0f%%\n\n",
		flag.Arg(0), old.Date, flag.Arg(1), head.Date, 100**tol)
	fmt.Printf("%-32s %14s %14s %8s %10s %10s\n",
		"name", "ns/op old", "ns/op new", "delta", "allocs old", "allocs new")
	failures := 0
	var dropped []string
	for _, o := range old.HotPath {
		n, ok := byName[o.Name]
		if !ok {
			fmt.Printf("%-32s MISSING from head snapshot — pinned benchmark dropped\n", o.Name)
			dropped = append(dropped, o.Name)
			failures++
			continue
		}
		delete(byName, o.Name)
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		verdict := ""
		if n.AllocsPerOp > o.AllocsPerOp {
			verdict = fmt.Sprintf("  FAIL: allocs/op %d -> %d", o.AllocsPerOp, n.AllocsPerOp)
			failures++
		} else if delta > *tol {
			verdict = fmt.Sprintf("  FAIL: ns/op %+.1f%% beyond %.0f%%", 100*delta, 100**tol)
			failures++
		}
		fmt.Printf("%-32s %14.0f %14.0f %+7.1f%% %10d %10d%s\n",
			o.Name, o.NsPerOp, n.NsPerOp, 100*delta, o.AllocsPerOp, n.AllocsPerOp, verdict)
	}
	// Entries only in head are new pins. They cannot gate on this run —
	// there is nothing to compare against — so say that loudly rather
	// than letting a terse tag read like a passing comparison: a new
	// entry's numbers are informational until a baseline snapshot
	// containing it is committed, at which point it gates like any other
	// pin.
	newEntries := 0
	for _, e := range head.HotPath {
		if _, stillNew := byName[e.Name]; stillNew {
			newEntries++
			fmt.Printf("%-32s %14s %14.0f %8s %10s %10d  NEW: no baseline entry — not gated this run\n",
				e.Name, "-", e.NsPerOp, "-", "-", e.AllocsPerOp)
		}
	}
	if newEntries > 0 {
		fmt.Printf("\n%d new entr%s without a baseline: numbers above are informational only; regenerate and commit the baseline snapshot to start gating %s\n",
			newEntries, plural(newEntries, "y", "ies"), plural(newEntries, "it", "them"))
	}

	if failures > 0 {
		// Name every dropped pin in the terminal summary: the per-entry
		// line scrolls away in CI logs, and "which benchmark disappeared"
		// is the first question a red gate gets asked.
		for _, name := range dropped {
			fmt.Printf("\nbenchdiff: pinned hot-path entry %q disappeared from the head snapshot — restore the benchmark or regenerate both snapshots deliberately\n", name)
		}
		fmt.Printf("\nbenchdiff: %d regression(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: no regressions")
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
