// Command tltprofile emits a rollout running-request profile (the paper's
// Fig. 14 case study) as CSV on stdout: one row per engine iteration with
// virtual time, running-request count, decode mode, and strategy.
//
//	tltprofile -requests 128 -model qwen32b -threshold 32 > profile.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/profileio"
	"fastrl/internal/rollout"
	"fastrl/internal/tokenizer"
	"fastrl/internal/workload"
)

func main() {
	var (
		requests  = flag.Int("requests", 128, "concurrent rollout requests")
		modelF    = flag.String("model", "qwen32b", "qwen7b | qwen32b | llama70b")
		gpuF      = flag.String("gpu", "H100", "GPU type")
		tp        = flag.Int("tp", 4, "tensor parallel degree")
		threshold = flag.Int("threshold", 32, "elastic SD threshold (-1 disables SD)")
		maxNew    = flag.Int("maxnew", 256, "max response tokens")
		seed      = flag.Int64("seed", 14, "random seed")
		chart     = flag.Bool("chart", false, "render an ASCII running-request chart to stderr")
	)
	flag.Parse()

	arch := gpu.Qwen32B
	switch strings.ToLower(*modelF) {
	case "qwen7b":
		arch = gpu.Qwen7B
	case "qwen32b":
	case "llama70b":
		arch = gpu.Llama70B
	default:
		fmt.Fprintf(os.Stderr, "tltprofile: unknown model %q\n", *modelF)
		os.Exit(1)
	}
	spec, err := gpu.ByName(*gpuF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tltprofile:", err)
		os.Exit(1)
	}

	tk := tokenizer.New()
	mcfg := model.DefaultConfig(tk.VocabSize(), arch)
	mcfg.Buckets = 1 << 12
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	target := model.New(mcfg, &model.GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})
	gen := workload.NewTaskGen(tk, 64, *seed)

	// Warm a drafter when SD is enabled.
	var dr draft.Drafter
	if *threshold >= 0 {
		rng := rand.New(rand.NewSource(*seed ^ 0x5a))
		e := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), arch))
		var examples []*draft.Example
		for _, task := range gen.Sample(60) {
			seq := model.Generate(target, task.Prompt, nil, 0.9, 64, tk.Eos(), rng)
			examples = append(examples, draft.HarvestExamples(target,
				model.Context{Tokens: seq, PromptLen: len(task.Prompt)}, true)...)
		}
		for ep := 0; ep < 3; ep++ {
			e.Train(examples, nil, rng)
		}
		dr = e
	}

	dev := gpu.NewDevice(spec, *tp)
	cfg := rollout.DefaultConfig(dev)
	cfg.SDThreshold = *threshold
	eng, err := rollout.New(cfg, target, dr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tltprofile:", err)
		os.Exit(1)
	}

	rng := rand.New(rand.NewSource(*seed))
	sampler := workload.DefaultLengthSampler(*maxNew)
	var reqs []*rollout.Request
	for i, task := range gen.Sample(*requests) {
		prior := workload.PriorFor(task, sampler, rng)
		reqs = append(reqs, rollout.NewRequest(i, task.Prompt, *maxNew, prior, tk.Answer(), tk.Eos()))
	}
	stats := eng.Run(reqs, rng)

	if err := profileio.WriteCSV(os.Stdout, stats.Profile); err != nil {
		fmt.Fprintln(os.Stderr, "tltprofile:", err)
		os.Exit(1)
	}
	if *chart {
		fmt.Fprint(os.Stderr, profileio.RenderRunning(stats.Profile, 72, 10))
	}
	fmt.Fprintf(os.Stderr, "elapsed %.3fs, %d response tokens (%.0f tok/s), accept length %.2f, SD steps %d/%d\n",
		stats.Elapsed.Seconds(), stats.ResponseTokens, stats.Throughput(),
		stats.MeanAcceptLen(), stats.SDSteps, stats.SDSteps+stats.VanillaSteps)
}
