package rl

import (
	"math"
	"math/rand"
	"testing"

	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/reward"
	"fastrl/internal/tokenizer"
	"fastrl/internal/workload"
)

func newTrainer(t testing.TB, cfg Config) (*Trainer, *workload.TaskGen, *tokenizer.Tokenizer) {
	t.Helper()
	tk := tokenizer.New()
	mcfg := model.DefaultConfig(tk.VocabSize(), gpu.Qwen7B)
	mcfg.Buckets = 1 << 10
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	lm := model.New(mcfg, &model.GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})
	gen := workload.NewTaskGen(tk, 30, 5)
	return NewTrainer(cfg, lm, reward.NewVerifier(tk)), gen, tk
}

func TestGRPOAdvantagesZeroMeanUnitishScale(t *testing.T) {
	tr, _, _ := newTrainer(t, DefaultConfig())
	g := []*Rollout{
		{Reward: 1.1}, {Reward: 0.1}, {Reward: 0.1}, {Reward: 1.1},
	}
	tr.ComputeAdvantages([][]*Rollout{g})
	var sum float64
	for _, r := range g {
		sum += r.Advantage
	}
	if math.Abs(sum) > 1e-6 {
		t.Fatalf("GRPO advantages should sum to ~0, got %v", sum)
	}
	if g[0].Advantage <= 0 || g[1].Advantage >= 0 {
		t.Fatalf("advantage signs wrong: %+v", g)
	}
	// Uniform rewards give ~zero advantages (std floor keeps it finite).
	flat := []*Rollout{{Reward: 0.5}, {Reward: 0.5}}
	tr.ComputeAdvantages([][]*Rollout{flat})
	if math.Abs(flat[0].Advantage) > 1e-6 {
		t.Fatalf("flat group advantage %v, want 0", flat[0].Advantage)
	}
}

func TestRLOOAdvantages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algo = RLOO
	tr, _, _ := newTrainer(t, cfg)
	g := []*Rollout{{Reward: 1}, {Reward: 0}, {Reward: 0.5}}
	tr.ComputeAdvantages([][]*Rollout{g})
	// r0 - mean(r1,r2) = 1 - 0.25 = 0.75
	if math.Abs(g[0].Advantage-0.75) > 1e-9 {
		t.Fatalf("RLOO advantage %v, want 0.75", g[0].Advantage)
	}
	// Singleton group degenerates to zero.
	single := []*Rollout{{Reward: 1}}
	tr.ComputeAdvantages([][]*Rollout{single})
	if single[0].Advantage != 0 {
		t.Fatalf("singleton RLOO advantage %v", single[0].Advantage)
	}
}

func TestREINFORCEBaselineTracks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algo = REINFORCE
	tr, _, _ := newTrainer(t, cfg)
	g := []*Rollout{{Reward: 1}, {Reward: 1}, {Reward: 1}}
	tr.ComputeAdvantages([][]*Rollout{g})
	// First advantage vs zero baseline, later ones vs a risen baseline.
	if g[0].Advantage != 1 {
		t.Fatalf("first advantage %v", g[0].Advantage)
	}
	if g[2].Advantage >= g[0].Advantage {
		t.Fatalf("baseline did not rise: %v vs %v", g[2].Advantage, g[0].Advantage)
	}
}

func TestREINFORCEPPGlobalNormalization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algo = REINFORCEPP
	tr, _, _ := newTrainer(t, cfg)
	g1 := []*Rollout{{Reward: 1}, {Reward: 0}}
	g2 := []*Rollout{{Reward: 1}, {Reward: 0}}
	tr.ComputeAdvantages([][]*Rollout{g1, g2})
	var sum float64
	for _, r := range append(g1, g2...) {
		sum += r.Advantage
	}
	if math.Abs(sum) > 1e-6 {
		t.Fatalf("global advantages should sum to ~0, got %v", sum)
	}
}

func TestRewardsImproveOverTraining(t *testing.T) {
	// The end-to-end learning check: mean reward on the task pool rises
	// over RL steps (Fig. 12's premise).
	tr, gen, tk := newTrainer(t, DefaultConfig())
	rng := rand.New(rand.NewSource(11))

	var first, last float64
	const steps = 12
	for step := 0; step < steps; step++ {
		tasks := gen.Sample(tr.Config().PromptsPerStep)
		sum := tr.TrainStep(tasks, 60, tk.Eos(), rng)
		if step == 0 {
			first = sum.MeanReward
		}
		last = sum.MeanReward
	}
	if last <= first {
		t.Fatalf("reward did not improve: %.3f -> %.3f", first, last)
	}
	t.Logf("reward %.3f -> %.3f over %d steps", first, last, steps)
}

func TestKLStaysBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KLCoef = 0.1
	tr, gen, tk := newTrainer(t, cfg)
	rng := rand.New(rand.NewSource(13))
	var lastKL float64
	for step := 0; step < 6; step++ {
		tasks := gen.Sample(8)
		s := tr.TrainStep(tasks, 50, tk.Eos(), rng)
		lastKL = s.MeanKL
	}
	if math.IsNaN(lastKL) || lastKL < 0 || lastKL > 50 {
		t.Fatalf("KL estimate out of range: %v", lastKL)
	}
}

func TestInferenceTokens(t *testing.T) {
	groups := [][]*Rollout{
		{{Response: make([]int, 5)}, {Response: make([]int, 7)}},
		{{Response: make([]int, 3)}},
	}
	if got := InferenceTokens(groups); got != 15 {
		t.Fatalf("InferenceTokens = %d, want 15", got)
	}
}

func TestSummarize(t *testing.T) {
	groups := [][]*Rollout{{
		{Reward: 1.1, Response: make([]int, 10)},
		{Reward: 0.1, Response: make([]int, 30)},
	}}
	s := Summarize(3, groups, 0.5)
	if s.Step != 3 || s.MeanKL != 0.5 {
		t.Fatalf("summary header wrong: %+v", s)
	}
	if math.Abs(s.MeanReward-0.6) > 1e-9 {
		t.Fatalf("mean reward %v", s.MeanReward)
	}
	if s.Accuracy != 0.5 {
		t.Fatalf("accuracy %v", s.Accuracy)
	}
	if s.MaxLen != 30 || s.MeanLen != 20 {
		t.Fatalf("length stats %v/%v", s.MeanLen, s.MaxLen)
	}
}

func TestAlgoStrings(t *testing.T) {
	for algo, want := range map[Algo]string{
		GRPO: "grpo", RLOO: "rloo", REINFORCE: "reinforce", REINFORCEPP: "reinforce++",
	} {
		if algo.String() != want {
			t.Fatalf("%d.String() = %q", int(algo), algo.String())
		}
	}
}

func TestAllAlgosLearn(t *testing.T) {
	if testing.Short() {
		t.Skip("long learning test")
	}
	for _, algo := range []Algo{GRPO, RLOO, REINFORCEPP} {
		cfg := DefaultConfig()
		cfg.Algo = algo
		tr, gen, tk := newTrainer(t, cfg)
		rng := rand.New(rand.NewSource(17))
		var first, last float64
		for step := 0; step < 10; step++ {
			s := tr.TrainStep(gen.Sample(12), 60, tk.Eos(), rng)
			if step == 0 {
				first = s.MeanReward
			}
			last = s.MeanReward
		}
		if last <= first {
			t.Errorf("%v: reward did not improve: %.3f -> %.3f", algo, first, last)
		}
	}
}
