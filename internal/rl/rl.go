// Package rl implements the reasoning-RL training algorithms: GRPO (the
// paper's primary algorithm) plus the RLOO, REINFORCE and REINFORCE++
// variants it claims compatibility with (§7). The package contains the
// algorithmic core — group sampling, advantage estimation, the
// inference stage (reference-model KL), and policy updates — while
// system-level scheduling (which engine decodes the rollouts, what the
// step costs) is composed by callers.
package rl

import (
	"fmt"
	"math"
	"math/rand"

	"fastrl/internal/model"
	"fastrl/internal/reward"
	"fastrl/internal/workload"
)

// Algo selects the RL algorithm variant.
type Algo int

const (
	// GRPO: group-relative advantages normalised by the group stddev.
	GRPO Algo = iota
	// RLOO: leave-one-out baseline within the group.
	RLOO
	// REINFORCE: global EMA baseline.
	REINFORCE
	// REINFORCEPP: batch-mean baseline with global normalisation.
	REINFORCEPP
)

func (a Algo) String() string {
	switch a {
	case GRPO:
		return "grpo"
	case RLOO:
		return "rloo"
	case REINFORCE:
		return "reinforce"
	case REINFORCEPP:
		return "reinforce++"
	}
	return fmt.Sprintf("algo(%d)", int(a))
}

// Rollout is one generated response with its task.
type Rollout struct {
	Task     workload.Task
	Response []int
	// Full is prompt + response.
	Full      []int
	PromptLen int
	Reward    float64
	Advantage float64
}

// Config parameterises the trainer.
type Config struct {
	Algo Algo
	// GroupSize is the number of responses per prompt (GRPO group).
	GroupSize int
	// PromptsPerStep is the number of distinct prompts per RL step.
	PromptsPerStep int
	// Temp is the sampling temperature.
	Temp float64
	// LR is the policy learning rate.
	LR float64
	// KLCoef weights the reference-model KL penalty.
	KLCoef float64
	// BaselineDecay is the EMA decay for the REINFORCE baseline.
	BaselineDecay float64
}

// DefaultConfig mirrors the paper's GRPO settings at simulator scale.
func DefaultConfig() Config {
	return Config{
		Algo:           GRPO,
		GroupSize:      8,
		PromptsPerStep: 16,
		Temp:           0.9,
		LR:             0.05,
		KLCoef:         0.15,
		BaselineDecay:  0.9,
	}
}

// Trainer holds the RL state: policy, frozen reference, verifier.
type Trainer struct {
	cfg      Config
	Policy   *model.LM
	Ref      *model.LM
	Verifier *reward.Verifier
	baseline float64 // REINFORCE EMA
	Step     int
}

// NewTrainer freezes the current policy weights as the reference model.
func NewTrainer(cfg Config, policy *model.LM, v *reward.Verifier) *Trainer {
	if cfg.GroupSize < 1 {
		cfg.GroupSize = 1
	}
	return &Trainer{cfg: cfg, Policy: policy, Ref: policy.Clone(), Verifier: v}
}

// Config returns the trainer configuration.
func (t *Trainer) Config() Config { return t.cfg }

// ScoreGroups computes rewards for rollouts grouped by prompt: groups[i]
// holds GroupSize rollouts of one task.
func (t *Trainer) ScoreGroups(groups [][]*Rollout) {
	for _, g := range groups {
		for _, r := range g {
			r.Reward = t.Verifier.Score(r.Task, r.Response)
		}
	}
}

// ComputeAdvantages fills rollout advantages per the configured algorithm.
func (t *Trainer) ComputeAdvantages(groups [][]*Rollout) {
	switch t.cfg.Algo {
	case GRPO:
		for _, g := range groups {
			mean, std := rewardStats(g)
			for _, r := range g {
				r.Advantage = (r.Reward - mean) / (std + 1e-4)
			}
		}
	case RLOO:
		for _, g := range groups {
			n := float64(len(g))
			if n < 2 {
				for _, r := range g {
					r.Advantage = 0
				}
				continue
			}
			var sum float64
			for _, r := range g {
				sum += r.Reward
			}
			for _, r := range g {
				r.Advantage = r.Reward - (sum-r.Reward)/(n-1)
			}
		}
	case REINFORCE:
		for _, g := range groups {
			for _, r := range g {
				r.Advantage = r.Reward - t.baseline
				t.baseline = t.cfg.BaselineDecay*t.baseline + (1-t.cfg.BaselineDecay)*r.Reward
			}
		}
	case REINFORCEPP:
		var all []*Rollout
		for _, g := range groups {
			all = append(all, g...)
		}
		mean, std := rewardStats(all)
		for _, r := range all {
			r.Advantage = (r.Reward - mean) / (std + 1e-4)
		}
	}
}

func rewardStats(g []*Rollout) (mean, std float64) {
	if len(g) == 0 {
		return 0, 0
	}
	for _, r := range g {
		mean += r.Reward
	}
	mean /= float64(len(g))
	for _, r := range g {
		d := r.Reward - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(g)))
	return mean, std
}

// InferenceTokens returns the total response tokens the inference stage
// prefills through both policy and reference models.
func InferenceTokens(groups [][]*Rollout) int {
	var n int
	for _, g := range groups {
		for _, r := range g {
			n += len(r.Response)
		}
	}
	return n
}

// ApplyUpdates runs the training stage: one policy-gradient step per
// rollout with a nonzero advantage, with the KL penalty against the
// frozen reference. Returns the mean observed KL estimate.
func (t *Trainer) ApplyUpdates(groups [][]*Rollout) float64 {
	var klSum float64
	var n int
	for _, g := range groups {
		for _, r := range g {
			if r.Advantage == 0 {
				continue
			}
			ctx := model.Context{Tokens: r.Full, PromptLen: r.PromptLen}
			kl := t.Policy.PolicyGradientStep(ctx, r.Advantage, t.cfg.LR, t.cfg.Temp, t.Ref, t.cfg.KLCoef)
			klSum += kl
			n++
		}
	}
	t.Step++
	if n == 0 {
		return 0
	}
	return klSum / float64(n)
}

// StepSummary aggregates one step's learning metrics.
type StepSummary struct {
	Step       int
	MeanReward float64
	Accuracy   float64
	MeanKL     float64
	// MeanLen and MaxLen summarise response lengths.
	MeanLen float64
	MaxLen  int
}

// Summarize computes the step summary from scored groups.
func Summarize(step int, groups [][]*Rollout, meanKL float64) StepSummary {
	s := StepSummary{Step: step, MeanKL: meanKL}
	var n, correct int
	var lenSum float64
	for _, g := range groups {
		for _, r := range g {
			s.MeanReward += r.Reward
			n++
			lenSum += float64(len(r.Response))
			if len(r.Response) > s.MaxLen {
				s.MaxLen = len(r.Response)
			}
			if r.Reward >= reward.CorrectReward {
				correct++
			}
		}
	}
	if n > 0 {
		s.MeanReward /= float64(n)
		s.Accuracy = float64(correct) / float64(n)
		s.MeanLen = lenSum / float64(n)
	}
	return s
}

// GenerateGroupsDirect rolls out groups with plain autoregressive
// sampling, bypassing any engine — the algorithmic reference path used in
// tests and losslessness comparisons.
func (t *Trainer) GenerateGroupsDirect(tasks []workload.Task, maxNew int, eos int, rng *rand.Rand) [][]*Rollout {
	groups := make([][]*Rollout, 0, len(tasks))
	for _, task := range tasks {
		g := make([]*Rollout, 0, t.cfg.GroupSize)
		for i := 0; i < t.cfg.GroupSize; i++ {
			full := model.Generate(t.Policy, task.Prompt, nil, t.cfg.Temp, maxNew, eos, rng)
			g = append(g, &Rollout{
				Task:      task,
				Full:      full,
				Response:  full[len(task.Prompt):],
				PromptLen: len(task.Prompt),
			})
		}
		groups = append(groups, g)
	}
	return groups
}

// TrainStep runs one full direct-path RL step (rollout → score →
// advantages → update) and returns its summary.
func (t *Trainer) TrainStep(tasks []workload.Task, maxNew, eos int, rng *rand.Rand) StepSummary {
	groups := t.GenerateGroupsDirect(tasks, maxNew, eos, rng)
	t.ScoreGroups(groups)
	t.ComputeAdvantages(groups)
	kl := t.ApplyUpdates(groups)
	return Summarize(t.Step, groups, kl)
}
