package sched

import (
	"math/rand"
	"testing"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/prefixcache"
)

// propDrafters builds the drafter roster the equivalence property runs
// over: the learned Eagle drafter, the vanilla small-LM drafter, and the
// model-free n-gram drafter warmed on target rollouts and then frozen.
// Freezing matters: the property compares token streams across different
// schedules, which is only well-defined when drafter state does not
// evolve mid-comparison. Online learning keeps losslessness (verification
// never depends on proposal quality) but gives up bit-reproducibility —
// deployments choose per drafter via draft.Freeze.
func propDrafters(t *testing.T, env *testEnv) map[string]draft.Drafter {
	t.Helper()
	ng := draft.NewNGram(env.tk.VocabSize(), 1, 3)
	warmRng := rand.New(rand.NewSource(77))
	for _, task := range env.gen.Pool()[:8] {
		seq := model.Generate(env.target, task.Prompt, nil, 0.9, 40, env.tk.Eos(), warmRng)
		ng.Observe(seq, len(task.Prompt))
	}
	if ng.Size() == 0 {
		t.Fatal("n-gram drafter failed to warm")
	}
	return map[string]draft.Drafter{
		"eagle":        env.eagle,
		"smalllm":      draft.NewSmallLM("smalllm", env.tk.VocabSize(), gpu.Qwen05B, 99),
		"ngram-frozen": draft.Freeze(ng),
	}
}

// TestContinuousMatchesRunToCompletion is the equivalence property of the
// iteration-level scheduler: a request's token stream (and its per-round
// accept lengths) must be bit-identical whether it is decoded alone to
// completion or continuously batched with other requests, joining and
// leaving mid-flight — for every drafter, with and without a prefix
// cache. Per-request RNGs make the sampling stream private, batched
// scoring emits bit-identical rows to solo scoring, and frozen drafter
// state makes proposals a pure function of context; the test pins that
// chain end to end.
func TestContinuousMatchesRunToCompletion(t *testing.T) {
	env := newEnv(t)
	drafters := propDrafters(t, env)
	const nReqs = 5
	maxNew := 48

	build := func(seedBase int64) []*Request {
		reqs := make([]*Request, nReqs)
		for i := range reqs {
			reqs[i] = env.poolRequest(i, i, maxNew, seedBase+int64(i))
		}
		return reqs
	}

	for name, d := range drafters {
		for _, cached := range []bool{false, true} {
			label := name
			if cached {
				label += "+cache"
			}
			t.Run(label, func(t *testing.T) {
				mkCfg := func() Config {
					cfg := fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1))
					if cached {
						cfg.Cache = prefixcache.New(prefixcache.Config{})
					}
					return cfg
				}

				// Run-to-completion baseline: each request decodes alone in
				// its own fresh batch, start to finish.
				solo := build(1000)
				for _, r := range solo {
					b, err := New(mkCfg(), env.target, d)
					if err != nil {
						t.Fatal(err)
					}
					b.Admit(r)
					runToCompletion(t, b, rand.New(rand.NewSource(9)))
				}

				// Continuous batching: the same requests join one batch at
				// staggered step boundaries and leave as they finish.
				cont := build(1000)
				b, err := New(mkCfg(), env.target, d)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(9))
				next := 0
				for step := 0; b.ActiveCount() > 0 || next < len(cont); step++ {
					if step > 100000 {
						t.Fatal("continuous run did not converge")
					}
					// Two new admissions every three steps: requests join
					// while earlier ones are mid-decode.
					if next < len(cont) && step%3 != 2 {
						b.Admit(cont[next])
						next++
					}
					b.Step(rng)
					b.Retire()
				}

				for i := range solo {
					s, c := solo[i], cont[i]
					if len(s.Tokens) != len(c.Tokens) {
						t.Fatalf("request %d: solo %d tokens, continuous %d",
							i, len(s.Tokens), len(c.Tokens))
					}
					for j := range s.Tokens {
						if s.Tokens[j] != c.Tokens[j] {
							t.Fatalf("request %d diverges at position %d: solo %d vs continuous %d",
								i, j, s.Tokens[j], c.Tokens[j])
						}
					}
					if len(s.AcceptLens) != len(c.AcceptLens) {
						t.Fatalf("request %d: solo %d SD rounds, continuous %d",
							i, len(s.AcceptLens), len(c.AcceptLens))
					}
					for j := range s.AcceptLens {
						if s.AcceptLens[j] != c.AcceptLens[j] {
							t.Fatalf("request %d round %d: accept %d vs %d",
								i, j, s.AcceptLens[j], c.AcceptLens[j])
						}
					}
					if s.MeanAcceptLen() != c.MeanAcceptLen() {
						t.Fatalf("request %d: accept length %v vs %v — per-request accounting not exact",
							i, s.MeanAcceptLen(), c.MeanAcceptLen())
					}
					if s.EosSeen != c.EosSeen {
						t.Fatalf("request %d: EOS flag diverged", i)
					}
				}
			})
		}
	}
}

// TestContinuousMatchesRunToCompletionVanilla covers the non-speculative
// path: the same equivalence with SD disabled entirely.
func TestContinuousMatchesRunToCompletionVanilla(t *testing.T) {
	env := newEnv(t)
	const nReqs = 4
	mkCfg := func() Config {
		cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
		cfg.SDThreshold = -1
		return cfg
	}
	build := func() []*Request {
		reqs := make([]*Request, nReqs)
		for i := range reqs {
			reqs[i] = env.poolRequest(i, i, 40, int64(500+i))
		}
		return reqs
	}

	solo := build()
	for _, r := range solo {
		b, err := New(mkCfg(), env.target, nil)
		if err != nil {
			t.Fatal(err)
		}
		b.Admit(r)
		runToCompletion(t, b, rand.New(rand.NewSource(5)))
	}

	cont := build()
	b, err := New(mkCfg(), env.target, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	next := 0
	for step := 0; b.ActiveCount() > 0 || next < len(cont); step++ {
		if next < len(cont) && step%2 == 0 {
			b.Admit(cont[next])
			next++
		}
		b.Step(rng)
		b.Retire()
	}
	for i := range solo {
		s, c := solo[i], cont[i]
		if len(s.Tokens) != len(c.Tokens) {
			t.Fatalf("request %d: solo %d tokens, continuous %d", i, len(s.Tokens), len(c.Tokens))
		}
		for j := range s.Tokens {
			if s.Tokens[j] != c.Tokens[j] {
				t.Fatalf("request %d diverges at position %d", i, j)
			}
		}
	}
}
