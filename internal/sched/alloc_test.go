package sched

import (
	"math/rand"
	"testing"

	"fastrl/internal/gpu"
	"fastrl/internal/workload"
)

// steadyBatch builds a batch with n requests that cannot finish within
// the measured window, stepped once so every scratch buffer has grown to
// its high-water mark — the serving replica's steady state.
func steadyBatch(t testing.TB, env *testEnv, n int, sd bool) (*Batch, []*Request, *rand.Rand) {
	t.Helper()
	var cfg Config
	if sd {
		cfg = fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1))
	} else {
		cfg = DefaultConfig(gpu.NewDevice(gpu.H100, 1))
		cfg.SDThreshold = -1
	}
	var b *Batch
	var err error
	if sd {
		b, err = New(cfg, env.target, env.eagle)
	} else {
		b, err = New(cfg, env.target, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	// A long-running step-loop records neither per-step profiles nor
	// timeline spans (both unbounded) — the configuration serving uses.
	b.RecordProfile = false
	b.Timeline = nil
	rng := rand.New(rand.NewSource(61))
	reqs := make([]*Request, n)
	for i := 0; i < n; i++ {
		r := NewRequest(i, env.gen.Pool()[i%len(env.gen.Pool())].Prompt, 1<<20,
			workload.LengthPrior{TargetLen: 1 << 20, Sharpness: 25}, -1, -1)
		r.RNG = rand.New(rand.NewSource(int64(200 + i)))
		reqs[i] = r
		b.Admit(r)
	}
	b.Step(rng) // prefill + first round grows all scratch
	return b, reqs, rng
}

// TestBatchStepZeroSteadyStateAllocs pins the allocation-free contract of
// the continuous-batching hot path: once the batch scratch has grown to
// its high-water mark, a steady-state scheduler iteration — bias staging,
// a full multi-sequence speculation round through the single grouped
// scoring pass, acceptance bookkeeping, and the cost model — performs
// zero heap allocations.
func TestBatchStepZeroSteadyStateAllocs(t *testing.T) {
	env := newEnv(t)
	// 16 and 64 exercise the bitmap core past one occupancy word, pinning
	// that wider co-batching windows stay allocation-free too.
	for _, n := range []int{1, 4, 8, 16, 64} {
		b, _, rng := steadyBatch(t, env, n, true)
		// Scratch high-water marks ratchet up over the first rounds as
		// draft-tree shapes vary; wide batches take tens of rounds to
		// converge, so warm past the ratchet before measuring.
		for i := 0; i < 50; i++ {
			b.Step(rng)
		}
		allocs := testing.AllocsPerRun(100, func() {
			b.Step(rng)
		})
		if allocs != 0 {
			t.Errorf("batch=%d: steady-state Step allocates %.1f objects/iter, want 0", n, allocs)
		}
	}
}

// TestBatchStepVanillaZeroSteadyStateAllocs covers the non-speculative
// decode iteration (the path above the SD threshold).
func TestBatchStepVanillaZeroSteadyStateAllocs(t *testing.T) {
	env := newEnv(t)
	b, _, rng := steadyBatch(t, env, 6, false)
	allocs := testing.AllocsPerRun(100, func() {
		b.Step(rng)
	})
	if allocs != 0 {
		t.Errorf("steady-state vanilla Step allocates %.1f objects/iter, want 0", allocs)
	}
}
