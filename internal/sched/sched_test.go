package sched

import (
	"math/rand"
	"testing"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/specdec"
	"fastrl/internal/tokenizer"
	"fastrl/internal/workload"
)

type testEnv struct {
	tk     *tokenizer.Tokenizer
	target *model.LM
	eagle  *draft.Eagle
	gen    *workload.TaskGen
}

func newEnv(t testing.TB) *testEnv {
	t.Helper()
	tk := tokenizer.New()
	cfg := model.DefaultConfig(tk.VocabSize(), gpu.Qwen7B)
	cfg.Buckets = 1 << 10
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	target := model.New(cfg, &model.GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})
	gen := workload.NewTaskGen(tk, 50, 3)

	e := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	rng := rand.New(rand.NewSource(4))
	var examples []*draft.Example
	for _, task := range gen.Sample(60) {
		seq := model.Generate(target, task.Prompt, nil, 1, 50, tk.Eos(), rng)
		examples = append(examples, draft.HarvestExamples(target, model.Context{Tokens: seq, PromptLen: len(task.Prompt)}, true)...)
	}
	for i := 0; i < 3; i++ {
		e.Train(examples, nil, rng)
	}
	return &testEnv{tk: tk, target: target, eagle: e, gen: gen}
}

// fixedStrategyConfig returns a scheduler config whose decode behaviour is
// independent of batch size: one SD strategy (so the MAB has no choice to
// make and draws no randomness) always active. Per-request token streams
// are schedule-invariant only under such a config — with a strategy
// ladder, the chosen tree shape depends on how many requests happen to be
// co-batched.
func fixedStrategyConfig(dev *gpu.Device) Config {
	cfg := DefaultConfig(dev)
	cfg.SDThreshold = 0
	cfg.Strategies = []specdec.Params{{DraftDepth: 6, TopK: 6, TokensToVerify: 24}}
	cfg.MAB.Thresholds = []int{1}
	return cfg
}

// poolRequest builds a fresh request for pool task i with a private
// seeded sampling stream.
func (env *testEnv) poolRequest(id, task, maxNew int, seed int64) *Request {
	pool := env.gen.Pool()
	prior := workload.LengthPrior{TargetLen: maxNew * 3 / 4, Sharpness: 20}
	r := NewRequest(id, pool[task%len(pool)].Prompt, maxNew, prior, env.tk.Answer(), env.tk.Eos())
	r.RNG = rand.New(rand.NewSource(seed))
	return r
}

// runToCompletion drives a batch until every admitted request finished,
// collecting retirements.
func runToCompletion(t *testing.T, b *Batch, rng *rand.Rand) []*Request {
	t.Helper()
	var retired []*Request
	for i := 0; b.ActiveCount() > 0; i++ {
		if i > 100000 {
			t.Fatal("batch did not converge")
		}
		b.Step(rng)
		retired = append(retired, b.Retire()...)
	}
	return retired
}

func TestAdmitStepRetireLifecycle(t *testing.T) {
	env := newEnv(t)
	b, err := New(fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1)), env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))

	var reqs []*Request
	for i := 0; i < 4; i++ {
		r := env.poolRequest(i, i, 40, int64(100+i))
		reqs = append(reqs, r)
		b.Admit(r)
	}
	if got := b.ActiveCount(); got != 4 {
		t.Fatalf("ActiveCount after admits = %d, want 4", got)
	}
	retired := runToCompletion(t, b, rng)
	if len(retired) != 4 {
		t.Fatalf("retired %d, want 4", len(retired))
	}
	for _, r := range retired {
		if !r.Done {
			t.Fatalf("retired request %d not done", r.ID)
		}
		if r.Generated() == 0 || r.Generated() > r.MaxNew {
			t.Fatalf("request %d generated %d of max %d", r.ID, r.Generated(), r.MaxNew)
		}
		if r.FinishedAt() <= r.AdmittedAt() {
			t.Fatalf("request %d has no decode span: admitted %v finished %v",
				r.ID, r.AdmittedAt(), r.FinishedAt())
		}
	}
	st := b.Stats()
	var gen int
	for _, r := range reqs {
		gen += r.Generated()
	}
	if st.ResponseTokens != gen {
		t.Fatalf("token accounting mismatch: stats %d vs requests %d", st.ResponseTokens, gen)
	}
	if st.SDSteps == 0 {
		t.Fatal("no SD steps recorded")
	}
}

// TestMidFlightAdmission pins the defining property of iteration-level
// scheduling: a request admitted while others are mid-decode joins at the
// next step boundary instead of waiting for the batch to drain.
func TestMidFlightAdmission(t *testing.T) {
	env := newEnv(t)
	b, err := New(fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1)), env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))

	first := env.poolRequest(0, 0, 60, 11)
	b.Admit(first)
	for i := 0; i < 3; i++ {
		b.Step(rng)
	}
	if first.Done {
		t.Skip("first request finished before mid-flight admission")
	}
	second := env.poolRequest(1, 1, 30, 12)
	b.Admit(second)
	prof, _ := b.Step(rng)
	if prof.Running != 2 {
		t.Fatalf("step after mid-flight admission ran %d requests, want 2", prof.Running)
	}
	if second.AdmittedAt() <= first.AdmittedAt() {
		t.Fatal("second request's admission time not later than first's")
	}
	runToCompletion(t, b, rng)
	if !first.Done || !second.Done {
		t.Fatal("requests did not complete after mid-flight admission")
	}
}

// TestRetireAtStepBoundary pins that short requests leave the batch while
// long ones keep decoding — finished work does not wait for the batch.
func TestRetireAtStepBoundary(t *testing.T) {
	env := newEnv(t)
	b, err := New(fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1)), env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))

	short := env.poolRequest(0, 0, 4, 21)
	long := env.poolRequest(1, 1, 300, 22)
	long.Prior = workload.LengthPrior{TargetLen: 280, Sharpness: 12}
	b.Admit(short)
	b.Admit(long)

	sawEarlyRetire := false
	for i := 0; b.ActiveCount() > 0 && i < 100000; i++ {
		b.Step(rng)
		for _, r := range b.Retire() {
			if r == short && !long.Done {
				sawEarlyRetire = true
			}
		}
	}
	if !sawEarlyRetire {
		t.Fatal("short request did not retire before the long request finished")
	}
}

// TestTruncateRemaining pins the premature-termination hook the
// run-to-completion driver uses.
func TestTruncateRemaining(t *testing.T) {
	env := newEnv(t)
	b, err := New(fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1)), env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3; i++ {
		b.Admit(env.poolRequest(i, i, 200, int64(31+i)))
	}
	b.Step(rng)
	b.TruncateRemaining()
	retired := b.Retire()
	if len(retired) != 3 {
		t.Fatalf("retired %d after truncation, want 3", len(retired))
	}
	truncated := 0
	for _, r := range retired {
		if r.Truncated() {
			truncated++
		}
	}
	if truncated == 0 {
		t.Fatal("no request marked truncated")
	}
	if st := b.Stats(); st.TruncatedRequests != truncated {
		t.Fatalf("stats count %d truncated, retired %d", st.TruncatedRequests, truncated)
	}
	if b.ActiveCount() != 0 {
		t.Fatal("batch still active after truncation")
	}
}
