package sched

import (
	"math/rand"
	"sync/atomic"
	"time"

	"fastrl/internal/prefixcache"
	"fastrl/internal/trace"
	"fastrl/internal/workload"
)

// Request is one in-flight generation. A request joins a Batch through
// Admit, decodes at step boundaries, and leaves through Retire when done.
type Request struct {
	ID     int
	Prompt []int
	// Tokens is prompt + generated (grows during decoding).
	Tokens []int
	MaxNew int
	// Prior is the length prior driving the dynamic EOS/answer bias.
	Prior workload.LengthPrior
	// AnswerID and EosID are biased by the prior (negative disables).
	AnswerID int
	EosID    int

	Done    bool
	EosSeen bool
	// AcceptLens records per-round accepted token counts while in SD mode
	// — the request's own accounting, so per-request accept-length metrics
	// are exact under continuous batching (not whole-engine averages).
	AcceptLens []int

	// RNG, when non-nil, is the request's private sampling stream: its
	// token stream becomes independent of batch composition and admission
	// time (for drafters whose state is frozen during decode), the
	// property serving relies on for reproducible responses under
	// continuous batching. When nil, the request draws from the shared
	// stream passed to Batch.Step — the trainer's batch-coupled mode.
	RNG *rand.Rand

	// Tag is opaque caller bookkeeping carried through the lifecycle (the
	// serving layer stores its job handle here).
	Tag any

	// Trace, when non-nil, receives the request's lifecycle spans. The
	// caller that admits the request starts it (trace.Tracer.Start) —
	// the scheduler only records into it at each lifecycle anchor and
	// closes it at retirement. Nil (the default) disables tracing at the
	// cost of one pointer check per anchor, keeping the decode hot path
	// bit-identical and allocation-free.
	Trace *trace.ReqTrace

	// Tool configures multi-turn tool-calling behaviour (paper §7);
	// zero value disables it.
	Tool ToolProfile
	tool toolState

	// cancelReq is the cross-goroutine cancellation flag: any goroutine may
	// set it through Cancel while the batch-owning goroutine keeps
	// stepping. The batch observes it at the next step boundary and retires
	// the request (Batch.sweepCancelled), so cancellation costs the decode
	// loop one atomic load per request per step and nothing else.
	cancelReq atomic.Bool

	// Scheduler-owned lifecycle state.
	admittedAt  time.Duration
	finishedAt  time.Duration
	hasFinished bool
	truncated   bool
	cancelled   bool
	// firstTokenAt is the virtual time the first response token landed —
	// the anchor for time-to-first-token metrics — and firstTokN how many
	// tokens that first step delivered (an SD round's whole accepted run
	// lands at once, so mean inter-token latency divides the tail span by
	// the tokens *after* this first chunk).
	firstTokenAt time.Duration
	firstTokN    int
	hasFirstTok  bool
	// retained pins the request's matched prefix-cache node while it is
	// inflight; hidCached marks a full-prompt match that already carries a
	// hidden state, so insert-back can skip recomputing it.
	retained  *prefixcache.Node
	hidCached bool
	// slot is the request's index in its batch's occupancy bitmaps while
	// inflight (assigned monotonically at prefill, so slot order is
	// admission order). Owned by the batch goroutine; meaningless while
	// the request is pending or retired.
	slot int
}

// maxPresize bounds the token-capacity reservation of NewRequest: decode
// appends stay allocation-free up to this many generated tokens without
// letting steady-state throughput probes (which use effectively unbounded
// MaxNew) reserve gigantic buffers.
const maxPresize = 1 << 14

// NewRequest builds a request from a prompt. Token storage is reserved up
// front (prompt + MaxNew, bounded), so steady-state decode appends do not
// allocate.
func NewRequest(id int, prompt []int, maxNew int, prior workload.LengthPrior, answerID, eosID int) *Request {
	reserve := maxNew
	if reserve > maxPresize {
		reserve = maxPresize
	}
	if reserve < 0 {
		reserve = 0
	}
	tokens := make([]int, len(prompt), len(prompt)+reserve)
	copy(tokens, prompt)
	return &Request{
		ID:     id,
		Prompt: prompt,
		Tokens: tokens,
		MaxNew: maxNew,
		// Every SD round accepts at least one token, so rounds are bounded
		// by the token reserve; pre-sizing keeps the decode loop free of
		// bookkeeping reallocations.
		AcceptLens: make([]int, 0, reserve),
		Prior:      prior,
		AnswerID:   answerID,
		EosID:      eosID,
	}
}

// Generated returns the number of generated (response) tokens.
func (r *Request) Generated() int { return len(r.Tokens) - len(r.Prompt) }

// Response returns the generated suffix.
func (r *Request) Response() []int { return r.Tokens[len(r.Prompt):] }

// AdmittedAt returns the virtual time the request joined its batch (the
// start of its prefill step).
func (r *Request) AdmittedAt() time.Duration { return r.admittedAt }

// FinishedAt returns the virtual time the request completed (zero while
// still decoding; valid once the request is retired).
func (r *Request) FinishedAt() time.Duration { return r.finishedAt }

// DecodeTime returns the request's virtual service time inside its batch:
// admission (prefill start) to completion. Under continuous batching it
// includes the request's share of co-batched work, which is exactly the
// latency a served request experiences.
func (r *Request) DecodeTime() time.Duration {
	if !r.hasFinished {
		return 0
	}
	return r.finishedAt - r.admittedAt
}

// Truncated reports whether the request was cut off by batch truncation
// (the premature-termination strategy) rather than finishing naturally.
func (r *Request) Truncated() bool { return r.truncated }

// Cancel marks the request for retirement at the next step boundary: the
// owning batch stops decoding it, releases its prefix-cache pins, drops
// its KV charge, and frees its batch slot, retiring it with the tokens
// generated so far. Safe to call from any goroutine at any point in the
// lifecycle (the serving layer calls it from client goroutines while the
// replica steps the batch); cancelling a request that already finished is
// a no-op — natural completion wins the race.
func (r *Request) Cancel() { r.cancelReq.Store(true) }

// CancelRequested reports whether Cancel has been called. The request
// keeps decoding until the owning batch's next step boundary observes the
// flag.
func (r *Request) CancelRequested() bool { return r.cancelReq.Load() }

// Cancelled reports whether the request actually retired via
// cancellation (false when it finished naturally before the batch
// observed a Cancel).
func (r *Request) Cancelled() bool { return r.cancelled }

// FirstTokenAt returns the virtual time the request's first response
// token landed — admission-to-first-token is the request's virtual TTFT
// component — and whether a token has landed yet.
func (r *Request) FirstTokenAt() (time.Duration, bool) {
	return r.firstTokenAt, r.hasFirstTok
}

// FirstChunkTokens returns how many tokens the request's first decoded
// step delivered (0 before any token lands). Mean inter-token latency is
// (FinishedAt - FirstTokenAt) / (Generated - FirstChunkTokens) — the
// denominator serving.Response.ITL uses, kept identical here so
// experiment figures agree across layers.
func (r *Request) FirstChunkTokens() int { return r.firstTokN }

// MeanAcceptLen returns the paper's accept-length metric for this request
// alone (accepted/rounds + 1), 0 when SD never ran for it. Unlike
// engine-level stats it is exact per request under continuous batching.
func (r *Request) MeanAcceptLen() float64 {
	if len(r.AcceptLens) == 0 {
		return 0
	}
	sum := 0
	for _, a := range r.AcceptLens {
		sum += a
	}
	return float64(sum)/float64(len(r.AcceptLens)) + 1
}

// biasInto writes the dynamic logit bias for the request's current length
// into dst (a scheduler-owned map reused across steps) and returns it,
// or nil when no bias applies.
func (r *Request) biasInto(dst map[int]float32) map[int]float32 {
	b := r.Prior.Bias(r.Generated())
	if b == 0 {
		return nil
	}
	clear(dst)
	if r.EosID >= 0 {
		dst[r.EosID] = b
	}
	if r.AnswerID >= 0 {
		dst[r.AnswerID] = b
	}
	if len(dst) == 0 {
		return nil
	}
	return dst
}

// finish marks completion conditions after new tokens landed.
func (r *Request) finish() {
	if r.EosSeen || r.Generated() >= r.MaxNew {
		r.Done = true
	}
}

// releaseRetained drops the request's pinned prefix-cache node, if any.
func (r *Request) releaseRetained() {
	if r.retained != nil {
		r.retained.Release()
		r.retained = nil
	}
	r.hidCached = false
}
