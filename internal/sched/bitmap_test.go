package sched

import (
	"math/bits"
	"math/rand"
	"testing"
	"time"

	"fastrl/internal/gpu"
	"fastrl/internal/prefixcache"
)

func TestBitsetOps(t *testing.T) {
	s := make(bitset, 3)
	idxs := []int{0, 1, 63, 64, 100, 127, 128, 191}
	for _, i := range idxs {
		s.set(i)
	}
	if got := s.count(); got != len(idxs) {
		t.Fatalf("count = %d, want %d", got, len(idxs))
	}
	var walked []int
	s.forEach(func(i int) { walked = append(walked, i) })
	for k, i := range idxs {
		if walked[k] != i {
			t.Fatalf("forEach order %v, want %v", walked, idxs)
		}
	}
	s.clear(64)
	if s.has(64) || !s.has(63) || !s.has(100) {
		t.Fatal("clear(64) disturbed neighbours")
	}
	s.zero()
	if s.count() != 0 {
		t.Fatal("zero left bits set")
	}
}

// checkBitmapInvariants asserts, against the batch's externally observable
// admission history, every structural invariant of the occupancy-bitmap
// core. It is called after every mutating operation in the property test,
// so any sequence of Admit/Step/Cancel/Truncate/Retire/Reset that corrupts
// the slot table fails at the first bad transition.
//
//   - occ's popcount equals the live count and the number of bound slots;
//     every occupied slot holds a request whose slot field points back at
//     it, and every free slot below tail is nil.
//   - wait and done are subsets of occ, and done/cxl are empty between
//     steps (retirement collection drains them before an op returns).
//   - no bitmap has a bit at or beyond tail, so find-first-set selection
//     can never surface a never-assigned slot.
//   - ascending bit iteration over occ visits requests in admission
//     order (age-as-slot-index): the bitmap core's replacement for the
//     admission-ordered slice walk must preserve its order exactly.
func checkBitmapInvariants(t *testing.T, b *Batch, admitSeq map[*Request]int) {
	t.Helper()
	bound := 0
	for i, r := range b.slots {
		if r == nil {
			if b.occ.has(i) {
				t.Fatalf("slot %d: occ bit set but slot is nil", i)
			}
			continue
		}
		bound++
		if !b.occ.has(i) {
			t.Fatalf("slot %d: request %d bound but occ bit clear", i, r.ID)
		}
		if r.slot != i {
			t.Fatalf("slot %d: request %d back-pointer says %d", i, r.ID, r.slot)
		}
		if i >= b.tail {
			t.Fatalf("slot %d holds request %d at/beyond tail %d", i, r.ID, b.tail)
		}
	}
	if got := b.occ.count(); got != bound || got != b.live {
		t.Fatalf("popcount(occ)=%d, bound slots=%d, live=%d — must all agree", got, bound, b.live)
	}
	if got := b.Inflight(); got != b.live {
		t.Fatalf("Inflight()=%d but live=%d", got, b.live)
	}
	for w := range b.occ {
		if b.wait[w]&^b.occ[w] != 0 {
			t.Fatalf("word %d: wait ⊄ occ (wait=%064b occ=%064b)", w, b.wait[w], b.occ[w])
		}
		if b.done[w] != 0 {
			t.Fatalf("word %d: done bitmap not drained between ops: %064b", w, b.done[w])
		}
		if b.cxl[w] != 0 {
			t.Fatalf("word %d: cancellation bitmap leaked outside sweep: %064b", w, b.cxl[w])
		}
	}
	// No bit at or beyond tail in any bitmap.
	for i := b.tail; i < len(b.slots); i++ {
		if b.occ.has(i) || b.wait.has(i) {
			t.Fatalf("bit %d set at/beyond tail %d", i, b.tail)
		}
	}
	// Ascending occ iteration is admission order.
	prev := -1
	for w, word := range b.occ {
		for ; word != 0; word &= word - 1 {
			i := w<<6 + bits.TrailingZeros64(word)
			seq, ok := admitSeq[b.slots[i]]
			if !ok {
				t.Fatalf("slot %d holds a request the test never admitted", i)
			}
			if seq <= prev {
				t.Fatalf("slot %d: admission seq %d out of order after %d — bitmap iteration broke age order", i, seq, prev)
			}
			prev = seq
		}
	}
}

// TestBitmapInvariants drives randomized lifecycles — staggered admission,
// tool-call waits, cross-goroutine-style cancels, truncation, retirement
// and resets — and checks every structural bitmap invariant after every
// operation. Enough requests churn through to force slot-table growth and
// the order-preserving compaction path (tail ≥ 128 with a sparse live
// set).
func TestBitmapInvariants(t *testing.T) {
	env := newEnv(t)
	for _, cached := range []bool{false, true} {
		name := "nocache"
		if cached {
			name = "cache"
		}
		t.Run(name, func(t *testing.T) {
			cfg := fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1))
			if cached {
				cfg.Cache = prefixcache.New(prefixcache.Config{})
			}
			b, err := New(cfg, env.target, env.eagle)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			ctl := rand.New(rand.NewSource(4242))

			admitSeq := make(map[*Request]int)
			nextSeq := 0
			nextID := 0
			admit := func() {
				r := env.poolRequest(nextID, nextID, 4+ctl.Intn(24), int64(3000+nextID))
				if ctl.Intn(4) == 0 {
					r.Tool = ToolProfile{Every: 1 + ctl.Intn(4), Latency: time.Duration(1+ctl.Intn(5)) * time.Millisecond, MaxCalls: 1 + ctl.Intn(3)}
				}
				nextID++
				b.Admit(r)
				admitSeq[r] = nextSeq
				nextSeq++
			}

			var inflightIDs []int
			const totalOps = 1200
			for op := 0; op < totalOps; op++ {
				switch roll := ctl.Intn(100); {
				case roll < 30 && nextID < 400:
					// Admissions come in bursts so the live set crosses
					// word boundaries and the tail outruns the live count.
					for k := ctl.Intn(3) + 1; k > 0; k-- {
						admit()
					}
				case roll < 85:
					b.Step(rng)
				case roll < 93 && len(inflightIDs) > 0:
					b.Cancel(inflightIDs[ctl.Intn(len(inflightIDs))])
				case roll < 96:
					b.TruncateRemaining()
				case roll < 98:
					b.Retire()
				default:
					b.Reset()
					admitSeq = make(map[*Request]int)
				}
				checkBitmapInvariants(t, b, admitSeq)

				inflightIDs = inflightIDs[:0]
				b.occ.forEach(func(i int) { inflightIDs = append(inflightIDs, b.slots[i].ID) })
			}

			// Drain: every admitted request must still complete cleanly.
			for i := 0; b.ActiveCount() > 0; i++ {
				if i > 100000 {
					t.Fatal("drain did not converge")
				}
				b.Step(rng)
				checkBitmapInvariants(t, b, admitSeq)
			}
			b.Retire()
			checkBitmapInvariants(t, b, admitSeq)
			if b.live != 0 {
				t.Fatalf("drained batch still reports %d live slots", b.live)
			}
		})
	}
}

// TestBitmapCompactionPreservesStreams churns hundreds of short requests
// through a small live window so the slot table repeatedly grows and
// compacts, then checks that compaction never changed any request's
// tokens relative to a solo run — compaction moves slots but must not
// reorder selection.
func TestBitmapCompactionPreservesStreams(t *testing.T) {
	env := newEnv(t)
	cfg := fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1))
	b, err := New(cfg, env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	const nReqs = 300
	const maxNew = 6
	cont := make([]*Request, nReqs)
	for i := range cont {
		cont[i] = env.poolRequest(i, i, maxNew, int64(9000+i))
	}
	next := 0
	for step := 0; b.ActiveCount() > 0 || next < nReqs; step++ {
		if step > 200000 {
			t.Fatal("churn run did not converge")
		}
		for k := 0; k < 2 && next < nReqs; k++ {
			b.Admit(cont[next])
			next++
		}
		b.Step(rng)
		b.Retire()
	}
	if b.tail >= 256 {
		t.Fatalf("tail=%d after churn of %d short requests — compaction never ran", b.tail, nReqs)
	}

	for i := 0; i < nReqs; i += 37 {
		solo := env.poolRequest(i, i, maxNew, int64(9000+i))
		sb, err := New(fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1)), env.target, env.eagle)
		if err != nil {
			t.Fatal(err)
		}
		sb.Admit(solo)
		runToCompletion(t, sb, rand.New(rand.NewSource(7)))
		if len(solo.Tokens) != len(cont[i].Tokens) {
			t.Fatalf("request %d: solo %d tokens, churned %d", i, len(solo.Tokens), len(cont[i].Tokens))
		}
		for j := range solo.Tokens {
			if solo.Tokens[j] != cont[i].Tokens[j] {
				t.Fatalf("request %d diverges at %d under compaction churn", i, j)
			}
		}
	}
}
