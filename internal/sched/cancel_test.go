package sched

import (
	"math/rand"
	"testing"

	"fastrl/internal/gpu"
	"fastrl/internal/prefixcache"
)

// TestCancelPendingNeverEntersBatch pins the earliest eviction point: a
// request cancelled while still pending admission retires at the next
// step boundary without ever prefilling — its prompt is never charged,
// it never joins the decoding set, and it holds no cache pins.
func TestCancelPendingNeverEntersBatch(t *testing.T) {
	env := newEnv(t)
	b, err := New(fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1)), env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))

	keep := env.poolRequest(0, 0, 24, 100)
	drop := env.poolRequest(1, 1, 24, 101)
	b.Admit(keep)
	b.Admit(drop)
	if !b.Cancel(drop.ID) {
		t.Fatal("Cancel did not find the pending request")
	}
	if b.Cancel(99) {
		t.Fatal("Cancel found a request that was never admitted")
	}

	b.Step(rng)
	retired := b.Retire()
	if len(retired) != 1 || retired[0] != drop {
		t.Fatalf("expected exactly the cancelled request retired, got %d", len(retired))
	}
	if !drop.Cancelled() || !drop.Done {
		t.Fatal("cancelled pending request not marked cancelled+done")
	}
	if drop.Generated() != 0 {
		t.Fatalf("cancelled pending request generated %d tokens", drop.Generated())
	}
	if dt := drop.DecodeTime(); dt != 0 {
		t.Fatalf("never-admitted request reports %v decode time, want 0", dt)
	}
	st := b.Stats()
	if st.CancelledRequests != 1 {
		t.Fatalf("stats count %d cancelled, want 1", st.CancelledRequests)
	}
	// The cancelled prompt was never prefilled: only the surviving
	// request's prompt is charged.
	if st.PromptTokens != len(keep.Prompt) {
		t.Fatalf("prompt tokens %d, want %d (cancelled prompt must not be charged)",
			st.PromptTokens, len(keep.Prompt))
	}
	runToCompletion(t, b, rng)
	if !keep.Done || keep.Cancelled() {
		t.Fatal("surviving request did not complete normally")
	}
}

// TestCancelInflightFreesSlotAndCachePins pins the mid-flight eviction
// path: a decoding request that matched the prefix cache holds a retained
// node; cancelling it releases the pin at the next step boundary (the
// refcount drops back to zero), frees its batch slot, and does NOT insert
// the abandoned partial sequence back into the cache.
func TestCancelInflightFreesSlotAndCachePins(t *testing.T) {
	env := newEnv(t)
	cfg := fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1))
	cache := prefixcache.New(prefixcache.Config{})
	cfg.Cache = cache
	b, err := New(cfg, env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))

	r := env.poolRequest(0, 0, 400, 55)
	// Warm the cache with the request's own prompt so prefill matches and
	// retains a node.
	cache.Insert(r.Prompt, len(r.Prompt), nil)
	node, matched := cache.Lookup(r.Prompt)
	if node == nil || matched != len(r.Prompt) {
		t.Fatal("cache warm-up did not cover the prompt")
	}

	b.Admit(r)
	b.Step(rng) // prefill (matches the cache, pins the node) + first round
	if r.Done {
		t.Skip("request finished before it could be cancelled")
	}
	// Our own Lookup retains one reference; the inflight request the other.
	if got := node.Refs(); got != 2 {
		t.Fatalf("refs after prefill = %d, want 2 (test pin + request pin)", got)
	}
	partial := r.Generated()
	if partial == 0 {
		t.Fatal("no tokens before cancellation; cannot observe a partial retire")
	}

	r.Cancel()
	b.Step(rng)
	retired := b.Retire()
	if len(retired) != 1 || retired[0] != r {
		t.Fatalf("cancelled request not retired at the next step boundary")
	}
	if !r.Cancelled() {
		t.Fatal("request not marked cancelled")
	}
	if r.Generated() != partial {
		t.Fatalf("request decoded past its cancellation: %d then %d tokens",
			partial, r.Generated())
	}
	if b.Inflight() != 0 || b.ActiveCount() != 0 {
		t.Fatal("cancelled request still occupies its batch slot")
	}
	if got := node.Refs(); got != 1 {
		t.Fatalf("refs after cancellation = %d, want 1 (request pin released)", got)
	}
	// No insert-back: the abandoned generated suffix must not be cached.
	if ml := cache.MatchLen(r.Tokens); ml > len(r.Prompt) {
		t.Fatalf("cancelled sequence inserted back: cache matches %d of %d prompt tokens",
			ml, len(r.Prompt))
	}
	node.Release()

	// Further steps are free: the batch is empty and the clock is idle.
	before := b.Clock.Now()
	b.Step(rng)
	if b.Clock.Now() != before {
		t.Fatal("empty batch still charged decode time after cancellation")
	}
}

// TestCancelRacingNaturalCompletion pins the race resolution: a Cancel
// that lands after the request already finished is a no-op — the request
// retires exactly once, as completed, not cancelled.
func TestCancelRacingNaturalCompletion(t *testing.T) {
	env := newEnv(t)
	b, err := New(fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1)), env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	r := env.poolRequest(0, 0, 16, 77)
	b.Admit(r)
	retired := runToCompletion(t, b, rng)
	if len(retired) != 1 {
		t.Fatalf("retired %d, want 1", len(retired))
	}
	finishedAt := r.FinishedAt()

	r.Cancel() // too late: natural completion won
	b.Step(rng)
	if got := b.Retire(); len(got) != 0 {
		t.Fatalf("request retired twice: %d extra retirements", len(got))
	}
	if r.Cancelled() {
		t.Fatal("finished request marked cancelled")
	}
	if r.FinishedAt() != finishedAt {
		t.Fatal("completion time rewritten by late cancel")
	}
	if st := b.Stats(); st.CancelledRequests != 0 {
		t.Fatalf("stats count %d cancelled, want 0", st.CancelledRequests)
	}
}

// TestCancelPreservesCoBatchedStreams extends the scheduler's equivalence
// property (TestContinuousMatchesRunToCompletion) across the eviction
// path: cancelling one co-batched request mid-flight must leave every
// surviving request's token stream — and per-round accept lengths —
// bit-identical to a solo run-to-completion decode.
func TestCancelPreservesCoBatchedStreams(t *testing.T) {
	env := newEnv(t)
	const nReqs = 3
	maxNew := 40

	build := func() []*Request {
		reqs := make([]*Request, nReqs)
		for i := range reqs {
			reqs[i] = env.poolRequest(i, i, maxNew, int64(2000+i))
		}
		return reqs
	}

	// Baseline: each survivor decodes alone to completion.
	solo := build()
	for _, r := range solo {
		b, err := New(fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1)), env.target, env.eagle)
		if err != nil {
			t.Fatal(err)
		}
		b.Admit(r)
		runToCompletion(t, b, rand.New(rand.NewSource(7)))
	}

	// Co-batched run with an extra long-running victim that gets cancelled
	// a few steps in.
	cont := build()
	b, err := New(fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1)), env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	victim := env.poolRequest(nReqs, nReqs, 4000, 9999)
	rng := rand.New(rand.NewSource(7))
	for _, r := range cont {
		b.Admit(r)
	}
	b.Admit(victim)
	for step := 0; b.ActiveCount() > 0; step++ {
		if step > 100000 {
			t.Fatal("run did not converge")
		}
		if step == 3 {
			if !b.Cancel(victim.ID) {
				t.Fatal("victim not found for cancellation")
			}
		}
		b.Step(rng)
		b.Retire()
	}
	if !victim.Cancelled() {
		t.Fatal("victim not cancelled")
	}
	if victim.Generated() >= 4000 {
		t.Fatal("victim ran to completion despite cancellation")
	}

	for i := range solo {
		s, c := solo[i], cont[i]
		if len(s.Tokens) != len(c.Tokens) {
			t.Fatalf("request %d: solo %d tokens, with-cancel %d", i, len(s.Tokens), len(c.Tokens))
		}
		for j := range s.Tokens {
			if s.Tokens[j] != c.Tokens[j] {
				t.Fatalf("request %d diverges at position %d after a co-batched cancel", i, j)
			}
		}
		if len(s.AcceptLens) != len(c.AcceptLens) {
			t.Fatalf("request %d: solo %d SD rounds, with-cancel %d",
				i, len(s.AcceptLens), len(c.AcceptLens))
		}
		for j := range s.AcceptLens {
			if s.AcceptLens[j] != c.AcceptLens[j] {
				t.Fatalf("request %d round %d accept diverges", i, j)
			}
		}
	}
}

// TestFirstTokenTimestamp pins the TTFT anchor: the first-token time is
// stamped at the end of the step that produced the first response token,
// strictly after admission and at or before completion.
func TestFirstTokenTimestamp(t *testing.T) {
	env := newEnv(t)
	b, err := New(fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1)), env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	r := env.poolRequest(0, 0, 32, 11)
	if _, ok := r.FirstTokenAt(); ok {
		t.Fatal("first-token time set before any decode")
	}
	b.Admit(r)
	runToCompletion(t, b, rand.New(rand.NewSource(4)))
	ft, ok := r.FirstTokenAt()
	if !ok {
		t.Fatal("first-token time never stamped")
	}
	if ft <= r.AdmittedAt() || ft > r.FinishedAt() {
		t.Fatalf("first token at %v outside (%v, %v]", ft, r.AdmittedAt(), r.FinishedAt())
	}
}
