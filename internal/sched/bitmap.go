package sched

import "math/bits"

// bitset is a little-endian occupancy bitmap over batch slot indices:
// bit i of word i/64 is slot i. The scheduler keeps one bitset per
// request state (occupied / tool-wait / finished / cancelled) and drives
// every per-step partition off word-level operations — find-first-set
// (bits.TrailingZeros64) over ascending words visits slots in ascending
// index order, and slot indices are assigned monotonically at admission,
// so bit order IS admission (age) order. That makes the bitmap walk a
// drop-in replacement for the old slice scans: selection order, and
// therefore every delivered token stream, is unchanged.
type bitset []uint64

func (s bitset) set(i int)      { s[i>>6] |= 1 << uint(i&63) }
func (s bitset) clear(i int)    { s[i>>6] &^= 1 << uint(i&63) }
func (s bitset) has(i int) bool { return s[i>>6]&(1<<uint(i&63)) != 0 }

// count returns the number of set bits (population count).
func (s bitset) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// zero clears every bit without releasing storage.
func (s bitset) zero() {
	for i := range s {
		s[i] = 0
	}
}

// forEach calls fn with every set bit's slot index in ascending order —
// admission order, by the slot-assignment invariant. The word is
// snapshotted before iteration, so fn may clear bits of the bitset it
// iterates without perturbing the walk. Hot paths inline the same
// two-level loop by hand where they need word-level masking against
// other bitsets; forEach serves the cold paths and tests.
func (s bitset) forEach(fn func(i int)) {
	for w, word := range s {
		for word != 0 {
			fn(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}
