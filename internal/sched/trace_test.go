package sched

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/trace"
)

// runTracedBurst replays a small staggered-arrival burst through a fresh
// batch with every request traced, exercising queue waits (bounded
// admission), SD rounds, a tool-wait pause, a pending-queue cancel, and
// an inflight cancel. Everything is seeded and single-goroutine, so two
// invocations against a frozen drafter are bit-identical.
func runTracedBurst(t *testing.T, env *testEnv, tr *trace.Tracer, reg *metrics.Registry) int {
	t.Helper()
	cfg := fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.Metrics = reg
	b, err := New(cfg, env.target, draft.Freeze(env.eagle))
	if err != nil {
		t.Fatal(err)
	}
	b.RecordProfile = false
	b.Timeline = nil
	rng := rand.New(rand.NewSource(7))

	const n = 12
	const maxInflight = 4
	reqs := make([]*Request, n)
	arrive := make([]time.Duration, n)
	for i := range reqs {
		r := env.poolRequest(i+1, i, 24, int64(900+i))
		if i == 3 {
			r.Tool = ToolProfile{Every: 8, Latency: 2 * time.Millisecond, MaxCalls: 1}
		}
		r.Trace = tr.Start(int64(r.ID), 0, nil)
		reqs[i] = r
		arrive[i] = time.Duration(i) * 2 * time.Millisecond
	}

	next := 0
	steps := 0
	for next < len(reqs) || b.ActiveCount() > 0 {
		if steps++; steps > 100000 {
			t.Fatal("traced burst did not converge")
		}
		for next < len(reqs) && arrive[next] <= b.Clock.Now() && b.ActiveCount() < maxInflight {
			b.Admit(reqs[next])
			if next == 9 {
				// Cancelled while still in the admission queue: retires
				// without ever prefilling.
				reqs[next].Cancel()
			}
			next++
		}
		if b.ActiveCount() == 0 && next < len(reqs) {
			b.Clock.AdvanceTo(arrive[next])
			continue
		}
		if steps == 12 {
			// Cancelled mid-decode: retires at the next step boundary.
			reqs[5].Cancel()
		}
		b.Step(rng)
		b.Retire()
	}
	return n
}

// TestTraceExportDeterministic is the committed byte-identical pin the
// acceptance criteria require: two same-seed bursty runs export exactly
// the same bytes in both the native JSON and the Chrome trace_event
// formats.
func TestTraceExportDeterministic(t *testing.T) {
	env := newEnv(t)
	export := func() ([]byte, []byte) {
		tr := trace.New(trace.Config{SpanSlots: 256})
		runTracedBurst(t, env, tr, nil)
		e := tr.Export()
		j, err := e.JSON()
		if err != nil {
			t.Fatal(err)
		}
		c, err := e.Chrome()
		if err != nil {
			t.Fatal(err)
		}
		return j, c
	}
	j1, c1 := export()
	j2, c2 := export()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("same-seed runs exported different JSON traces")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("same-seed runs exported different Chrome traces")
	}
}

// TestTraceSpansNest validates the recorded lifecycle structure: every
// request's spans have non-negative durations, submit-first/retire-last
// ordering, and sequential (non-overlapping) busy intervals; the burst's
// cancels, tool wait, and queue spans all appear.
func TestTraceSpansNest(t *testing.T) {
	env := newEnv(t)
	tr := trace.New(trace.Config{SpanSlots: 256})
	reg := metrics.NewRegistry()
	n := runTracedBurst(t, env, tr, reg)

	e := tr.Export()
	sum, err := e.Validate()
	if err != nil {
		t.Fatalf("trace validation failed: %v", err)
	}
	if sum.Requests != n {
		t.Fatalf("exported %d requests, want %d", sum.Requests, n)
	}
	if sum.Retired != n {
		t.Fatalf("retired %d, want %d (every trace closes with retire)", sum.Retired, n)
	}
	if sum.Cancelled != 2 {
		t.Fatalf("cancel spans = %d, want 2", sum.Cancelled)
	}
	kinds := map[string]int{}
	for _, req := range e.Requests {
		if req.Dropped != 0 {
			t.Fatalf("req %d dropped %d spans; arena too small for the burst", req.ReqID, req.Dropped)
		}
		for _, sp := range req.Spans {
			kinds[sp.Kind]++
		}
	}
	for _, want := range []string{"submit", "queue", "prefill", "sd-round", "tool-wait", "cancel", "retire"} {
		if kinds[want] == 0 {
			t.Errorf("burst recorded no %q spans", want)
		}
	}
	// The pending-queue cancel never prefilled: exactly n-1 prefills.
	if kinds["prefill"] != n-1 {
		t.Errorf("prefill spans = %d, want %d", kinds["prefill"], n-1)
	}

	// Registry counters reconcile with the trace.
	snap := reg.Snapshot()
	if got := snap.Counter("sched/cancelled"); got != 2 {
		t.Errorf("sched/cancelled = %d, want 2", got)
	}
	var tokens int64
	for _, req := range e.Requests {
		for _, sp := range req.Spans {
			if sp.Kind == "sd-round" || sp.Kind == "decode" {
				tokens += sp.Arg
			}
		}
	}
	if got := snap.Counter("sched/response_tokens"); got != tokens {
		t.Errorf("sched/response_tokens = %d, but trace spans deliver %d", got, tokens)
	}
	if snap.Counter("sched/steps") == 0 {
		t.Errorf("sched/steps not counted")
	}
}

// TestBatchStepTracedZeroAllocs pins the tracing-enabled hot path: a
// steady-state scheduler iteration with every request recording spans
// (arena + flight-recorder mirror) still allocates nothing.
func TestBatchStepTracedZeroAllocs(t *testing.T) {
	env := newEnv(t)
	cfg := fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.Metrics = metrics.NewRegistry()
	b, err := New(cfg, env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	b.RecordProfile = false
	b.Timeline = nil
	fr := trace.NewFlightRecorder(1024)
	tr := trace.New(trace.Config{SpanSlots: 1 << 12})
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 8; i++ {
		r := env.poolRequest(i+1, i, 1<<20, int64(300+i))
		r.MaxNew = 1 << 20
		r.Trace = tr.Start(int64(r.ID), 0, fr)
		b.Admit(r)
	}
	b.Step(rng) // prefill + first round grows all scratch
	allocs := testing.AllocsPerRun(100, func() {
		b.Step(rng)
	})
	if allocs != 0 {
		t.Errorf("traced steady-state Step allocates %.1f objects/iter, want 0", allocs)
	}
	if fr.Total() == 0 {
		t.Fatalf("flight recorder saw no records")
	}
}
