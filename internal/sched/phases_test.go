package sched

import (
	"math/rand"
	"testing"
	"time"

	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/workload"
)

// TestPhaseProfileReconciles drives a batch with profiling on through a
// full lifecycle mix — staggered admissions, SD activation, cancellation,
// retirement — and pins the tentpole invariant: the per-phase virtual
// time sums to exactly the clock movement of every Step call.
func TestPhaseProfileReconciles(t *testing.T) {
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = 4 // start vanilla, activate SD as the batch drains
	cfg.Phases = NewPhaseProfile()
	cfg.Metrics = metrics.NewRegistry()
	b, err := New(cfg, env.target, env.eagle)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	pool := env.gen.Pool()
	for i := 0; i < 8; i++ {
		r := NewRequest(i, pool[i%len(pool)].Prompt, 24,
			workload.LengthPrior{TargetLen: 16, Sharpness: 25}, env.tk.Answer(), env.tk.Eos())
		r.RNG = rand.New(rand.NewSource(int64(100 + i)))
		b.Admit(r)
		if i == 5 {
			r.Cancel() // exercised by the sweep before ever prefilling
		}
	}
	retired := 0
	for steps := 0; b.ActiveCount() > 0 && steps < 500; steps++ {
		b.Step(rng)
		retired += len(b.Retire())
	}
	if retired != 8 {
		t.Fatalf("retired %d of 8 requests", retired)
	}

	s := cfg.Phases.Snapshot()
	if !s.Reconciles() {
		t.Fatalf("phase sum %d ns != step total %d ns\n%+v", s.SumNs(), s.TotalNs, s)
	}
	if s.TotalNs == 0 || s.Steps == 0 {
		t.Fatal("profile recorded no work")
	}
	if s.Ns[PhasePrefill] == 0 || s.Ns[PhaseVerify] == 0 {
		t.Fatalf("prefill/verify phases empty: %+v", s.Ns)
	}
	if s.Ns[PhaseDraft] == 0 {
		t.Fatalf("SD ran (threshold 4, batch drains) but draft phase empty: %+v", s.Ns)
	}
	if s.Events[PhaseAdmitDrain] != 7 { // 8 admitted, 1 cancelled before prefill
		t.Fatalf("admit-drain events = %d, want 7", s.Events[PhaseAdmitDrain])
	}
	if s.Events[PhaseCancelSweep] != 1 {
		t.Fatalf("cancel-sweep events = %d, want 1", s.Events[PhaseCancelSweep])
	}
	if s.Events[PhaseRetire] != 8 {
		t.Fatalf("retire events = %d, want 8", s.Events[PhaseRetire])
	}
	// Boundary phases stay free in virtual time — that is what makes the
	// decomposition exact.
	for _, p := range []Phase{PhaseAdmitDrain, PhaseCancelSweep, PhaseRetire} {
		if s.Ns[p] != 0 {
			t.Fatalf("zero-time phase %v accumulated %d ns", p, s.Ns[p])
		}
	}

	// The registry exports per-phase gauges.
	snap := cfg.Metrics.Snapshot()
	if got := snap.Gauge("sched/phase/verify_ns"); got != float64(s.Ns[PhaseVerify]) {
		t.Fatalf("verify gauge = %v, profile = %d", got, s.Ns[PhaseVerify])
	}
}

// TestPhaseProfileToolWait pins attribution of the all-waiting clock jump.
func TestPhaseProfileToolWait(t *testing.T) {
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = -1
	cfg.Phases = NewPhaseProfile()
	b, err := New(cfg, env.target, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	r := NewRequest(0, env.gen.Pool()[0].Prompt, 64,
		workload.LengthPrior{TargetLen: 48, Sharpness: 25}, env.tk.Answer(), env.tk.Eos())
	r.RNG = rand.New(rand.NewSource(5))
	r.Tool = ToolProfile{Every: 4, Latency: 50 * time.Millisecond}
	b.Admit(r)
	sawWait := false
	for steps := 0; b.ActiveCount() > 0 && steps < 2000; steps++ {
		b.Step(rng)
		b.Retire()
	}
	s := cfg.Phases.Snapshot()
	sawWait = s.Ns[PhaseToolWait] > 0
	if !sawWait {
		t.Fatalf("tool-calling request never hit the all-waiting path: %+v", s)
	}
	if !s.Reconciles() {
		t.Fatalf("phase sum %d != total %d with tool waits", s.SumNs(), s.TotalNs)
	}
}

// TestPhaseProfileNilInert pins "free when off": every accessor on a nil
// profile is a no-op, and a batch without Config.Phases behaves
// identically to the seed.
func TestPhaseProfileNilInert(t *testing.T) {
	var p *PhaseProfile
	p.add(PhaseVerify, time.Second)
	p.count(PhaseRetire, 3)
	p.endStep(0, time.Second)
	s := p.Snapshot()
	if s.TotalNs != 0 || s.Steps != 0 || !s.Reconciles() {
		t.Fatalf("nil profile not inert: %+v", s)
	}
	if Phase(99).String() != "unknown" || PhaseDraft.String() != "draft" {
		t.Fatal("phase names broken")
	}
}

// TestBatchStepPhasesZeroAllocs extends the hot-path pin: profiling ON
// must not cost an allocation either — phase accumulation is pure atomics
// into a fixed struct.
func TestBatchStepPhasesZeroAllocs(t *testing.T) {
	env := newEnv(t)
	for _, sd := range []bool{true, false} {
		b, _, rng := steadyBatch(t, env, 8, sd)
		b.cfg.Phases = NewPhaseProfile()
		b.Step(rng) // one profiled step before measuring
		allocs := testing.AllocsPerRun(100, func() {
			b.Step(rng)
		})
		if allocs != 0 {
			t.Errorf("sd=%v: profiled Step allocates %.1f objects/iter, want 0", sd, allocs)
		}
		if !b.cfg.Phases.Snapshot().Reconciles() {
			t.Errorf("sd=%v: steady-state profile does not reconcile", sd)
		}
	}
}
