package sched

import (
	"testing"
)

// benchStep runs the steady-state iteration benchmark at a fixed
// workload: every op rewinds each sequence to its post-warm-up length so
// per-op cost does not drift with b.N (tokens and KV otherwise grow every
// iteration).
func benchStep(b *testing.B, n int, sd bool) {
	env := newEnv(b)
	batch, reqs, rng := steadyBatch(b, env, n, sd)
	warmLen := make([]int, len(reqs))
	for i, r := range reqs {
		warmLen[i] = len(r.Tokens)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, r := range reqs {
			r.Tokens = r.Tokens[:warmLen[j]]
			r.AcceptLens = r.AcceptLens[:0]
		}
		batch.Step(rng)
	}
}

// BenchmarkBatchStep is the canonical continuous-batching iteration: 8
// inflight sequences advanced one speculation round by the scheduler
// through a single grouped batched verification pass. It is snapshotted
// as the sched/batch-step-8 hot-path entry in BENCH_<date>.json.
func BenchmarkBatchStep(b *testing.B) { benchStep(b, 8, true) }

// BenchmarkBatchStepSolo is the 1-sequence case, isolating per-iteration
// scheduler overhead from batching gains.
func BenchmarkBatchStepSolo(b *testing.B) { benchStep(b, 1, true) }

// BenchmarkBatchStepVanilla measures the batched non-speculative decode
// iteration.
func BenchmarkBatchStepVanilla(b *testing.B) { benchStep(b, 8, false) }
