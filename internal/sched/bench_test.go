package sched

import (
	"testing"
)

// benchStep runs the steady-state iteration benchmark at a fixed
// workload: every op rewinds each sequence to its post-warm-up length so
// per-op cost does not drift with b.N (tokens and KV otherwise grow every
// iteration).
func benchStep(b *testing.B, n int, sd bool) {
	env := newEnv(b)
	batch, reqs, rng := steadyBatch(b, env, n, sd)
	warmLen := make([]int, len(reqs))
	for i, r := range reqs {
		warmLen[i] = len(r.Tokens)
	}
	rewind := func() {
		for j, r := range reqs {
			r.Tokens = r.Tokens[:warmLen[j]]
			r.AcceptLens = r.AcceptLens[:0]
		}
	}
	// Scratch high-water marks ratchet up over the first rounds as draft
	// trees vary in shape; warm past the ratchet so short runs measure
	// true steady state (0 allocs/op) rather than residual growth.
	for i := 0; i < 50; i++ {
		rewind()
		batch.Step(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewind()
		batch.Step(rng)
	}
}

// BenchmarkBatchStep is the canonical continuous-batching iteration: 8
// inflight sequences advanced one speculation round by the scheduler
// through a single grouped batched verification pass. It is snapshotted
// as the sched/batch-step-8 hot-path entry in BENCH_<date>.json.
func BenchmarkBatchStep(b *testing.B) { benchStep(b, 8, true) }

// BenchmarkBatchStepSolo is the 1-sequence case, isolating per-iteration
// scheduler overhead from batching gains.
func BenchmarkBatchStepSolo(b *testing.B) { benchStep(b, 1, true) }

// BenchmarkBatchStep16 and BenchmarkBatchStep64 scale the canonical
// iteration to wider co-batching windows. With the occupancy-bitmap slot
// table the scheduler's per-request step cost must stay flat as the
// window grows (batch-step-64 within 15% of batch-step-8 per request) —
// the property that justifies the serving layer's wider MaxBatch
// default. Snapshotted as sched/batch-step-16 and sched/batch-step-64 in
// BENCH_<date>.json and gated by benchdiff alongside batch-step-8.
func BenchmarkBatchStep16(b *testing.B) { benchStep(b, 16, true) }

func BenchmarkBatchStep64(b *testing.B) { benchStep(b, 64, true) }

// BenchmarkBatchStepVanilla measures the batched non-speculative decode
// iteration.
func BenchmarkBatchStepVanilla(b *testing.B) { benchStep(b, 8, false) }
