// Package sched implements the iteration-level scheduler at the heart of
// continuous batching (Orca/vLLM-style): a Batch of inflight sequences
// that new requests join and finished requests leave at *step* boundaries
// rather than batch-of-requests boundaries. One Step decodes every
// eligible sequence — scoring all of their speculation trees through a
// single engine-owned model.Scratch + batched target pass — and charges
// the simulated device exactly one iteration's cost.
//
// The scheduler is the single request-lifecycle implementation shared by
// the trainer (rollout.Engine drives a closed batch to completion) and
// the serving layer (replica step-loops drain an admission queue into
// their batch each iteration). Elastic SD activation, BEG-MAB strategy
// selection, tool-wait partitioning, the KV-residency bound, and
// prefix-cache prefill skipping all live here, so every caller gets the
// same semantics.
//
// Token generation is genuine — every response token is sampled from the
// target model (speculatively or not, with identical distribution) —
// while latency is charged to a virtual clock through the gpu roofline
// model.
package sched

import (
	"fmt"
	"math/bits"
	"math/rand"
	"time"

	"fastrl/internal/cudagraph"
	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/mab"
	"fastrl/internal/metrics"
	"fastrl/internal/model"
	"fastrl/internal/prefixcache"
	"fastrl/internal/specdec"
	"fastrl/internal/trace"
	"fastrl/internal/vclock"
)

// Mode distinguishes vanilla decoding from speculative decoding.
type Mode int

const (
	// ModeVanilla is ordinary one-token-per-step decoding.
	ModeVanilla Mode = iota
	// ModeSD is speculative decoding.
	ModeSD
)

func (m Mode) String() string {
	if m == ModeSD {
		return "sd"
	}
	return "vanilla"
}

// Config parameterises the scheduler.
type Config struct {
	// Device executes all passes (a TP group acting as one device).
	Device *gpu.Device
	// Temp is the sampling temperature.
	Temp float64
	// SDThreshold is the elastic activation bound: SD engages only when
	// the number of decoding requests drops to or below it (paper default
	// 32). Zero means SD is always on; negative disables SD entirely.
	SDThreshold int
	// Strategies is the SD strategy ladder (grouped by the MAB selector).
	Strategies []specdec.Params
	// MAB configures the BEG-MAB tuner.
	MAB mab.Config
	// GraphPlan selects the CUDAGraph capture plan: "bucketed" (default),
	// "single", "naive", or "none".
	GraphPlan string
	// HostOverhead is the fixed CPU-side cost per engine iteration
	// (scheduling, sampling, detokenisation).
	HostOverhead time.Duration
	// SDHostOverhead is the additional CPU cost per SD iteration (tree
	// construction, acceptance bookkeeping).
	SDHostOverhead time.Duration
	// SwitchCost is the one-off re-prefill cost when SD activates for a
	// running batch (paper: ~3s at datacenter scale).
	SwitchCost time.Duration
	// KVBudgetBytes caps resident KV-cache bytes (paper §7, uniformly-long
	// responses): when the decoding batch's KV exceeds the budget, excess
	// requests queue instead of decoding, shrinking the running batch.
	// Zero disables the cap.
	KVBudgetBytes float64
	// StopAtRemaining truncates a closed run once this few requests remain
	// (the premature-termination strategy of partial-rollout systems the
	// paper contrasts with). The scheduler itself never truncates — the
	// run-to-completion driver (rollout.Engine) applies the policy via
	// TruncateRemaining; it is carried here so engine configuration stays
	// one value.
	StopAtRemaining int
	// Cache, when non-nil, is a shared radix prefix cache: prefill skips
	// positions covered by a cached prefix (their target state is already
	// resident), matched nodes stay retained while their requests are
	// inflight, and retired sequences are inserted back with the
	// prompt-boundary hidden state so later requests — and warm-started
	// drafters — reuse them. Serving replicas on one shard share a single
	// cache.
	Cache *prefixcache.Cache
	// Metrics, when non-nil, receives the scheduler's cumulative counters
	// (sched/steps, sched/response_tokens, sched/prefill_saved_tokens,
	// sched/cancelled). Batches sharing a registry (serving replicas on
	// one shard) share the counters; increments are atomic and
	// allocation-free, so the step hot path keeps its 0 allocs/op pin.
	Metrics *metrics.Registry
	// Phases, when non-nil, receives the per-phase step-time decomposition
	// (admit-drain, prefill, draft, verify, cancel-sweep, retire,
	// tool-wait) stamped in virtual time. Replica batches sharing a shard
	// share one profile; accumulation is atomic and allocation-free, and a
	// nil profile costs Step exactly one pointer check ("free when off").
	// With Metrics also set, per-phase totals are exported as
	// sched/phase/<name>_ns gauges.
	Phases *PhaseProfile
}

// DefaultConfig returns the paper's engine settings for a device.
func DefaultConfig(dev *gpu.Device) Config {
	return Config{
		Device:         dev,
		Temp:           0.9,
		SDThreshold:    32,
		Strategies:     mab.DefaultStrategies(),
		MAB:            mab.DefaultConfig(),
		GraphPlan:      "bucketed",
		HostOverhead:   250 * time.Microsecond,
		SDHostOverhead: 1200 * time.Microsecond,
		SwitchCost:     4 * time.Millisecond,
	}
}

// StepProfile is one scheduler iteration's record (Fig. 14 data).
type StepProfile struct {
	// End is the virtual time at iteration end.
	End time.Duration
	// Running is the number of requests decoding in this iteration.
	Running int
	Mode    Mode
	// Strategy is the SD strategy used (zero for vanilla).
	Strategy specdec.Params
	// TokensOut is the number of response tokens produced this iteration.
	TokensOut int
}

// Stats summarises scheduler activity since the last ResetStats.
type Stats struct {
	PromptTokens    int
	ResponseTokens  int
	Elapsed         time.Duration
	Profile         []StepProfile
	SDSteps         int
	VanillaSteps    int
	AcceptLenSum    int
	AcceptRounds    int
	GraphMemBytes   float64
	SwitchCount     int
	DraftedNodes    int
	VerifiedTokens  int
	CompletionTimes []time.Duration
	// ToolWaitTime is total virtual time requests spent in GPU-free tool
	// calls; ToolCalls counts them.
	ToolWaitTime time.Duration
	ToolCalls    int
	// QueuedSteps counts iterations where the KV budget forced requests
	// to queue.
	QueuedSteps int
	// TruncatedRequests counts requests cut off by TruncateRemaining.
	TruncatedRequests int
	// CancelledRequests counts requests retired through the cancellation
	// path (Request.Cancel / Batch.Cancel) rather than finishing.
	CancelledRequests int
	// PrefillSavedTokens counts prompt positions whose prefill was skipped
	// because a cached prefix already covered them; PrefillCacheHits counts
	// requests that matched the cache at all. Both are 0 without a Cache.
	PrefillSavedTokens int
	PrefillCacheHits   int
}

// MeanAcceptLen returns the paper's accept-length metric
// (accepted/rounds + 1), 0 when SD never ran. It averages over every
// request the batch decoded; per-request accept lengths live on the
// requests themselves (Request.MeanAcceptLen).
func (s Stats) MeanAcceptLen() float64 {
	if s.AcceptRounds == 0 {
		return 0
	}
	return float64(s.AcceptLenSum)/float64(s.AcceptRounds) + 1
}

// Throughput returns response tokens per virtual second.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.ResponseTokens) / s.Elapsed.Seconds()
}

// Batch is an iteration-level scheduler over inflight sequences. It owns
// the speculation engine (and through it all decode scratch), the MAB
// strategy selector, and the CUDAGraph pool; one Batch serves one
// simulated device worker (trainer engine or serving replica) and is not
// safe for concurrent use.
type Batch struct {
	cfg     Config
	target  *model.LM
	drafter draft.Drafter

	selector *mab.Selector
	pool     *cudagraph.Pool
	// spec is the batch-owned speculation engine: its scratch (draft and
	// verification buffers, per-slot tree arenas) is reused across every
	// request and round so the decode hot path allocates nothing in
	// steady state.
	spec specdec.Engine

	// Clock may be shared across batches (one worker per batch); defaults
	// to a fresh clock. Timeline records labelled cost spans; set it to
	// nil on long-running step-loops (serving replicas) — like the
	// per-step profile, an unbounded span log has no place on a hot path
	// that never ends.
	Clock    *vclock.Clock
	Timeline *vclock.Timeline

	// RecordProfile controls per-iteration StepProfile accumulation.
	// Closed runs (the trainer) keep it on for Fig. 14-style profiles;
	// long-running serving step-loops turn it off so the scheduler holds
	// no unbounded per-step state.
	RecordProfile bool

	// The inflight set lives in a slot table driven by per-state
	// occupancy bitmaps (the CG-OoO issue-window shape: bitmap state,
	// find-first-set selection, age-as-slot-index ordering). slots[i]
	// holds the request bound to slot i; slot indices are assigned
	// monotonically at prefill, so ascending bit iteration over occ is
	// admission order — bit-identical selection order to the former
	// slice scans. occ marks bound slots, wait marks slots parked in a
	// GPU-free tool call (set when the call starts, cleared when the
	// clock passes its resume time — the tool state machine is monotone,
	// so the bit always equals the old per-step predicate), done marks
	// finished slots awaiting retirement collection, and cxl transiently
	// marks the slots of one cancellation sweep. tail is the first
	// never-assigned slot; when retirements leave the live population
	// far behind tail, the table compacts in admission order (amortised
	// O(1) per retirement), so per-step work tracks the live batch, not
	// its history.
	slots []*Request
	occ   bitset
	wait  bitset
	done  bitset
	cxl   bitset
	tail  int
	live  int

	// pending are admitted requests awaiting their prefill at the next
	// step boundary; retired are finished requests awaiting Retire.
	pending []*Request
	retired []*Request

	stats    Stats
	sdActive bool

	// Per-step scratch reused across iterations.
	decoding    []*Request
	seqs        []specdec.Seq
	rngs        []*rand.Rand
	results     []specdec.Result
	vanTok      []int
	vanEos      []bool
	biasMaps    []map[int]float32
	frontierAgg []int
	acceptLens  []int

	// Prefix-cache insert-back buffers.
	cacheHid     model.HiddenState
	cacheScratch *model.Scratch

	// Registry counters (nil without Config.Metrics).
	mSteps        *metrics.Counter
	mTokens       *metrics.Counter
	mPrefillSaved *metrics.Counter
	mCancelled    *metrics.Counter
}

// New builds a scheduler batch. drafter may be nil (vanilla decoding
// only).
func New(cfg Config, target *model.LM, drafter draft.Drafter) (*Batch, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("sched: nil device")
	}
	b := &Batch{
		cfg:           cfg,
		target:        target,
		drafter:       drafter,
		Clock:         &vclock.Clock{},
		Timeline:      &vclock.Timeline{},
		RecordProfile: true,
	}
	b.spec = specdec.Engine{Target: target, Temp: cfg.Temp}
	if cfg.Metrics != nil {
		b.mSteps = cfg.Metrics.Counter("sched/steps")
		b.mTokens = cfg.Metrics.Counter("sched/response_tokens")
		b.mPrefillSaved = cfg.Metrics.Counter("sched/prefill_saved_tokens")
		b.mCancelled = cfg.Metrics.Counter("sched/cancelled")
		if cfg.Phases != nil {
			ph := cfg.Phases
			for p := Phase(0); p < NumPhases; p++ {
				p := p
				cfg.Metrics.Gauge("sched/phase/"+p.String()+"_ns", func() float64 {
					return float64(ph.ns[p].Load())
				})
			}
		}
	}
	if drafter != nil && cfg.SDThreshold >= 0 {
		sel, err := mab.New(cfg.Strategies, cfg.MAB)
		if err != nil {
			return nil, err
		}
		b.selector = sel
		draftArch := drafter.Arch()
		if draftArch.Layers == 0 {
			draftArch = gpu.DraftArch(target.Arch())
		}
		var plan cudagraph.Plan
		switch cfg.GraphPlan {
		case "", "bucketed":
			plan = cudagraph.BucketedPlan(target.Arch(), draftArch, cfg.Device.TP,
				cfg.Strategies, cfg.MAB.Thresholds, cudagraph.DefaultBuckets)
		case "single":
			plan = cudagraph.SinglePlan(target.Arch(), draftArch, cfg.Device.TP,
				cfg.Strategies[0], cudagraph.DefaultBuckets)
		case "naive":
			plan = cudagraph.NaiveMultiPlan(target.Arch(), draftArch, cfg.Device.TP,
				cfg.Strategies, cudagraph.DefaultBuckets)
		case "none":
			plan = cudagraph.Plan{Name: "none"}
		default:
			return nil, fmt.Errorf("sched: unknown graph plan %q", cfg.GraphPlan)
		}
		b.pool = cudagraph.NewPool(plan)
		b.stats.GraphMemBytes = b.pool.MemBytes()
	}
	return b, nil
}

// Config returns the batch configuration.
func (b *Batch) Config() Config { return b.cfg }

// Selector exposes the MAB tuner (nil when SD disabled).
func (b *Batch) Selector() *mab.Selector { return b.selector }

// Pool exposes the CUDAGraph pool (nil when SD disabled).
func (b *Batch) Pool() *cudagraph.Pool { return b.pool }

// SetDrafter swaps the draft model (adaptive drafter weight refresh).
func (b *Batch) SetDrafter(d draft.Drafter) { b.drafter = d }

// Admit schedules a request to join the batch at the next step boundary:
// its prefill is folded into the next Step's prefill pass together with
// every other admission since the previous step, exactly one batched
// prompt forward per iteration.
func (b *Batch) Admit(r *Request) {
	if r.Trace != nil {
		now := b.Clock.Now()
		r.Trace.Record(trace.KindSubmit, now, now, 0)
	}
	b.pending = append(b.pending, r)
}

// ActiveCount returns the number of admitted requests that have not
// finished (pending admissions included).
func (b *Batch) ActiveCount() int {
	n := 0
	for w, word := range b.occ {
		n += bits.OnesCount64(word &^ b.done[w])
	}
	for _, r := range b.pending {
		if !r.Done {
			n++
		}
	}
	return n
}

// Inflight returns the number of requests currently inside the batch
// (prefilled, not yet retired).
func (b *Batch) Inflight() int { return b.live }

// Stats returns a copy of the accumulated statistics. Slice fields alias
// scheduler-owned storage that is replaced (not reused) by ResetStats, so
// a snapshot taken before a reset stays valid.
func (b *Batch) Stats() Stats {
	s := b.stats
	s.Elapsed = b.Clock.Now()
	return s
}

// ResetStats clears accumulated statistics (and the SD activation latch,
// which is defined against the cleared VanillaSteps counter). The
// run-to-completion driver calls it at the top of every run.
func (b *Batch) ResetStats() {
	gm := b.stats.GraphMemBytes
	b.stats = Stats{GraphMemBytes: gm}
	b.sdActive = false
}

// Reset drops every admitted request (releasing retained prefix-cache
// nodes without insert-back) and clears the retirement buffer. Requests
// keep their generated tokens; re-admitting them starts a fresh lifecycle
// (including a fresh prefill), which is how the run-to-completion driver
// reuses one batch across runs.
func (b *Batch) Reset() {
	b.occ.forEach(func(i int) {
		b.slots[i].releaseRetained()
		b.slots[i] = nil
	})
	b.occ.zero()
	b.wait.zero()
	b.done.zero()
	b.cxl.zero()
	b.tail = 0
	b.live = 0
	for _, r := range b.pending {
		r.releaseRetained()
	}
	b.pending = b.pending[:0]
	b.retired = b.retired[:0]
}

// Retire returns the requests that finished since the last call, in the
// order they completed, and clears the internal buffer. The returned
// slice aliases scheduler storage valid until the next Step.
func (b *Batch) Retire() []*Request {
	out := b.retired
	b.retired = b.retired[:0]
	return out
}

// Cancel marks every live admitted request with the given ID for
// retirement at the next step boundary and reports whether one was
// found. Like every Batch method it must run on the batch-owning
// goroutine; cross-goroutine cancellation goes through Request.Cancel,
// which is safe from anywhere and what this method delegates to.
func (b *Batch) Cancel(reqID int) bool {
	found := false
	for _, r := range b.pending {
		if r.ID == reqID && !r.Done {
			r.Cancel()
			found = true
		}
	}
	for w, word := range b.occ {
		word &^= b.done[w]
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if r := b.slots[i]; r.ID == reqID && !r.Done {
				r.Cancel()
				found = true
			}
		}
	}
	return found
}

// sweepCancelled retires cancellation-marked requests at the step
// boundary: pending admissions leave before ever prefilling (a request
// cancelled in the admission queue never enters a batch and its prompt is
// never charged), inflight requests leave before the decode set is built
// — freeing their batch slot and KV charge for the next admission — and
// both release their retained prefix-cache pins. Cancelled sequences are
// NOT inserted back into the cache: the stream was abandoned, so there is
// no completed sequence worth sharing. A request that already finished
// naturally is skipped (Done wins), so a cancel racing natural completion
// resolves to exactly one terminal state.
func (b *Batch) sweepCancelled() {
	now := b.Clock.Now()
	kept := b.pending[:0]
	for _, r := range b.pending {
		if r.CancelRequested() && !r.Done {
			r.Done = true
			r.cancelled = true
			// A pending request never prefilled, so admittedAt was never
			// stamped; anchor it here so DecodeTime() is zero rather than
			// the batch clock's whole lifetime.
			r.admittedAt = now
			r.finishedAt = now
			r.hasFinished = true
			r.releaseRetained()
			b.stats.CancelledRequests++
			b.cfg.Phases.count(PhaseCancelSweep, 1)
			if b.mCancelled != nil {
				b.mCancelled.Inc()
			}
			if r.Trace != nil {
				r.Trace.Record(trace.KindCancel, now, now, 0)
				r.Trace.Close(trace.KindRetire, now, 0)
			}
			b.cfg.Phases.count(PhaseRetire, 1)
			b.retired = append(b.retired, r)
			continue
		}
		kept = append(kept, r)
	}
	for i := len(kept); i < len(b.pending); i++ {
		b.pending[i] = nil
	}
	b.pending = kept

	// Inflight sweep: one atomic flag load per live slot marks the
	// cancellation bitmap; marked slots fold into the done bitmap and
	// retire through the ordinary collection walk, in admission order.
	swept := false
	for w, word := range b.occ {
		word &^= b.done[w]
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r := b.slots[i]
			if !r.CancelRequested() || r.Done {
				continue
			}
			b.cxl.set(i)
			r.Done = true
			r.cancelled = true
			r.finishedAt = now
			r.hasFinished = true
			b.stats.CancelledRequests++
			b.cfg.Phases.count(PhaseCancelSweep, 1)
			if b.mCancelled != nil {
				b.mCancelled.Inc()
			}
			if r.Trace != nil {
				r.Trace.Record(trace.KindCancel, now, now, 0)
			}
			swept = true
		}
	}
	if swept {
		for w := range b.done {
			b.done[w] |= b.cxl[w]
			b.cxl[w] = 0
		}
		b.collectRetired()
	}
}

// TruncateRemaining marks every unfinished admitted request as done
// (truncated) at the current virtual time — the premature-termination
// strategy: the long tail is cut instead of decoded. Truncated requests
// retire normally (and are inserted into the prefix cache, like any
// completed sequence).
func (b *Batch) TruncateRemaining() {
	now := b.Clock.Now()
	for w, word := range b.occ {
		word &^= b.done[w]
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r := b.slots[i]
			if r.Done {
				continue
			}
			r.Done = true
			r.truncated = true
			r.finishedAt = now
			r.hasFinished = true
			b.done.set(i)
			b.stats.TruncatedRequests++
			b.stats.CompletionTimes = append(b.stats.CompletionTimes, now)
		}
	}
	for _, r := range b.pending {
		if r.Done {
			continue
		}
		r.Done = true
		r.truncated = true
		r.finishedAt = now
		r.hasFinished = true
		b.stats.TruncatedRequests++
		b.stats.CompletionTimes = append(b.stats.CompletionTimes, now)
	}
	b.collectRetired()
	// Pending requests never prefilled; retire them too.
	for _, r := range b.pending {
		r.releaseRetained()
		if r.Trace != nil {
			r.Trace.Close(trace.KindRetire, now, int64(r.Generated()))
		}
		b.cfg.Phases.count(PhaseRetire, 1)
		b.retired = append(b.retired, r)
	}
	b.pending = b.pending[:0]
}

// Step runs one scheduler iteration: pending admissions prefill in one
// pass, tool-waiting requests are partitioned out, the KV budget bounds
// the decoding set, and every decoding request advances one vanilla token
// or one speculation round through a single batched scoring pass. It
// returns the iteration's profile and whether any decoding happened (an
// all-waiting iteration only advances the clock; an empty batch does
// nothing).
//
// rng is the shared sampling stream used by requests without a private
// RNG; requests decode in admission order, so a closed batch with a
// shared stream reproduces the pre-scheduler rollout engine draw-for-draw.
func (b *Batch) Step(rng *rand.Rand) (StepProfile, bool) {
	ph := b.cfg.Phases
	var stepStart time.Duration
	if ph != nil {
		stepStart = b.Clock.Now()
	}
	b.sweepCancelled()
	b.prefillPending()

	// Partition the live slots by bitmap words: expire tool-wait bits
	// whose resume time has passed, then the ready set is one masked
	// word operation (occ &^ done &^ wait) per 64 slots. Ascending bit
	// order is admission order, so the decoding set is built in exactly
	// the order the old slice scans produced.
	now := b.Clock.Now()
	b.decoding = b.decoding[:0]
	waiting := 0
	earliest := time.Duration(0)
	for w, word := range b.occ {
		liveW := word &^ b.done[w]
		for ww := liveW & b.wait[w]; ww != 0; ww &= ww - 1 {
			i := w<<6 + bits.TrailingZeros64(ww)
			if t := b.slots[i].waitingUntil(); t > now {
				if waiting == 0 || t < earliest {
					earliest = t
				}
				waiting++
			} else {
				b.wait.clear(i)
			}
		}
		for ready := liveW &^ b.wait[w]; ready != 0; ready &= ready - 1 {
			b.decoding = append(b.decoding, b.slots[w<<6+bits.TrailingZeros64(ready)])
		}
	}
	if len(b.decoding) == 0 {
		if waiting == 0 {
			// No live inflight requests at all: nothing to do, and the
			// clock must not move.
			ph.endStep(stepStart, b.Clock.Now())
			return StepProfile{}, false
		}
		// Multi-turn: every live request is inside a tool call — jump the
		// clock to the earliest resume.
		ph.add(PhaseToolWait, earliest-now)
		b.Clock.AdvanceTo(earliest)
		ph.endStep(stepStart, b.Clock.Now())
		return StepProfile{}, false
	}
	active := b.decoding

	// Uniformly-long regime: the KV budget bounds the resident batch.
	if b.cfg.KVBudgetBytes > 0 {
		if resident := b.kvResidentLimit(active); resident < len(active) {
			active = active[:resident]
			b.stats.QueuedSteps++
		}
	}

	useSD := b.selector != nil && (b.cfg.SDThreshold == 0 || len(active) <= b.cfg.SDThreshold)
	if useSD && !b.sdActive && b.stats.VanillaSteps > 0 {
		// Activating SD mid-run re-prefills the running batch to seed
		// drafter state (paper §6.4: completes within seconds). Runs
		// that start in SD need no switch.
		b.stats.SwitchCount++
		t0 := b.Clock.Now()
		b.Clock.Advance(b.cfg.SwitchCost)
		// The activation switch is a re-prefill of the running batch.
		ph.add(PhasePrefill, b.cfg.SwitchCost)
		if b.Timeline != nil {
			b.Timeline.Record("sd-switch", t0, b.Clock.Now())
		}
	}
	b.sdActive = useSD

	var prof StepProfile
	if useSD {
		prof = b.sdStep(active, rng)
		b.stats.SDSteps++
	} else {
		prof = b.vanillaStep(active, rng)
		b.stats.VanillaSteps++
	}
	for _, r := range active {
		if r.maybeStartToolCall(b.Clock.Now()) {
			b.wait.set(r.slot)
			b.stats.ToolCalls++
			b.stats.ToolWaitTime += r.Tool.Latency
			if r.Trace != nil {
				r.Trace.Record(trace.KindToolWait, b.Clock.Now(), r.waitingUntil(), 0)
			}
		}
	}
	for _, r := range active {
		// Tokens land at the step's end in virtual time: the first-token
		// timestamp (the per-request TTFT anchor) is stamped after the
		// iteration's cost has been charged to the clock.
		if !r.hasFirstTok && r.Generated() > 0 {
			r.hasFirstTok = true
			r.firstTokenAt = b.Clock.Now()
			r.firstTokN = r.Generated()
		}
		if r.Done {
			b.done.set(r.slot)
			if !r.hasFinished {
				r.finishedAt = b.Clock.Now()
				r.hasFinished = true
				b.stats.CompletionTimes = append(b.stats.CompletionTimes, r.finishedAt)
			}
		}
	}
	if b.RecordProfile {
		b.stats.Profile = append(b.stats.Profile, prof)
	}
	if b.mSteps != nil {
		b.mSteps.Inc()
		b.mTokens.Add(int64(prof.TokensOut))
	}
	b.collectRetired()
	ph.endStep(stepStart, b.Clock.Now())
	return prof, true
}

// prefillPending moves admissions into the inflight set, charging one
// batched prompt forward for all of them. With a prefix cache, positions
// covered by a cached prefix are skipped (their target state is already
// resident); the matched nodes stay retained until the request retires so
// eviction cannot reclaim state being decoded on.
func (b *Batch) prefillPending() {
	if len(b.pending) == 0 {
		return
	}
	b.cfg.Phases.count(PhaseAdmitDrain, int64(len(b.pending)))
	var promptTokens int
	for _, r := range b.pending {
		promptTokens += len(r.Prompt)
	}
	b.stats.PromptTokens += promptTokens
	prefillTokens := promptTokens
	if b.cfg.Cache != nil {
		for _, r := range b.pending {
			n, matched := b.cfg.Cache.Lookup(r.Prompt)
			r.hidCached = n != nil && matched == len(r.Prompt) && n.Hidden() != nil
			if n == nil {
				continue
			}
			r.retained = n
			prefillTokens -= matched
			b.stats.PrefillSavedTokens += matched
			b.stats.PrefillCacheHits++
		}
	}
	saved := b.stats.PrefillSavedTokens
	for _, r := range b.pending {
		r.admittedAt = b.Clock.Now()
	}
	t0 := b.Clock.Now()
	if promptTokens > 0 {
		// KVTokens stays at the full prompt length: the cached prefix
		// contributes resident KV; only its recompute is saved.
		cost := b.cfg.Device.Forward(b.target.Arch(), gpu.ForwardOpts{
			Tokens: prefillTokens, KVTokens: promptTokens,
		}).Total() + b.cfg.HostOverhead
		b.Clock.Advance(cost)
		b.cfg.Phases.add(PhasePrefill, cost)
		if b.Timeline != nil {
			b.Timeline.Record("prefill", t0, b.Clock.Now())
		}
	}
	end := b.Clock.Now()
	for _, r := range b.pending {
		if r.Trace != nil {
			r.Trace.Record(trace.KindQueue, r.Trace.SubmittedAt(), t0, 0)
			r.Trace.Record(trace.KindPrefill, t0, end, int64(len(r.Prompt)))
		}
	}
	if b.mPrefillSaved != nil {
		b.mPrefillSaved.Add(int64(b.stats.PrefillSavedTokens - saved))
	}
	for _, r := range b.pending {
		b.bindSlot(r)
	}
	b.pending = b.pending[:0]
}

// bindSlot binds a prefilled request to the next free slot. Slots are
// handed out monotonically — never reused out of order — so ascending
// occupancy-bit iteration is admission order; compaction (the only slot
// reassignment) preserves that order. A request admitted already
// finished goes straight to the done bitmap (it never decodes and is
// collected at the step's end), and one admitted mid-tool-call parks in
// the wait bitmap, exactly as the old per-step scans classified them.
func (b *Batch) bindSlot(r *Request) {
	if b.tail >= len(b.slots) {
		b.growSlots()
	}
	i := b.tail
	b.tail++
	b.slots[i] = r
	r.slot = i
	b.occ.set(i)
	b.live++
	if r.Done {
		b.done.set(i)
	}
	if r.waitingUntil() > b.Clock.Now() {
		b.wait.set(i)
	}
}

// growSlots doubles the slot table and its bitmaps (words stay in
// lockstep). Growth is a high-water-mark event: steady-state stepping
// never reaches it, keeping the 0 allocs/op pin.
func (b *Batch) growSlots() {
	words := len(b.occ) * 2
	if words == 0 {
		words = 1
	}
	slots := make([]*Request, words*64)
	copy(slots, b.slots)
	b.slots = slots
	grow := func(s bitset) bitset {
		ns := make(bitset, words)
		copy(ns, s)
		return ns
	}
	b.occ = grow(b.occ)
	b.wait = grow(b.wait)
	b.done = grow(b.done)
	b.cxl = grow(b.cxl)
}

// maybeCompact re-packs live slots to the front of the table (in
// admission order, preserving bit order) once retirements have left the
// live population far behind the monotonic tail. The 2x slack bounds
// compaction work to O(live) amortised per retirement; the floor keeps
// small batches from compacting at all.
func (b *Batch) maybeCompact() {
	if b.tail < 128 || b.live*2 >= b.tail {
		return
	}
	j := 0
	for w, word := range b.occ {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if i != j {
				r := b.slots[i]
				b.slots[j], b.slots[i] = r, nil
				r.slot = j
				b.occ.clear(i)
				b.occ.set(j)
				if b.wait.has(i) {
					b.wait.clear(i)
					b.wait.set(j)
				}
			}
			j++
		}
	}
	b.tail = j
}

// collectRetired moves finished requests out of the inflight set (in
// admission order — ascending done-bit order) into the retirement
// buffer, inserting completed sequences into the prefix cache and
// releasing their retained nodes. Freed slots leave every bitmap, so
// the walk costs one masked word read per 64 slots plus work
// proportional to the requests actually retiring.
func (b *Batch) collectRetired() {
	retiredBefore := len(b.retired)
	for w, word := range b.done {
		word &= b.occ[w]
		if word == 0 {
			continue
		}
		b.occ[w] &^= word
		b.wait[w] &^= word
		b.done[w] &^= word
		for ; word != 0; word &= word - 1 {
			i := w<<6 + bits.TrailingZeros64(word)
			r := b.slots[i]
			b.slots[i] = nil
			b.live--
			if b.cfg.Cache != nil && !r.cancelled {
				b.cacheInsertBack(r)
			}
			r.releaseRetained()
			if r.Trace != nil {
				r.Trace.Close(trace.KindRetire, r.finishedAt, int64(r.Generated()))
			}
			b.retired = append(b.retired, r)
		}
	}
	b.cfg.Phases.count(PhaseRetire, int64(len(b.retired)-retiredBefore))
	b.maybeCompact()
}

// cacheInsertBack writes one completed sequence into the prefix cache
// with the prompt-boundary hidden state, so a later request sharing the
// prompt can resume from it.
func (b *Batch) cacheInsertBack(r *Request) {
	if len(r.Prompt) == 0 {
		return
	}
	if b.cacheScratch == nil {
		b.cacheScratch = model.NewScratch()
	}
	// The hidden sketch is a pure function of the (frozen-at-serving)
	// target and the prompt, so when the full prompt matched a node that
	// already carries one, recomputing it would reproduce the resident
	// value — skip the pass and only harvest continuations.
	hid := (*model.HiddenState)(nil)
	if !r.hidCached {
		model.FusedHiddenInto(b.target,
			model.Context{Tokens: r.Prompt, PromptLen: len(r.Prompt)},
			1, &b.cacheHid, b.cacheScratch)
		hid = &b.cacheHid
	}
	b.cfg.Cache.Insert(r.Tokens, len(r.Prompt), hid)
}

// kvResidentLimit returns how many of the active requests fit the KV
// budget (at least one, so progress is guaranteed).
func (b *Batch) kvResidentLimit(active []*Request) int {
	perTok := b.target.Arch().KVBytesPerToken() / float64(b.cfg.Device.TP)
	var used float64
	for i, r := range active {
		used += perTok * float64(len(r.Tokens))
		if used > b.cfg.KVBudgetBytes && i > 0 {
			return i
		}
	}
	return len(active)
}

func kvTokens(active []*Request) int {
	var kv int
	for _, r := range active {
		kv += len(r.Tokens)
	}
	return kv
}

// ensureSlots grows the per-step sequence scratch to n slots. Bias maps
// are allocated once per slot and reused (cleared) every step, so the
// steady-state step allocates nothing.
func (b *Batch) ensureSlots(n int) {
	if cap(b.seqs) < n {
		b.seqs = make([]specdec.Seq, n)
		b.rngs = make([]*rand.Rand, n)
		b.results = make([]specdec.Result, n)
		b.vanTok = make([]int, n)
		b.vanEos = make([]bool, n)
	}
	b.seqs = b.seqs[:n]
	b.rngs = b.rngs[:n]
	b.results = b.results[:n]
	b.vanTok = b.vanTok[:n]
	b.vanEos = b.vanEos[:n]
	for len(b.biasMaps) < n {
		b.biasMaps = append(b.biasMaps, make(map[int]float32, 2))
	}
}

// rngFor returns the request's private stream, or the shared one.
func rngFor(r *Request, shared *rand.Rand) *rand.Rand {
	if r.RNG != nil {
		return r.RNG
	}
	return shared
}

// fillSlots stages the decoding set into the speculation engine's
// sequence descriptors.
func (b *Batch) fillSlots(active []*Request, rng *rand.Rand) {
	b.ensureSlots(len(active))
	for i, r := range active {
		b.seqs[i] = specdec.Seq{
			Tokens:    r.Tokens,
			PromptLen: len(r.Prompt),
			Bias:      r.biasInto(b.biasMaps[i]),
			EosID:     r.EosID,
		}
		b.rngs[i] = rngFor(r, rng)
	}
}

// clearSlots drops request slice references staged by fillSlots so
// retired requests are not pinned by scheduler scratch.
func (b *Batch) clearSlots() {
	for i := range b.seqs {
		b.seqs[i] = specdec.Seq{}
		b.rngs[i] = nil
	}
}

// vanillaStep decodes one token for every active request through one
// grouped batched scoring pass.
func (b *Batch) vanillaStep(active []*Request, rng *rand.Rand) StepProfile {
	b.fillSlots(active, rng)
	b.spec.VanillaStepBatch(b.seqs, b.rngs, b.vanTok, b.vanEos)
	obs, observing := b.drafter.(draft.Observer)
	for i, r := range active {
		r.Tokens = append(r.Tokens, b.vanTok[i])
		r.EosSeen = r.EosSeen || b.vanEos[i]
		if observing {
			obs.Observe(r.Tokens, len(r.Prompt))
		}
		r.finish()
	}
	b.clearSlots()
	b.stats.ResponseTokens += len(active)

	// Vanilla decode replays the engine's standard decode graphs.
	cost := b.cfg.Device.Forward(b.target.Arch(), gpu.ForwardOpts{
		Tokens: len(active), KVTokens: kvTokens(active), CUDAGraph: true,
	}).Total() + b.cfg.HostOverhead
	t0 := b.Clock.Now()
	b.Clock.Advance(cost)
	// Vanilla decode is all commit: no draft pass exists to attribute.
	b.cfg.Phases.add(PhaseVerify, cost)
	if b.Timeline != nil {
		b.Timeline.Record("decode", t0, b.Clock.Now())
	}
	end := b.Clock.Now()
	for _, r := range active {
		if r.Trace != nil {
			r.Trace.Record(trace.KindDecode, t0, end, 1)
		}
	}
	return StepProfile{End: end, Running: len(active), Mode: ModeVanilla, TokensOut: len(active)}
}

// sdStep performs one speculative round for every active request: every
// request's tree drafts against the same drafter snapshot and all trees
// verify through one grouped batched target pass (specdec.StepBatch).
// Online-learning drafters observe the new tokens after the batch round,
// as a real batched drafter forward would.
func (b *Batch) sdStep(active []*Request, rng *rand.Rand) StepProfile {
	strategy := b.selector.Select(len(active))
	if cap(b.frontierAgg) < strategy.DraftDepth {
		b.frontierAgg = make([]int, strategy.DraftDepth)
	}
	frontierPerDepth := b.frontierAgg[:strategy.DraftDepth]
	for i := range frontierPerDepth {
		frontierPerDepth[i] = 0
	}

	b.fillSlots(active, rng)
	b.spec.StepBatch(b.drafter, b.seqs, strategy, b.rngs, b.results)

	acceptLens := b.acceptLens[:0]
	obs, observing := b.drafter.(draft.Observer)
	var (
		verified  int
		tokensOut int
	)
	for i, r := range active {
		res := &b.results[i]
		// Clip overshoot past MaxNew (the engine cap).
		tokens := res.Tokens
		if over := r.Generated() + len(tokens) - r.MaxNew; over > 0 {
			tokens = tokens[:len(tokens)-over]
			res.Eos = false
		}
		r.Tokens = append(r.Tokens, tokens...)
		r.EosSeen = r.EosSeen || res.Eos
		r.AcceptLens = append(r.AcceptLens, res.AcceptLen)
		acceptLens = append(acceptLens, res.AcceptLen)
		// vanTok is unused during SD rounds; stash the per-request token
		// count so the trace records the round's delivery after the
		// iteration's cost is known.
		b.vanTok[i] = len(tokens)
		tokensOut += len(tokens)
		for d, w := range res.FrontierPerDepth {
			if d < len(frontierPerDepth) {
				frontierPerDepth[d] += w
			}
		}
		verified += res.VerifiedTokens
		b.stats.DraftedNodes += res.DraftedNodes
		if observing {
			obs.Observe(r.Tokens, len(r.Prompt))
		}
		r.finish()
	}
	b.clearSlots()
	b.stats.ResponseTokens += tokensOut
	b.stats.VerifiedTokens += verified
	b.stats.AcceptRounds += len(active)
	for _, a := range acceptLens {
		b.stats.AcceptLenSum += a
	}

	kv := kvTokens(active)
	var draftCost time.Duration
	sdHost := b.cfg.SDHostOverhead

	// Drafting: one sequential pass per depth over the batch frontier.
	draftArch := b.drafter.Arch()
	if draftArch.Layers == 0 {
		// Model-free retrieval drafting skips the draft-model forward and
		// most of the tree bookkeeping (Lookahead-style): half the host
		// cost, no GPU drafting cost.
		sdHost /= 2
	}
	if draftArch.Layers > 0 {
		_, graphOK := b.pool.Lookup(cudagraph.KindDraft, len(active), strategy.TopK)
		for _, w := range frontierPerDepth {
			if w == 0 {
				continue
			}
			draftCost += b.cfg.Device.Forward(draftArch, gpu.ForwardOpts{
				Tokens: w, KVTokens: kv, CUDAGraph: graphOK,
			}).Total()
		}
	}

	// Verification: one target pass over all selected tree nodes. Host
	// overheads ride with the verify/commit slice of the iteration.
	_, graphOK := b.pool.Lookup(cudagraph.KindTarget, len(active), strategy.TokensToVerify)
	verifyCost := b.cfg.Device.Forward(b.target.Arch(), gpu.ForwardOpts{
		Tokens: verified, KVTokens: kv, CUDAGraph: graphOK,
	}).Total() + b.cfg.HostOverhead + sdHost
	cost := draftCost + verifyCost

	t0 := b.Clock.Now()
	b.Clock.Advance(cost)
	if draftCost > 0 {
		b.cfg.Phases.add(PhaseDraft, draftCost)
	}
	b.cfg.Phases.add(PhaseVerify, verifyCost)
	if b.Timeline != nil {
		b.Timeline.Record("sd", t0, b.Clock.Now())
	}
	end := b.Clock.Now()
	for i, r := range active {
		if r.Trace != nil {
			r.Trace.Record(trace.KindSDRound, t0, end, int64(b.vanTok[i]))
		}
	}
	b.selector.Record(strategy, cost, acceptLens, len(active)) // Record only sums; reuse is safe
	b.acceptLens = acceptLens[:0]
	return StepProfile{End: end, Running: len(active), Mode: ModeSD, Strategy: strategy, TokensOut: tokensOut}
}
