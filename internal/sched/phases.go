package sched

import (
	"sync/atomic"
	"time"
)

// Phase identifies one slice of a scheduler iteration for tail-latency
// attribution: where inside Batch.Step a request's virtual time actually
// goes. Phases that advance the clock (prefill, draft, verify, tool-wait)
// accumulate virtual nanoseconds; boundary phases that are free in
// virtual time (admit-drain, cancel-sweep, retire) accumulate event
// counts only, so the phase-time sum decomposes total step time exactly.
type Phase int

const (
	// PhaseAdmitDrain counts requests drained from the admission queue
	// into the batch (zero virtual time; the prefill pass carries the
	// cost).
	PhaseAdmitDrain Phase = iota
	// PhasePrefill is the batched prompt forward for new admissions, plus
	// the one-off SD-activation re-prefill (SwitchCost).
	PhasePrefill
	// PhaseDraft is the draft-model forward passes of an SD round.
	PhaseDraft
	// PhaseVerify is the batched target verification/commit pass (or the
	// whole decode pass in vanilla mode) plus per-iteration host
	// overheads.
	PhaseVerify
	// PhaseCancelSweep counts requests retired through the cancellation
	// sweep at the step boundary.
	PhaseCancelSweep
	// PhaseRetire counts requests moved to the retirement buffer.
	PhaseRetire
	// PhaseToolWait is the clock jump of an all-waiting iteration (every
	// active request inside a GPU-free tool call).
	PhaseToolWait
	// NumPhases is the number of phases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"admit-drain", "prefill", "draft", "verify", "cancel-sweep", "retire", "tool-wait",
}

func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// PhaseProfile accumulates per-phase virtual time and event counts across
// scheduler iterations. All fields are atomics, so one profile may be
// shared by every replica batch of a shard (they still step on their own
// goroutines) and read concurrently by stats snapshots. A nil profile is
// inert: every method is a nil-receiver no-op, keeping Step's hot path at
// one pointer check when profiling is off ("free when off").
type PhaseProfile struct {
	ns     [NumPhases]atomic.Int64
	events [NumPhases]atomic.Int64
	steps  atomic.Int64
	total  atomic.Int64
}

// NewPhaseProfile returns an empty profile.
func NewPhaseProfile() *PhaseProfile { return &PhaseProfile{} }

// add charges virtual time to a phase.
func (p *PhaseProfile) add(ph Phase, d time.Duration) {
	if p == nil {
		return
	}
	p.ns[ph].Add(int64(d))
	p.events[ph].Add(1)
}

// count records events for a zero-virtual-time phase.
func (p *PhaseProfile) count(ph Phase, n int64) {
	if p == nil || n == 0 {
		return
	}
	p.events[ph].Add(n)
}

// endStep closes one Step call, accumulating its total clock movement.
// The per-phase sum must reconcile with this total: every clock advance
// inside Step is attributed to exactly one phase.
func (p *PhaseProfile) endStep(start, end time.Duration) {
	if p == nil {
		return
	}
	p.steps.Add(1)
	p.total.Add(int64(end - start))
}

// PhaseSnapshot is a point-in-time copy of a PhaseProfile.
type PhaseSnapshot struct {
	Ns      [NumPhases]int64
	Events  [NumPhases]int64
	Steps   int64
	TotalNs int64
}

// Snapshot reads the profile (nil-safe: a nil profile reports zeros).
// Concurrent stepping may move individual counters between reads; at
// quiescence the snapshot is exact and Reconciles.
func (p *PhaseProfile) Snapshot() PhaseSnapshot {
	var s PhaseSnapshot
	if p == nil {
		return s
	}
	for i := 0; i < int(NumPhases); i++ {
		s.Ns[i] = p.ns[i].Load()
		s.Events[i] = p.events[i].Load()
	}
	s.Steps = p.steps.Load()
	s.TotalNs = p.total.Load()
	return s
}

// SumNs returns the summed per-phase virtual time.
func (s PhaseSnapshot) SumNs() int64 {
	var sum int64
	for _, v := range s.Ns {
		sum += v
	}
	return sum
}

// Reconciles reports whether the phase decomposition is exact: the
// per-phase sum equals the total virtual time Step calls moved the clock.
func (s PhaseSnapshot) Reconciles() bool { return s.SumNs() == s.TotalNs }
