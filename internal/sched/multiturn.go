package sched

import "time"

// ToolProfile models multi-turn tool-calling rollouts (paper §7): after
// every Every generated tokens the request performs a GPU-free tool call
// of the given Latency, during which its KV cache stays resident but it
// does not decode. Tool waits shrink the active decoding batch, creating
// exactly the small-batch regime where speculative decoding shines.
type ToolProfile struct {
	// Every is the token period between tool calls (0 disables).
	Every int
	// Latency is the tool execution time per call.
	Latency time.Duration
	// MaxCalls caps the number of tool calls (0 = unlimited).
	MaxCalls int
}

// Enabled reports whether the profile triggers tool calls.
func (t ToolProfile) Enabled() bool { return t.Every > 0 && t.Latency > 0 }

// toolState tracks a request's tool-call progress.
type toolState struct {
	// resumeAt is the virtual time the current tool call completes.
	resumeAt time.Duration
	// nextAt is the generated-token count triggering the next call.
	nextAt int
	calls  int
}

// maybeStartToolCall checks whether the request just crossed a tool-call
// boundary and, if so, parks it until now+latency. Returns true when a
// call started.
func (r *Request) maybeStartToolCall(now time.Duration) bool {
	if !r.Tool.Enabled() || r.Done {
		return false
	}
	if r.tool.nextAt == 0 {
		r.tool.nextAt = r.Tool.Every
	}
	if r.Generated() < r.tool.nextAt {
		return false
	}
	if r.Tool.MaxCalls > 0 && r.tool.calls >= r.Tool.MaxCalls {
		return false
	}
	r.tool.calls++
	r.tool.nextAt += r.Tool.Every
	r.tool.resumeAt = now + r.Tool.Latency
	return true
}

// waitingUntil returns the request's tool resume time (zero when not
// waiting).
func (r *Request) waitingUntil() time.Duration { return r.tool.resumeAt }

// ToolCalls returns the number of tool calls the request has made.
func (r *Request) ToolCalls() int { return r.tool.calls }
