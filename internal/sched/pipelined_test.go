package sched

import (
	"math/rand"
	"runtime"
	"testing"

	"fastrl/internal/gpu"
	"fastrl/internal/prefixcache"
)

// TestContinuousPipelinedMatchesSerial pins end-to-end bit-identity of
// the scheduler when the specdec engine's software-pipelined rounds are
// active: the same continuous-batching run — staggered admissions,
// retirements, per-request RNGs — must deliver identical token streams
// and accept-length traces whether StepBatch overlaps its stages
// (GOMAXPROCS > 1) or runs them serially. This is the scheduler-level
// companion to specdec's TestStepBatchPipelinedMatchesSerial: it drives
// the pipeline through sdStep with real admission churn, with and
// without a prefix cache.
func TestContinuousPipelinedMatchesSerial(t *testing.T) {
	env := newEnv(t)
	old := runtime.GOMAXPROCS(0)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	const nReqs = 6
	const maxNew = 40

	build := func() []*Request {
		reqs := make([]*Request, nReqs)
		for i := range reqs {
			reqs[i] = env.poolRequest(i, i, maxNew, int64(7000+i))
		}
		return reqs
	}
	runCont := func(t *testing.T, cached bool, maxprocs int) []*Request {
		t.Helper()
		runtime.GOMAXPROCS(maxprocs)
		cfg := fixedStrategyConfig(gpu.NewDevice(gpu.H100, 1))
		if cached {
			cfg.Cache = prefixcache.New(prefixcache.Config{})
		}
		b, err := New(cfg, env.target, env.eagle)
		if err != nil {
			t.Fatal(err)
		}
		reqs := build()
		rng := rand.New(rand.NewSource(3))
		next := 0
		for step := 0; b.ActiveCount() > 0 || next < len(reqs); step++ {
			if step > 100000 {
				t.Fatal("continuous run did not converge")
			}
			if next < len(reqs) && step%3 != 2 {
				b.Admit(reqs[next])
				next++
			}
			b.Step(rng)
			b.Retire()
		}
		return reqs
	}

	for _, cached := range []bool{false, true} {
		name := "nocache"
		if cached {
			name = "cache"
		}
		t.Run(name, func(t *testing.T) {
			serial := runCont(t, cached, 1)
			piped := runCont(t, cached, 2)
			for i := range serial {
				s, p := serial[i], piped[i]
				if len(s.Tokens) != len(p.Tokens) {
					t.Fatalf("request %d: serial %d tokens, pipelined %d", i, len(s.Tokens), len(p.Tokens))
				}
				for j := range s.Tokens {
					if s.Tokens[j] != p.Tokens[j] {
						t.Fatalf("request %d diverges at position %d: serial %d vs pipelined %d",
							i, j, s.Tokens[j], p.Tokens[j])
					}
				}
				if len(s.AcceptLens) != len(p.AcceptLens) {
					t.Fatalf("request %d: serial %d SD rounds, pipelined %d",
						i, len(s.AcceptLens), len(p.AcceptLens))
				}
				for j := range s.AcceptLens {
					if s.AcceptLens[j] != p.AcceptLens[j] {
						t.Fatalf("request %d round %d: accept %d vs %d",
							i, j, s.AcceptLens[j], p.AcceptLens[j])
					}
				}
				if s.EosSeen != p.EosSeen {
					t.Fatalf("request %d: EOS flag diverged", i)
				}
			}
		})
	}
}
