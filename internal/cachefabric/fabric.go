// Package cachefabric is the cluster-level cache fabric over the
// per-shard radix prefix caches: a prefix directory (token prefix →
// shard holder set) maintained from the stats the shards already export,
// plus the policies built on it — asynchronous replication of the
// hottest prefixes to every shard, eviction gossip so directory entries
// never dangle after a shard's LRU frees a node, and warm handoff for
// shards the scaler revives or promotes.
//
// The fabric is advisory routing state, never a correctness surface: a
// stale holder bit costs one cache miss (which re-seeds the prefix), so
// every maintenance decision favours cheap eventual consistency over
// coordination. Division of labour:
//
//   - Lookup is the routing hot path: one walk of the prompt with a
//     rolling hash, map probes only at registered prefix lengths, token
//     verification against the stored prefix (hash collisions can hide
//     an entry but never fabricate a match). Zero heap allocations.
//   - Sync is the gossip path, driven at step boundaries in virtual
//     time: it drains each shard's versioned eviction journal, clears
//     holder bits exactly per record, and — when a journal has wrapped
//     past its cursor — marks the shard's bits pending-invalidation and
//     re-verifies them with MatchLen probes instead of trusting them.
//   - Plan selects replications deterministically (hit count descending,
//     admission order breaking ties); the cluster ships them to target
//     shards, which apply at their own step boundaries and confirm back.
//
// Everything above the hot path may allocate; nothing here contains
// randomness, so identical operation sequences produce identical
// directory state and replication schedules.
package cachefabric

import (
	"math/bits"
	"sort"
	"sync"

	"fastrl/internal/metrics"
	"fastrl/internal/prefixcache"
)

// Defaults; see Config.
const (
	DefaultTopK       = 32
	DefaultMaxEntries = 4096
)

// Config parameterises a Fabric.
type Config struct {
	// TopK is how many hottest prefixes per shard fold into the directory
	// each Sync, and how many replications Plan schedules per call.
	// 0 means DefaultTopK.
	TopK int
	// MaxEntries bounds directory memory: when the directory exceeds it,
	// the coldest entries (fewest hits, newest first) are dropped at the
	// end of Sync. 0 means DefaultMaxEntries.
	MaxEntries int
}

// entry is one directory row. holders is the bitmask of shards believed
// to hold the full prefix, pending marks holder bits that must be
// re-verified before being trusted (set when that shard's eviction
// journal wrapped past our cursor), and inflight marks shards with a
// replication shipped but not yet confirmed, so Plan does not reschedule
// it every tick.
type entry struct {
	tokens   []int
	holders  uint64
	pending  uint64
	inflight uint64
	hits     int64
	seq      uint64
}

// Replication is one planned prefix copy: install Prefix on shard Target,
// then call Confirm (or Abort if the copy was dropped).
type Replication struct {
	Target int
	Prefix prefixcache.ExportedPrefix
	key    uint64
}

// Fabric is the cluster cache fabric. All methods are safe for
// concurrent use; Lookup and the maintenance paths share one mutex, the
// same discipline as the prefix cache itself.
type Fabric struct {
	mu     sync.Mutex
	caches []*prefixcache.Cache
	topK   int
	maxEnt int

	entries map[uint64]*entry
	// lens is the ascending set of distinct entry prefix lengths; Lookup
	// probes the map only at these positions of its rolling hash.
	lens []int
	// cursors[s] is the eviction-journal position consumed from shard s.
	cursors []uint64
	seq     uint64

	cReplicated metrics.Counter // replications confirmed applied
	cPlanned    metrics.Counter // replications scheduled
	cEvictions  metrics.Counter // journal records applied to the directory
	cResyncs    metrics.Counter // journal wraps forcing pending re-verify
	cHandoffs   metrics.Counter // prefixes copied by warm handoff
}

// New builds a fabric over the per-shard caches (indexed by shard ID,
// the same slice handed to cluster Config.Caches).
func New(cfg Config, caches []*prefixcache.Cache) *Fabric {
	topK := cfg.TopK
	if topK <= 0 {
		topK = DefaultTopK
	}
	maxEnt := cfg.MaxEntries
	if maxEnt <= 0 {
		maxEnt = DefaultMaxEntries
	}
	return &Fabric{
		caches:  caches,
		topK:    topK,
		maxEnt:  maxEnt,
		entries: make(map[uint64]*entry),
		cursors: make([]uint64, len(caches)),
	}
}

// prefixKey is an incremental FNV-1a step over one token; Lookup and the
// maintenance paths must hash identically.
func hashStep(h uint64, tok int) uint64 {
	h ^= uint64(uint32(tok))
	h *= 1099511628211
	return h
}

const hashOffset = uint64(14695981039346656037)

func hashTokens(tokens []int) uint64 {
	h := hashOffset
	for _, t := range tokens {
		h = hashStep(h, t)
	}
	return h
}

func tokensEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, t := range a {
		if b[i] != t {
			return false
		}
	}
	return true
}

// Lookup returns the holder bitmask and prefix length of the deepest
// directory entry covering a prefix of prompt, excluding holder bits
// that are pending invalidation. (0, 0) means the directory knows
// nothing about this prompt. Lookup is the routing hot path: it walks
// the prompt once with a rolling hash and allocates nothing.
func (f *Fabric) Lookup(prompt []int) (holders uint64, matched int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.entries) == 0 {
		return 0, 0
	}
	h := hashOffset
	li := 0
	for i := 0; i < len(prompt) && li < len(f.lens); i++ {
		h = hashStep(h, prompt[i])
		if i+1 != f.lens[li] {
			continue
		}
		li++
		e, ok := f.entries[h]
		if !ok {
			continue
		}
		if hs := e.holders &^ e.pending; hs != 0 && tokensEqual(e.tokens, prompt[:i+1]) {
			holders, matched = hs, i+1
		}
	}
	return holders, matched
}

// Len returns the number of directory entries (diagnostics and tests).
func (f *Fabric) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}

// Sync advances the directory one gossip round: drain every shard's
// eviction journal (exact invalidation per record; a wrapped journal
// demotes that shard's bits to pending), re-verify pending bits with
// MatchLen probes, fold each shard's current hottest prefixes back in,
// and prune the directory to its entry budget. Deterministic given the
// same cache states and cursor positions.
func (f *Fabric) Sync() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for s, c := range f.caches {
		if c == nil {
			continue
		}
		recs, cursor, complete := c.EvictionsSince(f.cursors[s])
		f.cursors[s] = cursor
		if !complete {
			f.cResyncs.Inc()
			bit := uint64(1) << uint(s)
			for _, e := range f.entries {
				if e.holders&bit != 0 {
					e.pending |= bit
				}
			}
		}
		for _, rec := range recs {
			f.cEvictions.Inc()
			if e, ok := f.entries[hashTokens(rec.Tokens)]; ok && tokensEqual(e.tokens, rec.Tokens) {
				f.clearShard(e, s)
			}
		}
	}
	f.verifyPending()
	for s, c := range f.caches {
		if c == nil {
			continue
		}
		for _, st := range c.HotPrefixStats(f.topK) {
			f.observe(st, s)
		}
	}
	f.prune()
	f.rebuildLens()
}

// clearShard drops shard s from an entry's masks; the entry itself is
// deleted once no shard claims it. Caller holds f.mu.
func (f *Fabric) clearShard(e *entry, s int) {
	bit := uint64(1) << uint(s)
	e.holders &^= bit
	e.pending &^= bit
	e.inflight &^= bit
	if e.holders == 0 && e.inflight == 0 {
		delete(f.entries, hashTokens(e.tokens))
	}
}

// verifyPending resolves every pending holder bit by probing the shard's
// cache: a full-length match restores the bit, anything less removes the
// holder. Order across entries is irrelevant — each resolution touches
// only its own entry. Caller holds f.mu.
func (f *Fabric) verifyPending() {
	for _, e := range f.entries {
		for p := e.pending; p != 0; p &= p - 1 {
			s := trailingShard(p)
			if c := f.caches[s]; c != nil && c.MatchLen(e.tokens) == len(e.tokens) {
				e.pending &^= 1 << uint(s)
			} else {
				f.clearShard(e, s)
			}
		}
	}
}

// observe folds one shard's hot-prefix stat into the directory. A hash
// collision with a different resident prefix skips the stat: the entry
// that got there first keeps the slot (deterministic), and the skipped
// prefix simply stays untracked. Caller holds f.mu.
func (f *Fabric) observe(st prefixcache.PrefixStat, shard int) {
	key := hashTokens(st.Tokens)
	e, ok := f.entries[key]
	if ok && !tokensEqual(e.tokens, st.Tokens) {
		return
	}
	if !ok {
		f.seq++
		e = &entry{tokens: st.Tokens, seq: f.seq}
		f.entries[key] = e
	}
	bit := uint64(1) << uint(shard)
	e.holders |= bit
	e.pending &^= bit
	e.inflight &^= bit
	if st.Hits > e.hits {
		e.hits = st.Hits
	}
}

// prune drops the coldest entries (hits ascending, then newest first)
// until the directory fits its budget. Caller holds f.mu.
func (f *Fabric) prune() {
	if len(f.entries) <= f.maxEnt {
		return
	}
	all := make([]*entry, 0, len(f.entries))
	for _, e := range f.entries {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].hits != all[j].hits {
			return all[i].hits < all[j].hits
		}
		return all[i].seq > all[j].seq
	})
	for _, e := range all[:len(f.entries)-f.maxEnt] {
		delete(f.entries, hashTokens(e.tokens))
	}
}

// rebuildLens recomputes the ascending distinct-length set Lookup probes
// at. Caller holds f.mu.
func (f *Fabric) rebuildLens() {
	seen := make(map[int]bool, 8)
	f.lens = f.lens[:0]
	for _, e := range f.entries {
		if !seen[len(e.tokens)] {
			seen[len(e.tokens)] = true
			f.lens = append(f.lens, len(e.tokens))
		}
	}
	sort.Ints(f.lens)
}

// Plan schedules up to TopK replications toward the live shard set
// (bitmask): the hottest directory entries some live shard holds and
// some other live shard lacks, exported from the lowest-ID live holder.
// Scheduled targets are marked in-flight so the next Plan does not
// reschedule them; the caller must resolve each Replication with Confirm
// or Abort. Entries whose export fails (source evicted the prefix since
// the last Sync) lose that holder bit on the spot.
func (f *Fabric) Plan(live uint64) []Replication {
	f.mu.Lock()
	defer f.mu.Unlock()
	cands := make([]*entry, 0, len(f.entries))
	for _, e := range f.entries {
		if e.holders&^e.pending&live != 0 && live&^(e.holders|e.inflight) != 0 {
			cands = append(cands, e)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hits != cands[j].hits {
			return cands[i].hits > cands[j].hits
		}
		return cands[i].seq < cands[j].seq
	})
	if len(cands) > f.topK {
		cands = cands[:f.topK]
	}
	var plan []Replication
	for _, e := range cands {
		src := trailingShard(e.holders &^ e.pending & live)
		ex, ok := f.caches[src].Export(e.tokens)
		if !ok {
			f.clearShard(e, src)
			continue
		}
		key := hashTokens(e.tokens)
		for miss := live &^ (e.holders | e.inflight); miss != 0; miss &= miss - 1 {
			t := trailingShard(miss)
			e.inflight |= 1 << uint(t)
			f.cPlanned.Inc()
			plan = append(plan, Replication{Target: t, Prefix: ex, key: key})
		}
	}
	return plan
}

// Confirm records that a planned replication was applied on its target:
// the shard becomes a holder and routing may use it immediately.
func (f *Fabric) Confirm(r Replication) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[r.key]
	if !ok || !tokensEqual(e.tokens, r.Prefix.Tokens) {
		return
	}
	bit := uint64(1) << uint(r.Target)
	e.inflight &^= bit
	e.holders |= bit
	e.pending &^= bit
	f.cReplicated.Inc()
}

// Abort records that a planned replication was dropped (target ingest
// queue full, shard gone); the entry becomes schedulable again.
func (f *Fabric) Abort(r Replication) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[r.key]
	if !ok || !tokensEqual(e.tokens, r.Prefix.Tokens) {
		return
	}
	bit := uint64(1) << uint(r.Target)
	e.inflight &^= bit
	if e.holders == 0 && e.inflight == 0 {
		delete(f.entries, r.key)
	}
}

// InvalidateShard wholesale-removes a shard from the directory — the
// revival path calls it after Clear() wipes the shard's cache — and
// fast-forwards the journal cursor past anything the wipe emitted.
func (f *Fabric) InvalidateShard(shard int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range f.entries {
		f.clearShard(e, shard)
	}
	if c := f.caches[shard]; c != nil {
		f.cursors[shard] = c.EvictionSeq()
	}
	f.rebuildLens()
}

// Handoff warms dst (shard dstShard's just-cleared cache) from the
// directory: the hottest entries held by any other shard are exported
// from their lowest-ID holder and imported into dst, which becomes a
// holder immediately (the copy is synchronous). When the directory is
// empty — fabric just built, or every other shard cold — it degrades to
// the survivor scan (HandoffFromSurvivors), so revival is never worse
// than the pre-fabric behaviour. Returns the number of prefixes copied.
func (f *Fabric) Handoff(dst *prefixcache.Cache, dstShard int, k int) int {
	f.mu.Lock()
	cands := make([]*entry, 0, len(f.entries))
	dstBit := uint64(1) << uint(dstShard)
	for _, e := range f.entries {
		if e.holders&^e.pending&^dstBit != 0 {
			cands = append(cands, e)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hits != cands[j].hits {
			return cands[i].hits > cands[j].hits
		}
		return cands[i].seq < cands[j].seq
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	type copyPlan struct {
		e   *entry
		src int
	}
	plans := make([]copyPlan, len(cands))
	for i, e := range cands {
		plans[i] = copyPlan{e: e, src: trailingShard(e.holders &^ e.pending &^ dstBit)}
	}
	f.mu.Unlock()

	if len(plans) == 0 {
		var srcs []*prefixcache.Cache
		for s, c := range f.caches {
			if s != dstShard && c != nil {
				srcs = append(srcs, c)
			}
		}
		return HandoffFromSurvivors(dst, srcs, k)
	}
	copied := 0
	for _, p := range plans {
		ex, ok := f.caches[p.src].Export(p.e.tokens)
		if !ok {
			continue
		}
		dst.Import(ex)
		copied++
		f.cHandoffs.Inc()
		f.mu.Lock()
		p.e.holders |= dstBit
		p.e.pending &^= dstBit
		f.mu.Unlock()
	}
	return copied
}

// HandoffFromSurvivors copies each survivor's k hottest prefixes into
// dst — the directory-free warm handoff used when no fabric is
// configured (and as Handoff's cold-directory fallback). Export/Import
// ships the boundary hidden states along, so the revived shard skips
// prefill on the first templated request it serves, not just the
// drafter warm-up.
func HandoffFromSurvivors(dst *prefixcache.Cache, srcs []*prefixcache.Cache, k int) int {
	copied := 0
	for _, src := range srcs {
		if src == nil || src == dst {
			continue
		}
		for _, st := range src.HotPrefixStats(k) {
			ex, ok := src.Export(st.Tokens)
			if !ok {
				continue
			}
			dst.Import(ex)
			copied++
		}
	}
	return copied
}

// RegisterMetrics registers the fabric's probes under the given prefix
// (e.g. "fabric/") in the owning registry. The counters are exposed as
// gauges over their own storage — same pattern as the prefix cache — so
// registration never changes where the fabric accounts.
func (f *Fabric) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Gauge(prefix+"planned", func() float64 { return float64(f.cPlanned.Load()) })
	reg.Gauge(prefix+"replicated", func() float64 { return float64(f.cReplicated.Load()) })
	reg.Gauge(prefix+"evictions_applied", func() float64 { return float64(f.cEvictions.Load()) })
	reg.Gauge(prefix+"journal_resyncs", func() float64 { return float64(f.cResyncs.Load()) })
	reg.Gauge(prefix+"handoff_prefixes", func() float64 { return float64(f.cHandoffs.Load()) })
	reg.Gauge(prefix+"directory_entries", func() float64 { return float64(f.Len()) })
}

// Counters returns (planned, replicated, handoff) totals for tests and
// experiment reporting.
func (f *Fabric) Counters() (planned, replicated, handoffs int64) {
	return f.cPlanned.Load(), f.cReplicated.Load(), f.cHandoffs.Load()
}

// trailingShard returns the index of the lowest set bit.
func trailingShard(mask uint64) int {
	return bits.TrailingZeros64(mask)
}
