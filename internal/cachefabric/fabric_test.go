package cachefabric

import (
	"fmt"
	"math/rand"
	"testing"

	"fastrl/internal/model"
	"fastrl/internal/prefixcache"
)

func newCaches(n int, budget int64) []*prefixcache.Cache {
	out := make([]*prefixcache.Cache, n)
	for i := range out {
		out[i] = prefixcache.New(prefixcache.Config{BudgetBytes: budget, JournalDepth: 64})
	}
	return out
}

// heat inserts prompt into cache s and looks it up k times so it ranks
// among the shard's hottest prefixes.
func heat(c *prefixcache.Cache, prompt []int, k int) {
	c.Insert(prompt, len(prompt), &model.HiddenState{Sketch: []float32{1}, TopTokens: []int{1}})
	for i := 0; i < k; i++ {
		n, _ := c.Lookup(prompt)
		n.Release()
	}
}

func TestLookupAndReplicationRoundTrip(t *testing.T) {
	caches := newCaches(3, 0)
	f := New(Config{}, caches)
	template := []int{10, 11, 12, 13}
	heat(caches[0], template, 5)

	if h, m := f.Lookup(template); h != 0 || m != 0 {
		t.Fatalf("empty directory returned holders=%b matched=%d", h, m)
	}
	f.Sync()
	h, m := f.Lookup(append(append([]int{}, template...), 99, 98))
	if h != 1<<0 || m != len(template) {
		t.Fatalf("after sync: holders=%b matched=%d, want %b/%d", h, m, 1, len(template))
	}

	plan := f.Plan(0b111)
	if len(plan) != 2 {
		t.Fatalf("planned %d replications, want 2 (shards 1 and 2)", len(plan))
	}
	// Replanning before confirmation must not duplicate in-flight work.
	if dup := f.Plan(0b111); len(dup) != 0 {
		t.Fatalf("replanning scheduled %d duplicate replications", len(dup))
	}
	for _, r := range plan {
		if r.Target == 0 {
			t.Fatal("planned replication toward the holder itself")
		}
		caches[r.Target].Import(r.Prefix)
		f.Confirm(r)
	}
	if h, _ := f.Lookup(template); h != 0b111 {
		t.Fatalf("holders after confirm = %b, want 111", h)
	}
	for s := 1; s < 3; s++ {
		if caches[s].MatchLen(template) != len(template) {
			t.Fatalf("shard %d did not ingest the replicated prefix", s)
		}
		n, matched := caches[s].Lookup(template)
		if matched != len(template) || n.Hidden() == nil {
			t.Fatalf("shard %d replica lacks the boundary hidden state", s)
		}
		n.Release()
	}
	planned, replicated, _ := f.Counters()
	if planned != 2 || replicated != 2 {
		t.Fatalf("counters planned=%d replicated=%d, want 2/2", planned, replicated)
	}
	// Nothing missing anywhere: nothing to plan.
	if rest := f.Plan(0b111); len(rest) != 0 {
		t.Fatalf("fully-replicated entry still planned %d copies", len(rest))
	}
}

// TestPlanDeterministicOrder pins replication-schedule determinism: two
// fabrics over identically-operated caches plan identical sequences,
// hottest entries first, admission order breaking equal hit counts.
func TestPlanDeterministicOrder(t *testing.T) {
	build := func() (*Fabric, []*prefixcache.Cache) {
		caches := newCaches(2, 0)
		heat(caches[0], []int{1, 1, 1}, 2)
		heat(caches[0], []int{2, 2, 2}, 5)
		heat(caches[0], []int{3, 3, 3}, 2)
		f := New(Config{}, caches)
		f.Sync()
		return f, caches
	}
	fa, _ := build()
	fb, _ := build()
	pa, pb := fa.Plan(0b11), fb.Plan(0b11)
	if len(pa) == 0 || len(pa) != len(pb) {
		t.Fatalf("plan lengths %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Target != pb[i].Target || fmt.Sprint(pa[i].Prefix.Tokens) != fmt.Sprint(pb[i].Prefix.Tokens) {
			t.Fatalf("plans diverge at %d: %v vs %v", i, pa[i], pb[i])
		}
	}
	// Hottest first: the 5-hit prefix leads; the 2-hit tie follows in
	// admission order.
	if fmt.Sprint(pa[0].Prefix.Tokens) != "[2 2 2]" {
		t.Fatalf("plan[0] = %v, want the hottest prefix [2 2 2]", pa[0].Prefix.Tokens)
	}
}

func TestEvictionGossipClearsHolders(t *testing.T) {
	caches := newCaches(2, 0)
	f := New(Config{}, caches)
	p := []int{5, 6, 7, 8}
	heat(caches[0], p, 3)
	f.Sync()
	if h, _ := f.Lookup(p); h == 0 {
		t.Fatal("entry not registered")
	}
	caches[0].Clear()
	f.Sync()
	if h, m := f.Lookup(p); h != 0 || m != 0 {
		t.Fatalf("directory dangles after eviction gossip: holders=%b matched=%d", h, m)
	}
}

func TestHandoffWarmsDestination(t *testing.T) {
	caches := newCaches(3, 0)
	f := New(Config{}, caches)
	hot := []int{1, 2, 3, 4, 5, 6}
	heat(caches[0], hot, 4)
	f.Sync()
	caches[2].Clear()
	f.InvalidateShard(2)
	if n := f.Handoff(caches[2], 2, 16); n == 0 {
		t.Fatal("directory-driven handoff copied nothing")
	}
	if caches[2].MatchLen(hot) != len(hot) {
		t.Fatal("handoff destination misses the hot prefix")
	}
	if h, _ := f.Lookup(hot); h&(1<<2) == 0 {
		t.Fatal("handoff did not register the destination as a holder")
	}
	// Cold directory degrades to the survivor scan.
	f2 := New(Config{}, caches)
	dst := prefixcache.New(prefixcache.Config{})
	if n := f2.Handoff(dst, 2, 16); n == 0 {
		t.Fatal("cold-directory handoff copied nothing")
	}
	if dst.MatchLen(hot) != len(hot) {
		t.Fatal("survivor-scan fallback missed the hot prefix")
	}
}

func TestDirectoryBounded(t *testing.T) {
	caches := newCaches(1, -1)
	f := New(Config{TopK: 64, MaxEntries: 8}, caches)
	for i := 0; i < 40; i++ {
		heat(caches[0], []int{i, i + 1, i + 2, i + 3}, 1+i%3)
	}
	f.Sync()
	if got := f.Len(); got > 8 {
		t.Fatalf("directory holds %d entries, budget 8", got)
	}
}

// TestDirectoryNeverDangles is the staleness property test: across
// arbitrary interleavings of inserts, lookups, budget-pressure
// evictions, whole-shard crashes, and gossip rounds, every directory
// entry either resolves — each non-pending holder bit points at a shard
// whose cache still fully contains the prefix — or carries the pending
// -invalidation mark. Checked after every Sync under several seeds.
func TestDirectoryNeverDangles(t *testing.T) {
	const shards = 4
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Tight budgets + a tiny journal force both ordinary eviction
		// gossip and journal-wrap resyncs to happen.
		caches := make([]*prefixcache.Cache, shards)
		for i := range caches {
			caches[i] = prefixcache.New(prefixcache.Config{BudgetBytes: 2000, JournalDepth: 4})
		}
		f := New(Config{TopK: 16, MaxEntries: 64}, caches)
		check := func(step int) {
			f.mu.Lock()
			defer f.mu.Unlock()
			for _, e := range f.entries {
				for hs := e.holders &^ e.pending; hs != 0; hs &= hs - 1 {
					s := trailingShard(hs)
					if got := caches[s].MatchLen(e.tokens); got != len(e.tokens) {
						t.Fatalf("seed %d step %d: entry %v claims shard %d (match %d/%d) and is not pending",
							seed, step, e.tokens, s, got, len(e.tokens))
					}
				}
			}
		}
		for step := 0; step < 300; step++ {
			s := rng.Intn(shards)
			switch op := rng.Intn(10); {
			case op < 5: // insert a (possibly shared-prefix) sequence
				base := rng.Intn(6)
				p := []int{base, base + 1, base + 2, rng.Intn(50), rng.Intn(50), rng.Intn(50)}
				caches[s].Insert(p, len(p), nil)
			case op < 8: // heat an existing path
				base := rng.Intn(6)
				n, _ := caches[s].Lookup([]int{base, base + 1, base + 2})
				n.Release()
			case op < 9: // crash: wipe the shard like a revival does
				caches[s].Clear()
				f.InvalidateShard(s)
			default:
				f.Sync()
				check(step)
			}
		}
		f.Sync()
		check(-1)
	}
}

// TestLookupZeroAlloc pins the directory lookup — the routing hot path —
// at zero heap allocations per call, warm directory, misses and hits
// both (ROADMAP: steady-state hot paths stay at 0 allocs/op).
func TestLookupZeroAlloc(t *testing.T) {
	caches := newCaches(4, 0)
	prompt := make([]int, 48)
	for i := range prompt {
		prompt[i] = i * 3
	}
	for s, c := range caches {
		heat(c, prompt[:8+4*s], 2)
	}
	f := New(Config{}, caches)
	f.Sync()
	if _, m := f.Lookup(prompt); m == 0 {
		t.Fatal("warm directory missed")
	}
	miss := []int{999, 998, 997, 996}
	for name, probe := range map[string][]int{"hit": prompt, "miss": miss} {
		if avg := testing.AllocsPerRun(1000, func() {
			f.Lookup(probe)
		}); avg != 0 {
			t.Errorf("%s lookup: %v allocs/op, want 0", name, avg)
		}
	}
}

func BenchmarkFabricLookup(b *testing.B) {
	caches := newCaches(8, 0)
	prompt := make([]int, 64)
	for i := range prompt {
		prompt[i] = i * 7
	}
	for s, c := range caches {
		heat(c, prompt[:8+2*s], 2)
	}
	f := New(Config{}, caches)
	f.Sync()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(prompt)
	}
}
