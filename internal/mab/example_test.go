package mab_test

import (
	"fmt"
	"time"

	"fastrl/internal/mab"
	"fastrl/internal/specdec"
)

// Example demonstrates Algorithm 1: strategies grouped by TokensToVerify
// map to batch-size buckets, and within a bucket the selector exploits the
// best windowed median reward.
func Example() {
	arms := []specdec.Params{
		{DraftDepth: 6, TopK: 6, TokensToVerify: 24}, // small batches
		{DraftDepth: 4, TopK: 6, TokensToVerify: 24},
		{DraftDepth: 3, TopK: 2, TokensToVerify: 4}, // large batches
		{DraftDepth: 2, TopK: 2, TokensToVerify: 4},
	}
	sel := mab.MustNew(arms, mab.Config{
		Epsilon: 0, Window: 8, Thresholds: []int{1, 9}, Seed: 1,
	})
	// Feed rewards: the deep tree pays off at batch size 1.
	for i := 0; i < 8; i++ {
		sel.Record(arms[0], 10*time.Millisecond, []int{4}, 1)
		sel.Record(arms[1], 10*time.Millisecond, []int{2}, 1)
	}
	best := sel.Select(1)
	fmt.Printf("batch 1 -> depth %d, verify %d\n", best.DraftDepth, best.TokensToVerify)
	big := sel.Select(16)
	fmt.Printf("batch 16 -> verify %d group\n", big.TokensToVerify)
	// Output:
	// batch 1 -> depth 6, verify 24
	// batch 16 -> verify 4 group
}
