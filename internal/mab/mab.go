// Package mab implements the Bucketed-Epsilon-Greedy (BEG) multi-armed
// bandit selector of Algorithm 1 in the paper: speculative-decoding
// strategies are grouped by TokensToVerify, each group is mapped to a
// batch-size bucket, and within a bucket an ε-greedy policy selects the
// strategy maximising the median reward over a sliding window.
package mab

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fastrl/internal/metrics"
	"fastrl/internal/specdec"
)

// Config parameterises the selector.
type Config struct {
	// Epsilon is the exploration probability.
	Epsilon float64
	// Window is the sliding-window size of the per-arm reward deques.
	Window int
	// Thresholds are the ascending batch-size bucket lower bounds
	// t_1 < t_2 < ... < t_m; bucket i covers [t_i, t_{i+1}-1] and the last
	// bucket extends to infinity. Strategy groups (sorted by descending
	// TokensToVerify) map to buckets in order: big trees serve small
	// batches.
	Thresholds []int
	// Seed drives the exploration RNG.
	Seed int64
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{Epsilon: 0.1, Window: 32, Thresholds: []int{1, 3, 9, 17}, Seed: 1}
}

// group is one TokensToVerify class of strategies.
type group struct {
	verifyTokens int
	arms         []specdec.Params
}

// Selector is the BEG-MAB strategy selector.
type Selector struct {
	cfg     Config
	groups  []group // sorted by TokensToVerify, descending
	rewards map[specdec.Params]*metrics.Window
	accepts map[specdec.Params]*metrics.Window
	rng     *rand.Rand

	// Counters for diagnostics.
	Explorations  int
	Exploitations int
}

// New builds a selector over the given strategy set. Strategies are
// grouped by TokensToVerify (descending) and groups are assigned to
// batch-size buckets in threshold order. It is an error to provide more
// thresholds than groups or no strategies.
func New(arms []specdec.Params, cfg Config) (*Selector, error) {
	if len(arms) == 0 {
		return nil, fmt.Errorf("mab: no strategies")
	}
	if cfg.Epsilon < 0 || cfg.Epsilon > 1 {
		return nil, fmt.Errorf("mab: epsilon %v out of [0,1]", cfg.Epsilon)
	}
	if cfg.Window < 1 {
		cfg.Window = 16
	}
	if len(cfg.Thresholds) == 0 {
		cfg.Thresholds = []int{1}
	}
	if cfg.Thresholds[0] != 1 {
		return nil, fmt.Errorf("mab: first threshold must be 1, got %d", cfg.Thresholds[0])
	}
	for i := 1; i < len(cfg.Thresholds); i++ {
		if cfg.Thresholds[i] <= cfg.Thresholds[i-1] {
			return nil, fmt.Errorf("mab: thresholds not ascending: %v", cfg.Thresholds)
		}
	}

	byVerify := make(map[int][]specdec.Params)
	for _, a := range arms {
		byVerify[a.TokensToVerify] = append(byVerify[a.TokensToVerify], a)
	}
	var groups []group
	for v, as := range byVerify {
		groups = append(groups, group{verifyTokens: v, arms: as})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].verifyTokens > groups[j].verifyTokens })
	if len(cfg.Thresholds) > len(groups) {
		return nil, fmt.Errorf("mab: %d thresholds for %d strategy groups", len(cfg.Thresholds), len(groups))
	}

	s := &Selector{
		cfg:     cfg,
		groups:  groups,
		rewards: make(map[specdec.Params]*metrics.Window, len(arms)),
		accepts: make(map[specdec.Params]*metrics.Window, len(arms)),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, a := range arms {
		s.rewards[a] = metrics.NewWindow(cfg.Window)
		s.accepts[a] = metrics.NewWindow(cfg.Window)
	}
	return s, nil
}

// MustNew is New but panics on configuration errors (static strategy sets).
func MustNew(arms []specdec.Params, cfg Config) *Selector {
	s, err := New(arms, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// bucketIndex maps a batch size to its group index. Groups beyond the
// threshold list collapse into the last bucket.
func (s *Selector) bucketIndex(batchSize int) int {
	if batchSize < 1 {
		batchSize = 1
	}
	idx := 0
	for i, t := range s.cfg.Thresholds {
		if batchSize >= t {
			idx = i
		}
	}
	if idx >= len(s.groups) {
		idx = len(s.groups) - 1
	}
	return idx
}

// Candidates returns the strategy group serving the given batch size.
func (s *Selector) Candidates(batchSize int) []specdec.Params {
	return s.groups[s.bucketIndex(batchSize)].arms
}

// Select implements SelectStrategy of Algorithm 1.
func (s *Selector) Select(batchSize int) specdec.Params {
	v := s.Candidates(batchSize)
	if len(v) == 1 {
		return v[0]
	}
	if s.rng.Float64() < s.cfg.Epsilon {
		s.Explorations++
		return v[s.rng.Intn(len(v))]
	}
	s.Exploitations++
	best := v[0]
	bestMedian := -1.0
	for _, a := range v {
		w := s.rewards[a]
		if w.Len() == 0 {
			// Unexplored arms are tried eagerly so medians initialise.
			return a
		}
		if m := w.Median(); m > bestMedian {
			bestMedian = m
			best = a
		}
	}
	return best
}

// Record implements Record of Algorithm 1: the reward is the effective
// generation rate (accepted tokens + the bonus token, per sequence, times
// batch size, over elapsed time).
func (s *Selector) Record(p specdec.Params, elapsed time.Duration, acceptLens []int, batchSize int) {
	if batchSize < 1 || elapsed <= 0 {
		return
	}
	var sum int
	for _, a := range acceptLens {
		sum += a
	}
	acceptLen := float64(sum)/float64(batchSize) + 1
	reward := acceptLen * float64(batchSize) / elapsed.Seconds()
	if w, ok := s.rewards[p]; ok {
		w.Push(reward)
	}
	if w, ok := s.accepts[p]; ok {
		w.Push(acceptLen)
	}
}

// MedianReward returns the windowed median reward of an arm (0 if never
// recorded).
func (s *Selector) MedianReward(p specdec.Params) float64 {
	if w, ok := s.rewards[p]; ok {
		return w.Median()
	}
	return 0
}

// MeanAcceptLen returns the windowed mean accept length of an arm.
func (s *Selector) MeanAcceptLen(p specdec.Params) float64 {
	if w, ok := s.accepts[p]; ok {
		return w.Mean()
	}
	return 0
}

// Arms returns all strategies known to the selector, grouped and ordered
// by descending TokensToVerify.
func (s *Selector) Arms() []specdec.Params {
	var out []specdec.Params
	for _, g := range s.groups {
		out = append(out, g.arms...)
	}
	return out
}

// DefaultStrategies returns the default strategy ladder: deeper, wider
// trees for tiny batches down to shallow cheap trees for batches near the
// elastic SD threshold (the structure of Fig. 10's S1..S4). Depths are
// calibrated to the simulator's drafter acceptance profile; each
// TokensToVerify group carries two drafting depths so the BEG-MAB tuner
// has a real choice per batch-size bucket.
func DefaultStrategies() []specdec.Params {
	return []specdec.Params{
		{DraftDepth: 6, TopK: 6, TokensToVerify: 24},
		{DraftDepth: 4, TopK: 6, TokensToVerify: 24},
		{DraftDepth: 5, TopK: 4, TokensToVerify: 16},
		{DraftDepth: 3, TopK: 4, TokensToVerify: 16},
		{DraftDepth: 4, TopK: 3, TokensToVerify: 8},
		{DraftDepth: 2, TopK: 3, TokensToVerify: 8},
		{DraftDepth: 3, TopK: 2, TokensToVerify: 4},
		{DraftDepth: 2, TopK: 2, TokensToVerify: 4},
	}
}
