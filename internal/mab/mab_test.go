package mab

import (
	"testing"
	"time"

	"fastrl/internal/specdec"
)

func TestGroupingAndBuckets(t *testing.T) {
	s := MustNew(DefaultStrategies(), DefaultConfig())
	// Batch 1 -> deepest group (verify 24); batch 32 -> shallowest (verify 4).
	if got := s.Candidates(1)[0].TokensToVerify; got != 24 {
		t.Fatalf("batch 1 candidates verify %d tokens, want 24", got)
	}
	if got := s.Candidates(2)[0].TokensToVerify; got != 24 {
		t.Fatalf("batch 2 candidates verify %d tokens, want 24", got)
	}
	if got := s.Candidates(3)[0].TokensToVerify; got != 16 {
		t.Fatalf("batch 3 candidates verify %d tokens, want 16", got)
	}
	if got := s.Candidates(100)[0].TokensToVerify; got != 4 {
		t.Fatalf("batch 100 candidates verify %d tokens, want 4", got)
	}
	// Degenerate batch sizes clamp.
	if got := s.Candidates(0)[0].TokensToVerify; got != 24 {
		t.Fatalf("batch 0 candidates verify %d tokens, want 24", got)
	}
	// Every group carries two drafting depths for the tuner to choose from.
	for _, bs := range []int{1, 4, 12, 40} {
		if got := len(s.Candidates(bs)); got != 2 {
			t.Fatalf("batch %d: %d candidates, want 2", bs, got)
		}
	}
}

func TestSingleCandidateIsFixed(t *testing.T) {
	arms := []specdec.Params{
		{DraftDepth: 6, TopK: 6, TokensToVerify: 24},
		{DraftDepth: 3, TopK: 2, TokensToVerify: 4},
	}
	cfg := Config{Epsilon: 0.5, Window: 8, Thresholds: []int{1, 9}, Seed: 3}
	s := MustNew(arms, cfg)
	// Each group has exactly one arm here, so selection is deterministic
	// regardless of epsilon.
	for i := 0; i < 50; i++ {
		if got := s.Select(1); got.TokensToVerify != 24 {
			t.Fatalf("Select(1) = %+v", got)
		}
	}
	if s.Explorations != 0 {
		t.Fatalf("single-arm selection should never count as exploration")
	}
}

func multiArmSelector(t *testing.T, eps float64) *Selector {
	t.Helper()
	arms := []specdec.Params{
		{DraftDepth: 10, TopK: 8, TokensToVerify: 48},
		{DraftDepth: 6, TopK: 4, TokensToVerify: 48},
		{DraftDepth: 12, TopK: 12, TokensToVerify: 48},
	}
	cfg := Config{Epsilon: eps, Window: 16, Thresholds: []int{1}, Seed: 3}
	return MustNew(arms, cfg)
}

func TestExploitationPicksBestMedian(t *testing.T) {
	s := multiArmSelector(t, 0) // no exploration
	arms := s.Arms()
	// Arm 1 is clearly best.
	for i := 0; i < 20; i++ {
		s.Record(arms[0], 10*time.Millisecond, []int{2}, 1)
		s.Record(arms[1], 10*time.Millisecond, []int{8}, 1)
		s.Record(arms[2], 10*time.Millisecond, []int{4}, 1)
	}
	if got := s.Select(1); !got.Equal(arms[1]) {
		t.Fatalf("Select picked %+v, want best arm %+v", got, arms[1])
	}
	if s.Exploitations == 0 {
		t.Fatal("exploitation counter not incremented")
	}
}

func TestUnexploredArmsTriedFirst(t *testing.T) {
	s := multiArmSelector(t, 0)
	arms := s.Arms()
	s.Record(arms[0], 10*time.Millisecond, []int{5}, 1)
	// arms[1] and arms[2] have no history; selection must try one of them.
	got := s.Select(1)
	if got.Equal(arms[0]) {
		t.Fatalf("Select should try unexplored arms before exploiting, got %+v", got)
	}
}

func TestExplorationFraction(t *testing.T) {
	s := multiArmSelector(t, 0.3)
	arms := s.Arms()
	for _, a := range arms {
		for i := 0; i < 5; i++ {
			s.Record(a, 10*time.Millisecond, []int{3}, 1)
		}
	}
	const n = 5000
	for i := 0; i < n; i++ {
		s.Select(1)
	}
	frac := float64(s.Explorations) / float64(s.Explorations+s.Exploitations)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("exploration fraction %.3f, want ~0.3", frac)
	}
}

func TestSlidingWindowAdaptsToNonstationaryRewards(t *testing.T) {
	s := multiArmSelector(t, 0)
	arms := s.Arms()
	// Phase 1: arm 0 best.
	for i := 0; i < 20; i++ {
		s.Record(arms[0], 10*time.Millisecond, []int{9}, 1)
		s.Record(arms[1], 10*time.Millisecond, []int{2}, 1)
		s.Record(arms[2], 10*time.Millisecond, []int{1}, 1)
	}
	if got := s.Select(1); !got.Equal(arms[0]) {
		t.Fatalf("phase 1: Select picked %+v", got)
	}
	// Phase 2: regime change — arm 2 becomes best. The window must forget
	// phase 1 within Window observations.
	for i := 0; i < 20; i++ {
		s.Record(arms[0], 10*time.Millisecond, []int{1}, 1)
		s.Record(arms[2], 10*time.Millisecond, []int{9}, 1)
	}
	if got := s.Select(1); !got.Equal(arms[2]) {
		t.Fatalf("phase 2: Select picked %+v, want regime-change winner", got)
	}
}

func TestRewardFormula(t *testing.T) {
	s := multiArmSelector(t, 0)
	arm := s.Arms()[0]
	// 4 sequences, total accept 8 -> accept len 8/4+1 = 3; reward =
	// 3 * 4 / 0.01s = 1200 tokens/s.
	s.Record(arm, 10*time.Millisecond, []int{2, 2, 2, 2}, 4)
	if got := s.MedianReward(arm); got < 1199 || got > 1201 {
		t.Fatalf("reward = %v, want 1200", got)
	}
	if got := s.MeanAcceptLen(arm); got != 3 {
		t.Fatalf("accept len = %v, want 3", got)
	}
}

func TestRecordIgnoresDegenerateInput(t *testing.T) {
	s := multiArmSelector(t, 0)
	arm := s.Arms()[0]
	s.Record(arm, 0, []int{1}, 1)
	s.Record(arm, time.Millisecond, []int{1}, 0)
	if s.MedianReward(arm) != 0 {
		t.Fatal("degenerate records should be dropped")
	}
}

func TestConfigValidation(t *testing.T) {
	arms := DefaultStrategies()
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Fatal("expected error for empty arm set")
	}
	bad := DefaultConfig()
	bad.Epsilon = 1.5
	if _, err := New(arms, bad); err == nil {
		t.Fatal("expected error for bad epsilon")
	}
	bad = DefaultConfig()
	bad.Thresholds = []int{2, 4}
	if _, err := New(arms, bad); err == nil {
		t.Fatal("expected error when first threshold != 1")
	}
	bad = DefaultConfig()
	bad.Thresholds = []int{1, 8, 4}
	if _, err := New(arms, bad); err == nil {
		t.Fatal("expected error for non-ascending thresholds")
	}
	bad = DefaultConfig()
	bad.Thresholds = []int{1, 2, 3, 4, 5, 6}
	if _, err := New(arms, bad); err == nil {
		t.Fatal("expected error for more thresholds than groups")
	}
}

func TestArmsOrderedByVerifyTokens(t *testing.T) {
	s := MustNew(DefaultStrategies(), DefaultConfig())
	arms := s.Arms()
	for i := 1; i < len(arms); i++ {
		if arms[i].TokensToVerify > arms[i-1].TokensToVerify {
			t.Fatalf("arms not ordered by descending verify tokens: %v", arms)
		}
	}
}
