package mab

import (
	"testing"
	"time"
)

func BenchmarkSelect(b *testing.B) {
	s := MustNew(DefaultStrategies(), DefaultConfig())
	for _, a := range s.Arms() {
		for i := 0; i < 8; i++ {
			s.Record(a, 5*time.Millisecond, []int{2, 3}, 2)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select(1 + i%32)
	}
}

func BenchmarkRecord(b *testing.B) {
	s := MustNew(DefaultStrategies(), DefaultConfig())
	arm := s.Arms()[0]
	accepts := []int{2, 3, 1, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Record(arm, 5*time.Millisecond, accepts, 4)
	}
}
