package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fastrl/internal/cluster"
	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/rollout"
	"fastrl/internal/serving"
	"fastrl/internal/workload"
)

func init() {
	register("cluster",
		"Sharded serving cluster: routing policies, load shedding, and elastic drafter training under a bursty trace",
		runCluster)
}

// clusterArm is one routing policy's replay outcome.
type clusterArm struct {
	policy string
	stats  cluster.Stats
	// trainPasses counts drafter spot-training passes run on shards the
	// scaler parked in TRAINING during lulls.
	trainPasses int
	err         error
}

// runCluster replays one production-style bursty arrival trace through a
// sharded cluster once per routing policy. The scaler watches each
// window's offered load: lulls demote shards into coordinator-driven
// drafter spot training (which really updates the arm's drafter, so SD
// accept length is earned, not assumed), and the burst preempts training
// back to serving. Per-policy P50/P95, shed rate, and utilisation are the
// figure; the identical trace (same seeds) across arms makes the policies
// comparable.
func runCluster(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen7B, seedOr(opts, 21), opts.Quick)

	shards, replicas := 4, 1
	window := 500 * time.Millisecond
	windows := 12
	rate := 36.0 // requests/sec baseline
	maxNew := 48
	if opts.Quick {
		windows = 8
		rate = 24
		maxNew = 32
	}
	duration := time.Duration(windows) * window
	arrivals := workload.GenerateArrivals(workload.ArrivalConfig{
		Duration:   duration,
		RatePerSec: rate,
		Tasks:      len(b.gen.Pool()),
		Lengths:    workload.DefaultLengthSampler(maxNew),
		Seed:       seedOr(opts, 21) ^ 0x6c75,
		// Lull for the first third, 3x burst through the middle third.
		Shape: func(frac float64) float64 {
			switch {
			case frac < 1.0/3:
				return 0.35
			case frac < 2.0/3:
				return 3
			default:
				return 1
			}
		},
	})

	policies := []cluster.Policy{
		cluster.NewRoundRobin(),
		cluster.NewLeastLoaded(),
		cluster.NewPrefixAffinity(4),
	}
	arms := make([]clusterArm, len(policies))
	forEach(len(policies), func(i int) {
		arms[i] = runClusterArm(b, policies[i], arrivals, clusterArmConfig{
			shards: shards, replicas: replicas, window: window,
			windows: windows, maxNew: maxNew,
		})
	})

	res := &Result{}
	tbl := &metrics.Table{Header: []string{
		"policy", "served", "shed%", "p50 ms", "p95 ms", "ttft50 ms", "ttft95 ms", "itl50 ms", "itl95 ms", "util", "accept", "train sessions", "preempts",
	}}
	for _, arm := range arms {
		if arm.err != nil {
			return nil, arm.err
		}
		st := arm.stats
		tbl.AddRow(arm.policy,
			fmt.Sprintf("%d", st.Served),
			metrics.F(100*st.ShedRate, 1),
			metrics.F(float64(st.P50)/float64(time.Millisecond), 2),
			metrics.F(float64(st.P95)/float64(time.Millisecond), 2),
			metrics.F(float64(st.TTFTP50)/float64(time.Millisecond), 2),
			metrics.F(float64(st.TTFTP95)/float64(time.Millisecond), 2),
			metrics.F(float64(st.ITLP50)/float64(time.Millisecond), 2),
			metrics.F(float64(st.ITLP95)/float64(time.Millisecond), 2),
			metrics.F(st.MeanUtilisation, 2),
			metrics.F(st.MeanAcceptLen, 2),
			fmt.Sprintf("%d", st.TrainingSessions),
			fmt.Sprintf("%d", st.Preemptions),
		)
		res.Metric(arm.policy+"/p50_ms", float64(st.P50)/float64(time.Millisecond))
		res.Metric(arm.policy+"/p95_ms", float64(st.P95)/float64(time.Millisecond))
		res.Metric(arm.policy+"/ttft_p50_ms", float64(st.TTFTP50)/float64(time.Millisecond))
		res.Metric(arm.policy+"/ttft_p95_ms", float64(st.TTFTP95)/float64(time.Millisecond))
		res.Metric(arm.policy+"/itl_p50_ms", float64(st.ITLP50)/float64(time.Millisecond))
		res.Metric(arm.policy+"/itl_p95_ms", float64(st.ITLP95)/float64(time.Millisecond))
		res.Metric(arm.policy+"/shed_rate", st.ShedRate)
		res.Metric(arm.policy+"/utilisation", st.MeanUtilisation)
		res.Metric(arm.policy+"/accept_len", st.MeanAcceptLen)
		res.Metric(arm.policy+"/train_passes", float64(arm.trainPasses))
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		fmt.Sprintf("trace: %d arrivals over %v (lull 0.35x, burst 3x), %d shards x %d replica(s)",
			len(arrivals), duration, shards, replicas),
		"lulls park shards in coordinator-driven drafter spot training; the burst preempts them back to serving with a one-window reactive lag (the scaler only sees completed windows), so the burst's first window is where shedding concentrates",
		"latency is queue wall time + virtual decode time; shed requests return typed ErrShedded with retry-after hints",
		"ttft/itl come from the streaming request path every served request now takes: ttft is queue wall + virtual decode to the first token chunk, itl the per-request mean gap between chunks",
		"this figure is a live concurrency measurement: latencies (and shed counts near the admission boundary) vary slightly run-to-run, unlike the seed-deterministic paper figures; token-level determinism is pinned separately by cluster's tests",
		"prefix-affinity concentrates related requests per shard (lower latency, hotter drafter context) at the cost of a higher shed rate under burst — the locality/balance trade-off",
	)
	return res, nil
}

type clusterArmConfig struct {
	shards, replicas int
	window           time.Duration
	windows, maxNew  int
}

// runClusterArm replays the trace through a fresh cluster under one
// policy. Every arm clones the bench drafter so spot training in one arm
// cannot leak accept-length gains into another.
func runClusterArm(b *bench, policy cluster.Policy, arrivals []workload.Arrival, cfg clusterArmConfig) clusterArm {
	arm := clusterArm{policy: policy.Name()}
	drafter := b.eagle.Clone()
	ecfg := rollout.DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	ecfg.SDThreshold = 0
	cl, err := cluster.New(cluster.Config{
		Shards: cfg.shards,
		Shard: serving.Config{
			Engine: ecfg, Replicas: cfg.replicas, QueueDepth: 64,
			AnswerID: b.tk.Answer(), EosID: b.tk.Eos(),
		},
		Policy: policy,
		// Tight enough that the 3x burst overruns per-shard backlogs and
		// the shed-rate column is a real signal, not a constant zero.
		Admission: cluster.AdmissionConfig{MaxPending: 8},
		Scaler: cluster.ScalerConfig{
			// One shard absorbs a window's baseline share of the offered
			// load; the burst forces the full fleet.
			TargetPerShard: float64(len(arrivals)) / float64(cfg.windows) / float64(cfg.shards) * 1.2,
			MinServing:     1,
			IdleThreshold:  2,
		},
	}, b.target, drafter)
	if err != nil {
		arm.err = err
		return arm
	}
	defer cl.Stop()

	next := 0
	prevOffered := 0.0
	for w := 0; w < cfg.windows; w++ {
		windowEnd := time.Duration(w+1) * cfg.window
		batch := arrivals[next:]
		for i, a := range batch {
			if a.At >= windowEnd {
				batch = batch[:i]
				break
			}
		}
		next += len(batch)
		// The scaler is reactive, not clairvoyant: at each window boundary
		// it sees the load that arrived during the window just ended, so a
		// burst's first window lands on a lull-sized fleet (and sheds
		// accordingly) before capacity catches up one window later.
		cl.Scaler().Observe(prevOffered, time.Duration(w)*cfg.window)
		prevOffered = float64(len(batch))

		// Shards the scaler parked in TRAINING spot-train the arm's
		// drafter while the serving shards take the window's traffic.
		// Training runs strictly between windows (no requests in flight),
		// the same no-overlap discipline the coordinator enforces for
		// rollout workers.
		for range cl.Scaler().TrainingShards() {
			drafter.Train(b.corpus, nil, newRand(int64(w)^0x7261))
			arm.trainPasses++
		}

		var wg sync.WaitGroup
		var errMu sync.Mutex
		for _, a := range batch {
			wg.Add(1)
			go func(a workload.Arrival) {
				defer wg.Done()
				_, err := cl.Serve(context.Background(), cluster.Request{
					Prompt:   b.gen.Pool()[a.Task].Prompt,
					MaxNew:   cfg.maxNew,
					Prior:    workload.LengthPrior{TargetLen: a.TargetLen, Sharpness: 25},
					Seed:     a.Seed,
					Deadline: 4 * cfg.window,
				})
				var shed *cluster.ErrShedded
				if err != nil && !errors.As(err, &shed) {
					// Hard failures surface through the arm error; sheds
					// are expected and counted by the cluster.
					errMu.Lock()
					arm.err = err
					errMu.Unlock()
				}
			}(a)
		}
		wg.Wait()
	}
	cl.Scaler().Observe(prevOffered, time.Duration(cfg.windows)*cfg.window)
	arm.stats = cl.Stats()
	// Belt and braces: every arrival must be accounted for (served or
	// typed shed) — the no-silent-drop property at experiment scale.
	if got := arm.stats.Served + arm.stats.Shed; arm.err == nil && got != len(arrivals) {
		arm.err = fmt.Errorf("cluster arm %s: %d served + %d shed != %d arrivals",
			arm.policy, arm.stats.Served, arm.stats.Shed, len(arrivals))
	}
	return arm
}
