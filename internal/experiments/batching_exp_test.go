package experiments

import (
	"testing"
)

// TestBatchingExperimentAcceptance pins the -exp batching figure's
// headline properties: continuous batching beats run-to-completion
// serving on p95 (and p50) latency over the bursty trace, sustains at
// least as much effective throughput, and — because the replay runs
// entirely in virtual time — every metric is deterministic under fixed
// seeds.
func TestBatchingExperimentAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment replay")
	}
	run := func() map[string]float64 {
		r, err := Run("batching", Options{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.Metrics
	}
	m := run()

	rtcP95 := m["run-to-completion/p95_ms"]
	for _, arm := range []string{"continuous-4", "continuous-16"} {
		if p95 := m[arm+"/p95_ms"]; p95 >= rtcP95 {
			t.Fatalf("%s p95 %.2fms not better than run-to-completion %.2fms", arm, p95, rtcP95)
		}
		if p50 := m[arm+"/p50_ms"]; p50 >= m["run-to-completion/p50_ms"] {
			t.Fatalf("%s p50 %.2fms not better than run-to-completion %.2fms",
				arm, p50, m["run-to-completion/p50_ms"])
		}
		if tp := m[arm+"/tokens_per_sec"]; tp < m["run-to-completion/tokens_per_sec"] {
			t.Fatalf("%s throughput %.0f below run-to-completion %.0f",
				arm, tp, m["run-to-completion/tokens_per_sec"])
		}
	}
	// A run-to-completion device under backlog is busy (~1) on low-value
	// work; the makespan column is where continuous batching's win shows.
	if m["continuous-16/makespan_ms"] > m["run-to-completion/makespan_ms"] {
		t.Fatal("continuous batching took longer than run-to-completion to drain the trace")
	}

	// Determinism: the virtual-time replay reproduces every metric
	// exactly under the same seeds.
	n := run()
	for k, v := range m {
		if n[k] != v {
			t.Fatalf("metric %s not deterministic: %v vs %v", k, v, n[k])
		}
	}
}
