package experiments

import (
	"testing"
)

// chaosDeterministic is the subset of chaos metrics that must be exactly
// reproducible under a fixed seed: client-visible outcomes and delivery
// accounting. Latency tails carry wall time and are deliberately absent.
var chaosDeterministic = []string{
	"with/availability", "with/served", "with/failed", "with/shed",
	"with/failovers", "with/dup_deliveries", "with/token_checksum",
	"with/revive_warm_hits",
	"without/availability", "without/served", "without/failed", "without/shed",
	"without/dup_deliveries", "without/token_checksum",
	"without/revive_warm_hits",
	"recovery_ms",
}

// TestChaosExperimentAcceptance pins the chaos experiment's CI contract:
// the deterministic metric subset is bit-identical across two full runs
// under the same seed, failover keeps availability at or above 99% and
// strictly above the no-failover arm, and no request is ever delivered
// twice.
func TestChaosExperimentAcceptance(t *testing.T) {
	run := func() map[string]float64 {
		res, err := runChaos(Options{Quick: true, Seed: 7})
		if err != nil {
			t.Fatalf("runChaos: %v", err)
		}
		return res.Metrics
	}
	first := run()
	second := run()
	for _, key := range chaosDeterministic {
		a, ok := first[key]
		if !ok {
			t.Fatalf("metric %q missing from first run", key)
		}
		b, ok := second[key]
		if !ok {
			t.Fatalf("metric %q missing from second run", key)
		}
		if a != b {
			t.Errorf("metric %q not deterministic: %v vs %v", key, a, b)
		}
	}

	withAvail := first["with/availability"]
	withoutAvail := first["without/availability"]
	if withAvail < 0.99 {
		t.Errorf("failover availability = %.4f, want >= 0.99", withAvail)
	}
	if withAvail <= withoutAvail {
		t.Errorf("failover availability %.4f not above no-failover %.4f",
			withAvail, withoutAvail)
	}
	if dup := first["with/dup_deliveries"]; dup != 0 {
		t.Errorf("duplicate deliveries = %v, want 0", dup)
	}
	if fo := first["with/failovers"]; fo <= 0 {
		t.Errorf("failovers = %v, want > 0 (fault plan must actually strand requests)", fo)
	}
	// The no-failover arm must actually lose the stranded requests —
	// otherwise the contrast above is vacuous.
	if failed := first["without/failed"]; failed <= 0 {
		t.Errorf("no-failover failed = %v, want > 0", failed)
	}
	// Warm-handoff smoke: the replay fails hard when a revived shard's
	// first templated request misses its cache, so any successful run with
	// zero counted revives means the probe never executed at all.
	if warm := first["with/revive_warm_hits"]; warm <= 0 {
		t.Errorf("revive_warm_hits = %v, want > 0 (warm-handoff probe never ran)", warm)
	}
}
