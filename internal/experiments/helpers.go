package experiments

import (
	"math/rand"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/reward"
	"fastrl/internal/rollout"
	"fastrl/internal/specdec"
	"fastrl/internal/tokenizer"
	"fastrl/internal/workload"
)

// bench is a ready-made target + trained drafter pair for SD experiments.
type bench struct {
	tk     *tokenizer.Tokenizer
	target *model.LM
	eagle  *draft.Eagle
	gen    *workload.TaskGen
	seed   int64
	corpus []*draft.Example
}

// newBench builds a target model for arch and warm-trains an Eagle drafter
// on its rollouts.
func newBench(arch gpu.Arch, seed int64, quick bool) *bench {
	tk := tokenizer.New()
	mcfg := model.DefaultConfig(tk.VocabSize(), arch)
	mcfg.Buckets = 1 << 12
	mcfg.Seed ^= seed
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	target := model.New(mcfg, &model.GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})
	gen := workload.NewTaskGen(tk, 64, seed)

	prompts, epochs := 120, 4
	if quick {
		prompts, epochs = 40, 2
	}
	e := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), arch))
	rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
	var corpus []*draft.Example
	for _, task := range gen.Sample(prompts) {
		seq := model.Generate(target, task.Prompt, nil, 0.9, 64, tk.Eos(), rng)
		corpus = append(corpus, draft.HarvestExamples(target,
			model.Context{Tokens: seq, PromptLen: len(task.Prompt)}, true)...)
	}
	for ep := 0; ep < epochs; ep++ {
		e.Train(corpus, nil, rng)
	}
	return &bench{tk: tk, target: target, eagle: e, gen: gen, seed: seed, corpus: corpus}
}

// steadyState measures steady-state generation throughput at a fixed batch
// size: requests that cannot finish within iters engine iterations.
// threshold < 0 disables SD; 0 forces SD. A nil drafter with threshold >= 0
// uses the bench's Eagle drafter.
func (b *bench) steadyState(dev *gpu.Device, dr draft.Drafter, batch, iters, threshold int, strategies []specdec.Params, temp float64) (tokensPerSec, acceptLen float64) {
	cfg := rollout.DefaultConfig(dev)
	cfg.Temp = temp
	cfg.SDThreshold = threshold
	if strategies != nil {
		cfg.Strategies = strategies
		cfg.MAB.Thresholds = []int{1}
	}
	if threshold >= 0 && dr == nil {
		dr = b.eagle
	}
	if threshold < 0 {
		dr = nil
	}
	eng, err := rollout.New(cfg, b.target, dr)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(b.seed ^ 0x77))
	var reqs []*rollout.Request
	for i, task := range b.gen.SampleSeeded(batch, b.seed^0x5151) {
		prior := workload.LengthPrior{TargetLen: 1 << 20, Sharpness: 25}
		reqs = append(reqs, rollout.NewRequest(i, task.Prompt, 1<<20, prior, b.tk.Answer(), b.tk.Eos()))
	}
	stats := eng.RunIterations(reqs, rng, iters)
	return stats.Throughput(), stats.MeanAcceptLen()
}

// freshExamples harvests evaluation examples from the bench target.
func (b *bench) freshExamples(n int, seed int64) []*draft.Example {
	rng := rand.New(rand.NewSource(seed))
	var out []*draft.Example
	for _, task := range b.gen.SampleSeeded(n, seed) {
		seq := model.Generate(b.target, task.Prompt, nil, 0.9, 64, b.tk.Eos(), rng)
		out = append(out, draft.HarvestExamples(b.target,
			model.Context{Tokens: seq, PromptLen: len(task.Prompt)}, true)...)
	}
	return out
}

// newVerifier builds the rule-based verifier for a bench.
func newVerifier(b *bench) *reward.Verifier { return reward.NewVerifier(b.tk) }
