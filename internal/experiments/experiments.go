// Package experiments contains one runner per table and figure of the
// paper's evaluation (§6), shared by cmd/tltbench and the repository's
// benchmark harness. Each runner regenerates the artefact's rows/series
// from the simulator; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"fastrl/internal/metrics"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks workloads for benchmark iterations and CI.
	Quick bool
	// Seed overrides the default experiment seed.
	Seed int64
	// Verbose enables progress notes.
	Verbose bool
	// Trace enables request-lifecycle tracing in experiments that support
	// it (batching traces its continuous-16 arm); the exported Chrome
	// trace lands in Result.TraceChrome. Off by default: tracing is never
	// on in the measured hot path unless explicitly requested.
	Trace bool
}

// Result is one regenerated artefact.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Series []metrics.Series
	Notes  []string
	// Metrics holds the artefact's headline numbers keyed by a stable
	// name (e.g. "round-robin/p95_ms"); tltbench -json snapshots them
	// into BENCH_<date>.json so the trajectory of figure values — not
	// just their cost — is tracked in-tree.
	Metrics map[string]float64
	// TraceChrome is the exported Chrome trace_event JSON when the
	// experiment ran with Options.Trace (tltbench -trace writes it to
	// disk and self-validates it against the "traced_requests" metric).
	TraceChrome []byte
}

// Metric records one headline number, allocating the map on first use.
func (r *Result) Metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// String renders the result for terminal output.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "series %s:\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "  %10.3f  %12.4f\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner regenerates one artefact.
type Runner func(Options) (*Result, error)

var registry = map[string]struct {
	title string
	run   Runner
}{}

func register(id, title string, run Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = struct {
		title string
		run   Runner
	}{title, run}
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	var ids []string
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's description.
func Title(id string) string { return registry[id].title }

// Run executes one experiment.
func Run(id string, opts Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	r, err := e.run(opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	r.ID = id
	r.Title = e.title
	return r, nil
}
