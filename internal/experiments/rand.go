package experiments

import "math/rand"

// newRand builds a deterministic RNG for an experiment sub-measurement.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
