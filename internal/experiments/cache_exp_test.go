package experiments

import (
	"testing"
)

// TestCacheExperimentAcceptance pins the -exp cache figure's headline
// properties: cache-aware routing saves at least 30% of prefill positions
// on the templated-prompt trace, beats (or at worst ties) round-robin,
// and the savings/hit-rate outputs are deterministic under fixed seeds.
func TestCacheExperimentAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment replay")
	}
	run := func() map[string]float64 {
		r, err := Run("cache", Options{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.Metrics
	}
	m := run()

	saved := m["cache-aware/prefill_saved_frac"]
	if saved < 0.30 {
		t.Fatalf("cache-aware saved %.1f%% of prefill positions, want >= 30%%", 100*saved)
	}
	rr := m["round-robin/prefill_saved_frac"]
	if saved < rr {
		t.Fatalf("cache-aware saved %.3f < round-robin %.3f", saved, rr)
	}
	if m["cache-aware/hit_rate"] <= 0 {
		t.Fatal("cache-aware hit rate not positive")
	}
	if m["warmstart/ngram_size"] <= 0 {
		t.Fatal("warm-start produced an empty drafter")
	}

	// Determinism: replaying the identical trace reproduces the
	// seed-deterministic metrics exactly (latency percentiles excluded —
	// they carry wall-clock scheduler noise, as documented in the notes).
	m2 := run()
	for _, key := range []string{
		"round-robin/prefill_saved_frac", "round-robin/hit_rate", "round-robin/saved_positions",
		"prefix-affinity/prefill_saved_frac", "prefix-affinity/hit_rate",
		"cache-aware/prefill_saved_frac", "cache-aware/hit_rate", "cache-aware/saved_positions",
		"warmstart/replayed_pairs", "warmstart/ngram_size",
	} {
		if m[key] != m2[key] {
			t.Errorf("%s diverged across identical replays: %v vs %v", key, m[key], m2[key])
		}
	}
}
