package experiments

import (
	"testing"
)

// TestCacheExperimentAcceptance pins the -exp cache figure's headline
// properties: cache-aware routing saves at least 30% of prefill positions
// on the templated-prompt trace, beats (or at worst ties) round-robin,
// the fabric arm holds cache-aware's savings within 2 points while its
// max/mean shard load ratio stays at round-robin's bound (the hotspot
// cache-affinity concentration creates is eliminated), and all
// savings/hit-rate/load outputs are deterministic under fixed seeds.
func TestCacheExperimentAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment replay")
	}
	run := func() map[string]float64 {
		r, err := Run("cache", Options{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.Metrics
	}
	m := run()

	saved := m["cache-aware/prefill_saved_frac"]
	if saved < 0.30 {
		t.Fatalf("cache-aware saved %.1f%% of prefill positions, want >= 30%%", 100*saved)
	}
	rr := m["round-robin/prefill_saved_frac"]
	if saved < rr {
		t.Fatalf("cache-aware saved %.3f < round-robin %.3f", saved, rr)
	}
	if m["cache-aware/hit_rate"] <= 0 {
		t.Fatal("cache-aware hit rate not positive")
	}
	if m["warmstart/ngram_size"] <= 0 {
		t.Fatal("warm-start produced an empty drafter")
	}

	// Fabric arm: hot-prefix replication recovers cache-aware's savings
	// (within 2 points of the prefill saved fraction) without its load
	// hotspot — max/mean served stays within round-robin's ratio plus a
	// small cold-start allowance, far under cache-aware's concentration.
	fabricSaved := m["fabric/prefill_saved_frac"]
	if fabricSaved < saved-0.02 {
		t.Fatalf("fabric saved %.1f%%, want within 2 points of cache-aware's %.1f%%",
			100*fabricSaved, 100*saved)
	}
	rrLoad, fabricLoad, awareLoad := m["round-robin/load_ratio"], m["fabric/load_ratio"], m["cache-aware/load_ratio"]
	if fabricLoad > rrLoad+0.1 {
		t.Fatalf("fabric load max/mean = %.2f, want within round-robin's %.2f (+0.1 cold-start slack)",
			fabricLoad, rrLoad)
	}
	if awareLoad <= fabricLoad {
		t.Fatalf("cache-aware load ratio %.2f not above fabric's %.2f — the hotspot the fabric exists to remove is missing from the figure",
			awareLoad, fabricLoad)
	}

	// Determinism: replaying the identical trace reproduces the
	// seed-deterministic metrics exactly (latency percentiles excluded —
	// they carry wall-clock scheduler noise, as documented in the notes).
	m2 := run()
	for _, key := range []string{
		"round-robin/prefill_saved_frac", "round-robin/hit_rate", "round-robin/saved_positions",
		"prefix-affinity/prefill_saved_frac", "prefix-affinity/hit_rate",
		"cache-aware/prefill_saved_frac", "cache-aware/hit_rate", "cache-aware/saved_positions",
		"cache-aware/load_ratio",
		"fabric/prefill_saved_frac", "fabric/hit_rate", "fabric/saved_positions", "fabric/load_ratio",
		"warmstart/replayed_pairs", "warmstart/ngram_size",
	} {
		if m[key] != m2[key] {
			t.Errorf("%s diverged across identical replays: %v vs %v", key, m[key], m2[key])
		}
	}
}
