package experiments

import (
	"math/rand"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/model"
	"fastrl/internal/reward"
	"fastrl/internal/rl"
	"fastrl/internal/specdec"
	"fastrl/internal/tokenizer"
	"fastrl/internal/workload"
)

func init() {
	register("fig15", "Drafter top-3 accuracy during adaptive training across target updates", runFig15)
	register("tab6", "Adaptive drafter accept lengths: Target-Base vs Target-R, RL-training vs downstream", runTab6)
	register("fig16", "Token accept rate by draft index: vanilla vs adaptive drafter", runFig16)
	register("tab7", "SD methods in TLT: Eagle vs HASS vs Eagle-3 (accept length, throughput, training cost)", runTab7)
	register("tab8", "OSD-style training impact on small-LM and Eagle drafters", runTab8)
}

// rlShift applies RL steps to a bench's target, returning the rollouts'
// tasks for data harvesting.
func rlShift(b *bench, steps int, rng *rand.Rand) {
	cfg := rl.DefaultConfig()
	cfg.PromptsPerStep = 10
	cfg.GroupSize = 6
	tr := rl.NewTrainer(cfg, b.target, reward.NewVerifier(b.tk))
	for i := 0; i < steps; i++ {
		tr.TrainStep(b.gen.Sample(cfg.PromptsPerStep), 64, b.tk.Eos(), rng)
	}
}

func runFig15(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen7B, seedOr(opts, 15), opts.Quick)
	rng := rand.New(rand.NewSource(seedOr(opts, 15) ^ 0x99))
	targetSteps := 6
	batchesPerStep := 8
	if opts.Quick {
		targetSteps, batchesPerStep = 3, 4
	}
	cfg := rl.DefaultConfig()
	cfg.PromptsPerStep = 8
	cfg.GroupSize = 6
	tr := rl.NewTrainer(cfg, b.target, reward.NewVerifier(b.tk))

	var acc metrics.Series
	acc.Name = "drafter-top3-accuracy"
	var updates metrics.Series
	updates.Name = "target-update-batch-indices"
	batchIdx := 0
	for step := 0; step < targetSteps; step++ {
		// Fresh evaluation and training data from the current target.
		eval := b.freshExamples(10, int64(step)*31+7)
		train := b.freshExamples(24, int64(step)*17+3)
		for batch := 0; batch < batchesPerStep; batch++ {
			acc.Add(float64(batchIdx), b.eagle.TopKAccuracy(eval, 3))
			b.eagle.Train(train, nil, rng)
			batchIdx++
		}
		acc.Add(float64(batchIdx), b.eagle.TopKAccuracy(eval, 3))
		// Target model update (RL step) causes the accuracy dip.
		tr.TrainStep(b.gen.Sample(cfg.PromptsPerStep), 64, b.tk.Eos(), rng)
		updates.Add(float64(batchIdx), 1)
	}
	return &Result{
		Series: []metrics.Series{acc, updates},
		Notes: []string{
			"accuracy trends upward; target updates cause dips that recover within a few drafter batches (paper Fig. 15)",
		},
	}, nil
}

// acceptOn measures the accept length of a drafter against a target over a
// task set.
func acceptOn(target *model.LM, dr draft.Drafter, tk interface{ Eos() int }, tasks []workload.Task, rounds int, seed int64) float64 {
	eng := &specdec.Engine{Target: target, Temp: 0.9, EosID: tk.Eos()}
	p := specdec.Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}
	rng := rand.New(rand.NewSource(seed))
	var acceptSum, n int
	for n < rounds {
		for _, task := range tasks {
			seq := append([]int(nil), task.Prompt...)
			for r := 0; r < 6 && n < rounds; r++ {
				res := eng.Step(dr, seq, len(task.Prompt), p, rng)
				seq = append(seq, res.Tokens...)
				acceptSum += res.AcceptLen
				n++
				if res.Eos {
					break
				}
			}
			if n >= rounds {
				break
			}
		}
	}
	return float64(acceptSum)/float64(n) + 1
}

func runTab6(opts Options) (*Result, error) {
	seed := seedOr(opts, 6)
	b := newBench(gpu.Qwen7B, seed, opts.Quick)
	rng := rand.New(rand.NewSource(seed ^ 0x66))
	rounds := 80
	rlSteps := 15
	if opts.Quick {
		rounds, rlSteps = 30, 6
	}

	trainTasks := b.gen.SampleSeeded(8, seed^0x6a)
	heldOut := workload.HeldOut(b.tk, 32, seed).Sample(8)

	baseTrain := acceptOn(b.target, b.eagle, b.tk, trainTasks, rounds, seed+1)
	baseDown := acceptOn(b.target, b.eagle, b.tk, heldOut, rounds, seed+2)

	// RL-shift the target, then adaptively retrain the drafter on fresh
	// data from the updated target.
	rlShift(b, rlSteps, rng)
	fresh := b.freshExamples(60, seed+3)
	epochs := 3
	if opts.Quick {
		epochs = 2
	}
	for e := 0; e < epochs; e++ {
		b.eagle.Train(fresh, nil, rng)
	}
	rTrain := acceptOn(b.target, b.eagle, b.tk, trainTasks, rounds, seed+4)
	rDown := acceptOn(b.target, b.eagle, b.tk, heldOut, rounds, seed+5)

	tbl := &metrics.Table{Header: []string{"", "RL Training", "Downstream"}}
	tbl.AddRow("Target-Base accept length", metrics.F(baseTrain, 2), metrics.F(baseDown, 2))
	tbl.AddRow("Target-R accept length", metrics.F(rTrain, 2), metrics.F(rDown, 2))
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"adaptive training maintains alignment with the evolving target; Target-R accept lengths exceed Target-Base as RL sharpens the policy (paper Table 6)",
			"downstream (held-out) accept lengths trail the RL-training distribution, as in the paper",
		},
	}, nil
}

func runFig16(opts Options) (*Result, error) {
	seed := seedOr(opts, 16)
	b := newBench(gpu.Qwen7B, seed, opts.Quick)
	rng := rand.New(rand.NewSource(seed ^ 0xf16))
	vanilla := b.eagle.Clone() // frozen at the base target

	rlSteps := 15
	rounds := 200
	if opts.Quick {
		rlSteps, rounds = 12, 100
	}
	rlShift(b, rlSteps, rng)
	fresh := b.freshExamples(60, seed+9)
	for e := 0; e < 3; e++ {
		b.eagle.Train(fresh, nil, rng)
	}

	measure := func(dr draft.Drafter, name string) metrics.Series {
		eng := &specdec.Engine{Target: b.target, Temp: 0.9, EosID: -1}
		p := specdec.Params{DraftDepth: 8, TopK: 4, TokensToVerify: 32}
		r := rand.New(rand.NewSource(seed + 77))
		const maxIdx = 8
		reach := make([]int, maxIdx+1)
		accept := make([]int, maxIdx+1)
		n := 0
		for n < rounds {
			for _, task := range b.gen.SampleSeeded(4, seed^0x6b) {
				seq := append([]int(nil), task.Prompt...)
				for rr := 0; rr < 8 && n < rounds; rr++ {
					res := eng.Step(dr, seq, len(task.Prompt), p, r)
					seq = append(seq, res.Tokens...)
					for i := 1; i <= maxIdx; i++ {
						if res.AcceptLen >= i-1 {
							reach[i]++
						}
						if res.AcceptLen >= i {
							accept[i]++
						}
					}
					n++
				}
				if n >= rounds {
					break
				}
			}
		}
		var s metrics.Series
		s.Name = name
		for i := 1; i <= maxIdx; i++ {
			if reach[i] > 0 {
				s.Add(float64(i), 100*float64(accept[i])/float64(reach[i]))
			}
		}
		return s
	}
	v := measure(vanilla, "vanilla-drafter")
	a := measure(b.eagle, "adaptive-drafter")
	return &Result{
		Series: []metrics.Series{v, a},
		Notes: []string{
			"accept rate (%) by draft token index on the post-RL rollout distribution",
			"the adaptive drafter sustains higher accept rates at distant indices (paper Fig. 16)",
		},
	}, nil
}

func runTab7(opts Options) (*Result, error) {
	seed := seedOr(opts, 7)
	tk, target, gen := tab78Target(seed)
	dev := gpu.NewDevice(gpu.H100, 2)
	rounds := 80
	prompts, epochs := 100, 3
	if opts.Quick {
		rounds, prompts, epochs = 30, 40, 2
	}
	corpus := harvestCorpus(target, gen, tk.Eos(), prompts, seed+1)
	tasks := gen.SampleSeeded(8, seed^0x6c)

	// Baseline throughput without SD.
	vanillaRate := 1 / vanillaStepCost(dev, target.Arch(), 1, 1024)

	tbl := &metrics.Table{Header: []string{"Method", "Accept Len", "Throughput (tok/s)", "Speedup", "Training Cost"}}
	tbl.AddRow("Base (No-SD)", "1.00", metrics.F(vanillaRate, 1), "1.00x", "-")

	var eagleCost int
	type variant struct {
		name string
		cfg  draft.EagleConfig
	}
	for _, v := range []variant{
		{"Eagle", draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B)},
		{"HASS", draft.HASSConfig(tk.VocabSize(), gpu.Qwen7B)},
		{"Eagle-3", draft.Eagle3Config(tk.VocabSize(), gpu.Qwen7B)},
	} {
		dr := draft.NewEagle(v.cfg)
		rng := rand.New(rand.NewSource(seed ^ 0x70))
		for e := 0; e < epochs; e++ {
			dr.Train(corpus, target, rng)
		}
		accept, tput := measureDrafterRate(target, dr, dev, tasks, rounds, seed+11)
		if v.name == "Eagle" {
			eagleCost = dr.TrainedPasses
		}
		cost := float64(dr.TrainedPasses) / float64(maxI(eagleCost, 1))
		tbl.AddRow(v.name, metrics.F(accept, 2), metrics.F(tput, 1),
			metrics.F(tput/vanillaRate, 2)+"x", metrics.F(cost, 1)+"x")
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"HASS and Eagle-3 buy slightly higher accept lengths at multiples of Eagle's training cost (paper Table 7)",
			"TLT defaults to Eagle: comparable performance at the lowest spot-training budget",
		},
	}, nil
}

func runTab8(opts Options) (*Result, error) {
	seed := seedOr(opts, 8)
	tk, target, gen := tab78Target(seed)
	dev := gpu.NewDevice(gpu.H100, 2)
	rounds := 60
	prompts := 80
	if opts.Quick {
		rounds, prompts = 25, 30
	}
	corpus := harvestCorpus(target, gen, tk.Eos(), prompts, seed+1)
	tasks := gen.SampleSeeded(8, seed^0x6c)

	tbl := &metrics.Table{Header: []string{"Draft Model", "Original Accept", "Original Thpt", "Trained Accept", "Trained Thpt", "+OSD Accept", "+OSD Thpt"}}

	// Small-LM drafter (Qwen2.5-0.5B analogue): pre-aligned by family
	// pretraining, improved by SFT, improved further by OSD-style soft KD.
	small := draft.NewSmallLM("Qwen2.5-0.5B", tk.VocabSize(), gpu.Qwen05B, seed^3)
	// "Same family" pre-alignment: brief distillation on base-model text.
	pre := corpus[:len(corpus)/2]
	small.Distill(pre, 0.25, false)
	row := measureTab8Row(target, small, dev, tasks, rounds, seed,
		func() { small.Distill(corpus, 0.3, false) }, // SFT
		func() { small.Distill(corpus, 0.3, true) },  // OSD soft KD
	)
	tbl.AddRow(append([]string{"Qwen2.5-0.5B"}, row...)...)

	// Eagle drafter: untrained original, then SFT, then KD.
	ecfg := draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B)
	ecfg.Objective = draft.ObjectiveSFT
	eagle := draft.NewEagle(ecfg)
	rng := rand.New(rand.NewSource(seed ^ 0x88))
	kdCfg := ecfg
	kdCfg.Objective = draft.ObjectiveKD
	row = measureTab8Row(target, eagle, dev, tasks, rounds, seed,
		func() {
			for e := 0; e < 2; e++ {
				eagle.Train(corpus, nil, rng)
			}
		},
		func() {
			// OSD-style: switch to soft KD on the full distribution.
			kd := draft.NewEagle(kdCfg)
			kd.CopyWeightsFrom(eagle)
			for e := 0; e < 2; e++ {
				kd.Train(corpus, nil, rng)
			}
			eagle.CopyWeightsFrom(kd)
		},
	)
	tbl.AddRow(append([]string{"Eagle"}, row...)...)
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"OSD-style distillation (soft KD on the full target distribution) improves both drafter families beyond SFT (paper Table 8)",
		},
	}, nil
}

func measureTab8Row(target *model.LM, dr draft.Drafter, dev *gpu.Device, tasks []workload.Task, rounds int, seed int64, sft, osd func()) []string {
	a0, t0 := measureDrafterRate(target, dr, dev, tasks, rounds, seed+21)
	sft()
	a1, t1 := measureDrafterRate(target, dr, dev, tasks, rounds, seed+22)
	osd()
	a2, t2 := measureDrafterRate(target, dr, dev, tasks, rounds, seed+23)
	return []string{
		metrics.F(a0, 2), metrics.F(t0, 1),
		metrics.F(a1, 2), metrics.F(t1, 1),
		metrics.F(a2, 2), metrics.F(t2, 1),
	}
}

// measureDrafterRate returns (accept length, tokens/sec) at BS=1 with the
// drafter, using the shared round cost model.
func measureDrafterRate(target *model.LM, dr draft.Drafter, dev *gpu.Device, tasks []workload.Task, rounds int, seed int64) (float64, float64) {
	eng := &specdec.Engine{Target: target, Temp: 0.9, EosID: -1}
	p := specdec.Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}
	rng := rand.New(rand.NewSource(seed))
	draftArch := dr.Arch()
	if draftArch.Layers == 0 {
		draftArch = gpu.DraftArch(target.Arch())
	}
	var acceptSum, tokSum int
	var sdTime float64
	n := 0
	for n < rounds {
		for _, task := range tasks {
			seq := append([]int(nil), task.Prompt...)
			for r := 0; r < 6 && n < rounds; r++ {
				res := eng.Step(dr, seq, len(task.Prompt), p, rng)
				seq = append(seq, res.Tokens...)
				acceptSum += res.AcceptLen
				tokSum += len(res.Tokens)
				// Multi-layer small-LM drafters pay per-layer sequential
				// cost; single-layer Eagle drafters one layer.
				cost := sdRoundCost(dev, target.Arch(), draftArch, 1, 1024, res.FrontierPerDepth, res.VerifiedTokens)
				sdTime += cost
				n++
			}
			if n >= rounds {
				break
			}
		}
	}
	accept := float64(acceptSum)/float64(n) + 1
	return accept, float64(tokSum) / sdTime
}

func tab78Target(seed int64) (*tokenizer.Tokenizer, *model.LM, *workload.TaskGen) {
	b := newBench(gpu.Qwen7B, seed, false)
	return b.tk, b.target, b.gen
}

func harvestCorpus(target *model.LM, gen *workload.TaskGen, eos int, prompts int, seed int64) []*draft.Example {
	rng := rand.New(rand.NewSource(seed))
	var out []*draft.Example
	for _, task := range gen.Sample(prompts) {
		seq := model.Generate(target, task.Prompt, nil, 0.9, 64, eos, rng)
		out = append(out, draft.HarvestExamples(target,
			model.Context{Tokens: seq, PromptLen: len(task.Prompt)}, true)...)
	}
	return out
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
