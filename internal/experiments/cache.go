package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"fastrl/internal/cachefabric"
	"fastrl/internal/cluster"
	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/prefixcache"
	"fastrl/internal/rollout"
	"fastrl/internal/serving"
	"fastrl/internal/workload"
)

func init() {
	register("cache",
		"Shared radix prefix cache: templated-prompt replay, prefill savings and hit rate per routing policy, drafter warm-start",
		runCache)
}

// cacheArm is one routing policy's replay outcome.
type cacheArm struct {
	policy    string
	stats     cluster.Stats
	hitRate   float64 // weighted across shard caches
	savedFrac float64 // saved prefill positions / total prompt positions
	loadRatio float64 // max/mean served requests across shards (1.0 = even)
	nodes     int
	resident  int64
	armCaches []*prefixcache.Cache
	err       error
}

// runCache replays a templated-prompt arrival trace — a handful of long
// shared prefixes (system/few-shot templates) fanned out over many task
// suffixes — through a sharded cluster with per-shard prefix caches, once
// per routing policy. Requests are submitted strictly in arrival order, so
// routing, hit rates, and saved prefill positions are deterministic under
// fixed seeds (wall-clock latency percentiles are reported but, as with
// -exp cluster, carry scheduler noise). The figure is the paper's prefill
// amortisation argument made measurement-driven: blind prefix-affinity
// hashing already concentrates templates per shard; cache-aware routing
// scores shards by the prefill positions they would actually skip.
func runCache(opts Options) (*Result, error) {
	seed := seedOr(opts, 33)
	b := newBench(gpu.Qwen7B, seed, opts.Quick)

	shards := 4
	templates := 8
	templateLen := 24
	arrivalsWanted := 280
	maxNew := 24
	if opts.Quick {
		shards = 3
		templates = 6
		arrivalsWanted = 140
		maxNew = 16
	}

	// Templated prompt pool: prompt(task) = template[task % T] ++ task
	// suffix. Tasks sharing a template share a templateLen-token prefix,
	// the locality both affinity policies exploit.
	rng := rand.New(rand.NewSource(seed ^ 0x7ca))
	tmpl := make([][]int, templates)
	for t := range tmpl {
		row := make([]int, templateLen)
		for i := range row {
			row[i] = rng.Intn(b.tk.VocabSize())
		}
		tmpl[t] = row
	}
	pool := b.gen.Pool()
	prompts := make([][]int, len(pool))
	for i, task := range pool {
		p := append([]int(nil), tmpl[i%templates]...)
		prompts[i] = append(p, task.Prompt...)
	}

	// Arrival times only order the sequential replay; the rate is chosen
	// so the configured duration yields ~arrivalsWanted arrivals.
	duration := 4 * time.Second
	arrivals := workload.GenerateArrivals(workload.ArrivalConfig{
		Duration:   duration,
		RatePerSec: float64(arrivalsWanted) / duration.Seconds(),
		Tasks:      len(pool),
		Lengths:    workload.DefaultLengthSampler(maxNew),
		Seed:       seed ^ 0xcafe,
	})
	var promptPositions int64
	for _, a := range arrivals {
		promptPositions += int64(len(prompts[a.Task]))
	}

	type armSpec struct {
		name   string
		mk     func(caches []*prefixcache.Cache) cluster.Policy
		fabric bool
	}
	specs := []armSpec{
		{"round-robin", func([]*prefixcache.Cache) cluster.Policy { return cluster.NewRoundRobin() }, false},
		{"prefix-affinity", func([]*prefixcache.Cache) cluster.Policy { return cluster.NewPrefixAffinity(8) }, false},
		{"cache-aware", func(caches []*prefixcache.Cache) cluster.Policy { return cluster.NewCacheAware(caches) }, false},
		// The fabric arm: nil policy resolves to fabric-aware routing over
		// the cluster's prefix directory, and the replay drives FabricTick
		// at window boundaries so hot prefixes replicate to every shard.
		{"fabric", func([]*prefixcache.Cache) cluster.Policy { return nil }, true},
	}
	arms := make([]cacheArm, len(specs))
	forEach(len(specs), func(i int) {
		arms[i] = runCacheArm(b, specs[i].name, specs[i].mk, specs[i].fabric, prompts, arrivals, shards, maxNew, promptPositions)
	})

	res := &Result{}
	tbl := &metrics.Table{Header: []string{
		"policy", "served", "hit%", "saved prefill%", "load max/mean", "nodes", "resident KB", "p50 ms", "p95 ms",
	}}
	for _, arm := range arms {
		if arm.err != nil {
			return nil, arm.err
		}
		st := arm.stats
		tbl.AddRow(arm.policy,
			fmt.Sprintf("%d", st.Served),
			metrics.F(100*arm.hitRate, 1),
			metrics.F(100*arm.savedFrac, 1),
			metrics.F(arm.loadRatio, 2),
			fmt.Sprintf("%d", arm.nodes),
			metrics.F(float64(arm.resident)/1024, 1),
			metrics.F(float64(st.P50)/float64(time.Millisecond), 2),
			metrics.F(float64(st.P95)/float64(time.Millisecond), 2),
		)
		res.Metric(arm.policy+"/hit_rate", arm.hitRate)
		res.Metric(arm.policy+"/prefill_saved_frac", arm.savedFrac)
		res.Metric(arm.policy+"/saved_positions", float64(st.CacheSavedPositions))
		res.Metric(arm.policy+"/load_ratio", arm.loadRatio)
		res.Metric(arm.policy+"/p50_ms", float64(st.P50)/float64(time.Millisecond))
		res.Metric(arm.policy+"/p95_ms", float64(st.P95)/float64(time.Millisecond))
	}
	res.Tables = append(res.Tables, tbl)

	// Drafter warm-start: attach a fresh n-gram drafter to the cache-aware
	// arm's surviving caches (the redeploy-over-surviving-state scenario).
	// The replayed continuation statistics make it hot before any traffic.
	ng := draft.NewNGram(b.tk.VocabSize(), 1, 3)
	var replayed int
	for _, arm := range arms {
		if arm.policy != "cache-aware" {
			continue
		}
		for _, c := range arm.armCaches {
			replayed += c.WarmStart(ng)
		}
	}
	res.Metric("warmstart/replayed_pairs", float64(replayed))
	res.Metric("warmstart/ngram_size", float64(ng.Size()))

	res.Notes = append(res.Notes,
		fmt.Sprintf("trace: %d arrivals, %d templates x %d-token shared prefixes over %d tasks, %d shards, sequential replay",
			len(arrivals), templates, templateLen, len(pool), shards),
		"saved prefill% = prompt positions skipped via per-shard radix caches / total prompt positions; routing and savings are seed-deterministic (latency percentiles carry scheduler noise)",
		"cache-aware routing probes every live shard's cache (MatchLen) and follows the longest resident prefix, falling back to least-loaded when cold; prefix-affinity hashes blindly and only converges template locality by accident of hashing",
		fmt.Sprintf("warm-start: replaying the cache-aware arm's harvested continuation statistics seeded a fresh n-gram drafter with %d entries before any traffic", ng.Size()),
	)
	return res, nil
}

// fabricTickEvery is the fabric arm's replication cadence in trace
// (virtual arrival) time: the replay calls FabricTick at these window
// boundaries, and target shards ingest at their next step boundary.
const fabricTickEvery = 50 * time.Millisecond

// runCacheArm replays the trace sequentially through a fresh cluster with
// per-shard caches under one policy. The fabric arm additionally builds
// the cluster cache fabric (eviction journals on, directory sized to the
// trace) and ticks it on a fixed virtual-time cadence.
func runCacheArm(b *bench, name string, mkPolicy func([]*prefixcache.Cache) cluster.Policy, fabric bool,
	prompts [][]int, arrivals []workload.Arrival, shards, maxNew int, promptPositions int64) cacheArm {
	arm := cacheArm{policy: name}
	ccfg := prefixcache.Config{}
	if fabric {
		ccfg.JournalDepth = 256
	}
	caches := cluster.NewShardCaches(shards, ccfg)
	arm.armCaches = caches
	ecfg := rollout.DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	ecfg.SDThreshold = -1 // vanilla decode: the figure isolates prefill reuse
	clcfg := cluster.Config{
		Shards: shards,
		Shard: serving.Config{
			Engine: ecfg, Replicas: 1, QueueDepth: 64,
			AnswerID: b.tk.Answer(), EosID: b.tk.Eos(),
		},
		Policy: mkPolicy(caches),
		Caches: caches,
	}
	if fabric {
		// TopK large enough that every template and repeated task prompt
		// replicates: savings then track the cache-aware arm while the
		// holder rotation spreads the load the warm-shard concentration
		// would otherwise pile onto one shard.
		clcfg.Fabric = &cachefabric.Config{TopK: 128, MaxEntries: 4096}
	}
	cl, err := cluster.New(clcfg, b.target, nil)
	if err != nil {
		arm.err = err
		return arm
	}
	defer cl.Stop()

	nextTick := fabricTickEvery
	for _, a := range arrivals {
		if fabric {
			for a.At >= nextTick {
				cl.FabricTick()
				nextTick += fabricTickEvery
			}
		}
		_, err := cl.Serve(context.Background(), cluster.Request{
			Prompt: prompts[a.Task],
			MaxNew: maxNew,
			Prior:  workload.LengthPrior{TargetLen: a.TargetLen, Sharpness: 25},
			Seed:   a.Seed,
		})
		if err != nil {
			arm.err = err
			return arm
		}
	}
	arm.stats = cl.Stats()
	var hits, lookups int64
	for _, c := range caches {
		st := c.Stats()
		hits += st.Hits
		lookups += st.Lookups
		arm.nodes += st.Nodes
		arm.resident += st.ResidentBytes
	}
	if lookups > 0 {
		arm.hitRate = float64(hits) / float64(lookups)
	}
	if promptPositions > 0 {
		arm.savedFrac = float64(arm.stats.CacheSavedPositions) / float64(promptPositions)
	}
	// Load-balance figure: max/mean served requests across shards. 1.0 is
	// perfectly even; the shard count is the worst case (everything on one
	// shard — the hotspot cache-affinity routing tends toward).
	var maxServed, sumServed int
	for _, sh := range arm.stats.Shards {
		sumServed += sh.Served
		if sh.Served > maxServed {
			maxServed = sh.Served
		}
	}
	if sumServed > 0 {
		arm.loadRatio = float64(maxServed) * float64(len(arm.stats.Shards)) / float64(sumServed)
	}
	return arm
}
