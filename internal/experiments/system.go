package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fastrl/internal/cudagraph"
	"fastrl/internal/gpu"
	"fastrl/internal/mab"
	"fastrl/internal/metrics"
	"fastrl/internal/model"
	"fastrl/internal/rollout"
	"fastrl/internal/spot"
	"fastrl/internal/workload"
)

func init() {
	register("fig2", "Production-style RL training trace: max/p75/p50 response lengths over steps", runFig2)
	register("fig3a", "Test-time scaling: accuracy vs response-length budget", runFig3a)
	register("tab5", "CUDAGraph memory footprint: single vs naive-multi vs bucketed (Llama-8B-like, TP=4)", runTab5)
	register("fig14", "Rollout running-request profile with and without adaptive SD (case study)", runFig14)
	register("fig17", "Selective asynchronous checkpointing latency and sequence packing throughput", runFig17)
}

func runFig2(opts Options) (*Result, error) {
	cfg := workload.DefaultTraceConfig()
	if opts.Quick {
		cfg.Steps = 80
		cfg.PerStep = 128
	}
	cfg.Seed = seedOr(opts, 2)
	trace := workload.GenerateTrace(cfg)
	var maxS, p75S, p50S metrics.Series
	maxS.Name, p75S.Name, p50S.Name = "max", "p75", "median"
	stride := cfg.Steps / 16
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(trace); i += stride {
		t := trace[i]
		maxS.Add(float64(t.Step), float64(t.Max))
		p75S.Add(float64(t.Step), float64(t.P75))
		p50S.Add(float64(t.Step), float64(t.Median))
	}
	frac := workload.UnderUtilizedFraction(trace)
	return &Result{
		Series: []metrics.Series{maxS, p75S, p50S},
		Notes: []string{
			fmt.Sprintf("under-utilised zone (max-p75 gap) averages %.0f%% of the step (paper Fig. 2)", 100*frac),
			fmt.Sprintf("generation cap %d tokens; the max repeatedly pins at the cap", cfg.MaxLen),
		},
	}, nil
}

func runFig3a(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen7B, seedOr(opts, 33), opts.Quick)
	budgets := []int{2, 4, 8, 16, 32, 64, 128}
	samples := 60
	if opts.Quick {
		budgets = []int{2, 8, 32, 128}
		samples = 24
	}
	rng := rand.New(rand.NewSource(seedOr(opts, 33) ^ 0x3a))
	var s metrics.Series
	s.Name = "accuracy-vs-budget"
	verifier := newVerifier(b)
	for _, budget := range budgets {
		correct := 0
		tasks := b.gen.Sample(samples)
		for _, task := range tasks {
			seq := model.Generate(b.target, task.Prompt, nil, 0.9, budget, b.tk.Eos(), rng)
			if d, ok := verifier.ExtractAnswer(seq[len(task.Prompt):]); ok && d == task.Answer {
				correct++
			}
		}
		s.Add(float64(budget), 100*float64(correct)/float64(samples))
	}
	return &Result{
		Series: []metrics.Series{s},
		Notes: []string{
			"accuracy rises with the response-length budget and saturates (paper Fig. 3(a) shape)",
		},
	}, nil
}

func runTab5(opts Options) (*Result, error) {
	target := gpu.Llama8B
	draftArch := gpu.DraftArch(target)
	strategies := mab.DefaultStrategies()
	thresholds := mab.DefaultConfig().Thresholds

	single := cudagraph.SinglePlan(target, draftArch, 4, strategies[0], cudagraph.DefaultBuckets)
	naive := cudagraph.NaiveMultiPlan(target, draftArch, 4, strategies, cudagraph.DefaultBuckets)
	bucketed := cudagraph.BucketedPlan(target, draftArch, 4, strategies, thresholds, cudagraph.DefaultBuckets)

	tbl := &metrics.Table{Header: []string{"Method", "Memory Footprint", "Graphs"}}
	tbl.AddRow("Single Strategy", fmt.Sprintf("%.2f GB", single.TotalMemBytes()/1e9), fmt.Sprintf("%d", len(single.Graphs)))
	tbl.AddRow("Vanilla Multiple Strategies", fmt.Sprintf("%.2f GB", naive.TotalMemBytes()/1e9), fmt.Sprintf("%d", len(naive.Graphs)))
	tbl.AddRow("Bucketed CUDAGraph", fmt.Sprintf("%.2f GB", bucketed.TotalMemBytes()/1e9), fmt.Sprintf("%d", len(bucketed.Graphs)))
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			fmt.Sprintf("bucketed capture reduces naive multi-strategy memory %.1fx while staying within %.1fx of a single static strategy (paper Table 5: 30.39 -> 10.69 GB vs 7.81 GB)",
				naive.TotalMemBytes()/bucketed.TotalMemBytes(), bucketed.TotalMemBytes()/single.TotalMemBytes()),
		},
	}, nil
}

func runFig14(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen32B, seedOr(opts, 14), opts.Quick)
	dev := gpu.NewDevice(gpu.H100, 4)
	nReqs := 128
	maxNew := 256
	if opts.Quick {
		nReqs, maxNew = 48, 128
	}
	sampler := workload.DefaultLengthSampler(maxNew)

	run := func(threshold int, name string) (metrics.Series, time.Duration) {
		cfg := rollout.DefaultConfig(dev)
		cfg.SDThreshold = threshold
		var eng *rollout.Engine
		var err error
		if threshold >= 0 {
			eng, err = rollout.New(cfg, b.target, b.eagle)
		} else {
			eng, err = rollout.New(cfg, b.target, nil)
		}
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(seedOr(opts, 14) ^ 0x140))
		var reqs []*rollout.Request
		for i, task := range b.gen.SampleSeeded(nReqs, seedOr(opts, 14)^0x141) {
			prior := workload.PriorFor(task, sampler, rng)
			reqs = append(reqs, rollout.NewRequest(i, task.Prompt, prior.HardCap(maxNew), prior, b.tk.Answer(), b.tk.Eos()))
		}
		stats := eng.Run(reqs, rng)
		var s metrics.Series
		s.Name = name
		stride := len(stats.Profile) / 60
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(stats.Profile); i += stride {
			p := stats.Profile[i]
			s.Add(p.End.Seconds(), float64(p.Running))
		}
		return s, stats.Elapsed
	}
	base, baseT := run(-1, "baseline-no-sd")
	adaptive, adT := run(32, "adaptive-sd")
	return &Result{
		Series: []metrics.Series{base, adaptive},
		Notes: []string{
			fmt.Sprintf("rollout completes in %.2fs with adaptive SD vs %.2fs baseline: %.2fx speedup (paper Fig. 14: 2.44x)",
				adT.Seconds(), baseT.Seconds(), baseT.Seconds()/adT.Seconds()),
			"SD activates when the running-request count falls below the threshold (default 32)",
		},
	}, nil
}

func runFig17(opts Options) (*Result, error) {
	// (a) checkpoint latency: modelled at the paper's drafter scale
	// (single decoder layer trainable; embedding + LM head frozen).
	d := gpu.DraftArch(gpu.Qwen7B)
	trainable := int64(12 * d.HiddenDim * d.HiddenDim * 2)
	frozen := int64(2 * d.VocabSize * d.HiddenDim * 2)
	lat := spot.ModeledLatencies(trainable, frozen)
	ckptTbl := &metrics.Table{Header: []string{"Checkpointing", "Blocking Latency", "vs Vanilla"}}
	v := lat[spot.SyncFull]
	ckptTbl.AddRow("Vanilla Ckpt", fmt.Sprintf("%v", v.Round(time.Millisecond)), "1.0x")
	ckptTbl.AddRow("Async Ckpt", fmt.Sprintf("%v", lat[spot.AsyncFull].Round(time.Millisecond)),
		metrics.F(v.Seconds()/lat[spot.AsyncFull].Seconds(), 1)+"x")
	ckptTbl.AddRow("Selective Async Ckpt", fmt.Sprintf("%v", lat[spot.SelectiveAsync].Round(time.Millisecond)),
		metrics.F(v.Seconds()/lat[spot.SelectiveAsync].Seconds(), 1)+"x")

	// (b) sequence packing throughput on a long-tail batch.
	rng := rand.New(rand.NewSource(seedOr(opts, 17)))
	sampler := workload.DefaultLengthSampler(2048)
	lens := sampler.SampleMany(256, rng)
	_, packed := spot.Pack(lens, 2048)
	padded := spot.PadBatches(lens, 8)
	packTbl := &metrics.Table{Header: []string{"Batching", "Token Efficiency", "Relative Throughput"}}
	packTbl.AddRow("Vanilla Batching", metrics.F(padded.Efficiency(), 2), "1.0x")
	packTbl.AddRow("Sequence Packing", metrics.F(packed.Efficiency(), 2),
		metrics.F(packed.Efficiency()/padded.Efficiency(), 1)+"x")
	return &Result{
		Tables: []*metrics.Table{ckptTbl, packTbl},
		Notes: []string{
			"paper Fig. 17: selective async checkpointing 9.2x faster; sequence packing 2.2x throughput",
		},
	}, nil
}
