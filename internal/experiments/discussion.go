package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fastrl/internal/core"
	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/rollout"
	"fastrl/internal/workload"
)

func init() {
	register("disc-multiturn", "Discussion: SD under multi-turn tool-calling rollouts (paper §7)", runDiscMultiturn)
	register("disc-uniform", "Discussion: SD under uniformly-long, KV-cache-bound rollouts (paper §7)", runDiscUniform)
}

// discRun executes one rollout batch with optional tool profile and KV
// budget, returning elapsed time and accept length.
func discRun(b *bench, threshold int, tool rollout.ToolProfile, kvBudget float64, nReqs, targetLen, maxNew int, seed int64) (time.Duration, float64, rollout.Stats) {
	dev := gpu.NewDevice(gpu.H100, 2)
	cfg := rollout.DefaultConfig(dev)
	cfg.SDThreshold = threshold
	cfg.KVBudgetBytes = kvBudget
	var eng *rollout.Engine
	var err error
	if threshold >= 0 {
		eng, err = rollout.New(cfg, b.target, b.eagle)
	} else {
		eng, err = rollout.New(cfg, b.target, nil)
	}
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var reqs []*rollout.Request
	for i, task := range b.gen.SampleSeeded(nReqs, seed) {
		r := rollout.NewRequest(i, task.Prompt, maxNew,
			workload.LengthPrior{TargetLen: targetLen, Sharpness: 25}, b.tk.Answer(), b.tk.Eos())
		r.Tool = tool
		reqs = append(reqs, r)
	}
	stats := eng.Run(reqs, rng)
	return stats.Elapsed, stats.MeanAcceptLen(), stats
}

func runDiscMultiturn(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen7B, seedOr(opts, 71), opts.Quick)
	nReqs, targetLen := 16, 200
	if opts.Quick {
		nReqs, targetLen = 8, 120
	}
	tool := rollout.ToolProfile{Every: 40, Latency: 60 * time.Millisecond, MaxCalls: 4}

	tbl := &metrics.Table{Header: []string{"Configuration", "Rollout time", "Accept len", "Tool calls"}}
	van, _, vs := discRun(b, -1, tool, 0, nReqs, targetLen, targetLen+40, 71)
	sd, accept, ss := discRun(b, 32, tool, 0, nReqs, targetLen, targetLen+40, 71)
	tbl.AddRow("multi-turn, vanilla", fmt.Sprintf("%v", van.Round(time.Millisecond)), "-", fmt.Sprintf("%d", vs.ToolCalls))
	tbl.AddRow("multi-turn, adaptive SD", fmt.Sprintf("%v", sd.Round(time.Millisecond)), metrics.F(accept, 2), fmt.Sprintf("%d", ss.ToolCalls))
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			fmt.Sprintf("SD speedup %.2fx: tool calls park requests off-GPU, shrinking the decoding batch into SD's favourable regime (paper §7)", van.Seconds()/sd.Seconds()),
		},
	}, nil
}

func runDiscUniform(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen7B, seedOr(opts, 72), opts.Quick)
	nReqs, targetLen := 16, 280
	if opts.Quick {
		nReqs, targetLen = 10, 160
	}
	perTok := b.target.Arch().KVBytesPerToken() / 2 // TP=2 device
	budget := 3 * perTok * float64(targetLen)

	tbl := &metrics.Table{Header: []string{"Configuration", "Rollout time", "Accept len", "Queued iters"}}
	van, _, vs := discRun(b, -1, rollout.ToolProfile{}, budget, nReqs, targetLen, targetLen+40, 72)
	sd, accept, ss := discRun(b, 32, rollout.ToolProfile{}, budget, nReqs, targetLen, targetLen+40, 72)
	tbl.AddRow("uniform-long, KV-bound, vanilla", fmt.Sprintf("%v", van.Round(time.Millisecond)), "-", fmt.Sprintf("%d", vs.QueuedSteps))
	tbl.AddRow("uniform-long, KV-bound, adaptive SD", fmt.Sprintf("%v", sd.Round(time.Millisecond)), metrics.F(accept, 2), fmt.Sprintf("%d", ss.QueuedSteps))
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			fmt.Sprintf("SD speedup %.2fx: with no length tail at all, KV pressure caps the resident batch, which again lands in SD's sweet spot (paper §7)", van.Seconds()/sd.Seconds()),
		},
	}, nil
}

func init() {
	register("disc-earlystop", "Discussion: premature rollout termination vs TLT (speed-quality tradeoff, §7/§8)", runDiscEarlyStop)
}

// runDiscEarlyStop contrasts three ways of handling the long tail over a
// short training run: waiting it out (VeRL), cutting it (partial-rollout
// early stopping), and accelerating it losslessly (TLT).
func runDiscEarlyStop(opts Options) (*Result, error) {
	steps := 6
	if opts.Quick {
		steps = 3
	}
	run := func(kind core.Kind, earlyStop int) (float64, float64, error) {
		cfg := core.DefaultConfig()
		cfg.Kind = kind
		cfg.Seed = seedOr(opts, 73)
		cfg.ModelBuckets = 1 << 11
		cfg.RL.PromptsPerStep = 10
		cfg.RL.GroupSize = 6
		cfg.MaxNew = 256
		cfg.EarlyStopTail = earlyStop
		sys, err := core.New(cfg)
		if err != nil {
			return 0, 0, err
		}
		if kind == core.TLT {
			sys.WarmUpDrafter(30, 2)
		}
		var tput, reward float64
		for i := 0; i < steps; i++ {
			st, err := sys.Step()
			if err != nil {
				return 0, 0, err
			}
			tput += st.Throughput
			reward += st.Summary.MeanReward
		}
		return tput / float64(steps), reward / float64(steps), nil
	}
	tbl := &metrics.Table{Header: []string{"System", "Throughput (tok/s)", "Mean reward"}}
	vt, vr, err := run(core.VeRL, 0)
	if err != nil {
		return nil, err
	}
	et, er, err := run(core.VeRL, 4) // cut the last 4 requests per worker
	if err != nil {
		return nil, err
	}
	tt, tr, err := run(core.TLT, 0)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("VeRL (wait out the tail)", metrics.F(vt, 0), metrics.F(vr, 3))
	tbl.AddRow("VeRL + early stop (cut the tail)", metrics.F(et, 0), metrics.F(er, 3))
	tbl.AddRow("TLT (accelerate the tail, lossless)", metrics.F(tt, 0), metrics.F(tr, 3))
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"early stopping buys throughput by truncating exactly the responses RL needs scored, risking model quality (paper §8: 'these strategies accelerate training [but] risk degrading model quality')",
			"TLT reaches comparable throughput without touching the algorithm",
		},
	}, nil
}
