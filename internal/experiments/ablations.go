package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fastrl/internal/core"
	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/rollout"
	"fastrl/internal/specdec"
	"fastrl/internal/spot"
	"fastrl/internal/workload"
)

func init() {
	register("abl-elastic", "Ablation: elastic SD activation threshold (always-on vs threshold vs off)", runAblElastic)
	register("abl-mab", "Ablation: BEG-MAB tuner vs fixed strategies vs oracle", runAblMAB)
	register("abl-buffer", "Ablation: DataBuffer one-step-off sampling vs current-only", runAblBuffer)
	register("abl-tree", "Ablation: tree vs linear drafting", runAblTree)
	register("abl-spot", "Ablation: adaptive spot training vs frozen warm-up drafter", runAblSpot)
}

// ablRollout runs one rollout batch under a config mutation and reports
// elapsed virtual time.
func ablRollout(b *bench, mutate func(*rollout.Config), nReqs, maxNew int, seed int64) (time.Duration, float64) {
	dev := gpu.NewDevice(gpu.H100, 2)
	cfg := rollout.DefaultConfig(dev)
	mutate(&cfg)
	var eng *rollout.Engine
	var err error
	if cfg.SDThreshold >= 0 {
		eng, err = rollout.New(cfg, b.target, b.eagle)
	} else {
		eng, err = rollout.New(cfg, b.target, nil)
	}
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	sampler := workload.DefaultLengthSampler(maxNew)
	var reqs []*rollout.Request
	for i, task := range b.gen.SampleSeeded(nReqs, seed) {
		prior := workload.PriorFor(task, sampler, rng)
		reqs = append(reqs, rollout.NewRequest(i, task.Prompt, prior.HardCap(maxNew), prior, b.tk.Answer(), b.tk.Eos()))
	}
	stats := eng.Run(reqs, rng)
	return stats.Elapsed, stats.MeanAcceptLen()
}

func runAblElastic(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen7B, seedOr(opts, 41), opts.Quick)
	nReqs, maxNew := 64, 256
	if opts.Quick {
		nReqs, maxNew = 32, 128
	}
	tbl := &metrics.Table{Header: []string{"SD activation", "Rollout time", "Speedup vs no-SD"}}
	variants := []struct {
		name      string
		threshold int
	}{
		{"off (vanilla)", -1},
		{"always on", 0},
		{"elastic threshold 32 (TLT)", 32},
		{"elastic threshold 8", 8},
	}
	times := make([]time.Duration, len(variants))
	forEach(len(variants), func(i int) {
		times[i], _ = ablRollout(b, func(c *rollout.Config) { c.SDThreshold = variants[i].threshold }, nReqs, maxNew, 41)
	})
	base := times[0] // "off" is the no-SD baseline
	for i, v := range variants {
		tbl.AddRow(v.name, fmt.Sprintf("%v", times[i].Round(time.Millisecond)), metrics.F(base.Seconds()/times[i].Seconds(), 2)+"x")
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes:  []string{"the elastic threshold avoids SD slowdowns at large batch while capturing the long-tail gains (paper §5.1, Fig. 14)"},
	}, nil
}

func runAblMAB(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen7B, seedOr(opts, 42), opts.Quick)
	dev := gpu.NewDevice(gpu.H100, 2)
	iters := 300
	if opts.Quick {
		iters = 100
	}
	tbl := &metrics.Table{Header: []string{"Tuner", "Steady-state tok/s (BS=2)"}}

	fixed := []specdec.Params{
		{DraftDepth: 6, TopK: 6, TokensToVerify: 24},
		{DraftDepth: 3, TopK: 2, TokensToVerify: 4},
	}
	// Arm 0 is BEG-MAB over the full ladder; the rest are fixed strategies.
	tputs := make([]float64, 1+len(fixed))
	forEach(len(tputs), func(i int) {
		if i == 0 {
			tputs[0], _ = b.steadyState(dev, nil, 2, iters, 0, nil, 0.9)
			return
		}
		tputs[i], _ = b.steadyState(dev, nil, 2, iters, 0, []specdec.Params{fixed[i-1]}, 0.9)
	})
	tbl.AddRow("BEG-MAB (TLT)", metrics.F(tputs[0], 1))
	var best float64
	for i, p := range fixed {
		if tputs[i+1] > best {
			best = tputs[i+1]
		}
		tbl.AddRow(fmt.Sprintf("fixed {d=%d,k=%d,v=%d}", p.DraftDepth, p.TopK, p.TokensToVerify), metrics.F(tputs[i+1], 1))
	}
	tbl.AddRow("oracle (best fixed)", metrics.F(best, 1))
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes:  []string{"BEG-MAB tracks the best fixed strategy without manual tuning (Algorithm 1)"},
	}, nil
}

func runAblBuffer(opts Options) (*Result, error) {
	// Reuses the spot package's one-step-off property at experiment scale:
	// mean sampled sequence length with and without the previous-step pool.
	rng := rand.New(rand.NewSource(seedOr(opts, 43)))
	sampler := workload.DefaultLengthSampler(2048)

	mkBuffer := func(longFrac float64) *spot.DataBuffer {
		buf := spot.NewDataBuffer(4096)
		buf.LongFrac = longFrac
		// Previous step: the full (long-tailed) distribution.
		for i := 0; i < 400; i++ {
			buf.Add(spotSeq(sampler.Sample(rng)))
		}
		buf.StepEnd()
		// Current step: only early finishes so far (shortest third).
		for i := 0; i < 200; i++ {
			l := sampler.Sample(rng)
			if l > 128 {
				l = 128
			}
			buf.Add(spotSeq(l))
		}
		return buf
	}
	withOff := mkBuffer(0.3).MeanSampledLen(60000, rand.New(rand.NewSource(1)))
	currentOnly := mkBuffer(0).MeanSampledLen(60000, rand.New(rand.NewSource(1)))

	tbl := &metrics.Table{Header: []string{"Sampling", "Mean trained sequence length"}}
	tbl.AddRow("current partial only", metrics.F(currentOnly, 1))
	tbl.AddRow("one-step-off (TLT DataBuffer)", metrics.F(withOff, 1))
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes:  []string{"one-step-off sampling restores long-tail coverage that partial current-step data lacks (paper §4.2)"},
	}, nil
}

// spotSeq builds a placeholder training sequence of length n (sampling
// ablations only inspect lengths).
func spotSeq(n int) spot.Sequence {
	exs := make([]*draft.Example, n)
	for i := range exs {
		exs[i] = &draft.Example{SeqLen: n}
	}
	return spot.Sequence{Examples: exs}
}

func runAblTree(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen7B, seedOr(opts, 44), opts.Quick)
	dev := gpu.NewDevice(gpu.H100, 2)
	iters := 300
	if opts.Quick {
		iters = 100
	}
	tbl := &metrics.Table{Header: []string{"Drafting", "Steady-state tok/s (BS=1)", "Accept length"}}
	arms := []specdec.Params{
		{DraftDepth: 6, TopK: 1, TokensToVerify: 6},
		{DraftDepth: 6, TopK: 6, TokensToVerify: 24},
	}
	var tput, accept [2]float64
	forEach(len(arms), func(i int) {
		tput[i], accept[i] = b.steadyState(dev, nil, 1, iters, 0, []specdec.Params{arms[i]}, 0.9)
	})
	tbl.AddRow("linear (topK=1)", metrics.F(tput[0], 1), metrics.F(accept[0], 2))
	tbl.AddRow("tree (topK=6)", metrics.F(tput[1], 1), metrics.F(accept[1], 2))
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes:  []string{"tree drafting verifies multiple paths per round and accepts more tokens (paper §5.1, Fig. 9)"},
	}, nil
}

func runAblSpot(opts Options) (*Result, error) {
	steps := 6
	if opts.Quick {
		steps = 3
	}
	run := func(disable bool) (float64, error) {
		cfg := core.DefaultConfig()
		cfg.Kind = core.TLT
		cfg.Seed = seedOr(opts, 45)
		cfg.ModelBuckets = 1 << 11
		cfg.RL.PromptsPerStep = 10
		cfg.RL.GroupSize = 6
		cfg.MaxNew = 192
		cfg.DisableSpot = disable
		sys, err := core.New(cfg)
		if err != nil {
			return 0, err
		}
		sys.WarmUpDrafter(30, 2)
		var accept float64
		for i := 0; i < steps; i++ {
			st, err := sys.Step()
			if err != nil {
				return 0, err
			}
			accept = st.AcceptLen // final step's accept length
		}
		return accept, nil
	}
	frozen, err := run(true)
	if err != nil {
		return nil, err
	}
	adaptive, err := run(false)
	if err != nil {
		return nil, err
	}
	tbl := &metrics.Table{Header: []string{"Drafter", "Accept length after RL steps"}}
	tbl.AddRow("frozen warm-up drafter", metrics.F(frozen, 2))
	tbl.AddRow("adaptive (spot-trained)", metrics.F(adaptive, 2))
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes:  []string{"spot training keeps the drafter aligned as RL updates the target (paper §4.2, Table 6)"},
	}, nil
}
