package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fastrl/internal/cachefabric"
	"fastrl/internal/cluster"
	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/prefixcache"
	"fastrl/internal/rollout"
	"fastrl/internal/serving"
	"fastrl/internal/slo"
	"fastrl/internal/specdec"
	"fastrl/internal/trace"
	"fastrl/internal/vclock"
	"fastrl/internal/workload"
)

func init() {
	register("chaos",
		"Chaos fault injection: crash/hang shard failures under a bursty trace, with vs. without determinism-checked failover",
		runChaos)
}

// chaosArm is one failover setting's replay outcome.
type chaosArm struct {
	name  string
	stats cluster.Stats
	// Client-observed outcomes: every arrival lands in exactly one bucket.
	served, failed, shed int
	// checksum folds every delivered token into one value — the
	// cross-run determinism probe (same seeds ⇒ same checksum).
	checksum int64
	// faultTTFTs are TTFT samples from requests submitted during windows
	// containing a fault — the failure-window tail.
	faultTTFTs []float64
	// postmortems counts the flight-recorder captures the faults left.
	postmortems int
	// reviveWarmHits counts revived shards whose first templated request
	// after the fabric warm handoff scored a prefill cache hit (the replay
	// fails hard on any revive where it does not).
	reviveWarmHits int
	err            error
}

func (a *chaosArm) availability(total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(a.served) / float64(total)
}

// runChaos replays one bursty arrival trace through a sharded cluster
// twice — with failover enabled and disabled — under the same seeded
// fault plan (one crash, one hang, each revived MTTR later). Faults land
// mid-window against inflight traffic; the hang is detected and escalated
// by the health monitor, not the driver. The figure is the availability
// and failure-window tail contrast between the two arms, plus the
// exactly-once check (duplicate deliveries must be 0). Under fixed seeds
// the kill set, availability, and delivered-token checksum are fully
// deterministic (TestChaosExperimentAcceptance pins this); wall-clock
// latency tails are the one non-deterministic column.
func runChaos(opts Options) (*Result, error) {
	seed := seedOr(opts, 29)
	b := newBench(gpu.Qwen7B, seed, opts.Quick)

	shards, replicas := 3, 1
	window := 250 * time.Millisecond
	windows := 10
	rate := 32.0
	maxNew := 32
	if opts.Quick {
		windows = 6
		rate = 24
	}
	// Every prompt is template ++ task prompt: the shared prefix gives the
	// per-shard caches real locality, so a revived shard's warm handoff has
	// something cluster-hot to restore — the thing the post-revive probe
	// asserts.
	tmplRng := rand.New(rand.NewSource(seed ^ 0x7e9))
	template := make([]int, 16)
	for i := range template {
		template[i] = tmplRng.Intn(b.tk.VocabSize())
	}

	duration := time.Duration(windows) * window
	arrivals := workload.GenerateArrivals(workload.ArrivalConfig{
		Duration:   duration,
		RatePerSec: rate,
		Tasks:      len(b.gen.Pool()),
		Lengths:    workload.DefaultLengthSampler(maxNew),
		Seed:       seed ^ 0xc4a5,
		// Steady load with a 2.5x burst through the middle — the faults land
		// at the burst's edges.
		Shape: func(frac float64) float64 {
			if frac >= 1.0/3 && frac < 2.0/3 {
				return 2.5
			}
			return 1
		},
	})
	plan := cluster.GenerateFaultPlan(cluster.FaultPlanConfig{
		Seed:     seed ^ 0xfa17,
		Shards:   shards,
		Duration: duration,
		Faults:   2,
		Kinds:    []cluster.FaultKind{cluster.FaultCrash, cluster.FaultHang},
	})

	arms := make([]chaosArm, 2)
	forEach(2, func(i int) {
		arms[i] = runChaosArm(b, i == 0, arrivals, plan, chaosArmConfig{
			shards: shards, replicas: replicas, window: window,
			windows: windows, maxNew: maxNew, template: template,
		})
	})

	res := &Result{}
	tbl := &metrics.Table{Header: []string{
		"failover", "served", "failed", "shed", "avail%", "failovers", "dup", "slo breaches", "fault ttft p99.9 ms", "ttft p99.9 ms", "p99.9 ms",
	}}
	for i := range arms {
		arm := &arms[i]
		if arm.err != nil {
			return nil, arm.err
		}
		st := arm.stats
		avail := arm.availability(len(arrivals))
		faultTail := metrics.Percentile(arm.faultTTFTs, 99.9)
		tbl.AddRow(arm.name,
			fmt.Sprintf("%d", arm.served),
			fmt.Sprintf("%d", arm.failed),
			fmt.Sprintf("%d", arm.shed),
			metrics.F(100*avail, 2),
			fmt.Sprintf("%d", st.Failovers),
			fmt.Sprintf("%d", st.DuplicateDeliveries),
			fmt.Sprintf("%d", st.SLOBreaches),
			metrics.F(1000*faultTail, 2),
			metrics.F(float64(st.TTFTP999)/float64(time.Millisecond), 2),
			metrics.F(float64(st.P999)/float64(time.Millisecond), 2),
		)
		res.Metric(arm.name+"/availability", avail)
		res.Metric(arm.name+"/served", float64(arm.served))
		res.Metric(arm.name+"/failed", float64(arm.failed))
		res.Metric(arm.name+"/shed", float64(arm.shed))
		res.Metric(arm.name+"/failovers", float64(st.Failovers))
		res.Metric(arm.name+"/dup_deliveries", float64(st.DuplicateDeliveries))
		res.Metric(arm.name+"/postmortems", float64(arm.postmortems))
		res.Metric(arm.name+"/revive_warm_hits", float64(arm.reviveWarmHits))
		res.Metric(arm.name+"/slo_breaches", float64(st.SLOBreaches))
		res.Metric(arm.name+"/token_checksum", float64(arm.checksum))
		res.Metric(arm.name+"/fault_ttft_p999_ms", 1000*faultTail)
		res.Metric(arm.name+"/ttft_p999_ms", float64(st.TTFTP999)/float64(time.Millisecond))
		res.Metric(arm.name+"/p999_ms", float64(st.P999)/float64(time.Millisecond))
	}
	// Recovery time from the plan's fault→revive pairing (virtual time —
	// deterministic by construction).
	var recovery time.Duration
	var faults int
	pending := map[int]time.Duration{}
	for _, ev := range plan.Events {
		if ev.Kind == cluster.FaultRevive {
			if at, ok := pending[ev.Shard]; ok {
				recovery += ev.At - at
				faults++
				delete(pending, ev.Shard)
			}
		} else {
			pending[ev.Shard] = ev.At
		}
	}
	if faults > 0 {
		res.Metric("recovery_ms", float64(recovery/time.Duration(faults))/float64(time.Millisecond))
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		fmt.Sprintf("trace: %d arrivals over %v (2.5x mid-burst), %d shards x %d replica(s); fault plan: %v",
			len(arrivals), duration, shards, replicas, describeFaults(plan)),
		"faults land mid-window against inflight traffic; the hang carries no error signal — the health monitor detects the stalled step counter and escalates it to a crash",
		"with failover, every request stranded on a dead shard replays on a survivor from its private RNG and prompt, bit-identical and deduplicated (dup must be 0); without, those requests fail",
		"availability, failovers, and the delivered-token checksum are seed-deterministic (the CI acceptance test replays the experiment and compares them exactly); latency tails carry wall time and are not",
		"fault ttft p99.9 samples only requests submitted during fault windows; cluster ttft/latency p99.9 are exact bucket-wise histogram merges across shards",
		"each shard runs an availability SLO (objective 99%, 500ms fast window): a fault torching the shard's inflight requests burns the budget and drops a KindSLOBreach marker into the same flight ring as the fault record — the replay fails hard if any crash/hang leaves no breach marker behind it",
		"every prompt shares a 16-token template; revived shards rejoin through the cache fabric's warm handoff, and the replay fails hard unless each one's first templated request scores a prefill cache hit (revive_warm_hits counts the revives that passed)",
	)
	return res, nil
}

func describeFaults(plan cluster.FaultPlan) string {
	s := ""
	for i, ev := range plan.Events {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%v@%v(shard %d)", ev.Kind, ev.At.Round(time.Millisecond), ev.Shard)
	}
	return s
}

type chaosArmConfig struct {
	shards, replicas int
	window           time.Duration
	windows, maxNew  int
	// template is the shared prompt prefix prepended to every task prompt.
	template []int
}

// runChaosArm replays the trace and fault plan through a fresh cluster.
// Submission is window-structured: each window's arrivals are submitted,
// the window's faults are applied against them mid-flight, and the window
// drains under health-monitor polling before the next begins. Revives
// apply at window boundaries. Prefix-affinity routing makes the kill set
// (which requests sit on the faulted shard) independent of goroutine
// scheduling — the backbone of the arm's determinism.
func runChaosArm(b *bench, failover bool, arrivals []workload.Arrival, plan cluster.FaultPlan, cfg chaosArmConfig) chaosArm {
	arm := chaosArm{name: "without"}
	if failover {
		arm.name = "with"
	}
	drafter := b.eagle.Clone()
	ecfg := rollout.DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	ecfg.SDThreshold = 0
	// One pinned SD strategy: a request's token stream depends only on its
	// private seed, which is what makes a failover replay bit-identical.
	ecfg.Strategies = []specdec.Params{{DraftDepth: 6, TopK: 6, TokensToVerify: 24}}
	ecfg.MAB.Thresholds = []int{1}
	// Per-shard caches plus the cluster cache fabric: revives restore the
	// hot templated prefix through the fabric's warm handoff instead of
	// rejoining cold. Routing stays prefix-affinity — hashing past the
	// shared template so tasks spread as before — keeping the kill set
	// independent of cache state.
	caches := cluster.NewShardCaches(cfg.shards, prefixcache.Config{JournalDepth: 128})
	cl, err := cluster.New(cluster.Config{
		Shards: cfg.shards,
		Shard: serving.Config{
			Engine: ecfg, Replicas: cfg.replicas, QueueDepth: 512,
			AnswerID: b.tk.Answer(), EosID: b.tk.Eos(),
		},
		Policy: cluster.NewPrefixAffinity(len(cfg.template) + 4),
		Caches: caches,
		Fabric: &cachefabric.Config{},
		// Headroom for the burst plus failover resubmissions: chaos measures
		// fault loss, not admission loss.
		Admission: cluster.AdmissionConfig{MaxPending: 512},
		Failover:  cluster.FailoverConfig{Enabled: failover},
		// Availability SLO per shard: faults are the only failure source in
		// this experiment (admission never sheds at this headroom), so every
		// burn-rate breach marker in a shard's flight ring is attributable
		// to an injected fault — verifySLOBreaches pins that the marker
		// lands in ring order after the fault record it stems from. The
		// tight objective (99%) and short fast window make even a lightly
		// loaded shard's kill set burn well past the breach threshold.
		SLO: []slo.Spec{{
			Name: "availability", Kind: slo.Availability, Objective: 0.99,
			FastWindow: 500 * time.Millisecond,
		}},
	}, b.target, drafter)
	if err != nil {
		arm.err = err
		return arm
	}
	defer cl.Stop()
	mon := cl.NewMonitor(cluster.MonitorConfig{HangPolls: 10})
	clock := &vclock.Clock{}

	var faults, revives []cluster.FaultEvent
	for _, ev := range plan.Events {
		if ev.Kind == cluster.FaultRevive {
			revives = append(revives, ev)
		} else {
			faults = append(faults, ev)
		}
	}
	var mu sync.Mutex
	record := func(r cluster.Response, err error, faultWindow bool) {
		mu.Lock()
		defer mu.Unlock()
		var shedErr *cluster.ErrShedded
		switch {
		case err == nil:
			arm.served++
			// Per-request hash folded order-sensitively, then summed across
			// requests commutatively: the checksum pins every delivered token
			// stream exactly while staying independent of completion order.
			var h int64 = 1
			for _, tok := range r.Tokens {
				h = h*31 + int64(tok)
			}
			arm.checksum += h
			if faultWindow && r.TTFT > 0 {
				arm.faultTTFTs = append(arm.faultTTFTs, r.TTFT.Seconds())
			}
		case errors.As(err, &shedErr):
			arm.shed++
		default:
			arm.failed++
		}
	}

	// probeRevived is the warm-handoff smoke: immediately after a revive,
	// the shard's very first templated request must already score a prefill
	// cache hit. The probe prompt is the shard's hottest restored prefix —
	// every resident path stems from templated traffic, so it must carry
	// the shared template, and serving it exercises the real prefill-lookup
	// path against the handed-off state before any routed traffic arrives.
	probeRevived := func(shard int) error {
		c := caches[shard]
		hot := c.HotPrefixStats(1)
		if len(hot) == 0 {
			return fmt.Errorf("chaos arm %s: revived shard %d rejoined with an empty cache — warm handoff copied nothing",
				arm.name, shard)
		}
		probe := hot[0].Tokens
		if len(probe) < len(cfg.template) {
			return fmt.Errorf("chaos arm %s: revived shard %d hottest restored prefix is %d tokens, shorter than the %d-token template",
				arm.name, shard, len(probe), len(cfg.template))
		}
		for i, tok := range cfg.template {
			if probe[i] != tok {
				return fmt.Errorf("chaos arm %s: revived shard %d restored prefix diverges from the shared template at token %d — handoff shipped non-templated state",
					arm.name, shard, i)
			}
		}
		before := c.Stats().Hits
		if _, err := cl.ShardServer(shard).Serve(context.Background(), serving.Request{
			Prompt: probe, MaxNew: 8, Seed: 0x9e37 + int64(shard),
		}); err != nil {
			return fmt.Errorf("chaos arm %s: revived shard %d refused its first templated request: %w", arm.name, shard, err)
		}
		if after := c.Stats().Hits; after <= before {
			return fmt.Errorf("chaos arm %s: revived shard %d served its first templated request without a prefill cache hit",
				arm.name, shard)
		}
		arm.reviveWarmHits++
		return nil
	}

	next, fi, ri := 0, 0, 0
	var expected []expectedFault
	for w := 0; w < cfg.windows; w++ {
		wStart := time.Duration(w) * cfg.window
		wEnd := wStart + cfg.window
		clock.AdvanceTo(wStart)
		for ri < len(revives) && revives[ri].At <= wStart {
			if err := cl.ReviveShard(revives[ri].Shard, wStart); err != nil {
				arm.err = err
				return arm
			}
			if err := probeRevived(revives[ri].Shard); err != nil {
				arm.err = err
				return arm
			}
			ri++
		}
		// Fabric replication round at the window boundary: hot templated
		// prefixes spread to every live shard in virtual time.
		cl.FabricTick()
		var due []cluster.FaultEvent
		for fi < len(faults) && faults[fi].At < wEnd {
			due = append(due, faults[fi])
			fi++
		}
		for _, f := range due {
			// Pre-stall the doomed shard so none of this window's requests
			// can complete a step before the fault lands: the kill set is
			// then exactly "everything routed to the shard", not a race.
			cl.SlowShard(f.Shard, 5*time.Millisecond, wStart)
		}

		batch := arrivals[next:]
		for i, a := range batch {
			if a.At >= wEnd {
				batch = batch[:i]
				break
			}
		}
		next += len(batch)
		streams := make([]*cluster.Stream, 0, len(batch))
		for _, a := range batch {
			prompt := append(append([]int(nil), cfg.template...), b.gen.Pool()[a.Task].Prompt...)
			st, err := cl.Stream(context.Background(), cluster.Request{
				Prompt: prompt,
				MaxNew: cfg.maxNew,
				Prior:  workload.LengthPrior{TargetLen: a.TargetLen, Sharpness: 25},
				Seed:   a.Seed,
			})
			if err != nil {
				record(cluster.Response{}, err, len(due) > 0)
				continue
			}
			streams = append(streams, st)
		}
		for _, f := range due {
			at := clock.Now()
			switch f.Kind {
			case cluster.FaultCrash:
				cl.CrashShard(f.Shard, at)
				expected = append(expected, expectedFault{shard: f.Shard, kind: trace.KindFaultCrash, at: at})
			case cluster.FaultHang:
				cl.HangShard(f.Shard, at)
				expected = append(expected, expectedFault{shard: f.Shard, kind: trace.KindFaultHang, at: at})
			case cluster.FaultSlow:
				cl.SlowShard(f.Shard, f.Stall, at)
				expected = append(expected, expectedFault{shard: f.Shard, kind: trace.KindFaultSlow, at: at})
			}
		}

		// Drain the window under monitor polling — hang escalation happens
		// here, from the stalled step counter, exactly as it would in
		// production.
		stopPoll := make(chan struct{})
		var pollWG sync.WaitGroup
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-stopPoll:
					return
				default:
				}
				mon.Poll(clock.Now())
				time.Sleep(time.Millisecond)
			}
		}()
		var wg sync.WaitGroup
		for _, st := range streams {
			wg.Add(1)
			go func(st *cluster.Stream) {
				defer wg.Done()
				r, err := st.Wait()
				record(r, err, len(due) > 0)
			}(st)
		}
		wg.Wait()
		close(stopPoll)
		pollWG.Wait()
		clock.AdvanceTo(wEnd)
	}
	for ri < len(revives) {
		if err := cl.ReviveShard(revives[ri].Shard, clock.Now()); err != nil {
			arm.err = err
			return arm
		}
		if err := probeRevived(revives[ri].Shard); err != nil {
			arm.err = err
			return arm
		}
		ri++
	}
	arm.stats = cl.Stats()
	arm.postmortems = len(cl.Postmortems())
	if got := arm.served + arm.failed + arm.shed; got != len(arrivals) {
		arm.err = fmt.Errorf("chaos arm %s: %d served + %d failed + %d shed != %d arrivals\n%s",
			arm.name, arm.served, arm.failed, arm.shed, len(arrivals), dumpRecorder(cl))
	}
	if arm.err == nil {
		arm.err = verifyFlightRecords(cl, arm.name, expected)
	}
	if arm.err == nil {
		arm.err = verifySLOBreaches(cl, arm.name, expected)
	}
	return arm
}

// expectedFault is one injected fault the flight recorder must have
// captured: the kind, the target shard, and the virtual injection time.
type expectedFault struct {
	shard int
	kind  trace.Kind
	at    time.Duration
}

// verifyFlightRecords asserts every injected fault left a record in its
// shard's flight ring at the right virtual time, and that every crash (or
// hang — escalated to a crash by the monitor) produced a postmortem
// capture containing that record.
func verifyFlightRecords(cl *cluster.Cluster, arm string, expected []expectedFault) error {
	for _, want := range expected {
		found := false
		for _, r := range cl.FlightRecorder(want.shard).Snapshot() {
			if r.Kind == want.kind && r.Start == want.at && int(r.Shard) == want.shard {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("chaos arm %s: shard %d flight ring missing %v@%v\n%s",
				arm, want.shard, want.kind, want.at, dumpRecorder(cl))
		}
		if want.kind != trace.KindFaultCrash && want.kind != trace.KindFaultHang {
			continue
		}
		// Crashes capture a postmortem directly; hangs through the
		// monitor's escalation. Either way the capture must exist and hold
		// the injected fault's record.
		captured := false
		for _, pm := range cl.Postmortems() {
			if pm.Shard != want.shard {
				continue
			}
			for _, r := range pm.Records {
				if r.Kind == want.kind && r.Start == want.at {
					captured = true
					break
				}
			}
		}
		if !captured {
			return fmt.Errorf("chaos arm %s: no postmortem captured %v@%v on shard %d\n%s",
				arm, want.kind, want.at, want.shard, dumpRecorder(cl))
		}
	}
	return nil
}

// verifySLOBreaches asserts the SLO story of every injected crash/hang
// sits alongside the fault markers: the faulted shard's availability
// budget torches when its inflight requests die, so its flight ring must
// hold a KindSLOBreach marker recorded after the fault record. Ring order
// is record order, which sidesteps comparing the driver's window clock
// against the shard's step clock.
func verifySLOBreaches(cl *cluster.Cluster, arm string, expected []expectedFault) error {
	for _, want := range expected {
		if want.kind != trace.KindFaultCrash && want.kind != trace.KindFaultHang {
			continue
		}
		recs := cl.FlightRecorder(want.shard).Snapshot()
		faultAt := -1
		for i, r := range recs {
			if r.Kind == want.kind && r.Start == want.at {
				faultAt = i
				break
			}
		}
		found := false
		for _, r := range recs[faultAt+1:] {
			if r.Kind == trace.KindSLOBreach {
				if r.ReqID != -1 || int(r.Shard) != want.shard {
					return fmt.Errorf("chaos arm %s: breach marker fields wrong: %+v on shard %d",
						arm, r, want.shard)
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("chaos arm %s: shard %d ring has no SLO breach marker after %v@%v\n%s",
				arm, want.shard, want.kind, want.at, dumpRecorder(cl))
		}
	}
	return nil
}

// dumpRecorder renders every shard's flight ring and the postmortem log —
// the failure-report payload when a chaos assertion trips.
func dumpRecorder(cl *cluster.Cluster) string {
	s := "flight recorder dump:\n"
	for id := 0; id < cl.Shards(); id++ {
		recs := cl.FlightRecorder(id).Snapshot()
		s += fmt.Sprintf("shard %d ring (%d records):\n", id, len(recs))
		for _, r := range recs {
			s += fmt.Sprintf("  req=%-6d %-12s [%v → %v] arg=%d\n", r.ReqID, r.Kind, r.Start, r.End, r.Arg)
		}
	}
	for _, pm := range cl.Postmortems() {
		s += pm.String()
	}
	return s
}
