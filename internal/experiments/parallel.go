package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(0..n-1) across a bounded worker pool (one worker per
// CPU), so tltbench and the quick-mode benchmarks regenerate independent
// experiment arms on all cores. Determinism is preserved because every
// arm derives its RNGs from its own fixed seeds (newRand, SampleSeeded)
// and writes only to its own result slot — arms must not share mutable
// state. Results are identical to the sequential loop in any order.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
