package experiments

import (
	"fmt"
	"math"

	"fastrl/internal/core"
	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
)

func init() {
	register("fig1a", "Response-length distribution and RL step-time breakdown", runFig1a)
	register("fig11", "End-to-end training speed: 4 models x {Open-R1, VeRL, TLT-Base, TLT} on H100 and A100", runFig11)
	register("fig12", "Reward curves: VeRL vs TLT overlap (losslessness of training dynamics)", runFig12)
	register("tab3", "End-to-end TLT speedup across cluster scales (1-8 nodes)", runTab3)
}

// e2eModel describes one Fig. 11 row.
type e2eModel struct {
	name string
	arch gpu.Arch
	tp   int
	seed int64
}

func e2eModels(quick bool) []e2eModel {
	ms := []e2eModel{
		{"Qwen-7B", gpu.Qwen7B, 2, 11},
		{"DeepSeek-7B", gpu.DeepSeek7B, 2, 12},
		{"Qwen-32B", gpu.Qwen32B, 4, 13},
		{"Llama-70B", gpu.Llama70B, 8, 14},
	}
	if quick {
		return ms[:2]
	}
	return ms
}

// meanThroughput runs warm-up + measured steps of a system and returns the
// mean token throughput, following the paper's methodology (average over
// three steps after a warm-up step).
func meanThroughput(cfg core.Config, warm, steps int) (float64, float64, error) {
	sys, err := core.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	if cfg.Kind == core.TLT {
		sys.WarmUpDrafter(40, 3)
	}
	for i := 0; i < warm; i++ {
		if _, err := sys.Step(); err != nil {
			return 0, 0, err
		}
	}
	var tput, accept float64
	for i := 0; i < steps; i++ {
		st, err := sys.Step()
		if err != nil {
			return 0, 0, err
		}
		tput += st.Throughput
		accept += st.AcceptLen
	}
	return tput / float64(steps), accept / float64(steps), nil
}

func e2eConfig(m e2eModel, kind core.Kind, spec gpu.Spec, nodes int, seed int64, quick bool) core.Config {
	cfg := core.DefaultConfig()
	cfg.Kind = kind
	cfg.Arch = m.arch
	cfg.Cluster = core.DefaultCluster(spec, nodes, m.tp)
	cfg.Seed = seed
	cfg.ModelBuckets = 1 << 12
	cfg.RL.PromptsPerStep = 16
	cfg.RL.GroupSize = 8
	cfg.MaxNew = 384
	if quick {
		cfg.RL.PromptsPerStep = 8
		cfg.RL.GroupSize = 4
		cfg.MaxNew = 192
	}
	return cfg
}

func runFig11(opts Options) (*Result, error) {
	gpus := []gpu.Spec{gpu.H100, gpu.A100}
	systems := []core.Kind{core.OpenR1, core.VeRL, core.TLTBase, core.TLT}
	steps, warm := 3, 1
	if opts.Quick {
		gpus = gpus[:1]
		steps = 2
	}
	res := &Result{}
	for _, spec := range gpus {
		tbl := &metrics.Table{Header: []string{"Model (" + spec.Name + ")", "Open-R1", "VeRL", "TLT-Base", "TLT"}}
		speedups := map[core.Kind][]float64{}
		for _, m := range e2eModels(opts.Quick) {
			raw := map[core.Kind]float64{}
			for _, kind := range systems {
				cfg := e2eConfig(m, kind, spec, 1, seedOr(opts, 111)^m.seed, opts.Quick)
				tput, _, err := meanThroughput(cfg, warm, steps)
				if err != nil {
					return nil, err
				}
				raw[kind] = tput
			}
			base := raw[core.VeRL]
			row := []string{m.name}
			for _, kind := range systems {
				norm := raw[kind] / base
				speedups[kind] = append(speedups[kind], norm)
				row = append(row, metrics.F(norm, 2))
			}
			tbl.AddRow(row...)
		}
		gm := []string{"Geomean"}
		for _, kind := range systems {
			gm = append(gm, metrics.F(metrics.GeoMean(speedups[kind]), 2))
		}
		tbl.AddRow(gm...)
		res.Tables = append(res.Tables, tbl)
	}
	res.Notes = append(res.Notes,
		"throughput normalised to VeRL = 1.00 per model (paper Fig. 11)",
		"expected ordering: TLT > TLT-Base > VeRL >> Open-R1")
	return res, nil
}

func runFig1a(opts Options) (*Result, error) {
	cfg := e2eConfig(e2eModels(true)[0], core.VeRL, gpu.H100, 1, seedOr(opts, 7), opts.Quick)
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	steps := 3
	if opts.Quick {
		steps = 1
	}
	hist := metrics.NewLinearHistogram(0, float64(cfg.MaxNew)+1, 16)
	var rollout, other float64
	var maxLen int
	for i := 0; i < steps; i++ {
		st, err := sys.Step()
		if err != nil {
			return nil, err
		}
		rollout += secsOf(st.Rollout)
		other += secsOf(st.Inference + st.Training + st.Other)
		_ = st
		if st.Summary.MaxLen > maxLen {
			maxLen = st.Summary.MaxLen
		}
		for _, l := range st.RespLens {
			hist.Observe(float64(l))
		}
	}
	_ = sys
	var lenSeries metrics.Series
	lenSeries.Name = "response-length-pdf"
	for i, p := range hist.PDF() {
		lenSeries.Add(hist.BinCenter(i), p)
	}
	tbl := &metrics.Table{Header: []string{"stage", "normalized time"}}
	total := rollout + other
	tbl.AddRow("rollout", metrics.F(rollout/total, 3))
	tbl.AddRow("other (inference+training+transitions)", metrics.F(other/total, 3))
	return &Result{
		Series: []metrics.Series{lenSeries},
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			fmt.Sprintf("max observed response length %d of cap %d", maxLen, cfg.MaxNew),
			"rollout dominates the RL step (~85% in the paper's Fig. 1(a))",
		},
	}, nil
}

func runFig12(opts Options) (*Result, error) {
	steps := 60
	if opts.Quick {
		steps = 15
	}
	run := func(kind core.Kind) (metrics.Series, error) {
		cfg := e2eConfig(e2eModels(true)[0], kind, gpu.H100, 1, seedOr(opts, 12), opts.Quick)
		cfg.DisableLengthPrior = true
		cfg.RL.PromptsPerStep = 12
		cfg.RL.GroupSize = 6
		cfg.MaxNew = 96
		sys, err := core.New(cfg)
		if err != nil {
			return metrics.Series{}, err
		}
		if kind == core.TLT {
			sys.WarmUpDrafter(30, 2)
		}
		var s metrics.Series
		s.Name = kind.String()
		ema := 0.0
		for i := 0; i < steps; i++ {
			st, err := sys.Step()
			if err != nil {
				return s, err
			}
			if i == 0 {
				ema = st.Summary.MeanReward
			} else {
				ema = 0.7*ema + 0.3*st.Summary.MeanReward
			}
			s.Add(float64(i+1), ema)
		}
		return s, nil
	}
	verl, err := run(core.VeRL)
	if err != nil {
		return nil, err
	}
	tlt, err := run(core.TLT)
	if err != nil {
		return nil, err
	}
	// Overlap metric: mean absolute gap relative to the mean reward level.
	var gap, level float64
	for i := range verl.Y {
		gap += math.Abs(verl.Y[i] - tlt.Y[i])
		level += (verl.Y[i] + tlt.Y[i]) / 2
	}
	rel := gap / math.Max(level, 1e-9)
	return &Result{
		Series: []metrics.Series{verl, tlt},
		Notes: []string{
			fmt.Sprintf("mean relative reward gap %.3f — curves statistically overlap (paper Fig. 12)", rel),
			"losslessness is additionally verified exactly: greedy SD == greedy decode (specdec tests)",
		},
	}, nil
}

func runTab3(opts Options) (*Result, error) {
	nodeCounts := []int{1, 2, 4, 8}
	if opts.Quick {
		nodeCounts = []int{1, 2}
	}
	models := []e2eModel{
		{"Qwen2.5-7B", gpu.Qwen7B, 2, 31},
		{"Qwen2.5-32B", gpu.Qwen32B, 4, 32},
	}
	steps := 2
	tbl := &metrics.Table{Header: append([]string{"Model \\ nodes"}, intHeaders(nodeCounts)...)}
	for _, m := range models {
		row := []string{m.name}
		for _, nodes := range nodeCounts {
			// OOM gate evaluated at the paper's 32K generation cap.
			gate := e2eConfig(m, core.VeRL, gpu.H100, nodes, seedOr(opts, 3)^m.seed, opts.Quick)
			gate.RL.PromptsPerStep = 64
			gate.RL.GroupSize = 8
			gate.MaxNew = 32768
			gateSys, err := core.New(gate)
			if err != nil {
				return nil, err
			}
			if err := gateSys.CheckMemory(); err != nil {
				row = append(row, "OOM")
				continue
			}
			// Timing at simulator scale.
			scale := func(kind core.Kind) (float64, error) {
				cfg := e2eConfig(m, kind, gpu.H100, nodes, seedOr(opts, 3)^m.seed, opts.Quick)
				cfg.RL.PromptsPerStep = 8 * nodes
				t, _, err := meanThroughput(cfg, 0, steps)
				return t, err
			}
			tlt, err := scale(core.TLT)
			if err != nil {
				return nil, err
			}
			verl, err := scale(core.VeRL)
			if err != nil {
				return nil, err
			}
			row = append(row, metrics.F(tlt/verl, 2)+"x")
		}
		tbl.AddRow(row...)
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"cells are TLT speedup over VeRL at each scale; OOM determined at the paper's 32K-token cap",
			"speedup grows with model and cluster size (paper Table 3)",
		},
	}, nil
}

func secsOf(d interface{ Seconds() float64 }) float64 { return d.Seconds() }
