package experiments

import (
	"fmt"

	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/specdec"
)

func init() {
	register("fig5c", "Roofline: achieved TFLOPS vs batch size, vanilla vs speculative decoding (H100)", runFig5c)
	register("fig13", "Accept length and speedup vs draft depth and tokens-to-verify (Qwen-32B-like, BS=1, topK=8, temp=0)", runFig13)
	register("tab1", "Effect of topK (Qwen-32B-like, depth=12, verify=64)", runTab1)
	register("tab2", "Rollout throughput and SD speedup across GPU types (Qwen-7B-like, BS=1, TP=1)", runTab2)
	register("tab4", "SD speedup vs batch size and tokens-to-verify (Qwen-32B-like, depth=10, topK=8)", runTab4)
}

func runFig5c(opts Options) (*Result, error) {
	dev := gpu.NewDevice(gpu.H100, 1)
	arch := gpu.Qwen7B
	res := &Result{}
	var vanilla, spec metrics.Series
	vanilla.Name = "vanilla-decode"
	spec.Name = "speculative-decode"
	const verifyTokens = 32
	for _, bs := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 320} {
		vanilla.Add(float64(bs), dev.AchievedTFLOPS(arch, gpu.ForwardOpts{
			Tokens: bs, KVTokens: bs * 1024, CUDAGraph: true,
		}))
		spec.Add(float64(bs), dev.AchievedTFLOPS(arch, gpu.ForwardOpts{
			Tokens: bs * verifyTokens, KVTokens: bs * 1024, CUDAGraph: true,
		}))
	}
	res.Series = append(res.Series, vanilla, spec)
	res.Notes = append(res.Notes,
		"speculative decoding reaches peak compute throughput at a far smaller batch size (paper Fig. 5(c))")
	return res, nil
}

// sdRoundCost models one speculation round's device time at a given batch:
// sequential drafter passes over the tree frontier plus one verification
// pass, the same formula the rollout engine charges.
func sdRoundCost(dev *gpu.Device, target, draftArch gpu.Arch, batch, kv int, frontier []int, verified int) float64 {
	var s float64
	for _, w := range frontier {
		if w == 0 {
			continue
		}
		s += dev.Forward(draftArch, gpu.ForwardOpts{Tokens: w, KVTokens: kv, CUDAGraph: true}).Total().Seconds()
	}
	s += dev.Forward(target, gpu.ForwardOpts{Tokens: verified, KVTokens: kv, CUDAGraph: true}).Total().Seconds()
	s += 0.00145 // host overhead per SD round
	return s
}

func vanillaStepCost(dev *gpu.Device, target gpu.Arch, batch, kv int) float64 {
	return dev.Forward(target, gpu.ForwardOpts{Tokens: batch, KVTokens: kv, CUDAGraph: true}).Total().Seconds() + 0.00025
}

// measureStrategy runs speculation rounds at batch size 1 over sample
// prompts and returns (meanAcceptLen incl. bonus, speedup vs vanilla).
func measureStrategy(b *bench, dev *gpu.Device, p specdec.Params, temp float64, rounds int) (float64, float64) {
	eng := &specdec.Engine{Target: b.target, Temp: temp, EosID: -1}
	rng := newRand(b.seed ^ int64(p.DraftDepth)<<8 ^ int64(p.TokensToVerify))
	var acceptSum, tokSum int
	var sdTime, vanTime float64
	const kv = 1024
	draftArch := b.eagle.Arch()
	done := 0
	for done < rounds {
		for _, task := range b.gen.SampleSeeded(4, b.seed^0x4d5) {
			seq := append([]int(nil), task.Prompt...)
			for r := 0; r < 8 && done < rounds; r++ {
				res := eng.Step(b.eagle, seq, len(task.Prompt), p, rng)
				seq = append(seq, res.Tokens...)
				acceptSum += res.AcceptLen
				tokSum += len(res.Tokens)
				sdTime += sdRoundCost(dev, b.target.Arch(), draftArch, 1, kv, res.FrontierPerDepth, res.VerifiedTokens)
				vanTime += float64(len(res.Tokens)) * vanillaStepCost(dev, b.target.Arch(), 1, kv)
				done++
			}
			if done >= rounds {
				break
			}
		}
	}
	accept := float64(acceptSum)/float64(rounds) + 1
	speedup := vanTime / sdTime
	return accept, speedup
}

func runFig13(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen32B, seedOr(opts, 13), opts.Quick)
	dev := gpu.NewDevice(gpu.H100, 4)
	depths := []int{2, 4, 6, 8, 10, 12}
	verifies := []int{16, 32, 48, 64}
	rounds := 60
	if opts.Quick {
		depths = []int{2, 6, 10}
		verifies = []int{16, 48}
		rounds = 20
	}
	acceptTbl := &metrics.Table{Header: append([]string{"draft depth \\ verify"}, intHeaders(verifies)...)}
	speedTbl := &metrics.Table{Header: append([]string{"draft depth \\ verify"}, intHeaders(verifies)...)}
	// All (depth, verify) arms are independent (per-arm seeds); run them
	// across the worker pool and assemble rows afterwards in order.
	type cell struct{ accept, speedup float64 }
	grid := make([]cell, len(depths)*len(verifies))
	forEach(len(grid), func(i int) {
		d, v := depths[i/len(verifies)], verifies[i%len(verifies)]
		p := specdec.Params{DraftDepth: d, TopK: 8, TokensToVerify: v}
		accept, speedup := measureStrategy(b, dev, p, 0, rounds)
		grid[i] = cell{accept, speedup}
	})
	for di, d := range depths {
		arow := []string{fmt.Sprintf("%d", d)}
		srow := []string{fmt.Sprintf("%d", d)}
		for vi := range verifies {
			c := grid[di*len(verifies)+vi]
			arow = append(arow, metrics.F(c.accept, 2))
			srow = append(srow, metrics.F(c.speedup, 2)+"x")
		}
		acceptTbl.AddRow(arow...)
		speedTbl.AddRow(srow...)
	}
	return &Result{
		Tables: []*metrics.Table{acceptTbl, speedTbl},
		Notes: []string{
			"(a) average accept length; (b) speedup over non-speculative decoding",
			"accept length grows with draft depth and saturates; speedup peaks before max depth (paper Fig. 13)",
		},
	}, nil
}

func runTab1(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen32B, seedOr(opts, 1), opts.Quick)
	dev := gpu.NewDevice(gpu.H100, 4)
	topKs := []int{4, 6, 8, 10, 12, 16}
	rounds := 60
	if opts.Quick {
		topKs = []int{4, 8, 16}
		rounds = 20
	}
	tbl := &metrics.Table{Header: []string{"TopK", "Accept Length", "Speedup"}}
	type cell struct{ accept, speedup float64 }
	cells := make([]cell, len(topKs))
	forEach(len(topKs), func(i int) {
		p := specdec.Params{DraftDepth: 12, TopK: topKs[i], TokensToVerify: 64}
		accept, speedup := measureStrategy(b, dev, p, 0, rounds)
		cells[i] = cell{accept, speedup}
	})
	for i, k := range topKs {
		tbl.AddRow(fmt.Sprintf("%d", k), metrics.F(cells[i].accept, 2), metrics.F(cells[i].speedup, 2)+"x")
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes:  []string{"efficiency is relatively insensitive to topK (paper Table 1)"},
	}, nil
}

func runTab2(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen7B, seedOr(opts, 2), opts.Quick)
	iters := 400
	if opts.Quick {
		iters = 120
	}
	tbl := &metrics.Table{Header: []string{"GPU Type", "w/ SD (tok/s)", "w/o SD (tok/s)", "Speedup"}}
	specs := gpu.Catalogue()
	type cell struct{ sd, van float64 }
	cells := make([]cell, len(specs))
	forEach(len(specs), func(i int) {
		dev := gpu.NewDevice(specs[i], 1)
		sd, _ := b.steadyState(dev, nil, 1, iters, 0, nil, 0.9)
		van, _ := b.steadyState(dev, nil, 1, iters/2, -1, nil, 0.9)
		cells[i] = cell{sd, van}
	})
	for i, spec := range specs {
		c := cells[i]
		tbl.AddRow(spec.Name, metrics.F(c.sd, 1), metrics.F(c.van, 1), metrics.F(c.sd/c.van, 2)+"x")
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes:  []string{"SD helps everywhere; fixed host overheads amortise better on slower GPUs, so consumer cards see larger relative gains (paper Table 2)"},
	}, nil
}

func runTab4(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen32B, seedOr(opts, 4), opts.Quick)
	dev := gpu.NewDevice(gpu.H100, 4)
	batches := []int{1, 2, 4, 8, 16, 32}
	verifies := []int{16, 32, 48, 64}
	iters := 200
	if opts.Quick {
		batches = []int{1, 4, 16}
		verifies = []int{16, 48}
		iters = 60
	}
	tbl := &metrics.Table{Header: append([]string{"Batch Size \\ verify"}, intHeaders(verifies)...)}
	rows := make([][]string, len(batches))
	forEach(len(batches), func(i int) {
		bs := batches[i]
		row := []string{fmt.Sprintf("%d", bs)}
		van, _ := b.steadyState(dev, nil, bs, iters/2, -1, nil, 0.9)
		for _, v := range verifies {
			p := []specdec.Params{{DraftDepth: 10, TopK: 8, TokensToVerify: v}}
			sd, _ := b.steadyState(dev, nil, bs, iters, 0, p, 0.9)
			row = append(row, metrics.F(sd/van, 2)+"x")
		}
		rows[i] = row
	})
	for _, row := range rows {
		tbl.AddRow(row...)
	}
	return &Result{
		Tables: []*metrics.Table{tbl},
		Notes: []string{
			"speedup decreases with batch size; larger batches prefer fewer verified tokens (paper Table 4)",
		},
	}, nil
}

func intHeaders(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

func seedOr(opts Options, def int64) int64 {
	if opts.Seed != 0 {
		return opts.Seed
	}
	return def
}
