package experiments

import (
	"math/rand"
	"testing"

	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/prefixcache"
	"fastrl/internal/specdec"
)

// PerfEntry is one hot-path measurement in a BENCH_<date>.json snapshot.
type PerfEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// PerfSnapshot micro-benchmarks the speculation hot path with
// testing.Benchmark so cmd/tltbench -json can record the repository's
// perf trajectory (ns/op and allocs/op) in-tree alongside the per-figure
// timings. The batched/sequential pair documents the win of batched tree
// verification; the steady-state entries must stay at 0 allocs/op.
func PerfSnapshot(quick bool) []PerfEntry {
	b := newBench(gpu.Qwen7B, 7, quick)
	prompt := b.gen.SampleSeeded(1, 0x99)[0].Prompt
	p := specdec.Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}

	mk := func(name string, fn func(n int)) PerfEntry {
		r := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			tb.ResetTimer()
			fn(tb.N)
		})
		return PerfEntry{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	var entries []PerfEntry
	{
		eng := &specdec.Engine{Target: b.target, Temp: 0.9, EosID: -1}
		rng := rand.New(rand.NewSource(1))
		entries = append(entries, mk("specdec/round-tree-batched", func(n int) {
			for i := 0; i < n; i++ {
				eng.Step(b.eagle, prompt, len(prompt), p, rng)
			}
		}))
	}
	{
		eng := &specdec.Engine{Target: b.target, Temp: 0.9, EosID: -1}
		rng := rand.New(rand.NewSource(1))
		entries = append(entries, mk("specdec/round-tree-sequential", func(n int) {
			for i := 0; i < n; i++ {
				eng.StepSequential(b.eagle, prompt, len(prompt), p, rng)
			}
		}))
	}
	{
		eng := &specdec.Engine{Target: b.target, Temp: 0.9, EosID: -1}
		rng := rand.New(rand.NewSource(1))
		entries = append(entries, mk("specdec/vanilla-step", func(n int) {
			for i := 0; i < n; i++ {
				eng.VanillaStep(prompt, len(prompt), rng)
			}
		}))
	}
	{
		const batch = 32
		vocab := b.target.Config().Vocab
		sc := model.NewScratch()
		ctxs := make([]model.Context, batch)
		rows := make([][]float32, batch)
		arena := make([]float32, batch*vocab)
		for i := range ctxs {
			ctxs[i] = model.Context{Tokens: prompt, PromptLen: len(prompt)}
			rows[i] = arena[i*vocab : (i+1)*vocab]
		}
		entries = append(entries, mk("model/probs-batch-32", func(n int) {
			for i := 0; i < n; i++ {
				b.target.ProbsBatch(ctxs, nil, 0.9, rows, sc)
			}
		}))
	}
	{
		// Prefix-cache lookup: the routing/prefill hot path, pinned at 0
		// allocs/op like the other steady-state entries.
		cache := prefixcache.New(prefixcache.Config{})
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 32; i++ {
			seq := append(append([]int(nil), prompt...), rng.Intn(64), rng.Intn(64))
			cache.Insert(seq, len(prompt), nil)
		}
		entries = append(entries, mk("prefixcache/lookup", func(n int) {
			for i := 0; i < n; i++ {
				node, _ := cache.Lookup(prompt)
				node.Release()
			}
		}))
	}
	return entries
}
