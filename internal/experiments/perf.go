package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"fastrl/internal/cachefabric"
	"fastrl/internal/cluster"
	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/model"
	"fastrl/internal/prefixcache"
	"fastrl/internal/sched"
	"fastrl/internal/serving"
	"fastrl/internal/specdec"
	"fastrl/internal/workload"
)

// PerfEntry is one hot-path measurement in a BENCH_<date>.json snapshot.
type PerfEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// PerfSnapshot micro-benchmarks the speculation hot path with
// testing.Benchmark so cmd/tltbench -json can record the repository's
// perf trajectory (ns/op and allocs/op) in-tree alongside the per-figure
// timings. The batched/sequential pair documents the win of batched tree
// verification; the steady-state entries must stay at 0 allocs/op.
func PerfSnapshot(quick bool) []PerfEntry {
	b := newBench(gpu.Qwen7B, 7, quick)
	prompt := b.gen.SampleSeeded(1, 0x99)[0].Prompt
	p := specdec.Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}

	mk := func(name string, fn func(n int)) PerfEntry {
		r := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			tb.ResetTimer()
			fn(tb.N)
		})
		return PerfEntry{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	var entries []PerfEntry
	{
		eng := &specdec.Engine{Target: b.target, Temp: 0.9, EosID: -1}
		rng := rand.New(rand.NewSource(1))
		entries = append(entries, mk("specdec/round-tree-batched", func(n int) {
			for i := 0; i < n; i++ {
				eng.Step(b.eagle, prompt, len(prompt), p, rng)
			}
		}))
	}
	{
		eng := &specdec.Engine{Target: b.target, Temp: 0.9, EosID: -1}
		rng := rand.New(rand.NewSource(1))
		entries = append(entries, mk("specdec/round-tree-sequential", func(n int) {
			for i := 0; i < n; i++ {
				eng.StepSequential(b.eagle, prompt, len(prompt), p, rng)
			}
		}))
	}
	{
		eng := &specdec.Engine{Target: b.target, Temp: 0.9, EosID: -1}
		rng := rand.New(rand.NewSource(1))
		entries = append(entries, mk("specdec/vanilla-step", func(n int) {
			for i := 0; i < n; i++ {
				eng.VanillaStep(prompt, len(prompt), rng)
			}
		}))
	}
	{
		const batch = 32
		vocab := b.target.Config().Vocab
		sc := model.NewScratch()
		ctxs := make([]model.Context, batch)
		rows := make([][]float32, batch)
		arena := make([]float32, batch*vocab)
		for i := range ctxs {
			ctxs[i] = model.Context{Tokens: prompt, PromptLen: len(prompt)}
			rows[i] = arena[i*vocab : (i+1)*vocab]
		}
		entries = append(entries, mk("model/probs-batch-32", func(n int) {
			for i := 0; i < n; i++ {
				b.target.ProbsBatch(ctxs, nil, 0.9, rows, sc)
			}
		}))
	}
	{
		// Multi-sequence speculation round: 8 sequences drafted and
		// verified through one grouped batched target pass — the
		// continuous-batching analogue of specdec/round-tree-batched.
		const nSeq = 8
		eng := &specdec.Engine{Target: b.target, Temp: 0.9}
		rng := rand.New(rand.NewSource(1))
		seqs := make([]specdec.Seq, nSeq)
		rngs := make([]*rand.Rand, nSeq)
		out := make([]specdec.Result, nSeq)
		for i := range seqs {
			seqs[i] = specdec.Seq{Tokens: prompt, PromptLen: len(prompt), EosID: -1}
			rngs[i] = rng
		}
		entries = append(entries, mk("specdec/step-batch-8", func(n int) {
			for i := 0; i < n; i++ {
				eng.StepBatch(b.eagle, seqs, p, rngs, out)
			}
		}))
	}
	// Scheduler iteration at three co-batching widths: inflight requests
	// advanced one SD round by the iteration-level scheduler (admission
	// bookkeeping, bias staging, batched round, cost model) — the serving
	// replica's steady-state hot path. The width sweep pins the bitmap
	// slot table's scaling claim: per-request step cost must stay flat
	// from batch-step-8 to batch-step-64 (the wide entries exercise
	// multi-word occupancy bitmaps).
	for _, nReq := range []int{8, 16, 64} {
		cfg := sched.DefaultConfig(gpu.NewDevice(gpu.H100, 1))
		cfg.SDThreshold = 0
		cfg.Strategies = []specdec.Params{p}
		cfg.MAB.Thresholds = []int{1}
		batch, err := sched.New(cfg, b.target, b.eagle)
		if err != nil {
			panic(err)
		}
		batch.RecordProfile = false
		batch.Timeline = nil
		rng := rand.New(rand.NewSource(2))
		reqs := make([]*sched.Request, nReq)
		for i := range reqs {
			reqs[i] = sched.NewRequest(i, prompt, 1<<20,
				workload.LengthPrior{TargetLen: 1 << 20, Sharpness: 25}, -1, -1)
			batch.Admit(reqs[i])
		}
		batch.Step(rng) // prefill + first round outside the timer
		// Rewind every sequence to its post-warm-up length before each op:
		// without this the workload drifts (tokens and KV grow every
		// iteration) and ns_per_op would depend on how many iterations
		// testing.Benchmark chose to run.
		warmLen := make([]int, len(reqs))
		for i, r := range reqs {
			warmLen[i] = len(r.Tokens)
		}
		rewind := func() {
			for j, r := range reqs {
				r.Tokens = r.Tokens[:warmLen[j]]
				r.AcceptLens = r.AcceptLens[:0]
			}
		}
		// Scratch high-water marks ratchet up over the first rounds as
		// draft-tree shapes vary; warm past the ratchet so allocs/op
		// records true steady state.
		for i := 0; i < 50; i++ {
			rewind()
			batch.Step(rng)
		}
		entries = append(entries, mk(fmt.Sprintf("sched/batch-step-%d", nReq), func(n int) {
			for i := 0; i < n; i++ {
				rewind()
				batch.Step(rng)
			}
		}))
	}
	{
		// Streamed serving round trip: one request through the streaming
		// request path (enqueue, continuous-batching replica, per-step
		// event publication, drain to the terminal Usage event). Setup is
		// per-request so allocs/op is small but nonzero; the per-event
		// emission inside it is pinned at 0 allocs separately
		// (serving's TestStreamEmissionZeroAllocs).
		cfg := sched.DefaultConfig(gpu.NewDevice(gpu.H100, 1))
		cfg.SDThreshold = 0
		cfg.Strategies = []specdec.Params{p}
		cfg.MAB.Thresholds = []int{1}
		srv, err := serving.New(serving.Config{Engine: cfg, Replicas: 1, MaxBatch: 8}, b.target, b.eagle)
		if err != nil {
			panic(err)
		}
		entries = append(entries, mk("serving/stream-serve", func(n int) {
			for i := 0; i < n; i++ {
				st, err := srv.Stream(context.Background(), serving.Request{
					Prompt: prompt, MaxNew: 32, Seed: int64(i),
				})
				if err != nil {
					panic(err)
				}
				for {
					if _, err := st.Recv(); err == io.EOF {
						break
					} else if err != nil {
						panic(err)
					}
				}
			}
		}))
		srv.Stop()
	}
	{
		// Prefix-cache lookup: the routing/prefill hot path, pinned at 0
		// allocs/op like the other steady-state entries.
		cache := prefixcache.New(prefixcache.Config{})
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 32; i++ {
			seq := append(append([]int(nil), prompt...), rng.Intn(64), rng.Intn(64))
			cache.Insert(seq, len(prompt), nil)
		}
		entries = append(entries, mk("prefixcache/lookup", func(n int) {
			for i := 0; i < n; i++ {
				node, _ := cache.Lookup(prompt)
				node.Release()
			}
		}))
	}
	{
		// Fabric directory lookup: the cluster-routing hot path behind
		// fabric-aware shard picks — a hash-probe walk over the prompt,
		// pinned at 0 allocs/op like the other steady-state entries.
		caches := cluster.NewShardCaches(8, prefixcache.Config{})
		rng := rand.New(rand.NewSource(7))
		fprompt := make([]int, 64)
		for i := range fprompt {
			fprompt[i] = rng.Intn(256)
		}
		for s, c := range caches {
			c.Insert(fprompt[:8+2*s], 8+2*s, nil)
			for i := 0; i < 2; i++ {
				n, _ := c.Lookup(fprompt[:8+2*s])
				n.Release()
			}
		}
		fab := cachefabric.New(cachefabric.Config{}, caches)
		fab.Sync()
		entries = append(entries, mk("cluster/fabric-lookup", func(n int) {
			for i := 0; i < n; i++ {
				fab.Lookup(fprompt)
			}
		}))
	}
	{
		// Exemplar-linked histogram record: the observability write every
		// served request (and every streamed chunk) crosses — log-bucket
		// index plus bounded exemplar-set update, pinned at 0 allocs/op
		// like the other steady-state entries.
		h := metrics.NewHistogram()
		rng := rand.New(rand.NewSource(9))
		vals := make([]int64, 1024)
		for i := range vals {
			vals[i] = 1 + int64(rng.Intn(1<<30))
		}
		entries = append(entries, mk("metrics/histogram-record", func(n int) {
			for i := 0; i < n; i++ {
				v := vals[i&1023]
				h.Record(v, v)
			}
		}))
	}
	return entries
}
