package experiments

import (
	"strconv"
	"strings"
	"testing"

	"fastrl/internal/metrics"
)

// TestAllExperimentsRunQuick executes every registered experiment in quick
// mode: each must complete and produce at least one table or series.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Run(id, Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Tables) == 0 && len(r.Series) == 0 {
				t.Fatalf("%s produced no output", id)
			}
			if r.Title == "" {
				t.Fatalf("%s missing title", id)
			}
			if s := r.String(); !strings.Contains(s, id) {
				t.Fatalf("%s render missing id", id)
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestIDsCoverPaperArtefacts(t *testing.T) {
	want := []string{
		"fig1a", "fig2", "fig3a", "fig5c", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17",
		"tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7", "tab8",
		"abl-elastic", "abl-mab", "abl-buffer", "abl-tree", "abl-spot",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

// parseX extracts the numeric multiplier from a "1.23x" cell.
func parseX(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("cell %q not a multiplier: %v", cell, err)
	}
	return v
}

func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not a number: %v", cell, err)
	}
	return v
}

// TestFig11Shape asserts the headline ordering: TLT > TLT-Base > VeRL >
// Open-R1 on the geomean row.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r, err := Run("fig11", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Tables[0] // H100
	gm := tbl.Rows[len(tbl.Rows)-1]
	if gm[0] != "Geomean" {
		t.Fatalf("last row is %v", gm)
	}
	openr1, verl, tltBase, tlt := parseF(t, gm[1]), parseF(t, gm[2]), parseF(t, gm[3]), parseF(t, gm[4])
	if verl != 1.0 {
		t.Fatalf("VeRL should normalise to 1.0, got %v", verl)
	}
	if !(tlt > tltBase && tltBase > verl && verl > openr1) {
		t.Fatalf("ordering violated: openr1=%v verl=%v tltbase=%v tlt=%v", openr1, verl, tltBase, tlt)
	}
	if tlt < 1.15 {
		t.Fatalf("TLT geomean speedup %v too small", tlt)
	}
	t.Logf("geomean speedups: Open-R1 %.2f, VeRL %.2f, TLT-Base %.2f, TLT %.2f", openr1, verl, tltBase, tlt)
}

// TestTab4Shape asserts SD speedup decreases with batch size and that the
// optimal verify count shrinks as batches grow.
func TestTab4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r, err := Run("tab4", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Tables[0]
	first := parseX(t, tbl.Rows[0][1])
	lastRow := tbl.Rows[len(tbl.Rows)-1]
	last := parseX(t, lastRow[1])
	if last >= first {
		t.Fatalf("speedup should fall with batch size: %v -> %v", first, last)
	}
	// At batch 1 SD must win clearly.
	if first < 1.2 {
		t.Fatalf("batch-1 SD speedup %v too small", first)
	}
}

// TestTab5Shape asserts the memory ordering of Table 5.
func TestTab5Shape(t *testing.T) {
	r, err := Run("tab5", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	gb := func(row []string) float64 {
		return parseF(t, strings.TrimSuffix(row[1], " GB"))
	}
	single, naive, bucketed := gb(rows[0]), gb(rows[1]), gb(rows[2])
	if !(single < bucketed && bucketed < naive) {
		t.Fatalf("ordering violated: %v %v %v", single, naive, bucketed)
	}
}

// TestFig16Shape asserts the adaptive drafter dominates the vanilla one at
// deep draft indices.
func TestFig16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r, err := Run("fig16", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	vanilla, adaptive := r.Series[0], r.Series[1]
	// Compare mean accept rates over indices 2-6: the vanilla drafter's
	// root-conditioned features keep index 1 competitive even when stale
	// (as in the paper, where the gap opens at distant indices).
	mean := func(s metrics.Series) float64 {
		var sum float64
		var n int
		for i := range s.Y {
			if s.X[i] >= 2 && s.X[i] <= 6 {
				sum += s.Y[i]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	vm, am := mean(vanilla), mean(adaptive)
	if am <= vm {
		t.Fatalf("adaptive drafter mean accept rate %.1f%% should exceed vanilla %.1f%%", am, vm)
	}
	t.Logf("mean accept rate: vanilla %.1f%%, adaptive %.1f%%", vm, am)
}

// TestFig14Speedup asserts the case-study speedup is material.
func TestFig14Speedup(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r, err := Run("fig14", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "speedup") {
			found = true
		}
	}
	if !found {
		t.Fatal("fig14 missing speedup note")
	}
	// Running counts must be non-increasing over time in both series.
	for _, s := range r.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1] {
				t.Fatalf("series %s: running count rose", s.Name)
			}
		}
	}
}

// TestFig12Overlap asserts the reward curves track each other.
func TestFig12Overlap(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r, err := Run("fig12", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 || len(r.Series[0].Y) != len(r.Series[1].Y) {
		t.Fatalf("expected two aligned series")
	}
}

func TestDiscussionExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"disc-multiturn", "disc-uniform", "disc-earlystop"} {
		if Title(id) == "" {
			t.Errorf("discussion experiment %s not registered", id)
		}
	}
}
