package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/sched"
	"fastrl/internal/slo"
	"fastrl/internal/specdec"
	"fastrl/internal/trace"
	"fastrl/internal/workload"
)

func init() {
	register("batching",
		"Continuous batching vs run-to-completion serving: p50/p95 latency, throughput and device busy-fraction under a bursty arrival trace",
		runBatching)
}

// batchingArm is one admission policy's replay outcome.
type batchingArm struct {
	name     string
	maxBatch int

	served     int
	tokens     int
	p50, p95   time.Duration
	meanLat    time.Duration
	elapsed    time.Duration
	busyFrac   float64
	throughput float64 // response tokens per busy virtual second
	// Streaming SLO metrics: time-to-first-token (arrival to the step
	// boundary that emitted the request's first token) and mean
	// inter-token latency (first token to completion, per subsequent
	// token) — the two latencies a streaming client actually observes.
	ttft50, ttft95 time.Duration
	itl50, itl95   time.Duration
	// Attribution columns: the per-phase decomposition of every Step call
	// (sums must reconcile with total step time — the replay errors out
	// otherwise), the exemplar-linked latency histogram, and the TTFT-SLO
	// burn-rate series sampled at fixed virtual boundaries. All three are
	// pure functions of the seeded replay, so their checksums are pinned by
	// the double-run acceptance test.
	phases sched.PhaseSnapshot
	hist   *metrics.Histogram
	burn   []float64
}

// runBatching replays one bursty arrival trace through the iteration-level
// scheduler under different admission caps, entirely in virtual time (one
// driver goroutine per arm, no wall-clock anywhere) so the figure is
// seed-deterministic. MaxBatch=1 is run-to-completion serving — a request
// occupies the device until it finishes and everything behind it queues —
// and larger caps are continuous batching, where arrivals join the running
// batch at step boundaries.
//
// Every request decodes on its own seeded stream against a frozen drafter
// and a single fixed SD strategy, so all arms emit the identical token
// streams: the arms differ only in scheduling, making the latency and
// utilisation deltas pure continuous-batching effect.
func runBatching(opts Options) (*Result, error) {
	b := newBench(gpu.Qwen7B, seedOr(opts, 33), opts.Quick)

	rate := 40.0 // requests/sec baseline
	duration := 6 * time.Second
	maxNew := 48
	if opts.Quick {
		rate = 28
		duration = 4 * time.Second
		maxNew = 32
	}
	arrivals := workload.GenerateArrivals(workload.ArrivalConfig{
		Duration:   duration,
		RatePerSec: rate,
		Tasks:      len(b.gen.Pool()),
		Lengths:    workload.DefaultLengthSampler(maxNew),
		Seed:       seedOr(opts, 33) ^ 0x6261,
		// Calm first third, 3x burst through the middle third: the burst
		// is where run-to-completion head-of-line blocking shows up.
		Shape: workload.BurstShape(1.0/3, 2.0/3, 3),
	})

	arms := []batchingArm{
		{name: "run-to-completion", maxBatch: 1},
		{name: "continuous-4", maxBatch: 4},
		{name: "continuous-16", maxBatch: 16},
		// The wide arm rides the bitmap scheduler core: a 64-deep
		// co-batching window is only worth offering because per-request
		// step cost stays flat past one occupancy word (sched/batch-step-64
		// vs batch-step-8 in BENCH).
		{name: "continuous-64", maxBatch: 64},
	}
	// With tracing requested, the continuous-16 arm records every request's
	// lifecycle. The arm is a single driver goroutine in virtual time, so
	// the exported trace is seed-deterministic (byte-identical across
	// same-seed runs).
	var tr *trace.Tracer
	if opts.Trace {
		tr = trace.New(trace.Config{SpanSlots: 4 * maxNew, MaxRequests: len(arrivals) + 1})
	}
	errs := make([]error, len(arms))
	forEach(len(arms), func(i int) {
		var armTr *trace.Tracer
		if arms[i].name == "continuous-16" {
			armTr = tr
		}
		errs[i] = replayBatchingArm(b, arrivals, maxNew, &arms[i], armTr)
	})

	res := &Result{}
	tbl := &metrics.Table{Header: []string{
		"admission", "served", "p50 ms", "p95 ms", "ttft50 ms", "ttft95 ms", "itl50 ms", "itl95 ms", "mean ms", "makespan ms", "busy", "tok/s",
	}}
	// Phase breakdown: where each arm's step time went. Time phases are
	// virtual milliseconds; admit/cancel/retire are boundary events (free in
	// virtual time), so "sum" over the time phases must equal "step total"
	// exactly — replayBatchingArm has already errored out if it doesn't.
	phTbl := &metrics.Table{Header: []string{
		"admission", "steps", "prefill ms", "draft ms", "verify ms", "tool ms", "admitted", "cancelled", "retired", "sum ms", "step total ms",
	}}
	for i := range arms {
		if errs[i] != nil {
			return nil, errs[i]
		}
		a := &arms[i]
		tbl.AddRow(a.name,
			fmt.Sprintf("%d", a.served),
			metrics.F(float64(a.p50)/float64(time.Millisecond), 2),
			metrics.F(float64(a.p95)/float64(time.Millisecond), 2),
			metrics.F(float64(a.ttft50)/float64(time.Millisecond), 2),
			metrics.F(float64(a.ttft95)/float64(time.Millisecond), 2),
			metrics.F(float64(a.itl50)/float64(time.Millisecond), 2),
			metrics.F(float64(a.itl95)/float64(time.Millisecond), 2),
			metrics.F(float64(a.meanLat)/float64(time.Millisecond), 2),
			metrics.F(float64(a.elapsed)/float64(time.Millisecond), 1),
			metrics.F(a.busyFrac, 3),
			metrics.F(a.throughput, 0),
		)
		res.Metric(a.name+"/p50_ms", float64(a.p50)/float64(time.Millisecond))
		res.Metric(a.name+"/p95_ms", float64(a.p95)/float64(time.Millisecond))
		res.Metric(a.name+"/ttft_p50_ms", float64(a.ttft50)/float64(time.Millisecond))
		res.Metric(a.name+"/ttft_p95_ms", float64(a.ttft95)/float64(time.Millisecond))
		res.Metric(a.name+"/itl_p50_ms", float64(a.itl50)/float64(time.Millisecond))
		res.Metric(a.name+"/itl_p95_ms", float64(a.itl95)/float64(time.Millisecond))
		res.Metric(a.name+"/mean_ms", float64(a.meanLat)/float64(time.Millisecond))
		res.Metric(a.name+"/makespan_ms", float64(a.elapsed)/float64(time.Millisecond))
		res.Metric(a.name+"/busy_frac", a.busyFrac)
		res.Metric(a.name+"/tokens_per_sec", a.throughput)

		ph := a.phases
		ms := func(p sched.Phase) float64 { return float64(ph.Ns[p]) / float64(time.Millisecond) }
		phTbl.AddRow(a.name,
			fmt.Sprintf("%d", ph.Steps),
			metrics.F(ms(sched.PhasePrefill), 2),
			metrics.F(ms(sched.PhaseDraft), 2),
			metrics.F(ms(sched.PhaseVerify), 2),
			metrics.F(ms(sched.PhaseToolWait), 2),
			fmt.Sprintf("%d", ph.Events[sched.PhaseAdmitDrain]),
			fmt.Sprintf("%d", ph.Events[sched.PhaseCancelSweep]),
			fmt.Sprintf("%d", ph.Events[sched.PhaseRetire]),
			metrics.F(float64(ph.SumNs())/float64(time.Millisecond), 2),
			metrics.F(float64(ph.TotalNs)/float64(time.Millisecond), 2),
		)
		res.Metric(a.name+"/steps", float64(ph.Steps))
		res.Metric(a.name+"/phase_prefill_ms", ms(sched.PhasePrefill))
		res.Metric(a.name+"/phase_draft_ms", ms(sched.PhaseDraft))
		res.Metric(a.name+"/phase_verify_ms", ms(sched.PhaseVerify))

		// Histogram and burn-series checksums, split into two 32-bit words
		// because a float64 metric cannot hold a uint64 exactly. Pinned by
		// the double-run acceptance test: byte-identical histogram state and
		// burn series across same-seed runs.
		hsum := a.hist.Checksum()
		res.Metric(a.name+"/hist_checksum_lo", float64(hsum&0xffffffff))
		res.Metric(a.name+"/hist_checksum_hi", float64(hsum>>32))
		bsum := burnChecksum(a.burn)
		res.Metric(a.name+"/burn_checksum_lo", float64(bsum&0xffffffff))
		res.Metric(a.name+"/burn_checksum_hi", float64(bsum>>32))
		var peak float64
		s := metrics.Series{Name: a.name + " ttft burn"}
		for j, v := range a.burn {
			s.Add(float64(j+1)*0.25, v)
			if v > peak {
				peak = v
			}
		}
		res.Series = append(res.Series, s)
		res.Metric(a.name+"/burn_peak", peak)
	}
	if tr != nil {
		e := tr.Export()
		sum, err := e.Validate()
		if err != nil {
			return nil, fmt.Errorf("batching: continuous-16 trace failed validation: %w", err)
		}
		chrome, err := e.Chrome()
		if err != nil {
			return nil, fmt.Errorf("batching: trace export: %w", err)
		}
		res.TraceChrome = chrome
		res.Metric("traced_requests", float64(sum.Requests))
		res.Metric("traced_spans", float64(sum.Spans))
		res.Notes = append(res.Notes,
			fmt.Sprintf("tracing on: continuous-16 recorded %d requests / %d spans (%d retired); export is seed-deterministic",
				sum.Requests, sum.Spans, sum.Retired))
	}
	res.Tables = append(res.Tables, tbl, phTbl)
	res.Notes = append(res.Notes,
		fmt.Sprintf("trace: %d arrivals over %v (3x burst through the middle third), one device per arm",
			len(arrivals), duration),
		"latency is virtual: arrival to retirement, queueing included; the replay is wall-clock-free and seed-deterministic",
		"identical token streams across arms (per-request RNG, frozen drafter, fixed SD strategy): the deltas are pure scheduling",
		"run-to-completion (max batch 1) suffers head-of-line blocking under the burst; continuous batching admits arrivals at step boundaries and amortises each verification pass across the batch",
		"ttft/itl are the streaming-client SLOs: arrival to first token, and mean per-token gap after it — run-to-completion's ttft collapses into its queueing delay while continuous batching trades a little itl for admission at the next step boundary",
		"phase breakdown decomposes every Step's virtual time exactly (prefill/draft/verify/tool-wait sum == step total; admit/cancel/retire are free boundary events) — the replay fails hard on any unattributed nanosecond",
		"burn series: fast-window burn rate of a ttft-p95<300ms objective sampled every 250ms virtual; checksums pin the series and the exemplar-linked latency histograms byte-identical across same-seed runs",
	)
	return res, nil
}

// burnChecksum folds a burn-rate series into an FNV-1a hash over the exact
// float64 bit patterns — the cheap "byte-identical across runs" probe.
func burnChecksum(series []float64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, v := range series {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime
		}
	}
	return h
}

// replayBatchingArm drives one admission cap over the trace in virtual
// time. The arm owns a fresh scheduler batch; the single fixed strategy
// keeps token streams identical across arms (strategy choice would
// otherwise depend on batch size).
func replayBatchingArm(b *bench, arrivals []workload.Arrival, maxNew int, arm *batchingArm, tr *trace.Tracer) error {
	ecfg := sched.DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	ecfg.SDThreshold = 0
	ecfg.Strategies = []specdec.Params{{DraftDepth: 6, TopK: 6, TokensToVerify: 24}}
	ecfg.MAB.Thresholds = []int{1}
	// Phase attribution: every clock advance inside Step lands in exactly
	// one phase, so the breakdown table decomposes step time exactly (the
	// Reconciles check below enforces it).
	ecfg.Phases = sched.NewPhaseProfile()
	batch, err := sched.New(ecfg, b.target, b.eagle)
	if err != nil {
		return err
	}
	batch.RecordProfile = false
	rng := newRand(0x62617463) // shared fallback; every request has its own

	// TTFT SLO over the replay: burn rate is sampled at fixed virtual
	// boundaries, so the series contrasts how fast each admission policy
	// torches a streaming error budget through the burst. No flight
	// recorder: the replay wants the series, not markers.
	eng, err := slo.NewEngine([]slo.Spec{{
		Name: "ttft-p95", Kind: slo.TTFT, Threshold: 300 * time.Millisecond,
		Objective: 0.95, FastWindow: 500 * time.Millisecond,
	}}, 0, nil)
	if err != nil {
		return err
	}
	const burnSample = 250 * time.Millisecond

	arm.hist = metrics.NewHistogram()
	pool := b.gen.Pool()
	lats := make([]float64, 0, len(arrivals))
	ttfts := make([]float64, 0, len(arrivals))
	itls := make([]float64, 0, len(arrivals))
	next := 0
	nextBurnAt := burnSample
	for {
		now := batch.Clock.Now()
		for next < len(arrivals) && arrivals[next].At <= now && batch.ActiveCount() < arm.maxBatch {
			a := arrivals[next]
			r := sched.NewRequest(next, pool[a.Task].Prompt, maxNew,
				workload.LengthPrior{TargetLen: a.TargetLen, Sharpness: 25},
				b.tk.Answer(), b.tk.Eos())
			r.RNG = rand.New(rand.NewSource(a.Seed))
			r.Tag = a.At
			if tr != nil {
				r.Trace = tr.Start(int64(next), 0, nil)
			}
			batch.Admit(r)
			next++
		}
		if batch.ActiveCount() == 0 {
			if next >= len(arrivals) {
				break
			}
			// Device idle: jump to the next arrival.
			batch.Clock.AdvanceTo(arrivals[next].At)
			continue
		}
		batch.Step(rng)
		stepNow := batch.Clock.Now()
		for _, r := range batch.Retire() {
			at := r.Tag.(time.Duration)
			lat := r.FinishedAt() - at
			lats = append(lats, lat.Seconds())
			// Exemplar-linked: the tail bucket remembers which request IDs
			// landed in it, so a p99.9 outlier is directly queryable in the
			// exported trace.
			arm.hist.RecordDuration(lat, int64(r.ID))
			if ft, ok := r.FirstTokenAt(); ok {
				ttfts = append(ttfts, (ft - at).Seconds())
				eng.ObserveLatency(slo.TTFT, ft-at, stepNow)
				// Same ITL definition as serving.Response.ITL: the span
				// after the first chunk, per token delivered after it.
				if gen, fc := r.Generated(), r.FirstChunkTokens(); gen > fc {
					itls = append(itls, (r.FinishedAt()-ft).Seconds()/float64(gen-fc))
				}
			}
			arm.tokens += r.Generated()
			arm.served++
		}
		for nextBurnAt <= stepNow {
			arm.burn = append(arm.burn, eng.BurnRate())
			nextBurnAt += burnSample
		}
	}
	arm.burn = append(arm.burn, eng.BurnRate()) // closing sample at drain

	arm.phases = ecfg.Phases.Snapshot()
	if !arm.phases.Reconciles() {
		return fmt.Errorf("batching arm %s: phase decomposition does not reconcile: per-phase sum %v != step total %v over %d steps",
			arm.name, time.Duration(arm.phases.SumNs()), time.Duration(arm.phases.TotalNs), arm.phases.Steps)
	}
	arm.elapsed = batch.Clock.Now()
	var busy time.Duration
	for _, span := range batch.Timeline.Spans {
		busy += span.Duration()
	}
	if arm.elapsed > 0 {
		arm.busyFrac = busy.Seconds() / arm.elapsed.Seconds()
	}
	if busy > 0 {
		arm.throughput = float64(arm.tokens) / busy.Seconds()
	}
	arm.p50 = time.Duration(metrics.Percentile(lats, 50) * float64(time.Second))
	arm.p95 = time.Duration(metrics.Percentile(lats, 95) * float64(time.Second))
	arm.ttft50 = time.Duration(metrics.Percentile(ttfts, 50) * float64(time.Second))
	arm.ttft95 = time.Duration(metrics.Percentile(ttfts, 95) * float64(time.Second))
	arm.itl50 = time.Duration(metrics.Percentile(itls, 50) * float64(time.Second))
	arm.itl95 = time.Duration(metrics.Percentile(itls, 95) * float64(time.Second))
	var sum float64
	for _, l := range lats {
		sum += l
	}
	if len(lats) > 0 {
		arm.meanLat = time.Duration(sum / float64(len(lats)) * float64(time.Second))
	}
	return nil
}
