package workload

import (
	"reflect"
	"testing"
	"time"
)

func arrivalConfig(seed int64) ArrivalConfig {
	return ArrivalConfig{
		Duration:   10 * time.Second,
		RatePerSec: 20,
		Tasks:      16,
		Lengths:    DefaultLengthSampler(256),
		Seed:       seed,
	}
}

func TestGenerateArrivalsDeterministic(t *testing.T) {
	cfg := arrivalConfig(42)
	cfg.Shape = BurstShape(0.4, 0.6, 3)
	a := GenerateArrivals(cfg)
	b := GenerateArrivals(cfg)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	cfg.Seed = 43
	c := GenerateArrivals(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateArrivalsSortedAndBounded(t *testing.T) {
	cfg := arrivalConfig(7)
	arrivals := GenerateArrivals(cfg)
	for i, a := range arrivals {
		if a.At < 0 || a.At >= cfg.Duration {
			t.Fatalf("arrival %d at %v outside [0, %v)", i, a.At, cfg.Duration)
		}
		if i > 0 && a.At < arrivals[i-1].At {
			t.Fatalf("arrivals out of order at %d", i)
		}
		if a.Task < 0 || a.Task >= cfg.Tasks {
			t.Fatalf("arrival %d task %d outside pool", i, a.Task)
		}
		if a.TargetLen < 1 {
			t.Fatalf("arrival %d has no length draw", i)
		}
	}
}

func TestBurstShapeRaisesBurstWindowRate(t *testing.T) {
	cfg := arrivalConfig(11)
	cfg.Duration = 60 * time.Second
	cfg.Shape = BurstShape(0.25, 0.5, 4)
	arrivals := GenerateArrivals(cfg)
	burstStart := time.Duration(0.25 * float64(cfg.Duration))
	burstEnd := time.Duration(0.5 * float64(cfg.Duration))
	var inBurst, before int
	for _, a := range arrivals {
		switch {
		case a.At >= burstStart && a.At < burstEnd:
			inBurst++
		case a.At < burstStart:
			before++
		}
	}
	// Both windows span a quarter of the trace; the burst runs at 4x.
	if inBurst <= 2*before {
		t.Fatalf("burst window not denser: %d in burst vs %d before", inBurst, before)
	}
}

func TestScaleArrivalRate(t *testing.T) {
	base := GenerateArrivals(arrivalConfig(3))
	scaled := ScaleArrivalRate(base, 2)
	if len(scaled) != len(base) {
		t.Fatalf("scaling changed arrival count: %d vs %d", len(scaled), len(base))
	}
	for i := range base {
		if scaled[i].At != base[i].At/2 {
			t.Fatalf("arrival %d time not compressed: %v vs %v", i, scaled[i].At, base[i].At)
		}
		if scaled[i].Task != base[i].Task || scaled[i].TargetLen != base[i].TargetLen || scaled[i].Seed != base[i].Seed {
			t.Fatalf("arrival %d attributes changed by scaling", i)
		}
	}
	// Scaling must not mutate the input trace.
	again := GenerateArrivals(arrivalConfig(3))
	if !reflect.DeepEqual(base, again) {
		t.Fatal("ScaleArrivalRate mutated its input")
	}
	if ScaleArrivalRate(base, 0) != nil {
		t.Fatal("non-positive factor should yield nil")
	}
}

func TestGenerateArrivalsDegenerateConfigs(t *testing.T) {
	if GenerateArrivals(ArrivalConfig{}) != nil {
		t.Fatal("zero config should yield nil")
	}
	cfg := arrivalConfig(1)
	cfg.Shape = func(float64) float64 { return 0 }
	if GenerateArrivals(cfg) != nil {
		t.Fatal("all-zero shape should yield nil")
	}
}
