// Package workload generates the synthetic reasoning-RL workload: verifiable
// arithmetic tasks, long-tail response-length priors, and production-style
// training traces (paper Figs. 1(a) and 2).
package workload

import (
	"math"
	"math/rand"

	"fastrl/internal/tokenizer"
)

// Task is one verifiable reasoning problem: a prompt and its ground-truth
// answer digit. Answers are single digits (sums mod 10) so the rule-based
// verifier is exact and the RL signal is dense enough to move the model
// within tens of steps.
type Task struct {
	ID     int
	Prompt []int
	// Answer is the correct final digit.
	Answer int
	// Difficulty in [0,1] scales the length prior: harder problems think
	// longer.
	Difficulty float64
}

// TaskGen generates arithmetic-chain tasks over a fixed pool, mimicking an
// RL dataset sampled with replacement.
type TaskGen struct {
	tk   *tokenizer.Tokenizer
	pool []Task
	rng  *rand.Rand
}

// NewTaskGen builds a pool of poolSize distinct tasks.
func NewTaskGen(tk *tokenizer.Tokenizer, poolSize int, seed int64) *TaskGen {
	rng := rand.New(rand.NewSource(seed))
	g := &TaskGen{tk: tk, rng: rng}
	for i := 0; i < poolSize; i++ {
		g.pool = append(g.pool, g.makeTask(i))
	}
	return g
}

// makeTask constructs "compute a + b + ... =" with 2-4 terms.
func (g *TaskGen) makeTask(id int) Task {
	terms := 2 + g.rng.Intn(3)
	prompt := []int{g.tk.Bos(), g.tk.MustID("compute")}
	sum := 0
	for t := 0; t < terms; t++ {
		d := g.rng.Intn(10)
		sum += d
		prompt = append(prompt, g.tk.Digit(d))
		if t < terms-1 {
			prompt = append(prompt, g.tk.MustID("+"))
		}
	}
	prompt = append(prompt, g.tk.MustID("="))
	return Task{
		ID:         id,
		Prompt:     prompt,
		Answer:     sum % 10,
		Difficulty: float64(terms-2) / 2,
	}
}

// Sample returns n tasks drawn uniformly from the pool, advancing the
// generator's shared stream.
func (g *TaskGen) Sample(n int) []Task {
	out := make([]Task, n)
	for i := range out {
		out[i] = g.pool[g.rng.Intn(len(g.pool))]
	}
	return out
}

// SampleSeeded returns n tasks drawn with a private stream, leaving the
// generator's shared state untouched. Comparative experiments use it so
// every system under test sees the identical workload regardless of how
// much randomness other components consumed.
func (g *TaskGen) SampleSeeded(n int, seed int64) []Task {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Task, n)
	for i := range out {
		out[i] = g.pool[rng.Intn(len(g.pool))]
	}
	return out
}

// Pool returns the full task pool.
func (g *TaskGen) Pool() []Task { return g.pool }

// HeldOut builds a disjoint pool for downstream evaluation (same
// distribution, different seed).
func HeldOut(tk *tokenizer.Tokenizer, poolSize int, seed int64) *TaskGen {
	return NewTaskGen(tk, poolSize, seed^0x5f5f5f5f)
}

// LengthPrior is the per-request response-length prior. The rollout engine
// turns it into a dynamic EOS/answer logit bias: while the generated
// length is below TargetLen the end is suppressed, above it the end is
// encouraged. The distribution over TargetLen is what makes rollout
// lengths long-tailed.
type LengthPrior struct {
	// TargetLen is the preferred response length in tokens.
	TargetLen int
	// Sharpness scales how strongly the prior pulls toward TargetLen.
	Sharpness float64
}

// Bias returns the EOS-token logit bias after generating n tokens. The
// prior only *suppresses* ending before TargetLen ("still thinking");
// it never pushes the model to stop — a positive stop bias would teach
// the policy, off-policy, that it may never end, and lengths explode
// after a few RL updates. The upper end of each response is instead
// enforced by the request's hard cap (HardCap).
func (p LengthPrior) Bias(n int) float32 {
	if p.TargetLen <= 0 || n >= p.TargetLen {
		return 0
	}
	frac := float64(n-p.TargetLen) / float64(p.TargetLen)
	b := p.Sharpness * frac
	if b < -40 {
		b = -40
	}
	return float32(b)
}

// HardCap returns the per-request generation cap implied by the prior:
// TargetLen plus 25% slack, bounded by the global cap (which it returns
// unchanged for a zero prior).
func (p LengthPrior) HardCap(globalMax int) int {
	if p.TargetLen <= 0 {
		return globalMax
	}
	cap := p.TargetLen + p.TargetLen/4 + 4
	if globalMax > 0 && cap > globalMax {
		cap = globalMax
	}
	return cap
}

// LengthSampler draws long-tail target lengths: a lognormal body with a
// Pareto tail, truncated at MaxLen — the shape observed in reasoning RL
// rollouts (paper Fig. 1(a): most responses short, a few at the cap).
type LengthSampler struct {
	// Median is the body's median length.
	Median float64
	// Sigma is the lognormal shape (larger = heavier body spread).
	Sigma float64
	// TailProb is the probability a request comes from the Pareto tail.
	TailProb float64
	// TailAlpha is the Pareto exponent (smaller = heavier tail).
	TailAlpha float64
	// MaxLen truncates all lengths (the configured generation cap).
	MaxLen int
}

// DefaultLengthSampler mirrors the paper's observed distributions scaled
// to the simulator's response lengths.
func DefaultLengthSampler(maxLen int) LengthSampler {
	return LengthSampler{
		Median:    float64(maxLen) / 16,
		Sigma:     0.7,
		TailProb:  0.08,
		TailAlpha: 1.1,
		MaxLen:    maxLen,
	}
}

// Sample draws one target length.
func (s LengthSampler) Sample(rng *rand.Rand) int {
	var l float64
	if rng.Float64() < s.TailProb {
		// Pareto tail anchored at 4x the median.
		x0 := 4 * s.Median
		l = x0 * math.Pow(rng.Float64(), -1/s.TailAlpha)
	} else {
		l = s.Median * math.Exp(s.Sigma*rng.NormFloat64())
	}
	n := int(l)
	if n < 4 {
		n = 4
	}
	if s.MaxLen > 0 && n > s.MaxLen {
		n = s.MaxLen
	}
	return n
}

// SampleMany draws n target lengths.
func (s LengthSampler) SampleMany(n int, rng *rand.Rand) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// PriorFor builds the LengthPrior for a task: harder tasks think longer.
func PriorFor(task Task, s LengthSampler, rng *rand.Rand) LengthPrior {
	l := s.Sample(rng)
	scaled := int(float64(l) * (1 + task.Difficulty))
	if s.MaxLen > 0 && scaled > s.MaxLen {
		scaled = s.MaxLen
	}
	return LengthPrior{TargetLen: scaled, Sharpness: 25}
}
