package workload

import (
	"math"
	"math/rand"

	"fastrl/internal/metrics"
)

// TraceStep is one RL step's response-length summary, matching the fields
// of the ByteDance production trace in paper Fig. 2.
type TraceStep struct {
	Step   int
	Max    int
	P75    int
	Median int
}

// TraceConfig parameterises synthetic production-trace generation.
type TraceConfig struct {
	Steps int
	// MaxLen is the configured generation cap (20,480 in the trace).
	MaxLen int
	// StartMedian / EndMedian shape the slow median growth over training
	// (responses lengthen as the model learns to reason).
	StartMedian float64
	EndMedian   float64
	Sigma       float64
	TailProb    float64
	TailAlpha   float64
	// Responses per step (global batch x group size).
	PerStep int
	Seed    int64
}

// DefaultTraceConfig mirrors the Fig. 2 setting (Qwen2.5-32B, 385 steps,
// 20,480-token cap).
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Steps:       385,
		MaxLen:      20480,
		StartMedian: 900,
		EndMedian:   2600,
		Sigma:       0.75,
		TailProb:    0.06,
		TailAlpha:   1.05,
		PerStep:     512,
		Seed:        7,
	}
}

// GenerateTrace synthesises a production-style trace: per-step response
// length distributions whose median slowly grows while a persistent
// long tail keeps hitting the configured cap — the paper's
// "Under-Utilized Zone" between p75 and max.
func GenerateTrace(cfg TraceConfig) []TraceStep {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]TraceStep, 0, cfg.Steps)
	for step := 0; step < cfg.Steps; step++ {
		frac := float64(step) / math.Max(1, float64(cfg.Steps-1))
		median := cfg.StartMedian + (cfg.EndMedian-cfg.StartMedian)*frac
		s := LengthSampler{
			Median:    median,
			Sigma:     cfg.Sigma,
			TailProb:  cfg.TailProb,
			TailAlpha: cfg.TailAlpha,
			MaxLen:    cfg.MaxLen,
		}
		lens := s.SampleMany(cfg.PerStep, rng)
		out = append(out, TraceStep{
			Step:   step,
			Max:    maxOf(lens),
			P75:    percentileInt(lens, 75),
			Median: percentileInt(lens, 50),
		})
	}
	return out
}

// UnderUtilizedFraction estimates the paper's headline waste metric: the
// mean fraction of the step spent with ≤ 25% of requests still running
// (the gap between p75 completion and the longest response), assuming
// generation time proportional to length.
func UnderUtilizedFraction(trace []TraceStep) float64 {
	if len(trace) == 0 {
		return 0
	}
	var s float64
	for _, t := range trace {
		if t.Max > 0 {
			s += float64(t.Max-t.P75) / float64(t.Max)
		}
	}
	return s / float64(len(trace))
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func percentileInt(xs []int, p float64) int {
	if len(xs) == 0 {
		return 0
	}
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return int(metrics.Percentile(f, p))
}
