package workload

import (
	"math"
	"math/rand"
	"time"

	"fastrl/internal/metrics"
)

// TraceStep is one RL step's response-length summary, matching the fields
// of the ByteDance production trace in paper Fig. 2.
type TraceStep struct {
	Step   int
	Max    int
	P75    int
	Median int
}

// TraceConfig parameterises synthetic production-trace generation.
type TraceConfig struct {
	Steps int
	// MaxLen is the configured generation cap (20,480 in the trace).
	MaxLen int
	// StartMedian / EndMedian shape the slow median growth over training
	// (responses lengthen as the model learns to reason).
	StartMedian float64
	EndMedian   float64
	Sigma       float64
	TailProb    float64
	TailAlpha   float64
	// Responses per step (global batch x group size).
	PerStep int
	Seed    int64
}

// DefaultTraceConfig mirrors the Fig. 2 setting (Qwen2.5-32B, 385 steps,
// 20,480-token cap).
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Steps:       385,
		MaxLen:      20480,
		StartMedian: 900,
		EndMedian:   2600,
		Sigma:       0.75,
		TailProb:    0.06,
		TailAlpha:   1.05,
		PerStep:     512,
		Seed:        7,
	}
}

// GenerateTrace synthesises a production-style trace: per-step response
// length distributions whose median slowly grows while a persistent
// long tail keeps hitting the configured cap — the paper's
// "Under-Utilized Zone" between p75 and max.
func GenerateTrace(cfg TraceConfig) []TraceStep {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]TraceStep, 0, cfg.Steps)
	for step := 0; step < cfg.Steps; step++ {
		frac := float64(step) / math.Max(1, float64(cfg.Steps-1))
		median := cfg.StartMedian + (cfg.EndMedian-cfg.StartMedian)*frac
		s := LengthSampler{
			Median:    median,
			Sigma:     cfg.Sigma,
			TailProb:  cfg.TailProb,
			TailAlpha: cfg.TailAlpha,
			MaxLen:    cfg.MaxLen,
		}
		lens := s.SampleMany(cfg.PerStep, rng)
		out = append(out, TraceStep{
			Step:   step,
			Max:    maxOf(lens),
			P75:    percentileInt(lens, 75),
			Median: percentileInt(lens, 50),
		})
	}
	return out
}

// UnderUtilizedFraction estimates the paper's headline waste metric: the
// mean fraction of the step spent with ≤ 25% of requests still running
// (the gap between p75 completion and the longest response), assuming
// generation time proportional to length.
func UnderUtilizedFraction(trace []TraceStep) float64 {
	if len(trace) == 0 {
		return 0
	}
	var s float64
	for _, t := range trace {
		if t.Max > 0 {
			s += float64(t.Max-t.P75) / float64(t.Max)
		}
	}
	return s / float64(len(trace))
}

// Arrival is one request arrival in a replayable serving trace: when it
// arrives, which task-pool prompt it asks for, its length draw, and the
// seed of its private sampling stream. Everything a cluster replay needs
// to be reproducible lives in the trace, not in the replayer.
type Arrival struct {
	// At is the arrival offset from trace start.
	At time.Duration
	// Task indexes the replayer's task pool.
	Task int
	// TargetLen is the response-length prior draw for this request.
	TargetLen int
	// Seed drives the request's sampling stream.
	Seed int64
}

// ArrivalConfig parameterises GenerateArrivals.
type ArrivalConfig struct {
	// Duration is the trace span.
	Duration time.Duration
	// RatePerSec is the baseline mean arrival rate.
	RatePerSec float64
	// Tasks is the task-pool size arrivals index into.
	Tasks int
	// Lengths draws each arrival's target response length.
	Lengths LengthSampler
	Seed    int64
	// Shape optionally modulates the instantaneous rate: it maps trace
	// progress in [0,1] to a non-negative rate multiplier (nil = constant
	// rate). Burst/lull shaping for the elastic-scaler experiment plugs in
	// here.
	Shape func(frac float64) float64
}

// BurstShape returns a Shape with baseline rate 1x and a mult-x burst over
// the [start, end) fraction of the trace. mult < 1 models a lull instead.
func BurstShape(start, end, mult float64) func(float64) float64 {
	return func(frac float64) float64 {
		if frac >= start && frac < end {
			return mult
		}
		return 1
	}
}

// GenerateArrivals synthesises a deterministic non-homogeneous Poisson
// arrival trace (thinning method): candidates are drawn at the shape's
// peak rate and kept with probability rate(t)/peak. Same config (including
// seed) ⇒ identical trace; arrivals come back sorted by At.
func GenerateArrivals(cfg ArrivalConfig) []Arrival {
	if cfg.Duration <= 0 || cfg.RatePerSec <= 0 {
		return nil
	}
	if cfg.Tasks < 1 {
		cfg.Tasks = 1
	}
	shape := cfg.Shape
	if shape == nil {
		shape = func(float64) float64 { return 1 }
	}
	// The peak multiplier is found on a fixed grid: exact for piecewise
	// shapes like BurstShape, a close bound for smooth ones.
	peak := 0.0
	const grid = 1024
	for i := 0; i <= grid; i++ {
		if m := shape(float64(i) / grid); m > peak {
			peak = m
		}
	}
	if peak <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	span := cfg.Duration.Seconds()
	var out []Arrival
	for t := rng.ExpFloat64() / (cfg.RatePerSec * peak); t < span; t += rng.ExpFloat64() / (cfg.RatePerSec * peak) {
		keep := rng.Float64() < shape(t/span)/peak
		// Every candidate consumes a fixed number of draws, kept or thinned,
		// so a shape tweak shifts which candidates survive without
		// re-rolling the attributes of the ones that do.
		task := rng.Intn(cfg.Tasks)
		length := cfg.Lengths.Sample(rng)
		seed := int64(rng.Uint64())
		if !keep {
			continue
		}
		out = append(out, Arrival{
			At:        time.Duration(t * float64(time.Second)),
			Task:      task,
			TargetLen: length,
			Seed:      seed,
		})
	}
	return out
}

// ScaleArrivalRate returns a copy of the trace with the arrival rate
// multiplied by factor (inter-arrival times compressed by it), preserving
// every arrival's task, length, and seed. factor > 1 turns a trace into a
// heavier offered load, factor < 1 into a lull, without regenerating (or
// reseeding) the workload — so a load sweep replays the identical request
// population at different pressures.
func ScaleArrivalRate(arrivals []Arrival, factor float64) []Arrival {
	if factor <= 0 {
		return nil
	}
	out := make([]Arrival, len(arrivals))
	for i, a := range arrivals {
		out[i] = a
		out[i].At = time.Duration(float64(a.At) / factor)
	}
	return out
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func percentileInt(xs []int, p float64) int {
	if len(xs) == 0 {
		return 0
	}
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return int(metrics.Percentile(f, p))
}
