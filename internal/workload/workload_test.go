package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastrl/internal/metrics"
	"fastrl/internal/tokenizer"
)

func TestTaskGeneration(t *testing.T) {
	tk := tokenizer.New()
	g := NewTaskGen(tk, 100, 1)
	if len(g.Pool()) != 100 {
		t.Fatalf("pool size %d", len(g.Pool()))
	}
	for _, task := range g.Pool() {
		if task.Answer < 0 || task.Answer > 9 {
			t.Fatalf("answer %d out of digit range", task.Answer)
		}
		// Recompute the sum from the prompt and check it matches.
		sum := 0
		for _, id := range task.Prompt {
			if d, ok := tk.IsDigit(id); ok {
				sum += d
			}
		}
		if sum%10 != task.Answer {
			t.Fatalf("task %d: prompt digits sum to %d mod 10, answer says %d",
				task.ID, sum%10, task.Answer)
		}
		if task.Difficulty < 0 || task.Difficulty > 1 {
			t.Fatalf("difficulty %v out of range", task.Difficulty)
		}
	}
}

func TestTaskSampling(t *testing.T) {
	tk := tokenizer.New()
	g := NewTaskGen(tk, 10, 1)
	got := g.Sample(50)
	if len(got) != 50 {
		t.Fatalf("sampled %d", len(got))
	}
	seen := map[int]bool{}
	for _, task := range got {
		seen[task.ID] = true
	}
	if len(seen) < 2 {
		t.Fatal("sampling looks degenerate")
	}
}

func TestHeldOutDisjointSeed(t *testing.T) {
	tk := tokenizer.New()
	train := NewTaskGen(tk, 20, 1)
	held := HeldOut(tk, 20, 1)
	same := 0
	for i := range train.Pool() {
		a, b := train.Pool()[i].Prompt, held.Pool()[i].Prompt
		if len(a) == len(b) {
			eq := true
			for j := range a {
				if a[j] != b[j] {
					eq = false
					break
				}
			}
			if eq {
				same++
			}
		}
	}
	if same == len(train.Pool()) {
		t.Fatal("held-out pool identical to training pool")
	}
}

func TestLengthPriorBias(t *testing.T) {
	p := LengthPrior{TargetLen: 100, Sharpness: 9}
	if b := p.Bias(10); b >= 0 {
		t.Fatalf("bias before target should suppress EOS: %v", b)
	}
	if b := p.Bias(100); b != 0 {
		t.Fatalf("bias at target should be 0: %v", b)
	}
	// The prior never pushes the model to stop: past the target the bias
	// vanishes and the hard cap takes over.
	if b := p.Bias(300); b != 0 {
		t.Fatalf("bias after target should be 0 (hard cap handles the end): %v", b)
	}
	// Clamped on the suppression side.
	if b := (LengthPrior{TargetLen: 1 << 20, Sharpness: 1e9}).Bias(0); b < -40 {
		t.Fatalf("bias unclamped: %v", b)
	}
	// Zero target disables.
	if b := (LengthPrior{}).Bias(50); b != 0 {
		t.Fatalf("zero prior bias = %v", b)
	}
}

func TestLengthPriorHardCap(t *testing.T) {
	p := LengthPrior{TargetLen: 100, Sharpness: 25}
	if got := p.HardCap(1 << 20); got != 129 {
		t.Fatalf("HardCap = %d, want 129", got)
	}
	if got := p.HardCap(110); got != 110 {
		t.Fatalf("HardCap should respect the global cap: %d", got)
	}
	if got := (LengthPrior{}).HardCap(512); got != 512 {
		t.Fatalf("zero prior HardCap = %d", got)
	}
}

func TestLengthPriorBiasMonotone(t *testing.T) {
	p := LengthPrior{TargetLen: 64, Sharpness: 9}
	f := func(a, b uint16) bool {
		x, y := int(a%2048), int(b%2048)
		if x > y {
			x, y = y, x
		}
		return p.Bias(x) <= p.Bias(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLengthSamplerLongTail(t *testing.T) {
	s := DefaultLengthSampler(2048)
	rng := rand.New(rand.NewSource(2))
	lens := s.SampleMany(8000, rng)
	f := make([]float64, len(lens))
	capped := 0
	for i, l := range lens {
		if l < 4 || l > 2048 {
			t.Fatalf("length %d outside [4, 2048]", l)
		}
		if l == 2048 {
			capped++
		}
		f[i] = float64(l)
	}
	p50 := metrics.Percentile(f, 50)
	p75 := metrics.Percentile(f, 75)
	mx := metrics.Max(f)
	// Long-tail shape: max far beyond p75, p75 modestly above median.
	if mx < 4*p75 {
		t.Fatalf("tail too light: max %v, p75 %v", mx, p75)
	}
	if p75 > 3*p50 {
		t.Fatalf("body too skewed: p75 %v, p50 %v", p75, p50)
	}
	// A persistent fraction of requests should hit the cap (Fig. 2: max
	// at the configured ceiling in most steps).
	if capped == 0 {
		t.Fatal("no requests hit the length cap")
	}
	if float64(capped)/float64(len(lens)) > 0.2 {
		t.Fatalf("too many capped requests: %d", capped)
	}
}

func TestPriorForDifficultyScaling(t *testing.T) {
	tk := tokenizer.New()
	s := DefaultLengthSampler(2048)
	easy := Task{Difficulty: 0}
	hard := Task{Difficulty: 1}
	var easySum, hardSum float64
	const n = 2000
	for i := 0; i < n; i++ {
		easySum += float64(PriorFor(easy, s, rand.New(rand.NewSource(int64(i)))).TargetLen)
		hardSum += float64(PriorFor(hard, s, rand.New(rand.NewSource(int64(i)))).TargetLen)
	}
	if hardSum <= easySum {
		t.Fatalf("harder tasks should get longer priors: easy %.0f hard %.0f", easySum/n, hardSum/n)
	}
	_ = tk
}

func TestGenerateTraceShape(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Steps = 100
	cfg.PerStep = 256
	trace := GenerateTrace(cfg)
	if len(trace) != 100 {
		t.Fatalf("trace length %d", len(trace))
	}
	hitCap := 0
	for _, s := range trace {
		if s.Median > s.P75 || s.P75 > s.Max {
			t.Fatalf("step %d: ordering violated: p50=%d p75=%d max=%d", s.Step, s.Median, s.P75, s.Max)
		}
		if s.Max == cfg.MaxLen {
			hitCap++
		}
	}
	// Fig 2: in most steps some response reaches the configured cap.
	if float64(hitCap)/float64(len(trace)) < 0.5 {
		t.Fatalf("cap hit in only %d/%d steps", hitCap, len(trace))
	}
	// Median grows over training.
	if trace[len(trace)-1].Median <= trace[0].Median {
		t.Fatalf("median did not grow: %d -> %d", trace[0].Median, trace[len(trace)-1].Median)
	}
}

func TestUnderUtilizedFraction(t *testing.T) {
	trace := []TraceStep{{Max: 100, P75: 25}, {Max: 100, P75: 75}}
	got := UnderUtilizedFraction(trace)
	if got != 0.5 {
		t.Fatalf("under-utilized fraction %v, want 0.5", got)
	}
	if UnderUtilizedFraction(nil) != 0 {
		t.Fatal("empty trace should be 0")
	}
	// The paper's headline: a large under-utilised zone.
	real := GenerateTrace(DefaultTraceConfig())
	if f := UnderUtilizedFraction(real); f < 0.4 {
		t.Fatalf("synthetic trace under-utilisation %.2f too small to exhibit the long-tail problem", f)
	}
}
