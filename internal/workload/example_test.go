package workload_test

import (
	"fmt"
	"math/rand"

	"fastrl/internal/tokenizer"
	"fastrl/internal/workload"
)

// ExampleTaskGen shows the verifiable arithmetic-chain tasks that stand in
// for the paper's math/code RL dataset.
func ExampleTaskGen() {
	tk := tokenizer.New()
	gen := workload.NewTaskGen(tk, 4, 1)
	task := gen.Pool()[0]
	fmt.Printf("prompt: %s\nanswer digit: %d\n", tk.Decode(task.Prompt), task.Answer)
	// Output:
	// prompt: <bos> compute 7 + 7 + 9 + 1 =
	// answer digit: 4
}

// ExampleLengthPrior shows the suppression-only length shaping: the prior
// discourages ending before the target length and vanishes after it (the
// hard cap handles the rest).
func ExampleLengthPrior() {
	p := workload.LengthPrior{TargetLen: 100, Sharpness: 25}
	fmt.Printf("bias at 10 tokens:  %.1f\n", p.Bias(10))
	fmt.Printf("bias at 100 tokens: %.1f\n", p.Bias(100))
	fmt.Printf("bias at 300 tokens: %.1f\n", p.Bias(300))
	fmt.Printf("hard cap: %d\n", p.HardCap(1024))
	// Output:
	// bias at 10 tokens:  -22.5
	// bias at 100 tokens: 0.0
	// bias at 300 tokens: 0.0
	// hard cap: 129
}

// ExampleLengthSampler draws long-tail target lengths: the bulk sits near
// the median while a heavy tail reaches the cap — the paper's Fig. 1(a)
// distribution.
func ExampleLengthSampler() {
	s := workload.DefaultLengthSampler(2048)
	rng := rand.New(rand.NewSource(7))
	lens := s.SampleMany(10000, rng)
	short, long := 0, 0
	for _, l := range lens {
		if l <= 64 {
			short++
		}
		if l >= 1024 {
			long++
		}
	}
	fmt.Printf("short (<=64): %d%%  very long (>=1024): %d%%\n",
		100*short/len(lens), 100*long/len(lens))
	// Output: short (<=64): 15%  very long (>=1024): 4%
}
