package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"
)

// ExportSpan is one span in the native JSON export, times in virtual
// nanoseconds.
type ExportSpan struct {
	Kind  string `json:"kind"`
	Start int64  `json:"start_ns"`
	End   int64  `json:"end_ns"`
	Arg   int64  `json:"arg,omitempty"`
}

// ExportRequest is one request's exported lifecycle.
type ExportRequest struct {
	ReqID   int64        `json:"req"`
	Shard   int32        `json:"shard"`
	Dropped int          `json:"dropped_spans,omitempty"`
	Spans   []ExportSpan `json:"spans"`
}

// Export is a tracer's full capture: every finished request's spans,
// sorted by (shard, request) so fixed-seed runs export byte-identically
// regardless of goroutine interleaving in the retention order.
type Export struct {
	Requests      []ExportRequest `json:"requests"`
	DroppedTraces int64           `json:"dropped_traces,omitempty"`
}

// Export snapshots every finished trace. The snapshot copies span data,
// so it stays valid while the tracer keeps running.
func (t *Tracer) Export() *Export {
	e := &Export{}
	if t == nil {
		return e
	}
	t.mu.Lock()
	e.DroppedTraces = t.dropped
	e.Requests = make([]ExportRequest, 0, len(t.done))
	for _, rt := range t.done {
		er := ExportRequest{
			ReqID:   rt.reqID,
			Shard:   rt.shard,
			Dropped: rt.drops,
			Spans:   make([]ExportSpan, len(rt.spans)),
		}
		for i, sp := range rt.spans {
			er.Spans[i] = ExportSpan{
				Kind:  sp.Kind.String(),
				Start: int64(sp.Start),
				End:   int64(sp.End),
				Arg:   sp.Arg,
			}
		}
		e.Requests = append(e.Requests, er)
	}
	t.mu.Unlock()
	sort.SliceStable(e.Requests, func(i, j int) bool {
		a, b := e.Requests[i], e.Requests[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.ReqID < b.ReqID
	})
	return e
}

// JSON renders the native export format.
func (e *Export) JSON() ([]byte, error) {
	return json.MarshalIndent(e, "", " ")
}

// chromeEvent is one Chrome trace_event. Durations are microseconds
// (the format's unit); kind and arg ride in Args so ParseChrome can
// reconstruct the export losslessly.
type chromeEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur,omitempty"`
	PID   int64   `json:"pid"`
	TID   int64   `json:"tid"`
	Scope string  `json:"s,omitempty"`
	Args  struct {
		Arg int64 `json:"arg"`
	} `json:"args"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// DisplayTimeUnit hints viewers; virtual time is dense, so ms.
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// Chrome renders the export as Chrome trace_event JSON (load via
// chrome://tracing or Perfetto): one process per shard, one thread per
// request, complete events for intervals and instant events for
// zero-duration markers.
func (e *Export) Chrome() ([]byte, error) {
	ct := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, req := range e.Requests {
		for _, sp := range req.Spans {
			ev := chromeEvent{
				Name: sp.Kind,
				TS:   float64(sp.Start) / 1e3,
				PID:  int64(req.Shard),
				TID:  req.ReqID,
			}
			ev.Args.Arg = sp.Arg
			if sp.End > sp.Start {
				ev.Phase = "X"
				ev.Dur = float64(sp.End-sp.Start) / 1e3
			} else {
				ev.Phase = "i"
				ev.Scope = "t"
			}
			ct.TraceEvents = append(ct.TraceEvents, ev)
		}
	}
	return json.MarshalIndent(ct, "", " ")
}

// ParseChrome reconstructs an Export from Chrome trace_event JSON
// produced by Chrome (the inverse up to float microsecond rounding,
// exact for virtual-time magnitudes).
func ParseChrome(data []byte) (*Export, error) {
	var ct chromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		return nil, fmt.Errorf("trace: parse chrome trace: %w", err)
	}
	type key struct {
		shard int64
		req   int64
	}
	byReq := map[key]*ExportRequest{}
	var order []key
	for _, ev := range ct.TraceEvents {
		if ev.Phase != "X" && ev.Phase != "i" {
			continue
		}
		if kindForName(ev.Name) == 0 {
			return nil, fmt.Errorf("trace: unknown span kind %q", ev.Name)
		}
		k := key{shard: ev.PID, req: ev.TID}
		req := byReq[k]
		if req == nil {
			req = &ExportRequest{ReqID: ev.TID, Shard: int32(ev.PID)}
			byReq[k] = req
			order = append(order, k)
		}
		start := int64(math.Round(ev.TS * 1e3))
		end := start
		if ev.Phase == "X" {
			end = start + int64(math.Round(ev.Dur*1e3))
		}
		req.Spans = append(req.Spans, ExportSpan{
			Kind: ev.Name, Start: start, End: end, Arg: ev.Args.Arg,
		})
	}
	e := &Export{Requests: make([]ExportRequest, 0, len(order))}
	for _, k := range order {
		e.Requests = append(e.Requests, *byReq[k])
	}
	sort.SliceStable(e.Requests, func(i, j int) bool {
		a, b := e.Requests[i], e.Requests[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.ReqID < b.ReqID
	})
	return e, nil
}

// Summary aggregates a validated export.
type Summary struct {
	Requests  int
	Spans     int
	Retired   int
	Cancelled int
	// Busy is total virtual time inside Prefill/Decode/SDRound spans.
	Busy time.Duration
}

// busyKind reports whether spans of this kind occupy the request
// exclusively (and therefore must not overlap each other).
func busyKind(k Kind) bool {
	switch k {
	case KindQueue, KindPrefill, KindDecode, KindSDRound, KindToolWait:
		return true
	}
	return false
}

// Validate checks every request's spans nest correctly — non-negative
// durations, submit first, monotone non-overlapping busy intervals,
// terminal retire last when present — and returns aggregate counts.
func (e *Export) Validate() (Summary, error) {
	var sum Summary
	sum.Requests = len(e.Requests)
	for _, req := range e.Requests {
		if len(req.Spans) == 0 {
			return sum, fmt.Errorf("trace: req %d shard %d: no spans", req.ReqID, req.Shard)
		}
		if req.Spans[0].Kind != KindSubmit.String() {
			return sum, fmt.Errorf("trace: req %d shard %d: first span %q, want submit",
				req.ReqID, req.Shard, req.Spans[0].Kind)
		}
		submit := req.Spans[0].Start
		busyEnd := int64(math.MinInt64)
		for i, sp := range req.Spans {
			k := kindForName(sp.Kind)
			if k == 0 {
				return sum, fmt.Errorf("trace: req %d: unknown kind %q", req.ReqID, sp.Kind)
			}
			if sp.End < sp.Start {
				return sum, fmt.Errorf("trace: req %d span %d (%s): negative duration %d..%d",
					req.ReqID, i, sp.Kind, sp.Start, sp.End)
			}
			if sp.Start < submit {
				return sum, fmt.Errorf("trace: req %d span %d (%s): starts %dns before submit",
					req.ReqID, i, sp.Kind, submit-sp.Start)
			}
			if busyKind(k) {
				if sp.Start < busyEnd {
					return sum, fmt.Errorf("trace: req %d span %d (%s): overlaps previous busy span (start %d < prev end %d)",
						req.ReqID, i, sp.Kind, sp.Start, busyEnd)
				}
				busyEnd = sp.End
				switch k {
				case KindPrefill, KindDecode, KindSDRound:
					sum.Busy += time.Duration(sp.End - sp.Start)
				}
			}
			switch k {
			case KindRetire:
				if i != len(req.Spans)-1 {
					return sum, fmt.Errorf("trace: req %d: retire at span %d is not last", req.ReqID, i)
				}
				sum.Retired++
			case KindCancel:
				sum.Cancelled++
			}
			sum.Spans++
		}
	}
	return sum, nil
}
