package trace

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Record is one flight-recorder entry: a span copy plus its request and
// shard identity.
type Record struct {
	ReqID int64
	Shard int32
	Kind  Kind
	Start time.Duration
	End   time.Duration
	Arg   int64
}

// ringSlot holds one record as independently-atomic words guarded by a
// sequence word. A writer invalidates the slot (seq=0), stores the
// fields, then publishes the slot's global sequence number; a reader
// accepts a slot only when the sequence reads the expected value both
// before and after copying the fields. Every access is atomic, so the
// protocol is race-detector-clean without locks, and a slot caught
// mid-overwrite is simply skipped.
type ringSlot struct {
	seq   atomic.Uint64
	reqID atomic.Int64
	// meta packs Kind (low 8 bits) and Shard (next 32).
	meta  atomic.Uint64
	start atomic.Int64
	end   atomic.Int64
	arg   atomic.Int64
}

// FlightRecorder is a bounded lock-free ring of recent Records. Record
// is wait-free and allocation-free; Snapshot returns the newest records
// oldest-first. With a single writer the newest capacity records are
// returned losslessly no matter how many times the ring has wrapped;
// concurrent writers may additionally cost a reader the few slots caught
// mid-write. All methods are nil-receiver-safe.
type FlightRecorder struct {
	mask   uint64
	slots  []ringSlot
	cursor atomic.Uint64 // total records ever written; slot n-1 & mask
}

// NewFlightRecorder builds a ring holding the most recent capacity
// records (rounded up to a power of two; default 1024).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 1024
	}
	n := 1 << bits.Len(uint(capacity-1))
	return &FlightRecorder{mask: uint64(n - 1), slots: make([]ringSlot, n)}
}

// Capacity returns the ring size.
func (fr *FlightRecorder) Capacity() int {
	if fr == nil {
		return 0
	}
	return len(fr.slots)
}

// Record appends one record, overwriting the oldest when full.
func (fr *FlightRecorder) Record(rec Record) {
	if fr == nil {
		return
	}
	n := fr.cursor.Add(1)
	s := &fr.slots[(n-1)&fr.mask]
	s.seq.Store(0) // invalidate while the fields are torn
	s.reqID.Store(rec.ReqID)
	s.meta.Store(uint64(rec.Kind) | uint64(uint32(rec.Shard))<<8)
	s.start.Store(int64(rec.Start))
	s.end.Store(int64(rec.End))
	s.arg.Store(int64(rec.Arg))
	s.seq.Store(n) // publish
}

// Total returns how many records were ever written.
func (fr *FlightRecorder) Total() int64 {
	if fr == nil {
		return 0
	}
	return int64(fr.cursor.Load())
}

// Snapshot returns the newest records, oldest-first.
func (fr *FlightRecorder) Snapshot() []Record {
	return fr.SnapshotInto(nil)
}

// SnapshotInto appends the newest records to dst, oldest-first.
func (fr *FlightRecorder) SnapshotInto(dst []Record) []Record {
	if fr == nil {
		return dst
	}
	hi := fr.cursor.Load()
	if hi == 0 {
		return dst
	}
	lo := uint64(1)
	if n := uint64(len(fr.slots)); hi > n {
		lo = hi - n + 1
	}
	for seq := lo; seq <= hi; seq++ {
		s := &fr.slots[(seq-1)&fr.mask]
		if s.seq.Load() != seq {
			continue // not yet published, or already overwritten
		}
		rec := Record{
			ReqID: s.reqID.Load(),
			Start: time.Duration(s.start.Load()),
			End:   time.Duration(s.end.Load()),
			Arg:   s.arg.Load(),
		}
		meta := s.meta.Load()
		rec.Kind = Kind(meta & 0xff)
		rec.Shard = int32(uint32(meta >> 8))
		if s.seq.Load() != seq {
			continue // overwritten underneath the copy
		}
		dst = append(dst, rec)
	}
	return dst
}
