// Package trace is the zero-allocation, virtual-time request-lifecycle
// tracing substrate shared by sched, serving, and cluster.
//
// Every traced request owns a ReqTrace: a preallocated fixed-slot arena
// of Spans stamped with vclock virtual time, so traces from a fixed-seed
// replay are deterministic down to the byte of their export. Recording
// is off on hot paths by default — a request with a nil *ReqTrace costs
// the scheduler one pointer check per anchor — and when on, steady-state
// recording performs no allocations: spans append into the arena
// reserved at Start, arenas recycle through the Tracer's free list, and
// overflow past the arena capacity is counted (DroppedSpans), never
// grown.
//
// # Span taxonomy
//
// A request's lifecycle records the following kinds, in virtual-time
// order (instants have Start == End):
//
//	KindSubmit    instant: the request entered a batch's admission queue.
//	KindQueue     submit → prefill start (admission-queue wait).
//	KindPrefill   the batched prompt forward that admitted the request.
//	KindDecode    one vanilla decode step (Arg = tokens delivered, 1).
//	KindSDRound   one speculation round (Arg = tokens delivered).
//	KindToolWait  a GPU-free tool-call pause (decode resumes at End).
//	KindCancel    instant: the batch observed the cancel flag.
//	KindRetire    instant: the request left the batch (Arg = generated
//	              tokens). Always the final span.
//	KindFailover  instant: a failover session replayed the request on a
//	              new shard (Arg = attempt number). Recorded into the
//	              destination shard's flight recorder, not a ReqTrace:
//	              the replay's own spans carry the request's new life.
//	KindFaultCrash/KindFaultHang/KindFaultSlow/KindFaultRevive
//	              instant fault markers recorded into a shard's flight
//	              recorder at the virtual time the fault was applied
//	              (KindFaultSlow's Arg is the injected stall in ns).
//
// Within one request the busy spans (Prefill, Decode, SDRound, ToolWait)
// never overlap: the scheduler charges them sequentially on the virtual
// clock. Export.Validate checks this, along with non-negative durations
// and Submit-first/Retire-last ordering.
//
// # Flight recorder
//
// FlightRecorder is a bounded lock-free ring of recent Records (span
// copies plus fault markers) — one per shard. Writers publish with a
// seqlock-style slot protocol built entirely from atomics, so recording
// is wait-free, allocation-free, and race-detector-clean; Snapshot
// returns the newest records, skipping any slot caught mid-overwrite.
// The cluster health monitor snapshots a shard's ring into a Postmortem
// whenever the shard degrades or dies, so every chaos fault leaves a
// capture of what the shard was doing when it happened.
package trace

import (
	"sync"
	"time"
)

// Kind identifies a lifecycle span. The zero Kind is invalid, so a
// zeroed ring slot can never masquerade as a record.
type Kind uint8

const (
	// KindSubmit is the instant a request entered an admission queue.
	KindSubmit Kind = iota + 1
	// KindQueue spans admission-queue wait: submit → prefill start.
	KindQueue
	// KindPrefill spans the batched prompt forward admitting the request.
	KindPrefill
	// KindDecode spans one vanilla decode step.
	KindDecode
	// KindSDRound spans one speculation round.
	KindSDRound
	// KindToolWait spans a GPU-free tool-call pause.
	KindToolWait
	// KindCancel is the instant the batch observed a cancellation.
	KindCancel
	// KindRetire is the instant the request left its batch.
	KindRetire
	// KindFailover is the instant a failover session replayed the request
	// on a new shard.
	KindFailover
	// KindFaultCrash marks an applied crash fault.
	KindFaultCrash
	// KindFaultHang marks an applied hang fault.
	KindFaultHang
	// KindFaultSlow marks an applied slow fault (Arg = stall ns).
	KindFaultSlow
	// KindFaultRevive marks a shard revival.
	KindFaultRevive
	// KindSLOBreach marks an SLO burn-rate breach observed on a shard
	// (recorded into the shard's flight recorder with ReqID = -1; Arg is
	// the breaching spec's index). Emitted on the breach's rising edge and
	// once per burn-window slice while it persists, so postmortem rings
	// captured during a fault window hold the marker.
	KindSLOBreach
	// KindReplicate marks a cache-fabric replication applied on a shard:
	// a hot prefix exported elsewhere was ingested at a step boundary
	// (recorded into the shard's flight recorder with ReqID = -1; Arg is
	// the replicated prefix length).
	KindReplicate

	kindMax
)

var kindNames = [kindMax]string{
	KindSubmit:      "submit",
	KindQueue:       "queue",
	KindPrefill:     "prefill",
	KindDecode:      "decode",
	KindSDRound:     "sd-round",
	KindToolWait:    "tool-wait",
	KindCancel:      "cancel",
	KindRetire:      "retire",
	KindFailover:    "failover",
	KindFaultCrash:  "fault-crash",
	KindFaultHang:   "fault-hang",
	KindFaultSlow:   "fault-slow",
	KindFaultRevive: "fault-revive",
	KindSLOBreach:   "slo-breach",
	KindReplicate:   "replicate",
}

func (k Kind) String() string {
	if k < kindMax && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// kindForName inverts String for the Chrome-trace reader.
func kindForName(name string) Kind {
	for k, n := range kindNames {
		if n == name {
			return Kind(k)
		}
	}
	return 0
}

// Span is one recorded lifecycle interval in virtual time. Instant
// events have Start == End.
type Span struct {
	Kind  Kind
	Start time.Duration
	End   time.Duration
	// Arg is kind-specific payload (tokens delivered, attempt number,
	// stall ns).
	Arg int64
}

// ReqTrace is one request's span arena. It is owned by the goroutine
// stepping the request's batch; Record and Close are not safe for
// concurrent use with each other (the Tracer hands each arena to exactly
// one request at a time). All methods are nil-receiver-safe, so callers
// record unconditionally and an untraced request costs one nil check.
type ReqTrace struct {
	reqID int64
	shard int32
	spans []Span // fixed-capacity arena; len grows, cap never does
	drops int
	// submitted memoises the KindSubmit timestamp so the scheduler can
	// derive the queue span without carrying state of its own.
	submitted time.Duration
	closed    bool
	t         *Tracer
	fr        *FlightRecorder
}

// Record appends one span. When the arena is full the span is dropped
// and counted; recording never allocates. The span is also mirrored into
// the trace's flight recorder, if one was attached at Start.
func (rt *ReqTrace) Record(k Kind, start, end time.Duration, arg int64) {
	if rt == nil || rt.closed {
		return
	}
	if k == KindSubmit {
		rt.submitted = start
	}
	if len(rt.spans) < cap(rt.spans) {
		rt.spans = append(rt.spans, Span{Kind: k, Start: start, End: end, Arg: arg})
	} else {
		rt.drops++
	}
	rt.fr.Record(Record{ReqID: rt.reqID, Shard: rt.shard, Kind: k, Start: start, End: end, Arg: arg})
}

// SubmittedAt returns the KindSubmit timestamp recorded earlier (zero if
// none), letting the scheduler reconstruct the queue span at prefill.
func (rt *ReqTrace) SubmittedAt() time.Duration {
	if rt == nil {
		return 0
	}
	return rt.submitted
}

// Close records a final span and hands the trace back to its Tracer for
// retention. Closing twice is a no-op — the first terminal transition
// wins, mirroring the request lifecycle's Done semantics.
func (rt *ReqTrace) Close(k Kind, at time.Duration, arg int64) {
	if rt == nil || rt.closed {
		return
	}
	rt.Record(k, at, at, arg)
	rt.closed = true
	if rt.t != nil {
		rt.t.finish(rt)
	}
}

// Spans returns the recorded spans (aliasing the arena; valid until the
// Tracer recycles it after Close).
func (rt *ReqTrace) Spans() []Span {
	if rt == nil {
		return nil
	}
	return rt.spans
}

// DroppedSpans returns how many spans overflowed the arena.
func (rt *ReqTrace) DroppedSpans() int {
	if rt == nil {
		return 0
	}
	return rt.drops
}

// Config parameterises a Tracer.
type Config struct {
	// SpanSlots is each request arena's span capacity. A request records
	// ~4 fixed spans plus one per decode step; default 96.
	SpanSlots int
	// MaxRequests bounds retained finished traces. Once reached, newly
	// finished traces are dropped (counted) and their arenas recycled, so
	// a long-running traced server holds bounded memory. Default 16384.
	MaxRequests int
	// Flight, when non-nil, mirrors every recorded span into this ring
	// (the default for traces started without an explicit recorder).
	Flight *FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.SpanSlots <= 0 {
		c.SpanSlots = 96
	}
	if c.MaxRequests <= 0 {
		c.MaxRequests = 16384
	}
	return c
}

// Tracer hands out request arenas and retains finished traces for
// export. Start and finish are safe for concurrent use (serving shards
// share one tracer across replicas); the spans inside each arena are
// still single-writer.
type Tracer struct {
	cfg Config

	mu      sync.Mutex
	free    []*ReqTrace
	done    []*ReqTrace
	started int64
	dropped int64
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	return &Tracer{cfg: cfg.withDefaults()}
}

// Start begins a trace for one request on one shard. fr, when non-nil,
// overrides the tracer-level flight recorder for this request (cluster
// shards pass their own ring). Start on a nil Tracer returns nil, which
// every ReqTrace method accepts.
func (t *Tracer) Start(reqID int64, shard int32, fr *FlightRecorder) *ReqTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var rt *ReqTrace
	if n := len(t.free); n > 0 {
		rt = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	}
	t.started++
	t.mu.Unlock()
	if rt == nil {
		rt = &ReqTrace{spans: make([]Span, 0, t.cfg.SpanSlots)}
	}
	rt.reqID = reqID
	rt.shard = shard
	rt.spans = rt.spans[:0]
	rt.drops = 0
	rt.submitted = 0
	rt.closed = false
	rt.t = t
	if fr != nil {
		rt.fr = fr
	} else {
		rt.fr = t.cfg.Flight
	}
	return rt
}

// finish retains a closed trace for export, or recycles its arena when
// the retention bound is reached.
func (t *Tracer) finish(rt *ReqTrace) {
	t.mu.Lock()
	if len(t.done) < t.cfg.MaxRequests {
		t.done = append(t.done, rt)
	} else {
		t.dropped++
		t.free = append(t.free, rt)
	}
	t.mu.Unlock()
}

// Started returns how many traces were started.
func (t *Tracer) Started() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started
}

// DroppedTraces returns how many finished traces were dropped by the
// retention bound.
func (t *Tracer) DroppedTraces() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
