package trace

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	for k := KindSubmit; k < kindMax; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if got := kindForName(k.String()); got != k {
			t.Fatalf("kindForName(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Fatalf("out-of-range kinds must stringify as unknown")
	}
}

// Recording into a started trace (arena + flight-recorder mirror) must
// not allocate: this is the tracing-enabled hot-path pin the acceptance
// criteria name.
func TestRecordZeroAllocs(t *testing.T) {
	fr := NewFlightRecorder(256)
	tr := New(Config{SpanSlots: 1 << 16})
	rt := tr.Start(1, 0, fr)
	var i int64
	allocs := testing.AllocsPerRun(10000, func() {
		rt.Record(KindDecode, time.Duration(i), time.Duration(i+10), 1)
		i += 10
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v allocs/op, want 0", allocs)
	}
	// The overflow (drop) path must be allocation-free too.
	small := tr.Start(2, 0, fr)
	for j := 0; j < tr.cfg.SpanSlots; j++ {
		small.Record(KindDecode, 0, 1, 1)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		small.Record(KindDecode, 0, 1, 1)
	})
	if allocs != 0 {
		t.Fatalf("overflow Record allocates %v allocs/op, want 0", allocs)
	}
	if small.DroppedSpans() == 0 {
		t.Fatalf("overflow not counted")
	}
}

func TestFlightRecorderWrapKeepsNewest(t *testing.T) {
	fr := NewFlightRecorder(64)
	if fr.Capacity() != 64 {
		t.Fatalf("capacity = %d, want 64", fr.Capacity())
	}
	const total = 64*3 + 17
	for i := 0; i < total; i++ {
		fr.Record(Record{ReqID: int64(i), Kind: KindDecode, Start: time.Duration(i), End: time.Duration(i + 1)})
	}
	got := fr.Snapshot()
	if len(got) != 64 {
		t.Fatalf("snapshot holds %d records, want 64", len(got))
	}
	// A single-writer ring must hold exactly the newest 64, oldest-first.
	for i, rec := range got {
		want := int64(total - 64 + i)
		if rec.ReqID != want {
			t.Fatalf("snapshot[%d].ReqID = %d, want %d", i, rec.ReqID, want)
		}
	}
	if fr.Total() != total {
		t.Fatalf("Total = %d, want %d", fr.Total(), total)
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(Record{ReqID: 7, Kind: KindFaultCrash, Shard: 3, Start: 5, End: 5, Arg: 9})
	got := fr.Snapshot()
	if len(got) != 1 {
		t.Fatalf("snapshot holds %d records, want 1", len(got))
	}
	want := Record{ReqID: 7, Kind: KindFaultCrash, Shard: 3, Start: 5, End: 5, Arg: 9}
	if got[0] != want {
		t.Fatalf("snapshot[0] = %+v, want %+v", got[0], want)
	}
}

// Concurrent writers and snapshotters must be race-clean (the CI race
// job covers this package) and every surfaced record must be coherent —
// the seq-validated copy protocol never yields a half-written record.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(128)
	const writers = 4
	var wwg, swg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < 5000; i++ {
				v := int64(w)*1_000_000 + int64(i)
				fr.Record(Record{ReqID: v, Shard: int32(w), Kind: KindDecode, Start: time.Duration(v), End: time.Duration(v), Arg: v})
			}
		}(w)
	}
	swg.Add(1)
	go func() {
		defer swg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rec := range fr.Snapshot() {
				if rec.Kind != KindDecode {
					t.Errorf("torn record: kind %v", rec.Kind)
					return
				}
				if int64(rec.Start) != rec.ReqID || rec.Arg != rec.ReqID {
					t.Errorf("torn record: req %d start %d arg %d", rec.ReqID, rec.Start, rec.Arg)
					return
				}
				if int64(rec.Shard) != rec.ReqID/1_000_000 {
					t.Errorf("torn record: req %d shard %d", rec.ReqID, rec.Shard)
					return
				}
			}
		}
	}()
	wwg.Wait()
	close(stop)
	swg.Wait()
	if fr.Total() != writers*5000 {
		t.Fatalf("Total = %d, want %d", fr.Total(), writers*5000)
	}
}

func TestTracerRetentionBound(t *testing.T) {
	tr := New(Config{SpanSlots: 4, MaxRequests: 8})
	for i := 0; i < 20; i++ {
		rt := tr.Start(int64(i), 0, nil)
		rt.Record(KindSubmit, 0, 0, 0)
		rt.Close(KindRetire, 1, 0)
	}
	e := tr.Export()
	if len(e.Requests) != 8 {
		t.Fatalf("retained %d traces, want 8", len(e.Requests))
	}
	if tr.DroppedTraces() != 12 {
		t.Fatalf("DroppedTraces = %d, want 12", tr.DroppedTraces())
	}
	if e.DroppedTraces != 12 {
		t.Fatalf("export DroppedTraces = %d, want 12", e.DroppedTraces)
	}
	if tr.Started() != 20 {
		t.Fatalf("Started = %d, want 20", tr.Started())
	}
}

func TestCloseIdempotentAndNilSafety(t *testing.T) {
	// Nil tracer, trace, and recorder must all be inert.
	var nilTr *Tracer
	if rt := nilTr.Start(1, 0, nil); rt != nil {
		t.Fatalf("nil tracer Start returned %v", rt)
	}
	var rt *ReqTrace
	rt.Record(KindDecode, 0, 1, 0)
	rt.Close(KindRetire, 1, 0)
	if rt.Spans() != nil || rt.DroppedSpans() != 0 || rt.SubmittedAt() != 0 {
		t.Fatalf("nil ReqTrace accessors not inert")
	}
	var fr *FlightRecorder
	fr.Record(Record{})
	if fr.Snapshot() != nil || fr.Total() != 0 || fr.Capacity() != 0 {
		t.Fatalf("nil FlightRecorder not inert")
	}

	tr := New(Config{})
	live := tr.Start(1, 0, nil)
	live.Record(KindSubmit, 0, 0, 0)
	live.Close(KindRetire, 5, 3)
	live.Close(KindRetire, 9, 4) // second close must not double-retain
	live.Record(KindDecode, 6, 7, 1)
	e := tr.Export()
	if len(e.Requests) != 1 || len(e.Requests[0].Spans) != 2 {
		t.Fatalf("close not idempotent: %+v", e.Requests)
	}
}

// buildExportTracer records the same lifecycle data, optionally
// finishing requests in reversed order, to prove the export is
// insensitive to retention order.
func buildExportTracer(reversed bool) *Tracer {
	tr := New(Config{SpanSlots: 16})
	traces := make([]*ReqTrace, 5)
	for i := range traces {
		rt := tr.Start(int64(i), int32(i%2), nil)
		base := time.Duration(i) * 100
		rt.Record(KindSubmit, base, base, 0)
		rt.Record(KindQueue, base, base+10, 0)
		rt.Record(KindPrefill, base+10, base+30, 8)
		rt.Record(KindSDRound, base+30, base+50, 4)
		rt.Record(KindDecode, base+50, base+60, 1)
		traces[i] = rt
	}
	if reversed {
		for i := len(traces) - 1; i >= 0; i-- {
			traces[i].Close(KindRetire, time.Duration(i)*100+60, 5)
		}
	} else {
		for i := range traces {
			traces[i].Close(KindRetire, time.Duration(i)*100+60, 5)
		}
	}
	return tr
}

func TestExportDeterministicAcrossRetentionOrder(t *testing.T) {
	a, b := buildExportTracer(false), buildExportTracer(true)
	aj, err := a.Export().JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.Export().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("JSON export differs across retention order:\n%s\nvs\n%s", aj, bj)
	}
	ac, err := a.Export().Chrome()
	if err != nil {
		t.Fatal(err)
	}
	bc, err := b.Export().Chrome()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ac, bc) {
		t.Fatalf("Chrome export differs across retention order")
	}
}

func TestChromeRoundtrip(t *testing.T) {
	e := buildExportTracer(false).Export()
	data, err := e.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseChrome(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(e.Requests) {
		t.Fatalf("roundtrip requests %d, want %d", len(back.Requests), len(e.Requests))
	}
	for i, req := range e.Requests {
		got := back.Requests[i]
		if got.ReqID != req.ReqID || got.Shard != req.Shard {
			t.Fatalf("roundtrip req %d identity mismatch: %+v vs %+v", i, got, req)
		}
		if len(got.Spans) != len(req.Spans) {
			t.Fatalf("roundtrip req %d spans %d, want %d", i, len(got.Spans), len(req.Spans))
		}
		for j, sp := range req.Spans {
			if got.Spans[j] != sp {
				t.Fatalf("roundtrip req %d span %d: %+v vs %+v", i, j, got.Spans[j], sp)
			}
		}
	}
	sum, err := back.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests != 5 || sum.Retired != 5 {
		t.Fatalf("summary %+v, want 5 requests retired", sum)
	}
}

func TestValidateCatchesMalformedTraces(t *testing.T) {
	mk := func(spans ...ExportSpan) *Export {
		return &Export{Requests: []ExportRequest{{ReqID: 1, Spans: spans}}}
	}
	cases := []struct {
		name string
		e    *Export
	}{
		{"no spans", mk()},
		{"no submit", mk(ExportSpan{Kind: "decode", Start: 0, End: 1})},
		{"negative duration", mk(
			ExportSpan{Kind: "submit"},
			ExportSpan{Kind: "decode", Start: 10, End: 5},
		)},
		{"overlapping busy spans", mk(
			ExportSpan{Kind: "submit"},
			ExportSpan{Kind: "decode", Start: 0, End: 10},
			ExportSpan{Kind: "decode", Start: 5, End: 15},
		)},
		{"span before submit", mk(
			ExportSpan{Kind: "submit", Start: 10, End: 10},
			ExportSpan{Kind: "decode", Start: 0, End: 20},
		)},
		{"retire not last", mk(
			ExportSpan{Kind: "submit"},
			ExportSpan{Kind: "retire", Start: 5, End: 5},
			ExportSpan{Kind: "decode", Start: 5, End: 6},
		)},
		{"unknown kind", mk(
			ExportSpan{Kind: "submit"},
			ExportSpan{Kind: "frobnicate", Start: 0, End: 1},
		)},
	}
	for _, tc := range cases {
		if _, err := tc.e.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed trace", tc.name)
		}
	}
	ok := mk(
		ExportSpan{Kind: "submit"},
		ExportSpan{Kind: "queue", Start: 0, End: 4},
		ExportSpan{Kind: "prefill", Start: 4, End: 8},
		ExportSpan{Kind: "decode", Start: 8, End: 12, Arg: 1},
		ExportSpan{Kind: "cancel", Start: 12, End: 12},
		ExportSpan{Kind: "retire", Start: 12, End: 12},
	)
	sum, err := ok.Validate()
	if err != nil {
		t.Fatalf("Validate rejected a well-formed trace: %v", err)
	}
	if sum.Retired != 1 || sum.Cancelled != 1 || sum.Spans != 6 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.Busy != 8 {
		t.Fatalf("busy = %v, want 8ns", sum.Busy)
	}
}

// Arena recycling: once the retention bound is hit, finished arenas feed
// later Starts instead of allocating.
func TestArenaRecycling(t *testing.T) {
	tr := New(Config{SpanSlots: 8, MaxRequests: 1})
	first := tr.Start(1, 0, nil)
	first.Record(KindSubmit, 0, 0, 0)
	first.Close(KindRetire, 1, 0)
	second := tr.Start(2, 0, nil)
	second.Record(KindSubmit, 0, 0, 0)
	second.Close(KindRetire, 1, 0) // bound full: recycled
	third := tr.Start(3, 0, nil)
	if third != second {
		t.Fatalf("expected the dropped trace's arena to be recycled")
	}
	if len(third.Spans()) != 0 || third.DroppedSpans() != 0 {
		t.Fatalf("recycled arena not reset: %d spans, %d drops", len(third.Spans()), third.DroppedSpans())
	}
}

func TestSnapshotInto(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		fr.Record(Record{ReqID: int64(i), Kind: KindDecode})
	}
	buf := make([]Record, 0, 8)
	got := fr.SnapshotInto(buf)
	if len(got) != 4 || got[0].ReqID != 2 || got[3].ReqID != 5 {
		t.Fatalf("SnapshotInto = %+v", got)
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1024}, {1, 1}, {3, 4}, {64, 64}, {65, 128}} {
		if got := NewFlightRecorder(tc.in).Capacity(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Capacity() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func BenchmarkRecord(b *testing.B) {
	fr := NewFlightRecorder(1024)
	tr := New(Config{SpanSlots: 64})
	rt := tr.Start(1, 0, fr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Record(KindDecode, time.Duration(i), time.Duration(i+1), 1)
	}
	_ = fmt.Sprint(rt.DroppedSpans())
}
