package prefixcache

import (
	"reflect"
	"testing"

	"fastrl/internal/model"
)

func seq(toks ...int) []int { return toks }

func TestLookupEmptyCache(t *testing.T) {
	c := New(Config{})
	n, m := c.Lookup(seq(1, 2, 3))
	if n != nil || m != 0 {
		t.Fatalf("Lookup on empty cache = (%v, %d)", n, m)
	}
	if c.MatchLen(seq(1, 2, 3)) != 0 {
		t.Fatal("MatchLen on empty cache != 0")
	}
	st := c.Stats()
	if st.Lookups != 1 || st.Hits != 0 || st.HitRate != 0 {
		t.Fatalf("stats after miss: %+v", st)
	}
}

func TestInsertLookupRoundTrip(t *testing.T) {
	c := New(Config{})
	tokens := seq(5, 6, 7, 8, 9, 10)
	c.Insert(tokens, 4, nil)

	// Full-sequence lookup matches everything.
	n, m := c.Lookup(tokens)
	if n == nil || m != len(tokens) {
		t.Fatalf("full lookup matched %d, want %d", m, len(tokens))
	}
	n.Release()

	// The prompt boundary is a node boundary: a prompt-only lookup
	// matches exactly the prompt.
	n, m = c.Lookup(seq(5, 6, 7, 8))
	if n == nil || m != 4 {
		t.Fatalf("prompt lookup matched %d, want 4", m)
	}
	if n.Depth() != 4 {
		t.Fatalf("prompt node depth %d, want 4", n.Depth())
	}
	n.Release()

	// A diverging continuation matches only the shared prefix boundary.
	n, m = c.Lookup(seq(5, 6, 7, 8, 99))
	if n == nil || m != 4 {
		t.Fatalf("diverging lookup matched %d, want 4", m)
	}
	n.Release()

	// A query diverging inside an edge matches the boundary below it.
	if got := c.MatchLen(seq(5, 6, 99)); got != 0 {
		t.Fatalf("mid-edge divergence matched %d, want 0", got)
	}
}

func TestEdgeSplitPreservesContent(t *testing.T) {
	c := New(Config{})
	c.Insert(seq(1, 2, 3, 4, 5), 0, nil)
	// Insert a sequence diverging mid-edge: forces a split at depth 3.
	c.Insert(seq(1, 2, 3, 9, 9), 0, nil)

	for _, tc := range []struct {
		query []int
		want  int
	}{
		{seq(1, 2, 3, 4, 5), 5},
		{seq(1, 2, 3, 9, 9), 5},
		{seq(1, 2, 3), 3},
		{seq(1, 2), 0}, // depth 2 is inside a compressed edge
	} {
		if got := c.MatchLen(tc.query); got != tc.want {
			t.Errorf("MatchLen(%v) = %d, want %d", tc.query, got, tc.want)
		}
	}
}

func TestLookupReturnsTruePrefix(t *testing.T) {
	c := New(Config{})
	c.Insert(seq(1, 2, 3, 4), 2, nil)
	c.Insert(seq(1, 2, 5, 6), 2, nil)
	query := seq(1, 2, 3, 4, 7, 8)
	n, m := c.Lookup(query)
	if n == nil {
		t.Fatal("expected a match")
	}
	defer n.Release()
	got := n.AppendTokens(nil)
	if !reflect.DeepEqual(got, query[:m]) {
		t.Fatalf("node tokens %v != query prefix %v", got, query[:m])
	}
}

func TestHiddenAttachment(t *testing.T) {
	c := New(Config{})
	h := &model.HiddenState{Sketch: []float32{1, 2, 3}, TopTokens: []int{7, 8}}
	bn := c.Insert(seq(1, 2, 3, 4, 5), 3, h)
	if bn == nil || bn.Depth() != 3 {
		t.Fatalf("boundary node = %v", bn)
	}
	// Mutating the caller's copy must not leak into the cache.
	h.Sketch[0] = 42
	n, m := c.Lookup(seq(1, 2, 3))
	if m != 3 || n.Hidden() == nil {
		t.Fatalf("prompt boundary lookup: matched %d, hidden %v", m, n.Hidden())
	}
	if n.Hidden().Sketch[0] != 1 {
		t.Fatal("cache aliased caller-owned hidden state")
	}
	n.Release()

	// Re-attaching reuses node storage and replaces the state.
	c.Insert(seq(1, 2, 3, 4, 5), 3, &model.HiddenState{Sketch: []float32{9}})
	n, _ = c.Lookup(seq(1, 2, 3))
	if got := n.Hidden().Sketch; len(got) != 1 || got[0] != 9 {
		t.Fatalf("re-attached hidden = %v", got)
	}
	n.Release()
}

func TestContinuationCountsAndWarmStart(t *testing.T) {
	c := New(Config{})
	// Same prompt, two completions; continuation 9 is observed twice, 8
	// once, at the prompt boundary.
	c.Insert(seq(1, 2, 9, 5), 2, nil)
	c.Insert(seq(1, 2, 9, 6), 2, nil)
	c.Insert(seq(1, 2, 8, 7), 2, nil)

	var got [][2]int // (promptLen, continuation)
	obs := observerFunc(func(tokens []int, promptLen int) {
		got = append(got, [2]int{promptLen, tokens[len(tokens)-1]})
	})
	replayed := c.WarmStart(obs)
	if replayed != len(got) || replayed == 0 {
		t.Fatalf("replayed %d pairs, callback saw %d", replayed, len(got))
	}
	// The boundary node (depth 2) must replay 8 before 9 (least-frequent
	// first, so the most frequent continuation wins in a most-recent-wins
	// index).
	var boundaryOrder []int
	for _, g := range got {
		if g[0] == 2 {
			boundaryOrder = append(boundaryOrder, g[1])
		}
	}
	if !reflect.DeepEqual(boundaryOrder, []int{8, 9}) {
		t.Fatalf("boundary replay order %v, want [8 9]", boundaryOrder)
	}

	// Determinism: a second replay produces the identical sequence.
	var got2 [][2]int
	c.WarmStart(observerFunc(func(tokens []int, promptLen int) {
		got2 = append(got2, [2]int{promptLen, tokens[len(tokens)-1]})
	}))
	if !reflect.DeepEqual(got, got2) {
		t.Fatal("WarmStart replay is not deterministic")
	}
}

type observerFunc func(tokens []int, promptLen int)

func (f observerFunc) Observe(tokens []int, promptLen int) { f(tokens, promptLen) }

func TestEvictionRespectsBudget(t *testing.T) {
	c := New(Config{BudgetBytes: 2048})
	for i := 0; i < 200; i++ {
		c.Insert(seq(i, i+1, i+2, i+3), 2, nil)
	}
	st := c.Stats()
	if st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("resident %d over budget %d with nothing pinned", st.ResidentBytes, st.BudgetBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under a tight budget")
	}
	if st.Nodes == 0 {
		t.Fatal("eviction emptied the cache entirely")
	}
}

func TestEvictionNeverFreesRetained(t *testing.T) {
	c := New(Config{BudgetBytes: 1024})
	pinned := seq(1000, 1001, 1002, 1003)
	c.Insert(pinned, len(pinned), nil)
	n, m := c.Lookup(pinned)
	if n == nil || m != len(pinned) {
		t.Fatalf("pinned lookup matched %d", m)
	}
	// Flood the cache; the pinned path must survive arbitrary eviction.
	for i := 0; i < 500; i++ {
		c.Insert(seq(i, i+1, i+2, i+3, i+4), 2, nil)
	}
	if got := c.MatchLen(pinned); got != len(pinned) {
		t.Fatalf("pinned prefix evicted: MatchLen = %d, want %d", got, len(pinned))
	}
	n.Release()
	// Once released, continued pressure may reclaim it.
	for i := 500; i < 1200; i++ {
		c.Insert(seq(i, i+1, i+2, i+3, i+4), 2, nil)
	}
	if st := c.Stats(); st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("resident %d over budget %d after release", st.ResidentBytes, st.BudgetBytes)
	}
}

func TestNegativeBudgetDisablesEviction(t *testing.T) {
	c := New(Config{BudgetBytes: -1})
	for i := 0; i < 300; i++ {
		c.Insert(seq(i, i+1, i+2), 0, nil)
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("evictions %d with eviction disabled", st.Evictions)
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	c := New(Config{})
	c.Insert(seq(1, 2), 0, nil)
	n, _ := c.Lookup(seq(1, 2))
	n.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	n.Release()
}

func TestStatsAccounting(t *testing.T) {
	c := New(Config{})
	c.Insert(seq(1, 2, 3, 4), 2, nil)
	if n, _ := c.Lookup(seq(1, 2, 3, 4)); n != nil {
		n.Release()
	}
	c.Lookup(seq(9, 9))
	st := c.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.HitRate != 0.5 {
		t.Fatalf("lookup accounting: %+v", st)
	}
	if st.SavedPositions != 4 {
		t.Fatalf("saved positions %d, want 4", st.SavedPositions)
	}
	if st.Inserts != 1 {
		t.Fatalf("inserts %d, want 1", st.Inserts)
	}
	if c.Len() != st.Nodes || c.ResidentBytes() != st.ResidentBytes {
		t.Fatal("probe accessors disagree with Stats")
	}
}

func TestHotPrefixesAndClear(t *testing.T) {
	c := New(Config{})
	a := []int{1, 2, 3, 4}
	b := []int{1, 2, 9, 9}
	c.Insert(a, 2, nil)
	c.Insert(b, 2, nil)
	// Touch a's path so it is most recently used.
	n, matched := c.Lookup(a)
	if n == nil || matched != len(a) {
		t.Fatalf("lookup a: matched %d", matched)
	}
	hot := c.HotPrefixes(2)
	if len(hot) != 2 {
		t.Fatalf("HotPrefixes returned %d prefixes", len(hot))
	}
	// The hottest prefix must be a path of a (a itself or a shared prefix).
	first := hot[0]
	for i, tok := range first {
		if i >= len(a) || tok != a[i] {
			t.Fatalf("hottest prefix %v is not a prefix of %v", first, a)
		}
	}
	if got := c.HotPrefixes(0); got != nil {
		t.Fatalf("HotPrefixes(0) = %v", got)
	}
	// Replaying hot prefixes into a fresh cache re-warms it.
	warm := New(Config{})
	for _, p := range c.HotPrefixes(64) {
		warm.Insert(p, len(p), nil)
	}
	if warm.MatchLen(a) != len(a) || warm.MatchLen(b) != len(b) {
		t.Fatalf("re-warmed cache misses: a=%d b=%d", warm.MatchLen(a), warm.MatchLen(b))
	}
	// Clear drops everything except the pinned path: b's tail goes, but
	// the [1 2] prefix it shares with the retained path survives.
	c.Clear()
	if c.MatchLen(b) != 2 {
		t.Fatalf("Clear: match(b) = %d, want 2 (shared pinned prefix only)", c.MatchLen(b))
	}
	if c.MatchLen(a) != len(a) {
		t.Fatalf("Clear evicted a retained path (match %d)", c.MatchLen(a))
	}
	n.Release()
	c.Clear()
	if c.Len() != 0 || c.MatchLen(a) != 0 {
		t.Fatalf("Clear after release left %d nodes", c.Len())
	}
	if got := c.ResidentBytes(); got != 0 {
		t.Fatalf("Clear left %d resident bytes", got)
	}
}
