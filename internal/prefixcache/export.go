// Cache-fabric surface of the prefix cache: ranked hot-prefix stats,
// self-contained subtree export/import (tokens + boundary hidden state),
// and the versioned eviction journal the fabric polls so its directory
// never dangles after a shard's LRU frees a node. None of this touches
// the Lookup/MatchLen hot paths; everything here may allocate.
package prefixcache

import (
	"sort"

	"fastrl/internal/model"
)

// PrefixStat is one ranked entry from HotPrefixStats: a full token prefix
// resident in the cache, how many Lookup walks terminated on it, and
// whether it carries a hidden state (i.e. ends on a prompt boundary).
type PrefixStat struct {
	Tokens   []int
	Hits     int64
	Boundary bool
}

// HotPrefixStats returns up to k resident prefixes ranked by Lookup hit
// count descending, ties broken by node-creation order (older first). The
// order is a pure function of the operation history — no map iteration,
// no timestamps — so fabric replication schedules built from it are
// deterministic under a fixed seed. Each Tokens slice is freshly
// allocated; the caller owns it.
func (c *Cache) HotPrefixStats(k int) []PrefixStat {
	if k <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ranked := make([]*Node, 0, c.nodes)
	for n := c.lru.next; n != &c.lru; n = n.next {
		ranked = append(ranked, n)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].hits != ranked[j].hits {
			return ranked[i].hits > ranked[j].hits
		}
		return ranked[i].seq < ranked[j].seq
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]PrefixStat, len(ranked))
	for i, n := range ranked {
		out[i] = PrefixStat{
			Tokens:   n.AppendTokens(nil),
			Hits:     n.hits,
			Boundary: n.hidden.Load() != nil,
		}
	}
	return out
}

// ExportedPrefix is a self-contained copy of one cached prefix, fit to
// ship across shards: the full token path, the hidden state at the
// deepest prompt boundary on it (nil when none is resident), and the hit
// count of the terminal node. Hidden is the cache's immutable state value
// — Import copies it into the destination, so the export can be shared.
type ExportedPrefix struct {
	Tokens    []int
	Hits      int64
	Hidden    *model.HiddenState
	HiddenLen int
}

// Export snapshots the prefix at tokens for replication. It fails (ok
// false) unless the full token run is resident — replicating a prefix the
// source has partially evicted would ship a stale directory claim.
func (c *Cache) Export(tokens []int) (ExportedPrefix, bool) {
	if len(tokens) == 0 {
		return ExportedPrefix{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.walk(tokens, false)
	if n == nil || n.depth != len(tokens) {
		return ExportedPrefix{}, false
	}
	ex := ExportedPrefix{
		Tokens:    append([]int(nil), tokens...),
		Hits:      n.hits,
		HiddenLen: len(tokens),
	}
	for b := n; b != nil && b.parent != nil; b = b.parent {
		if h := b.hidden.Load(); h != nil {
			ex.Hidden = h
			ex.HiddenLen = b.depth
			break
		}
	}
	return ex, true
}

// Import installs an exported prefix: the path is created, a node
// boundary is forced at HiddenLen, and the hidden state (if any) is
// attached there — exactly an Insert of the replicated sequence, so all
// budget/eviction/continuation accounting applies unchanged. Hit counts
// do not transfer; they are per-shard access statistics.
func (c *Cache) Import(p ExportedPrefix) *Node {
	return c.Insert(p.Tokens, p.HiddenLen, p.Hidden)
}

// EvictionRecord is one journaled eviction: a monotonically increasing
// sequence number and the full prefix of the removed node.
type EvictionRecord struct {
	Seq    uint64
	Tokens []int
}

// EvictionSeq returns the sequence number of the most recent eviction (0
// before any). It advances even when the journal is disabled.
func (c *Cache) EvictionSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictSeq
}

// EvictionsSince returns every journaled eviction with Seq > since in
// order, plus the new cursor and whether the range was complete. complete
// is false when the journal has wrapped past `since` (or is disabled
// entirely): the caller missed records and must treat its view of this
// cache as stale — the fabric responds by marking the shard's directory
// bits pending-invalidation and re-verifying them, never by assuming.
func (c *Cache) EvictionsSince(since uint64) (recs []EvictionRecord, cursor uint64, complete bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cursor = c.evictSeq
	if since >= c.evictSeq {
		return nil, cursor, true
	}
	if c.journalCap == 0 {
		return nil, cursor, false
	}
	oldest := uint64(1)
	if c.evictSeq > c.journalCap {
		oldest = c.evictSeq - c.journalCap + 1
	}
	complete = since+1 >= oldest
	from := since + 1
	if from < oldest {
		from = oldest
	}
	recs = make([]EvictionRecord, 0, c.evictSeq-from+1)
	for s := from; s <= c.evictSeq; s++ {
		recs = append(recs, c.journal[(s-1)%c.journalCap])
	}
	return recs, cursor, complete
}
