// Package prefixcache implements a shared radix (compressed trie) cache
// over token prefixes — the serving-side analogue of a paged KV prefix
// cache. Templated workloads send thousands of requests that open with the
// same system/few-shot prefix; every one of them pays full prefill even
// though the target state over the shared prefix is identical. The cache
// stores, per trie node, the target's hidden sketch at the prefix boundary
// (standing in for the resident KV pages of that prefix) plus harvested
// continuation statistics, so:
//
//   - the rollout engine can skip recomputing prefill positions covered by
//     a cached prefix (Lookup is the hot path: zero allocations per call);
//   - a freshly attached n-gram drafter can warm-start from the harvested
//     continuation counts (WarmStart replays them through Observe), giving
//     affinity-routed shards a hot drafter immediately;
//   - the cluster router can score shards by expected matched-prefix
//     length (MatchLen) and route measurement-driven instead of hashing
//     blindly.
//
// Residency is bounded by a byte budget with LRU eviction. Nodes are
// reference-counted: a request that resumed decoding from a cached prefix
// retains its node until the run completes, and eviction never frees a
// retained node (or any node with children, so a retained leaf pins its
// whole path). The cache contains no randomness — identical operation
// sequences produce identical trees, hit counts, and evictions.
package prefixcache

import (
	"sync"
	"sync/atomic"

	"fastrl/internal/metrics"
	"fastrl/internal/model"
)

// Approximate per-object resident-byte costs used by the eviction budget.
// They only need to be stable and roughly proportional to real memory so
// the budget is meaningful; exact malloc accounting is not the point.
const (
	nodeOverheadBytes   = 96 // struct, LRU links, map headers
	tokenBytes          = 8  // one label token
	childEntryBytes     = 16 // one children map entry
	contEntryBytes      = 16 // one continuation-count map entry
	hiddenOverheadBytes = 48 // HiddenState struct + slice headers
)

// DefaultBudgetBytes is the default eviction budget (1 MiB of modelled
// resident state, a few thousand nodes at typical prompt lengths).
const DefaultBudgetBytes = 1 << 20

// Config parameterises a Cache.
type Config struct {
	// BudgetBytes caps modelled resident bytes; eviction runs after every
	// insert until the cache fits (retained nodes are never evicted, so a
	// burst of in-flight requests can hold the cache over budget
	// transiently). 0 means DefaultBudgetBytes; negative disables eviction.
	BudgetBytes int64
	// JournalDepth bounds the versioned eviction journal consumed by the
	// cluster cache fabric (EvictionsSince). 0 disables the journal — the
	// default, so a cache outside a fabric pays nothing for it.
	JournalDepth int
}

// Cache is a shared, concurrency-safe radix prefix cache.
type Cache struct {
	mu   sync.Mutex
	root *Node
	// lru is a sentinel-headed doubly-linked list of every non-root node,
	// most recently used first.
	lru Node
	// resident is the modelled resident byte count.
	resident int64
	budget   int64

	// lookups is hit/miss accounting over Lookup calls (a lookup that
	// matches at least one token is a hit).
	lookups metrics.Ratio
	// saved accumulates matched prefix lengths returned by Lookup — the
	// prefill positions callers were able to skip.
	saved     metrics.Counter
	inserts   metrics.Counter
	evictions metrics.Counter
	nodes     int

	// nodeSeq numbers nodes in creation order; together with per-node hit
	// counts it gives HotPrefixes a deterministic total order.
	nodeSeq uint64
	// evictSeq versions evictions; journal is a bounded ring of the most
	// recent JournalDepth eviction records (nil when the journal is off).
	evictSeq   uint64
	journal    []EvictionRecord
	journalCap uint64
}

// Node is one radix-tree node: the compressed token run from its parent,
// optional cached hidden state at the prefix boundary it ends on, and
// continuation counts harvested from inserted sequences.
type Node struct {
	parent *Node
	// label is the edge token run from parent; nil only for the root and
	// the LRU sentinel.
	label []int
	// children is keyed by the first token of each child's label.
	children map[int]*Node
	// depth is the total prefix length from the root through label.
	depth int
	// refs counts in-flight requests decoding on top of this prefix.
	// Guarded by the cache lock for the 0→1 transition (Lookup); Release
	// is lock-free.
	refs atomic.Int32
	// hidden is the target hidden sketch at this prefix boundary (nil
	// until a completed request attaches one). It is an atomic pointer to
	// an immutable value: callers read Hidden() on nodes returned by
	// Lookup after the cache lock is released, concurrently with another
	// replica's Insert attaching a fresh state — attachHidden therefore
	// swaps in a new copy instead of mutating in place.
	hidden atomic.Pointer[model.HiddenState]
	// cont counts observed continuations: token that followed this prefix
	// -> occurrences.
	cont map[int]uint32
	// hits counts Lookup walks that terminated at this node and seq is the
	// creation sequence number; both guarded by the cache lock.
	hits int64
	seq  uint64

	prev, next *Node
}

// New builds an empty cache.
func New(cfg Config) *Cache {
	budget := cfg.BudgetBytes
	if budget == 0 {
		budget = DefaultBudgetBytes
	}
	c := &Cache{
		root:   &Node{children: make(map[int]*Node)},
		budget: budget,
	}
	if cfg.JournalDepth > 0 {
		c.journal = make([]EvictionRecord, cfg.JournalDepth)
		c.journalCap = uint64(cfg.JournalDepth)
	}
	c.lru.prev, c.lru.next = &c.lru, &c.lru
	return c
}

// Depth returns the prefix length this node represents.
func (n *Node) Depth() int { return n.depth }

// Hidden returns the cached hidden state at this prefix boundary, or nil.
// The returned state is immutable — a later Insert swaps in a new value
// rather than mutating it — so it stays valid (and race-free) after the
// call. Callers must not modify it.
func (n *Node) Hidden() *model.HiddenState { return n.hidden.Load() }

// Refs returns the current reference count (diagnostics and tests).
func (n *Node) Refs() int { return int(n.refs.Load()) }

// Release drops one reference taken by Lookup. The node becomes evictable
// again once its count reaches zero. Safe to call concurrently.
func (n *Node) Release() {
	if n == nil {
		return
	}
	if n.refs.Add(-1) < 0 {
		panic("prefixcache: Release without matching Lookup")
	}
}

// AppendTokens appends the full token prefix this node represents to dst
// and returns it (root-to-node order).
func (n *Node) AppendTokens(dst []int) []int {
	if n == nil || n.parent == nil {
		return dst
	}
	dst = n.parent.AppendTokens(dst)
	return append(dst, n.label...)
}

// Lookup walks the deepest chain of fully-matched edges for tokens and
// returns the deepest node together with its matched prefix length. The
// returned node is retained: the caller must Release it when it no longer
// depends on the cached prefix state. A miss returns (nil, 0) and retains
// nothing. Matched nodes are touched to the front of the LRU order.
//
// Lookup is the routing/prefill hot path and performs no heap allocations.
func (c *Cache) Lookup(tokens []int) (*Node, int) {
	c.mu.Lock()
	n := c.walk(tokens, true)
	var matched int
	if n != nil {
		matched = n.depth
		n.refs.Add(1)
		n.hits++
	}
	c.lookups.Observe(n != nil)
	c.saved.Add(int64(matched))
	c.mu.Unlock()
	return n, matched
}

// MatchLen returns the matched prefix length Lookup would report, without
// retaining anything, touching the LRU order, or counting toward the
// hit-rate accounting. It is the router probe: cache-aware routing calls
// it once per live shard per request, so it must not allocate.
func (c *Cache) MatchLen(tokens []int) int {
	c.mu.Lock()
	n := c.walk(tokens, false)
	c.mu.Unlock()
	if n == nil {
		return 0
	}
	return n.depth
}

// walk descends fully-matched edges and returns the deepest non-root node
// reached, nil when not even the first edge matched. touch moves every
// matched node to the LRU front. Caller holds c.mu.
func (c *Cache) walk(tokens []int, touch bool) *Node {
	cur := c.root
	pos := 0
	var deepest *Node
	for pos < len(tokens) {
		child, ok := cur.children[tokens[pos]]
		if !ok {
			break
		}
		if len(tokens)-pos < len(child.label) || !labelMatches(child.label, tokens[pos:]) {
			break
		}
		pos += len(child.label)
		cur = child
		deepest = child
		if touch {
			c.touch(child)
		}
	}
	return deepest
}

func labelMatches(label, tokens []int) bool {
	for i, t := range label {
		if tokens[i] != t {
			return false
		}
	}
	return true
}

// Insert records one completed sequence (prompt + response) into the
// cache: the path is created (splitting compressed edges as needed),
// continuation counts along it are incremented, node boundaries are forced
// at promptLen and len(tokens), and hidden — if non-nil — is attached to
// the node at the promptLen boundary (copied; the cache owns its storage).
// It returns the node at the prompt boundary (not retained) and runs
// eviction until the cache fits its budget. Inserting an empty sequence is
// a no-op returning nil.
func (c *Cache) Insert(tokens []int, promptLen int, hidden *model.HiddenState) *Node {
	if len(tokens) == 0 {
		return nil
	}
	if promptLen < 0 {
		promptLen = 0
	}
	if promptLen > len(tokens) {
		promptLen = len(tokens)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inserts.Inc()

	cur := c.root
	pos := 0
	// boundary is the node ending exactly at promptLen; stays nil when
	// promptLen is 0 (the root carries no state).
	var boundary *Node
	for pos < len(tokens) {
		child, ok := cur.children[tokens[pos]]
		if !ok {
			// No edge: create the remaining path, with a forced boundary
			// at promptLen when it falls inside this new run.
			end := len(tokens)
			if promptLen > pos && promptLen < end {
				end = promptLen
			}
			child = c.newNode(cur, tokens[pos:end])
			pos = end
			cur = child
			continue
		}
		// Shared run length between the edge label and remaining tokens,
		// clipped so a node boundary lands exactly on promptLen.
		share := sharedLen(child.label, tokens[pos:])
		if promptLen > pos && promptLen < pos+share {
			share = promptLen - pos
		}
		if share < len(child.label) {
			child = c.split(child, share)
		}
		pos += share
		cur = child
	}
	// Harvest continuation counts and locate the prompt boundary by
	// walking back up the freshly-ensured path (every node on it is an
	// ancestor of cur).
	for n := cur; n != nil && n.parent != nil; n = n.parent {
		if n.depth < len(tokens) {
			c.addCont(n, tokens[n.depth])
		}
		if n.depth == promptLen {
			boundary = n
		}
	}
	if boundary != nil && hidden != nil {
		c.attachHidden(boundary, hidden)
	}
	c.evict()
	return boundary
}

// newNode creates a child of parent with the given label run (copied) and
// links it into the tree, LRU order, and byte accounting.
func (c *Cache) newNode(parent *Node, run []int) *Node {
	c.nodeSeq++
	n := &Node{
		parent: parent,
		label:  append([]int(nil), run...),
		depth:  parent.depth + len(run),
		seq:    c.nodeSeq,
	}
	if parent.children == nil {
		parent.children = make(map[int]*Node, 1)
	}
	parent.children[run[0]] = n
	c.nodes++
	c.resident += nodeOverheadBytes + int64(len(run))*tokenBytes + childEntryBytes
	c.lruPushFront(n)
	return n
}

// split cuts node's label at offset k (0 < k < len(label)), inserting a
// new mid node above it. The original node keeps its payload, references,
// and identity (so retained pointers stay valid); the mid node is fresh.
func (c *Cache) split(n *Node, k int) *Node {
	c.nodeSeq++
	mid := &Node{
		parent:   n.parent,
		label:    n.label[:k:k],
		children: map[int]*Node{n.label[k]: n},
		depth:    n.depth - len(n.label) + k,
		seq:      c.nodeSeq,
	}
	n.parent.children[n.label[0]] = mid
	n.parent = mid
	n.label = n.label[k:]
	c.nodes++
	// One extra node plus one extra child entry; label tokens are split,
	// not duplicated (both halves alias the original backing array).
	c.resident += nodeOverheadBytes + childEntryBytes
	c.lruPushFront(mid)
	return mid
}

func (c *Cache) addCont(n *Node, tok int) {
	if n.cont == nil {
		n.cont = make(map[int]uint32, 1)
	}
	if _, ok := n.cont[tok]; !ok {
		c.resident += contEntryBytes
	}
	n.cont[tok]++
}

// attachHidden swaps a copy of h into the node. The copy is fresh, never
// an in-place update: a reader that loaded the previous pointer via
// Hidden() keeps a consistent value. Byte accounting stays under c.mu
// (all writers hold it); only the pointer swap is atomic.
func (c *Cache) attachHidden(n *Node, h *model.HiddenState) {
	if old := n.hidden.Load(); old != nil {
		c.resident -= hiddenBytes(old)
	}
	fresh := &model.HiddenState{
		Sketch:    append([]float32(nil), h.Sketch...),
		TopTokens: append([]int(nil), h.TopTokens...),
	}
	n.hidden.Store(fresh)
	c.resident += hiddenBytes(fresh)
}

func hiddenBytes(h *model.HiddenState) int64 {
	return hiddenOverheadBytes + int64(cap(h.Sketch))*4 + int64(cap(h.TopTokens))*tokenBytes
}

// evict frees least-recently-used leaves until the cache fits its budget.
// Nodes with live references or children are skipped: a retained leaf pins
// itself, and interior nodes become evictable only once their subtrees
// have been reclaimed. Each outer iteration is one full tail-to-head
// sweep that frees every evictable node it passes (not one node per
// scan, which would re-walk the unevictable tail per eviction); a follow
// -up sweep only runs when the previous one freed something but the
// budget still isn't met — e.g. interior nodes that became leaves behind
// the sweep point. Caller holds c.mu.
func (c *Cache) evict() {
	if c.budget < 0 {
		return
	}
	for c.resident > c.budget {
		freed := 0
		for n := c.lru.prev; n != &c.lru && c.resident > c.budget; {
			prev := n.prev
			if len(n.children) == 0 && n.refs.Load() == 0 {
				c.remove(n)
				freed++
			}
			n = prev
		}
		if freed == 0 {
			return // everything left is pinned; stay over budget
		}
	}
}

// remove unlinks a childless node from the tree, LRU order, and byte
// accounting, journaling the eviction when a journal is configured.
// Caller holds c.mu.
func (c *Cache) remove(n *Node) {
	c.evictSeq++
	if c.journalCap > 0 {
		c.journal[(c.evictSeq-1)%c.journalCap] = EvictionRecord{
			Seq:    c.evictSeq,
			Tokens: n.AppendTokens(nil),
		}
	}
	delete(n.parent.children, n.label[0])
	c.lruUnlink(n)
	c.nodes--
	c.evictions.Inc()
	c.resident -= nodeOverheadBytes + int64(len(n.label))*tokenBytes + childEntryBytes
	c.resident -= int64(len(n.cont)) * contEntryBytes
	if h := n.hidden.Load(); h != nil {
		c.resident -= hiddenBytes(h)
	}
	n.parent = nil
}

func (c *Cache) lruPushFront(n *Node) {
	n.prev = &c.lru
	n.next = c.lru.next
	n.prev.next = n
	n.next.prev = n
}

func (c *Cache) lruUnlink(n *Node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

func (c *Cache) touch(n *Node) {
	c.lruUnlink(n)
	c.lruPushFront(n)
}

func sharedLen(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Stats is a point-in-time accounting snapshot.
type Stats struct {
	// Lookups/Hits/HitRate cover Lookup calls (MatchLen probes excluded).
	Lookups int64
	Hits    int64
	HitRate float64
	// SavedPositions is the cumulative matched prefix length over all
	// lookups — prefill positions callers skipped recomputing.
	SavedPositions int64
	Inserts        int64
	Evictions      int64
	Nodes          int
	ResidentBytes  int64
	BudgetBytes    int64
}

// Stats returns the current snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	nodes, resident := c.nodes, c.resident
	c.mu.Unlock()
	return Stats{
		Lookups:        c.lookups.Total(),
		Hits:           c.lookups.Hits(),
		HitRate:        c.lookups.Rate(),
		SavedPositions: c.saved.Load(),
		Inserts:        c.inserts.Load(),
		Evictions:      c.evictions.Load(),
		Nodes:          nodes,
		ResidentBytes:  resident,
		BudgetBytes:    c.budget,
	}
}

// HotPrefixes returns up to k full token prefixes ranked hottest first —
// the re-warm set a revived shard replays through Insert to come back hot
// instead of cold. Ranking is by per-node Lookup hit count descending with
// node-creation order breaking ties, so the order is a pure function of
// the operation history: equal hit counts never reorder across runs and
// fabric replication driven by this list is seed-reproducible. Each
// returned slice is freshly allocated; the caller owns it.
func (c *Cache) HotPrefixes(k int) [][]int {
	stats := c.HotPrefixStats(k)
	if stats == nil {
		return nil
	}
	out := make([][]int, len(stats))
	for i, s := range stats {
		out[i] = s.Tokens
	}
	return out
}

// Clear drops every unpinned node (retained paths survive, like eviction),
// resetting the cache for a cold restart. Byte and node accounting stay
// consistent; hit/insert counters are not reset.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		freed := 0
		for n := c.lru.prev; n != &c.lru; {
			prev := n.prev
			if len(n.children) == 0 && n.refs.Load() == 0 {
				c.remove(n)
				freed++
			}
			n = prev
		}
		if freed == 0 {
			return
		}
	}
}

// HitRate returns the Lookup hit rate (0 before the first lookup).
func (c *Cache) HitRate() float64 { return c.lookups.Rate() }

// ResidentBytes returns the modelled resident byte count.
func (c *Cache) ResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}

// Len returns the number of resident nodes.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes
}

// RegisterMetrics registers the cache's point-in-time probes as gauges
// under the given name prefix (e.g. "cache/"). The probes take only the
// cache's own lock, so they are safe to sample from inside a registry
// snapshot.
func (c *Cache) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.Gauge(prefix+"hit_rate", c.HitRate)
	reg.Gauge(prefix+"resident_bytes", func() float64 { return float64(c.ResidentBytes()) })
	reg.Gauge(prefix+"nodes", func() float64 { return float64(c.Len()) })
}
