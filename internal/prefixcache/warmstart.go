package prefixcache

import "sort"

// Observer is the online-learning drafter surface the cache replays into.
// draft.Observer satisfies it; the local declaration keeps prefixcache
// decoupled from the draft package.
type Observer interface {
	Observe(tokens []int, promptLen int)
}

// WarmStart replays the cache's harvested continuation statistics into an
// online drafter: for every node with continuation counts, each observed
// (prefix, next-token) pair is replayed once through obs.Observe with
// promptLen set to the prefix length, so only the continuation position is
// indexed. Continuations are replayed least-frequent first, which leaves
// the most frequent continuation as the drafter's retained entry for
// most-recent-wins indexes like draft.NGram. The walk order is
// deterministic (children sorted by first label token).
//
// A fresh shard attached to a warm cache — a scaler re-promotion, a
// redeploy over surviving cache state — calls this once at construction so
// its drafter starts hot instead of relearning the traffic it is about to
// receive. Returns the number of replayed pairs.
//
// WarmStart holds the cache lock for the duration of the walk; it is a
// construction-time operation, not a hot path.
func (c *Cache) WarmStart(obs Observer) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf := make([]int, 0, 64)
	type contEntry struct {
		tok   int
		count uint32
	}
	var entries []contEntry
	var replayed int
	var visit func(n *Node)
	visit = func(n *Node) {
		buf = append(buf, n.label...)
		if len(n.cont) > 0 {
			entries = entries[:0]
			for tok, cnt := range n.cont {
				entries = append(entries, contEntry{tok, cnt})
			}
			sort.Slice(entries, func(i, j int) bool {
				if entries[i].count != entries[j].count {
					return entries[i].count < entries[j].count
				}
				return entries[i].tok < entries[j].tok
			})
			for _, e := range entries {
				seq := append(buf, e.tok)
				obs.Observe(seq, len(buf))
				replayed++
			}
		}
		for _, tok := range sortedChildKeys(n) {
			visit(n.children[tok])
		}
		buf = buf[:len(buf)-len(n.label)]
	}
	for _, tok := range sortedChildKeys(c.root) {
		visit(c.root.children[tok])
	}
	return replayed
}

// sortedChildKeys returns a node's children map keys in ascending order so
// tree walks are deterministic.
func sortedChildKeys(n *Node) []int {
	if len(n.children) == 0 {
		return nil
	}
	keys := make([]int, 0, len(n.children))
	for k := range n.children {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
