package prefixcache

import (
	"math/rand"
	"reflect"
	"testing"

	"fastrl/internal/model"
)

// checkInvariants walks the whole tree and verifies structural and
// accounting invariants after an arbitrary operation interleaving:
//   - parent/child links are consistent and child map keys match labels;
//   - depths equal the cumulative label length;
//   - every node is on the LRU list exactly once (and vice versa);
//   - recomputed resident bytes match the incremental accounting;
//   - every retained node is still reachable from the root.
func checkInvariants(t *testing.T, c *Cache, retained map[*Node][]int) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()

	onLRU := map[*Node]bool{}
	for n := c.lru.next; n != &c.lru; n = n.next {
		if onLRU[n] {
			t.Fatal("node appears twice on the LRU list")
		}
		onLRU[n] = true
	}

	var resident int64
	var nodes int
	seen := map[*Node]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		for first, child := range n.children {
			if child.parent != n {
				t.Fatal("child parent link broken")
			}
			if len(child.label) == 0 || child.label[0] != first {
				t.Fatalf("child key %d does not match label %v", first, child.label)
			}
			if child.depth != n.depth+len(child.label) {
				t.Fatalf("depth %d != parent %d + label %d", child.depth, n.depth, len(child.label))
			}
			if !onLRU[child] {
				t.Fatal("tree node missing from LRU list")
			}
			seen[child] = true
			nodes++
			resident += nodeOverheadBytes + int64(len(child.label))*tokenBytes + childEntryBytes
			resident += int64(len(child.cont)) * contEntryBytes
			if h := child.hidden.Load(); h != nil {
				resident += hiddenBytes(h)
			}
			visit(child)
		}
	}
	visit(c.root)

	if nodes != c.nodes {
		t.Fatalf("node count %d != accounted %d", nodes, c.nodes)
	}
	if resident != c.resident {
		t.Fatalf("recomputed resident %d != accounted %d", resident, c.resident)
	}
	for n := range onLRU {
		if !seen[n] {
			t.Fatal("LRU node not reachable from root (freed node still listed?)")
		}
	}
	for n, tokens := range retained {
		if !seen[n] {
			t.Fatalf("retained node for %v was evicted", tokens)
		}
	}
}

// TestPropertyEvictionAndLookup drives a random interleaving of inserts,
// lookups (some retained across later operations), releases, and
// budget-pressure evictions, checking after every step that (a) no node
// with live references is freed and (b) Lookup always returns a true
// prefix of its query with matching node depth.
func TestPropertyEvictionAndLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	c := New(Config{BudgetBytes: 8 << 10})

	// A templated population: few shared prefixes, many suffixes, so
	// lookups hit at varying depths and edges split often.
	prefixes := make([][]int, 6)
	for i := range prefixes {
		p := make([]int, 4+rng.Intn(6))
		for j := range p {
			p[j] = rng.Intn(40)
		}
		prefixes[i] = p
	}
	mkSeq := func() ([]int, int) {
		p := prefixes[rng.Intn(len(prefixes))]
		s := append([]int(nil), p...)
		for j, n := 0, 1+rng.Intn(8); j < n; j++ {
			s = append(s, rng.Intn(40))
		}
		return s, len(p)
	}

	retained := map[*Node][]int{}
	var handles []*Node
	for step := 0; step < 3000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // insert, sometimes with a hidden state attached
			s, pl := mkSeq()
			var hid *model.HiddenState
			if rng.Intn(3) == 0 {
				hid = &model.HiddenState{Sketch: []float32{1, 2}, TopTokens: []int{3}}
			}
			c.Insert(s, pl, hid)
		case 4, 5, 6: // lookup, sometimes retain across future steps
			q, _ := mkSeq()
			n, m := c.Lookup(q)
			if n == nil {
				if m != 0 {
					t.Fatalf("nil node with matched %d", m)
				}
				break
			}
			if m != n.Depth() {
				t.Fatalf("matched %d != node depth %d", m, n.Depth())
			}
			if got := n.AppendTokens(nil); !reflect.DeepEqual(got, q[:m]) {
				t.Fatalf("step %d: node tokens %v are not a true prefix of %v", step, got, q)
			}
			if rng.Intn(3) == 0 {
				retained[n] = append([]int(nil), q[:m]...)
				handles = append(handles, n)
			} else {
				n.Release()
			}
		case 7: // release one retained handle
			if len(handles) > 0 {
				i := rng.Intn(len(handles))
				n := handles[i]
				n.Release()
				if n.Refs() == 0 {
					delete(retained, n)
				}
				handles = append(handles[:i], handles[i+1:]...)
			}
		default: // heavy insert burst to force eviction pressure
			for k := 0; k < 5; k++ {
				s, pl := mkSeq()
				c.Insert(s, pl, nil)
			}
		}
		if step%50 == 0 {
			checkInvariants(t, c, retained)
		}
	}
	checkInvariants(t, c, retained)

	// Drain all handles; the cache must then be able to honour its budget.
	for _, n := range handles {
		n.Release()
	}
	c.Insert([]int{1, 2, 3}, 0, nil) // trigger one more eviction pass
	if st := c.Stats(); st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("resident %d over budget %d with nothing retained", st.ResidentBytes, st.BudgetBytes)
	}
}

// TestPropertyDeterministic pins cache determinism: two caches fed the
// identical operation sequence end in identical stats and answer identical
// lookups.
func TestPropertyDeterministic(t *testing.T) {
	run := func() (Stats, []int) {
		rng := rand.New(rand.NewSource(42))
		c := New(Config{BudgetBytes: 4 << 10})
		var matches []int
		for i := 0; i < 1500; i++ {
			s := make([]int, 3+rng.Intn(10))
			for j := range s {
				s[j] = rng.Intn(25)
			}
			if rng.Intn(2) == 0 {
				c.Insert(s, len(s)/2, nil)
			} else {
				n, m := c.Lookup(s)
				matches = append(matches, m)
				if n != nil {
					n.Release()
				}
			}
		}
		return c.Stats(), matches
	}
	s1, m1 := run()
	s2, m2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("lookup results diverged under identical seeds")
	}
}
