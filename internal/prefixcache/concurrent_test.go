package prefixcache

import (
	"math/rand"
	"sync"
	"testing"

	"fastrl/internal/model"
)

// TestConcurrentSharedCache hammers one cache from several goroutines —
// the shape of serving replicas sharing a shard cache while the router
// probes MatchLen — so the -race job covers the lock discipline. The
// final invariant sweep reuses the property-test checker.
func TestConcurrentSharedCache(t *testing.T) {
	c := New(Config{BudgetBytes: 32 << 10})
	prefixes := [][]int{
		{1, 2, 3, 4, 5, 6},
		{9, 8, 7, 6, 5},
		{4, 4, 4, 4},
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			hid := &model.HiddenState{Sketch: []float32{1, 2, 3, 4}, TopTokens: []int{1, 2}}
			for i := 0; i < 400; i++ {
				p := prefixes[rng.Intn(len(prefixes))]
				s := append(append([]int(nil), p...), rng.Intn(30), rng.Intn(30), rng.Intn(30))
				switch i % 3 {
				case 0:
					// Attach hidden state on half the inserts so the
					// attachHidden swap races against the readers below.
					if i%2 == 0 {
						c.Insert(s, len(p), hid)
					} else {
						c.Insert(s, len(p), nil)
					}
				case 1:
					n, m := c.Lookup(s)
					if n != nil {
						if m != n.Depth() {
							t.Errorf("matched %d != depth %d", m, n.Depth())
						}
						// Read the hidden state lock-free, as the rollout
						// prefill path does.
						if h := n.Hidden(); h != nil && len(h.Sketch) == 0 {
							t.Error("torn hidden state")
						}
						n.Release()
					}
				default:
					c.MatchLen(s)
				}
			}
		}(w)
	}
	wg.Wait()
	checkInvariants(t, c, nil)
	// One quiescent insert runs a final eviction pass (a concurrent
	// lookup may have pinned nodes during the last in-flight insert's
	// eviction); with nothing retained the budget must then hold.
	c.Insert([]int{99, 98, 97}, 0, nil)
	if st := c.Stats(); st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("resident %d over budget %d after drain", st.ResidentBytes, st.BudgetBytes)
	}
}
