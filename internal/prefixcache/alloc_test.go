package prefixcache

import (
	"math/rand"
	"testing"
)

// allocSetup builds a populated cache plus a query mix of hits at varying
// depths and misses.
func allocSetup() (*Cache, [][]int) {
	rng := rand.New(rand.NewSource(7))
	c := New(Config{})
	prefix := make([]int, 24)
	for i := range prefix {
		prefix[i] = rng.Intn(50)
	}
	var queries [][]int
	for i := 0; i < 32; i++ {
		s := append(append([]int(nil), prefix...), rng.Intn(50), rng.Intn(50), rng.Intn(50))
		c.Insert(s, len(prefix), nil)
		queries = append(queries, s)
	}
	// Misses and partial matches.
	queries = append(queries, []int{99, 98, 97}, prefix[:10], append(append([]int(nil), prefix...), 99))
	return c, queries
}

// TestLookupZeroAlloc pins the cache's Lookup/Release and MatchLen hot
// paths at zero heap allocations per call, matching the repo's perf
// methodology (ROADMAP: steady-state hot paths stay at 0 allocs/op).
func TestLookupZeroAlloc(t *testing.T) {
	c, queries := allocSetup()
	if avg := testing.AllocsPerRun(1000, func() {
		for _, q := range queries {
			n, _ := c.Lookup(q)
			n.Release()
		}
	}); avg != 0 {
		t.Errorf("Lookup+Release: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		for _, q := range queries {
			c.MatchLen(q)
		}
	}); avg != 0 {
		t.Errorf("MatchLen: %v allocs/op, want 0", avg)
	}
}

func BenchmarkLookup(b *testing.B) {
	c, queries := allocSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		n, _ := c.Lookup(q)
		n.Release()
	}
}

func BenchmarkMatchLen(b *testing.B) {
	c, queries := allocSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MatchLen(queries[i%len(queries)])
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := New(Config{BudgetBytes: 1 << 18})
	seqs := make([][]int, 256)
	for i := range seqs {
		s := make([]int, 16+rng.Intn(16))
		for j := range s {
			s[j] = rng.Intn(40)
		}
		seqs[i] = s
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(seqs[i%len(seqs)], 8, nil)
	}
}
