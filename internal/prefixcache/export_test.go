package prefixcache

import (
	"reflect"
	"testing"

	"fastrl/internal/model"
)

// TestHotPrefixesDeterministicTieBreak pins the fabric-facing ordering
// contract: HotPrefixes ranks by Lookup hit count descending with
// node-creation order breaking ties — never MRU recency, never map
// order — so two caches fed the same operation sequence return the same
// list and fabric replication built on it is seed-reproducible.
func TestHotPrefixesDeterministicTieBreak(t *testing.T) {
	build := func() *Cache {
		c := New(Config{})
		c.Insert([]int{1, 1, 1}, 3, nil)
		c.Insert([]int{2, 2, 2}, 3, nil)
		c.Insert([]int{3, 3, 3}, 3, nil)
		for _, p := range [][]int{{2, 2, 2}, {2, 2, 2}, {3, 3, 3}, {1, 1, 1}} {
			n, _ := c.Lookup(p)
			n.Release()
		}
		return c
	}
	c := build()
	got := c.HotPrefixes(3)
	// Hits: {2,2,2}=2, {1,1,1}=1, {3,3,3}=1. The 1-hit tie breaks by
	// creation order ({1,1,1} was inserted first), NOT by recency (the
	// {3,3,3} lookup is more recent) — the regression the old MRU
	// ordering would fail.
	want := [][]int{{2, 2, 2}, {1, 1, 1}, {3, 3, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HotPrefixes = %v, want %v", got, want)
	}
	for run := 0; run < 3; run++ {
		if again := build().HotPrefixes(3); !reflect.DeepEqual(again, got) {
			t.Fatalf("run %d: HotPrefixes not reproducible: %v vs %v", run, again, got)
		}
	}
	stats := c.HotPrefixStats(3)
	if len(stats) != 3 || stats[0].Hits != 2 || stats[1].Hits != 1 || stats[2].Hits != 1 {
		t.Fatalf("HotPrefixStats hits = %+v", stats)
	}
}

// TestExportImport round-trips a cached prefix — tokens, prompt-boundary
// hidden state, boundary position — into a fresh cache, the mechanism
// fabric replication and warm handoff are built on.
func TestExportImport(t *testing.T) {
	src := New(Config{})
	hid := &model.HiddenState{Sketch: []float32{1, 2, 3}, TopTokens: []int{7, 8}}
	seq := []int{1, 2, 3, 4, 5} // prompt [1 2 3], response [4 5]
	src.Insert(seq, 3, hid)

	if _, ok := src.Export([]int{9, 9}); ok {
		t.Fatal("Export of a non-resident prefix succeeded")
	}
	if _, ok := src.Export(nil); ok {
		t.Fatal("Export(nil) succeeded")
	}
	ex, ok := src.Export(seq)
	if !ok {
		t.Fatal("Export of a resident prefix failed")
	}
	if ex.HiddenLen != 3 || ex.Hidden == nil {
		t.Fatalf("export boundary = %d (hidden %v), want 3 with state", ex.HiddenLen, ex.Hidden)
	}

	dst := New(Config{})
	dst.Import(ex)
	if dst.MatchLen(seq) != len(seq) {
		t.Fatalf("imported prefix matches %d of %d", dst.MatchLen(seq), len(seq))
	}
	n, matched := dst.Lookup([]int{1, 2, 3})
	defer n.Release()
	if matched != 3 || n.Hidden() == nil {
		t.Fatalf("boundary after import: matched=%d hidden=%v", matched, n.Hidden())
	}
	if got := n.Hidden().Sketch; !reflect.DeepEqual(got, hid.Sketch) {
		t.Fatalf("hidden sketch = %v, want %v", got, hid.Sketch)
	}
	// The import copied the state: mutating the destination's copy must
	// not reach the source (and vice versa).
	if n.Hidden() == hid || n.Hidden() == ex.Hidden {
		t.Fatal("import shares hidden storage with the exporter")
	}
}

// TestEvictionJournal pins the versioned eviction-notification contract:
// records carry monotonically increasing sequence numbers and the full
// evicted prefix, EvictionsSince replays exactly the missed suffix, and
// a consumer that falls behind a wrapped ring is told its view is
// incomplete instead of being handed a silent gap.
func TestEvictionJournal(t *testing.T) {
	// A budget this small forces eviction on nearly every insert.
	c := New(Config{BudgetBytes: 600, JournalDepth: 4})
	for i := 0; i < 12; i++ {
		c.Insert([]int{100 + i, 200 + i, 300 + i, 400 + i}, 4, nil)
	}
	total := c.EvictionSeq()
	if total == 0 {
		t.Fatal("budget pressure produced no evictions")
	}

	recs, cursor, complete := c.EvictionsSince(0)
	if cursor != total {
		t.Fatalf("cursor = %d, want %d", cursor, total)
	}
	if total > 4 && complete {
		t.Fatal("wrapped journal claimed the range since 0 was complete")
	}
	want := total - 4
	if total < 4 {
		want = 0
	}
	for i, r := range recs {
		if r.Seq != want+uint64(i)+1 {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, want+uint64(i)+1)
		}
		if len(r.Tokens) == 0 {
			t.Fatalf("record %d has empty prefix", i)
		}
	}

	// A caught-up consumer sees a complete (possibly empty) suffix.
	if _, _, complete := c.EvictionsSince(cursor); !complete {
		t.Fatal("caught-up consumer reported incomplete")
	}
	before := c.EvictionSeq()
	c.Insert([]int{1, 2, 3, 4}, 4, nil)
	recs, _, complete = c.EvictionsSince(before)
	if !complete {
		t.Fatal("one-step-behind consumer reported incomplete")
	}
	for _, r := range recs {
		if r.Seq <= before {
			t.Fatalf("replayed already-consumed seq %d (cursor %d)", r.Seq, before)
		}
	}

	// Journal disabled: sequence still advances, reads are never complete
	// once behind.
	off := New(Config{BudgetBytes: 600})
	for i := 0; i < 12; i++ {
		off.Insert([]int{100 + i, 200 + i, 300 + i, 400 + i}, 4, nil)
	}
	if off.EvictionSeq() == 0 {
		t.Fatal("disabled journal froze the eviction sequence")
	}
	if _, _, complete := off.EvictionsSince(0); complete {
		t.Fatal("disabled journal claimed completeness for a stale reader")
	}
}
