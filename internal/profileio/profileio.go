// Package profileio exports and renders rollout profiles and worker
// timelines: CSV for plotting, ASCII charts for terminals. It backs
// cmd/tltprofile and the utilisation analyses in the experiments.
package profileio

import (
	"fmt"
	"io"
	"strings"
	"time"

	"fastrl/internal/rollout"
	"fastrl/internal/vclock"
)

// WriteCSV emits one row per engine iteration.
func WriteCSV(w io.Writer, profile []rollout.StepProfile) error {
	if _, err := fmt.Fprintln(w, "t_seconds,running,mode,depth,topk,verify,tokens_out"); err != nil {
		return err
	}
	for _, p := range profile {
		if _, err := fmt.Fprintf(w, "%.6f,%d,%s,%d,%d,%d,%d\n",
			p.End.Seconds(), p.Running, p.Mode, p.Strategy.DraftDepth,
			p.Strategy.TopK, p.Strategy.TokensToVerify, p.TokensOut); err != nil {
			return err
		}
	}
	return nil
}

// RenderRunning draws an ASCII chart of the running-request count over
// time (the Fig. 14 profile): one column per time bucket, height rows.
func RenderRunning(profile []rollout.StepProfile, width, height int) string {
	if len(profile) == 0 || width < 2 || height < 2 {
		return ""
	}
	end := profile[len(profile)-1].End
	if end <= 0 {
		return ""
	}
	maxRun := 0
	for _, p := range profile {
		if p.Running > maxRun {
			maxRun = p.Running
		}
	}
	if maxRun == 0 {
		return ""
	}
	// Bucket the profile by time; record max running and SD presence.
	buckets := make([]int, width)
	sd := make([]bool, width)
	for _, p := range profile {
		b := int(float64(p.End) / float64(end) * float64(width-1))
		if p.Running > buckets[b] {
			buckets[b] = p.Running
		}
		if p.Mode == rollout.ModeSD {
			sd[b] = true
		}
	}
	// Carry values forward through empty buckets.
	for b := 1; b < width; b++ {
		if buckets[b] == 0 {
			buckets[b] = buckets[b-1]
			sd[b] = sd[b-1]
		}
	}
	var sb strings.Builder
	for row := height; row >= 1; row-- {
		thresh := float64(row) / float64(height) * float64(maxRun)
		fmt.Fprintf(&sb, "%4d |", int(thresh))
		for b := 0; b < width; b++ {
			switch {
			case float64(buckets[b]) >= thresh && sd[b]:
				sb.WriteByte('#') // SD-mode region
			case float64(buckets[b]) >= thresh:
				sb.WriteByte('*') // vanilla region
			default:
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("     +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&sb, "      0%*s\n", width, fmt.Sprintf("%.2fs", end.Seconds()))
	sb.WriteString("      running requests over time ('#' = speculative decoding active)\n")
	return sb.String()
}

// UtilizationReport summarises per-worker busy fractions over [0, end).
type UtilizationReport struct {
	Worker   int
	Busy     float64
	SpotUsed float64
}

// Utilization computes per-worker utilisation from timelines: Busy counts
// rollout work (prefill/decode/sd spans), SpotUsed counts drafter
// training.
func Utilization(timelines []*vclock.Timeline, end time.Duration) []UtilizationReport {
	out := make([]UtilizationReport, 0, len(timelines))
	for i, tl := range timelines {
		out = append(out, UtilizationReport{
			Worker:   i,
			Busy:     tl.Utilization(0, end, "prefill", "decode", "sd", "sd-switch"),
			SpotUsed: tl.Utilization(0, end, "spot-train"),
		})
	}
	return out
}

// RenderGantt draws one row per worker, marking rollout work '#', spot
// training 'S', and idle '.' over [0, end).
func RenderGantt(timelines []*vclock.Timeline, end time.Duration, width int) string {
	if end <= 0 || width < 2 {
		return ""
	}
	var sb strings.Builder
	for i, tl := range timelines {
		fmt.Fprintf(&sb, "w%-3d |", i)
		step := end / time.Duration(width)
		if step <= 0 {
			step = 1
		}
		for b := 0; b < width; b++ {
			from := time.Duration(b) * step
			to := from + step
			switch {
			case tl.BusyWithin(from, to, "spot-train") > 0:
				sb.WriteByte('S')
			case tl.BusyWithin(from, to, "prefill", "decode", "sd", "sd-switch") > step/2:
				sb.WriteByte('#')
			case tl.BusyWithin(from, to) > 0:
				sb.WriteByte('+')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("      '#' rollout  'S' spot training  '.' idle\n")
	return sb.String()
}
