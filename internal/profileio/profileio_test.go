package profileio

import (
	"strings"
	"testing"
	"time"

	"fastrl/internal/rollout"
	"fastrl/internal/specdec"
	"fastrl/internal/vclock"
)

func sampleProfile() []rollout.StepProfile {
	return []rollout.StepProfile{
		{End: 10 * time.Millisecond, Running: 8, Mode: rollout.ModeVanilla, TokensOut: 8},
		{End: 20 * time.Millisecond, Running: 6, Mode: rollout.ModeVanilla, TokensOut: 6},
		{End: 30 * time.Millisecond, Running: 3, Mode: rollout.ModeSD,
			Strategy: specdec.Params{DraftDepth: 4, TopK: 3, TokensToVerify: 8}, TokensOut: 9},
		{End: 40 * time.Millisecond, Running: 1, Mode: rollout.ModeSD,
			Strategy: specdec.Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}, TokensOut: 4},
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected header + 4 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_seconds,") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[3], "sd") || !strings.Contains(lines[3], ",8,") {
		t.Fatalf("bad SD row: %s", lines[3])
	}
}

func TestRenderRunning(t *testing.T) {
	out := RenderRunning(sampleProfile(), 40, 6)
	if out == "" {
		t.Fatal("empty render")
	}
	if !strings.Contains(out, "#") {
		t.Fatal("SD region not marked")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("vanilla region not marked")
	}
	// Degenerate inputs render empty, not panic.
	if RenderRunning(nil, 40, 6) != "" {
		t.Fatal("nil profile should render empty")
	}
	if RenderRunning(sampleProfile(), 1, 1) != "" {
		t.Fatal("tiny canvas should render empty")
	}
}

func TestUtilization(t *testing.T) {
	tl := &vclock.Timeline{Worker: 0}
	tl.Record("decode", 0, 50*time.Millisecond)
	tl.Record("spot-train", 50*time.Millisecond, 80*time.Millisecond)
	rep := Utilization([]*vclock.Timeline{tl}, 100*time.Millisecond)
	if len(rep) != 1 {
		t.Fatalf("reports %d", len(rep))
	}
	if rep[0].Busy < 0.49 || rep[0].Busy > 0.51 {
		t.Fatalf("busy %v, want ~0.5", rep[0].Busy)
	}
	if rep[0].SpotUsed < 0.29 || rep[0].SpotUsed > 0.31 {
		t.Fatalf("spot %v, want ~0.3", rep[0].SpotUsed)
	}
}

func TestRenderGantt(t *testing.T) {
	a := &vclock.Timeline{Worker: 0}
	a.Record("decode", 0, 90*time.Millisecond)
	b := &vclock.Timeline{Worker: 1}
	b.Record("decode", 0, 40*time.Millisecond)
	b.Record("spot-train", 45*time.Millisecond, 85*time.Millisecond)
	out := RenderGantt([]*vclock.Timeline{a, b}, 100*time.Millisecond, 20)
	if !strings.Contains(out, "w0") || !strings.Contains(out, "w1") {
		t.Fatalf("missing worker rows:\n%s", out)
	}
	if !strings.Contains(out, "S") {
		t.Fatalf("spot training not marked:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("rollout not marked:\n%s", out)
	}
	if RenderGantt(nil, 0, 20) != "" {
		t.Fatal("degenerate gantt should be empty")
	}
}
