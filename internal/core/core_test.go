package core

import (
	"strings"
	"testing"
	"time"

	"fastrl/internal/gpu"
)

// smallConfig returns a fast test configuration.
func smallConfig(kind Kind) Config {
	cfg := DefaultConfig()
	cfg.Kind = kind
	cfg.RL.PromptsPerStep = 6
	cfg.RL.GroupSize = 4
	cfg.MaxNew = 128
	cfg.TaskPool = 24
	cfg.ModelBuckets = 1 << 10
	return cfg
}

func TestSystemStepAllKinds(t *testing.T) {
	for _, kind := range []Kind{TLT, TLTBase, VeRL, OpenR1} {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := New(smallConfig(kind))
			if err != nil {
				t.Fatal(err)
			}
			if kind == TLT {
				sys.WarmUpDrafter(20, 2)
			}
			st, err := sys.Step()
			if err != nil {
				t.Fatal(err)
			}
			if st.StepTime <= 0 || st.Tokens == 0 || st.Throughput <= 0 {
				t.Fatalf("degenerate step stats: %+v", st)
			}
			if st.Rollout <= 0 || st.Inference <= 0 || st.Training <= 0 {
				t.Fatalf("missing stage times: %+v", st)
			}
			if st.Rollout+st.Inference+st.Training+st.Other != st.StepTime {
				t.Fatalf("stage times do not sum to step time: %+v", st)
			}
			if len(st.WorkerFinish) == 0 {
				t.Fatal("no worker finish times")
			}
		})
	}
}

func TestRolloutDominatesStepTime(t *testing.T) {
	// Fig 1(a): the rollout stage consumes the large majority of the step.
	sys, err := New(smallConfig(VeRL))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Step()
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(st.Rollout) / float64(st.StepTime)
	if frac < 0.6 {
		t.Fatalf("rollout fraction %.2f, expected the dominant share", frac)
	}
	t.Logf("rollout fraction of step time: %.2f", frac)
}

func TestTLTFasterThanVeRL(t *testing.T) {
	// The headline end-to-end claim at test scale: TLT throughput beats
	// the VeRL baseline on the same workload.
	run := func(kind Kind) float64 {
		cfg := smallConfig(kind)
		cfg.Seed = 5
		cfg.RL.PromptsPerStep = 8
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if kind == TLT {
			sys.WarmUpDrafter(30, 3)
		}
		var tput float64
		const steps = 3
		for i := 0; i < steps; i++ {
			st, err := sys.Step()
			if err != nil {
				t.Fatal(err)
			}
			tput += st.Throughput
		}
		return tput / steps
	}
	verl := run(VeRL)
	tlt := run(TLT)
	if tlt <= verl {
		t.Fatalf("TLT throughput %.0f should beat VeRL %.0f", tlt, verl)
	}
	t.Logf("throughput: TLT %.0f tok/s vs VeRL %.0f tok/s (%.2fx)", tlt, verl, tlt/verl)
}

func TestOpenR1SlowerThanVeRL(t *testing.T) {
	run := func(kind Kind) float64 {
		cfg := smallConfig(kind)
		cfg.Seed = 6
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.Step()
		if err != nil {
			t.Fatal(err)
		}
		return st.Throughput
	}
	if openr1, verl := run(OpenR1), run(VeRL); openr1 >= verl {
		t.Fatalf("Open-R1 %.0f tok/s should trail VeRL %.0f tok/s", openr1, verl)
	}
}

func TestSpotTrainingHappensAndUsesIdleTime(t *testing.T) {
	cfg := smallConfig(TLT)
	cfg.RL.PromptsPerStep = 8
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.WarmUpDrafter(20, 2)
	// Step 1 fills the DataBuffer; spot training starts once data exists.
	if _, err := sys.Step(); err != nil {
		t.Fatal(err)
	}
	versionAfter1 := sys.Eagle.Version
	st, err := sys.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.SpotBatches == 0 {
		t.Fatalf("no spot training in step 2: %+v", st)
	}
	if sys.Eagle.Version <= versionAfter1 {
		t.Fatal("drafter version did not advance")
	}
	// SpotTime aggregates GPU time across parallel worker windows, so it
	// is bounded by rollout wall time times the worker count.
	bound := st.Rollout * time.Duration(DefaultCluster(gpu.H100, 1, 2).Workers())
	if st.SpotTime <= 0 || st.SpotTime > bound {
		t.Fatalf("spot time %v outside aggregate idle bound %v", st.SpotTime, bound)
	}
}

func TestDisableSpotFreezesDrafter(t *testing.T) {
	cfg := smallConfig(TLT)
	cfg.DisableSpot = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.WarmUpDrafter(10, 1)
	v := sys.Eagle.Version
	for i := 0; i < 2; i++ {
		st, err := sys.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.SpotBatches != 0 {
			t.Fatal("spot training ran while disabled")
		}
	}
	if sys.Eagle.Version != v {
		t.Fatal("drafter trained while spot disabled")
	}
}

func TestDrafterTrainEveryCadence(t *testing.T) {
	cfg := smallConfig(TLT)
	cfg.DrafterTrainEvery = 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.WarmUpDrafter(10, 1)
	var spotSteps []int
	for i := 1; i <= 4; i++ {
		st, err := sys.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.SpotBatches > 0 {
			spotSteps = append(spotSteps, i)
		}
	}
	for _, s := range spotSteps {
		if s%2 != 0 {
			t.Fatalf("spot training ran on off-cadence step %d (cadence 2): %v", s, spotSteps)
		}
	}
}

func TestRewardImprovesUnderTLT(t *testing.T) {
	cfg := smallConfig(TLT)
	cfg.RL.PromptsPerStep = 12
	cfg.RL.GroupSize = 6
	cfg.DisableLengthPrior = true // learning-dynamics setting (as in Fig. 12)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.WarmUpDrafter(20, 2)
	var head, tail float64
	const steps = 10
	for i := 0; i < steps; i++ {
		st, err := sys.Step()
		if err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			head += st.Summary.MeanReward
		}
		if i >= steps-3 {
			tail += st.Summary.MeanReward
		}
	}
	if tail <= head {
		t.Fatalf("reward did not improve under TLT: first3 %.3f -> last3 %.3f", head/3, tail/3)
	}
	t.Logf("reward first3 %.3f -> last3 %.3f", head/3, tail/3)
}

func TestCheckMemoryOOM(t *testing.T) {
	cfg := smallConfig(VeRL)
	cfg.Arch = gpu.Qwen32B
	cfg.Cluster = DefaultCluster(gpu.H100, 1, 4)
	cfg.RL.PromptsPerStep = 64
	cfg.RL.GroupSize = 8
	cfg.MaxNew = 32768 // the paper's generation cap
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckMemory(); err == nil {
		t.Fatal("expected OOM for 32B on one node at long max length")
	} else if !strings.Contains(err.Error(), "OOM") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Scaling out resolves it.
	cfg.Cluster = DefaultCluster(gpu.H100, 8, 4)
	sys2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.CheckMemory(); err != nil {
		t.Fatalf("8 nodes should fit: %v", err)
	}
}

func TestClusterWorkers(t *testing.T) {
	c := DefaultCluster(gpu.H100, 2, 4)
	if c.Workers() != 4 {
		t.Fatalf("workers = %d, want 4", c.Workers())
	}
	c.TP = 64 // degenerate: clamps to 1 worker
	if c.Workers() != 1 {
		t.Fatalf("degenerate workers = %d", c.Workers())
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxNew = 2
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for tiny MaxNew")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{TLT: "TLT", TLTBase: "TLT-Base", VeRL: "VeRL", OpenR1: "Open-R1"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestStepDeterminism(t *testing.T) {
	run := func() time.Duration {
		sys, err := New(smallConfig(TLT))
		if err != nil {
			t.Fatal(err)
		}
		sys.WarmUpDrafter(10, 1)
		st, err := sys.Step()
		if err != nil {
			t.Fatal(err)
		}
		return st.StepTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed systems diverge: %v vs %v", a, b)
	}
}

func TestPeriodicEvaluation(t *testing.T) {
	cfg := smallConfig(VeRL)
	cfg.EvalEvery = 2
	cfg.EvalTasks = 12
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var evals []int
	for i := 1; i <= 4; i++ {
		st, err := sys.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.EvalAccuracy >= 0 {
			evals = append(evals, i)
			if st.EvalTime <= 0 {
				t.Fatal("evaluation cost not charged")
			}
			if st.EvalAccuracy > 1 {
				t.Fatalf("accuracy %v out of range", st.EvalAccuracy)
			}
		}
	}
	if len(evals) != 2 || evals[0] != 2 || evals[1] != 4 {
		t.Fatalf("evaluations at steps %v, want [2 4]", evals)
	}
}

func TestEvaluateDirect(t *testing.T) {
	sys, err := New(smallConfig(VeRL))
	if err != nil {
		t.Fatal(err)
	}
	acc, cost := sys.Evaluate()
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
	if cost <= 0 {
		t.Fatalf("cost %v", cost)
	}
	// Deterministic: greedy evaluation twice gives the same accuracy.
	acc2, _ := sys.Evaluate()
	if acc != acc2 {
		t.Fatalf("greedy eval nondeterministic: %v vs %v", acc, acc2)
	}
}
