// Package core composes the full reasoning-RL training systems evaluated
// in the paper: TLT (adaptive drafter + adaptive rollout engine), TLT-Base
// (model-free drafter only), a VeRL-style colocated synchronous baseline,
// and an Open-R1-style disaggregated baseline. A System owns the policy,
// reference model, drafter, worker devices, coordinator, and spot trainer,
// and advances the GRPO pipeline step by step under the virtual cluster
// clock.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fastrl/internal/coordinator"
	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/reward"
	"fastrl/internal/rl"
	"fastrl/internal/rollout"
	"fastrl/internal/spot"
	"fastrl/internal/tokenizer"
	"fastrl/internal/vclock"
	"fastrl/internal/workload"
)

// Kind enumerates the system designs under evaluation (Fig. 11).
type Kind int

const (
	// TLT is the full system: adaptive (learned) drafter with spot
	// training plus the adaptive rollout engine.
	TLT Kind = iota
	// TLTBase disables the adaptive drafter and uses the model-free
	// n-gram drafter (the paper's TLT-Base ablation).
	TLTBase
	// VeRL is the colocated synchronous baseline (GPU time-sharing, no
	// speculative decoding).
	VeRL
	// OpenR1 is the disaggregated baseline: rollout and training run on
	// separate halves of the cluster with batch-coupled generation.
	OpenR1
)

func (k Kind) String() string {
	switch k {
	case TLT:
		return "TLT"
	case TLTBase:
		return "TLT-Base"
	case VeRL:
		return "VeRL"
	case OpenR1:
		return "Open-R1"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ClusterConfig describes the hardware.
type ClusterConfig struct {
	GPU         gpu.Spec
	Nodes       int
	GPUsPerNode int
	// TP is the tensor-parallel degree of one rollout worker.
	TP int
}

// Workers returns the number of rollout workers (TP groups).
func (c ClusterConfig) Workers() int {
	w := c.Nodes * c.GPUsPerNode / c.TP
	if w < 1 {
		w = 1
	}
	return w
}

// DefaultCluster mirrors the paper's testbed shape at 1 node.
func DefaultCluster(spec gpu.Spec, nodes, tp int) ClusterConfig {
	return ClusterConfig{GPU: spec, Nodes: nodes, GPUsPerNode: 8, TP: tp}
}

// Config assembles a full system.
type Config struct {
	Kind    Kind
	Cluster ClusterConfig
	// Arch is the target model architecture (cost model).
	Arch gpu.Arch
	// RL configures the GRPO pipeline.
	RL rl.Config
	// MaxNew caps response lengths.
	MaxNew int
	// TaskPool / Seed drive workload generation.
	TaskPool int
	Seed     int64
	// SDThreshold is the elastic SD activation bound (TLT variants).
	SDThreshold int
	// IdleThreshold is the coordinator's spot-training trigger.
	IdleThreshold int
	// DrafterTrainEvery trains the drafter on the spot every N RL steps
	// (paper §6.4: every 10 steps suffices; default 1).
	DrafterTrainEvery int
	// DisableSpot turns off spot training (ablation: TLT with a frozen
	// warm-up drafter).
	DisableSpot bool
	// GraphPlan overrides the CUDAGraph capture plan.
	GraphPlan string
	// ModelBuckets overrides the target LM's feature buckets (tests use
	// smaller tables).
	ModelBuckets int
	// DisableLengthPrior turns off the synthetic length-prior bias. The
	// prior shapes realistic long-tail workloads for performance
	// experiments, but biased sampling is off-policy for the learner, so
	// learning-dynamics experiments (Fig. 12) disable it and let lengths
	// emerge from the model alone.
	DisableLengthPrior bool
	// EarlyStopTail truncates each worker's rollout once this few
	// requests remain — the premature-termination alternative the paper
	// contrasts TLT with (§7, §8): it trades training quality for speed,
	// whereas TLT is lossless. Zero disables it.
	EarlyStopTail int
	// EvalEvery runs a held-out greedy evaluation every N steps (the
	// paper's periodic evaluations, every 5 steps on its trace). Zero
	// disables evaluation.
	EvalEvery int
	// EvalTasks is the held-out evaluation set size (default 32).
	EvalTasks int
}

// DefaultConfig returns a TLT system on one H100 node.
func DefaultConfig() Config {
	return Config{
		Kind:              TLT,
		Cluster:           DefaultCluster(gpu.H100, 1, 2),
		Arch:              gpu.Qwen7B,
		RL:                rl.DefaultConfig(),
		MaxNew:            512,
		TaskPool:          64,
		Seed:              1,
		SDThreshold:       32,
		IdleThreshold:     1,
		DrafterTrainEvery: 1,
	}
}

// System is a runnable RL training system.
type System struct {
	Cfg      Config
	Tk       *tokenizer.Tokenizer
	Target   *model.LM
	Trainer  *rl.Trainer
	Tasks    *workload.TaskGen
	Sampler  workload.LengthSampler
	Verifier *reward.Verifier

	// Drafters: learned (TLT) or model-free (TLT-Base); nil for baselines.
	Eagle *draft.Eagle
	NGram *draft.NGram

	Coord  *coordinator.Coordinator
	Buffer *spot.DataBuffer
	Spot   *spot.Trainer

	// Clock is the cluster-wide virtual clock.
	Clock *vclock.Clock
	// Timelines per worker (utilisation analysis).
	Timelines []*vclock.Timeline

	rng     *rand.Rand
	step    int
	evalGen *workload.TaskGen
}

// New builds a system.
func New(cfg Config) (*System, error) {
	if cfg.Cluster.Workers() < 1 {
		return nil, fmt.Errorf("core: empty cluster")
	}
	if cfg.MaxNew < 8 {
		return nil, fmt.Errorf("core: MaxNew %d too small", cfg.MaxNew)
	}
	if cfg.DrafterTrainEvery < 1 {
		cfg.DrafterTrainEvery = 1
	}
	tk := tokenizer.New()
	mcfg := model.DefaultConfig(tk.VocabSize(), cfg.Arch)
	if cfg.ModelBuckets > 0 {
		mcfg.Buckets = cfg.ModelBuckets
	}
	mcfg.Seed ^= cfg.Seed
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	target := model.New(mcfg, &model.GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})

	s := &System{
		Cfg:      cfg,
		Tk:       tk,
		Target:   target,
		Tasks:    workload.NewTaskGen(tk, cfg.TaskPool, cfg.Seed),
		Sampler:  workload.DefaultLengthSampler(cfg.MaxNew),
		Verifier: reward.NewVerifier(tk),
		Clock:    &vclock.Clock{},
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x715)),
	}
	s.Trainer = rl.NewTrainer(cfg.RL, target, s.Verifier)
	for w := 0; w < cfg.Cluster.Workers(); w++ {
		s.Timelines = append(s.Timelines, &vclock.Timeline{Worker: w})
	}

	switch cfg.Kind {
	case TLT:
		s.Eagle = draft.NewEagle(draft.EagleDefault(tk.VocabSize(), cfg.Arch))
		coord, err := coordinator.New(coordinator.Config{
			Workers: cfg.Cluster.Workers(), IdleThreshold: cfg.IdleThreshold,
		})
		if err != nil {
			return nil, err
		}
		s.Coord = coord
		s.Buffer = spot.NewDataBuffer(4096)
		dev := s.workerDevice()
		s.Spot = spot.NewTrainer(spot.DefaultTrainerConfig(dev, cfg.Arch), s.Eagle, target, s.Buffer, nil)
	case TLTBase:
		s.NGram = draft.NewNGram(tk.VocabSize(), 1, 3)
	}
	return s, nil
}

func (s *System) workerDevice() *gpu.Device {
	return gpu.NewDevice(s.Cfg.Cluster.GPU, s.Cfg.Cluster.TP)
}

// drafter returns the engine-facing drafter for the system kind.
func (s *System) drafter() draft.Drafter {
	switch s.Cfg.Kind {
	case TLT:
		return s.Eagle
	case TLTBase:
		return s.NGram
	}
	return nil
}

// WarmUpDrafter pre-trains the learned drafter on base-model rollouts,
// the paper's OpenThoughts warm-up phase. No-op for other system kinds.
func (s *System) WarmUpDrafter(prompts, epochs int) {
	if s.Eagle == nil {
		return
	}
	rng := rand.New(rand.NewSource(s.Cfg.Seed ^ 0xbeef))
	var examples []*draft.Example
	for _, task := range s.Tasks.SampleSeeded(prompts, s.Cfg.Seed^0xbeef) {
		seq := model.Generate(s.Target, task.Prompt, nil, s.Cfg.RL.Temp, 64, s.Tk.Eos(), rng)
		examples = append(examples,
			draft.HarvestExamples(s.Target, model.Context{Tokens: seq, PromptLen: len(task.Prompt)}, true)...)
	}
	for e := 0; e < epochs; e++ {
		s.Eagle.Train(examples, nil, rng)
	}
}

// StepStats records one RL step's timing and learning metrics.
type StepStats struct {
	Step int
	// Stage durations (cluster wall time on the virtual clock).
	Rollout   time.Duration
	Inference time.Duration
	Training  time.Duration
	Other     time.Duration
	StepTime  time.Duration
	// Tokens processed (prompts + responses of the global batch).
	Tokens int
	// Throughput is the paper's end-to-end metric: tokens per second.
	Throughput float64
	// AcceptLen is the mean SD accept length (0 when SD never ran).
	AcceptLen float64
	// SpotBatches / SpotTime account drafter spot training.
	SpotBatches int
	SpotTime    time.Duration
	// IdleTime is GPU-worker idle time during rollout left unused.
	IdleTime time.Duration
	// Summary carries the learning metrics.
	Summary rl.StepSummary
	// EvalAccuracy is the held-out greedy accuracy when this step ran an
	// evaluation (negative otherwise); EvalTime its cluster cost.
	EvalAccuracy float64
	EvalTime     time.Duration
	// WorkerFinish are per-worker rollout finish offsets.
	WorkerFinish []time.Duration
	// RespLens are the response lengths of the global batch.
	RespLens []int
	// Profiles are the per-worker engine iteration profiles.
	Profiles [][]rollout.StepProfile
}

// Step advances one full RL step.
func (s *System) Step() (StepStats, error) {
	s.step++
	stats := StepStats{Step: s.step}
	start := s.Clock.Now()

	// The step workload is a pure function of (seed, step): every system
	// kind sees the identical tasks and length priors, so throughput
	// comparisons are workload-controlled.
	tasks := s.Tasks.SampleSeeded(s.Cfg.RL.PromptsPerStep, s.Cfg.Seed^int64(s.step)*2654435761)
	groups, err := s.runRollout(tasks, &stats)
	if err != nil {
		return stats, err
	}

	// ---- Inference stage: prefill responses through policy + reference.
	s.Trainer.ScoreGroups(groups)
	s.Trainer.ComputeAdvantages(groups)
	inferTokens := rl.InferenceTokens(groups)
	stats.Inference = s.prefillCost(2 * inferTokens) // policy + ref
	s.Clock.Advance(stats.Inference)

	// TLT: harvest drafter training data from the inference prefill (the
	// hidden states are produced here anyway; the paper caches them).
	if s.Cfg.Kind == TLT && !s.Cfg.DisableSpot {
		for _, g := range groups {
			for _, r := range g {
				exs := draft.HarvestExamples(s.Target,
					model.Context{Tokens: r.Full, PromptLen: r.PromptLen}, true)
				s.Buffer.Add(spot.Sequence{Examples: exs})
			}
		}
	}

	// ---- Training stage: policy update (data parallel over workers).
	kl := s.Trainer.ApplyUpdates(groups)
	stats.Training = s.trainCost(inferTokens)
	s.Clock.Advance(stats.Training)

	// ---- Stage-transition overheads.
	stats.Other = s.transitionCost()
	s.Clock.Advance(stats.Other)

	// TLT: rotate the DataBuffer at the step barrier.
	if s.Cfg.Kind == TLT {
		s.Buffer.StepEnd()
		s.Coord.Reset()
	}

	// Periodic held-out evaluation (greedy decoding on the eval pool).
	stats.EvalAccuracy = -1
	if s.Cfg.EvalEvery > 0 && s.step%s.Cfg.EvalEvery == 0 {
		acc, cost := s.Evaluate()
		stats.EvalAccuracy = acc
		stats.EvalTime = cost
		stats.Other += cost
		s.Clock.Advance(cost)
	}

	stats.Summary = rl.Summarize(s.step, groups, kl)
	var tokens int
	for _, g := range groups {
		for _, r := range g {
			tokens += len(r.Full)
		}
	}
	stats.Tokens = tokens
	stats.StepTime = s.Clock.Now() - start
	if stats.StepTime > 0 {
		stats.Throughput = float64(tokens) / stats.StepTime.Seconds()
	}
	return stats, nil
}

// runRollout executes the rollout stage across workers and, for TLT,
// drafter spot training on workers as they go idle.
func (s *System) runRollout(tasks []workload.Task, stats *StepStats) ([][]*rl.Rollout, error) {
	W := s.Cfg.Cluster.Workers()
	rolloutWorkers := W
	if s.Cfg.Kind == OpenR1 {
		// Disaggregated placement: half the cluster serves rollout.
		rolloutWorkers = (W + 1) / 2
	}

	// Build requests: one per (task, group member), assigned round-robin.
	type slot struct {
		task   workload.Task
		group  int
		member int
		req    *rollout.Request
	}
	var slots []*slot
	id := 0
	priorRng := rand.New(rand.NewSource(s.Cfg.Seed ^ int64(s.step)*1099511628211))
	for gi, task := range tasks {
		for m := 0; m < s.Cfg.RL.GroupSize; m++ {
			prior := workload.PriorFor(task, s.Sampler, priorRng)
			if s.Cfg.DisableLengthPrior {
				prior = workload.LengthPrior{}
			}
			req := rollout.NewRequest(id, task.Prompt, prior.HardCap(s.Cfg.MaxNew), prior, s.Tk.Answer(), s.Tk.Eos())
			slots = append(slots, &slot{task: task, group: gi, member: m, req: req})
			id++
		}
	}

	perWorker := make([][]*rollout.Request, rolloutWorkers)
	for i, sl := range slots {
		w := i % rolloutWorkers
		perWorker[w] = append(perWorker[w], sl.req)
	}

	// Run each worker's engine; collect finish times and stats.
	finishes := make([]time.Duration, rolloutWorkers)
	var acceptSum float64
	var acceptN int
	for w := 0; w < rolloutWorkers; w++ {
		eng, err := s.newEngine(w)
		if err != nil {
			return nil, err
		}
		wrng := rand.New(rand.NewSource(s.Cfg.Seed ^ int64(s.step)<<20 ^ int64(w)))
		rs := eng.Run(perWorker[w], wrng)
		finishes[w] = rs.Elapsed
		stats.Profiles = append(stats.Profiles, rs.Profile)
		if rs.AcceptRounds > 0 {
			acceptSum += rs.MeanAcceptLen()
			acceptN++
		}
	}
	if acceptN > 0 {
		stats.AcceptLen = acceptSum / float64(acceptN)
	}
	stats.WorkerFinish = append([]time.Duration(nil), finishes...)

	rolloutEnd := time.Duration(0)
	for _, f := range finishes {
		if f > rolloutEnd {
			rolloutEnd = f
		}
	}
	stats.Rollout = rolloutEnd
	s.Clock.Advance(rolloutEnd)

	// Idle accounting + spot training in the tail.
	order := make([]int, rolloutWorkers)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return finishes[order[i]] < finishes[order[j]] })
	var idle time.Duration
	for _, w := range order[:len(order)-1] {
		idle += rolloutEnd - finishes[w]
	}
	// Disaggregated baseline: the training half idles through rollout.
	if s.Cfg.Kind == OpenR1 {
		idle += time.Duration(W-rolloutWorkers) * rolloutEnd
	}

	if s.Cfg.Kind == TLT && !s.Cfg.DisableSpot && s.step%s.Cfg.DrafterTrainEvery == 0 {
		idle -= s.runSpotTraining(order, finishes, rolloutEnd, stats)
	}
	if idle < 0 {
		idle = 0
	}
	stats.IdleTime = idle

	// Reassemble groups.
	groups := make([][]*rl.Rollout, len(tasks))
	for _, sl := range slots {
		stats.RespLens = append(stats.RespLens, sl.req.Generated())
		groups[sl.group] = append(groups[sl.group], &rl.Rollout{
			Task:      sl.task,
			Full:      sl.req.Tokens,
			Response:  sl.req.Response(),
			PromptLen: len(sl.req.Prompt),
		})
	}
	return groups, nil
}

// runSpotTraining drives the coordinator over worker-idle events and
// spends the granted windows on drafter training. Returns the idle time
// consumed.
func (s *System) runSpotTraining(order []int, finishes []time.Duration, rolloutEnd time.Duration, stats *StepStats) time.Duration {
	var used time.Duration
	trainRng := rand.New(rand.NewSource(s.Cfg.Seed ^ int64(s.step)*7919))
	for _, w := range order {
		if finishes[w] >= rolloutEnd {
			continue
		}
		actions := s.Coord.WorkerIdle(w, finishes[w])
		for _, a := range actions {
			if a.Kind != coordinator.StartTraining && a.Kind != coordinator.JoinTraining {
				continue
			}
			for _, tw := range a.Workers {
				window := rolloutEnd - finishes[tw]
				if window <= 0 {
					continue
				}
				ws := s.Spot.RunWindow(window, trainRng)
				stats.SpotBatches += ws.Batches
				stats.SpotTime += ws.Used
				used += ws.Used
			}
		}
	}
	// The rollout barrier preempts any ongoing session.
	s.Coord.RolloutComplete(rolloutEnd)
	return used
}

// newEngine builds the per-worker rollout engine for the system kind.
func (s *System) newEngine(worker int) (*rollout.Engine, error) {
	dev := s.workerDevice()
	cfg := rollout.DefaultConfig(dev)
	cfg.Temp = s.Cfg.RL.Temp
	if s.Cfg.GraphPlan != "" {
		cfg.GraphPlan = s.Cfg.GraphPlan
	}
	cfg.StopAtRemaining = s.Cfg.EarlyStopTail
	switch s.Cfg.Kind {
	case TLT, TLTBase:
		cfg.SDThreshold = s.Cfg.SDThreshold
	case VeRL:
		cfg.SDThreshold = -1
	case OpenR1:
		cfg.SDThreshold = -1
		// Batch-coupled generation: no continuous batching means higher
		// per-iteration host overhead and no early-exit gains; modelled
		// as a fixed padding factor in engine host overhead.
		cfg.HostOverhead *= 3
	}
	eng, err := rollout.New(cfg, s.Target, s.drafter())
	if err != nil {
		return nil, err
	}
	if worker < len(s.Timelines) {
		eng.Timeline = s.Timelines[worker]
	}
	return eng, nil
}

// prefillCost models the inference stage: compute-bound prefill of the
// given token count, data parallel across all workers.
func (s *System) prefillCost(tokens int) time.Duration {
	W := s.Cfg.Cluster.Workers()
	if s.Cfg.Kind == OpenR1 {
		W = (W + 1) / 2 // inference shares the training half
	}
	per := (tokens + W - 1) / W
	dev := s.workerDevice()
	return dev.Forward(s.Cfg.Arch, gpu.ForwardOpts{Tokens: per, KVTokens: per}).Total()
}

// trainCost models the training stage: forward+backward+optimiser over
// the response tokens, data parallel with a gradient-sync penalty.
func (s *System) trainCost(tokens int) time.Duration {
	W := s.Cfg.Cluster.Workers()
	if s.Cfg.Kind == OpenR1 {
		W = (W + 1) / 2
	}
	per := (tokens + W - 1) / W
	dev := s.workerDevice()
	cost := dev.TrainStepCost(s.Cfg.Arch, per)
	return cost + cost/10 // all-reduce overhead
}

// transitionCost models stage-transition overheads: weight resharding
// between rollout and training engines (VeRL-style colocation), weight
// broadcast to the disaggregated serving fleet (Open-R1), and TLT's
// drafter weight update (<1% of step time, per the paper).
func (s *System) transitionCost() time.Duration {
	wb := s.Cfg.Arch.WeightBytes()
	nvlink := 450e9 // effective intra-node bytes/sec
	ib := 40e9      // effective inter-node bytes/sec
	var t time.Duration
	switch s.Cfg.Kind {
	case OpenR1:
		// Full weight broadcast across the disaggregated halves.
		t = time.Duration(wb / ib * float64(time.Second))
	default:
		// Colocated resharding: two passes over the weights via NVLink.
		t = time.Duration(2 * wb / float64(s.Cfg.Cluster.Workers()) / nvlink * float64(time.Second))
	}
	if s.Cfg.Kind == TLT {
		// Drafter weight update into the rollout engines.
		dw := gpu.DraftArch(s.Cfg.Arch).WeightBytes()
		t += time.Duration(dw / nvlink * float64(time.Second))
	}
	return t
}

// CheckMemory estimates per-GPU memory demand and returns an error when
// the configuration cannot fit (Table 3's OOM entries).
func (s *System) CheckMemory() error {
	c := s.Cfg.Cluster
	arch := s.Cfg.Arch
	weights := arch.WeightBytes() / float64(c.TP)
	// Optimizer states colocate on the same GPUs for VeRL/TLT (mixed
	// precision Adam: ~6x weight bytes), sharded across all workers.
	optim := 6 * arch.WeightBytes() / float64(c.Workers()*c.TP)
	// KV eviction lets the engine queue requests, but progress requires a
	// minimum viable resident batch of max-length sequences.
	const minResident = 4
	reqs := s.Cfg.RL.PromptsPerStep * s.Cfg.RL.GroupSize
	perWorker := (reqs + c.Workers() - 1) / c.Workers()
	resident := perWorker
	if resident > minResident {
		resident = minResident
	}
	kv := arch.KVBytesPerToken() * float64(s.Cfg.MaxNew) * float64(resident) / float64(c.TP)
	demand := weights + optim + kv + 4e9 // workspace
	if demand > c.GPU.MemGB*1e9 {
		return fmt.Errorf("core: OOM: %.1f GB demand exceeds %s %.0f GB (weights %.1f, optim %.1f, kv %.1f)",
			demand/1e9, c.GPU.Name, c.GPU.MemGB, weights/1e9, optim/1e9, kv/1e9)
	}
	return nil
}

// Evaluate runs a greedy held-out evaluation, returning accuracy and the
// cluster time it costs (generation charged to the rollout cost model).
func (s *System) Evaluate() (float64, time.Duration) {
	n := s.Cfg.EvalTasks
	if n <= 0 {
		n = 32
	}
	if s.evalGen == nil {
		s.evalGen = workload.HeldOut(s.Tk, n, s.Cfg.Seed)
	}
	rng := rand.New(rand.NewSource(s.Cfg.Seed ^ 0xe7a1))
	tasks := s.evalGen.Pool()
	correct := 0
	var tokens int
	for _, task := range tasks {
		seq := model.Generate(s.Target, task.Prompt, nil, 0, s.Cfg.MaxNew/2, s.Tk.Eos(), rng)
		tokens += len(seq)
		if d, ok := s.Verifier.ExtractAnswer(seq[len(task.Prompt):]); ok && d == task.Answer {
			correct++
		}
	}
	// Evaluation decodes greedily at batch = tasks/workers: charge it as
	// sequential decode steps at that batch size.
	W := s.Cfg.Cluster.Workers()
	perWorker := (len(tasks) + W - 1) / W
	dev := s.workerDevice()
	meanLen := tokens / len(tasks)
	stepCost := dev.Forward(s.Cfg.Arch, gpu.ForwardOpts{Tokens: perWorker, KVTokens: perWorker * meanLen, CUDAGraph: true}).Total()
	cost := time.Duration(meanLen) * stepCost
	return float64(correct) / float64(len(tasks)), cost
}

// RefreshNGram resets the model-free drafter between steps so retrieval
// reflects the current policy's phrasing (TLT-Base bookkeeping).
func (s *System) RefreshNGram() {
	if s.NGram != nil {
		s.NGram.Reset()
	}
}
