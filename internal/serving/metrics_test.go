package serving

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestStatsReconcileUnderLoad hammers a server with concurrent submits,
// streams, and mid-flight cancels while a snapshotter thread reads Stats
// continuously. Because every terminal outcome lands inside one registry
// Update group — and submissions are counted before the queue send — no
// snapshot may ever show more outcomes than submissions (a torn read),
// and at quiescence the ledger balances exactly:
//
//	Served + Cancelled + Errored == Submitted
func TestStatsReconcileUnderLoad(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	cfg := serverConfig(tk, 4)
	srv, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	// Snapshotter: every observed snapshot must be internally consistent.
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := srv.Stats()
			if done := st.Served + st.Cancelled + st.Errored; done > st.Submitted {
				panic("torn stats snapshot: outcomes lead submissions")
			}
		}
	}()

	const n = 48
	var wg sync.WaitGroup
	submitted := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task := gen.Pool()[i%len(gen.Pool())]
			req := Request{Prompt: task.Prompt, MaxNew: 48, Seed: int64(i)}
			switch i % 3 {
			case 0: // plain request/response
				if _, err := srv.Serve(context.Background(), req); err == nil {
					submitted[i] = true
				}
			case 1: // streaming, drained to completion
				st, err := srv.Stream(context.Background(), req)
				if err != nil {
					return
				}
				submitted[i] = true
				st.Wait()
			default: // streaming, cancelled mid-flight
				st, err := srv.Stream(context.Background(), req)
				if err != nil {
					return
				}
				submitted[i] = true
				if i%6 == 2 {
					time.Sleep(time.Duration(i) * 100 * time.Microsecond)
				}
				st.Cancel()
				st.Wait()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	want := 0
	for _, ok := range submitted {
		if ok {
			want++
		}
	}
	st := srv.Stats()
	if st.Submitted != want {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, want)
	}
	if done := st.Served + st.Cancelled + st.Errored; done != st.Submitted {
		t.Fatalf("ledger out of balance at quiescence: served=%d cancelled=%d errored=%d submitted=%d",
			st.Served, st.Cancelled, st.Errored, st.Submitted)
	}
	if st.Errored != 0 {
		t.Fatalf("unexpected hard failures: %d", st.Errored)
	}
	if st.Cancelled == 0 {
		t.Fatalf("cancel arm never landed a cancellation")
	}

	// The registry snapshot itself must export as valid JSON with the
	// same counters Stats derived from it.
	snap := srv.Registry().Snapshot()
	raw, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("registry JSON does not parse: %v", err)
	}
	if got := snap.Counter("served"); int(got) != st.Served {
		t.Fatalf("registry served=%d, Stats served=%d", got, st.Served)
	}
}
