package serving

import (
	"context"
	"testing"

	"fastrl/internal/draft"
	"fastrl/internal/prefixcache"
)

// TestServerCacheProbes drives traffic through a cached server and checks
// the hit-rate/resident-bytes probes move.
func TestServerCacheProbes(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	cache := prefixcache.New(prefixcache.Config{})
	cfg := serverConfig(tk, 1)
	cfg.Cache = cache
	srv, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	if srv.Cache() != cache {
		t.Fatal("Cache() probe does not expose the configured cache")
	}
	task := gen.Pool()[0]
	for i := 0; i < 3; i++ {
		if _, err := srv.Serve(context.Background(), Request{
			Prompt: task.Prompt, MaxNew: 16, Seed: int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if srv.CacheResidentBytes() == 0 {
		t.Fatal("no resident cache state after served traffic")
	}
	// First request misses, later ones hit the identical prompt.
	if hr := srv.CacheHitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate %v, want in (0, 1)", hr)
	}
}

// TestServerProbesNilCache pins nil-safety of the probes.
func TestServerProbesNilCache(t *testing.T) {
	target, e, tk, _ := servingSetup(t)
	srv, err := New(serverConfig(tk, 1), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if srv.Cache() != nil || srv.CacheHitRate() != 0 || srv.CacheResidentBytes() != 0 {
		t.Fatal("nil-cache probes must report zero values")
	}
}

// TestDrafterWarmStart pins the warm-start path: a fresh server attached
// to a warm cache replays harvested continuation statistics into an
// online-learning drafter at construction, so the drafter is hot before
// the first request arrives.
func TestDrafterWarmStart(t *testing.T) {
	target, _, tk, gen := servingSetup(t)
	cache := prefixcache.New(prefixcache.Config{})

	// Phase 1: serve traffic on a first server generation to warm the
	// cache (drafter-free; the cache warms regardless of drafter type).
	cfg := serverConfig(tk, 1)
	cfg.Cache = cache
	gen1, err := New(cfg, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		task := gen.Pool()[i%2]
		if _, err := gen1.Serve(context.Background(), Request{
			Prompt: task.Prompt, MaxNew: 20, Seed: int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	gen1.Stop()

	// Phase 2: a new server generation over the surviving cache with a
	// fresh n-gram drafter must warm-start it at construction.
	ng := draft.NewNGram(tk.VocabSize(), 1, 3)
	if ng.Size() != 0 {
		t.Fatal("fresh drafter unexpectedly warm")
	}
	gen2, err := New(cfg, target, ng)
	if err != nil {
		t.Fatal(err)
	}
	defer gen2.Stop()
	if ng.Size() == 0 {
		t.Fatal("drafter not warm-started from the cache at construction")
	}
}
