package serving

import (
	"context"
	"testing"
	"time"

	"fastrl/internal/slo"
	"fastrl/internal/trace"
)

// TestServingHistogramExemplars pins the reservoir→histogram migration:
// the latency/TTFT/ITL stats come from exemplar-linked histograms, and
// the tail exemplars are real scheduler request IDs that a flight
// recorder or trace export can be queried with.
func TestServingHistogramExemplars(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	srv, err := New(serverConfig(tk, 2), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	const n = 12
	for i := 0; i < n; i++ {
		task := gen.Pool()[i%len(gen.Pool())]
		if _, err := srv.Serve(context.Background(), Request{
			Prompt: task.Prompt, MaxNew: 32, Seed: int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}

	snap := srv.Registry().Snapshot()
	lat := snap.Histogram("latency")
	if lat.N != n {
		t.Fatalf("latency histogram holds %d samples, want %d", lat.N, n)
	}
	if lat.P50 <= 0 || lat.P95 < lat.P50 || lat.P999 < lat.P95 {
		t.Fatalf("latency quantiles not monotone: %+v", lat)
	}
	if len(lat.TailExemplars) == 0 {
		t.Fatal("latency tail bucket retained no exemplars")
	}
	for _, id := range lat.TailExemplars {
		if id < 1 || id > n {
			t.Fatalf("tail exemplar %d is not a scheduler request ID in [1,%d]", id, n)
		}
	}
	if ttft := snap.Histogram("ttft"); ttft.N != n || len(ttft.TailExemplars) == 0 {
		t.Fatalf("ttft histogram: n=%d exemplars=%v", ttft.N, ttft.TailExemplars)
	}
	if itl := snap.Histogram("itl"); itl.N == 0 {
		t.Fatal("itl histogram empty after multi-chunk responses")
	}

	lats, ttfts := srv.TailHistograms()
	if lats.N() != n || ttfts.N() != n {
		t.Fatalf("TailHistograms n = %d/%d, want %d", lats.N(), ttfts.N(), n)
	}
}

// TestServingSLOFeed pins the serving→slo wiring: a server with an
// impossible TTFT objective burns its error budget, breaches, and drops
// breach markers into the shard's flight recorder; a generous objective
// never burns.
func TestServingSLOFeed(t *testing.T) {
	target, e, tk, gen := servingSetup(t)

	fr := trace.NewFlightRecorder(256)
	// The fast window spans the whole run in virtual time, so the burn
	// reading at the last observation still covers every TTFT sample.
	eng, err := slo.NewEngine([]slo.Spec{{
		Name: "ttft-p95", Kind: slo.TTFT, Threshold: time.Nanosecond,
		Objective: 0.95, FastWindow: 30 * time.Second,
	}}, 0, fr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serverConfig(tk, 2)
	cfg.SLO = eng
	srv, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		task := gen.Pool()[i%len(gen.Pool())]
		if _, err := srv.Serve(context.Background(), Request{
			Prompt: task.Prompt, MaxNew: 32, Seed: int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Stop()

	if b := eng.BurnRate(); b < 4 {
		t.Fatalf("all-bad TTFT stream burn = %v, want >= 4", b)
	}
	if eng.Breaches() == 0 {
		t.Fatal("impossible objective never breached")
	}
	found := false
	for _, r := range fr.Snapshot() {
		if r.Kind == trace.KindSLOBreach {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no KindSLOBreach marker in the flight recorder")
	}

	// A generous objective stays quiet on the same workload.
	okEng, err := slo.NewEngine([]slo.Spec{{
		Name: "ttft-loose", Kind: slo.TTFT, Threshold: time.Hour, Objective: 0.95,
	}}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := serverConfig(tk, 2)
	cfg2.SLO = okEng
	srv2, err := New(cfg2, target, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Serve(context.Background(), Request{
		Prompt: gen.Pool()[0].Prompt, MaxNew: 32, Seed: 9,
	}); err != nil {
		t.Fatal(err)
	}
	srv2.Stop()
	if b := okEng.BurnRate(); b != 0 {
		t.Fatalf("healthy stream burn = %v, want 0", b)
	}
	if okEng.Breaches() != 0 {
		t.Fatal("healthy stream breached")
	}
}
