package serving

import (
	"context"
	"sync"
	"testing"

	"fastrl/internal/gpu"
	"fastrl/internal/rollout"
	"fastrl/internal/specdec"
	"fastrl/internal/tokenizer"
)

// fixedStrategyServerConfig pins one SD strategy so decode behaviour is
// independent of batch composition (a strategy ladder picks trees by
// batch size, which is the point of the MAB but would make this test's
// solo-vs-batched comparison ill-defined).
func fixedStrategyServerConfig(tk *tokenizer.Tokenizer, replicas, maxBatch int) Config {
	ecfg := rollout.DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	ecfg.SDThreshold = 0
	ecfg.Strategies = []specdec.Params{{DraftDepth: 6, TopK: 6, TokensToVerify: 24}}
	ecfg.MAB.Thresholds = []int{1}
	return Config{
		Engine: ecfg, Replicas: replicas, MaxBatch: maxBatch,
		AnswerID: tk.Answer(), EosID: tk.Eos(),
	}
}

// TestAcceptLenExactPerRequest pins the per-request accept-length fix:
// Response.AcceptLen is computed from the request's own accepted rounds,
// so a request served inside a continuous batch reports exactly the
// accept length it reports when served alone — co-batched traffic can no
// longer smear into it (the old whole-engine-stats computation would
// average across everything the replica had decoded).
func TestAcceptLenExactPerRequest(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	task := gen.Pool()[2]
	req := Request{Prompt: task.Prompt, MaxNew: 48, Seed: 42}

	// Baseline: the request served alone on an idle server.
	soloSrv, err := New(fixedStrategyServerConfig(tk, 1, 4), target, e)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := soloSrv.Serve(context.Background(), req)
	soloSrv.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if solo.AcceptLen < 1 {
		t.Fatalf("solo accept length %v, want >= 1 with SD on", solo.AcceptLen)
	}

	// The same request submitted alongside filler traffic on a single
	// continuous-batching replica: tokens and accept length must be
	// bit-identical to the solo serve.
	busySrv, err := New(fixedStrategyServerConfig(tk, 1, 4), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer busySrv.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			filler := gen.Pool()[4+i]
			busySrv.Serve(context.Background(), Request{
				Prompt: filler.Prompt, MaxNew: 64, Seed: int64(900 + i),
			})
		}(i)
	}
	batched, err := busySrv.Serve(context.Background(), req)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if len(batched.Tokens) != len(solo.Tokens) {
		t.Fatalf("batched response %d tokens, solo %d", len(batched.Tokens), len(solo.Tokens))
	}
	for i := range solo.Tokens {
		if batched.Tokens[i] != solo.Tokens[i] {
			t.Fatalf("token %d differs between solo and batched serve", i)
		}
	}
	if batched.AcceptLen != solo.AcceptLen {
		t.Fatalf("accept length not exact per request: batched %v vs solo %v",
			batched.AcceptLen, solo.AcceptLen)
	}
}
