package serving

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/rollout"
	"fastrl/internal/tokenizer"
	"fastrl/internal/workload"
)

func servingSetup(t testing.TB) (*model.LM, *draft.Eagle, *tokenizer.Tokenizer, *workload.TaskGen) {
	t.Helper()
	tk := tokenizer.New()
	cfg := model.DefaultConfig(tk.VocabSize(), gpu.Qwen7B)
	cfg.Buckets = 1 << 10
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	target := model.New(cfg, &model.GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})
	gen := workload.NewTaskGen(tk, 32, 9)

	e := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	rng := rand.New(rand.NewSource(10))
	var examples []*draft.Example
	for _, task := range gen.SampleSeeded(40, 11) {
		seq := model.Generate(target, task.Prompt, nil, 0.9, 50, tk.Eos(), rng)
		examples = append(examples, draft.HarvestExamples(target,
			model.Context{Tokens: seq, PromptLen: len(task.Prompt)}, true)...)
	}
	for i := 0; i < 3; i++ {
		e.Train(examples, nil, rng)
	}
	return target, e, tk, gen
}

func serverConfig(tk *tokenizer.Tokenizer, replicas int) Config {
	ecfg := rollout.DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	ecfg.SDThreshold = 0
	return Config{Engine: ecfg, Replicas: replicas, AnswerID: tk.Answer(), EosID: tk.Eos()}
}

func TestServeSingleRequest(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	srv, err := New(serverConfig(tk, 2), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	task := gen.Pool()[0]
	resp, err := srv.Serve(context.Background(), Request{
		Prompt: task.Prompt, MaxNew: 64, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tokens) == 0 {
		t.Fatal("empty completion")
	}
	if resp.DecodeTime <= 0 || resp.Latency < resp.DecodeTime {
		t.Fatalf("latency accounting wrong: %v / %v", resp.Latency, resp.DecodeTime)
	}
	if resp.AcceptLen < 1 {
		t.Fatalf("SD accept length %v", resp.AcceptLen)
	}
}

func TestConcurrentClients(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	srv, err := New(serverConfig(tk, 4), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task := gen.Pool()[i%len(gen.Pool())]
			resp, err := srv.Serve(context.Background(), Request{
				Prompt: task.Prompt, MaxNew: 48, Seed: int64(i),
			})
			if err != nil {
				errs <- err
				return
			}
			if len(resp.Tokens) == 0 {
				errs <- context.DeadlineExceeded
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Served != n {
		t.Fatalf("served %d, want %d", st.Served, n)
	}
	if st.P50 <= 0 || st.P95 < st.P50 {
		t.Fatalf("latency percentiles wrong: p50=%v p95=%v", st.P50, st.P95)
	}
}

func TestSubmitAfterStop(t *testing.T) {
	target, e, tk, _ := servingSetup(t)
	srv, err := New(serverConfig(tk, 1), target, e)
	if err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	srv.Stop() // idempotent
	if _, err := srv.Submit(context.Background(), Request{Prompt: []int{tk.Bos()}, MaxNew: 8}); err == nil {
		t.Fatal("expected error after stop")
	}
}

func TestSubmitContextCancel(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	cfg := serverConfig(tk, 1)
	cfg.QueueDepth = 1
	srv, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	// Saturate the queue, then a cancelled submit must fail fast.
	for i := 0; i < 3; i++ {
		task := gen.Pool()[i]
		go srv.Serve(context.Background(), Request{Prompt: task.Prompt, MaxNew: 64, Seed: int64(i)})
	}
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := srv.Submit(ctx, Request{Prompt: gen.Pool()[0].Prompt, MaxNew: 64}); err != nil {
			return // got the fast-fail we wanted
		}
	}
	// All submits landed (queue drained fast); acceptable on a fast box.
}

func TestGreedyServingDeterministic(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	cfg := serverConfig(tk, 1)
	cfg.Engine.Temp = 0
	srv, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	task := gen.Pool()[3]
	a, err := srv.Serve(context.Background(), Request{Prompt: task.Prompt, MaxNew: 48, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Serve(context.Background(), Request{Prompt: task.Prompt, MaxNew: 48, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tokens) != len(b.Tokens) {
		t.Fatalf("greedy serving nondeterministic: %d vs %d tokens", len(a.Tokens), len(b.Tokens))
	}
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] {
			t.Fatalf("token %d differs", i)
		}
	}
	// And greedy SD must equal greedy vanilla decoding (losslessness at
	// the serving layer).
	want := model.Generate(target, task.Prompt, nil, 0, 48, tk.Eos(), rand.New(rand.NewSource(1)))
	wantResp := want[len(task.Prompt):]
	if len(wantResp) != len(a.Tokens) {
		t.Fatalf("SD serving diverges from greedy decode: %d vs %d tokens", len(a.Tokens), len(wantResp))
	}
	for i := range wantResp {
		if a.Tokens[i] != wantResp[i] {
			t.Fatalf("SD serving token %d differs from greedy decode", i)
		}
	}
}

func TestLoadProbes(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	srv, err := New(serverConfig(tk, 2), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if srv.Pending() != 0 || srv.QueueLen() != 0 || srv.Inflight() != 0 {
		t.Fatalf("idle server reports load: pending=%d queue=%d inflight=%d",
			srv.Pending(), srv.QueueLen(), srv.Inflight())
	}
	if srv.Replicas() != 2 {
		t.Fatalf("Replicas = %d, want 2", srv.Replicas())
	}
	const n = 8
	chans := make([]<-chan Response, 0, n)
	for i := 0; i < n; i++ {
		task := gen.Pool()[i%len(gen.Pool())]
		ch, err := srv.Submit(context.Background(), Request{Prompt: task.Prompt, MaxNew: 48, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	// With 8 outstanding jobs and 2 replicas, the probes must see load.
	if srv.Pending() == 0 {
		t.Fatal("probes saw no load with 8 outstanding jobs")
	}
	for _, ch := range chans {
		<-ch
	}
	// All responses delivered ⇒ the load drains back to zero (inflight is
	// decremented before the response is sent).
	if got := srv.Pending(); got != 0 {
		t.Fatalf("drained server reports pending=%d", got)
	}
}

func TestNilDeviceRejected(t *testing.T) {
	target, e, _, _ := servingSetup(t)
	if _, err := New(Config{}, target, e); err == nil {
		t.Fatal("expected error for missing device")
	}
}
