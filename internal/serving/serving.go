// Package serving implements the deployment scenario of paper §7: the
// drafter that TLT trained for free during RL is served with adaptive
// speculative decoding against the frozen policy. Unlike the rollout
// engine (which simulates one synchronous training worker), the server
// runs real concurrent replica goroutines with a shared request queue and
// reports latency percentiles — the shape of an online inference service.
package serving

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fastrl/internal/draft"
	"fastrl/internal/metrics"
	"fastrl/internal/model"
	"fastrl/internal/rollout"
	"fastrl/internal/workload"
)

// Config parameterises the server.
type Config struct {
	// Engine configures each replica's rollout engine (device, SD
	// threshold, strategies).
	Engine rollout.Config
	// Replicas is the number of concurrent model replicas (each one
	// worker goroutine with its own engine and virtual clock).
	Replicas int
	// QueueDepth bounds the admission queue.
	QueueDepth int
	// AnswerID / EosID configure request control tokens.
	AnswerID int
	EosID    int
}

// Request is one serving job.
type Request struct {
	Prompt []int
	MaxNew int
	// Prior optionally shapes the response length.
	Prior workload.LengthPrior
	// Seed drives the per-request sampling stream.
	Seed int64
}

// Response is the served completion.
type Response struct {
	Tokens []int
	// Latency is the modelled service latency: queueing (wall) plus the
	// replica's virtual decode time for this request.
	Latency time.Duration
	// DecodeTime is the virtual decode component alone.
	DecodeTime time.Duration
	// AcceptLen is the mean SD accept length (0 without SD).
	AcceptLen float64
	Err       error
}

type job struct {
	req      Request
	enqueued time.Time
	done     chan Response
}

// maxLatencySamples bounds the latency-sample reservoir: long-running
// servers previously appended one float per request forever, an unbounded
// memory leak under sustained traffic. 4096 samples keep percentile
// estimates tight (p95 standard error well under 1%) at a fixed ~32KB.
const maxLatencySamples = 4096

// Server is a concurrent SD inference service over a frozen target.
type Server struct {
	cfg     Config
	target  *model.LM
	drafter draft.Drafter
	queue   chan *job
	wg      sync.WaitGroup
	mu      sync.Mutex
	// lats is a bounded uniform reservoir (Vitter's algorithm R) over all
	// served latencies; latSeen counts every sample ever offered.
	lats    []float64
	latSeen int
	latRng  *rand.Rand
	served  int
	stopped bool
}

// New builds a server. drafter may be nil (vanilla decoding).
func New(cfg Config, target *model.LM, drafter draft.Drafter) (*Server, error) {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.Engine.Device == nil {
		return nil, fmt.Errorf("serving: engine device required")
	}
	s := &Server{
		cfg:     cfg,
		target:  target,
		drafter: drafter,
		queue:   make(chan *job, cfg.QueueDepth),
		lats:    make([]float64, 0, maxLatencySamples),
		latRng:  rand.New(rand.NewSource(0x1a7)),
	}
	for r := 0; r < cfg.Replicas; r++ {
		s.wg.Add(1)
		go s.replica(r)
	}
	return s, nil
}

// replica is one serving worker: it owns a rollout engine and drains the
// shared queue.
func (s *Server) replica(id int) {
	defer s.wg.Done()
	eng, err := rollout.New(s.cfg.Engine, s.target, s.drafter)
	if err != nil {
		// Configuration errors surface on every job this replica takes.
		for j := range s.queue {
			j.done <- Response{Err: err}
		}
		return
	}
	for j := range s.queue {
		before := eng.Clock.Now()
		req := rollout.NewRequest(0, j.req.Prompt, j.req.MaxNew, j.req.Prior, s.cfg.AnswerID, s.cfg.EosID)
		stats := eng.Run([]*rollout.Request{req}, rand.New(rand.NewSource(j.req.Seed)))
		decode := eng.Clock.Now() - before
		resp := Response{
			Tokens:     req.Response(),
			DecodeTime: decode,
			Latency:    time.Since(j.enqueued) + decode,
			AcceptLen:  stats.MeanAcceptLen(),
		}
		s.mu.Lock()
		s.recordLatencyLocked(resp.Latency.Seconds())
		s.served++
		s.mu.Unlock()
		j.done <- resp
	}
}

// Submit enqueues a request and returns a channel delivering its response.
// It fails fast when the context is cancelled or the server is stopped.
func (s *Server) Submit(ctx context.Context, req Request) (<-chan Response, error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, fmt.Errorf("serving: server stopped")
	}
	s.mu.Unlock()
	j := &job{req: req, enqueued: time.Now(), done: make(chan Response, 1)}
	select {
	case s.queue <- j:
		return j.done, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Serve submits and waits.
func (s *Server) Serve(ctx context.Context, req Request) (Response, error) {
	ch, err := s.Submit(ctx, req)
	if err != nil {
		return Response{}, err
	}
	select {
	case r := <-ch:
		return r, r.Err
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

// Stop drains the queue and shuts the replicas down.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// recordLatencyLocked adds a latency sample to the bounded reservoir:
// the first maxLatencySamples fill it, after which each new sample
// replaces a uniformly random slot with probability cap/seen, keeping the
// reservoir a uniform sample of the full history.
func (s *Server) recordLatencyLocked(v float64) {
	s.latSeen++
	if len(s.lats) < maxLatencySamples {
		s.lats = append(s.lats, v)
		return
	}
	if j := s.latRng.Intn(s.latSeen); j < maxLatencySamples {
		s.lats[j] = v
	}
}

// Stats summarises served traffic.
type Stats struct {
	Served int
	P50    time.Duration
	P95    time.Duration
}

// Stats returns latency percentiles over everything served so far (a
// bounded uniform reservoir once traffic exceeds maxLatencySamples).
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Served: s.served,
		P50:    time.Duration(metrics.Percentile(s.lats, 50) * float64(time.Second)),
		P95:    time.Duration(metrics.Percentile(s.lats, 95) * float64(time.Second)),
	}
}
