// Package serving implements the deployment scenario of paper §7: the
// drafter that TLT trained for free during RL is served with adaptive
// speculative decoding against the frozen policy. Unlike the rollout
// engine (which simulates one synchronous training worker), the server
// runs real concurrent replica goroutines with a shared request queue and
// reports latency percentiles — the shape of an online inference service.
//
// Replicas are continuous-batching step-loop workers over the
// iteration-level scheduler (internal/sched): each iteration a replica
// drains newly admitted requests from the shared queue into its batch (up
// to Config.MaxBatch), advances every inflight request one step through a
// single batched scoring pass, and retires finished requests at the step
// boundary — so a long request never blocks the short requests queued
// behind it, the property that separates iteration-level scheduling from
// run-to-completion serving. Every request decodes on its own seeded
// sampling stream, so its token stream is independent of what it happens
// to be batched with.
package serving

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fastrl/internal/draft"
	"fastrl/internal/metrics"
	"fastrl/internal/model"
	"fastrl/internal/prefixcache"
	"fastrl/internal/rollout"
	"fastrl/internal/sched"
	"fastrl/internal/workload"
)

// Config parameterises the server.
type Config struct {
	// Engine configures each replica's rollout engine (device, SD
	// threshold, strategies).
	Engine rollout.Config
	// Replicas is the number of concurrent model replicas (each one
	// step-loop worker goroutine with its own scheduler batch and virtual
	// clock).
	Replicas int
	// QueueDepth bounds the admission queue.
	QueueDepth int
	// MaxBatch caps the number of requests a replica keeps inflight in
	// its continuous batch (default 8). 1 degenerates to run-to-completion
	// serving: each request decodes alone, the pre-scheduler behaviour.
	// The scheduler's KV budget (Engine.KVBudgetBytes) still bounds the
	// per-step decoding set within the batch.
	MaxBatch int
	// AnswerID / EosID configure request control tokens.
	AnswerID int
	EosID    int
	// Cache, when non-nil, is the shard's shared radix prefix cache: every
	// replica engine consults it at prefill and inserts completed
	// sequences back. If the drafter learns online (draft.Observer, e.g.
	// the n-gram drafter) and the cache is already warm at construction —
	// a scaler re-promotion, a redeploy over surviving cache state — the
	// server replays the cache's harvested continuation statistics into it
	// once, so the shard starts with a hot drafter instead of relearning
	// its own traffic. Setting Engine.Cache directly is equivalent.
	Cache *prefixcache.Cache
}

// Request is one serving job.
type Request struct {
	Prompt []int
	MaxNew int
	// Prior optionally shapes the response length.
	Prior workload.LengthPrior
	// Seed drives the per-request sampling stream.
	Seed int64
}

// Response is the served completion.
type Response struct {
	Tokens []int
	// Latency is the modelled service latency: queueing (wall) plus the
	// replica's virtual decode time for this request.
	Latency time.Duration
	// DecodeTime is the virtual decode component alone.
	DecodeTime time.Duration
	// AcceptLen is the mean SD accept length (0 without SD).
	AcceptLen float64
	Err       error
}

type job struct {
	req      Request
	enqueued time.Time
	done     chan Response
}

// MaxLatencySamples bounds the latency-sample reservoir: long-running
// servers previously appended one float per request forever, an unbounded
// memory leak under sustained traffic. 4096 samples keep percentile
// estimates tight (p95 standard error well under 1%) at a fixed ~32KB.
const MaxLatencySamples = 4096

// Server is a concurrent SD inference service over a frozen target.
type Server struct {
	cfg     Config
	target  *model.LM
	drafter draft.Drafter
	queue   chan *job
	// inflight counts jobs a replica has dequeued but not yet answered;
	// together with the queue length it is the server's externally visible
	// load (the probe cluster routing policies weigh shards by).
	inflight atomic.Int64
	wg       sync.WaitGroup
	// stopMu serialises queue sends against Stop closing the queue: Submit
	// holds the read side across its send (replicas drain the queue without
	// taking the lock, so a blocked send always completes), Stop takes the
	// write side before close. Without it a Submit racing Stop could send
	// on a closed channel.
	stopMu  sync.RWMutex
	stopped bool
	mu      sync.Mutex
	// lats is a bounded uniform sample over all served latencies.
	lats   *metrics.Reservoir
	served int
}

// New builds a server. drafter may be nil (vanilla decoding).
func New(cfg Config, target *model.LM, drafter draft.Drafter) (*Server, error) {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 8
	}
	if cfg.Engine.Device == nil {
		return nil, fmt.Errorf("serving: engine device required")
	}
	if cfg.Cache == nil {
		cfg.Cache = cfg.Engine.Cache
	} else {
		cfg.Engine.Cache = cfg.Cache
	}
	if obs, ok := drafter.(draft.Observer); ok && cfg.Cache != nil {
		// Drafter warm-start: a server attached to an already-warm cache
		// inherits its traffic's continuation statistics immediately.
		cfg.Cache.WarmStart(obs)
	}
	s := &Server{
		cfg:     cfg,
		target:  target,
		drafter: drafter,
		queue:   make(chan *job, cfg.QueueDepth),
		lats:    metrics.NewReservoir(MaxLatencySamples, 0x1a7),
	}
	for r := 0; r < cfg.Replicas; r++ {
		s.wg.Add(1)
		go s.replica(r)
	}
	return s, nil
}

// replica is one continuous-batching serving worker: it owns a scheduler
// batch and step-loops over it, draining the shared admission queue into
// the batch at every iteration boundary and retiring finished requests at
// the same granularity.
func (s *Server) replica(id int) {
	defer s.wg.Done()
	batch, err := sched.New(s.cfg.Engine, s.target, s.drafter)
	if err != nil {
		// Configuration errors surface on every job this replica takes.
		for j := range s.queue {
			j.done <- Response{Err: err}
		}
		return
	}
	// A serving step-loop runs indefinitely: per-iteration profiles would
	// be an unbounded accumulator (the serving layer keeps its own bounded
	// latency reservoir instead).
	batch.RecordProfile = false
	// Shared fallback stream for Batch.Step; never drawn from, since every
	// admitted request carries its own seeded RNG.
	rng := rand.New(rand.NewSource(0x5eed ^ int64(id)))

	admit := func(j *job) {
		s.inflight.Add(1)
		r := sched.NewRequest(id, j.req.Prompt, j.req.MaxNew, j.req.Prior, s.cfg.AnswerID, s.cfg.EosID)
		// A private sampling stream per request: its tokens do not depend
		// on what it is batched with or when it joined the batch.
		r.RNG = rand.New(rand.NewSource(j.req.Seed))
		r.Tag = j
		batch.Admit(r)
	}

	open := true
	for {
		if batch.ActiveCount() == 0 {
			if !open {
				return
			}
			j, ok := <-s.queue
			if !ok {
				return
			}
			admit(j)
		}
		// Continuous batching: fold every queued request into the batch at
		// this step boundary, up to the batch cap — new work joins mid-
		// flight instead of waiting for the running requests to finish.
	drain:
		for open && batch.ActiveCount() < s.cfg.MaxBatch {
			select {
			case j, ok := <-s.queue:
				if !ok {
					open = false
					break drain
				}
				admit(j)
			default:
				break drain
			}
		}
		batch.Step(rng)
		for _, r := range batch.Retire() {
			j := r.Tag.(*job)
			// Per-request accept length is exact: it is computed from the
			// request's own accepted rounds, not whole-engine statistics
			// that would smear co-batched requests together.
			resp := Response{
				Tokens:     r.Response(),
				DecodeTime: r.DecodeTime(),
				Latency:    time.Since(j.enqueued) + r.DecodeTime(),
				AcceptLen:  r.MeanAcceptLen(),
			}
			s.mu.Lock()
			s.lats.Add(resp.Latency.Seconds())
			s.served++
			s.mu.Unlock()
			s.inflight.Add(-1)
			j.done <- resp
		}
	}
}

// QueueLen returns the number of admitted jobs not yet picked up by a
// replica.
func (s *Server) QueueLen() int { return len(s.queue) }

// Inflight returns the number of jobs currently being decoded by replicas.
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// Pending returns the total outstanding jobs (queued + inflight), the load
// signal used by queue-depth-weighted routing.
func (s *Server) Pending() int { return s.QueueLen() + s.Inflight() }

// Replicas returns the configured replica count (the shard's service
// parallelism, used to convert queue depth into an expected wait).
func (s *Server) Replicas() int { return s.cfg.Replicas }

// Cache returns the shard's prefix cache (nil when caching is disabled).
func (s *Server) Cache() *prefixcache.Cache { return s.cfg.Cache }

// CacheHitRate is the shard's prefill cache hit rate probe (0 without a
// cache or before the first lookup).
func (s *Server) CacheHitRate() float64 {
	if s.cfg.Cache == nil {
		return 0
	}
	return s.cfg.Cache.HitRate()
}

// CacheResidentBytes is the shard's resident cache-footprint probe.
func (s *Server) CacheResidentBytes() int64 {
	if s.cfg.Cache == nil {
		return 0
	}
	return s.cfg.Cache.ResidentBytes()
}

// Submit enqueues a request and returns a channel delivering its response.
// It fails fast when the context is cancelled or the server is stopped.
func (s *Server) Submit(ctx context.Context, req Request) (<-chan Response, error) {
	s.stopMu.RLock()
	defer s.stopMu.RUnlock()
	if s.stopped {
		return nil, fmt.Errorf("serving: server stopped")
	}
	j := &job{req: req, enqueued: time.Now(), done: make(chan Response, 1)}
	select {
	case s.queue <- j:
		return j.done, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Serve submits and waits.
func (s *Server) Serve(ctx context.Context, req Request) (Response, error) {
	ch, err := s.Submit(ctx, req)
	if err != nil {
		return Response{}, err
	}
	select {
	case r := <-ch:
		return r, r.Err
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

// Stop drains the queue and shuts the replicas down.
func (s *Server) Stop() {
	s.stopMu.Lock()
	if s.stopped {
		s.stopMu.Unlock()
		return
	}
	s.stopped = true
	s.stopMu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// Stats summarises served traffic.
type Stats struct {
	Served int
	P50    time.Duration
	P95    time.Duration
}

// Stats returns latency percentiles over everything served so far (a
// bounded uniform reservoir once traffic exceeds MaxLatencySamples).
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Served: s.served,
		P50:    time.Duration(s.lats.Percentile(50) * float64(time.Second)),
		P95:    time.Duration(s.lats.Percentile(95) * float64(time.Second)),
	}
}
