// Package serving implements the deployment scenario of paper §7: the
// drafter that TLT trained for free during RL is served with adaptive
// speculative decoding against the frozen policy. Unlike the rollout
// engine (which simulates one synchronous training worker), the server
// runs real concurrent replica goroutines with a shared request queue and
// reports latency percentiles — the shape of an online inference service.
//
// Replicas are continuous-batching step-loop workers over the
// iteration-level scheduler (internal/sched): each iteration a replica
// drains newly admitted requests from the shared queue into its batch (up
// to Config.MaxBatch), advances every inflight request one step through a
// single batched scoring pass, and retires finished requests at the step
// boundary — so a long request never blocks the short requests queued
// behind it, the property that separates iteration-level scheduling from
// run-to-completion serving. Every request decodes on its own seeded
// sampling stream, so its token stream is independent of what it happens
// to be batched with.
//
// The request surface is streaming-first: Server.Stream returns a
// pull-based session of token/accept/usage events with real mid-flight
// cancellation (see stream.go); Submit and Serve are thin wrappers that
// drain one.
package serving

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fastrl/internal/draft"
	"fastrl/internal/metrics"
	"fastrl/internal/model"
	"fastrl/internal/prefixcache"
	"fastrl/internal/rollout"
	"fastrl/internal/sched"
	"fastrl/internal/slo"
	"fastrl/internal/trace"
	"fastrl/internal/workload"
)

// Config parameterises the server.
type Config struct {
	// Engine configures each replica's rollout engine (device, SD
	// threshold, strategies).
	Engine rollout.Config
	// Replicas is the number of concurrent model replicas (each one
	// step-loop worker goroutine with its own scheduler batch and virtual
	// clock).
	Replicas int
	// QueueDepth bounds the admission queue.
	QueueDepth int
	// MaxBatch caps the number of requests a replica keeps inflight in
	// its continuous batch (default 16, which the bitmap scheduler core
	// sustains at flat per-request step cost while staying inside the
	// engine's default SD regime). 1 degenerates to run-to-completion
	// serving: each request decodes alone, the pre-scheduler behaviour.
	// The scheduler's KV budget (Engine.KVBudgetBytes) still bounds the
	// per-step decoding set within the batch.
	MaxBatch int
	// AnswerID / EosID configure request control tokens.
	AnswerID int
	EosID    int
	// Cache, when non-nil, is the shard's shared radix prefix cache: every
	// replica engine consults it at prefill and inserts completed
	// sequences back. If the drafter learns online (draft.Observer, e.g.
	// the n-gram drafter) and the cache is already warm at construction —
	// a scaler re-promotion, a redeploy over surviving cache state — the
	// server replays the cache's harvested continuation statistics into it
	// once, so the shard starts with a hot drafter instead of relearning
	// its own traffic. Setting Engine.Cache directly is equivalent.
	Cache *prefixcache.Cache
	// Tracer, when non-nil, starts a lifecycle trace for every admitted
	// request (internal/trace); replicas record spans into it at step
	// boundaries. Nil (the default) keeps the hot paths untraced and
	// allocation-free.
	Tracer *trace.Tracer
	// Flight, when non-nil, mirrors every recorded span into this shard's
	// flight recorder — the postmortem ring the cluster health monitor
	// snapshots on faults.
	Flight *trace.FlightRecorder
	// SLO, when non-nil, receives this server's observation streams for
	// burn-rate evaluation (internal/slo): TTFT and per-chunk ITL samples
	// at step boundaries, request outcomes at terminal events. The cluster
	// passes each shard its own engine; nil (the default) keeps the hot
	// paths SLO-free at the cost of one pointer check.
	SLO *slo.Engine
	// ShardID labels this server's traces and flight records (the Chrome
	// export's process ID); the cluster sets it per shard.
	ShardID int
}

// Request is one serving job.
type Request struct {
	Prompt []int
	MaxNew int
	// Prior optionally shapes the response length.
	Prior workload.LengthPrior
	// Seed drives the per-request sampling stream.
	Seed int64
}

// Response is the served completion (the payload of a stream's terminal
// Usage event).
//
// Error reporting: on paths that return an explicit error — Serve,
// Stream.Wait — that error return is authoritative and Err merely mirrors
// it. Err exists for the channel path (Submit), which has no error return
// of its own; callers holding an error return should use it and ignore
// Err.
type Response struct {
	Tokens []int
	// ReqID is the scheduler request ID the serving layer assigned (unique
	// within one server) — the ID that exemplar-linked latency histograms
	// and flight-recorder records carry, so a tail percentile links back to
	// this request's spans. Zero when the request never entered a batch.
	ReqID int64
	// Latency is the modelled service latency: queueing (wall) plus the
	// replica's virtual decode time for this request.
	Latency time.Duration
	// DecodeTime is the virtual decode component alone.
	DecodeTime time.Duration
	// TTFT is time-to-first-token: queue wall time plus the virtual
	// decode time from admission to the step boundary that emitted the
	// first token chunk (zero if no token was ever produced).
	TTFT time.Duration
	// ITL is the request's mean inter-token latency in virtual time — the
	// span from the first token chunk to the last, spread over the tokens
	// delivered after the first chunk (zero for single-chunk responses).
	ITL time.Duration
	// AcceptLen is the mean SD accept length (0 without SD).
	AcceptLen float64
	// Err reports per-request failure on the channel path (Submit); it is
	// context.Canceled when the request was cancelled mid-flight, in which
	// case Tokens holds the partial response. Where an explicit error is
	// returned alongside the Response, that error is the authoritative
	// copy of this field.
	Err error
}

// ErrStopped is returned by Stream/Submit/Serve after a graceful Stop.
var ErrStopped = errors.New("serving: server stopped")

// ErrCrashed marks requests stranded by an injected (or detected) shard
// crash: the terminal Usage carries the partial tokens streamed before
// death with this error, and new submissions fail fast with it. The
// cluster failover layer keys resubmission off this sentinel.
var ErrCrashed = errors.New("serving: server crashed")

// Server is a concurrent SD inference service over a frozen target.
type Server struct {
	cfg     Config
	target  *model.LM
	drafter draft.Drafter
	queue   chan *job
	// inflight counts jobs a replica has dequeued but not yet answered;
	// together with the queue length it is the server's externally visible
	// load (the probe cluster routing policies weigh shards by).
	inflight atomic.Int64
	// reqSeq issues unique scheduler-request IDs across replicas, so
	// ID-keyed batch operations (sched.Batch.Cancel) address exactly one
	// request.
	reqSeq atomic.Int64
	wg     sync.WaitGroup
	// stopMu serialises queue sends against Stop closing the queue: Submit
	// holds the read side across its send (replicas drain the queue without
	// taking the lock, so a blocked send always completes), Stop takes the
	// write side before close. Without it a Submit racing Stop could send
	// on a closed channel.
	stopMu  sync.RWMutex
	stopped bool
	// Fault-injection surface (chaos testing and failover drills). crashed
	// flips once, at most; hung gates the replica step loops in a poll that
	// only crash releases; stall adds a wall-clock delay (ns) per step to
	// model a slow shard; steps counts completed scheduler steps across
	// replicas — the liveness signal hang detection watches; dupSuppressed
	// counts terminal events swallowed by the per-job delivery dedup.
	crashed       atomic.Bool
	hung          atomic.Bool
	stall         atomic.Int64
	steps         atomic.Int64
	dupSuppressed atomic.Int64
	mu            sync.Mutex
	// lats/ttfts/itls are the server's exemplar-linked latency histograms
	// (fixed-shape log buckets, see metrics.Histogram): lats records one
	// end-to-end latency per served request, ttfts one time-to-first-token
	// per request, itls one sample per streamed chunk, fed by the replicas'
	// event publishing. Exemplars are scheduler request IDs, so a tail
	// bucket links straight to this shard's flight-recorder records and
	// trace spans.
	lats  *metrics.Histogram
	ttfts *metrics.Histogram
	itls  *metrics.Histogram
	// reg is the server's unified metrics registry. Outcome counters are
	// written in registry Update groups, so one Snapshot reads mutually
	// consistent counts — served + cancelled + errored never exceeds
	// submitted in any snapshot, not just at quiescence (the torn-stats
	// fix). Lock order: registry before s.mu, never the reverse.
	reg        *metrics.Registry
	cSubmitted *metrics.Counter
	cServed    *metrics.Counter
	cCancelled *metrics.Counter
	cErrored   *metrics.Counter
	// Warm-ingest queue: cache-fabric replications enqueued here are
	// applied to the shard's prefix cache by a replica at its next step
	// boundary — never mid-step, same discipline as fault injection.
	// warmPending keeps the step loop's check to one atomic load, so the
	// path is free when no fabric feeds it.
	warmMu      sync.Mutex
	warmQ       []warmItem
	warmPending atomic.Bool
	cIngested   *metrics.Counter
	cIngestDrop *metrics.Counter
}

// warmItem is one queued replication: the exported prefix plus the
// fabric's confirmation callback, invoked after the import lands.
type warmItem struct {
	prefix    prefixcache.ExportedPrefix
	onApplied func()
}

// warmQueueDepth bounds the warm-ingest queue; replications beyond it
// are dropped (and counted) rather than growing without bound — the
// fabric reschedules them on a later tick.
const warmQueueDepth = 256

// New builds a server. drafter may be nil (vanilla decoding).
func New(cfg Config, target *model.LM, drafter draft.Drafter) (*Server, error) {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBatch < 1 {
		// The bitmap scheduler core keeps per-step selection cost flat in
		// batch width (sched/batch-step-64 tracks batch-step-8 per-request
		// in BENCH), so the default co-batching window is 16, not the 8
		// the slice-scan core shipped with. Not higher: the default
		// engine's SDThreshold is 32, and a default worth of co-batched
		// requests should stay comfortably inside the speculative-decoding
		// regime rather than silently tipping replicas into vanilla mode.
		cfg.MaxBatch = 16
	}
	if cfg.Engine.Device == nil {
		return nil, fmt.Errorf("serving: engine device required")
	}
	if cfg.Cache == nil {
		cfg.Cache = cfg.Engine.Cache
	} else {
		cfg.Engine.Cache = cfg.Cache
	}
	if obs, ok := drafter.(draft.Observer); ok && cfg.Cache != nil {
		// Drafter warm-start: a server attached to an already-warm cache
		// inherits its traffic's continuation statistics immediately.
		cfg.Cache.WarmStart(obs)
	}
	s := &Server{
		cfg:     cfg,
		target:  target,
		drafter: drafter,
		queue:   make(chan *job, cfg.QueueDepth),
		lats:    metrics.NewHistogram(),
		ttfts:   metrics.NewHistogram(),
		itls:    metrics.NewHistogram(),
		reg:     metrics.NewRegistry(),
	}
	s.cSubmitted = s.reg.Counter("submitted")
	s.cServed = s.reg.Counter("served")
	s.cCancelled = s.reg.Counter("cancelled")
	s.cErrored = s.reg.Counter("errored")
	s.cIngested = s.reg.Counter("fabric/ingested")
	s.cIngestDrop = s.reg.Counter("fabric/ingest_dropped")
	// Point-in-time probes: atomic loads and leaf locks only, as the
	// registry's snapshot contract requires.
	s.reg.Gauge("queue_len", func() float64 { return float64(s.QueueLen()) })
	s.reg.Gauge("inflight", func() float64 { return float64(s.Inflight()) })
	s.reg.Gauge("steps", func() float64 { return float64(s.StepCount()) })
	s.reg.Gauge("dup_suppressed", func() float64 { return float64(s.DupSuppressed()) })
	s.reg.HistogramFunc("latency", func() *metrics.Histogram { s.mu.Lock(); defer s.mu.Unlock(); return s.lats.Clone() })
	s.reg.HistogramFunc("ttft", func() *metrics.Histogram { s.mu.Lock(); defer s.mu.Unlock(); return s.ttfts.Clone() })
	s.reg.HistogramFunc("itl", func() *metrics.Histogram { s.mu.Lock(); defer s.mu.Unlock(); return s.itls.Clone() })
	if s.cfg.Cache != nil {
		s.cfg.Cache.RegisterMetrics(s.reg, "cache/")
	}
	// Replica schedulers feed the sched/* counters of the same registry.
	s.cfg.Engine.Metrics = s.reg
	for r := 0; r < cfg.Replicas; r++ {
		s.wg.Add(1)
		go s.replica(r)
	}
	return s, nil
}

// Registry exposes the server's unified metrics registry. Snapshot it
// for a consistent cross-counter view; Stats is a typed convenience over
// the same snapshot.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Flight returns the shard's flight recorder (nil unless configured).
func (s *Server) Flight() *trace.FlightRecorder { return s.cfg.Flight }

// replica is one continuous-batching serving worker: it owns a scheduler
// batch and step-loops over it, draining the shared admission queue into
// the batch at every iteration boundary, publishing every running
// request's new tokens into its stream at the same granularity, and
// retiring finished (or cancelled) requests at step boundaries.
func (s *Server) replica(id int) {
	defer s.wg.Done()
	batch, err := sched.New(s.cfg.Engine, s.target, s.drafter)
	if err != nil {
		// Configuration errors surface on every job this replica takes.
		for j := range s.queue {
			if j.claimed.CompareAndSwap(false, true) {
				s.finishJob(j, Response{Err: err}, false, 0)
			}
		}
		return
	}
	// A serving step-loop runs indefinitely: per-iteration profiles would
	// be an unbounded accumulator (the serving layer keeps its own bounded
	// latency reservoir instead).
	batch.RecordProfile = false
	// Shared fallback stream for Batch.Step; never drawn from, since every
	// admitted request carries its own seeded RNG.
	rng := rand.New(rand.NewSource(0x5eed ^ int64(id)))
	// running tracks the jobs inside this replica's batch so each step can
	// publish their stream progress; samples batches the step's TTFT/ITL
	// reservoir feeds into one stats-lock acquisition.
	running := make([]*job, 0, s.cfg.MaxBatch)
	samples := &stepSamples{
		ttfts: make([]latSample, 0, s.cfg.MaxBatch),
		itls:  make([]latSample, 0, s.cfg.MaxBatch),
	}

	admit := func(j *job) {
		if !j.claimed.CompareAndSwap(false, true) {
			// A canceller already claimed and finished this job while it
			// sat in the queue; drop it.
			return
		}
		if j.cancelReq.Load() {
			// Cancelled while queued: the request retires without ever
			// entering a batch — no prefill, no KV, no slot.
			s.finishJob(j, Response{Err: context.Canceled}, false, 0)
			return
		}
		s.inflight.Add(1)
		r := sched.NewRequest(int(s.reqSeq.Add(1)), j.req.Prompt, j.req.MaxNew, j.req.Prior, s.cfg.AnswerID, s.cfg.EosID)
		if s.cfg.Tracer != nil {
			r.Trace = s.cfg.Tracer.Start(int64(r.ID), int32(s.cfg.ShardID), s.cfg.Flight)
		}
		// A private sampling stream per request: its tokens do not depend
		// on what it is batched with or when it joined the batch.
		r.RNG = rand.New(rand.NewSource(j.req.Seed))
		r.Tag = j
		j.sr.Store(r)
		if j.cancelReq.Load() {
			// A cancel that raced admission: make sure the batch sees it.
			r.Cancel()
		}
		batch.Admit(r)
		running = append(running, j)
	}

	open := true
	for {
		if batch.ActiveCount() == 0 {
			if !open {
				return
			}
			j, ok := <-s.queue
			if !ok {
				return
			}
			admit(j)
		}
		// Continuous batching: fold every queued request into the batch at
		// this step boundary, up to the batch cap — new work joins mid-
		// flight instead of waiting for the running requests to finish.
	drain:
		for open && batch.ActiveCount() < s.cfg.MaxBatch {
			select {
			case j, ok := <-s.queue:
				if !ok {
					open = false
					break drain
				}
				admit(j)
			default:
				break drain
			}
		}
		// Cache-fabric ingest, applied at step boundaries only (same
		// contract as fault checkpoints): replicated prefixes land before
		// the step, so a request admitted this iteration already prefills
		// against them, and never mid-step.
		if s.warmPending.Load() {
			s.drainWarm(batch.Clock.Now())
		}
		// Fault checkpoints, evaluated at step boundaries only — a crash or
		// hang never lands mid-step, so the scheduler's state stays exactly
		// what the last completed step published (the failover layer's
		// "precise state" guarantee). They sit after admission and before
		// the step, with the stall first, so work admitted while a fault was
		// landing never decodes under it: the stall delays every step
		// (including a request's first), and a hang or crash arriving during
		// the stall is observed before the step runs — a hang freezes the
		// loop until Unhang or the health monitor escalates it to a crash.
		if d := s.stall.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		for s.hung.Load() && !s.crashed.Load() {
			time.Sleep(200 * time.Microsecond)
		}
		if s.crashed.Load() {
			s.crashReplica(batch, rng, running)
			return
		}
		batch.Step(rng)
		s.steps.Add(1)
		now := batch.Clock.Now()
		retired := batch.Retire()
		// Publish the step's progress — retiring requests first, so their
		// final chunk (and its TTFT/ITL bookkeeping) lands before the
		// terminal event — then fold the step's SLO samples into the
		// reservoirs before any terminal event wakes a client: a caller
		// returning from Wait must find its samples already in Stats.
		for _, r := range retired {
			s.publishProgress(r.Tag.(*job), r, now, samples)
		}
		for _, r := range retired {
			j := r.Tag.(*job)
			for i, rj := range running {
				if rj == j {
					copy(running[i:], running[i+1:])
					// Clear the vacated tail slot so the retired job is
					// not pinned by the backing array (the sched package's
					// convention for its inflight list).
					running[len(running)-1] = nil
					running = running[:len(running)-1]
					break
				}
			}
		}
		for _, j := range running {
			s.publishProgress(j, j.sr.Load(), now, samples)
		}
		samples.flush(s, now)
		for _, r := range retired {
			j := r.Tag.(*job)
			// Per-request accept length is exact: it is computed from the
			// request's own accepted rounds, not whole-engine statistics
			// that would smear co-batched requests together.
			resp := Response{
				Tokens:     r.Response(),
				ReqID:      int64(r.ID),
				DecodeTime: r.DecodeTime(),
				Latency:    time.Since(j.enqueued) + r.DecodeTime(),
				TTFT:       j.ttft,
				AcceptLen:  r.MeanAcceptLen(),
			}
			if gen := len(resp.Tokens); gen > j.firstChunk && j.lastTokV > j.firstTokV {
				resp.ITL = (j.lastTokV - j.firstTokV) / time.Duration(gen-j.firstChunk)
			}
			if r.Cancelled() {
				resp.Err = context.Canceled
			}
			s.finishJob(j, resp, true, now)
		}
	}
}

// crashReplica is a replica's death throes: every running request is
// cancelled and swept out of the batch at one final step boundary —
// releasing KV charges, batch slots, and prefix-cache pins exactly like a
// client cancellation — and its terminal event delivers the partial tokens
// with ErrCrashed. Jobs still in the (closed) admission queue are claimed
// and failed the same way. Terminal delivery goes through finishJob's
// dedup CAS, so a request the failover layer already failed (or that
// completed during the crash) never emits twice.
func (s *Server) crashReplica(batch *sched.Batch, rng *rand.Rand, running []*job) {
	for _, j := range running {
		if r := j.sr.Load(); r != nil {
			r.Cancel()
		}
	}
	// One sweep step retires every cancelled request without decoding.
	batch.Step(rng)
	now := batch.Clock.Now()
	retired := batch.Retire()
	for _, r := range retired {
		j := r.Tag.(*job)
		s.finishJob(j, Response{Tokens: r.Response(), ReqID: int64(r.ID), Err: ErrCrashed}, true, now)
	}
	// Crash implies shutdown closed the queue; strand whatever is left.
	for j := range s.queue {
		if j.claimed.CompareAndSwap(false, true) {
			s.finishJob(j, Response{Err: ErrCrashed}, false, now)
		}
	}
}

// Crash kills the server abruptly at the replicas' next step boundaries:
// inflight requests terminate with their partial tokens and ErrCrashed,
// queued requests fail with ErrCrashed, and new submissions fail fast.
// Idempotent, and safe concurrently with Stop (the first caller picks the
// mode; both block until the replicas exit). A hung server can be crashed —
// that is how the health monitor reclaims its goroutines.
func (s *Server) Crash() { s.shutdown(true) }

// Stop drains the queue and shuts the replicas down gracefully: admitted
// work completes and queued work is served before the replicas exit.
// Idempotent and safe to call concurrently with Crash or another Stop.
func (s *Server) Stop() { s.shutdown(false) }

func (s *Server) shutdown(crash bool) {
	s.stopMu.Lock()
	if s.stopped {
		s.stopMu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	if crash {
		s.crashed.Store(true)
	}
	s.stopMu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// Hang freezes every replica's step loop at its next step boundary: the
// server keeps its inflight requests but makes no progress and emits no
// events — the failure mode a liveness monitor has to detect by watching
// StepCount. Only Unhang or Crash releases a hung server.
func (s *Server) Hang() { s.hung.Store(true) }

// Unhang releases a Hang; the replicas resume stepping where they froze.
func (s *Server) Unhang() { s.hung.Store(false) }

// SetStall adds a per-step wall-clock delay to every replica, modelling a
// degraded (slow) shard; 0 restores full speed.
func (s *Server) SetStall(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.stall.Store(int64(d))
}

// StepCount returns the total scheduler steps completed across replicas —
// a monotone liveness probe (a hung server's count stops advancing while
// Inflight stays non-zero).
func (s *Server) StepCount() int64 { return s.steps.Load() }

// Crashed reports whether the server died by Crash.
func (s *Server) Crashed() bool { return s.crashed.Load() }

// DupSuppressed returns how many terminal events the per-request delivery
// dedup swallowed (each one a would-have-been duplicate delivery).
func (s *Server) DupSuppressed() int64 { return s.dupSuppressed.Load() }

// TailHistograms returns clones of the latency and TTFT histograms, for
// exact bucket-wise merging into cluster-level tail percentiles.
// metrics.Histogram.Merge is deterministic and order-independent, unlike
// the seen-weighted reservoir sampling it replaced, so merged p99.9s no
// longer drift run to run — and the merged tail buckets keep their
// exemplar request IDs.
func (s *Server) TailHistograms() (lats, ttfts *metrics.Histogram) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lats.Clone(), s.ttfts.Clone()
}

// QueueLen returns the number of admitted jobs not yet picked up by a
// replica.
func (s *Server) QueueLen() int { return len(s.queue) }

// Inflight returns the number of jobs currently being decoded by replicas.
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// Pending returns the total outstanding jobs (queued + inflight), the load
// signal used by queue-depth-weighted routing.
func (s *Server) Pending() int { return s.QueueLen() + s.Inflight() }

// Replicas returns the configured replica count (the shard's service
// parallelism, used to convert queue depth into an expected wait).
func (s *Server) Replicas() int { return s.cfg.Replicas }

// Cache returns the shard's prefix cache (nil when caching is disabled).
func (s *Server) Cache() *prefixcache.Cache { return s.cfg.Cache }

// EnqueueWarm queues one cache-fabric replication for ingest at the next
// step boundary. It returns false — and the replication must be
// considered dropped — when the shard has no cache, has crashed, or the
// warm queue is full. onApplied (optional) runs on the replica goroutine
// right after the prefix is imported.
func (s *Server) EnqueueWarm(p prefixcache.ExportedPrefix, onApplied func()) bool {
	if s.cfg.Cache == nil || s.crashed.Load() {
		return false
	}
	s.warmMu.Lock()
	if len(s.warmQ) >= warmQueueDepth {
		s.warmMu.Unlock()
		s.cIngestDrop.Inc()
		return false
	}
	s.warmQ = append(s.warmQ, warmItem{prefix: p, onApplied: onApplied})
	s.warmPending.Store(true)
	s.warmMu.Unlock()
	return true
}

// drainWarm applies every queued replication to the shard cache, records
// a KindReplicate marker per import into the flight recorder, and fires
// the confirmation callbacks. Called from a replica at a step boundary;
// the queue swap keeps the lock off the import work.
func (s *Server) drainWarm(now time.Duration) {
	s.warmMu.Lock()
	items := s.warmQ
	s.warmQ = nil
	s.warmPending.Store(false)
	s.warmMu.Unlock()
	for _, it := range items {
		s.cfg.Cache.Import(it.prefix)
		s.cIngested.Inc()
		if s.cfg.Flight != nil {
			s.cfg.Flight.Record(trace.Record{
				ReqID: -1,
				Shard: int32(s.cfg.ShardID),
				Kind:  trace.KindReplicate,
				Start: now,
				End:   now,
				Arg:   int64(len(it.prefix.Tokens)),
			})
		}
		if it.onApplied != nil {
			it.onApplied()
		}
	}
}

// CacheHitRate is the shard's prefill cache hit rate probe (0 without a
// cache or before the first lookup).
func (s *Server) CacheHitRate() float64 {
	if s.cfg.Cache == nil {
		return 0
	}
	return s.cfg.Cache.HitRate()
}

// CacheResidentBytes is the shard's resident cache-footprint probe.
func (s *Server) CacheResidentBytes() int64 {
	if s.cfg.Cache == nil {
		return 0
	}
	return s.cfg.Cache.ResidentBytes()
}

// Stream enqueues a request and returns its streaming session — the
// primary request path (Submit and Serve are wrappers over it). It fails
// fast when ctx is already cancelled, the queue send would block past a
// cancellation, or the server is stopped. The returned stream delivers
// token chunks at step boundaries, per-round accept updates, and exactly
// one terminal Usage event; cancelling ctx (or calling Stream.Cancel)
// retires the request at the replica's next step boundary, freeing its
// batch slot, KV charge, and prefix-cache pins.
func (s *Server) Stream(ctx context.Context, req Request) (*Stream, error) {
	s.stopMu.RLock()
	defer s.stopMu.RUnlock()
	if s.stopped {
		if s.crashed.Load() {
			return nil, ErrCrashed
		}
		return nil, ErrStopped
	}
	// A dead caller must not consume a queue slot: without this check the
	// select below chooses arbitrarily between a ready queue and a
	// ready Done channel, so an already-cancelled context could still
	// enqueue (and, on a full queue, block forever pre-redesign).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	j := newJob(req)
	// Count the submission before the queue send: a replica may dequeue
	// and finish the job the instant it lands, and the terminal counters
	// must never lead the submission counter in a snapshot. The rare
	// failed send below retracts the count in an Update group.
	s.cSubmitted.Inc()
	select {
	case s.queue <- j:
	case <-ctx.Done():
		s.reg.Update(func() { s.cSubmitted.Add(-1) })
		return nil, ctx.Err()
	}
	st := &Stream{srv: s, j: j, ctx: ctx}
	if done := ctx.Done(); done != nil {
		// The watcher propagates a context cancellation even when nobody
		// is blocked in Recv/Wait (a caller that walked away); it exits
		// at the terminal event.
		go func() {
			select {
			case <-done:
				s.cancelJob(j)
			case <-j.term:
			}
		}()
	}
	return st, nil
}

// Submit enqueues a request and returns a channel delivering its
// response — a wrapper that drains a Stream to its terminal event. On
// this path Response.Err is the only failure signal (see Response);
// cancelling ctx after a successful Submit delivers the partial response
// with Err = context.Canceled.
func (s *Server) Submit(ctx context.Context, req Request) (<-chan Response, error) {
	st, err := s.Stream(ctx, req)
	if err != nil {
		return nil, err
	}
	ch := make(chan Response, 1)
	// Goroutine-free delivery: the terminal hook fires exactly once and
	// the buffered send cannot block.
	st.OnFinish(func(r Response) { ch <- r })
	return ch, nil
}

// Serve submits and waits for completion — a wrapper that drains a
// Stream. The returned error is authoritative (Response.Err mirrors it);
// on mid-flight cancellation it returns the partial response together
// with context.Canceled.
func (s *Server) Serve(ctx context.Context, req Request) (Response, error) {
	st, err := s.Stream(ctx, req)
	if err != nil {
		return Response{}, err
	}
	return st.Wait()
}

// Stats summarises served traffic.
type Stats struct {
	// Submitted counts requests accepted into the admission queue. In any
	// Stats value Served + Cancelled + Errored ≤ Submitted, with equality
	// at quiescence — the counters come from one registry snapshot, so
	// they can never tear against each other.
	Submitted int
	Served    int
	// Errored counts requests that terminated with a hard failure
	// (replica configuration errors) — excluded from the percentiles
	// like cancellations, but never silently dropped from the counters.
	Errored int
	// Cancelled counts requests retired through the cancellation path.
	// They are excluded from the end-to-end latency percentiles (P50/P95
	// sample only completed responses), but the chunks they streamed
	// before cancellation still contribute TTFT/ITL samples — those
	// latencies were really delivered. The cluster layer, which samples
	// once per completed request instead of per chunk, excludes cancelled
	// requests from its TTFT/ITL percentiles entirely.
	Cancelled int
	P50       time.Duration
	P95       time.Duration
	// TTFTP50/TTFTP95 are time-to-first-token percentiles; ITLP50/ITLP95
	// are inter-token latency percentiles over per-chunk samples (each
	// streamed chunk contributes one sample: its virtual gap divided by
	// its token count).
	TTFTP50 time.Duration
	TTFTP95 time.Duration
	ITLP50  time.Duration
	ITLP95  time.Duration
}

// Stats returns latency percentiles over everything served so far, read
// from the server's log-bucket histograms (quantiles exact to within the
// 12.5% bucket width, deterministic — no sampling). All counters come
// from one registry snapshot, so they are mutually consistent even while
// replicas are retiring requests concurrently.
func (s *Server) Stats() Stats {
	snap := s.reg.Snapshot()
	lat, ttft, itl := snap.Histogram("latency"), snap.Histogram("ttft"), snap.Histogram("itl")
	return Stats{
		Submitted: int(snap.Counter("submitted")),
		Served:    int(snap.Counter("served")),
		Errored:   int(snap.Counter("errored")),
		Cancelled: int(snap.Counter("cancelled")),
		P50:       time.Duration(lat.P50),
		P95:       time.Duration(lat.P95),
		TTFTP50:   time.Duration(ttft.P50),
		TTFTP95:   time.Duration(ttft.P95),
		ITLP50:    time.Duration(itl.P50),
		ITLP95:    time.Duration(itl.P95),
	}
}
