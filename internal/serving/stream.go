// Streaming request sessions: the server's primary request path. A
// Stream delivers a request's response incrementally — token chunks at
// scheduler step boundaries (one chunk per speculation round's accepted
// run), per-round accept-length updates, and a terminal Usage event — and
// supports mid-flight cancellation that really frees server resources:
// cancelling the stream's context (or calling Cancel) marks the request
// for retirement, and the replica step-loop evicts it at the next step
// boundary, releasing its KV charge, prefix-cache pins, and batch slot.
//
// The event hot path is allocation-free in steady state: the replica
// publishes slice headers over request-owned token storage under a
// per-job mutex (the producer only ever appends, so a published prefix is
// immutable), and Recv hands out sub-slices of that storage. Per-request
// setup (job, stream handle, watcher goroutine) allocates; per-event
// emission does not — pinned by TestStreamEmissionZeroAllocs.
package serving

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fastrl/internal/sched"
	"fastrl/internal/slo"
)

// EventKind discriminates stream events.
type EventKind uint8

const (
	// EventTokens carries newly generated tokens. One event per scheduler
	// step the request decoded in: a speculation round's whole accepted
	// run arrives as a single chunk.
	EventTokens EventKind = iota + 1
	// EventAccept carries one SD round's accepted-token count (the raw
	// per-round entry behind Response.AcceptLen; vanilla decoding emits
	// none).
	EventAccept
	// EventUsage is the terminal event, carrying everything Response
	// carries. Exactly one is delivered per stream — after it, Recv
	// returns io.EOF.
	EventUsage
)

// Event is one streamed increment of a response.
type Event struct {
	Kind EventKind
	// Tokens (EventTokens) is the chunk of newly generated tokens since
	// the previous token event. It aliases stream-owned storage that stays
	// valid for the life of the stream but is only guaranteed stable until
	// the next Recv; copy it to retain across pulls.
	Tokens []int
	// AcceptLen (EventAccept) is the number of draft tokens the target
	// accepted in one speculation round.
	AcceptLen int
	// Usage (EventUsage) is the final response. Usage.Err is
	// context.Canceled when the stream was cancelled mid-flight (the
	// tokens delivered so far are the partial response).
	Usage Response
}

// job is one request's shared state between the replica that decodes it
// (the producer) and the stream handle that observes it (the consumer).
type job struct {
	req      Request
	enqueued time.Time

	// mu guards the published stream state below. The producer publishes
	// slice headers over the scheduler request's token storage; because
	// the producer only appends, everything below a published length is
	// immutable and the consumer may read it lock-free after copying the
	// header under mu.
	mu      sync.Mutex
	tokens  []int // published generated-token prefix
	accepts []int // published per-SD-round accept lengths
	done    bool
	final   Response

	// notify wakes a blocked Recv after each publish (capacity 1,
	// non-blocking producer sends); term is closed exactly once at the
	// terminal publish so every waiter — Wait callers and the context
	// watcher — wakes without stealing Recv's signal.
	notify chan struct{}
	term   chan struct{}

	// cancelReq marks the job for retirement; sr points at the scheduler
	// request once the replica admits the job, so a late cancel reaches
	// the batch directly. Their store/load ordering makes cancellation
	// race-free against admission: at least one side observes the other.
	cancelReq atomic.Bool
	sr        atomic.Pointer[sched.Request]
	// claimed is the terminal-ownership CAS: exactly one of the replica
	// (at admission) or a canceller (evicting a still-queued job) wins it
	// and is responsible for delivering the terminal event — a request
	// cancelled behind a saturated batch must not wait for a slot it no
	// longer wants.
	claimed atomic.Bool
	// finished is the delivery dedup CAS: the first terminal publisher
	// (replica retirement, queued-cancel, or a failover-driven Fail) wins;
	// every later attempt is swallowed and counted. This is what guarantees
	// a request completing concurrently with failover never emits twice.
	finished atomic.Bool
	// onFinish hooks (guarded by mu) run exactly once each, in
	// registration order, with the final response before any waiter
	// observes the terminal event — the cluster's accounting hook and
	// Submit's channel delivery.
	onFinish []func(Response)

	// Producer-side chunk bookkeeping (replica goroutine only).
	pubTok     int           // generated tokens published so far
	firstTokV  time.Duration // virtual clock at the first token chunk
	lastTokV   time.Duration // virtual clock at the latest token chunk
	firstChunk int           // tokens in the first chunk
	ttft       time.Duration
}

func newJob(req Request) *job {
	return &job{
		req:      req,
		enqueued: time.Now(),
		notify:   make(chan struct{}, 1),
		term:     make(chan struct{}),
	}
}

// cancelJob marks a job for retirement. An admitted job is evicted by
// its batch at the next step boundary; a job still sitting in the
// admission queue is claimed and finished here, immediately — it must
// not hold its queue slot (or, through the cluster, its admission
// reservation) waiting for a replica that may be saturated for a long
// time. The claimed CAS makes this race-free against a replica admitting
// the job concurrently: whichever side wins delivers the terminal event,
// and sequentially consistent atomics guarantee the loser's view is
// caught (a replica that wins the claim after cancelReq was set observes
// the flag and cancels the scheduler request).
func (s *Server) cancelJob(j *job) {
	j.cancelReq.Store(true)
	if r := j.sr.Load(); r != nil {
		r.Cancel()
		return
	}
	if j.claimed.CompareAndSwap(false, true) {
		s.finishJob(j, Response{Err: context.Canceled}, false, 0)
	}
}

// Stream is a pull-based streaming session over one request — the
// primary request path (Serve and Submit are thin wrappers that drain
// one). Recv is single-consumer; Wait and Cancel are safe from any
// goroutine.
type Stream struct {
	srv *Server
	j   *job
	ctx context.Context

	// Consumer cursors, owned by the Recv caller.
	nextTok     int
	nextAcc     int
	sawUsage    bool
	ctxObserved bool
}

// Recv returns the next event, blocking until one is available. After the
// terminal EventUsage it returns io.EOF. If the stream's context is
// cancelled while Recv waits, the request is marked for retirement and
// Recv keeps delivering events until the terminal one — cancellation
// produces a well-formed stream ending, not an abrupt error.
func (st *Stream) Recv() (Event, error) {
	j := st.j
	for {
		j.mu.Lock()
		switch {
		case st.nextTok < len(j.tokens):
			ev := Event{Kind: EventTokens, Tokens: j.tokens[st.nextTok:len(j.tokens):len(j.tokens)]}
			st.nextTok = len(j.tokens)
			j.mu.Unlock()
			return ev, nil
		case st.nextAcc < len(j.accepts):
			ev := Event{Kind: EventAccept, AcceptLen: j.accepts[st.nextAcc]}
			st.nextAcc++
			j.mu.Unlock()
			return ev, nil
		case j.done:
			if st.sawUsage {
				j.mu.Unlock()
				return Event{}, io.EOF
			}
			st.sawUsage = true
			ev := Event{Kind: EventUsage, Usage: j.final}
			j.mu.Unlock()
			return ev, nil
		}
		j.mu.Unlock()

		if st.ctxObserved || st.ctx.Done() == nil {
			select {
			case <-j.notify:
			case <-j.term:
			}
		} else {
			select {
			case <-j.notify:
			case <-j.term:
			case <-st.ctx.Done():
				st.ctxObserved = true
				st.Cancel()
			}
		}
	}
}

// Wait blocks until the stream's terminal event and returns the final
// response without consuming the event iterator (Recv still sees the
// full stream). The error return is authoritative; it mirrors
// Response.Err. Cancelling the stream's context makes Wait return the
// partial response with context.Canceled once the replica retires the
// request at its next step boundary.
func (st *Stream) Wait() (Response, error) {
	j := st.j
	if done := st.ctx.Done(); done != nil {
		select {
		case <-j.term:
		case <-done:
			st.Cancel()
			<-j.term
		}
	} else {
		<-j.term
	}
	j.mu.Lock()
	resp := j.final
	j.mu.Unlock()
	return resp, resp.Err
}

// Fail force-finishes the stream with err: the terminal Usage carries the
// tokens published so far as the partial response. Unlike Cancel it does
// not wait for the replica's next step boundary — a stream stranded on a
// hung shard terminates immediately — though the scheduler request is
// still marked for retirement so a live (or later revived) replica frees
// its resources at its next step. If the request completes (or crashes)
// first, that terminal wins and Fail is a no-op: exactly one terminal
// event is ever delivered.
func (st *Stream) Fail(err error) { st.srv.failJob(st.j, err) }

// failJob implements Stream.Fail. It must not touch the scheduler
// request's token storage — a live replica may be appending to it
// concurrently — so the partial response is the stream's own published
// prefix.
func (s *Server) failJob(j *job, err error) {
	j.cancelReq.Store(true)
	if r := j.sr.Load(); r != nil {
		r.Cancel()
		s.forceFinish(j, err, true)
		return
	}
	if j.claimed.CompareAndSwap(false, true) {
		s.forceFinish(j, err, false)
		return
	}
	// Admission won the claim race. Wait for it to either publish the
	// scheduler request or finish the job through the cancellation path
	// (it re-checks cancelReq on both sides of the store).
	for j.sr.Load() == nil && !j.finished.Load() {
		runtime.Gosched()
	}
	if r := j.sr.Load(); r != nil {
		r.Cancel()
		s.forceFinish(j, err, true)
	}
}

// forceFinish delivers an externally-driven terminal event, bypassing the
// replica. The dedup CAS makes it a no-op if any terminal already landed;
// when it wins while the job is admitted, it releases the replica's
// inflight charge (the losing replica retirement will skip its own
// release).
func (s *Server) forceFinish(j *job, err error, admitted bool) {
	if !j.finished.CompareAndSwap(false, true) {
		return
	}
	// Terminal counters move inside one registry Update group so a
	// concurrent Snapshot sees the outcome land atomically.
	s.reg.Update(func() {
		if errors.Is(err, context.Canceled) {
			s.cCancelled.Inc()
		} else {
			s.cErrored.Inc()
		}
	})
	if admitted {
		s.inflight.Add(-1)
	}
	// A forced terminal is an availability event unless it was a client
	// cancellation. The engine's monotone clamp absorbs the zero virtual
	// timestamp (failover drives this path off the replica goroutine, so
	// no fresher reading of the dead shard's clock exists).
	if s.cfg.SLO != nil && !errors.Is(err, context.Canceled) {
		s.cfg.SLO.ObserveOutcome(false, 0)
	}
	j.mu.Lock()
	var reqID int64
	if r := j.sr.Load(); r != nil {
		reqID = int64(r.ID)
	}
	resp := Response{Tokens: j.tokens, ReqID: reqID, Err: err}
	j.final = resp
	for _, fn := range j.onFinish {
		fn(resp)
	}
	j.onFinish = nil
	j.done = true
	j.mu.Unlock()
	close(j.term)
	close(j.notify)
}

// Cancel marks the request for retirement — equivalent to cancelling the
// stream's context. An admitted request is evicted at the replica's next
// step boundary, releasing its KV charge, prefix-cache pins, and batch
// slot; a request still queued is finished immediately without ever
// entering a batch. Idempotent; a request that completes naturally first
// wins the race, and either way exactly one terminal event is delivered.
func (st *Stream) Cancel() { st.srv.cancelJob(st.j) }

// OnFinish registers fn to run exactly once with the final response,
// strictly before any waiter can observe the terminal event (through
// Wait or Recv); if the stream already finished, fn runs immediately on
// the caller's goroutine. Hooks run in registration order with the
// stream's internal lock held and must not call back into the stream or
// block (a cap-1 buffered channel send is fine). The cluster layer uses
// one to settle admission accounting, Submit to deliver the response
// channel — neither needs a per-request drain goroutine.
func (st *Stream) OnFinish(fn func(Response)) {
	j := st.j
	j.mu.Lock()
	if j.done {
		fn(j.final)
		j.mu.Unlock()
		return
	}
	j.onFinish = append(j.onFinish, fn)
	j.mu.Unlock()
}

// latSample is one latency observation staged by a replica during a step:
// the value in nanoseconds plus the scheduler request ID it exemplifies.
type latSample struct {
	ns int64
	id int64
}

// stepSamples is a replica-owned scratch batching one step's TTFT/ITL
// histogram samples, so the server-global stats mutex is taken once per
// step rather than once per chunk per request (replicas would otherwise
// serialize on it every iteration). The slices grow to the replica's
// batch-size high-water mark and are reused.
type stepSamples struct {
	ttfts []latSample
	itls  []latSample
}

// flush folds the batched samples into the server histograms under one
// lock, then feeds the same observations to the SLO engine (if any) at
// the step's virtual time, then resets the scratch. No-ops (lock-free) on
// an empty step.
func (ss *stepSamples) flush(s *Server, now time.Duration) {
	if len(ss.ttfts) == 0 && len(ss.itls) == 0 {
		return
	}
	s.mu.Lock()
	for _, v := range ss.ttfts {
		s.ttfts.Record(v.ns, v.id)
	}
	for _, v := range ss.itls {
		s.itls.Record(v.ns, v.id)
	}
	s.mu.Unlock()
	if s.cfg.SLO != nil {
		for _, v := range ss.ttfts {
			s.cfg.SLO.ObserveLatency(slo.TTFT, time.Duration(v.ns), now)
		}
		for _, v := range ss.itls {
			s.cfg.SLO.ObserveLatency(slo.ITL, time.Duration(v.ns), now)
		}
	}
	ss.ttfts = ss.ttfts[:0]
	ss.itls = ss.itls[:0]
}

// publishProgress pushes one running request's newly decoded state into
// its stream: token and accept slice headers advance under the job mutex,
// TTFT/ITL samples land in the replica's step scratch, and a blocked Recv
// is woken. It no-ops when the step produced nothing for this request
// (tool-wait, KV-queued). Allocation-free in steady state — this runs for
// every running request at every step boundary.
func (s *Server) publishProgress(j *job, r *sched.Request, now time.Duration, samples *stepSamples) {
	gen := r.Response()
	if len(gen) == j.pubTok {
		return
	}
	newTok := len(gen) - j.pubTok
	if j.pubTok == 0 {
		j.firstTokV = now
		j.firstChunk = newTok
		// TTFT mirrors Latency's hybrid accounting: wall time since
		// enqueue (queueing) plus the request's virtual decode time from
		// admission to the step boundary that emitted the first chunk.
		j.ttft = time.Since(j.enqueued) + (now - r.AdmittedAt())
		samples.ttfts = append(samples.ttfts, latSample{ns: int64(j.ttft), id: int64(r.ID)})
	} else {
		// One histogram sample per chunk, valued at the chunk's virtual
		// gap divided by the tokens it delivered — a per-token rate, not
		// per-token weighting (a 5-token chunk still contributes one
		// sample). Samples are taken as chunks stream, so a request that
		// is later cancelled still contributed the cadence it really
		// delivered at.
		gap := now - j.lastTokV
		samples.itls = append(samples.itls, latSample{ns: int64(gap) / int64(newTok), id: int64(r.ID)})
	}
	j.lastTokV = now
	j.pubTok = len(gen)

	j.mu.Lock()
	if !j.done {
		// Publish and notify inside the critical section: a Fail-driven
		// terminal sets done under mu before closing notify, so seeing
		// done == false here guarantees the channel is still open. After a
		// forced terminal the stream's content is frozen; late replica
		// progress is dropped.
		j.tokens = gen
		j.accepts = r.AcceptLens
		select {
		case j.notify <- struct{}{}:
		default:
		}
	}
	j.mu.Unlock()
}

// finishJob publishes a job's terminal state, wakes every waiter, and
// folds the outcome into the server's accounting. admitted reports
// whether the job ever entered a batch (and thus holds an inflight
// charge). The dedup CAS lets it be called from racing paths (replica
// retirement vs. failover Fail); exactly one call delivers the terminal
// event, the rest are swallowed and counted. The winner owns the inflight
// release, so a losing replica must not release again.
func (s *Server) finishJob(j *job, resp Response, admitted bool, now time.Duration) {
	if !j.finished.CompareAndSwap(false, true) {
		s.dupSuppressed.Add(1)
		return
	}
	// Settle the server-level accounting before any waiter can observe
	// the terminal event: a client returning from Wait (or pulling the
	// Usage event) must find its request already reflected in Stats and
	// the Pending/Inflight probes — the ordering the pre-streaming
	// response path guaranteed. The whole outcome (counter + latency
	// sample) lands in one registry Update group, so a concurrent
	// Snapshot never tears it: every job is in exactly one outcome
	// counter, and the outcome counters never lead the submission count.
	s.reg.Update(func() {
		switch {
		case resp.Err == nil:
			ex := resp.ReqID
			if ex == 0 {
				ex = -1 // never admitted: no scheduler ID to exemplify
			}
			s.mu.Lock()
			s.lats.RecordDuration(resp.Latency, ex)
			s.mu.Unlock()
			s.cServed.Inc()
		case errors.Is(resp.Err, context.Canceled):
			s.cCancelled.Inc()
		default:
			// Hard failures (replica configuration errors) stay visible in
			// the stats even though their zero-valued timings are excluded
			// from the histograms — every job lands in exactly one counter.
			s.cErrored.Inc()
		}
	})
	if admitted {
		s.inflight.Add(-1)
	}
	// SLO availability stream: served = good, hard failure = bad. A client
	// cancellation is not a service failure, so it is not observed at all.
	if s.cfg.SLO != nil {
		switch {
		case resp.Err == nil:
			s.cfg.SLO.ObserveOutcome(true, now)
		case !errors.Is(resp.Err, context.Canceled):
			s.cfg.SLO.ObserveOutcome(false, now)
		}
	}

	j.mu.Lock()
	if r := j.sr.Load(); r != nil {
		j.tokens = r.Response()
		j.accepts = r.AcceptLens
	}
	j.final = resp
	// Hooks run inside the critical section that publishes done: a
	// consumer cannot observe the terminal event (Recv checks done under
	// mu) until their accounting has settled. OnFinish documents that
	// hooks must not call back into the stream.
	for _, fn := range j.onFinish {
		fn(resp)
	}
	j.onFinish = nil
	j.done = true
	j.mu.Unlock()
	close(j.term)
	close(j.notify)
}
