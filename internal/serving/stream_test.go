package serving

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"fastrl/internal/metrics"
	"fastrl/internal/sched"
	"fastrl/internal/workload"
)

// drainStream pulls a stream to EOF, returning the concatenated token
// chunks, the accept events, the terminal usage, and how many terminal
// events were observed (must be exactly one).
func drainStream(t testing.TB, st *Stream) (tokens []int, accepts []int, usage Response, terminals int) {
	t.Helper()
	for {
		ev, err := st.Recv()
		if err == io.EOF {
			return
		}
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		switch ev.Kind {
		case EventTokens:
			if len(ev.Tokens) == 0 {
				t.Fatal("empty token chunk")
			}
			tokens = append(tokens, ev.Tokens...)
		case EventAccept:
			accepts = append(accepts, ev.AcceptLen)
		case EventUsage:
			usage = ev.Usage
			terminals++
		default:
			t.Fatalf("unknown event kind %d", ev.Kind)
		}
	}
}

// TestStreamMatchesServe pins the wrapper equivalence at the heart of the
// redesign: the token chunks drained from a Stream concatenate to exactly
// the Response.Tokens the one-shot path returns for the same seed, the
// terminal Usage event carries the same payload, and exactly one terminal
// event is delivered.
func TestStreamMatchesServe(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	task := gen.Pool()[1]
	// The length prior shapes a multi-round response so the stream has
	// several chunks (a one-chunk response legitimately has no ITL).
	req := Request{Prompt: task.Prompt, MaxNew: 48, Seed: 17,
		Prior: workload.LengthPrior{TargetLen: 40, Sharpness: 25}}

	srvA, err := New(fixedStrategyServerConfig(tk, 1, 4), target, e)
	if err != nil {
		t.Fatal(err)
	}
	want, err := srvA.Serve(context.Background(), req)
	srvA.Stop()
	if err != nil {
		t.Fatal(err)
	}

	srvB, err := New(fixedStrategyServerConfig(tk, 1, 4), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Stop()
	st, err := srvB.Stream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	tokens, accepts, usage, terminals := drainStream(t, st)

	if terminals != 1 {
		t.Fatalf("saw %d terminal events, want exactly 1", terminals)
	}
	if len(tokens) != len(want.Tokens) {
		t.Fatalf("streamed %d tokens, one-shot %d", len(tokens), len(want.Tokens))
	}
	for i := range want.Tokens {
		if tokens[i] != want.Tokens[i] {
			t.Fatalf("streamed token %d differs from the one-shot response", i)
		}
	}
	if len(usage.Tokens) != len(want.Tokens) {
		t.Fatalf("usage carries %d tokens, want %d", len(usage.Tokens), len(want.Tokens))
	}
	if usage.AcceptLen != want.AcceptLen {
		t.Fatalf("usage accept length %v, one-shot %v", usage.AcceptLen, want.AcceptLen)
	}
	if len(accepts) == 0 {
		t.Fatal("no accept events with SD on")
	}
	// Per-round accept events reproduce the response's mean accept length.
	sum := 0
	for _, a := range accepts {
		sum += a
	}
	if got := float64(sum)/float64(len(accepts)) + 1; got != usage.AcceptLen {
		t.Fatalf("accept events mean %v, usage %v", got, usage.AcceptLen)
	}
	if usage.TTFT <= 0 || usage.TTFT > usage.Latency {
		t.Fatalf("TTFT %v outside (0, %v]", usage.TTFT, usage.Latency)
	}
	if usage.ITL <= 0 {
		t.Fatalf("ITL %v, want > 0 for a multi-chunk response", usage.ITL)
	}

	// After EOF the stream stays at EOF.
	if _, err := st.Recv(); err != io.EOF {
		t.Fatalf("post-terminal Recv = %v, want io.EOF", err)
	}

	// TTFT/ITL percentiles surface in the server stats.
	stats := srvB.Stats()
	if stats.TTFTP50 <= 0 || stats.TTFTP95 < stats.TTFTP50 {
		t.Fatalf("TTFT percentiles wrong: p50=%v p95=%v", stats.TTFTP50, stats.TTFTP95)
	}
	if stats.ITLP50 <= 0 || stats.ITLP95 < stats.ITLP50 {
		t.Fatalf("ITL percentiles wrong: p50=%v p95=%v", stats.ITLP50, stats.ITLP95)
	}
}

// TestStreamCancelMidFlight pins real cancellation: cancelling a
// long-running stream retires the request at the next step boundary with
// a partial response and context.Canceled, stops it consuming steps, and
// leaves a co-batched survivor's token stream bit-identical to a solo
// serve of the same seed.
func TestStreamCancelMidFlight(t *testing.T) {
	target, e, tk, gen := servingSetup(t)

	// Baseline: the survivor alone.
	soloSrv, err := New(fixedStrategyServerConfig(tk, 1, 4), target, e)
	if err != nil {
		t.Fatal(err)
	}
	surv := Request{Prompt: gen.Pool()[0].Prompt, MaxNew: 48, Seed: 5}
	want, err := soloSrv.Serve(context.Background(), surv)
	soloSrv.Stop()
	if err != nil {
		t.Fatal(err)
	}

	srv, err := New(fixedStrategyServerConfig(tk, 1, 4), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	// The victim: effectively unbounded, co-batched with the survivor.
	victim, err := srv.Stream(context.Background(), Request{
		Prompt: gen.Pool()[1].Prompt, MaxNew: 1 << 19, Seed: 6,
		Prior: workload.LengthPrior{TargetLen: 1 << 19, Sharpness: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the victim is demonstrably decoding, then cancel.
	ev, err := victim.Recv()
	if err != nil || ev.Kind != EventTokens {
		t.Fatalf("first victim event: kind=%d err=%v", ev.Kind, err)
	}
	survCh, err := srv.Submit(context.Background(), surv)
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()

	vtokens, _, vusage, terminals := drainStream(t, victim)
	if terminals != 1 {
		t.Fatalf("victim saw %d terminal events, want exactly 1", terminals)
	}
	if !errors.Is(vusage.Err, context.Canceled) {
		t.Fatalf("victim terminal error = %v, want context.Canceled", vusage.Err)
	}
	vtotal := len(ev.Tokens) + len(vtokens)
	if vtotal == 0 || vtotal >= 1<<19 {
		t.Fatalf("victim generated %d tokens; want a partial response", vtotal)
	}
	if len(vusage.Tokens) != vtotal {
		t.Fatalf("victim usage carries %d tokens, streamed %d", len(vusage.Tokens), vtotal)
	}

	// The survivor — co-batched with a cancelled stranger — is unperturbed.
	got := <-survCh
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if len(got.Tokens) != len(want.Tokens) {
		t.Fatalf("survivor %d tokens, solo %d", len(got.Tokens), len(want.Tokens))
	}
	for i := range want.Tokens {
		if got.Tokens[i] != want.Tokens[i] {
			t.Fatalf("survivor token %d perturbed by the co-batched cancellation", i)
		}
	}

	stats := srv.Stats()
	if stats.Cancelled != 1 {
		t.Fatalf("stats cancelled = %d, want 1", stats.Cancelled)
	}
	if stats.Served != 1 {
		t.Fatalf("stats served = %d, want 1 (the survivor)", stats.Served)
	}
	// The freed slot is really free: the server drains back to idle.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled request still pending: %d", srv.Pending())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamCtxCancelPropagates pins the context path: cancelling the
// stream's context (not calling Cancel) retires the request and ends the
// stream with context.Canceled.
func TestStreamCtxCancelPropagates(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	srv, err := New(fixedStrategyServerConfig(tk, 1, 4), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	st, err := srv.Stream(ctx, Request{
		Prompt: gen.Pool()[2].Prompt, MaxNew: 1 << 19, Seed: 9,
		Prior: workload.LengthPrior{TargetLen: 1 << 19, Sharpness: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev, err := st.Recv(); err != nil || ev.Kind != EventTokens {
		t.Fatalf("first event: kind=%d err=%v", ev.Kind, err)
	}
	cancel()
	resp, err := st.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
	if len(resp.Tokens) == 0 || len(resp.Tokens) >= 1<<19 {
		t.Fatalf("want a partial response, got %d tokens", len(resp.Tokens))
	}
}

// TestStreamOnCancelledContext pins the fast-fail fix: a context that is
// already cancelled never enqueues (previously the queue-send select
// could pick the ready queue case and burn a slot for a dead caller).
func TestStreamOnCancelledContext(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	srv, err := New(serverConfig(tk, 1), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 32; i++ {
		if _, err := srv.Stream(ctx, Request{Prompt: gen.Pool()[0].Prompt, MaxNew: 8}); !errors.Is(err, context.Canceled) {
			t.Fatalf("Stream on dead ctx = %v, want context.Canceled", err)
		}
		if _, err := srv.Submit(ctx, Request{Prompt: gen.Pool()[0].Prompt, MaxNew: 8}); !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit on dead ctx = %v, want context.Canceled", err)
		}
	}
	if got := srv.QueueLen(); got != 0 {
		t.Fatalf("dead-caller submissions enqueued %d jobs", got)
	}
}

// TestStreamCancelBeforeAdmission covers the queue-eviction point: a
// stream cancelled while its job waits behind a busy replica delivers
// exactly one terminal event with context.Canceled (and, when the replica
// had not yet admitted it, zero tokens).
func TestStreamCancelBeforeAdmission(t *testing.T) {
	target, e, tk, gen := servingSetup(t)
	cfg := fixedStrategyServerConfig(tk, 1, 1) // one replica, batch of one
	srv, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	// Occupy the only slot with an effectively unbounded request.
	hog, err := srv.Stream(context.Background(), Request{
		Prompt: gen.Pool()[0].Prompt, MaxNew: 1 << 19, Seed: 1,
		Prior: workload.LengthPrior{TargetLen: 1 << 19, Sharpness: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev, err := hog.Recv(); err != nil || ev.Kind != EventTokens {
		t.Fatalf("hog first event: kind=%d err=%v", ev.Kind, err)
	}

	// The queued request is cancelled before any replica can admit it.
	queued, err := srv.Stream(context.Background(), Request{
		Prompt: gen.Pool()[1].Prompt, MaxNew: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	hog.Cancel()

	tokens, _, usage, terminals := drainStream(t, queued)
	if terminals != 1 {
		t.Fatalf("queued stream saw %d terminal events, want exactly 1", terminals)
	}
	if !errors.Is(usage.Err, context.Canceled) {
		t.Fatalf("queued terminal error = %v, want context.Canceled", usage.Err)
	}
	if len(tokens) != 0 {
		t.Fatalf("request cancelled in the queue still generated %d tokens", len(tokens))
	}
	if _, _, _, n := drainStream(t, hog); n != 1 {
		t.Fatalf("hog saw %d terminal events", n)
	}
}

// TestStreamEmissionZeroAllocs pins the event hot path: publishing one
// step's progress into a stream (slice-header publication, TTFT/ITL
// histogram samples, consumer wake-up) and pulling the resulting events
// performs zero allocations in steady state — the same discipline as
// sched.Batch.Step.
func TestStreamEmissionZeroAllocs(t *testing.T) {
	s := &Server{
		lats:  metrics.NewHistogram(),
		ttfts: metrics.NewHistogram(),
		itls:  metrics.NewHistogram(),
	}
	j := newJob(Request{})
	st := &Stream{srv: s, j: j, ctx: context.Background()}
	r := sched.NewRequest(0, []int{1, 2, 3}, 1<<14, workload.LengthPrior{}, -1, -1)
	j.sr.Store(r)

	samples := &stepSamples{ttfts: make([]latSample, 0, 8), itls: make([]latSample, 0, 8)}
	now := time.Millisecond
	emit := func() {
		r.Tokens = append(r.Tokens, 7)
		r.AcceptLens = append(r.AcceptLens, 2)
		now += time.Millisecond
		s.publishProgress(j, r, now, samples)
		samples.flush(s, now)
	}
	emit() // warm-up: first chunk takes the TTFT branch
	for {
		// Drain the warm-up events so the measured loop starts clean.
		if ev, _ := st.Recv(); ev.Kind == EventAccept {
			break
		}
	}

	allocs := testing.AllocsPerRun(1000, func() {
		emit()
		if ev, err := st.Recv(); err != nil || ev.Kind != EventTokens {
			t.Fatalf("expected token event, got kind=%d err=%v", ev.Kind, err)
		}
		if ev, err := st.Recv(); err != nil || ev.Kind != EventAccept {
			t.Fatalf("expected accept event, got kind=%d err=%v", ev.Kind, err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state event emission allocates %.1f objects/event, want 0", allocs)
	}
}

// BenchmarkStreamServe measures the end-to-end streamed request path: one
// request streamed to completion through a single continuous-batching
// replica, events drained as they land.
func BenchmarkStreamServe(b *testing.B) {
	target, e, tk, gen := servingSetup(b)
	srv, err := New(fixedStrategyServerConfig(tk, 1, 8), target, e)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()
	prompt := gen.Pool()[0].Prompt
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := srv.Stream(context.Background(), Request{Prompt: prompt, MaxNew: 32, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := st.Recv()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
