package specdec

import (
	"math/rand"
	"testing"
)

func BenchmarkSpecStepTree(b *testing.B) {
	lm, e, tk := newSetup(b)
	eng := &Engine{Target: lm, Temp: 0.9, EosID: -1}
	p := Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}
	rng := rand.New(rand.NewSource(1))
	prompt := testPrompt(tk, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(e, prompt, len(prompt), p, rng)
	}
}

func BenchmarkSpecStepLinear(b *testing.B) {
	lm, e, tk := newSetup(b)
	eng := &Engine{Target: lm, Temp: 0.9, EosID: -1}
	p := Params{DraftDepth: 6, TopK: 1, TokensToVerify: 6}
	rng := rand.New(rand.NewSource(1))
	prompt := testPrompt(tk, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(e, prompt, len(prompt), p, rng)
	}
}

func BenchmarkVanillaStep(b *testing.B) {
	lm, _, tk := newSetup(b)
	eng := &Engine{Target: lm, Temp: 0.9, EosID: -1}
	rng := rand.New(rand.NewSource(1))
	prompt := testPrompt(tk, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.VanillaStep(prompt, len(prompt), rng)
	}
}
