package specdec

import (
	"math/rand"
	"testing"
)

// BenchmarkSpecRound is the canonical steady-state speculation round
// (tree drafting + one batched verification pass). Pre-batching baseline
// (same strategy, per-node Probs calls and per-round allocation):
// 106215 ns/op, 69204 B/op, 266 allocs/op on the reference machine.
func BenchmarkSpecRound(b *testing.B) {
	lm, e, tk := newSetup(b)
	eng := &Engine{Target: lm, Temp: 0.9, EosID: -1}
	p := Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}
	rng := rand.New(rand.NewSource(1))
	prompt := testPrompt(tk, rng)
	eng.Step(e, prompt, len(prompt), p, rng) // grow scratch outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(e, prompt, len(prompt), p, rng)
	}
}

// BenchmarkSpecRoundSequential measures the retained pre-batch reference
// verification over the identical tree, isolating the batching effect.
func BenchmarkSpecRoundSequential(b *testing.B) {
	lm, e, tk := newSetup(b)
	eng := &Engine{Target: lm, Temp: 0.9, EosID: -1}
	p := Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}
	rng := rand.New(rand.NewSource(1))
	prompt := testPrompt(tk, rng)
	eng.StepSequential(e, prompt, len(prompt), p, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.StepSequential(e, prompt, len(prompt), p, rng)
	}
}

func BenchmarkSpecStepTree(b *testing.B) {
	lm, e, tk := newSetup(b)
	eng := &Engine{Target: lm, Temp: 0.9, EosID: -1}
	p := Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}
	rng := rand.New(rand.NewSource(1))
	prompt := testPrompt(tk, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(e, prompt, len(prompt), p, rng)
	}
}

func BenchmarkSpecStepLinear(b *testing.B) {
	lm, e, tk := newSetup(b)
	eng := &Engine{Target: lm, Temp: 0.9, EosID: -1}
	p := Params{DraftDepth: 6, TopK: 1, TokensToVerify: 6}
	rng := rand.New(rand.NewSource(1))
	prompt := testPrompt(tk, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(e, prompt, len(prompt), p, rng)
	}
}

func BenchmarkVanillaStep(b *testing.B) {
	lm, _, tk := newSetup(b)
	eng := &Engine{Target: lm, Temp: 0.9, EosID: -1}
	rng := rand.New(rand.NewSource(1))
	prompt := testPrompt(tk, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.VanillaStep(prompt, len(prompt), rng)
	}
}
