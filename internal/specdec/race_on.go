//go:build race

package specdec

const raceEnabled = true
