package specdec

import (
	"math"
	"math/rand"
	"testing"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/tokenizer"
)

// Warm-up volume for the shared drafter used across tests.
const (
	nWarmPrompts = 150
	nWarmEpochs  = 6
)

func newSetup(t testing.TB) (*model.LM, *draft.Eagle, *tokenizer.Tokenizer) {
	t.Helper()
	tk := tokenizer.New()
	cfg := model.DefaultConfig(tk.VocabSize(), gpu.Qwen7B)
	cfg.Buckets = 1 << 10
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	lm := model.New(cfg, &model.GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})

	e := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	rng := rand.New(rand.NewSource(21))
	var examples []*draft.Example
	for i := 0; i < nWarmPrompts; i++ {
		prompt := testPrompt(tk, rng)
		seq := model.Generate(lm, prompt, nil, 1, 60, tk.Eos(), rng)
		examples = append(examples, draft.HarvestExamples(lm, model.Context{Tokens: seq, PromptLen: len(prompt)}, true)...)
	}
	for epoch := 0; epoch < nWarmEpochs; epoch++ {
		e.Train(examples, nil, rng)
	}
	return lm, e, tk
}

func testPrompt(tk *tokenizer.Tokenizer, rng *rand.Rand) []int {
	return []int{tk.Bos(), tk.Digit(rng.Intn(10)), tk.MustID("+"), tk.Digit(rng.Intn(10)), tk.MustID("=")}
}

// TestGreedyExactness: with temperature 0, speculative decoding must
// reproduce the target's greedy decode token for token, for any strategy.
func TestGreedyExactness(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(5))
	strategies := []Params{
		{DraftDepth: 1, TopK: 1, TokensToVerify: 1},
		{DraftDepth: 4, TopK: 1, TokensToVerify: 4},
		{DraftDepth: 6, TopK: 4, TokensToVerify: 16},
		{DraftDepth: 12, TopK: 8, TokensToVerify: 64},
	}
	for _, p := range strategies {
		for trial := 0; trial < 5; trial++ {
			prompt := testPrompt(tk, rng)
			want := model.Generate(lm, prompt, nil, 0, 40, tk.Eos(), rng)

			eng := &Engine{Target: lm, Temp: 0, EosID: tk.Eos()}
			got := append([]int(nil), prompt...)
			for len(got)-len(prompt) < 40 {
				res := eng.Step(e, got, len(prompt), p, rng)
				got = append(got, res.Tokens...)
				if res.Eos {
					break
				}
			}
			if len(got) < len(want) {
				t.Fatalf("strategy %+v: speculative output shorter than greedy: %d vs %d", p, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("strategy %+v trial %d: token %d differs: %s vs %s",
						p, trial, i, tk.Token(got[i]), tk.Token(want[i]))
				}
			}
		}
	}
}

// TestStochasticLosslessness: the single-step marginal of the first token
// emitted by a speculation round must match the target distribution. This
// is the chain-rule verification's exactness property; multi-token
// losslessness follows by induction over positions.
func TestStochasticLosslessness(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(6))
	prompt := testPrompt(tk, rng)

	vocab := tk.VocabSize()
	want := make([]float32, vocab)
	lm.Probs(model.Context{Tokens: prompt, PromptLen: len(prompt)}, nil, 0.9, want)

	eng := &Engine{Target: lm, Temp: 0.9, EosID: tk.Eos()}
	p := Params{DraftDepth: 6, TopK: 4, TokensToVerify: 16}
	const n = 60000
	counts := make([]int, vocab)
	for i := 0; i < n; i++ {
		res := eng.Step(e, prompt, len(prompt), p, rng)
		if len(res.Tokens) == 0 {
			t.Fatal("empty speculation round")
		}
		counts[res.Tokens[0]]++
	}
	// Chi-square goodness of fit over tokens with expected count >= 5.
	var chi2 float64
	dof := 0
	var restExp, restObs float64
	for v := 0; v < vocab; v++ {
		exp := float64(want[v]) * n
		if exp < 5 {
			restExp += exp
			restObs += float64(counts[v])
			continue
		}
		d := float64(counts[v]) - exp
		chi2 += d * d / exp
		dof++
	}
	if restExp > 5 {
		d := restObs - restExp
		chi2 += d * d / restExp
		dof++
	}
	dof-- // one constraint: totals match
	if dof < 1 {
		t.Skip("degenerate distribution, nothing to test")
	}
	// 99.9% critical value approximation: dof + 3.29*sqrt(2*dof) + 5.
	crit := float64(dof) + 3.29*math.Sqrt(2*float64(dof)) + 5
	if chi2 > crit {
		t.Fatalf("first-token marginal deviates from target: chi2=%.1f dof=%d crit=%.1f", chi2, dof, crit)
	}
}

// TestStochasticLosslessnessWithBias checks exactness also holds when the
// target has a logit bias the drafter does not know about.
func TestStochasticLosslessnessWithBias(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(7))
	prompt := testPrompt(tk, rng)
	bias := map[int]float32{tk.Eos(): -4, tk.Wait(): 2}

	vocab := tk.VocabSize()
	want := make([]float32, vocab)
	lm.Probs(model.Context{Tokens: prompt, PromptLen: len(prompt)}, bias, 0.9, want)

	eng := &Engine{Target: lm, Temp: 0.9, Bias: bias, EosID: tk.Eos()}
	p := Params{DraftDepth: 4, TopK: 2, TokensToVerify: 8}
	const n = 30000
	counts := make([]int, vocab)
	for i := 0; i < n; i++ {
		res := eng.Step(e, prompt, len(prompt), p, rng)
		counts[res.Tokens[0]]++
	}
	for v := 0; v < vocab; v++ {
		exp := float64(want[v])
		got := float64(counts[v]) / n
		if exp > 0.02 && math.Abs(got-exp) > 0.25*exp+0.01 {
			t.Fatalf("token %s: frequency %.4f, want %.4f", tk.Token(v), got, exp)
		}
	}
}

func TestAcceptLengthPositive(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(8))
	eng := &Engine{Target: lm, Temp: 0.9, EosID: tk.Eos()}
	p := Params{DraftDepth: 8, TopK: 4, TokensToVerify: 32}

	var rounds, accepted int
	for trial := 0; trial < 20; trial++ {
		prompt := testPrompt(tk, rng)
		seq := append([]int(nil), prompt...)
		for len(seq)-len(prompt) < 60 {
			res := eng.Step(e, seq, len(prompt), p, rng)
			seq = append(seq, res.Tokens...)
			rounds++
			accepted += res.AcceptLen
			if res.Eos {
				break
			}
		}
	}
	mean := float64(accepted) / float64(rounds)
	if mean < 0.8 {
		t.Fatalf("trained drafter mean accept length %.2f too low", mean)
	}
	t.Logf("mean accept length %.2f over %d rounds", mean, rounds)
}

func TestDeeperDraftsAcceptMore(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(9))
	eng := &Engine{Target: lm, Temp: 0.9, EosID: tk.Eos()}

	meanAccept := func(p Params) float64 {
		r := rand.New(rand.NewSource(10))
		var rounds, acc int
		for trial := 0; trial < 30; trial++ {
			prompt := testPrompt(tk, r)
			seq := append([]int(nil), prompt...)
			for len(seq)-len(prompt) < 40 {
				res := eng.Step(e, seq, len(prompt), p, r)
				seq = append(seq, res.Tokens...)
				rounds++
				acc += res.AcceptLen
				if res.Eos {
					break
				}
			}
		}
		return float64(acc) / float64(rounds)
	}
	_ = rng
	shallow := meanAccept(Params{DraftDepth: 1, TopK: 4, TokensToVerify: 8})
	deep := meanAccept(Params{DraftDepth: 6, TopK: 4, TokensToVerify: 24})
	if deep <= shallow {
		t.Fatalf("deeper drafting should accept more: depth1=%.2f depth6=%.2f", shallow, deep)
	}
}

func TestDraftedNodesBounded(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(11))
	eng := &Engine{Target: lm, Temp: 0.9, EosID: tk.Eos()}
	p := Params{DraftDepth: 5, TopK: 3, TokensToVerify: 12}
	prompt := testPrompt(tk, rng)
	res := eng.Step(e, prompt, len(prompt), p, rng)
	// Beam drafting bounds the frontier at TopK nodes per depth.
	if res.DraftedNodes > p.DraftDepth*p.TopK {
		t.Fatalf("drafted %d nodes, beam bound is %d", res.DraftedNodes, p.DraftDepth*p.TopK)
	}
	if res.VerifiedTokens > p.TokensToVerify+1 {
		t.Fatalf("verified %d tokens, cap is %d", res.VerifiedTokens, p.TokensToVerify+1)
	}
	if len(res.FrontierPerDepth) > p.DraftDepth {
		t.Fatalf("frontier depths %d exceed draft depth %d", len(res.FrontierPerDepth), p.DraftDepth)
	}
	if res.AcceptLen != len(res.Tokens)-1 && !res.Eos {
		t.Fatalf("AcceptLen %d inconsistent with %d tokens", res.AcceptLen, len(res.Tokens))
	}
}

func TestEosTerminates(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(12))
	// Strong positive EOS bias forces termination quickly.
	eng := &Engine{Target: lm, Temp: 0.9, Bias: map[int]float32{tk.Eos(): 30}, EosID: tk.Eos()}
	p := Params{DraftDepth: 4, TopK: 2, TokensToVerify: 8}
	prompt := testPrompt(tk, rng)
	res := eng.Step(e, prompt, len(prompt), p, rng)
	if !res.Eos {
		t.Fatalf("expected EOS with +30 bias, got %v", res.Tokens)
	}
	// No tokens may follow the EOS.
	for i, tok := range res.Tokens {
		if tok == tk.Eos() && i != len(res.Tokens)-1 {
			t.Fatalf("tokens continue past EOS: %v", res.Tokens)
		}
	}
}

func TestVanillaStepMatchesGenerate(t *testing.T) {
	lm, _, tk := newSetup(t)
	prompt := testPrompt(tk, rand.New(rand.NewSource(13)))
	eng := &Engine{Target: lm, Temp: 0, EosID: tk.Eos()}
	rng := rand.New(rand.NewSource(14))
	tok, _ := eng.VanillaStep(prompt, len(prompt), rng)
	want := model.Generate(lm, prompt, nil, 0, 1, tk.Eos(), rand.New(rand.NewSource(15)))
	if tok != want[len(want)-1] {
		t.Fatalf("VanillaStep greedy token %d != Generate token %d", tok, want[len(want)-1])
	}
}

func TestNGramDrafterWorksInEngine(t *testing.T) {
	lm, _, tk := newSetup(t)
	rng := rand.New(rand.NewSource(16))
	g := draft.NewNGram(tk.VocabSize(), 1, 3)
	// Warm the index with a response from the same prompt.
	prompt := testPrompt(tk, rng)
	warm := model.Generate(lm, prompt, nil, 0.9, 80, tk.Eos(), rng)
	g.Observe(warm, len(prompt))

	eng := &Engine{Target: lm, Temp: 0.9, EosID: tk.Eos()}
	p := Params{DraftDepth: 4, TopK: 1, TokensToVerify: 4}
	var rounds, acc int
	seq := append([]int(nil), prompt...)
	for len(seq)-len(prompt) < 60 {
		res := eng.Step(g, seq, len(prompt), p, rng)
		seq = append(seq, res.Tokens...)
		rounds++
		acc += res.AcceptLen
		if res.Eos {
			break
		}
	}
	t.Logf("ngram accept length %.2f", float64(acc)/float64(rounds))
	if rounds == 0 {
		t.Fatal("no rounds executed")
	}
}

func TestDefaultsClamped(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(17))
	eng := &Engine{Target: lm, Temp: 0.9, EosID: tk.Eos()}
	prompt := testPrompt(tk, rng)
	// Zero-valued params must be clamped, not panic.
	res := eng.Step(e, prompt, len(prompt), Params{}, rng)
	if len(res.Tokens) == 0 {
		t.Fatal("clamped step produced no tokens")
	}
}
