package specdec

import (
	"math/rand"
	"testing"
)

// TestStepZeroSteadyStateAllocs asserts the allocation-free contract of
// the speculation hot path: after one warm-up round grows the engine
// scratch to the strategy's high-water mark, a steady-state round (draft
// tree + batched verification) performs zero heap allocations.
func TestStepZeroSteadyStateAllocs(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(61))
	prompt := testPrompt(tk, rng)
	for _, p := range []Params{
		{DraftDepth: 6, TopK: 6, TokensToVerify: 24},
		{DraftDepth: 6, TopK: 1, TokensToVerify: 6},
		{DraftDepth: 12, TopK: 8, TokensToVerify: 64},
	} {
		eng := &Engine{Target: lm, Temp: 0.9, EosID: -1}
		eng.Step(e, prompt, len(prompt), p, rng) // warm-up: grow scratch
		allocs := testing.AllocsPerRun(200, func() {
			eng.Step(e, prompt, len(prompt), p, rng)
		})
		if allocs != 0 {
			t.Errorf("strategy %+v: steady-state Step allocates %.1f objects/round, want 0", p, allocs)
		}
	}
}

// TestStepSequentialZeroSteadyStateAllocs: the sequential reference path
// shares the same scratch and must be allocation-free too, so benchmark
// comparisons between the two isolate the batching effect.
func TestStepSequentialZeroSteadyStateAllocs(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(62))
	prompt := testPrompt(tk, rng)
	p := Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}
	eng := &Engine{Target: lm, Temp: 0.9, EosID: -1}
	eng.StepSequential(e, prompt, len(prompt), p, rng)
	allocs := testing.AllocsPerRun(200, func() {
		eng.StepSequential(e, prompt, len(prompt), p, rng)
	})
	if allocs != 0 {
		t.Errorf("steady-state StepSequential allocates %.1f objects/round, want 0", allocs)
	}
}

// TestVanillaStepZeroSteadyStateAllocs covers the non-speculative decode
// path used below the SD threshold.
func TestVanillaStepZeroSteadyStateAllocs(t *testing.T) {
	lm, _, tk := newSetup(t)
	rng := rand.New(rand.NewSource(63))
	prompt := testPrompt(tk, rng)
	eng := &Engine{Target: lm, Temp: 0.9, EosID: -1}
	eng.VanillaStep(prompt, len(prompt), rng)
	allocs := testing.AllocsPerRun(200, func() {
		eng.VanillaStep(prompt, len(prompt), rng)
	})
	if allocs != 0 {
		t.Errorf("steady-state VanillaStep allocates %.1f objects/step, want 0", allocs)
	}
}
