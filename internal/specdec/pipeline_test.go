package specdec

import (
	"math/rand"
	"runtime"
	"testing"
)

// forceGOMAXPROCS pins the scheduler width for the duration of one test
// so the pipeline gate (GOMAXPROCS > 1) takes a known branch regardless
// of the host's CPU count. Raising GOMAXPROCS above NumCPU is legal —
// on a single-CPU machine the pipeline then runs interleaved rather than
// parallel, which still exercises every handoff and ordering edge.
func forceGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestStepBatchPipelinedMatchesSerial pins the bit-identity of the
// software-pipelined round: StepBatch with overlapped draft/score/verify
// stages must emit, for every sequence, exactly the Result the serial
// loop produces — tokens, accept lengths, EOS flags and the drafting
// metadata. Per-sequence biases, EOS ids and RNGs exercise the grouped
// per-tree scoring path; multiple consecutive rounds on the same engines
// exercise scratch reuse across rounds.
func TestStepBatchPipelinedMatchesSerial(t *testing.T) {
	lm, e, tk := newSetup(t)
	metaRng := rand.New(rand.NewSource(91))
	forceGOMAXPROCS(t, 2)

	for trial := 0; trial < 25; trial++ {
		p := Params{
			DraftDepth:     1 + metaRng.Intn(8),
			TopK:           1 + metaRng.Intn(6),
			TokensToVerify: 1 + metaRng.Intn(32),
		}
		temp := 0.0
		if metaRng.Intn(3) > 0 {
			temp = 0.5 + metaRng.Float64()
		}
		n := 2 + metaRng.Intn(6)
		seqsA := make([]Seq, n)
		seqsB := make([]Seq, n)
		seeds := make([]int64, n)
		for i := 0; i < n; i++ {
			var bias map[int]float32
			if metaRng.Intn(2) == 0 {
				bias = map[int]float32{tk.Eos(): float32(metaRng.NormFloat64() * 3)}
			}
			eos := -1
			if metaRng.Intn(2) == 0 {
				eos = tk.Eos()
			}
			seeds[i] = metaRng.Int63()
			toks := testPrompt(tk, metaRng)
			seqsA[i] = Seq{Tokens: toks, PromptLen: len(toks), Bias: bias, EosID: eos}
			seqsB[i] = Seq{Tokens: append([]int(nil), toks...), PromptLen: len(toks), Bias: bias, EosID: eos}
		}

		serial := &Engine{Target: lm, Temp: temp}
		piped := &Engine{Target: lm, Temp: temp}
		outA := make([]Result, n)
		outB := make([]Result, n)
		rngsA := make([]*rand.Rand, n)
		rngsB := make([]*rand.Rand, n)
		for i := range seeds {
			rngsA[i] = rand.New(rand.NewSource(seeds[i]))
			rngsB[i] = rand.New(rand.NewSource(seeds[i]))
		}

		for round := 0; round < 3; round++ {
			runtime.GOMAXPROCS(1)
			serial.StepBatch(e, seqsA, p, rngsA, outA)
			runtime.GOMAXPROCS(2)
			piped.StepBatch(e, seqsB, p, rngsB, outB)

			for i := 0; i < n; i++ {
				a, b := &outA[i], &outB[i]
				if len(a.Tokens) != len(b.Tokens) {
					t.Fatalf("trial %d round %d seq %d (%+v temp=%.2f): serial %v vs pipelined %v",
						trial, round, i, p, temp, a.Tokens, b.Tokens)
				}
				for j := range a.Tokens {
					if a.Tokens[j] != b.Tokens[j] {
						t.Fatalf("trial %d round %d seq %d token %d: serial %v vs pipelined %v",
							trial, round, i, j, a.Tokens, b.Tokens)
					}
				}
				if a.AcceptLen != b.AcceptLen || a.Eos != b.Eos ||
					a.DraftedNodes != b.DraftedNodes || a.VerifiedTokens != b.VerifiedTokens {
					t.Fatalf("trial %d round %d seq %d: metadata diverged: %+v vs %+v",
						trial, round, i, *a, *b)
				}
				// Advance both copies for the next round (Result.Tokens
				// aliases engine scratch, so append copies).
				seqsA[i].Tokens = append(seqsA[i].Tokens, a.Tokens...)
				seqsB[i].Tokens = append(seqsB[i].Tokens, b.Tokens...)
			}
		}
	}
}

// TestStepBatchPipelinedSharedRNGMatchesSerial pins the trainer-side
// draw-order contract under pipelining: with one shared RNG in every
// slot, the verify worker must consume randomness in exactly the serial
// loop's sequence order.
func TestStepBatchPipelinedSharedRNGMatchesSerial(t *testing.T) {
	lm, e, tk := newSetup(t)
	metaRng := rand.New(rand.NewSource(93))
	p := Params{DraftDepth: 5, TopK: 4, TokensToVerify: 16}
	forceGOMAXPROCS(t, 2)

	for trial := 0; trial < 15; trial++ {
		n := 2 + metaRng.Intn(5)
		seqs := make([]Seq, n)
		for i := range seqs {
			toks := testPrompt(tk, metaRng)
			seqs[i] = Seq{Tokens: toks, PromptLen: len(toks), EosID: tk.Eos()}
		}
		seed := metaRng.Int63()

		run := func(maxprocs int, eng *Engine) [][]int {
			runtime.GOMAXPROCS(maxprocs)
			shared := rand.New(rand.NewSource(seed))
			rngs := make([]*rand.Rand, n)
			for i := range rngs {
				rngs[i] = shared
			}
			out := make([]Result, n)
			eng.StepBatch(e, seqs, p, rngs, out)
			got := make([][]int, n)
			for i := range out {
				got[i] = append([]int(nil), out[i].Tokens...)
			}
			return got
		}

		want := run(1, &Engine{Target: lm, Temp: 0.9})
		got := run(2, &Engine{Target: lm, Temp: 0.9})
		for i := 0; i < n; i++ {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("trial %d seq %d: serial %v vs pipelined %v", trial, i, want[i], got[i])
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("trial %d seq %d token %d: serial %v vs pipelined %v",
						trial, i, j, want[i], got[i])
				}
			}
		}
	}
}

// TestStepBatchPipelinedSteadyStateAllocs pins the allocation-free
// contract of the pipelined round. testing.AllocsPerRun cannot measure
// it (it pins GOMAXPROCS to 1, which routes StepBatch down the serial
// path), so this test counts mallocs directly around repeated rounds at
// a fixed workload. The stage workers and their channels are engine
// scratch created on first use; after warm-up a round must not allocate
// on any stage.
func TestStepBatchPipelinedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector's shadow bookkeeping allocates; alloc pin is meaningless under -race")
	}
	lm, e, tk := newSetup(t)
	forceGOMAXPROCS(t, 2)
	metaRng := rand.New(rand.NewSource(95))
	p := Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}
	const n = 8
	seqs := make([]Seq, n)
	rngs := make([]*rand.Rand, n)
	out := make([]Result, n)
	for i := 0; i < n; i++ {
		toks := testPrompt(tk, metaRng)
		seqs[i] = Seq{Tokens: toks, PromptLen: len(toks), EosID: -1}
		rngs[i] = rand.New(rand.NewSource(int64(300 + i)))
	}
	eng := &Engine{Target: lm, Temp: 0.9}
	// Scratch high-water marks (tree arenas, per-tree row buffers) ratchet
	// up while early rounds explore differently-shaped draft trees; warm
	// well past the ratchet before counting.
	for warm := 0; warm < 25; warm++ {
		eng.StepBatch(e, seqs, p, rngs, out)
	}

	const rounds = 100
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		eng.StepBatch(e, seqs, p, rngs, out)
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.Mallocs-before.Mallocs) / rounds
	// A real leak allocates at least once per round (usually once per
	// sequence, so ≥ 8 here); the slack below that tolerates stray
	// runtime-internal allocations (goroutine stack growth, GC metadata)
	// and late high-water ratchets without masking any genuine leak.
	if perOp >= 1 {
		t.Errorf("pipelined steady-state StepBatch allocates %.2f objects/round, want ~0", perOp)
	}
}
