package specdec

import (
	"math/rand"
	"runtime"

	"fastrl/internal/draft"
	"fastrl/internal/model"
)

// pipeDepth is the stage-handoff channel capacity. A round with more
// sequences than this still completes — the drafting stage just blocks
// until the scoring stage drains — so the constant bounds buffering, not
// batch size.
const pipeDepth = 64

// pipeMsg hands one drafted (then scored) tree index down the pipeline;
// last marks the round's final sequence so the verify worker can signal
// round completion.
type pipeMsg struct {
	idx  int
	last bool
}

// pipe is the engine's three-stage software pipeline for batched rounds:
// the caller's goroutine drafts, a scoring worker runs each tree's
// grouped target pass with the engine's second model.Scratch (the double
// buffer), and a verify worker walks scored trees strictly in sequence
// order (it owns the round's RNG draws). Workers are started once per
// engine and park on their inbound channel between rounds — steady-state
// rounds allocate nothing. Round state (the seqs/trees/rngs/out slices)
// is published before the first send and cleared after the completion
// signal; every cross-stage access is ordered by a channel happens-before
// edge. See the package comment for the full safety argument.
type pipe struct {
	workCh   chan pipeMsg  // draft -> score
	scoredCh chan pipeMsg  // score -> verify
	doneCh   chan struct{} // verify -> caller, once per round

	mscScore *model.Scratch // scoring stage's model scratch (double buffer)
	sorted   []int          // verify worker's candidate-order scratch

	// Round state, owned by the caller's goroutine outside a round and
	// read by the workers inside one.
	seqs  []Seq
	trees []*tree
	rngs  []*rand.Rand
	out   []Result
}

// usePipeline reports whether a batched round should overlap its stages:
// only when a second CPU can actually run a worker (on a single-CPU
// process the pipeline is pure handoff overhead) and the round has at
// least two sequences (with one there is nothing to overlap). Both paths
// emit bit-identical streams, so the choice is invisible to callers.
func (e *Engine) usePipeline(n int) bool {
	return n >= 2 && runtime.GOMAXPROCS(0) > 1
}

// pipelineFor returns the engine's pipeline, starting its two stage
// workers on first use. The workers are part of the engine's scratch:
// they idle parked on a channel between rounds and live as long as the
// engine (engines are per-worker and long-lived; a parked goroutine
// costs a few KB of stack).
func (e *Engine) pipelineFor() *pipe {
	sc := e.sc
	if sc.pipeline == nil {
		pp := &pipe{
			workCh:   make(chan pipeMsg, pipeDepth),
			scoredCh: make(chan pipeMsg, pipeDepth),
			doneCh:   make(chan struct{}, 1),
			mscScore: model.NewScratch(),
		}
		sc.pipeline = pp
		go e.scoreLoop(pp)
		go e.verifyLoop(pp)
	}
	return sc.pipeline
}

// scoreLoop is the scoring stage: one grouped target pass per drafted
// tree, into the tree's private rows, with the stage-owned scratch.
func (e *Engine) scoreLoop(pp *pipe) {
	for m := range pp.workCh {
		e.scoreTreeInto(pp.trees[m.idx], pp.seqs[m.idx], pp.mscScore)
		pp.scoredCh <- m
	}
	close(pp.scoredCh)
}

// verifyLoop is the verification stage. Trees arrive in sequence order
// (the scoring stage forwards in receipt order over a FIFO channel), so
// RNG draws happen in exactly the serial loop's order.
func (e *Engine) verifyLoop(pp *pipe) {
	for m := range pp.scoredCh {
		t := pp.trees[m.idx]
		e.verifyTreeRows(t, t.rows, &pp.sorted, pp.seqs[m.idx].EosID, pp.rngs[m.idx], &pp.out[m.idx])
		if m.last {
			pp.doneCh <- struct{}{}
		}
	}
}

// stepBatchPipelined is StepBatch's overlapped body: drafting sequence
// i+1 proceeds while sequence i is being scored and earlier sequences
// verified. out[i]'s drafting fields are written here before the tree is
// handed off; its verification fields are written by the verify worker;
// the doneCh receive orders all of it before the caller reads out.
func (e *Engine) stepBatchPipelined(d draft.Drafter, seqs []Seq, p Params, rngs []*rand.Rand, out []Result, trees []*tree) {
	pp := e.pipelineFor()
	pp.seqs, pp.trees, pp.rngs, pp.out = seqs, trees, rngs, out
	for i := range seqs {
		out[i] = Result{}
		e.draftTreeInto(trees[i], d, seqs[i].Tokens, seqs[i].PromptLen, seqs[i].Bias, p, &out[i])
		pp.workCh <- pipeMsg{idx: i, last: i == len(seqs)-1}
	}
	<-pp.doneCh
	// Drop the round's slice references so retired requests and caller
	// buffers are not pinned by engine scratch between rounds.
	pp.seqs, pp.trees, pp.rngs, pp.out = nil, nil, nil, nil
}
