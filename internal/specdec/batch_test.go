package specdec

import (
	"math/rand"
	"testing"
)

// TestStepBatchMatchesStep pins the packing property of the
// multi-sequence round: StepBatch over N sequences with per-sequence RNGs
// must emit, for every sequence, exactly the tokens an independent
// 1-sequence Step emits with the same seed — rows packed across requests
// score bit-identically to per-request scoring, and verification draws
// only from the owning sequence's stream. Biases and EOS ids differ per
// sequence to exercise the grouped scoring path.
func TestStepBatchMatchesStep(t *testing.T) {
	lm, e, tk := newSetup(t)
	metaRng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		p := Params{
			DraftDepth:     1 + metaRng.Intn(8),
			TopK:           1 + metaRng.Intn(6),
			TokensToVerify: 1 + metaRng.Intn(32),
		}
		temp := 0.0
		if metaRng.Intn(3) > 0 {
			temp = 0.5 + metaRng.Float64()
		}
		n := 1 + metaRng.Intn(6)
		seqs := make([]Seq, n)
		rngs := make([]*rand.Rand, n)
		seeds := make([]int64, n)
		for i := 0; i < n; i++ {
			var bias map[int]float32
			if metaRng.Intn(2) == 0 {
				bias = map[int]float32{tk.Eos(): float32(metaRng.NormFloat64() * 3)}
			}
			eos := -1
			if metaRng.Intn(2) == 0 {
				eos = tk.Eos()
			}
			seeds[i] = metaRng.Int63()
			rngs[i] = rand.New(rand.NewSource(seeds[i]))
			seqs[i] = Seq{
				Tokens:    testPrompt(tk, metaRng),
				PromptLen: 0,
				Bias:      bias,
				EosID:     eos,
			}
			seqs[i].PromptLen = len(seqs[i].Tokens)
		}

		batched := &Engine{Target: lm, Temp: temp}
		out := make([]Result, n)
		batched.StepBatch(e, seqs, p, rngs, out)

		for i := 0; i < n; i++ {
			solo := &Engine{Target: lm, Temp: temp, Bias: seqs[i].Bias, EosID: seqs[i].EosID}
			want := solo.Step(e, seqs[i].Tokens, seqs[i].PromptLen, p, rand.New(rand.NewSource(seeds[i])))
			if len(out[i].Tokens) != len(want.Tokens) {
				t.Fatalf("trial %d seq %d/%d (%+v temp=%.2f): batched %v vs solo %v",
					trial, i, n, p, temp, out[i].Tokens, want.Tokens)
			}
			for j := range want.Tokens {
				if out[i].Tokens[j] != want.Tokens[j] {
					t.Fatalf("trial %d seq %d: token %d differs: %v vs %v",
						trial, i, j, out[i].Tokens, want.Tokens)
				}
			}
			if out[i].AcceptLen != want.AcceptLen || out[i].Eos != want.Eos ||
				out[i].DraftedNodes != want.DraftedNodes || out[i].VerifiedTokens != want.VerifiedTokens {
				t.Fatalf("trial %d seq %d: metadata diverged: %+v vs %+v", trial, i, out[i], want)
			}
		}
	}
}

// TestStepBatchSharedRNGMatchesSequentialSteps pins the trainer-side
// contract: StepBatch with one shared RNG in every slot reproduces the
// draw order of sequential per-sequence Step calls exactly (drafting and
// scoring consume no randomness, verification walks sequences in order).
func TestStepBatchSharedRNGMatchesSequentialSteps(t *testing.T) {
	lm, e, tk := newSetup(t)
	metaRng := rand.New(rand.NewSource(73))
	p := Params{DraftDepth: 5, TopK: 4, TokensToVerify: 16}
	for trial := 0; trial < 30; trial++ {
		n := 2 + metaRng.Intn(4)
		seqs := make([]Seq, n)
		for i := range seqs {
			toks := testPrompt(tk, metaRng)
			seqs[i] = Seq{Tokens: toks, PromptLen: len(toks), EosID: tk.Eos()}
		}
		seed := metaRng.Int63()

		shared := rand.New(rand.NewSource(seed))
		rngs := make([]*rand.Rand, n)
		for i := range rngs {
			rngs[i] = shared
		}
		batched := &Engine{Target: lm, Temp: 0.9}
		out := make([]Result, n)
		batched.StepBatch(e, seqs, p, rngs, out)
		got := make([][]int, n)
		for i := range out {
			got[i] = append([]int(nil), out[i].Tokens...)
		}

		ref := rand.New(rand.NewSource(seed))
		solo := &Engine{Target: lm, Temp: 0.9, EosID: tk.Eos()}
		for i := 0; i < n; i++ {
			want := solo.Step(e, seqs[i].Tokens, seqs[i].PromptLen, p, ref)
			if len(got[i]) != len(want.Tokens) {
				t.Fatalf("trial %d seq %d: %v vs %v", trial, i, got[i], want.Tokens)
			}
			for j := range want.Tokens {
				if got[i][j] != want.Tokens[j] {
					t.Fatalf("trial %d seq %d token %d: %v vs %v", trial, i, j, got[i], want.Tokens)
				}
			}
		}
	}
}

// TestVanillaStepBatchMatchesVanillaStep pins the same packing property
// for the non-speculative step.
func TestVanillaStepBatchMatchesVanillaStep(t *testing.T) {
	lm, _, tk := newSetup(t)
	metaRng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 50; trial++ {
		n := 1 + metaRng.Intn(6)
		seqs := make([]Seq, n)
		rngs := make([]*rand.Rand, n)
		seeds := make([]int64, n)
		for i := range seqs {
			toks := testPrompt(tk, metaRng)
			seqs[i] = Seq{Tokens: toks, PromptLen: len(toks), EosID: tk.Eos()}
			seeds[i] = metaRng.Int63()
			rngs[i] = rand.New(rand.NewSource(seeds[i]))
		}
		eng := &Engine{Target: lm, Temp: 0.9}
		outTok := make([]int, n)
		outEos := make([]bool, n)
		eng.VanillaStepBatch(seqs, rngs, outTok, outEos)
		for i := range seqs {
			solo := &Engine{Target: lm, Temp: 0.9, EosID: tk.Eos()}
			tok, eos := solo.VanillaStep(seqs[i].Tokens, seqs[i].PromptLen, rand.New(rand.NewSource(seeds[i])))
			if tok != outTok[i] || eos != outEos[i] {
				t.Fatalf("trial %d seq %d: batched (%d,%v) vs solo (%d,%v)",
					trial, i, outTok[i], outEos[i], tok, eos)
			}
		}
	}
}

// TestStepBatchZeroSteadyStateAllocs pins the allocation-free contract of
// the multi-sequence hot path: once per-slot trees and the packed row
// arena have grown to the batch's high-water mark, a steady-state
// StepBatch round allocates nothing.
func TestStepBatchZeroSteadyStateAllocs(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(64))
	p := Params{DraftDepth: 6, TopK: 6, TokensToVerify: 24}
	for _, n := range []int{1, 4, 8} {
		eng := &Engine{Target: lm, Temp: 0.9}
		seqs := make([]Seq, n)
		rngs := make([]*rand.Rand, n)
		out := make([]Result, n)
		for i := range seqs {
			toks := testPrompt(tk, rng)
			seqs[i] = Seq{Tokens: toks, PromptLen: len(toks), EosID: -1}
			rngs[i] = rng
		}
		eng.StepBatch(e, seqs, p, rngs, out) // warm-up: grow scratch
		allocs := testing.AllocsPerRun(200, func() {
			eng.StepBatch(e, seqs, p, rngs, out)
		})
		if allocs != 0 {
			t.Errorf("batch=%d: steady-state StepBatch allocates %.1f objects/round, want 0", n, allocs)
		}
	}
}
