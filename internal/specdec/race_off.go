//go:build !race

package specdec

// raceEnabled reports whether the race detector instruments this build.
// Allocation pins are skipped under -race: the detector's shadow-state
// bookkeeping allocates on its own schedule, which is not the property
// those tests pin.
const raceEnabled = false
