package specdec

import (
	"math/rand"
	"testing"
)

// TestStepStructuralInvariants drives random strategies through the
// speculation engine and checks structural invariants of every round:
//   - at least one token is always emitted
//   - the accepted count never exceeds the drafted depth
//   - drafted nodes respect the beam bound depth*topK
//   - verified tokens respect TokensToVerify+1
//   - no token follows an EOS
func TestStepStructuralInvariants(t *testing.T) {
	lm, e, tk := newSetup(t)
	rng := rand.New(rand.NewSource(31))
	eng := &Engine{Target: lm, Temp: 0.9, EosID: tk.Eos()}
	for trial := 0; trial < 300; trial++ {
		p := Params{
			DraftDepth:     1 + rng.Intn(12),
			TopK:           1 + rng.Intn(8),
			TokensToVerify: 1 + rng.Intn(64),
		}
		prompt := testPrompt(tk, rng)
		seq := append([]int(nil), prompt...)
		res := eng.Step(e, seq, len(prompt), p, rng)

		if len(res.Tokens) == 0 {
			t.Fatalf("trial %d (%+v): no tokens emitted", trial, p)
		}
		if res.AcceptLen > p.DraftDepth {
			t.Fatalf("trial %d (%+v): accepted %d > depth", trial, p, res.AcceptLen)
		}
		if res.AcceptLen > len(res.Tokens) {
			t.Fatalf("trial %d (%+v): accept len %d > emitted %d", trial, p, res.AcceptLen, len(res.Tokens))
		}
		if res.DraftedNodes > p.DraftDepth*p.TopK {
			t.Fatalf("trial %d (%+v): drafted %d nodes", trial, p, res.DraftedNodes)
		}
		if res.VerifiedTokens > p.TokensToVerify+1 {
			t.Fatalf("trial %d (%+v): verified %d tokens", trial, p, res.VerifiedTokens)
		}
		for i, tok := range res.Tokens {
			if tok < 0 || tok >= tk.VocabSize() {
				t.Fatalf("trial %d: invalid token %d", trial, tok)
			}
			if tok == tk.Eos() && i != len(res.Tokens)-1 {
				t.Fatalf("trial %d: token after EOS: %v", trial, res.Tokens)
			}
		}
		if len(res.FrontierPerDepth) > p.DraftDepth {
			t.Fatalf("trial %d: frontier depth %d", trial, len(res.FrontierPerDepth))
		}
		for _, w := range res.FrontierPerDepth {
			if w < 1 || w > p.TopK {
				t.Fatalf("trial %d: frontier width %d outside [1,%d]", trial, w, p.TopK)
			}
		}
	}
}

// TestSelectNodesAncestryClosure exercises the tree-selection helper on
// random trees: every selected node's ancestors must also be selected and
// the budget respected.
func TestSelectNodesAncestryClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(60)
		nodes := make([]node, n)
		for i := range nodes {
			parent := -1
			if i > 0 && rng.Float64() < 0.8 {
				parent = rng.Intn(i)
			}
			pp := 1.0
			if parent >= 0 {
				pp = nodes[parent].pathProb
			}
			nodes[i] = node{
				tok:      rng.Intn(50),
				parent:   parent,
				pathProb: pp * (0.1 + 0.9*rng.Float64()),
			}
		}
		k := 1 + rng.Intn(20)
		keep := selectNodes(nodes, k)
		if len(keep) > k {
			t.Fatalf("trial %d: selected %d > budget %d", trial, len(keep), k)
		}
		chosen := map[int]bool{}
		for _, ni := range keep {
			chosen[ni] = true
		}
		for _, ni := range keep {
			for p := nodes[ni].parent; p >= 0; p = nodes[p].parent {
				if !chosen[p] {
					t.Fatalf("trial %d: node %d selected without ancestor %d", trial, ni, p)
				}
			}
		}
	}
}

// TestVerifyNodeMarginalProperty: for a random distribution p and random
// candidate sets, the empirical accept+corrective marginal must match p.
func TestVerifyNodeMarginalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	const vocab = 12
	for trial := 0; trial < 10; trial++ {
		// Random peaked distribution.
		base := make([]float32, vocab)
		var sum float32
		for v := range base {
			base[v] = float32(rng.ExpFloat64())
			sum += base[v]
		}
		for v := range base {
			base[v] /= sum
		}
		// Random distinct candidates.
		k := 1 + rng.Intn(4)
		perm := rng.Perm(vocab)[:k]
		nodes := make([]node, k)
		cands := make([]int, k)
		for i, tok := range perm {
			nodes[i] = node{tok: tok, qProb: rng.Float64()}
			cands[i] = i
		}
		const n = 60000
		counts := make([]int, vocab)
		for i := 0; i < n; i++ {
			p := append([]float32(nil), base...)
			chosen, corrective := verifyNode(p, nodes, cands, rng)
			if chosen >= 0 {
				counts[nodes[chosen].tok]++
			} else {
				counts[corrective]++
			}
		}
		for v := 0; v < vocab; v++ {
			got := float64(counts[v]) / n
			want := float64(base[v])
			if want > 0.01 && absF(got-want) > 0.15*want+0.005 {
				t.Fatalf("trial %d: token %d marginal %.4f, want %.4f", trial, v, got, want)
			}
		}
	}
}

// TestBatchedMatchesSequential: batched tree verification (one ProbsBatch
// pass over all selected nodes up front) must be token-for-token identical
// to the pre-batch sequential path (one target call per visited position)
// under fixed seeds, across random strategies, prompts, temperatures and
// biases — the losslessness-preserving property the batched hot path is
// allowed to exist under. Two engines are used so each keeps its own
// scratch; their RNGs start from the same seed each trial.
func TestBatchedMatchesSequential(t *testing.T) {
	lm, e, tk := newSetup(t)
	metaRng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 400; trial++ {
		p := Params{
			DraftDepth:     1 + metaRng.Intn(10),
			TopK:           1 + metaRng.Intn(6),
			TokensToVerify: 1 + metaRng.Intn(48),
		}
		temp := 0.0
		if metaRng.Intn(3) > 0 {
			temp = 0.5 + metaRng.Float64()
		}
		var bias map[int]float32
		if metaRng.Intn(3) == 0 {
			bias = map[int]float32{
				tk.Eos():  float32(metaRng.NormFloat64() * 3),
				tk.Wait(): float32(metaRng.NormFloat64() * 3),
			}
		}
		prompt := testPrompt(tk, metaRng)
		seed := metaRng.Int63()

		batched := &Engine{Target: lm, Temp: temp, Bias: bias, EosID: tk.Eos()}
		sequential := &Engine{Target: lm, Temp: temp, Bias: bias, EosID: tk.Eos()}
		// Multi-round: carry each path's own sequence forward so any
		// divergence compounds and is caught.
		bSeq := append([]int(nil), prompt...)
		sSeq := append([]int(nil), prompt...)
		bRng := rand.New(rand.NewSource(seed))
		sRng := rand.New(rand.NewSource(seed))
		for round := 0; round < 4; round++ {
			br := batched.Step(e, bSeq, len(prompt), p, bRng)
			sr := sequential.StepSequential(e, sSeq, len(prompt), p, sRng)
			if len(br.Tokens) != len(sr.Tokens) {
				t.Fatalf("trial %d round %d (%+v temp=%.2f): batched %v vs sequential %v",
					trial, round, p, temp, br.Tokens, sr.Tokens)
			}
			for i := range br.Tokens {
				if br.Tokens[i] != sr.Tokens[i] {
					t.Fatalf("trial %d round %d (%+v temp=%.2f): token %d differs: %v vs %v",
						trial, round, p, temp, i, br.Tokens, sr.Tokens)
				}
			}
			if br.AcceptLen != sr.AcceptLen || br.Eos != sr.Eos ||
				br.DraftedNodes != sr.DraftedNodes || br.VerifiedTokens != sr.VerifiedTokens {
				t.Fatalf("trial %d round %d: result metadata diverged: %+v vs %+v", trial, round, br, sr)
			}
			bSeq = append(bSeq, br.Tokens...)
			sSeq = append(sSeq, sr.Tokens...)
			if br.Eos {
				break
			}
		}
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
