// Package specdec implements speculative decoding: linear and tree-based
// drafting with lossless verification.
//
// Drafting selects candidate tokens deterministically (top-K of the draft
// distribution, the Eagle-2 style confidence tree). Verification uses the
// chain-rule scheme for deterministic candidate sets: at each tree
// position with candidate set {x_1..x_k} (ordered by draft confidence),
// candidate x_i is accepted with probability
//
//	p(x_i) / (1 - Σ_{j<i} p(x_j))
//
// and if all candidates are rejected the corrective token is sampled from
// the target distribution restricted to non-candidates. The marginal of
// the emitted token is exactly the target distribution p — speculative
// decoding is mathematically lossless, the property the paper depends on
// for lossless RL training. (With temperature 0 the scheme degenerates to
// exact greedy equality.)
//
// The speculation round is the hottest path in the system: an Engine owns
// reusable scratch (draft/verify buffers, per-sequence tree arenas,
// frontier and context slices) so a steady-state round allocates nothing.
// StepBatch is the primary entry: it drafts one tree per sequence and
// scores every kept node of every tree in a single model.ProbsBatchGrouped
// pass — the iteration-level scheduler packs all decoding requests of one
// step through it. Step is the 1-sequence case. StepSequential retains the
// per-position reference path; property tests assert all paths emit
// identical token streams for identical seeds.
//
// # Software-pipelined rounds
//
// With more than one CPU available (GOMAXPROCS > 1) and at least two
// sequences in a batched round, StepBatch software-pipelines the round:
// while the caller's goroutine drafts sequence i+1's tree, a scoring
// worker runs sequence i's batched target pass and a verification worker
// walks the already-scored trees — the double-buffered-load shape of a
// pipelined GPU kernel, applied to the three stages of a speculation
// round. The overlap is race-free by construction:
//
//   - Drafting touches only the drafter, the engine's draft-side scratch
//     (one model.Scratch, the frontier/top-k buffers), and the tree being
//     drafted. It never touches the target rows.
//   - Scoring owns the second model.Scratch (the double buffer) and
//     writes only into the handed-off tree's private context arena and
//     row arena. The target LM is read-only under scoring (all mutation
//     funnels through the caller-owned model.Scratch), so it is shared
//     safely with the drafting stage's root-hidden-state computation.
//   - Verification consumes randomness — so the verify worker processes
//     trees strictly in sequence order, drawing from rngs[i] exactly as
//     the serial loop does. Draw order, and therefore every emitted
//     token, is bit-identical to the serial path (which in turn matches
//     per-request sequential stepping; the equivalence tests pin all
//     three). Each stage hands its tree to the next over a channel, so
//     every cross-stage access is ordered by a happens-before edge.
//
// Any future drafter must preserve the first invariant: Probs/ProbsBuf
// may read and mutate only drafter-owned state plus the scratch passed
// in, never the target model or engine verification state, and drafting
// must stay deterministic (consume no randomness). Break either and the
// overlap stops being race-free/bit-identical; the pipelined equivalence
// tests (and the -race CI job) are the tripwire.
package specdec

import (
	"math"
	"math/rand"

	"fastrl/internal/draft"
	"fastrl/internal/model"
)

// Params is one speculative-decoding strategy: the MAB "arm".
type Params struct {
	// DraftDepth is the maximum number of sequential drafting steps.
	DraftDepth int
	// TopK is the branching factor of tree drafting (1 = linear).
	TopK int
	// TokensToVerify caps the number of tree nodes sent to the target for
	// verification.
	TokensToVerify int
}

// Equal reports whether two strategies are identical.
func (p Params) Equal(o Params) bool { return p == o }

// Seq describes one sequence in a batched round: the verified tokens so
// far, its prompt length, and its per-sequence sampling controls. The
// drafter does not see the bias, exactly as a deployed drafter would not
// see serving-time logit processors applied to the target.
type Seq struct {
	Tokens    []int
	PromptLen int
	// Bias is an optional per-token logit bias applied to the target (the
	// workload length prior).
	Bias map[int]float32
	// EosID terminates generation when emitted (negative disables).
	EosID int
}

// Result summarises one speculation round for one sequence.
//
// Tokens and FrontierPerDepth alias engine-owned per-sequence scratch:
// they are valid until the next Step/StepBatch/StepSequential/VanillaStep
// call on the same Engine. Callers that retain them across rounds must
// copy (appending into their own slice, as the scheduler does, is a copy).
type Result struct {
	// Tokens are the tokens appended to the sequence: zero or more
	// accepted drafted tokens plus exactly one token sampled from the
	// target's (restricted) distribution. At least one token always lands
	// per round, as in vanilla speculative decoding.
	Tokens []int
	// AcceptLen is the number of accepted drafted tokens (len(Tokens)-1,
	// unless EOS cut the round short).
	AcceptLen int
	// DraftedNodes is the number of drafter forward evaluations spent.
	DraftedNodes int
	// FrontierPerDepth records the tree frontier width at each drafting
	// depth, for drafting cost accounting.
	FrontierPerDepth []int
	// VerifiedTokens is the number of tree nodes the target scored in the
	// verification pass.
	VerifiedTokens int
	// Eos reports whether an end-of-sequence token was emitted.
	Eos bool
}

// Engine wraps a target model with sampling settings for speculation.
// An Engine retains scratch buffers across rounds and is not safe for
// concurrent use; every worker (scheduler batch, serving replica) owns
// one.
type Engine struct {
	Target *model.LM
	// Temp is the sampling temperature (0 = greedy).
	Temp float64
	// Bias and EosID are the single-sequence sampling controls consumed by
	// Step/StepSequential/VanillaStep; StepBatch takes them per Seq.
	Bias  map[int]float32
	EosID int

	// sc holds the per-engine scratch reused across rounds; created
	// lazily on first use so zero-value Engines keep working.
	sc *scratch

	// Single-sequence adapters reuse these so Step/VanillaStep stay
	// allocation-free wrappers over the batched entries.
	seq1 [1]Seq
	rng1 [1]*rand.Rand
	out1 [1]Result
	tok1 [1]int
	eos1 [1]bool
}

// node is one drafted token in the speculation tree.
type node struct {
	tok      int
	parent   int // index into nodes; -1 for roots
	depth    int
	pathProb float64 // product of draft probabilities along the path
	qProb    float64 // draft probability of this token at its parent
}

// tree is one sequence's speculation tree, retained between the batched
// drafting and verification stages. Every slice grows to its sequence
// slot's high-water mark and is then reused, so steady-state rounds
// perform zero heap allocations.
type tree struct {
	nodes            []node
	frontierPerDepth []int
	seqBuf           []int // verified prefix + growing path/accept suffix

	// Candidate selection output.
	keep []int

	// Kept-tree adjacency (children packed into one arena).
	roots      []int
	childStart []int
	childCount []int
	childArena []int

	// Batched verification: one context per kept node (+1 for the root
	// position) materialised into the per-tree arena; rowBase is the
	// tree's first row in the engine's shared row set and rowOf maps a
	// kept node index to its row offset from rowBase.
	ctxArena []int
	rowOf    []int
	rowBase  int

	// Pipelined scoring buffers: the pipelined path scores each tree in
	// its own grouped pass the moment drafting hands it off, so the
	// contexts, rows and row arena live on the tree (stage-private)
	// instead of the engine's shared arenas. Row values are bit-identical
	// either way — scoring zeroes each row before accumulation, so rows
	// are independent of their batch-mates.
	ctxs     []model.Context
	rows     [][]float32
	rowArena []float32
	group1   [1]model.RowGroup

	accepted []int // emitted tokens (aliased by Result.Tokens)
}

// scratch is the engine's reusable working set shared across the
// sequences of a batched round: transient compute buffers plus the
// per-sequence-slot trees and the packed scoring arenas.
type scratch struct {
	msc    *model.Scratch
	hidden model.HiddenState // drafting-root hidden state
	deep   model.HiddenState // rank-free view for deeper draft indices

	qBuf []float32 // draft proposal distribution
	pBuf []float32 // target row (sequential verification, vanilla step)

	frontier, next []int
	topk           []int

	// Candidate selection.
	order  []int
	member []bool
	chain  []int

	sorted []int // verifyNode candidate ordering

	// Per-sequence-slot trees (slot i serves the i-th sequence of every
	// batched call; slots persist so their arenas amortise).
	trees []*tree

	// Packed scoring across all trees of one batched round: one context
	// and one probability row per kept node (+1 per tree for the root
	// position), one RowGroup per sequence, scored in a single
	// ProbsBatchGrouped pass.
	ctxs     []model.Context
	groups   []model.RowGroup
	rows     [][]float32
	rowArena []float32

	// pipeline is the engine's software pipeline for batched rounds,
	// created lazily the first time a round qualifies for overlap.
	pipeline *pipe
}

func (e *Engine) scratchInit() *scratch {
	if e.sc == nil {
		e.sc = &scratch{msc: model.NewScratch()}
	}
	return e.sc
}

// treesFor returns n per-sequence tree slots, growing the slot list only
// past its high-water mark.
func (sc *scratch) treesFor(n int) []*tree {
	for len(sc.trees) < n {
		sc.trees = append(sc.trees, &tree{})
	}
	return sc.trees[:n]
}

func ensureF32(b []float32, n int) []float32 {
	if cap(b) < n {
		return make([]float32, n)
	}
	return b[:n]
}

func ensureInt(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// growthSlack is the per-sequence headroom (in tokens) reserved on top of
// exact need when a growth-coupled scratch buffer reallocates: sequences
// lengthen every round, so exact-fit growth would allocate once per round
// in perpetuity. 1024 tokens of headroom amortise reallocation to once
// per ~dozens-of-rounds while costing a few KB per inflight sequence.
const growthSlack = 1024

func clampParams(p Params) Params {
	if p.DraftDepth < 1 {
		p.DraftDepth = 1
	}
	if p.TopK < 1 {
		p.TopK = 1
	}
	if p.TokensToVerify < 1 {
		p.TokensToVerify = 1
	}
	return p
}

// StepBatch performs one draft-and-verify round for every sequence under
// one strategy — the iteration-level unit of continuous batching, where
// the scheduler packs all decoding requests of a step into a single
// batched verification forward.
//
// Drafting runs per sequence against the drafter's current state (one
// batched draft pass per step, as a real batched drafter forward would),
// then every kept node of every tree is scored in one
// model.ProbsBatchGrouped call with per-sequence bias groups, and finally
// each tree is verified in sequence order drawing from rngs[i]. Because
// drafting and scoring consume no randomness, a shared rng in every slot
// reproduces the draw order of sequential per-request Step calls exactly,
// and per-sequence rngs make each sequence's stream independent of batch
// composition (frozen drafters) — the property the scheduler's
// run-to-completion-equivalence tests pin.
//
// out[i] receives sequence i's result; Result slices alias per-slot
// scratch valid until the next round on this Engine.
func (e *Engine) StepBatch(d draft.Drafter, seqs []Seq, p Params, rngs []*rand.Rand, out []Result) {
	if len(seqs) != len(rngs) || len(seqs) != len(out) {
		panic("specdec: StepBatch seqs/rngs/out length mismatch")
	}
	if len(seqs) == 0 {
		return
	}
	p = clampParams(p)
	sc := e.scratchInit()
	trees := sc.treesFor(len(seqs))
	if e.usePipeline(len(seqs)) {
		e.stepBatchPipelined(d, seqs, p, rngs, out, trees)
		return
	}
	for i := range seqs {
		out[i] = Result{}
		e.draftTreeInto(trees[i], d, seqs[i].Tokens, seqs[i].PromptLen, seqs[i].Bias, p, &out[i])
	}
	e.scoreTrees(seqs, trees)
	for i := range seqs {
		e.verifyTree(trees[i], seqs[i].EosID, rngs[i], &out[i])
	}
}

// Step performs one draft-and-verify round for a single sequence: the
// 1-sequence case of StepBatch, using the engine-level Bias/EosID.
func (e *Engine) Step(d draft.Drafter, tokens []int, promptLen int, p Params, rng *rand.Rand) Result {
	e.seq1[0] = Seq{Tokens: tokens, PromptLen: promptLen, Bias: e.Bias, EosID: e.EosID}
	e.rng1[0] = rng
	e.StepBatch(d, e.seq1[:], p, e.rng1[:], e.out1[:])
	e.seq1[0] = Seq{} // drop the caller's slice reference
	e.rng1[0] = nil
	return e.out1[0]
}

// StepSequential is the pre-batching reference path: it drafts the
// identical tree but scores tree positions with one sequential target call
// each, lazily along the accepted path. It is retained as the baseline
// that property tests compare batched verification against (identical
// seeds must emit identical token streams) and as a benchmark reference.
func (e *Engine) StepSequential(d draft.Drafter, tokens []int, promptLen int, p Params, rng *rand.Rand) Result {
	p = clampParams(p)
	sc := e.scratchInit()
	t := sc.treesFor(1)[0]
	var res Result
	e.draftTreeInto(t, d, tokens, promptLen, e.Bias, p, &res)
	e.verifySequential(t, &res, tokens, promptLen, rng)
	return res
}

// draftTreeInto runs the drafting stage and ancestry-closed candidate
// selection for one sequence into its tree. Both verification paths
// consume the tree it leaves behind, so they are guaranteed to see
// identical candidates.
func (e *Engine) draftTreeInto(t *tree, d draft.Drafter, tokens []int, promptLen int, bias map[int]float32, p Params, res *Result) {
	sc := e.sc
	vocab := e.Target.Config().Vocab
	rootCtx := model.Context{Tokens: tokens, PromptLen: promptLen}
	// Two fused sketches cover both Eagle (1) and Eagle-3 (2) inputs.
	hidden := model.FusedHiddenInto(e.Target, rootCtx, 2, &sc.hidden, sc.msc)
	sc.deep.Sketch = hidden.Sketch
	sc.deep.TopTokens = nil
	sc.qBuf = ensureF32(sc.qBuf, vocab)
	bd, buffered := d.(draft.BufferedDrafter)

	// The sequence grows a few tokens every round, so exact-fit growth
	// would reallocate once per round forever; headroom keeps steady-state
	// rounds allocation-free until the sequence outgrows the reserve.
	need := len(tokens) + p.DraftDepth + 2
	if cap(t.seqBuf) < need {
		t.seqBuf = make([]int, 0, need+growthSlack)
	}
	t.seqBuf = append(t.seqBuf[:0], tokens...)

	t.nodes = t.nodes[:0]
	t.frontierPerDepth = t.frontierPerDepth[:0]
	sc.frontier = append(sc.frontier[:0], -1) // -1 denotes the root context
	for depth := 1; depth <= p.DraftDepth && len(sc.frontier) > 0; depth++ {
		t.frontierPerDepth = append(t.frontierPerDepth, len(sc.frontier))
		sc.next = sc.next[:0]
		for _, pi := range sc.frontier {
			ctx := e.pathContext(tokens, t.nodes, pi, t.seqBuf[:len(tokens)])
			// Drafting state: at the root the drafter sees the target's
			// hidden state exactly; deeper nodes draft in the rank-free
			// mode the drafter was trained for via rank dropout (the root
			// hidden state does not describe deeper positions).
			h := hidden
			if pi >= 0 {
				h = &sc.deep
			}
			if buffered {
				bd.ProbsBuf(ctx, promptLen, h, e.draftTemp(), sc.qBuf, sc.msc)
			} else {
				d.Probs(ctx, promptLen, h, e.draftTemp(), sc.qBuf)
			}
			e.applyBiasToDraft(sc.qBuf, bias)
			res.DraftedNodes++
			parentProb := 1.0
			if pi >= 0 {
				parentProb = t.nodes[pi].pathProb
			}
			kept := 0
			sc.topk = model.TopKInto(sc.qBuf, p.TopK, sc.topk)
			for _, tok := range sc.topk {
				if kept >= p.TopK {
					break
				}
				qp := float64(sc.qBuf[tok])
				if qp <= 0 {
					continue
				}
				kept++
				ni := len(t.nodes)
				t.nodes = append(t.nodes, node{
					tok:      tok,
					parent:   pi,
					depth:    depth,
					pathProb: parentProb * qp,
					qProb:    qp,
				})
				sc.next = append(sc.next, ni)
			}
		}
		// Depth-limited beam: only the TopK highest-path-probability nodes
		// expand further, bounding drafting cost (Eagle-2 dynamic trees).
		if len(sc.next) > p.TopK {
			topByPathProb(sc.next, p.TopK, t.nodes)
			sc.next = sc.next[:p.TopK]
		}
		sc.frontier, sc.next = sc.next, sc.frontier
	}
	res.FrontierPerDepth = t.frontierPerDepth

	// Candidate selection: keep the TokensToVerify highest-confidence
	// nodes, closed under ancestry so every kept node's parent is kept.
	keep := sc.selectKeptInto(t, p.TokensToVerify)
	t.buildAdjacency(keep)
	res.VerifiedTokens = len(keep) + 1 // +1: the root position is scored too
}

// buildAdjacency packs the kept nodes' child lists into one arena,
// preserving keep order (the order the old per-node append produced).
func (t *tree) buildAdjacency(keep []int) {
	n := len(t.nodes)
	t.childStart = ensureInt(t.childStart, n)
	t.childCount = ensureInt(t.childCount, n)
	for i := 0; i < n; i++ {
		t.childCount[i] = 0
	}
	t.roots = t.roots[:0]
	for _, ni := range keep {
		if par := t.nodes[ni].parent; par < 0 {
			t.roots = append(t.roots, ni)
		} else {
			t.childCount[par]++
		}
	}
	off := 0
	for i := 0; i < n; i++ {
		t.childStart[i] = off
		off += t.childCount[i]
		t.childCount[i] = 0 // reused as the fill cursor below
	}
	t.childArena = ensureInt(t.childArena, off)
	for _, ni := range keep {
		if par := t.nodes[ni].parent; par >= 0 {
			t.childArena[t.childStart[par]+t.childCount[par]] = ni
			t.childCount[par]++
		}
	}
}

// childrenOf returns the kept children of a kept node.
func (t *tree) childrenOf(ni int) []int {
	s := t.childStart[ni]
	return t.childArena[s : s+t.childCount[ni]]
}

// scoreTrees materialises the context of the root position and of every
// kept node of every tree, and scores them all in one grouped batched
// target pass — the single verification forward the virtual-clock cost
// model charges per step, now shared across every sequence of the batch
// instead of one pass per request. Each sequence's rows form one RowGroup
// carrying its logit bias, so the packed pass emits bit-identical rows to
// per-sequence scoring.
func (e *Engine) scoreTrees(seqs []Seq, trees []*tree) {
	sc := e.sc
	vocab := e.Target.Config().Vocab

	total := 0
	for _, t := range trees {
		t.rowBase = total
		total += len(t.keep) + 1
	}
	sc.rowArena = ensureF32(sc.rowArena, total*vocab)
	sc.rows = sc.rows[:0]
	for r := 0; r < total; r++ {
		sc.rows = append(sc.rows, sc.rowArena[r*vocab:(r+1)*vocab])
	}

	sc.ctxs = sc.ctxs[:0]
	sc.groups = sc.groups[:0]
	for i, t := range trees {
		sc.ctxs = buildScoreCtxs(t, seqs[i], sc.ctxs)
		sc.groups = append(sc.groups, model.RowGroup{N: len(t.keep) + 1, Bias: seqs[i].Bias})
	}

	e.Target.ProbsBatchGrouped(sc.ctxs, sc.groups, e.Temp, sc.rows, sc.msc)
}

// buildScoreCtxs appends the root-position context and one context per
// kept node of the tree to dst (filling t.rowOf with each node's row
// offset from the tree's first row) and returns the extended slice. Both
// scoring paths — the serial whole-batch pass and the pipelined per-tree
// pass — materialise their contexts through this one function, so they
// score identical inputs.
func buildScoreCtxs(t *tree, seq Seq, dst []model.Context) []model.Context {
	tokens := seq.Tokens
	promptLen := seq.PromptLen
	L := len(tokens)
	arenaNeed := 0
	for _, ni := range t.keep {
		arenaNeed += L + t.nodes[ni].depth
	}
	// Context lengths grow with the sequence every round; headroom
	// keeps the arena from reallocating once per round (see seqBuf).
	if cap(t.ctxArena) < arenaNeed {
		t.ctxArena = make([]int, arenaNeed+growthSlack*(len(t.keep)+1))
	}
	t.ctxArena = t.ctxArena[:arenaNeed]
	dst = append(dst, model.Context{Tokens: t.seqBuf[:L], PromptLen: promptLen})
	t.rowOf = ensureInt(t.rowOf, len(t.nodes))
	off := 0
	for j, ni := range t.keep {
		end := off + L + t.nodes[ni].depth
		seg := t.ctxArena[off:end]
		copy(seg, tokens)
		for k := ni; k >= 0; k = t.nodes[k].parent {
			seg[L+t.nodes[k].depth-1] = t.nodes[k].tok
		}
		dst = append(dst, model.Context{Tokens: seg, PromptLen: promptLen})
		t.rowOf[ni] = j + 1
		off = end
	}
	return dst
}

// scoreTreeInto scores one tree's kept nodes in a single grouped pass
// into the tree's private row arena — the pipelined path's scoring
// stage, running on the scoring worker with the engine's second
// model.Scratch. scoreInto zeroes each row before accumulating, so
// per-tree passes emit exactly the float32 values the whole-batch pass
// produces for the same tree.
func (e *Engine) scoreTreeInto(t *tree, seq Seq, msc *model.Scratch) {
	vocab := e.Target.Config().Vocab
	total := len(t.keep) + 1
	t.rowArena = ensureF32(t.rowArena, total*vocab)
	t.rows = t.rows[:0]
	for r := 0; r < total; r++ {
		t.rows = append(t.rows, t.rowArena[r*vocab:(r+1)*vocab])
	}
	t.ctxs = buildScoreCtxs(t, seq, t.ctxs[:0])
	t.group1[0] = model.RowGroup{N: total, Bias: seq.Bias}
	e.Target.ProbsBatchGrouped(t.ctxs, t.group1[:], e.Temp, t.rows, msc)
	t.rowBase = 0
}

// verifyTree walks one selected tree performing chain-rule rejection
// sampling against its pre-scored rows in the engine's shared row set.
// It draws from the RNG in exactly the order verifySequential does, so
// both paths emit identical tokens for identical seeds.
func (e *Engine) verifyTree(t *tree, eosID int, rng *rand.Rand, res *Result) {
	sc := e.sc
	e.verifyTreeRows(t, sc.rows[t.rowBase:], &sc.sorted, eosID, rng, res)
}

// verifyTreeRows is the verification walk over an explicit row set
// (rows[0] is the root position, rows[t.rowOf[n]] node n's position) and
// caller-owned sort scratch — shared by the serial path (engine rows,
// engine scratch) and the pipelined path (tree-private rows, the verify
// worker's scratch).
func (e *Engine) verifyTreeRows(t *tree, rows [][]float32, sortBuf *[]int, eosID int, rng *rand.Rand, res *Result) {
	t.accepted = t.accepted[:0]
	candidates := t.roots
	row := rows[0]
	for {
		chosen, corrective := verifyNodeBuf(row, t.nodes, candidates, sortBuf, rng)
		if chosen < 0 {
			t.accepted = append(t.accepted, corrective)
			res.Eos = eosID >= 0 && corrective == eosID
			break
		}
		t.accepted = append(t.accepted, t.nodes[chosen].tok)
		res.AcceptLen++
		if eosID >= 0 && t.nodes[chosen].tok == eosID {
			res.Eos = true
			break
		}
		row = rows[t.rowOf[chosen]]
		candidates = t.childrenOf(chosen)
		if len(candidates) == 0 {
			// Deepest accepted node: sample the bonus token from the
			// (already scored) target distribution at the new context.
			bonus := model.SampleProbs(row, rng)
			t.accepted = append(t.accepted, bonus)
			res.Eos = eosID >= 0 && bonus == eosID
			break
		}
	}
	res.Tokens = t.accepted
}

// verifySequential is the reference verification: one target call per
// visited tree position, computed lazily along the accepted path.
func (e *Engine) verifySequential(t *tree, res *Result, tokens []int, promptLen int, rng *rand.Rand) {
	sc := e.sc
	vocab := e.Target.Config().Vocab
	sc.pBuf = ensureF32(sc.pBuf, vocab)
	t.accepted = t.accepted[:0]
	ctx := t.seqBuf[:len(tokens)]
	candidates := t.roots
	for {
		e.Target.ProbsScratch(model.Context{Tokens: ctx, PromptLen: promptLen}, e.Bias, e.Temp, sc.pBuf, sc.msc)
		chosen, corrective := verifyNodeBuf(sc.pBuf, t.nodes, candidates, &sc.sorted, rng)
		if chosen < 0 {
			t.accepted = append(t.accepted, corrective)
			res.Eos = e.EosID >= 0 && corrective == e.EosID
			break
		}
		t.accepted = append(t.accepted, t.nodes[chosen].tok)
		ctx = append(ctx, t.nodes[chosen].tok)
		res.AcceptLen++
		if e.EosID >= 0 && t.nodes[chosen].tok == e.EosID {
			res.Eos = true
			break
		}
		candidates = t.childrenOf(chosen)
		if len(candidates) == 0 {
			// Deepest accepted node: sample the bonus token from the
			// target distribution at the new context.
			e.Target.ProbsScratch(model.Context{Tokens: ctx, PromptLen: promptLen}, e.Bias, e.Temp, sc.pBuf, sc.msc)
			bonus := model.SampleProbs(sc.pBuf, rng)
			t.accepted = append(t.accepted, bonus)
			res.Eos = e.EosID >= 0 && bonus == e.EosID
			break
		}
	}
	res.Tokens = t.accepted
}

// applyBiasToDraft reweights a draft proposal by the sequence's logit
// bias, mirroring how serving engines apply sampling parameters to the
// draft model as well as the target. Since the drafter emits
// probabilities, the bias is folded in multiplicatively:
// q'(v) ∝ q(v)·exp(bias_v/temp). Verification does not depend on q, so
// exactness is unaffected — this only improves candidate selection.
func (e *Engine) applyBiasToDraft(q []float32, bias map[int]float32) {
	if len(bias) == 0 {
		return
	}
	temp := e.draftTemp()
	var sum float64
	for id, b := range bias {
		if id >= 0 && id < len(q) {
			q[id] *= float32(mathExp(float64(b) / temp))
		}
	}
	for _, v := range q {
		sum += float64(v)
	}
	if sum <= 0 {
		return
	}
	inv := float32(1 / sum)
	for i := range q {
		q[i] *= inv
	}
}

// draftTemp returns the temperature the drafter proposes at. Greedy target
// decoding still drafts at a mild temperature so confidence ordering is
// informative; verification keeps the output exact.
func (e *Engine) draftTemp() float64 {
	if e.Temp <= 0 {
		return 1
	}
	return e.Temp
}

// pathContext reconstructs the token context for a node by walking to the
// root. buf must contain the verified prefix.
func (e *Engine) pathContext(tokens []int, nodes []node, ni int, buf []int) []int {
	if ni < 0 {
		return buf
	}
	var rev [64]int
	n := 0
	for i := ni; i >= 0 && n < len(rev); i = nodes[i].parent {
		rev[n] = nodes[i].tok
		n++
	}
	ctx := buf
	for i := n - 1; i >= 0; i-- {
		ctx = append(ctx, rev[i])
	}
	return ctx
}

// sortByPathProb orders node indices by descending path probability with
// an ascending-index tie-break — a deterministic total order, so every
// caller (and both verification paths) builds the identical tree.
// Insertion sort: the slices are small (at most the beam width or node
// count) and this avoids the interface boxing of sort.Slice.
func sortByPathProb(idx []int, nodes []node) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		pv := nodes[v].pathProb
		j := i
		for j > 0 {
			u := idx[j-1]
			if nodes[u].pathProb > pv || (nodes[u].pathProb == pv && u < v) {
				break
			}
			idx[j] = u
			j--
		}
		idx[j] = v
	}
}

// topByPathProb partially sorts idx so its first k entries are the k
// highest-path-probability nodes in the same total order sortByPathProb
// uses (descending probability, ascending-index ties). The beam trim only
// keeps k of the frontier, so a k-pass selection beats a full sort.
func topByPathProb(idx []int, k int, nodes []node) {
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			a, b := idx[j], idx[best]
			if nodes[a].pathProb > nodes[b].pathProb ||
				(nodes[a].pathProb == nodes[b].pathProb && a < b) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
}

// sortByQProb orders node indices by descending draft probability with an
// ascending-index tie-break (see sortByPathProb).
func sortByQProb(idx []int, nodes []node) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		qv := nodes[v].qProb
		j := i
		for j > 0 {
			u := idx[j-1]
			if nodes[u].qProb > qv || (nodes[u].qProb == qv && u < v) {
				break
			}
			idx[j] = u
			j--
		}
		idx[j] = v
	}
}

// selectKeptInto fills t.keep with the indices of up to k of the tree's
// nodes with the highest path probability, closed under ancestry, using
// the scratch's shared selection buffers.
func (sc *scratch) selectKeptInto(t *tree, k int) []int {
	nodes := t.nodes
	t.keep = t.keep[:0]
	if len(nodes) == 0 {
		return t.keep
	}
	sc.order = ensureInt(sc.order, len(nodes))
	for i := range sc.order {
		sc.order[i] = i
	}
	sortByPathProb(sc.order, nodes)
	if cap(sc.member) < len(nodes) {
		sc.member = make([]bool, len(nodes))
	}
	member := sc.member[:len(nodes)]
	for i := range member {
		member[i] = false
	}
	for _, ni := range sc.order {
		if len(t.keep) >= k {
			break
		}
		// Adding ni requires its uncovered ancestors too.
		sc.chain = sc.chain[:0]
		for i := ni; i >= 0 && !member[i]; i = nodes[i].parent {
			sc.chain = append(sc.chain, i)
		}
		if len(t.keep)+len(sc.chain) > k {
			continue
		}
		for _, i := range sc.chain {
			member[i] = true
			t.keep = append(t.keep, i)
		}
	}
	return t.keep
}

// selectNodes returns the indices of up to k nodes with the highest path
// probability, closed under ancestry. (Allocating wrapper over the
// scratch-based selection, kept for tests and external callers.)
func selectNodes(nodes []node, k int) []int {
	sc := &scratch{}
	t := &tree{nodes: nodes}
	return append([]int(nil), sc.selectKeptInto(t, k)...)
}

// verifyNodeBuf runs chain-rule verification at one tree position. p is
// the target distribution at the position (mutated in the all-rejected
// case); candidates the drafted children (distinct tokens). Candidate x_i
// (in draft-confidence order) is accepted with probability
// p(x_i)/(1 - Σ_{j<i} p(x_j)); if all are rejected the corrective token
// is sampled from p restricted to non-candidates. The marginal over
// emitted tokens is exactly p. sortBuf is caller-owned scratch for the
// confidence ordering.
func verifyNodeBuf(p []float32, nodes []node, candidates []int, sortBuf *[]int, rng *rand.Rand) (chosenNode int, corrective int) {
	if len(candidates) == 0 {
		return -1, model.SampleProbs(p, rng)
	}
	sorted := append((*sortBuf)[:0], candidates...)
	*sortBuf = sorted
	sortByQProb(sorted, nodes)
	remaining := 1.0
	for _, ci := range sorted {
		tok := nodes[ci].tok
		px := float64(p[tok])
		if remaining <= 0 {
			break
		}
		if rng.Float64()*remaining < px {
			return ci, 0
		}
		remaining -= px
		p[tok] = 0 // exclude from the corrective distribution
	}
	// All rejected: sample from p restricted to non-candidates. The
	// candidate entries were zeroed above; SampleProbs tolerates the
	// unnormalised remainder via explicit renormalisation.
	var sum float64
	for _, pv := range p {
		sum += float64(pv)
	}
	if sum <= 0 {
		// Target mass was entirely on candidates yet all were rejected —
		// impossible mathematically, reachable only through float
		// round-off. Fall back to the most confident candidate.
		return sorted[0], 0
	}
	inv := float32(1 / sum)
	for v := range p {
		p[v] *= inv
	}
	return -1, model.SampleProbs(p, rng)
}

// verifyNode is verifyNodeBuf with private scratch (test/reference entry).
func verifyNode(p []float32, nodes []node, candidates []int, rng *rand.Rand) (chosenNode int, corrective int) {
	var buf []int
	return verifyNodeBuf(p, nodes, candidates, &buf, rng)
}

// VanillaStepBatch performs one ordinary (non-speculative) decode step for
// every sequence: all rows are scored in a single grouped batched pass and
// sampled in sequence order from the per-sequence RNGs. outTok[i] and
// outEos[i] receive sequence i's sampled token and EOS flag. Rows are
// scored with code identical to the sequential path, so a shared rng in
// every slot reproduces per-request VanillaStep calls exactly.
func (e *Engine) VanillaStepBatch(seqs []Seq, rngs []*rand.Rand, outTok []int, outEos []bool) {
	if len(seqs) != len(rngs) || len(seqs) != len(outTok) || len(seqs) != len(outEos) {
		panic("specdec: VanillaStepBatch seqs/rngs/out length mismatch")
	}
	if len(seqs) == 0 {
		return
	}
	sc := e.scratchInit()
	vocab := e.Target.Config().Vocab
	sc.rowArena = ensureF32(sc.rowArena, len(seqs)*vocab)
	sc.rows = sc.rows[:0]
	sc.ctxs = sc.ctxs[:0]
	sc.groups = sc.groups[:0]
	for i, s := range seqs {
		sc.rows = append(sc.rows, sc.rowArena[i*vocab:(i+1)*vocab])
		sc.ctxs = append(sc.ctxs, model.Context{Tokens: s.Tokens, PromptLen: s.PromptLen})
		sc.groups = append(sc.groups, model.RowGroup{N: 1, Bias: s.Bias})
	}
	e.Target.ProbsBatchGrouped(sc.ctxs, sc.groups, e.Temp, sc.rows, sc.msc)
	for i, s := range seqs {
		tok := model.SampleProbs(sc.rows[i], rngs[i])
		outTok[i] = tok
		outEos[i] = s.EosID >= 0 && tok == s.EosID
	}
	// Drop caller slice references: unlike the tree path (which copies
	// tokens into engine-owned arenas), these contexts alias the callers'
	// token storage, and truncation alone would keep it reachable.
	for i := range sc.ctxs {
		sc.ctxs[i] = model.Context{}
	}
	sc.ctxs = sc.ctxs[:0]
}

// VanillaStep performs one ordinary (non-speculative) decode step,
// returning the sampled token: the 1-sequence case of VanillaStepBatch,
// using the engine-level Bias/EosID. It exists so engines share sampling
// semantics between SD and non-SD paths.
func (e *Engine) VanillaStep(tokens []int, promptLen int, rng *rand.Rand) (int, bool) {
	e.seq1[0] = Seq{Tokens: tokens, PromptLen: promptLen, Bias: e.Bias, EosID: e.EosID}
	e.rng1[0] = rng
	e.VanillaStepBatch(e.seq1[:], e.rng1[:], e.tok1[:], e.eos1[:])
	e.seq1[0] = Seq{}
	e.rng1[0] = nil
	return e.tok1[0], e.eos1[0]
}

func mathExp(x float64) float64 {
	if x > 30 {
		x = 30
	}
	if x < -30 {
		x = -30
	}
	return math.Exp(x)
}
