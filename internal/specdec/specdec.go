// Package specdec implements speculative decoding: linear and tree-based
// drafting with lossless verification.
//
// Drafting selects candidate tokens deterministically (top-K of the draft
// distribution, the Eagle-2 style confidence tree). Verification uses the
// chain-rule scheme for deterministic candidate sets: at each tree
// position with candidate set {x_1..x_k} (ordered by draft confidence),
// candidate x_i is accepted with probability
//
//	p(x_i) / (1 - Σ_{j<i} p(x_j))
//
// and if all candidates are rejected the corrective token is sampled from
// the target distribution restricted to non-candidates. The marginal of
// the emitted token is exactly the target distribution p — speculative
// decoding is mathematically lossless, the property the paper depends on
// for lossless RL training. (With temperature 0 the scheme degenerates to
// exact greedy equality.)
package specdec

import (
	"math"
	"math/rand"
	"sort"

	"fastrl/internal/draft"
	"fastrl/internal/model"
)

// Params is one speculative-decoding strategy: the MAB "arm".
type Params struct {
	// DraftDepth is the maximum number of sequential drafting steps.
	DraftDepth int
	// TopK is the branching factor of tree drafting (1 = linear).
	TopK int
	// TokensToVerify caps the number of tree nodes sent to the target for
	// verification.
	TokensToVerify int
}

// Equal reports whether two strategies are identical.
func (p Params) Equal(o Params) bool { return p == o }

// Result summarises one speculation round.
type Result struct {
	// Tokens are the tokens appended to the sequence: zero or more
	// accepted drafted tokens plus exactly one token sampled from the
	// target's (restricted) distribution. At least one token always lands
	// per round, as in vanilla speculative decoding.
	Tokens []int
	// AcceptLen is the number of accepted drafted tokens (len(Tokens)-1,
	// unless EOS cut the round short).
	AcceptLen int
	// DraftedNodes is the number of drafter forward evaluations spent.
	DraftedNodes int
	// FrontierPerDepth records the tree frontier width at each drafting
	// depth, for drafting cost accounting.
	FrontierPerDepth []int
	// VerifiedTokens is the number of tree nodes the target scored in the
	// verification pass.
	VerifiedTokens int
	// Eos reports whether an end-of-sequence token was emitted.
	Eos bool
}

// Engine wraps a target model with sampling settings for speculation.
type Engine struct {
	Target *model.LM
	// Temp is the sampling temperature (0 = greedy).
	Temp float64
	// Bias is an optional per-token logit bias applied to the target (the
	// workload length prior). The drafter does not see it, exactly as a
	// deployed drafter would not see serving-time logit processors.
	Bias map[int]float32
	// EosID terminates generation when emitted (set negative to disable).
	EosID int
}

// node is one drafted token in the speculation tree.
type node struct {
	tok      int
	parent   int // index into nodes; -1 for roots
	depth    int
	pathProb float64 // product of draft probabilities along the path
	qProb    float64 // draft probability of this token at its parent
	children []int
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Step performs one draft-and-verify round for a single sequence.
//
// tokens is the verified sequence so far. The drafter proposes a
// confidence tree of candidates conditioned on the target's hidden sketch
// at the root, the target verifies the selected nodes in one (virtual)
// pass, and the accepted prefix plus one corrective/bonus token is
// returned.
func (e *Engine) Step(d draft.Drafter, tokens []int, promptLen int, p Params, rng *rand.Rand) Result {
	if p.DraftDepth < 1 {
		p.DraftDepth = 1
	}
	if p.TopK < 1 {
		p.TopK = 1
	}
	if p.TokensToVerify < 1 {
		p.TokensToVerify = 1
	}
	vocab := e.Target.Config().Vocab
	// Two fused sketches cover both Eagle (1) and Eagle-3 (2) inputs.
	hidden := model.FusedHidden(e.Target, model.Context{Tokens: tokens, PromptLen: promptLen}, 2)

	// ---- Drafting stage: build the candidate tree.
	var nodes []node
	var res Result
	qBuf := make([]float32, vocab)
	frontier := []int{-1} // -1 denotes the root context
	seqBuf := make([]int, len(tokens), len(tokens)+p.DraftDepth+2)
	copy(seqBuf, tokens)
	for depth := 1; depth <= p.DraftDepth && len(frontier) > 0; depth++ {
		res.FrontierPerDepth = append(res.FrontierPerDepth, len(frontier))
		var next []int
		for _, pi := range frontier {
			ctx := e.pathContext(tokens, nodes, pi, seqBuf[:len(tokens)])
			// Drafting state: at the root the drafter sees the target's
			// hidden state exactly; deeper nodes draft in the rank-free
			// mode the drafter was trained for via rank dropout (the root
			// hidden state does not describe deeper positions).
			h := hidden
			if pi >= 0 {
				h = &model.HiddenState{Sketch: hidden.Sketch}
			}
			d.Probs(ctx, promptLen, h, e.draftTemp(), qBuf)
			e.applyBiasToDraft(qBuf)
			res.DraftedNodes++
			parentProb := 1.0
			if pi >= 0 {
				parentProb = nodes[pi].pathProb
			}
			kept := 0
			for _, tok := range model.TopK(qBuf, p.TopK) {
				if kept >= p.TopK {
					break
				}
				qp := float64(qBuf[tok])
				if qp <= 0 {
					continue
				}
				kept++
				ni := len(nodes)
				nodes = append(nodes, node{
					tok:      tok,
					parent:   pi,
					depth:    depth,
					pathProb: parentProb * qp,
					qProb:    qp,
				})
				next = append(next, ni)
			}
		}
		// Depth-limited beam: only the TopK highest-path-probability nodes
		// expand further, bounding drafting cost (Eagle-2 dynamic trees).
		if len(next) > p.TopK {
			sort.Slice(next, func(i, j int) bool {
				return nodes[next[i]].pathProb > nodes[next[j]].pathProb
			})
			next = next[:p.TopK]
		}
		frontier = next
	}

	// ---- Candidate selection: keep the TokensToVerify highest-confidence
	// nodes, closed under ancestry so every kept node's parent is kept.
	keep := selectNodes(nodes, p.TokensToVerify)
	var roots []int
	for _, ni := range keep {
		if nodes[ni].parent < 0 {
			roots = append(roots, ni)
		} else {
			par := nodes[ni].parent
			nodes[par].children = append(nodes[par].children, ni)
		}
	}
	res.VerifiedTokens = len(keep) + 1 // +1: the root position is scored too

	// ---- Verification stage: chain-rule rejection sampling down the tree.
	pBuf := make([]float32, vocab)
	accepted := make([]int, 0, p.DraftDepth+1)
	ctx := seqBuf[:len(tokens)]
	candidates := roots
	for {
		e.Target.Probs(model.Context{Tokens: ctx, PromptLen: promptLen}, e.Bias, e.Temp, pBuf)
		chosen, corrective := verifyNode(pBuf, nodes, candidates, rng)
		if chosen < 0 {
			accepted = append(accepted, corrective)
			res.Eos = e.EosID >= 0 && corrective == e.EosID
			break
		}
		accepted = append(accepted, nodes[chosen].tok)
		ctx = append(ctx, nodes[chosen].tok)
		res.AcceptLen++
		if e.EosID >= 0 && nodes[chosen].tok == e.EosID {
			res.Eos = true
			break
		}
		candidates = nodes[chosen].children
		if len(candidates) == 0 {
			// Deepest accepted node: sample the bonus token from the
			// target distribution at the new context.
			e.Target.Probs(model.Context{Tokens: ctx, PromptLen: promptLen}, e.Bias, e.Temp, pBuf)
			bonus := model.SampleProbs(pBuf, rng)
			accepted = append(accepted, bonus)
			res.Eos = e.EosID >= 0 && bonus == e.EosID
			break
		}
	}
	res.Tokens = accepted
	return res
}

// applyBiasToDraft reweights a draft proposal by the engine's logit bias,
// mirroring how serving engines apply sampling parameters to the draft
// model as well as the target. Since the drafter emits probabilities, the
// bias is folded in multiplicatively: q'(v) ∝ q(v)·exp(bias_v/temp).
// Verification does not depend on q, so exactness is unaffected — this
// only improves candidate selection.
func (e *Engine) applyBiasToDraft(q []float32) {
	if len(e.Bias) == 0 {
		return
	}
	temp := e.draftTemp()
	var sum float64
	for id, b := range e.Bias {
		if id >= 0 && id < len(q) {
			q[id] *= float32(mathExp(float64(b) / temp))
		}
	}
	for _, v := range q {
		sum += float64(v)
	}
	if sum <= 0 {
		return
	}
	inv := float32(1 / sum)
	for i := range q {
		q[i] *= inv
	}
}

// draftTemp returns the temperature the drafter proposes at. Greedy target
// decoding still drafts at a mild temperature so confidence ordering is
// informative; verification keeps the output exact.
func (e *Engine) draftTemp() float64 {
	if e.Temp <= 0 {
		return 1
	}
	return e.Temp
}

// pathContext reconstructs the token context for a node by walking to the
// root. buf must contain the verified prefix.
func (e *Engine) pathContext(tokens []int, nodes []node, ni int, buf []int) []int {
	if ni < 0 {
		return buf
	}
	var rev [64]int
	n := 0
	for i := ni; i >= 0 && n < len(rev); i = nodes[i].parent {
		rev[n] = nodes[i].tok
		n++
	}
	ctx := buf
	for i := n - 1; i >= 0; i-- {
		ctx = append(ctx, rev[i])
	}
	return ctx
}

// selectNodes returns the indices of up to k nodes with the highest path
// probability, closed under ancestry.
func selectNodes(nodes []node, k int) []int {
	if len(nodes) == 0 {
		return nil
	}
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return nodes[order[i]].pathProb > nodes[order[j]].pathProb
	})
	chosen := make(map[int]bool, k)
	var out []int
	for _, ni := range order {
		if len(chosen) >= k {
			break
		}
		// Adding ni requires its uncovered ancestors too.
		var chain []int
		for i := ni; i >= 0 && !chosen[i]; i = nodes[i].parent {
			chain = append(chain, i)
		}
		if len(chosen)+len(chain) > k {
			continue
		}
		for _, i := range chain {
			chosen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// verifyNode runs chain-rule verification at one tree position. p is the
// target distribution at the position; candidates the drafted children
// (distinct tokens). Candidate x_i (in draft-confidence order) is accepted
// with probability p(x_i)/(1 - Σ_{j<i} p(x_j)); if all are rejected the
// corrective token is sampled from p restricted to non-candidates. The
// marginal over emitted tokens is exactly p.
func verifyNode(p []float32, nodes []node, candidates []int, rng *rand.Rand) (chosenNode int, corrective int) {
	if len(candidates) == 0 {
		return -1, model.SampleProbs(p, rng)
	}
	sorted := append([]int(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool {
		return nodes[sorted[i]].qProb > nodes[sorted[j]].qProb
	})
	remaining := 1.0
	for _, ci := range sorted {
		tok := nodes[ci].tok
		px := float64(p[tok])
		if remaining <= 0 {
			break
		}
		if rng.Float64()*remaining < px {
			return ci, 0
		}
		remaining -= px
		p[tok] = 0 // exclude from the corrective distribution
	}
	// All rejected: sample from p restricted to non-candidates. The
	// candidate entries were zeroed above; SampleProbs tolerates the
	// unnormalised remainder via explicit renormalisation.
	var sum float64
	for _, pv := range p {
		sum += float64(pv)
	}
	if sum <= 0 {
		// Target mass was entirely on candidates yet all were rejected —
		// impossible mathematically, reachable only through float
		// round-off. Fall back to the most confident candidate.
		return sorted[0], 0
	}
	inv := float32(1 / sum)
	for v := range p {
		p[v] *= inv
	}
	return -1, model.SampleProbs(p, rng)
}

// VanillaStep performs one ordinary (non-speculative) decode step,
// returning the sampled token. It exists so engines share sampling
// semantics between SD and non-SD paths.
func (e *Engine) VanillaStep(tokens []int, promptLen int, rng *rand.Rand) (int, bool) {
	probs := make([]float32, e.Target.Config().Vocab)
	e.Target.Probs(model.Context{Tokens: tokens, PromptLen: promptLen}, e.Bias, e.Temp, probs)
	tok := model.SampleProbs(probs, rng)
	return tok, e.EosID >= 0 && tok == e.EosID
}

func mathExp(x float64) float64 {
	if x > 30 {
		x = 30
	}
	if x < -30 {
		x = -30
	}
	return math.Exp(x)
}
