// Package specdec implements speculative decoding: linear and tree-based
// drafting with lossless verification.
//
// Drafting selects candidate tokens deterministically (top-K of the draft
// distribution, the Eagle-2 style confidence tree). Verification uses the
// chain-rule scheme for deterministic candidate sets: at each tree
// position with candidate set {x_1..x_k} (ordered by draft confidence),
// candidate x_i is accepted with probability
//
//	p(x_i) / (1 - Σ_{j<i} p(x_j))
//
// and if all candidates are rejected the corrective token is sampled from
// the target distribution restricted to non-candidates. The marginal of
// the emitted token is exactly the target distribution p — speculative
// decoding is mathematically lossless, the property the paper depends on
// for lossless RL training. (With temperature 0 the scheme degenerates to
// exact greedy equality.)
//
// The speculation round is the hottest path in the system: an Engine owns
// reusable scratch (draft/verify buffers, the node arena, frontier and
// context slices) so a steady-state round allocates nothing, and the
// target scores the whole selected tree in one model.ProbsBatch pass
// instead of one sequential call per position. StepSequential retains the
// per-position reference path; property tests assert both emit identical
// token streams for identical seeds.
package specdec

import (
	"math"
	"math/rand"

	"fastrl/internal/draft"
	"fastrl/internal/model"
)

// Params is one speculative-decoding strategy: the MAB "arm".
type Params struct {
	// DraftDepth is the maximum number of sequential drafting steps.
	DraftDepth int
	// TopK is the branching factor of tree drafting (1 = linear).
	TopK int
	// TokensToVerify caps the number of tree nodes sent to the target for
	// verification.
	TokensToVerify int
}

// Equal reports whether two strategies are identical.
func (p Params) Equal(o Params) bool { return p == o }

// Result summarises one speculation round.
//
// Tokens and FrontierPerDepth alias engine-owned scratch: they are valid
// until the next Step/StepSequential/VanillaStep call on the same Engine.
// Callers that retain them across rounds must copy (appending into their
// own slice, as the rollout engine does, is a copy).
type Result struct {
	// Tokens are the tokens appended to the sequence: zero or more
	// accepted drafted tokens plus exactly one token sampled from the
	// target's (restricted) distribution. At least one token always lands
	// per round, as in vanilla speculative decoding.
	Tokens []int
	// AcceptLen is the number of accepted drafted tokens (len(Tokens)-1,
	// unless EOS cut the round short).
	AcceptLen int
	// DraftedNodes is the number of drafter forward evaluations spent.
	DraftedNodes int
	// FrontierPerDepth records the tree frontier width at each drafting
	// depth, for drafting cost accounting.
	FrontierPerDepth []int
	// VerifiedTokens is the number of tree nodes the target scored in the
	// verification pass.
	VerifiedTokens int
	// Eos reports whether an end-of-sequence token was emitted.
	Eos bool
}

// Engine wraps a target model with sampling settings for speculation.
// An Engine retains scratch buffers across rounds and is not safe for
// concurrent use; every worker (rollout engine, serving replica) owns one.
type Engine struct {
	Target *model.LM
	// Temp is the sampling temperature (0 = greedy).
	Temp float64
	// Bias is an optional per-token logit bias applied to the target (the
	// workload length prior). The drafter does not see it, exactly as a
	// deployed drafter would not see serving-time logit processors.
	Bias map[int]float32
	// EosID terminates generation when emitted (set negative to disable).
	EosID int

	// sc holds the per-engine scratch reused across rounds; created
	// lazily on first use so zero-value Engines keep working.
	sc *scratch
}

// node is one drafted token in the speculation tree.
type node struct {
	tok      int
	parent   int // index into nodes; -1 for roots
	depth    int
	pathProb float64 // product of draft probabilities along the path
	qProb    float64 // draft probability of this token at its parent
}

// scratch is the engine's reusable working set. Every slice grows to the
// strategy's high-water mark and is then reused, so a steady-state
// speculation round performs zero heap allocations.
type scratch struct {
	msc    *model.Scratch
	hidden model.HiddenState // drafting-root hidden state
	deep   model.HiddenState // rank-free view for deeper draft indices

	qBuf []float32 // draft proposal distribution
	pBuf []float32 // target row (sequential verification, vanilla step)

	nodes            []node
	frontier, next   []int
	frontierPerDepth []int
	seqBuf           []int // verified prefix + growing path/accept suffix
	topk             []int

	// Candidate selection.
	order  []int
	member []bool
	chain  []int
	keep   []int

	// Kept-tree adjacency (children packed into one arena).
	roots      []int
	childStart []int
	childCount []int
	childArena []int

	// Batched verification: one context and one probability row per kept
	// node (+1 for the root position), scored in a single ProbsBatch pass.
	ctxs     []model.Context
	ctxArena []int
	rows     [][]float32
	rowArena []float32
	rowOf    []int // node index -> row index (kept nodes only)

	sorted   []int // verifyNode candidate ordering
	accepted []int // emitted tokens (aliased by Result.Tokens)
}

func (e *Engine) scratchInit() *scratch {
	if e.sc == nil {
		e.sc = &scratch{msc: model.NewScratch()}
	}
	return e.sc
}

func ensureF32(b []float32, n int) []float32 {
	if cap(b) < n {
		return make([]float32, n)
	}
	return b[:n]
}

func ensureInt(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampParams(p Params) Params {
	if p.DraftDepth < 1 {
		p.DraftDepth = 1
	}
	if p.TopK < 1 {
		p.TopK = 1
	}
	if p.TokensToVerify < 1 {
		p.TokensToVerify = 1
	}
	return p
}

// Step performs one draft-and-verify round for a single sequence.
//
// tokens is the verified sequence so far. The drafter proposes a
// confidence tree of candidates conditioned on the target's hidden sketch
// at the root, the target scores every selected node in one batched pass,
// and the accepted prefix plus one corrective/bonus token is returned.
func (e *Engine) Step(d draft.Drafter, tokens []int, promptLen int, p Params, rng *rand.Rand) Result {
	p = clampParams(p)
	var res Result
	e.draftTree(d, tokens, promptLen, p, &res)
	e.scoreTree(tokens, promptLen)
	e.verifyBatched(&res, rng)
	return res
}

// StepSequential is the pre-batching reference path: it drafts the
// identical tree but scores tree positions with one sequential target call
// each, lazily along the accepted path. It is retained as the baseline
// that property tests compare batched verification against (identical
// seeds must emit identical token streams) and as a benchmark reference.
func (e *Engine) StepSequential(d draft.Drafter, tokens []int, promptLen int, p Params, rng *rand.Rand) Result {
	p = clampParams(p)
	var res Result
	e.draftTree(d, tokens, promptLen, p, &res)
	e.verifySequential(&res, tokens, promptLen, rng)
	return res
}

// draftTree runs the drafting stage and ancestry-closed candidate
// selection into the engine scratch. Both verification paths consume the
// tree it leaves behind, so they are guaranteed to see identical
// candidates.
func (e *Engine) draftTree(d draft.Drafter, tokens []int, promptLen int, p Params, res *Result) {
	sc := e.scratchInit()
	vocab := e.Target.Config().Vocab
	rootCtx := model.Context{Tokens: tokens, PromptLen: promptLen}
	// Two fused sketches cover both Eagle (1) and Eagle-3 (2) inputs.
	hidden := model.FusedHiddenInto(e.Target, rootCtx, 2, &sc.hidden, sc.msc)
	sc.deep.Sketch = hidden.Sketch
	sc.deep.TopTokens = nil
	sc.qBuf = ensureF32(sc.qBuf, vocab)
	bd, buffered := d.(draft.BufferedDrafter)

	need := len(tokens) + p.DraftDepth + 2
	if cap(sc.seqBuf) < need {
		sc.seqBuf = make([]int, 0, need)
	}
	sc.seqBuf = append(sc.seqBuf[:0], tokens...)

	sc.nodes = sc.nodes[:0]
	sc.frontierPerDepth = sc.frontierPerDepth[:0]
	sc.frontier = append(sc.frontier[:0], -1) // -1 denotes the root context
	for depth := 1; depth <= p.DraftDepth && len(sc.frontier) > 0; depth++ {
		sc.frontierPerDepth = append(sc.frontierPerDepth, len(sc.frontier))
		sc.next = sc.next[:0]
		for _, pi := range sc.frontier {
			ctx := e.pathContext(tokens, sc.nodes, pi, sc.seqBuf[:len(tokens)])
			// Drafting state: at the root the drafter sees the target's
			// hidden state exactly; deeper nodes draft in the rank-free
			// mode the drafter was trained for via rank dropout (the root
			// hidden state does not describe deeper positions).
			h := hidden
			if pi >= 0 {
				h = &sc.deep
			}
			if buffered {
				bd.ProbsBuf(ctx, promptLen, h, e.draftTemp(), sc.qBuf, sc.msc)
			} else {
				d.Probs(ctx, promptLen, h, e.draftTemp(), sc.qBuf)
			}
			e.applyBiasToDraft(sc.qBuf)
			res.DraftedNodes++
			parentProb := 1.0
			if pi >= 0 {
				parentProb = sc.nodes[pi].pathProb
			}
			kept := 0
			sc.topk = model.TopKInto(sc.qBuf, p.TopK, sc.topk)
			for _, tok := range sc.topk {
				if kept >= p.TopK {
					break
				}
				qp := float64(sc.qBuf[tok])
				if qp <= 0 {
					continue
				}
				kept++
				ni := len(sc.nodes)
				sc.nodes = append(sc.nodes, node{
					tok:      tok,
					parent:   pi,
					depth:    depth,
					pathProb: parentProb * qp,
					qProb:    qp,
				})
				sc.next = append(sc.next, ni)
			}
		}
		// Depth-limited beam: only the TopK highest-path-probability nodes
		// expand further, bounding drafting cost (Eagle-2 dynamic trees).
		if len(sc.next) > p.TopK {
			topByPathProb(sc.next, p.TopK, sc.nodes)
			sc.next = sc.next[:p.TopK]
		}
		sc.frontier, sc.next = sc.next, sc.frontier
	}
	res.FrontierPerDepth = sc.frontierPerDepth

	// Candidate selection: keep the TokensToVerify highest-confidence
	// nodes, closed under ancestry so every kept node's parent is kept.
	keep := sc.selectKept(p.TokensToVerify)
	sc.buildAdjacency(keep)
	res.VerifiedTokens = len(keep) + 1 // +1: the root position is scored too
}

// buildAdjacency packs the kept nodes' child lists into one arena,
// preserving keep order (the order the old per-node append produced).
func (sc *scratch) buildAdjacency(keep []int) {
	n := len(sc.nodes)
	sc.childStart = ensureInt(sc.childStart, n)
	sc.childCount = ensureInt(sc.childCount, n)
	for i := 0; i < n; i++ {
		sc.childCount[i] = 0
	}
	sc.roots = sc.roots[:0]
	for _, ni := range keep {
		if par := sc.nodes[ni].parent; par < 0 {
			sc.roots = append(sc.roots, ni)
		} else {
			sc.childCount[par]++
		}
	}
	off := 0
	for i := 0; i < n; i++ {
		sc.childStart[i] = off
		off += sc.childCount[i]
		sc.childCount[i] = 0 // reused as the fill cursor below
	}
	sc.childArena = ensureInt(sc.childArena, off)
	for _, ni := range keep {
		if par := sc.nodes[ni].parent; par >= 0 {
			sc.childArena[sc.childStart[par]+sc.childCount[par]] = ni
			sc.childCount[par]++
		}
	}
}

// childrenOf returns the kept children of a kept node.
func (sc *scratch) childrenOf(ni int) []int {
	s := sc.childStart[ni]
	return sc.childArena[s : s+sc.childCount[ni]]
}

// scoreTree materialises the context of the root position and of every
// kept node and scores them all in one batched target pass — the single
// verification forward the virtual-clock cost model already charges for,
// instead of one sequential target call per visited position.
func (e *Engine) scoreTree(tokens []int, promptLen int) {
	sc := e.sc
	vocab := e.Target.Config().Vocab
	keep := sc.keep
	nRows := len(keep) + 1

	sc.rowArena = ensureF32(sc.rowArena, nRows*vocab)
	sc.rows = sc.rows[:0]
	for r := 0; r < nRows; r++ {
		sc.rows = append(sc.rows, sc.rowArena[r*vocab:(r+1)*vocab])
	}

	L := len(tokens)
	arenaNeed := 0
	for _, ni := range keep {
		arenaNeed += L + sc.nodes[ni].depth
	}
	sc.ctxArena = ensureInt(sc.ctxArena, arenaNeed)
	sc.ctxs = sc.ctxs[:0]
	sc.ctxs = append(sc.ctxs, model.Context{Tokens: sc.seqBuf[:L], PromptLen: promptLen})
	sc.rowOf = ensureInt(sc.rowOf, len(sc.nodes))
	off := 0
	for j, ni := range keep {
		end := off + L + sc.nodes[ni].depth
		seg := sc.ctxArena[off:end]
		copy(seg, tokens)
		for i := ni; i >= 0; i = sc.nodes[i].parent {
			seg[L+sc.nodes[i].depth-1] = sc.nodes[i].tok
		}
		sc.ctxs = append(sc.ctxs, model.Context{Tokens: seg, PromptLen: promptLen})
		sc.rowOf[ni] = j + 1
		off = end
	}

	e.Target.ProbsBatch(sc.ctxs, e.Bias, e.Temp, sc.rows, sc.msc)
}

// verifyBatched walks the selected tree performing chain-rule rejection
// sampling against the pre-scored rows. It draws from the RNG in exactly
// the order verifySequential does, so both paths emit identical tokens
// for identical seeds.
func (e *Engine) verifyBatched(res *Result, rng *rand.Rand) {
	sc := e.sc
	sc.accepted = sc.accepted[:0]
	candidates := sc.roots
	row := sc.rows[0]
	for {
		chosen, corrective := verifyNodeBuf(row, sc.nodes, candidates, &sc.sorted, rng)
		if chosen < 0 {
			sc.accepted = append(sc.accepted, corrective)
			res.Eos = e.EosID >= 0 && corrective == e.EosID
			break
		}
		sc.accepted = append(sc.accepted, sc.nodes[chosen].tok)
		res.AcceptLen++
		if e.EosID >= 0 && sc.nodes[chosen].tok == e.EosID {
			res.Eos = true
			break
		}
		row = sc.rows[sc.rowOf[chosen]]
		candidates = sc.childrenOf(chosen)
		if len(candidates) == 0 {
			// Deepest accepted node: sample the bonus token from the
			// (already scored) target distribution at the new context.
			bonus := model.SampleProbs(row, rng)
			sc.accepted = append(sc.accepted, bonus)
			res.Eos = e.EosID >= 0 && bonus == e.EosID
			break
		}
	}
	res.Tokens = sc.accepted
}

// verifySequential is the reference verification: one target call per
// visited tree position, computed lazily along the accepted path.
func (e *Engine) verifySequential(res *Result, tokens []int, promptLen int, rng *rand.Rand) {
	sc := e.sc
	vocab := e.Target.Config().Vocab
	sc.pBuf = ensureF32(sc.pBuf, vocab)
	sc.accepted = sc.accepted[:0]
	ctx := sc.seqBuf[:len(tokens)]
	candidates := sc.roots
	for {
		e.Target.ProbsScratch(model.Context{Tokens: ctx, PromptLen: promptLen}, e.Bias, e.Temp, sc.pBuf, sc.msc)
		chosen, corrective := verifyNodeBuf(sc.pBuf, sc.nodes, candidates, &sc.sorted, rng)
		if chosen < 0 {
			sc.accepted = append(sc.accepted, corrective)
			res.Eos = e.EosID >= 0 && corrective == e.EosID
			break
		}
		sc.accepted = append(sc.accepted, sc.nodes[chosen].tok)
		ctx = append(ctx, sc.nodes[chosen].tok)
		res.AcceptLen++
		if e.EosID >= 0 && sc.nodes[chosen].tok == e.EosID {
			res.Eos = true
			break
		}
		candidates = sc.childrenOf(chosen)
		if len(candidates) == 0 {
			// Deepest accepted node: sample the bonus token from the
			// target distribution at the new context.
			e.Target.ProbsScratch(model.Context{Tokens: ctx, PromptLen: promptLen}, e.Bias, e.Temp, sc.pBuf, sc.msc)
			bonus := model.SampleProbs(sc.pBuf, rng)
			sc.accepted = append(sc.accepted, bonus)
			res.Eos = e.EosID >= 0 && bonus == e.EosID
			break
		}
	}
	res.Tokens = sc.accepted
}

// applyBiasToDraft reweights a draft proposal by the engine's logit bias,
// mirroring how serving engines apply sampling parameters to the draft
// model as well as the target. Since the drafter emits probabilities, the
// bias is folded in multiplicatively: q'(v) ∝ q(v)·exp(bias_v/temp).
// Verification does not depend on q, so exactness is unaffected — this
// only improves candidate selection.
func (e *Engine) applyBiasToDraft(q []float32) {
	if len(e.Bias) == 0 {
		return
	}
	temp := e.draftTemp()
	var sum float64
	for id, b := range e.Bias {
		if id >= 0 && id < len(q) {
			q[id] *= float32(mathExp(float64(b) / temp))
		}
	}
	for _, v := range q {
		sum += float64(v)
	}
	if sum <= 0 {
		return
	}
	inv := float32(1 / sum)
	for i := range q {
		q[i] *= inv
	}
}

// draftTemp returns the temperature the drafter proposes at. Greedy target
// decoding still drafts at a mild temperature so confidence ordering is
// informative; verification keeps the output exact.
func (e *Engine) draftTemp() float64 {
	if e.Temp <= 0 {
		return 1
	}
	return e.Temp
}

// pathContext reconstructs the token context for a node by walking to the
// root. buf must contain the verified prefix.
func (e *Engine) pathContext(tokens []int, nodes []node, ni int, buf []int) []int {
	if ni < 0 {
		return buf
	}
	var rev [64]int
	n := 0
	for i := ni; i >= 0 && n < len(rev); i = nodes[i].parent {
		rev[n] = nodes[i].tok
		n++
	}
	ctx := buf
	for i := n - 1; i >= 0; i-- {
		ctx = append(ctx, rev[i])
	}
	return ctx
}

// sortByPathProb orders node indices by descending path probability with
// an ascending-index tie-break — a deterministic total order, so every
// caller (and both verification paths) builds the identical tree.
// Insertion sort: the slices are small (at most the beam width or node
// count) and this avoids the interface boxing of sort.Slice.
func sortByPathProb(idx []int, nodes []node) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		pv := nodes[v].pathProb
		j := i
		for j > 0 {
			u := idx[j-1]
			if nodes[u].pathProb > pv || (nodes[u].pathProb == pv && u < v) {
				break
			}
			idx[j] = u
			j--
		}
		idx[j] = v
	}
}

// topByPathProb partially sorts idx so its first k entries are the k
// highest-path-probability nodes in the same total order sortByPathProb
// uses (descending probability, ascending-index ties). The beam trim only
// keeps k of the frontier, so a k-pass selection beats a full sort.
func topByPathProb(idx []int, k int, nodes []node) {
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			a, b := idx[j], idx[best]
			if nodes[a].pathProb > nodes[b].pathProb ||
				(nodes[a].pathProb == nodes[b].pathProb && a < b) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
}

// sortByQProb orders node indices by descending draft probability with an
// ascending-index tie-break (see sortByPathProb).
func sortByQProb(idx []int, nodes []node) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		qv := nodes[v].qProb
		j := i
		for j > 0 {
			u := idx[j-1]
			if nodes[u].qProb > qv || (nodes[u].qProb == qv && u < v) {
				break
			}
			idx[j] = u
			j--
		}
		idx[j] = v
	}
}

// selectKept fills sc.keep with the indices of up to k nodes with the
// highest path probability, closed under ancestry.
func (sc *scratch) selectKept(k int) []int {
	nodes := sc.nodes
	sc.keep = sc.keep[:0]
	if len(nodes) == 0 {
		return sc.keep
	}
	sc.order = ensureInt(sc.order, len(nodes))
	for i := range sc.order {
		sc.order[i] = i
	}
	sortByPathProb(sc.order, nodes)
	if cap(sc.member) < len(nodes) {
		sc.member = make([]bool, len(nodes))
	}
	member := sc.member[:len(nodes)]
	for i := range member {
		member[i] = false
	}
	for _, ni := range sc.order {
		if len(sc.keep) >= k {
			break
		}
		// Adding ni requires its uncovered ancestors too.
		sc.chain = sc.chain[:0]
		for i := ni; i >= 0 && !member[i]; i = nodes[i].parent {
			sc.chain = append(sc.chain, i)
		}
		if len(sc.keep)+len(sc.chain) > k {
			continue
		}
		for _, i := range sc.chain {
			member[i] = true
			sc.keep = append(sc.keep, i)
		}
	}
	return sc.keep
}

// selectNodes returns the indices of up to k nodes with the highest path
// probability, closed under ancestry. (Allocating wrapper over the
// scratch-based selection, kept for tests and external callers.)
func selectNodes(nodes []node, k int) []int {
	sc := &scratch{nodes: nodes}
	return append([]int(nil), sc.selectKept(k)...)
}

// verifyNodeBuf runs chain-rule verification at one tree position. p is
// the target distribution at the position (mutated in the all-rejected
// case); candidates the drafted children (distinct tokens). Candidate x_i
// (in draft-confidence order) is accepted with probability
// p(x_i)/(1 - Σ_{j<i} p(x_j)); if all are rejected the corrective token
// is sampled from p restricted to non-candidates. The marginal over
// emitted tokens is exactly p. sortBuf is caller-owned scratch for the
// confidence ordering.
func verifyNodeBuf(p []float32, nodes []node, candidates []int, sortBuf *[]int, rng *rand.Rand) (chosenNode int, corrective int) {
	if len(candidates) == 0 {
		return -1, model.SampleProbs(p, rng)
	}
	sorted := append((*sortBuf)[:0], candidates...)
	*sortBuf = sorted
	sortByQProb(sorted, nodes)
	remaining := 1.0
	for _, ci := range sorted {
		tok := nodes[ci].tok
		px := float64(p[tok])
		if remaining <= 0 {
			break
		}
		if rng.Float64()*remaining < px {
			return ci, 0
		}
		remaining -= px
		p[tok] = 0 // exclude from the corrective distribution
	}
	// All rejected: sample from p restricted to non-candidates. The
	// candidate entries were zeroed above; SampleProbs tolerates the
	// unnormalised remainder via explicit renormalisation.
	var sum float64
	for _, pv := range p {
		sum += float64(pv)
	}
	if sum <= 0 {
		// Target mass was entirely on candidates yet all were rejected —
		// impossible mathematically, reachable only through float
		// round-off. Fall back to the most confident candidate.
		return sorted[0], 0
	}
	inv := float32(1 / sum)
	for v := range p {
		p[v] *= inv
	}
	return -1, model.SampleProbs(p, rng)
}

// verifyNode is verifyNodeBuf with private scratch (test/reference entry).
func verifyNode(p []float32, nodes []node, candidates []int, rng *rand.Rand) (chosenNode int, corrective int) {
	var buf []int
	return verifyNodeBuf(p, nodes, candidates, &buf, rng)
}

// VanillaStep performs one ordinary (non-speculative) decode step,
// returning the sampled token. It exists so engines share sampling
// semantics between SD and non-SD paths.
func (e *Engine) VanillaStep(tokens []int, promptLen int, rng *rand.Rand) (int, bool) {
	sc := e.scratchInit()
	sc.pBuf = ensureF32(sc.pBuf, e.Target.Config().Vocab)
	e.Target.ProbsScratch(model.Context{Tokens: tokens, PromptLen: promptLen}, e.Bias, e.Temp, sc.pBuf, sc.msc)
	tok := model.SampleProbs(sc.pBuf, rng)
	return tok, e.EosID >= 0 && tok == e.EosID
}

func mathExp(x float64) float64 {
	if x > 30 {
		x = 30
	}
	if x < -30 {
		x = -30
	}
	return math.Exp(x)
}
