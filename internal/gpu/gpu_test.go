package gpu

import (
	"testing"
	"time"
)

func TestCatalogueLookup(t *testing.T) {
	for _, s := range Catalogue() {
		got, err := ByName(s.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", s.Name, err)
		}
		if got.Name != s.Name {
			t.Fatalf("ByName(%q) returned %q", s.Name, got.Name)
		}
	}
	if _, err := ByName("TPUv9"); err == nil {
		t.Fatal("expected error for unknown GPU")
	}
}

func TestArchParamCounts(t *testing.T) {
	// Dense-transformer estimates should land near the nominal sizes.
	cases := []struct {
		arch Arch
		minB float64
		maxB float64
	}{
		{Qwen7B, 4e9, 9e9},
		{Qwen32B, 20e9, 40e9},
		{Llama70B, 60e9, 90e9},
		{Qwen05B, 0.2e9, 1e9},
	}
	for _, c := range cases {
		if c.arch.ParamCount < c.minB || c.arch.ParamCount > c.maxB {
			t.Errorf("%s: param estimate %.2fB outside [%.1fB, %.1fB]",
				c.arch.Name, c.arch.ParamCount/1e9, c.minB/1e9, c.maxB/1e9)
		}
	}
}

func TestDraftArchIsSingleLayer(t *testing.T) {
	d := DraftArch(Qwen32B)
	if d.Layers != 1 {
		t.Fatalf("draft arch layers = %d, want 1", d.Layers)
	}
	if d.ParamCount >= Qwen32B.ParamCount/10 {
		t.Fatalf("draft model not lightweight: %.2fB params", d.ParamCount/1e9)
	}
}

func TestDecodeMemoryBoundAtSmallBatch(t *testing.T) {
	dev := NewDevice(H100, 1)
	small := dev.Forward(Qwen7B, ForwardOpts{Tokens: 1, KVTokens: 1024})
	if small.Bound != "memory" {
		t.Fatalf("single-token decode should be memory bound, got %q", small.Bound)
	}
	big := dev.Forward(Qwen7B, ForwardOpts{Tokens: 4096, KVTokens: 1024})
	if big.Bound != "compute" {
		t.Fatalf("4096-token pass should be compute bound, got %q", big.Bound)
	}
}

func TestVerifyTokensNearlyFreeAtSmallBatch(t *testing.T) {
	// The roofline property speculative decoding exploits: verifying 8
	// tokens costs well under 8x a single-token step.
	dev := NewDevice(H100, 1)
	one := dev.Forward(Qwen7B, ForwardOpts{Tokens: 1, KVTokens: 2048, CUDAGraph: true}).Total()
	eight := dev.Forward(Qwen7B, ForwardOpts{Tokens: 8, KVTokens: 2048, CUDAGraph: true}).Total()
	ratio := float64(eight) / float64(one)
	if ratio > 1.5 {
		t.Fatalf("verify cost ratio %0.2f, want near 1 (memory bound)", ratio)
	}
}

func TestCUDAGraphRemovesLaunchOverhead(t *testing.T) {
	dev := NewDevice(H100, 1)
	with := dev.Forward(Qwen7B, ForwardOpts{Tokens: 1, KVTokens: 128, CUDAGraph: true})
	without := dev.Forward(Qwen7B, ForwardOpts{Tokens: 1, KVTokens: 128})
	if with.Launch >= without.Launch {
		t.Fatalf("CUDAGraph launch %v not below eager launch %v", with.Launch, without.Launch)
	}
	if without.Total() <= with.Total() {
		t.Fatalf("eager total %v should exceed graph total %v", without.Total(), with.Total())
	}
}

func TestTPReducesLatency(t *testing.T) {
	tp1 := NewDevice(H100, 1).Forward(Qwen32B, ForwardOpts{Tokens: 1, KVTokens: 1024}).Total()
	tp4 := NewDevice(H100, 4).Forward(Qwen32B, ForwardOpts{Tokens: 1, KVTokens: 1024}).Total()
	if tp4 >= tp1 {
		t.Fatalf("TP=4 latency %v not below TP=1 latency %v", tp4, tp1)
	}
	// But not superlinear.
	if tp4 < tp1/8 {
		t.Fatalf("TP=4 speedup implausibly high: %v vs %v", tp4, tp1)
	}
}

func TestAchievedTFLOPSRooflineShape(t *testing.T) {
	// Fig 5(c): achieved TFLOPS grows with tokens per pass and saturates.
	dev := NewDevice(H100, 1)
	prev := 0.0
	for _, tokens := range []int{1, 8, 32, 128, 512} {
		got := dev.AchievedTFLOPS(Qwen7B, ForwardOpts{Tokens: tokens, KVTokens: 1024, CUDAGraph: true})
		if got < prev {
			t.Fatalf("achieved TFLOPS not monotone at %d tokens: %v < %v", tokens, got, prev)
		}
		prev = got
	}
	if prev > H100.PeakTFLOPS {
		t.Fatalf("achieved TFLOPS %v exceeds peak %v", prev, H100.PeakTFLOPS)
	}
}

func TestDecodeLatencyFollowsBandwidth(t *testing.T) {
	// At batch size 1 decode is memory bound everywhere, so step time
	// ordering must follow HBM bandwidth, fastest first.
	order := []Spec{B200, H100, A100, RTX5090, RTX4090, RTX3090}
	var prev time.Duration
	for i, s := range order {
		d := NewDevice(s, 1).Forward(Qwen7B, ForwardOpts{Tokens: 1, KVTokens: 1024, CUDAGraph: true}).Total()
		if i > 0 && d <= prev {
			t.Fatalf("%s decode %v should be slower than previous GPU's %v", s.Name, d, prev)
		}
		prev = d
	}
}

func TestRooflineCrossoverLowerOnWeakGPUs(t *testing.T) {
	// GPUs with a lower FLOPS:bandwidth ratio become compute bound at
	// smaller token counts, which is why large-batch SD saturates sooner
	// on consumer cards.
	crossover := func(s Spec) int {
		dev := NewDevice(s, 1)
		for tokens := 1; tokens <= 4096; tokens *= 2 {
			if dev.Forward(Qwen7B, ForwardOpts{Tokens: tokens, KVTokens: 1024, CUDAGraph: true}).Bound == "compute" {
				return tokens
			}
		}
		return 1 << 20
	}
	if crossover(RTX3090) >= crossover(H100) {
		t.Fatalf("RTX 3090 crossover %d should be below H100 crossover %d",
			crossover(RTX3090), crossover(H100))
	}
}

func TestTrainStepCostExceedsForward(t *testing.T) {
	dev := NewDevice(H100, 1)
	fwd := dev.Forward(Qwen7B, ForwardOpts{Tokens: 1024}).Total()
	train := dev.TrainStepCost(Qwen7B, 1024)
	if train <= fwd {
		t.Fatalf("training step %v should cost more than forward %v", train, fwd)
	}
}

func TestForwardZeroTokens(t *testing.T) {
	dev := NewDevice(H100, 1)
	if c := dev.Forward(Qwen7B, ForwardOpts{Tokens: 0}); c.Total() != 0 {
		t.Fatalf("zero-token pass should be free, got %v", c.Total())
	}
}

func TestStepCostTotal(t *testing.T) {
	c := StepCost{Compute: 3 * time.Millisecond, Memory: 5 * time.Millisecond, Launch: time.Millisecond}
	if c.Total() != 6*time.Millisecond {
		t.Fatalf("Total = %v, want 6ms", c.Total())
	}
}
