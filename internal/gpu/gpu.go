// Package gpu models GPU hardware and the roofline cost of LLM kernels.
//
// The simulator has no real accelerator, so every latency in the system is
// derived from a roofline model: a kernel's execution time is the maximum
// of its compute time (FLOPs / peak FLOPS) and its memory time (bytes
// moved / HBM bandwidth), plus a per-kernel launch overhead that CUDAGraph
// replay removes. This reproduces the mechanism behind the paper's
// speedups — autoregressive decode is memory-bound at small batch sizes,
// so verifying k drafted tokens in one pass costs roughly one decode step.
package gpu

import (
	"fmt"
	"time"
)

// Spec describes one GPU's relevant capabilities.
type Spec struct {
	Name string
	// PeakTFLOPS is the dense BF16 tensor throughput in TFLOPS.
	PeakTFLOPS float64
	// MemBWGBs is HBM/GDDR bandwidth in GB/s.
	MemBWGBs float64
	// MemGB is device memory capacity in GB.
	MemGB float64
	// LaunchOverhead is the fixed CPU-side cost of launching one kernel.
	LaunchOverhead time.Duration
}

// Catalogue of GPUs used in the paper's evaluation (Tables 2, 3; Fig. 11).
// Numbers are public datasheet values; only their ratios matter to the
// experiment shapes.
var (
	B200    = Spec{Name: "B200", PeakTFLOPS: 2250, MemBWGBs: 8000, MemGB: 192, LaunchOverhead: 4 * time.Microsecond}
	H100    = Spec{Name: "H100", PeakTFLOPS: 989, MemBWGBs: 3350, MemGB: 80, LaunchOverhead: 4 * time.Microsecond}
	A100    = Spec{Name: "A100", PeakTFLOPS: 312, MemBWGBs: 2039, MemGB: 80, LaunchOverhead: 4 * time.Microsecond}
	RTX5090 = Spec{Name: "RTX 5090", PeakTFLOPS: 210, MemBWGBs: 1792, MemGB: 32, LaunchOverhead: 5 * time.Microsecond}
	RTX4090 = Spec{Name: "RTX 4090", PeakTFLOPS: 165, MemBWGBs: 1008, MemGB: 24, LaunchOverhead: 5 * time.Microsecond}
	RTX3090 = Spec{Name: "RTX 3090", PeakTFLOPS: 71, MemBWGBs: 936, MemGB: 24, LaunchOverhead: 6 * time.Microsecond}
)

// Catalogue lists all modelled GPUs in descending capability order.
func Catalogue() []Spec {
	return []Spec{B200, H100, A100, RTX5090, RTX4090, RTX3090}
}

// ByName returns the spec for a catalogue GPU.
func ByName(name string) (Spec, error) {
	for _, s := range Catalogue() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("gpu: unknown GPU %q", name)
}

// Arch describes a transformer architecture for cost purposes. The token
// semantics of the simulated model live in internal/model; Arch only
// drives FLOP/byte accounting.
type Arch struct {
	Name       string
	Layers     int
	HiddenDim  int
	VocabSize  int
	ParamCount float64 // total parameters
	BytesPer   float64 // bytes per parameter (2 for BF16)
}

// NewArch derives a dense-transformer architecture descriptor. Parameter
// count is approximated as 12*L*H^2 (attention + MLP) plus embedding and
// head, the standard estimate for decoder-only models.
func NewArch(name string, layers, hidden, vocab int) Arch {
	params := 12*float64(layers)*float64(hidden)*float64(hidden) +
		2*float64(vocab)*float64(hidden)
	return Arch{
		Name:       name,
		Layers:     layers,
		HiddenDim:  hidden,
		VocabSize:  vocab,
		ParamCount: params,
		BytesPer:   2,
	}
}

// Model architectures referenced in the evaluation. Vocabulary sizes follow
// the public configs; they only affect the LM-head term of the cost model.
var (
	Qwen7B     = NewArch("Qwen2.5-7B", 28, 3584, 152064)
	DeepSeek7B = NewArch("DeepSeek-R1-Distill-Qwen-7B", 28, 3584, 152064)
	Qwen32B    = NewArch("Qwen2.5-32B", 64, 5120, 152064)
	Llama70B   = NewArch("Llama-3.3-70B-Instruct", 80, 8192, 128256)
	Llama8B    = NewArch("Llama-3-8B", 32, 4096, 128256)
	Qwen05B    = NewArch("Qwen2.5-0.5B", 24, 896, 151936)
)

// DraftArch returns the single-layer Eagle-style drafter architecture for a
// target: one decoder block with the target's hidden dimension, reusing the
// target's (frozen) embedding and LM head. Parameter count excludes the
// embedding table: embedding lookups gather rows rather than streaming the
// table, so only the decoder layer and the LM head contribute to the
// per-pass roofline cost.
func DraftArch(target Arch) Arch {
	h := float64(target.HiddenDim)
	a := Arch{
		Name:       target.Name + "-drafter",
		Layers:     1,
		HiddenDim:  target.HiddenDim,
		VocabSize:  target.VocabSize,
		ParamCount: 12*h*h + float64(target.VocabSize)*h,
		BytesPer:   2,
	}
	return a
}

// WeightBytes returns resident weight bytes for the architecture.
func (a Arch) WeightBytes() float64 { return a.ParamCount * a.BytesPer }

// DecodeFLOPs returns FLOPs for one forward pass over n tokens (batch
// positions in a decode step, or sequence positions in prefill). The usual
// 2*params multiply-accumulate estimate.
func (a Arch) DecodeFLOPs(nTokens int) float64 {
	return 2 * a.ParamCount * float64(nTokens)
}

// KVBytesPerToken returns KV-cache bytes appended per generated token.
func (a Arch) KVBytesPerToken() float64 {
	// 2 (K and V) * layers * hidden * bytes.
	return 2 * float64(a.Layers) * float64(a.HiddenDim) * a.BytesPer
}

// Device is a GPU (or TP group of GPUs acting as one device) executing
// kernels under the roofline model.
type Device struct {
	Spec Spec
	// TP is the tensor-parallel degree: weights and bandwidth are sharded
	// across TP GPUs, with a small per-layer communication penalty.
	TP int
}

// NewDevice creates a device with the given tensor-parallel degree
// (minimum 1).
func NewDevice(spec Spec, tp int) *Device {
	if tp < 1 {
		tp = 1
	}
	return &Device{Spec: spec, TP: tp}
}

// tpCommPenalty is the fractional latency overhead added per doubling of
// tensor-parallel degree (all-reduce cost at decode batch sizes).
const tpCommPenalty = 0.06

func (d *Device) tpFactor() float64 {
	f := 1.0
	for n := d.TP; n > 1; n /= 2 {
		f += tpCommPenalty
	}
	return f
}

// StepCost is a breakdown of one kernel-sequence execution.
type StepCost struct {
	Compute time.Duration
	Memory  time.Duration
	Launch  time.Duration
	// Bound reports which roofline regime dominated: "compute" or "memory".
	Bound string
}

// Total returns the modelled wall time of the step.
func (c StepCost) Total() time.Duration {
	t := c.Compute
	if c.Memory > t {
		t = c.Memory
	}
	return t + c.Launch
}

// ForwardOpts parameterises a forward-pass cost query.
type ForwardOpts struct {
	// Tokens is the total number of token positions processed in the pass
	// (batchSize for vanilla decode; batchSize*tokensToVerify for a
	// speculative verification pass; prompt length for prefill).
	Tokens int
	// KVTokens is the total resident KV-cache length across the batch, used
	// for attention memory traffic.
	KVTokens int
	// CUDAGraph indicates launch overheads are amortised by graph replay.
	CUDAGraph bool
	// KernelsPerLayer overrides the default kernel count per decoder layer
	// when not using CUDAGraph (attention, MLP, norms, rotary...).
	KernelsPerLayer int
}

const defaultKernelsPerLayer = 12

// Forward returns the roofline cost of one forward pass of arch a on the
// device.
//
// Memory traffic: every pass must stream the full weight set once
// (decode-style execution; weights dominate at small token counts) plus
// the KV cache it attends over and the activations it writes. Compute:
// 2*params*tokens FLOPs. The max of the two plus launch overhead is the
// step time. This yields the classic roofline crossover: at small token
// counts the pass is memory-bound, so extra tokens are nearly free — the
// property speculative decoding exploits.
func (d *Device) Forward(a Arch, o ForwardOpts) StepCost {
	if o.Tokens <= 0 {
		return StepCost{}
	}
	flops := a.DecodeFLOPs(o.Tokens)
	computeSec := flops / (d.Spec.PeakTFLOPS * 1e12 * float64(d.TP))
	// Weight streaming is sharded across TP devices; each device streams
	// its shard in parallel.
	weightBytes := a.WeightBytes() / float64(d.TP)
	kvBytes := a.KVBytesPerToken() * float64(o.KVTokens) / float64(d.TP)
	actBytes := float64(o.Tokens) * float64(a.HiddenDim) * a.BytesPer * float64(a.Layers)
	memSec := (weightBytes + kvBytes + actBytes) / (d.Spec.MemBWGBs * 1e9)

	kpl := o.KernelsPerLayer
	if kpl <= 0 {
		kpl = defaultKernelsPerLayer
	}
	var launch time.Duration
	if o.CUDAGraph {
		// Graph replay: one launch for the whole graph.
		launch = d.Spec.LaunchOverhead
	} else {
		launch = time.Duration(a.Layers*kpl+2) * d.Spec.LaunchOverhead
	}

	compute := secToDur(computeSec * d.tpFactor())
	memory := secToDur(memSec * d.tpFactor())
	bound := "memory"
	if compute > memory {
		bound = "compute"
	}
	return StepCost{Compute: compute, Memory: memory, Launch: launch, Bound: bound}
}

// TrainStepCost returns the cost of one optimiser step over nTokens tokens:
// forward + backward ≈ 3× forward FLOPs, plus optimiser state traffic
// (Adam: ~4 extra weight-sized streams in mixed precision).
func (d *Device) TrainStepCost(a Arch, nTokens int) time.Duration {
	fwd := d.Forward(a, ForwardOpts{Tokens: nTokens})
	computeSec := 3 * a.DecodeFLOPs(nTokens) / (d.Spec.PeakTFLOPS * 1e12 * float64(d.TP))
	memSec := 5 * a.WeightBytes() / float64(d.TP) / (d.Spec.MemBWGBs * 1e9)
	c := secToDur(computeSec * d.tpFactor())
	m := secToDur(memSec * d.tpFactor())
	t := c
	if m > t {
		t = m
	}
	return t + fwd.Launch*2
}

// AchievedTFLOPS returns the effective tensor throughput of a forward pass,
// the quantity plotted in the paper's roofline figure (Fig. 5(c)).
func (d *Device) AchievedTFLOPS(a Arch, o ForwardOpts) float64 {
	cost := d.Forward(a, o)
	total := cost.Total().Seconds()
	if total <= 0 {
		return 0
	}
	return a.DecodeFLOPs(o.Tokens) / total / 1e12
}

func secToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
