// Package reward implements the rule-based reward policy of the GRPO
// pipeline: responses are scored by exact answer verification (plus a
// small format term), with no learned value model — as in DeepSeek-R1
// style reasoning RL.
package reward

import (
	"fastrl/internal/tokenizer"
	"fastrl/internal/workload"
)

// Weights for the rule components.
const (
	// CorrectReward is granted when the final answer matches ground truth.
	CorrectReward = 1.0
	// FormatReward is granted when the response is well-formed (an answer
	// marker followed by a digit), independent of correctness.
	FormatReward = 0.1
)

// Verifier scores responses against tasks.
type Verifier struct {
	tk *tokenizer.Tokenizer
}

// NewVerifier builds a verifier over the shared vocabulary.
func NewVerifier(tk *tokenizer.Tokenizer) *Verifier {
	return &Verifier{tk: tk}
}

// ExtractAnswer returns the digit following the last answer marker, or
// (-1, false) when the response is malformed.
func (v *Verifier) ExtractAnswer(response []int) (int, bool) {
	ans := v.tk.Answer()
	for i := len(response) - 1; i >= 0; i-- {
		if response[i] != ans {
			continue
		}
		if i+1 < len(response) {
			if d, ok := v.tk.IsDigit(response[i+1]); ok {
				return d, true
			}
		}
		return -1, false
	}
	return -1, false
}

// Score computes the rule-based reward of a response for a task.
func (v *Verifier) Score(task workload.Task, response []int) float64 {
	d, ok := v.ExtractAnswer(response)
	if !ok {
		return 0
	}
	r := FormatReward
	if d == task.Answer {
		r += CorrectReward
	}
	return r
}

// Accuracy returns the fraction of responses answering their task
// correctly (ignoring format-only scores).
func (v *Verifier) Accuracy(tasks []workload.Task, responses [][]int) float64 {
	if len(tasks) == 0 || len(tasks) != len(responses) {
		return 0
	}
	correct := 0
	for i, task := range tasks {
		if d, ok := v.ExtractAnswer(responses[i]); ok && d == task.Answer {
			correct++
		}
	}
	return float64(correct) / float64(len(tasks))
}
