package reward

import (
	"testing"

	"fastrl/internal/tokenizer"
	"fastrl/internal/workload"
)

func TestExtractAnswer(t *testing.T) {
	tk := tokenizer.New()
	v := NewVerifier(tk)
	cases := []struct {
		name string
		resp []int
		want int
		ok   bool
	}{
		{"simple", []int{tk.Answer(), tk.Digit(7), tk.Eos()}, 7, true},
		{"with reasoning", []int{tk.MustID("so"), tk.Digit(3), tk.Answer(), tk.Digit(4), tk.Eos()}, 4, true},
		{"last marker wins", []int{tk.Answer(), tk.Digit(1), tk.Answer(), tk.Digit(2), tk.Eos()}, 2, true},
		{"marker then junk", []int{tk.Answer(), tk.MustID("so")}, -1, false},
		{"marker at end", []int{tk.MustID("so"), tk.Answer()}, -1, false},
		{"no marker", []int{tk.Digit(5), tk.Eos()}, -1, false},
		{"empty", nil, -1, false},
	}
	for _, c := range cases {
		got, ok := v.ExtractAnswer(c.resp)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("%s: ExtractAnswer = %d,%v want %d,%v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestScore(t *testing.T) {
	tk := tokenizer.New()
	v := NewVerifier(tk)
	task := workload.Task{Answer: 7}

	correct := []int{tk.Answer(), tk.Digit(7), tk.Eos()}
	if got := v.Score(task, correct); got != CorrectReward+FormatReward {
		t.Fatalf("correct response score %v", got)
	}
	wrong := []int{tk.Answer(), tk.Digit(3), tk.Eos()}
	if got := v.Score(task, wrong); got != FormatReward {
		t.Fatalf("wrong-answer score %v", got)
	}
	malformed := []int{tk.Digit(7)}
	if got := v.Score(task, malformed); got != 0 {
		t.Fatalf("malformed score %v", got)
	}
}

func TestAccuracy(t *testing.T) {
	tk := tokenizer.New()
	v := NewVerifier(tk)
	tasks := []workload.Task{{Answer: 1}, {Answer: 2}, {Answer: 3}}
	responses := [][]int{
		{tk.Answer(), tk.Digit(1)},
		{tk.Answer(), tk.Digit(9)},
		{tk.Answer(), tk.Digit(3)},
	}
	if got := v.Accuracy(tasks, responses); got < 0.66 || got > 0.67 {
		t.Fatalf("accuracy %v, want 2/3", got)
	}
	if v.Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	if v.Accuracy(tasks, responses[:2]) != 0 {
		t.Fatal("mismatched lengths should be 0")
	}
}
