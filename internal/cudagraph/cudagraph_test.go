package cudagraph

import (
	"testing"

	"fastrl/internal/gpu"
	"fastrl/internal/mab"
	"fastrl/internal/specdec"
)

func testArchs() (gpu.Arch, gpu.Arch) {
	return gpu.Llama8B, gpu.DraftArch(gpu.Llama8B)
}

func TestTable5MemoryOrdering(t *testing.T) {
	// Table 5: single < bucketed << naive multi, with bucketed only a
	// marginal increase over single and a multiple reduction vs naive.
	target, draftArch := testArchs()
	strategies := mab.DefaultStrategies()
	thresholds := []int{1, 3, 9, 17}

	single := SinglePlan(target, draftArch, 4, strategies[0], DefaultBuckets)
	naive := NaiveMultiPlan(target, draftArch, 4, strategies, DefaultBuckets)
	bucketed := BucketedPlan(target, draftArch, 4, strategies, thresholds, DefaultBuckets)
	t.Logf("single=%.2fGB bucketed=%.2fGB naive=%.2fGB",
		single.TotalMemBytes()/1e9, bucketed.TotalMemBytes()/1e9, naive.TotalMemBytes()/1e9)

	s, n, b := single.TotalMemBytes(), naive.TotalMemBytes(), bucketed.TotalMemBytes()
	if !(s < b && b < n) {
		t.Fatalf("memory ordering violated: single=%.2fGB bucketed=%.2fGB naive=%.2fGB",
			s/1e9, b/1e9, n/1e9)
	}
	if n/b < 2 {
		t.Fatalf("bucketed should reduce naive memory by >= 2x, got %.2fx (naive %.2fGB, bucketed %.2fGB)",
			n/b, n/1e9, b/1e9)
	}
	if b/s > 2 {
		t.Fatalf("bucketed should be a marginal increase over single, got %.2fx", b/s)
	}
	// Ballpark of the paper's absolute numbers (GB scale, not MB or TB).
	if s < 1e9 || s > 40e9 {
		t.Fatalf("single-strategy footprint %.2fGB outside plausible range", s/1e9)
	}
}

func TestBucketedMergesSharedShapes(t *testing.T) {
	target, draftArch := testArchs()
	// Two strategies sharing TopK must share draft graphs.
	strategies := []specdec.Params{
		{DraftDepth: 10, TopK: 8, TokensToVerify: 48},
		{DraftDepth: 8, TopK: 8, TokensToVerify: 32},
	}
	plan := BucketedPlan(target, draftArch, 4, strategies, []int{1, 3}, DefaultBuckets)
	draftKeys := map[Key]int{}
	for _, g := range plan.Graphs {
		if g.Key.Kind == KindDraft {
			draftKeys[g.Key]++
		}
	}
	for k, c := range draftKeys {
		if c > 1 {
			t.Fatalf("draft graph %v captured %d times", k, c)
		}
	}
}

func TestBucketedRestrictsBatchRange(t *testing.T) {
	target, draftArch := testArchs()
	strategies := mab.DefaultStrategies()
	plan := BucketedPlan(target, draftArch, 1, strategies, []int{1, 3, 9, 17}, DefaultBuckets)
	pool := NewPool(plan)
	// The deepest group (verify=24) serves batches 1..2 (plus one padding
	// bucket); no batch-32 target graph with 24 tokens should exist.
	if _, ok := pool.Lookup(KindTarget, 32, 24); ok {
		t.Fatal("deep-tree graph captured for large batches")
	}
	// But the shallow group (verify=4) must cover batch 32.
	if _, ok := pool.Lookup(KindTarget, 32, 4); !ok {
		t.Fatal("shallow strategy missing large-batch graph")
	}
	// And the deep group must cover batch 1.
	if _, ok := pool.Lookup(KindTarget, 1, 24); !ok {
		t.Fatal("deep strategy missing batch-1 graph")
	}
}

func TestPoolLookupPicksSmallestCoveringBucket(t *testing.T) {
	target, draftArch := testArchs()
	plan := SinglePlan(target, draftArch, 1, specdec.Params{DraftDepth: 4, TopK: 4, TokensToVerify: 8}, DefaultBuckets)
	pool := NewPool(plan)
	k, ok := pool.Lookup(KindTarget, 5, 8)
	if !ok {
		t.Fatal("lookup miss for covered batch size")
	}
	if k.Bucket != 8 {
		t.Fatalf("lookup picked bucket %d for batch 5, want 8", k.Bucket)
	}
	if _, ok := pool.Lookup(KindTarget, 64, 8); ok {
		t.Fatal("lookup should miss beyond the largest captured bucket")
	}
	if _, ok := pool.Lookup(KindTarget, 4, 99); ok {
		t.Fatal("lookup should miss for uncaptured token shape")
	}
}

func TestNaiveGrowsLinearly(t *testing.T) {
	target, draftArch := testArchs()
	strategies := mab.DefaultStrategies()
	two := NaiveMultiPlan(target, draftArch, 1, strategies[:2], DefaultBuckets)
	four := NaiveMultiPlan(target, draftArch, 1, strategies, DefaultBuckets)
	ratio := four.TotalMemBytes() / two.TotalMemBytes()
	if ratio < 1.5 {
		t.Fatalf("naive multi-strategy memory should grow near-linearly, got %.2fx for 2x strategies", ratio)
	}
}

func TestCaptureCost(t *testing.T) {
	target, draftArch := testArchs()
	plan := SinglePlan(target, draftArch, 1, specdec.Params{DraftDepth: 4, TopK: 4, TokensToVerify: 8}, DefaultBuckets)
	if plan.CaptureCost() <= 0 {
		t.Fatal("capture cost must be positive")
	}
	if got := NewPool(plan).Size(); got != len(plan.Graphs) {
		t.Fatalf("pool size %d != plan graphs %d", got, len(plan.Graphs))
	}
}

func TestTPShardsGraphMemory(t *testing.T) {
	target, draftArch := testArchs()
	s := specdec.Params{DraftDepth: 4, TopK: 4, TokensToVerify: 8}
	tp1 := SinglePlan(target, draftArch, 1, s, DefaultBuckets).TotalMemBytes()
	tp4 := SinglePlan(target, draftArch, 4, s, DefaultBuckets).TotalMemBytes()
	if tp4 >= tp1 {
		t.Fatalf("TP=4 per-GPU graph memory %.2fGB should be below TP=1 %.2fGB", tp4/1e9, tp1/1e9)
	}
}
