// Package cudagraph models the memory-efficient CUDAGraph pool of the
// Adaptive Rollout Engine (paper §5.1, Fig. 10, Table 5).
//
// CUDAGraph replay removes per-kernel launch overhead but requires one
// captured graph per (model, batch size, strategy shape). The pool
// implements the paper's three capture plans:
//
//   - Single: graphs for one static strategy (cheap, inflexible);
//   - NaiveMulti: graphs for every strategy × batch bucket for both
//     target and draft models (flexible, memory grows linearly in the
//     number of strategies);
//   - Bucketed: the paper's design — batch-size buckets matched to
//     strategy-specific shapes, disaggregated target/draft captures, and
//     merged captures for identical shapes.
package cudagraph

import (
	"fmt"
	"sort"
	"time"

	"fastrl/internal/gpu"
	"fastrl/internal/specdec"
)

// Kind distinguishes target-model and draft-model graphs.
type Kind int

const (
	// KindTarget marks a verification (target model) graph.
	KindTarget Kind = iota
	// KindDraft marks a drafting (draft model) graph.
	KindDraft
)

func (k Kind) String() string {
	if k == KindTarget {
		return "target"
	}
	return "draft"
}

// Key identifies one captured graph: the model it runs, the batch-size
// bucket it was captured for, and the per-sequence token shape (tokens to
// verify for the target; drafting top-K width for the draft model).
type Key struct {
	Kind   Kind
	Bucket int // captured (maximum) batch size
	Tokens int // tokens per sequence in the pass
}

func (k Key) String() string {
	return fmt.Sprintf("%s{bs=%d,tok=%d}", k.Kind, k.Bucket, k.Tokens)
}

// Graph is one captured CUDAGraph with its memory footprint.
type Graph struct {
	Key      Key
	MemBytes float64
}

// workspaceOverhead scales activation workspace to account for attention
// intermediates, MLP expansion and captured buffer padding; calibrated so
// a Llama-8B (TP=4) single-strategy pool lands near the paper's 7.81 GB.
const workspaceOverhead = 26.0

// padTokens is the token-dimension padding of captured workspaces: graphs
// allocate buffers for the maximum pass width regardless of the
// strategy's nominal token count, which is why multi-strategy capture
// grows linearly in the number of strategies (paper Table 5), not with
// token shapes.
const padTokens = 64

// graphMetaBytes is the fixed per-graph bookkeeping cost.
const graphMetaBytes = 24 << 20

// captureTime is the wall cost of capturing one graph (engine start-up).
const captureTime = 150 * time.Millisecond

// graphMemBytes models the workspace a captured graph pins: padded
// activations for batch×padTokens positions through every layer, plus
// metadata.
func graphMemBytes(arch gpu.Arch, bucket, tokens, tp int) float64 {
	if tp < 1 {
		tp = 1
	}
	act := float64(bucket) * float64(padTokens) * float64(arch.HiddenDim) *
		float64(arch.Layers) * arch.BytesPer * workspaceOverhead / float64(tp)
	return act + graphMetaBytes
}

// DefaultBuckets are the captured batch-size buckets (powers of two up to
// the elastic SD threshold's usual range).
var DefaultBuckets = []int{1, 2, 4, 8, 16, 32}

// Plan is a set of graphs to capture.
type Plan struct {
	Name   string
	Graphs []Graph
}

// TotalMemBytes sums the plan's memory footprint.
func (p Plan) TotalMemBytes() float64 {
	var s float64
	for _, g := range p.Graphs {
		s += g.MemBytes
	}
	return s
}

// CaptureCost returns the virtual time needed to capture the whole plan.
func (p Plan) CaptureCost() time.Duration {
	return time.Duration(len(p.Graphs)) * captureTime
}

// SinglePlan captures one strategy across all batch buckets: the baseline
// in Fig. 10(a).
func SinglePlan(target, draftArch gpu.Arch, tp int, s specdec.Params, buckets []int) Plan {
	var graphs []Graph
	for _, b := range buckets {
		graphs = append(graphs,
			Graph{Key: Key{KindTarget, b, s.TokensToVerify}, MemBytes: graphMemBytes(target, b, s.TokensToVerify, tp)},
			Graph{Key: Key{KindDraft, b, s.TopK}, MemBytes: graphMemBytes(draftArch, b, s.TopK, tp)},
		)
	}
	return Plan{Name: "single", Graphs: graphs}
}

// NaiveMultiPlan captures every strategy × bucket for both models without
// sharing: Fig. 10(b). Memory grows linearly with the strategy count.
func NaiveMultiPlan(target, draftArch gpu.Arch, tp int, strategies []specdec.Params, buckets []int) Plan {
	var graphs []Graph
	for _, s := range strategies {
		for _, b := range buckets {
			graphs = append(graphs,
				Graph{Key: Key{KindTarget, b, s.TokensToVerify}, MemBytes: graphMemBytes(target, b, s.TokensToVerify, tp)},
				Graph{Key: Key{KindDraft, b, s.TopK}, MemBytes: graphMemBytes(draftArch, b, s.TopK, tp)},
			)
		}
	}
	return Plan{Name: "naive-multi", Graphs: graphs}
}

// BucketedPlan implements the paper's Bucketed CUDAGraph Capture
// (Fig. 10(c)):
//
//  1. Bucketed batch sizes: each strategy is captured only for the batch
//     bucket range it is meant to serve (strategies verifying more tokens
//     serve smaller batches), instead of every bucket.
//  2. Disaggregated capture: target graphs are keyed only by
//     TokensToVerify and draft graphs only by TopK, so configurations
//     affecting one model do not multiply the other's captures.
//  3. Merged captures: strategies sharing a shape share one graph.
//
// strategies must be ordered by descending TokensToVerify; thresholds[i]
// is the smallest batch size of strategy i's bucket (ascending), as in
// the BEG-MAB selector.
func BucketedPlan(target, draftArch gpu.Arch, tp int, strategies []specdec.Params, thresholds []int, buckets []int) Plan {
	// Group strategies by TokensToVerify (descending), exactly as the
	// BEG-MAB selector does: group i serves batch bucket i.
	byVerify := make(map[int][]specdec.Params)
	var verifies []int
	for _, s := range strategies {
		if _, ok := byVerify[s.TokensToVerify]; !ok {
			verifies = append(verifies, s.TokensToVerify)
		}
		byVerify[s.TokensToVerify] = append(byVerify[s.TokensToVerify], s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(verifies)))

	seen := make(map[Key]bool)
	var graphs []Graph
	add := func(k Key, arch gpu.Arch) {
		if seen[k] {
			return
		}
		seen[k] = true
		graphs = append(graphs, Graph{Key: k, MemBytes: graphMemBytes(arch, k.Bucket, k.Tokens, tp)})
	}
	for i, v := range verifies {
		lo := 1
		if i < len(thresholds) {
			lo = thresholds[i]
		}
		hi := 1 << 30
		if i+1 < len(thresholds) {
			// Pad the range by one bucket past the nominal ceiling so
			// boundary batch sizes (requests completing mid-bucket) stay
			// covered — the safety margin that makes the bucketed pool a
			// modest increase over a single static strategy.
			hi = nextBucket(thresholds[i+1]-1, buckets)
		}
		for _, b := range buckets {
			if b < lo || b > hi {
				continue
			}
			add(Key{KindTarget, b, v}, target)
			for _, s := range byVerify[v] {
				add(Key{KindDraft, b, s.TopK}, draftArch)
			}
		}
	}
	return Plan{Name: "bucketed", Graphs: graphs}
}

// nextBucket returns the smallest bucket strictly greater than the bucket
// covering hi, or the covering bucket when it is the largest.
func nextBucket(hi int, buckets []int) int {
	for i, b := range buckets {
		if b >= hi {
			if i+1 < len(buckets) {
				return buckets[i+1]
			}
			return b
		}
	}
	if len(buckets) > 0 {
		return buckets[len(buckets)-1]
	}
	return hi
}

// Pool is the runtime graph pool: captured graphs plus lookup.
type Pool struct {
	graphs map[Key]*Graph
	plan   Plan
}

// NewPool captures a plan (virtually) and returns the pool.
func NewPool(plan Plan) *Pool {
	p := &Pool{graphs: make(map[Key]*Graph, len(plan.Graphs)), plan: plan}
	for i := range plan.Graphs {
		g := plan.Graphs[i]
		p.graphs[g.Key] = &g
	}
	return p
}

// Plan returns the captured plan.
func (p *Pool) Plan() Plan { return p.plan }

// Lookup reports whether a captured graph covers the given execution:
// the smallest captured bucket >= batchSize with the exact token shape.
// A hit means the pass replays as a single graph launch; a miss falls
// back to eager kernel launches.
func (p *Pool) Lookup(kind Kind, batchSize, tokens int) (Key, bool) {
	best := Key{}
	found := false
	for k := range p.graphs {
		if k.Kind != kind || k.Tokens != tokens || k.Bucket < batchSize {
			continue
		}
		if !found || k.Bucket < best.Bucket {
			best = k
			found = true
		}
	}
	return best, found
}

// MemBytes returns the pool's total pinned memory.
func (p *Pool) MemBytes() float64 { return p.plan.TotalMemBytes() }

// Size returns the number of captured graphs.
func (p *Pool) Size() int { return len(p.graphs) }
