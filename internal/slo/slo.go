// Package slo implements a declarative SLO layer over the simulator's
// virtual time: specs ("TTFT p95 under 300ms", "99% of requests
// succeed") are evaluated continuously with the multi-window error-budget
// burn-rate method from SRE practice. An SLO's error budget is the
// tolerated bad fraction (1 - objective); the burn rate is how fast
// observations are consuming that budget (burn 1.0 = exactly on budget).
// A breach requires BOTH a fast window and a slow window burning above
// their thresholds: the fast window makes detection prompt, the slow
// window keeps one transient spike from paging.
//
// Everything is computed in virtual time against a fixed-shape slot ring
// (lazily epoch-cleared, so Observe allocates nothing), which keeps
// fixed-seed runs byte-identical: the burn-rate series is a pure function
// of the observation stream. Breaches emit trace.KindSLOBreach markers
// into the shard's flight recorder — on the rising edge and once per
// ring slot while the breach persists — so postmortem rings captured
// around a fault hold the SLO story alongside the fault markers.
package slo

import (
	"fmt"
	"sync"
	"time"

	"fastrl/internal/trace"
)

// Kind is the observation stream a spec evaluates.
type Kind int

const (
	// TTFT evaluates time-to-first-token latencies.
	TTFT Kind = iota
	// ITL evaluates inter-token latencies.
	ITL
	// Availability evaluates request outcomes (served vs failed).
	Availability
)

func (k Kind) String() string {
	switch k {
	case TTFT:
		return "ttft"
	case ITL:
		return "itl"
	case Availability:
		return "availability"
	}
	return "unknown"
}

// Spec is one declarative SLO.
type Spec struct {
	// Name labels the spec in stats and markers.
	Name string
	// Kind selects the observation stream.
	Kind Kind
	// Threshold is the latency bound for TTFT/ITL specs: an observation
	// at or under it is good. Ignored for Availability.
	Threshold time.Duration
	// Objective is the target good fraction (0.95 = "95% of observations
	// good"); the error budget is 1 - Objective.
	Objective float64
	// FastWindow and SlowWindow are the two burn-rate windows in virtual
	// time. SlowWindow defaults to 10x FastWindow; FastWindow defaults to
	// one virtual second.
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurn and SlowBurn are the breach thresholds (defaults 4 and 1):
	// both windows must burn at or above them simultaneously.
	FastBurn float64
	SlowBurn float64
}

const slotsPerFast = 10

func (s Spec) withDefaults() (Spec, error) {
	if s.Objective <= 0 || s.Objective >= 1 {
		return s, fmt.Errorf("slo: spec %q objective %v outside (0,1)", s.Name, s.Objective)
	}
	if s.FastWindow <= 0 {
		s.FastWindow = time.Second
	}
	if s.SlowWindow <= 0 {
		s.SlowWindow = 10 * s.FastWindow
	}
	if s.SlowWindow < s.FastWindow {
		return s, fmt.Errorf("slo: spec %q slow window %v shorter than fast %v", s.Name, s.SlowWindow, s.FastWindow)
	}
	if s.FastBurn <= 0 {
		s.FastBurn = 4
	}
	if s.SlowBurn <= 0 {
		s.SlowBurn = 1
	}
	if (s.Kind == TTFT || s.Kind == ITL) && s.Threshold <= 0 {
		return s, fmt.Errorf("slo: spec %q needs a positive latency threshold", s.Name)
	}
	return s, nil
}

// slot is one time slice of good/bad counts. epoch stamps which slice the
// counts belong to, so stale slots are cleared lazily on first touch
// instead of by a sweeper goroutine.
type slot struct {
	epoch     int64
	good, bad int64
}

// tracker evaluates one spec over its slot ring.
type tracker struct {
	spec      Spec
	slotW     time.Duration
	ring      []slot
	fastSlots int
	slowSlots int
	breached  bool
	lastMark  int64 // epoch of the newest emitted marker
}

func newTracker(s Spec) *tracker {
	slotW := s.FastWindow / slotsPerFast
	if slotW <= 0 {
		slotW = 1
	}
	slow := int((s.SlowWindow + slotW - 1) / slotW)
	return &tracker{
		spec:      s,
		slotW:     slotW,
		ring:      make([]slot, slow+1),
		fastSlots: slotsPerFast,
		slowSlots: slow,
		lastMark:  -1,
	}
}

func (t *tracker) observe(good bool, now time.Duration) {
	e := int64(now / t.slotW)
	s := &t.ring[int(e)%len(t.ring)]
	if s.epoch != e {
		s.epoch, s.good, s.bad = e, 0, 0
	}
	if good {
		s.good++
	} else {
		s.bad++
	}
}

// burn returns the burn rate over the last n slots ending at now's slot.
func (t *tracker) burn(n int, now time.Duration) float64 {
	e := int64(now / t.slotW)
	var good, bad int64
	for i := 0; i < n; i++ {
		want := e - int64(i)
		if want < 0 {
			break
		}
		s := &t.ring[int(want)%len(t.ring)]
		if s.epoch == want {
			good += s.good
			bad += s.bad
		}
	}
	if good+bad == 0 {
		return 0
	}
	badFrac := float64(bad) / float64(good+bad)
	return badFrac / (1 - t.spec.Objective)
}

// Engine evaluates a set of specs against one shard's observation
// streams. All methods are nil-receiver-safe no-ops, so a serving layer
// without SLOs configured pays one pointer check ("free when off").
// Observe methods are mutex-guarded and allocation-free.
type Engine struct {
	mu       sync.Mutex
	specs    []*tracker
	shard    int32
	fr       *trace.FlightRecorder
	lastNow  time.Duration
	breaches int64
}

// NewEngine builds an engine for a shard. fr may be nil (no markers).
// Specs are validated and defaulted; an empty spec list yields a nil
// engine, which is valid and inert.
func NewEngine(specs []Spec, shard int, fr *trace.FlightRecorder) (*Engine, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	e := &Engine{shard: int32(shard), fr: fr}
	for _, s := range specs {
		s, err := s.withDefaults()
		if err != nil {
			return nil, err
		}
		e.specs = append(e.specs, newTracker(s))
	}
	return e, nil
}

// clampNow keeps engine time monotone: outcomes can be observed off the
// replica goroutine with a slightly stale clock reading.
func (e *Engine) clampNow(now time.Duration) time.Duration {
	if now < e.lastNow {
		return e.lastNow
	}
	e.lastNow = now
	return now
}

// ObserveLatency feeds one latency observation (TTFT or ITL) at virtual
// time now.
func (e *Engine) ObserveLatency(k Kind, v time.Duration, now time.Duration) {
	if e == nil {
		return
	}
	e.mu.Lock()
	now = e.clampNow(now)
	for _, t := range e.specs {
		if t.spec.Kind != k {
			continue
		}
		t.observe(v <= t.spec.Threshold, now)
	}
	e.evaluate(now)
	e.mu.Unlock()
}

// ObserveOutcome feeds one request outcome (served = true; failed or
// shed = false) at virtual time now.
func (e *Engine) ObserveOutcome(ok bool, now time.Duration) {
	if e == nil {
		return
	}
	e.mu.Lock()
	now = e.clampNow(now)
	for _, t := range e.specs {
		if t.spec.Kind != Availability {
			continue
		}
		t.observe(ok, now)
	}
	e.evaluate(now)
	e.mu.Unlock()
}

// evaluate re-checks every spec under e.mu, emitting breach markers on
// rising edges and once per slot while a breach persists (bounded: at
// most one marker per spec per slot width of virtual time).
func (e *Engine) evaluate(now time.Duration) {
	for i, t := range e.specs {
		fast := t.burn(t.fastSlots, now)
		slow := t.burn(t.slowSlots, now)
		if fast >= t.spec.FastBurn && slow >= t.spec.SlowBurn {
			epoch := int64(now / t.slotW)
			if !t.breached || epoch > t.lastMark {
				t.breached = true
				t.lastMark = epoch
				e.breaches++
				e.fr.Record(trace.Record{
					ReqID: -1,
					Shard: e.shard,
					Kind:  trace.KindSLOBreach,
					Start: now,
					End:   now,
					Arg:   int64(i),
				})
			}
		} else {
			t.breached = false
		}
	}
}

// SpecStatus is one spec's state at read time.
type SpecStatus struct {
	Spec     Spec
	FastBurn float64
	SlowBurn float64
	Breached bool
}

// Status returns every spec's burn rates as of the engine's latest
// observed virtual time. Nil-safe.
func (e *Engine) Status() []SpecStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SpecStatus, len(e.specs))
	for i, t := range e.specs {
		out[i] = SpecStatus{
			Spec:     t.spec,
			FastBurn: t.burn(t.fastSlots, e.lastNow),
			SlowBurn: t.burn(t.slowSlots, e.lastNow),
			Breached: t.breached,
		}
	}
	return out
}

// BurnRate returns the maximum fast-window burn across all specs — the
// control signal admission and routing consume. Nil-safe (0 when unset).
func (e *Engine) BurnRate() float64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var max float64
	for _, t := range e.specs {
		if b := t.burn(t.fastSlots, e.lastNow); b > max {
			max = b
		}
	}
	return max
}

// Breaches returns the total breach markers emitted. Nil-safe.
func (e *Engine) Breaches() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.breaches
}
