package slo

import (
	"sync"
	"testing"
	"time"

	"fastrl/internal/trace"
)

func ttftSpec() Spec {
	return Spec{
		Name: "ttft-p95", Kind: TTFT, Threshold: 100 * time.Millisecond,
		Objective: 0.95, FastWindow: time.Second,
	}
}

func mustEngine(t *testing.T, specs []Spec, fr *trace.FlightRecorder) *Engine {
	t.Helper()
	e, err := NewEngine(specs, 3, fr)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSpecDefaults pins defaulting and validation.
func TestSpecDefaults(t *testing.T) {
	s, err := Spec{Name: "a", Kind: Availability, Objective: 0.99}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if s.FastWindow != time.Second || s.SlowWindow != 10*time.Second || s.FastBurn != 4 || s.SlowBurn != 1 {
		t.Fatalf("defaults: %+v", s)
	}
	for _, bad := range []Spec{
		{Name: "o", Kind: TTFT, Threshold: time.Second, Objective: 0},
		{Name: "o2", Kind: TTFT, Threshold: time.Second, Objective: 1},
		{Name: "t", Kind: TTFT, Objective: 0.9},
		{Name: "w", Kind: Availability, Objective: 0.9, FastWindow: time.Second, SlowWindow: time.Millisecond},
	} {
		if _, err := bad.withDefaults(); err == nil {
			t.Fatalf("spec %+v validated", bad)
		}
	}
	// Empty spec list is a valid nil engine.
	e, err := NewEngine(nil, 0, nil)
	if err != nil || e != nil {
		t.Fatalf("empty specs: %v %v", e, err)
	}
}

// TestBurnRateRises pins the core burn computation: a stream breaching
// the threshold drives fast burn to 1/(1-objective); a healthy stream
// keeps it at 0.
func TestBurnRateRises(t *testing.T) {
	e := mustEngine(t, []Spec{ttftSpec()}, nil)
	now := 100 * time.Millisecond
	for i := 0; i < 50; i++ {
		e.ObserveLatency(TTFT, 10*time.Millisecond, now)
		now += 10 * time.Millisecond
	}
	if b := e.BurnRate(); b != 0 {
		t.Fatalf("healthy stream burn = %v", b)
	}
	for i := 0; i < 150; i++ {
		e.ObserveLatency(TTFT, 500*time.Millisecond, now)
		now += 10 * time.Millisecond
	}
	// 1.5s of bads have scrolled every good out of the 1s fast window:
	// burn = 1 / (1-0.95) = 20.
	if b := e.BurnRate(); b < 19 || b > 20.01 {
		t.Fatalf("all-bad fast burn = %v, want ~20", b)
	}
	st := e.Status()
	if len(st) != 1 || !st[0].Breached {
		t.Fatalf("status = %+v, want breached", st)
	}
}

// TestBreachNeedsBothWindows pins multi-window semantics: a burst shorter
// than the slow window's budget does not breach, a sustained burn does.
func TestBreachNeedsBothWindows(t *testing.T) {
	spec := ttftSpec()
	spec.SlowWindow = 10 * time.Second
	fr := trace.NewFlightRecorder(64)
	e := mustEngine(t, []Spec{spec}, fr)

	// 9s of healthy traffic at 100/s fills the slow window with goods.
	now := time.Duration(0)
	for i := 0; i < 900; i++ {
		e.ObserveLatency(TTFT, 10*time.Millisecond, now)
		now += 10 * time.Millisecond
	}
	// A 200ms spike of bads: fast burn spikes, slow burn stays under 1
	// (20 bads / ~1000 obs = 2% bad < 5% budget) — no breach.
	for i := 0; i < 20; i++ {
		e.ObserveLatency(TTFT, time.Second, now)
		now += 10 * time.Millisecond
	}
	if got := e.Breaches(); got != 0 {
		t.Fatalf("transient spike emitted %d breaches", got)
	}
	// Sustained badness pushes both windows over.
	for i := 0; i < 600; i++ {
		e.ObserveLatency(TTFT, time.Second, now)
		now += 10 * time.Millisecond
	}
	if got := e.Breaches(); got == 0 {
		t.Fatal("sustained burn never breached")
	}
	recs := fr.Snapshot()
	found := false
	for _, r := range recs {
		if r.Kind == trace.KindSLOBreach {
			if r.ReqID != -1 || r.Shard != 3 || r.Arg != 0 {
				t.Fatalf("marker fields: %+v", r)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no breach marker in flight recorder")
	}
}

// TestBreachMarkersBounded pins marker cadence: a persistent breach emits
// at most one marker per slot of virtual time, not one per observation.
func TestBreachMarkersBounded(t *testing.T) {
	spec := ttftSpec() // slot width = 100ms
	e := mustEngine(t, []Spec{spec}, nil)
	now := time.Duration(0)
	// 1000 bad observations packed into 500ms = 5 slots.
	for i := 0; i < 1000; i++ {
		e.ObserveLatency(TTFT, time.Second, now)
		now += 500 * time.Microsecond
	}
	if got := e.Breaches(); got > 6 {
		t.Fatalf("persistent breach emitted %d markers over 5 slots", got)
	}
	if got := e.Breaches(); got == 0 {
		t.Fatal("no breach at all")
	}
}

// TestAvailabilitySpec pins the outcome stream.
func TestAvailabilitySpec(t *testing.T) {
	e := mustEngine(t, []Spec{{
		Name: "avail", Kind: Availability, Objective: 0.9,
		FastWindow: time.Second, FastBurn: 2, SlowBurn: 1,
	}}, nil)
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		e.ObserveOutcome(i%2 == 0, now) // 50% failures, budget 10%
		now += 20 * time.Millisecond
	}
	if b := e.BurnRate(); b < 4.9 || b > 5.1 {
		t.Fatalf("availability burn = %v, want ~5", b)
	}
	// A latency observation must not touch an availability spec (now=0 is
	// clamped to the engine's monotone time, so the window cannot shift).
	before := e.BurnRate()
	e.ObserveLatency(TTFT, time.Hour, 0)
	if e.BurnRate() != before {
		t.Fatal("latency observation leaked into availability spec")
	}
}

// TestEngineDeterminism pins byte-identical behaviour: the same
// observation stream yields the same burn series and breach count.
func TestEngineDeterminism(t *testing.T) {
	run := func() (series []float64, breaches int64) {
		e := mustEngine(t, []Spec{ttftSpec()}, nil)
		now := time.Duration(0)
		for i := 0; i < 500; i++ {
			lat := 10 * time.Millisecond
			if i%7 == 0 || (i > 200 && i < 300) {
				lat = time.Second
			}
			e.ObserveLatency(TTFT, lat, now)
			now += 7 * time.Millisecond
			if i%50 == 0 {
				series = append(series, e.BurnRate())
			}
		}
		return series, e.Breaches()
	}
	s1, b1 := run()
	s2, b2 := run()
	if b1 != b2 || len(s1) != len(s2) {
		t.Fatalf("breaches %d vs %d", b1, b2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("burn series diverged at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
	if b1 == 0 {
		t.Fatal("workload never breached — test is vacuous")
	}
}

// TestEngineNilInert pins "free when off".
func TestEngineNilInert(t *testing.T) {
	var e *Engine
	e.ObserveLatency(TTFT, time.Second, 0)
	e.ObserveOutcome(false, 0)
	if e.BurnRate() != 0 || e.Status() != nil || e.Breaches() != 0 {
		t.Fatal("nil engine not inert")
	}
}

// TestEngineConcurrent exercises the mutex paths under the race detector:
// replicas observe latencies while a stats reader polls burn rates.
func TestEngineConcurrent(t *testing.T) {
	e := mustEngine(t, []Spec{ttftSpec(), {
		Name: "avail", Kind: Availability, Objective: 0.99, FastWindow: time.Second,
	}}, trace.NewFlightRecorder(64))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := time.Duration(g) * time.Millisecond
			for i := 0; i < 2000; i++ {
				if i%2 == 0 {
					e.ObserveLatency(TTFT, time.Duration(i%300)*time.Millisecond, now)
				} else {
					e.ObserveOutcome(i%13 != 0, now)
				}
				now += time.Millisecond
			}
		}(g)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				e.BurnRate()
				e.Status()
			}
		}
	}()
	wg.Wait()
	close(stop)
}
