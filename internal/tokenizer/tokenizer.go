// Package tokenizer provides the small deterministic vocabulary shared by
// the simulated target model, draft models, and workload generators.
//
// The vocabulary is word-level over a closed set of reasoning-flavoured
// symbols (digits, operators, connective words, control tokens). Real
// subword tokenisation is irrelevant to the systems questions the paper
// studies; what matters is that prompts and responses are genuine token
// sequences over a fixed vocabulary that both target and draft models
// score.
package tokenizer

import (
	"fmt"
	"strings"
)

// Reserved control tokens.
const (
	PadToken    = "<pad>"
	BosToken    = "<bos>"
	EosToken    = "<eos>"
	AnswerToken = "<answer>"
	WaitToken   = "wait"
)

// Tokenizer maps between token strings and ids. Immutable after New.
type Tokenizer struct {
	tokens []string
	ids    map[string]int
}

// New builds the standard vocabulary.
func New() *Tokenizer {
	var tokens []string
	add := func(ts ...string) { tokens = append(tokens, ts...) }

	// Control tokens first so their ids are stable and small.
	add(PadToken, BosToken, EosToken, AnswerToken)
	// Digits.
	for d := 0; d <= 9; d++ {
		add(fmt.Sprintf("%d", d))
	}
	// Arithmetic and punctuation.
	add("+", "-", "*", "/", "=", "(", ")", ",", ".", ":", "%")
	// Reasoning-flavoured words seen in chains of thought.
	add(WaitToken, "let", "me", "check", "again", "so", "we", "have",
		"the", "first", "second", "next", "then", "step", "is", "sum",
		"product", "carry", "digit", "equals", "compute", "count",
		"therefore", "because", "now", "recall", "verify", "correct",
		"mistake", "actually", "ok", "think", "term", "value", "result",
		"total", "and", "of", "to", "a", "in", "final", "thus", "left",
		"right", "side", "add", "subtract", "multiply", "divide", "mod",
		"remainder", "letter", "word", "yes", "no", "done")

	ids := make(map[string]int, len(tokens))
	for i, t := range tokens {
		if _, dup := ids[t]; dup {
			panic(fmt.Sprintf("tokenizer: duplicate token %q", t))
		}
		ids[t] = i
	}
	return &Tokenizer{tokens: tokens, ids: ids}
}

// VocabSize returns the number of tokens in the vocabulary.
func (t *Tokenizer) VocabSize() int { return len(t.tokens) }

// Pad, Bos, Eos and Answer return the ids of the control tokens.
func (t *Tokenizer) Pad() int    { return t.ids[PadToken] }
func (t *Tokenizer) Bos() int    { return t.ids[BosToken] }
func (t *Tokenizer) Eos() int    { return t.ids[EosToken] }
func (t *Tokenizer) Answer() int { return t.ids[AnswerToken] }

// Wait returns the id of the self-reflection marker token.
func (t *Tokenizer) Wait() int { return t.ids[WaitToken] }

// Digit returns the id for decimal digit d (0..9).
func (t *Tokenizer) Digit(d int) int {
	if d < 0 || d > 9 {
		panic(fmt.Sprintf("tokenizer: digit out of range: %d", d))
	}
	return t.ids[fmt.Sprintf("%d", d)]
}

// IsDigit reports whether id is a digit token, returning its value.
func (t *Tokenizer) IsDigit(id int) (int, bool) {
	if id < 0 || id >= len(t.tokens) {
		return 0, false
	}
	s := t.tokens[id]
	if len(s) == 1 && s[0] >= '0' && s[0] <= '9' {
		return int(s[0] - '0'), true
	}
	return 0, false
}

// ID returns the id for a token string.
func (t *Tokenizer) ID(tok string) (int, error) {
	id, ok := t.ids[tok]
	if !ok {
		return 0, fmt.Errorf("tokenizer: unknown token %q", tok)
	}
	return id, nil
}

// MustID is ID but panics on unknown tokens; for static program text.
func (t *Tokenizer) MustID(tok string) int {
	id, err := t.ID(tok)
	if err != nil {
		panic(err)
	}
	return id
}

// Token returns the string for an id.
func (t *Tokenizer) Token(id int) string {
	if id < 0 || id >= len(t.tokens) {
		return fmt.Sprintf("<invalid:%d>", id)
	}
	return t.tokens[id]
}

// Encode tokenises a whitespace-separated string.
func (t *Tokenizer) Encode(s string) ([]int, error) {
	fields := strings.Fields(s)
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		id, err := t.ID(f)
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}

// Decode renders ids as a whitespace-separated string.
func (t *Tokenizer) Decode(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = t.Token(id)
	}
	return strings.Join(parts, " ")
}

// EncodeNumber emits the digit tokens of a non-negative integer.
func (t *Tokenizer) EncodeNumber(n int) []int {
	if n < 0 {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	out := make([]int, len(s))
	for i := range s {
		out[i] = t.Digit(int(s[i] - '0'))
	}
	return out
}
