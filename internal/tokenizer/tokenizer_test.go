package tokenizer

import (
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	tk := New()
	for id := 0; id < tk.VocabSize(); id++ {
		tok := tk.Token(id)
		got, err := tk.ID(tok)
		if err != nil {
			t.Fatalf("ID(%q): %v", tok, err)
		}
		if got != id {
			t.Fatalf("round trip failed for %q: %d != %d", tok, got, id)
		}
	}
}

func TestControlTokens(t *testing.T) {
	tk := New()
	ids := map[string]int{
		PadToken:    tk.Pad(),
		BosToken:    tk.Bos(),
		EosToken:    tk.Eos(),
		AnswerToken: tk.Answer(),
		WaitToken:   tk.Wait(),
	}
	seen := map[int]string{}
	for tok, id := range ids {
		if prev, dup := seen[id]; dup {
			t.Fatalf("control tokens %q and %q share id %d", tok, prev, id)
		}
		seen[id] = tok
		if tk.Token(id) != tok {
			t.Fatalf("Token(%d) = %q, want %q", id, tk.Token(id), tok)
		}
	}
}

func TestDigits(t *testing.T) {
	tk := New()
	for d := 0; d <= 9; d++ {
		id := tk.Digit(d)
		v, ok := tk.IsDigit(id)
		if !ok || v != d {
			t.Fatalf("IsDigit(Digit(%d)) = %d,%v", d, v, ok)
		}
	}
	if _, ok := tk.IsDigit(tk.Eos()); ok {
		t.Fatal("EOS misclassified as digit")
	}
	if _, ok := tk.IsDigit(-1); ok {
		t.Fatal("negative id misclassified as digit")
	}
}

func TestEncodeDecode(t *testing.T) {
	tk := New()
	ids, err := tk.Encode("compute 3 + 4 = <answer> 7 <eos>")
	if err != nil {
		t.Fatal(err)
	}
	if got := tk.Decode(ids); got != "compute 3 + 4 = <answer> 7 <eos>" {
		t.Fatalf("Decode = %q", got)
	}
	if _, err := tk.Encode("nonexistenttoken"); err == nil {
		t.Fatal("expected error for unknown token")
	}
}

func TestEncodeNumber(t *testing.T) {
	tk := New()
	cases := map[int]string{0: "0", 7: "7", 42: "4 2", 905: "9 0 5", -31: "3 1"}
	for n, want := range cases {
		if got := tk.Decode(tk.EncodeNumber(n)); got != want {
			t.Fatalf("EncodeNumber(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestEncodeNumberProperty(t *testing.T) {
	tk := New()
	f := func(n uint16) bool {
		ids := tk.EncodeNumber(int(n))
		// Every id decodes to a digit, and the digit string equals the number.
		val := 0
		for _, id := range ids {
			d, ok := tk.IsDigit(id)
			if !ok {
				return false
			}
			val = val*10 + d
		}
		return val == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidTokenRendering(t *testing.T) {
	tk := New()
	if got := tk.Token(-5); got != "<invalid:-5>" {
		t.Fatalf("Token(-5) = %q", got)
	}
	if got := tk.Token(1 << 20); got == "" {
		t.Fatal("out-of-range id should render a placeholder")
	}
}

func TestDeterministicVocabulary(t *testing.T) {
	a, b := New(), New()
	if a.VocabSize() != b.VocabSize() {
		t.Fatal("vocab size differs across constructions")
	}
	for i := 0; i < a.VocabSize(); i++ {
		if a.Token(i) != b.Token(i) {
			t.Fatalf("token %d differs: %q vs %q", i, a.Token(i), b.Token(i))
		}
	}
}
