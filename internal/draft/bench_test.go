package draft

import (
	"math/rand"
	"testing"

	"fastrl/internal/gpu"
	"fastrl/internal/model"
)

func BenchmarkEagleProbs(b *testing.B) {
	lm, tk := newTarget(b)
	e := NewEagle(EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	ctx := []int{tk.Bos(), tk.Digit(3), tk.MustID("+"), tk.Digit(4), tk.MustID("=")}
	hidden := model.FusedHidden(lm, model.Context{Tokens: ctx, PromptLen: len(ctx)}, 2)
	dst := make([]float32, tk.VocabSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Probs(ctx, len(ctx), hidden, 0.9, dst)
	}
}

func BenchmarkEagleTrainBatch(b *testing.B) {
	lm, tk := newTarget(b)
	examples := sampleCorpus(b, lm, tk, 20, 40, 1)
	e := NewEagle(EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Train(examples, nil, rng)
	}
	b.ReportMetric(float64(len(examples)), "examples/op")
}

func BenchmarkHASSTrainBatch(b *testing.B) {
	lm, tk := newTarget(b)
	examples := sampleCorpus(b, lm, tk, 10, 40, 1)
	e := NewEagle(HASSConfig(tk.VocabSize(), gpu.Qwen7B))
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Train(examples, lm, rng)
	}
}

func BenchmarkNGramObserve(b *testing.B) {
	g := NewNGram(97, 1, 3)
	rng := rand.New(rand.NewSource(4))
	seq := make([]int, 256)
	for i := range seq {
		seq[i] = rng.Intn(97)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Observe(seq, 8)
	}
}

func BenchmarkNGramProbs(b *testing.B) {
	g := NewNGram(97, 1, 3)
	rng := rand.New(rand.NewSource(4))
	seq := make([]int, 256)
	for i := range seq {
		seq[i] = rng.Intn(97)
	}
	g.Observe(seq, 0)
	dst := make([]float32, 97)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Probs(seq[:64], 0, nil, 0.9, dst)
	}
}

func BenchmarkHarvestExamples(b *testing.B) {
	lm, tk := newTarget(b)
	rng := rand.New(rand.NewSource(5))
	prompt := []int{tk.Bos(), tk.Digit(2), tk.MustID("+"), tk.Digit(2), tk.MustID("=")}
	seq := model.Generate(lm, prompt, nil, 0.9, 64, tk.Eos(), rng)
	ctx := model.Context{Tokens: seq, PromptLen: len(prompt)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HarvestExamples(lm, ctx, true)
	}
}
