// Package draft implements the draft models used for speculative decoding:
// an Eagle-style learned single-layer drafter (with HASS and Eagle-3
// training variants and OSD-style distillation), a vanilla small-LM
// drafter, and a retrieval-based model-free n-gram drafter.
package draft

import (
	"sync"

	"fastrl/internal/gpu"
	"fastrl/internal/model"
)

// scratchPool backs the scratch-free Probs wrappers so drafters shared
// across replicas stay allocation-free without per-drafter mutable state.
var scratchPool = sync.Pool{New: func() any { return model.NewScratch() }}

// Drafter produces a proposal distribution for the next token.
//
// tokens is the full sequence so far (prompt + generated + previously
// drafted tokens), promptLen the prompt prefix length, and hidden the
// target model's hidden sketch at the drafting root (the last verified
// position). Model-free drafters ignore hidden. dst receives the
// distribution and must have vocabulary length.
type Drafter interface {
	Name() string
	// Arch returns the cost-model architecture of the drafter. A zero
	// Layers value marks a model-free drafter with no GPU forward cost.
	Arch() gpu.Arch
	Probs(tokens []int, promptLen int, hidden *model.HiddenState, temp float64, dst []float32)
}

// BufferedDrafter is implemented by drafters that can score into
// caller-owned scratch. The speculation engine prefers this entry so the
// drafting stage of a round performs zero heap allocations; drafters
// without it (e.g. the model-free n-gram drafter, which needs no logits
// buffer) are called through Probs.
type BufferedDrafter interface {
	Drafter
	// ProbsBuf is Probs using sc for intermediate buffers (logits); dst
	// still receives the distribution.
	ProbsBuf(tokens []int, promptLen int, hidden *model.HiddenState, temp float64, dst []float32, sc *model.Scratch)
}

// Observer is implemented by drafters that learn online from observed
// rollout tokens (the model-free n-gram drafter).
type Observer interface {
	Observe(tokens []int, promptLen int)
}

// Example is one drafter training sample harvested from the RL inference
// (prefill) stage: the context, the target's hidden sketch at the context
// end, and the target's next-token distribution and sampled next token.
type Example struct {
	// Tokens is the context prefix. Implementations treat it as read-only;
	// it may alias rollout response storage.
	Tokens    []int
	PromptLen int
	Hidden    *model.HiddenState
	// Target is the target model's full next-token distribution (used by
	// KD-style objectives). May be nil when only the sampled token was
	// recorded.
	Target []float32
	// TargetTok is the token the target model actually produced.
	TargetTok int
	// SeqLen is the total length of the response this example came from;
	// the DataBuffer uses it for long-sequence prioritisation.
	SeqLen int
}

// TrainStats summarises one training call.
type TrainStats struct {
	Examples int
	// ForwardPasses counts drafter forward passes performed, the unit of
	// the paper's "training cost" column in Table 7 (training-time test
	// multiplies it).
	ForwardPasses int
	// MeanCE is the mean cross-entropy of the drafter against the target
	// token over the batch, before updates.
	MeanCE float64
}
