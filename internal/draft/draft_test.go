package draft

import (
	"math/rand"
	"testing"

	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/tokenizer"
)

func newTarget(t testing.TB) (*model.LM, *tokenizer.Tokenizer) {
	t.Helper()
	tk := tokenizer.New()
	cfg := model.DefaultConfig(tk.VocabSize(), gpu.Qwen7B)
	cfg.Buckets = 1 << 10
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	lm := model.New(cfg, &model.GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})
	return lm, tk
}

// sampleCorpus rolls the target over a few synthetic prompts and harvests
// drafter training examples.
func sampleCorpus(t testing.TB, lm *model.LM, tk *tokenizer.Tokenizer, nPrompts, maxNew int, seed int64) []*Example {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var out []*Example
	for i := 0; i < nPrompts; i++ {
		prompt := []int{tk.Bos(), tk.Digit(rng.Intn(10)), tk.MustID("+"), tk.Digit(rng.Intn(10)), tk.MustID("=")}
		seq := model.Generate(lm, prompt, nil, 1, maxNew, tk.Eos(), rng)
		out = append(out, HarvestExamples(lm, model.Context{Tokens: seq, PromptLen: len(prompt)}, true)...)
	}
	if len(out) == 0 {
		t.Fatal("no examples harvested")
	}
	return out
}

func TestEagleTrainingImprovesAccuracy(t *testing.T) {
	lm, tk := newTarget(t)
	train := sampleCorpus(t, lm, tk, 40, 60, 1)
	test := sampleCorpus(t, lm, tk, 10, 60, 2)

	e := NewEagle(EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	before := e.TopKAccuracy(test, 3)
	rng := rand.New(rand.NewSource(3))
	for epoch := 0; epoch < 3; epoch++ {
		e.Train(train, nil, rng)
	}
	after := e.TopKAccuracy(test, 3)
	if after <= before {
		t.Fatalf("training did not improve top-3 accuracy: %.3f -> %.3f", before, after)
	}
	if after < 0.5 {
		t.Fatalf("trained drafter top-3 accuracy too low: %.3f", after)
	}
	if e.Version != 3 {
		t.Fatalf("Version = %d, want 3", e.Version)
	}
}

func TestEagleStalenessAfterTargetUpdate(t *testing.T) {
	// The adaptive-drafter claim (paper §4, Table 6): a drafter trained on
	// an older target version is measurably worse on the updated target's
	// rollout distribution than the same drafter after adaptive retraining.
	lm, tk := newTarget(t)
	train := sampleCorpus(t, lm, tk, 40, 60, 1)
	e := NewEagle(EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	rng := rand.New(rand.NewSource(3))
	for epoch := 0; epoch < 4; epoch++ {
		e.Train(train, nil, rng)
	}
	vanilla := e.Clone() // frozen at target version 0

	// Apply strong RL-style updates to the target.
	shifted := lm.Clone()
	gRng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		prompt := []int{tk.Bos(), tk.Digit(gRng.Intn(10)), tk.MustID("+"), tk.Digit(gRng.Intn(10)), tk.MustID("=")}
		seq := model.Generate(shifted, prompt, nil, 1, 40, tk.Eos(), gRng)
		shifted.PolicyGradientStep(model.Context{Tokens: seq, PromptLen: len(prompt)}, 1, 0.8, 1, nil, 0)
	}

	// Adaptive drafter retrains on the new distribution; vanilla does not.
	fresh := sampleCorpus(t, shifted, tk, 40, 60, 5)
	for epoch := 0; epoch < 3; epoch++ {
		e.Train(fresh, nil, rng)
	}

	testShifted := sampleCorpus(t, shifted, tk, 12, 60, 6)
	accStale := vanilla.TopKAccuracy(testShifted, 1)
	accAdaptive := e.TopKAccuracy(testShifted, 1)
	if accAdaptive <= accStale {
		t.Fatalf("adaptive drafter (%.3f) should beat stale drafter (%.3f) on the shifted distribution",
			accAdaptive, accStale)
	}
}

func TestEagleKDBeatsSFT(t *testing.T) {
	lm, tk := newTarget(t)
	train := sampleCorpus(t, lm, tk, 40, 60, 1)
	test := sampleCorpus(t, lm, tk, 12, 60, 2)

	kdCfg := EagleDefault(tk.VocabSize(), gpu.Qwen7B)
	sftCfg := kdCfg
	sftCfg.Objective = ObjectiveSFT
	kd := NewEagle(kdCfg)
	sft := NewEagle(sftCfg)
	rng1 := rand.New(rand.NewSource(3))
	rng2 := rand.New(rand.NewSource(3))
	for epoch := 0; epoch < 3; epoch++ {
		kd.Train(train, nil, rng1)
		sft.Train(train, nil, rng2)
	}
	// KD distils the full distribution and should align at least as well.
	ak, as := kd.TopKAccuracy(test, 3), sft.TopKAccuracy(test, 3)
	if ak+0.02 < as {
		t.Fatalf("KD accuracy %.3f clearly below SFT accuracy %.3f", ak, as)
	}
}

func TestHASSUnrollCostsMore(t *testing.T) {
	lm, tk := newTarget(t)
	train := sampleCorpus(t, lm, tk, 10, 40, 1)
	eagle := NewEagle(EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	hass := NewEagle(HASSConfig(tk.VocabSize(), gpu.Qwen7B))
	rng := rand.New(rand.NewSource(3))
	se := eagle.Train(train, lm, rng)
	sh := hass.Train(train, lm, rng)
	if sh.ForwardPasses < 2*se.ForwardPasses {
		t.Fatalf("HASS (%d passes) should cost well above Eagle (%d passes)",
			sh.ForwardPasses, se.ForwardPasses)
	}
}

func TestEagle3Config(t *testing.T) {
	cfg := Eagle3Config(97, gpu.Qwen7B)
	if cfg.FusedHiddens != 2 || cfg.UnrollSteps != 7 {
		t.Fatalf("unexpected eagle3 config: %+v", cfg)
	}
	e := NewEagle(cfg)
	if e.Name() != "eagle3" {
		t.Fatalf("Name = %q", e.Name())
	}
}

func TestEagleCloneAndCopy(t *testing.T) {
	lm, tk := newTarget(t)
	train := sampleCorpus(t, lm, tk, 10, 40, 1)
	e := NewEagle(EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	rng := rand.New(rand.NewSource(3))
	e.Train(train, nil, rng)
	snap := e.Clone()
	e.Train(train, nil, rng)
	if snap.Version == e.Version {
		t.Fatal("clone tracked further training")
	}
	fresh := NewEagle(EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	fresh.CopyWeightsFrom(e)
	if fresh.Table().L2Distance(e.Table()) != 0 {
		t.Fatal("CopyWeightsFrom did not copy weights")
	}
	if fresh.Version != e.Version {
		t.Fatal("CopyWeightsFrom did not copy version")
	}
}

func TestEagleProbsIsDistribution(t *testing.T) {
	_, tk := newTarget(t)
	e := NewEagle(EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	probs := make([]float32, tk.VocabSize())
	hidden := &model.HiddenState{Sketch: make([]float32, model.HiddenDim)}
	e.Probs([]int{tk.Bos(), tk.Digit(3)}, 1, hidden, 1, probs)
	var sum float64
	for _, p := range probs {
		if p < 0 {
			t.Fatal("negative probability")
		}
		sum += float64(p)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// Nil hidden must not panic (model-free fallback path).
	e.Probs([]int{tk.Bos()}, 1, nil, 1, probs)
}

func TestEagleArchIsSingleLayer(t *testing.T) {
	e := NewEagle(EagleDefault(97, gpu.Qwen32B))
	if e.Arch().Layers != 1 {
		t.Fatalf("drafter arch layers = %d", e.Arch().Layers)
	}
}

func TestNGramRetrieval(t *testing.T) {
	g := NewNGram(50, 1, 3)
	seq := []int{1, 2, 3, 4, 5, 2, 3, 4, 6}
	g.Observe(seq, 0)
	probs := make([]float32, 50)
	// Context ...2,3,4 was last followed by 6.
	g.Probs([]int{9, 2, 3, 4}, 0, nil, 1, probs)
	if model.Argmax(probs) != 6 {
		t.Fatalf("ngram retrieval argmax = %d, want 6", model.Argmax(probs))
	}
	if g.HitRate() != 1 {
		t.Fatalf("hit rate = %v", g.HitRate())
	}
	// Unseen context: uniform.
	g.Probs([]int{40, 41, 42}, 0, nil, 1, probs)
	if probs[0] != probs[49] {
		t.Fatal("miss should produce uniform distribution")
	}
	if g.HitRate() != 0.5 {
		t.Fatalf("hit rate after miss = %v", g.HitRate())
	}
	if g.Size() == 0 {
		t.Fatal("observe indexed nothing")
	}
	g.Reset()
	if g.Size() != 0 || g.HitRate() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestNGramIsModelFree(t *testing.T) {
	g := NewNGram(50, 1, 3)
	if g.Arch().Layers != 0 {
		t.Fatal("ngram drafter should report zero-cost arch")
	}
	if g.Name() != "ngram" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestNGramProbsSumToOne(t *testing.T) {
	g := NewNGram(30, 1, 2)
	g.Observe([]int{1, 2, 3}, 0)
	probs := make([]float32, 30)
	g.Probs([]int{1, 2}, 0, nil, 1, probs)
	var sum float64
	for _, p := range probs {
		sum += float64(p)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestSmallLMDistillation(t *testing.T) {
	lm, tk := newTarget(t)
	train := sampleCorpus(t, lm, tk, 40, 60, 1)
	small := NewSmallLM("qwen0.5b", tk.VocabSize(), gpu.Qwen05B, 5)
	ceFirst := small.Distill(train, 0.3, true)
	var ceLast float64
	for i := 0; i < 4; i++ {
		ceLast = small.Distill(train, 0.3, true)
	}
	if ceLast >= ceFirst {
		t.Fatalf("distillation did not reduce CE: %.3f -> %.3f", ceFirst, ceLast)
	}
	if small.Arch().Name != gpu.Qwen05B.Name {
		t.Fatalf("Arch = %v", small.Arch())
	}
}

func TestHarvestExamples(t *testing.T) {
	lm, tk := newTarget(t)
	rng := rand.New(rand.NewSource(1))
	prompt := []int{tk.Bos(), tk.Digit(2), tk.MustID("+"), tk.Digit(2), tk.MustID("=")}
	seq := model.Generate(lm, prompt, nil, 1, 30, tk.Eos(), rng)
	exs := HarvestExamples(lm, model.Context{Tokens: seq, PromptLen: len(prompt)}, true)
	if len(exs) != len(seq)-len(prompt) {
		t.Fatalf("harvested %d examples from %d generated tokens", len(exs), len(seq)-len(prompt))
	}
	for i, ex := range exs {
		if ex.TargetTok != seq[len(prompt)+i] {
			t.Fatalf("example %d target token mismatch", i)
		}
		if len(ex.Tokens) != len(prompt)+i {
			t.Fatalf("example %d context length %d", i, len(ex.Tokens))
		}
		if len(ex.Hidden.Sketch) != 2*model.HiddenDim {
			t.Fatalf("example %d fused hidden length %d", i, len(ex.Hidden.Sketch))
		}
		if ex.Target == nil {
			t.Fatalf("example %d missing distribution", i)
		}
		if ex.SeqLen != len(seq)-len(prompt) {
			t.Fatalf("example %d SeqLen = %d", i, ex.SeqLen)
		}
	}
	// Empty response harvests nothing.
	if got := HarvestExamples(lm, model.Context{Tokens: prompt, PromptLen: len(prompt)}, false); got != nil {
		t.Fatalf("expected nil for empty response, got %d", len(got))
	}
}
