package draft

import (
	"math"

	"fastrl/internal/gpu"
	"fastrl/internal/model"
)

// SmallLM is the vanilla speculative-decoding drafter: a separate,
// smaller multi-layer LM from the "same family" as the target (e.g.
// Qwen2.5-0.5B for a Qwen2.5 target). Unlike the Eagle drafter it does
// not consume target hidden states, and its multi-layer architecture
// makes its drafting latency much higher than the single-layer drafter
// despite the small parameter count (sequential layer compute dominates).
type SmallLM struct {
	lm   *model.LM
	name string
}

// NewSmallLM builds a small-LM drafter. family should be the target's
// model config (for the vocab); arch the small model's architecture
// (e.g. gpu.Qwen05B).
func NewSmallLM(name string, vocab int, arch gpu.Arch, seed int64) *SmallLM {
	cfg := model.Config{
		Vocab:        vocab,
		Orders:       []int{1, 2},
		PromptOrders: []int{1},
		Buckets:      1 << 11,
		InitScale:    0.3,
		Seed:         seed,
		Arch:         arch,
	}
	return &SmallLM{lm: model.New(cfg, nil), name: name}
}

// Name implements Drafter.
func (s *SmallLM) Name() string { return s.name }

// Arch implements Drafter.
func (s *SmallLM) Arch() gpu.Arch { return s.lm.Arch() }

// LM exposes the underlying model.
func (s *SmallLM) LM() *model.LM { return s.lm }

// Probs implements Drafter. Hidden states are ignored: a vanilla small
// model has no access to target internals.
func (s *SmallLM) Probs(tokens []int, promptLen int, hidden *model.HiddenState, temp float64, dst []float32) {
	s.lm.Probs(model.Context{Tokens: tokens, PromptLen: promptLen}, nil, temp, dst)
}

// ProbsBuf implements draft.BufferedDrafter.
func (s *SmallLM) ProbsBuf(tokens []int, promptLen int, hidden *model.HiddenState, temp float64, dst []float32, sc *model.Scratch) {
	s.lm.ProbsScratch(model.Context{Tokens: tokens, PromptLen: promptLen}, nil, temp, dst, sc)
}

// Distill performs one KD pass aligning the small LM to the target on the
// example contexts: soft cross-entropy toward the target distribution
// when available (OSD-style), one-hot toward the sampled token otherwise
// (SFT-style). Returns the mean pre-update cross-entropy.
func (s *SmallLM) Distill(examples []*Example, lr float64, soft bool) float64 {
	if len(examples) == 0 {
		return 0
	}
	vocab := s.lm.Config().Vocab
	q := make([]float32, vocab)
	grad := make([]float32, vocab)
	var featBuf [8]int
	var ceSum float64
	for _, ex := range examples {
		ctx := model.Context{Tokens: ex.Tokens, PromptLen: ex.PromptLen}
		feats := s.lm.Features(ctx, featBuf[:0])
		logits := make([]float32, vocab)
		s.lm.Table().Accumulate(feats, logits)
		model.Softmax(logits, 1, q)
		ceSum += -math.Log(float64(q[ex.TargetTok]) + 1e-12)
		if soft && ex.Target != nil {
			for v := range grad {
				grad[v] = ex.Target[v] - q[v]
			}
		} else {
			for v := range grad {
				grad[v] = -q[v]
			}
			grad[ex.TargetTok] += 1
		}
		s.lm.Table().AddGrad(feats, grad, float32(lr))
	}
	return ceSum / float64(len(examples))
}
