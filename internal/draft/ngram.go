package draft

import (
	"sync"

	"fastrl/internal/gpu"
	"fastrl/internal/metrics"
	"fastrl/internal/model"
)

// NGram is the model-free retrieval drafter: it indexes token n-grams seen
// in earlier rollout responses and proposes the most recent observed
// continuation for the current context. Because candidate responses for
// the same prompt share notation and phrasing, this is a surprisingly
// effective (and training-free) proposal distribution — TLT uses it as
// the fallback before the learned drafter is ready (TLT-Base).
type NGram struct {
	mu sync.RWMutex
	// MaxOrder..MinOrder matching, longest first.
	MaxOrder int
	MinOrder int
	vocab    int
	// Hit confidence: probability mass placed on a retrieved continuation.
	Confidence float32
	table      map[uint64]int // context hash -> most recent next token
	// lookups is the shared bounded hit/miss accounting (metrics.Ratio),
	// the same helper the prefix cache and serving probes use.
	lookups metrics.Ratio
}

// NewNGram creates a drafter matching contexts of length MinOrder..MaxOrder.
func NewNGram(vocab, minOrder, maxOrder int) *NGram {
	if minOrder < 1 {
		minOrder = 1
	}
	if maxOrder < minOrder {
		maxOrder = minOrder
	}
	return &NGram{
		MaxOrder:   maxOrder,
		MinOrder:   minOrder,
		vocab:      vocab,
		Confidence: 0.85,
		table:      make(map[uint64]int),
	}
}

// Name implements Drafter.
func (g *NGram) Name() string { return "ngram" }

// Arch implements Drafter; the zero Arch marks a model-free drafter whose
// proposals cost no GPU time.
func (g *NGram) Arch() gpu.Arch { return gpu.Arch{} }

// Observe indexes all n-grams of a (partial or complete) response.
func (g *NGram) Observe(tokens []int, promptLen int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for pos := promptLen; pos < len(tokens); pos++ {
		for k := g.MinOrder; k <= g.MaxOrder; k++ {
			if pos-k < 0 {
				continue
			}
			h := hashSlice(tokens[pos-k:pos], k)
			g.table[h] = tokens[pos]
		}
	}
}

// Probs implements Drafter: longest-match retrieval with mass Confidence
// on the retrieved token and the remainder spread uniformly; uniform when
// nothing matches.
func (g *NGram) Probs(tokens []int, promptLen int, hidden *model.HiddenState, temp float64, dst []float32) {
	g.mu.Lock()
	defer g.mu.Unlock()
	uniform := float32(1) / float32(g.vocab)
	for k := g.MaxOrder; k >= g.MinOrder; k-- {
		if len(tokens) < k {
			continue
		}
		h := hashSlice(tokens[len(tokens)-k:], k)
		if next, ok := g.table[h]; ok {
			g.lookups.Observe(true)
			rest := (1 - g.Confidence) / float32(g.vocab)
			for v := range dst {
				dst[v] = rest
			}
			dst[next] += g.Confidence
			return
		}
	}
	g.lookups.Observe(false)
	for v := range dst {
		dst[v] = uniform
	}
}

// HitRate reports the fraction of lookups that matched.
func (g *NGram) HitRate() float64 { return g.lookups.Rate() }

// Reset clears the retrieval index (e.g. between prompt groups).
func (g *NGram) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.table = make(map[uint64]int)
	g.lookups.Reset()
}

// Size returns the number of indexed n-grams.
func (g *NGram) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.table)
}

func hashSlice(ts []int, salt int) uint64 {
	h := uint64(salt)*0x9e3779b97f4a7c15 ^ 14695981039346656037
	for _, t := range ts {
		h ^= uint64(uint32(t)) + 0x9e3779b9
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
