package draft

// Freeze returns a view of d with online learning hidden: the returned
// drafter does not implement Observer, so engines that feed generated
// tokens back into learning drafters (the n-gram retrieval drafter) see
// state frozen for the duration of decoding. A frozen drafter's proposals
// depend only on the query context, which makes served token streams
// bit-reproducible across batch compositions and admission orders — the
// property the scheduler's run-to-completion-equivalence tests pin.
// Deployments that want online adaptation simply serve the unfrozen
// drafter and give up bit-reproducibility (losslessness in distribution
// holds either way: verification never depends on proposal quality).
//
// Buffered drafters keep their allocation-free scoring entry.
func Freeze(d Drafter) Drafter {
	if bd, ok := d.(BufferedDrafter); ok {
		return frozenBuffered{bd}
	}
	return frozen{d}
}

// frozen embeds the Drafter interface value: only Drafter's methods are
// promoted, so type assertions to Observer (or anything else the concrete
// drafter implements) fail.
type frozen struct{ Drafter }

// frozenBuffered additionally forwards ProbsBuf.
type frozenBuffered struct{ BufferedDrafter }
