package draft

import (
	"fastrl/internal/model"
)

// HarvestExamples recomputes drafter training examples from a finished (or
// partial) sequence, exactly as the RL inference stage does when it
// prefills responses through the target model: for every generated
// position it records the context, the target's hidden sketch, the
// target's next-token distribution, and the token actually produced.
//
// withDist controls whether the full target distribution is stored (needed
// by KD objectives; costs vocab floats per position).
func HarvestExamples(target *model.LM, seq model.Context, withDist bool) []*Example {
	n := len(seq.Tokens)
	if seq.PromptLen >= n {
		return nil
	}
	vocab := target.Config().Vocab
	out := make([]*Example, 0, n-seq.PromptLen)
	for pos := seq.PromptLen; pos < n; pos++ {
		ctx := model.Context{Tokens: seq.Tokens[:pos], PromptLen: seq.PromptLen}
		// Two fused sketches cover both the Eagle (1 sketch) and Eagle-3
		// (2 sketches) drafter inputs.
		hidden := model.FusedHidden(target, ctx, 2)
		ex := &Example{
			Tokens:    seq.Tokens[:pos:pos],
			PromptLen: seq.PromptLen,
			Hidden:    hidden,
			TargetTok: seq.Tokens[pos],
			SeqLen:    n - seq.PromptLen,
		}
		if withDist {
			dist := make([]float32, vocab)
			target.Probs(ctx, nil, 1, dist)
			ex.Target = dist
		}
		out = append(out, ex)
	}
	return out
}
