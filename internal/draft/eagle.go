package draft

import (
	"math"
	"math/rand"

	"fastrl/internal/gpu"
	"fastrl/internal/model"
)

// Objective selects the drafter training loss.
type Objective int

const (
	// ObjectiveSFT trains on the target's sampled tokens (one-hot CE).
	ObjectiveSFT Objective = iota
	// ObjectiveKD distils the target's full next-token distribution
	// (soft CE), the Eagle-style objective; OSD-style training also
	// lands here.
	ObjectiveKD
)

// EagleConfig parameterises the learned single-layer drafter.
type EagleConfig struct {
	// Variant is a display name ("eagle", "hass", "eagle3").
	Variant string
	Vocab   int
	// Orders are local n-gram context orders (smaller than the target's:
	// the drafter is capacity limited).
	Orders []int
	// PromptOrders are context orders additionally combined with the
	// prompt hash, the drafter's analogue of attending to the prompt
	// through its own embeddings.
	PromptOrders []int
	Buckets      int
	// FusedHiddens is how many trailing hidden sketches are fused as input
	// features (Eagle uses 1; Eagle-3 fuses multiple layers, modelled here
	// as multiple sketches).
	FusedHiddens int
	// UnrollSteps is the training-time-test depth: the number of
	// additional steps trained on the drafter's own predictions
	// (Eagle: 1, HASS: 3, Eagle-3: 7). Multiplies training cost.
	UnrollSteps int
	// RankDropout is the fraction of training examples whose rank features
	// are masked, teaching the drafter the rank-free prediction mode used
	// at draft indices beyond the first (where the root hidden state no
	// longer describes the position being drafted).
	RankDropout float64
	Objective   Objective
	LR          float64
	Seed        int64
	// Arch is the drafter's cost architecture (single decoder layer).
	Arch gpu.Arch
}

// EagleDefault returns the paper's default drafter configuration for a
// target architecture.
func EagleDefault(vocab int, target gpu.Arch) EagleConfig {
	return EagleConfig{
		Variant:      "eagle",
		Vocab:        vocab,
		Orders:       []int{1, 2, 3},
		PromptOrders: []int{1},
		Buckets:      1 << 13,
		FusedHiddens: 1,
		UnrollSteps:  1,
		Objective:    ObjectiveKD,
		RankDropout:  0.3,
		LR:           0.5,
		Seed:         11,
		Arch:         gpu.DraftArch(target),
	}
}

// HASSConfig returns the HASS variant (training-time test, 3 unroll steps).
func HASSConfig(vocab int, target gpu.Arch) EagleConfig {
	c := EagleDefault(vocab, target)
	c.Variant = "hass"
	c.UnrollSteps = 3
	return c
}

// Eagle3Config returns the Eagle-3 variant (fused hidden states, deeper
// training-time test).
func Eagle3Config(vocab int, target gpu.Arch) EagleConfig {
	c := EagleDefault(vocab, target)
	c.Variant = "eagle3"
	c.FusedHiddens = 2
	c.UnrollSteps = 7
	return c
}

// Eagle is the learned single-layer drafter. It predicts the target's next
// token from local n-gram features plus sign features of the target's
// hidden sketch at the drafting root, mirroring how Eagle conditions a
// single decoder layer on target hidden states.
type Eagle struct {
	cfg   EagleConfig
	table *model.Table
	// Version counts applied training batches.
	Version int
	// TrainedPasses accumulates forward passes spent in training (cost
	// accounting for Table 7).
	TrainedPasses int
}

// NewEagle creates an untrained drafter.
func NewEagle(cfg EagleConfig) *Eagle {
	if cfg.Vocab <= 0 || cfg.Buckets <= 0 {
		panic("draft: invalid eagle config")
	}
	if cfg.FusedHiddens < 1 {
		cfg.FusedHiddens = 1
	}
	if cfg.UnrollSteps < 1 {
		cfg.UnrollSteps = 1
	}
	rows := 1 + (len(cfg.Orders)+len(cfg.PromptOrders))*cfg.Buckets +
		(cfg.FusedHiddens-1)*2*model.HiddenDim +
		model.NumRankTokens*cfg.Buckets + model.NumRankTokens*cfg.Vocab
	e := &Eagle{cfg: cfg, table: model.NewTable(rows, cfg.Vocab)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e.table.Randomize(rng, 0.05)
	return e
}

// Name returns the variant name.
func (e *Eagle) Name() string { return e.cfg.Variant }

// Arch returns the drafter cost architecture.
func (e *Eagle) Arch() gpu.Arch { return e.cfg.Arch }

// Config returns the configuration.
func (e *Eagle) Config() EagleConfig { return e.cfg }

// Table exposes the trainable weights (checkpointing, size accounting).
func (e *Eagle) Table() *model.Table { return e.table }

// Clone deep-copies the drafter (e.g. to freeze a "vanilla" snapshot).
func (e *Eagle) Clone() *Eagle {
	return &Eagle{cfg: e.cfg, table: e.table.Clone(), Version: e.Version, TrainedPasses: e.TrainedPasses}
}

// CopyWeightsFrom overwrites weights from another drafter with the same
// configuration (rollout-engine weight refresh after spot training).
func (e *Eagle) CopyWeightsFrom(src *Eagle) {
	e.table.CopyFrom(src.table)
	e.Version = src.Version
}

func (e *Eagle) features(tokens []int, promptLen int, hidden *model.HiddenState, dst []int) []int {
	dst = dst[:0]
	base := 1
	for _, k := range e.cfg.Orders {
		h := hashTail(tokens, k)
		dst = append(dst, base+int(h%uint64(e.cfg.Buckets)))
		base += e.cfg.Buckets
	}
	if len(e.cfg.PromptOrders) > 0 {
		n := promptLen
		if n > len(tokens) {
			n = len(tokens)
		}
		ph := hashSlice(tokens[:n], 0x7c15)
		for _, k := range e.cfg.PromptOrders {
			h := hashTail(tokens, k) ^ ph
			dst = append(dst, base+int(h%uint64(e.cfg.Buckets)))
			base += e.cfg.Buckets
		}
	}
	// Extra fused-sketch sign features (Eagle-3 only): one active feature
	// per dimension of each sketch beyond the first. The first sketch's
	// information enters through the rank features below, so plain Eagle
	// keeps a small active-feature set and converges quickly in the short
	// spot-training windows.
	for f := 1; f < e.cfg.FusedHiddens; f++ {
		off := f * model.HiddenDim
		for d := 0; d < model.HiddenDim; d++ {
			bit := 0
			if hidden != nil && off+d < len(hidden.Sketch) && hidden.Sketch[off+d] > 0 {
				bit = 1
			}
			dst = append(dst, base+2*d+bit)
		}
		base += 2 * model.HiddenDim
	}
	// Rank features: the identities of the target's top next tokens at the
	// drafting root, interacted with the local context. These carry the
	// bulk of the hidden state's predictive power at draft index 1, decay
	// at deeper indices (they describe the root position, not the drafted
	// continuation), and — because the mapping is learned per
	// (rank, token, context) combination — genuinely go stale when the
	// target's distributions drift under RL updates.
	if hidden != nil {
		last := -1
		if len(tokens) > 0 {
			last = tokens[len(tokens)-1]
		}
		for j, tok := range hidden.TopTokens {
			if j >= model.NumRankTokens {
				break
			}
			if tok < 0 || tok >= e.cfg.Vocab {
				continue
			}
			// Context-interacted rank feature (specific, drift-sensitive)...
			h := hashPair(uint64(j)<<32|uint64(uint32(tok)), uint64(uint32(last)))
			dst = append(dst, base+j*e.cfg.Buckets+int(h%uint64(e.cfg.Buckets)))
			// ...plus a plain rank feature as a generalisation floor for
			// combinations unseen in training.
			dst = append(dst, base+model.NumRankTokens*e.cfg.Buckets+j*e.cfg.Vocab+tok)
		}
	}
	return dst
}

func hashPair(a, b uint64) uint64 {
	h := a*0x9e3779b97f4a7c15 ^ b*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// Probs implements Drafter.
func (e *Eagle) Probs(tokens []int, promptLen int, hidden *model.HiddenState, temp float64, dst []float32) {
	sc := scratchPool.Get().(*model.Scratch)
	e.ProbsBuf(tokens, promptLen, hidden, temp, dst, sc)
	scratchPool.Put(sc)
}

// ProbsBuf implements draft.BufferedDrafter: Probs scoring into a
// caller-owned scratch, allocation-free in steady state.
func (e *Eagle) ProbsBuf(tokens []int, promptLen int, hidden *model.HiddenState, temp float64, dst []float32, sc *model.Scratch) {
	var featBuf [80]int
	feats := e.features(tokens, promptLen, hidden, featBuf[:0])
	logits := sc.Logits(e.cfg.Vocab)
	e.table.Accumulate(feats, logits)
	model.Softmax(logits, temp, dst)
}

// Train performs one SGD pass over the examples against the target model.
// The target is consulted for unrolled (training-time-test) positions;
// pass nil target to disable unrolling regardless of configuration.
func (e *Eagle) Train(examples []*Example, target *model.LM, rng *rand.Rand) TrainStats {
	stats := TrainStats{Examples: len(examples)}
	if len(examples) == 0 {
		return stats
	}
	q := make([]float32, e.cfg.Vocab)
	grad := make([]float32, e.cfg.Vocab)
	var featBuf [80]int
	var ceSum float64
	for _, ex := range examples {
		hid := ex.Hidden
		if e.cfg.RankDropout > 0 && hid != nil && rng != nil && rng.Float64() < e.cfg.RankDropout {
			hid = &model.HiddenState{Sketch: hid.Sketch}
		}
		feats := e.features(ex.Tokens, ex.PromptLen, hid, featBuf[:0])
		logits := make([]float32, e.cfg.Vocab)
		e.table.Accumulate(feats, logits)
		model.Softmax(logits, 1, q)
		stats.ForwardPasses++
		ceSum += -math.Log(float64(q[ex.TargetTok]) + 1e-12)

		e.applyGrad(feats, q, grad, ex)

		if e.cfg.UnrollSteps > 1 && target != nil {
			e.unroll(ex, target, q, grad, rng, &stats)
		}
	}
	e.Version++
	e.TrainedPasses += stats.ForwardPasses
	stats.MeanCE = ceSum / float64(len(examples))
	return stats
}

func (e *Eagle) applyGrad(feats []int, q []float32, grad []float32, ex *Example) {
	switch {
	case e.cfg.Objective == ObjectiveKD && ex.Target != nil:
		for v := range grad {
			grad[v] = ex.Target[v] - q[v]
		}
	default:
		for v := range grad {
			grad[v] = -q[v]
		}
		grad[ex.TargetTok] += 1
	}
	e.table.AddGrad(feats, grad, float32(e.cfg.LR))
}

// unroll performs HASS-style training-time test: continue from the
// example's context using the drafter's own greedy predictions (with the
// stale root hidden), supervised by the target model's distribution at
// each unrolled position. This teaches the drafter to stay aligned at
// deeper draft indices, at the cost of extra target forward passes.
func (e *Eagle) unroll(ex *Example, target *model.LM, q, grad []float32, rng *rand.Rand, stats *TrainStats) {
	ctxLen := len(ex.Tokens)
	extended := make([]int, ctxLen, ctxLen+e.cfg.UnrollSteps)
	copy(extended, ex.Tokens)
	extended = append(extended, ex.TargetTok)
	tp := make([]float32, e.cfg.Vocab)
	var featBuf [80]int
	unrollHidden := &model.HiddenState{Sketch: ex.Hidden.Sketch}
	for step := 1; step < e.cfg.UnrollSteps; step++ {
		feats := e.features(extended, ex.PromptLen, unrollHidden, featBuf[:0])
		logits := make([]float32, e.cfg.Vocab)
		e.table.Accumulate(feats, logits)
		model.Softmax(logits, 1, q)
		stats.ForwardPasses++

		tctx := model.Context{Tokens: extended, PromptLen: ex.PromptLen}
		target.Probs(tctx, nil, 1, tp)
		for v := range grad {
			grad[v] = tp[v] - q[v]
		}
		e.table.AddGrad(feats, grad, float32(e.cfg.LR))

		extended = append(extended, model.SampleProbs(tp, rng))
	}
}

// TopKAccuracy returns the fraction of examples whose target token is in
// the drafter's top-k prediction — the Fig. 15 metric (k=3 in the paper).
func (e *Eagle) TopKAccuracy(examples []*Example, k int) float64 {
	if len(examples) == 0 {
		return 0
	}
	probs := make([]float32, e.cfg.Vocab)
	hits := 0
	for _, ex := range examples {
		e.Probs(ex.Tokens, ex.PromptLen, ex.Hidden, 1, probs)
		for _, v := range model.TopK(probs, k) {
			if v == ex.TargetTok {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(examples))
}

func hashTail(ts []int, k int) uint64 {
	start := len(ts) - k
	if start < 0 {
		start = 0
	}
	h := uint64(k)*0x100000001b3 ^ 14695981039346656037
	for _, t := range ts[start:] {
		h ^= uint64(uint32(t)) + 0x9e3779b9
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
