// Package vclock provides a virtual cluster clock for the simulated GPU
// substrate. All latency accounting in the simulator advances a Clock
// instead of wall time, so experiments are deterministic and fast while
// preserving the relative cost structure of real hardware.
package vclock

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at virtual time zero, ready to use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative advances are ignored:
// virtual time never flows backwards.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to t if t is later than the current
// virtual time, and reports the resulting time.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero. Only intended for reuse between
// experiment repetitions.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// Span is a labelled interval on a worker timeline.
type Span struct {
	Label string
	Start time.Duration
	End   time.Duration
}

// Duration returns the length of the span.
func (s Span) Duration() time.Duration { return s.End - s.Start }

func (s Span) String() string {
	return fmt.Sprintf("%s[%v,%v]", s.Label, s.Start, s.End)
}

// Timeline records labelled spans for a single worker. It is used to
// compute utilisation and to render rollout profiles (paper Fig. 1(b),
// Fig. 14). Timeline methods are not safe for concurrent use; each worker
// owns its timeline.
type Timeline struct {
	Worker int
	Spans  []Span
}

// Record appends a span. Spans may be appended out of order; Sort fixes
// ordering before analysis.
func (t *Timeline) Record(label string, start, end time.Duration) {
	if end < start {
		start, end = end, start
	}
	t.Spans = append(t.Spans, Span{Label: label, Start: start, End: end})
}

// Sort orders spans by start time.
func (t *Timeline) Sort() {
	sort.Slice(t.Spans, func(i, j int) bool { return t.Spans[i].Start < t.Spans[j].Start })
}

// BusyWithin returns the total time covered by spans with any of the given
// labels, clipped to the window [from, to). Overlapping spans with the same
// label are merged so time is not double counted.
func (t *Timeline) BusyWithin(from, to time.Duration, labels ...string) time.Duration {
	want := make(map[string]bool, len(labels))
	for _, l := range labels {
		want[l] = true
	}
	var clipped []Span
	for _, s := range t.Spans {
		if len(labels) > 0 && !want[s.Label] {
			continue
		}
		st, en := s.Start, s.End
		if st < from {
			st = from
		}
		if en > to {
			en = to
		}
		if en > st {
			clipped = append(clipped, Span{Start: st, End: en})
		}
	}
	sort.Slice(clipped, func(i, j int) bool { return clipped[i].Start < clipped[j].Start })
	var busy time.Duration
	var curStart, curEnd time.Duration
	started := false
	for _, s := range clipped {
		if !started {
			curStart, curEnd, started = s.Start, s.End, true
			continue
		}
		if s.Start <= curEnd {
			if s.End > curEnd {
				curEnd = s.End
			}
			continue
		}
		busy += curEnd - curStart
		curStart, curEnd = s.Start, s.End
	}
	if started {
		busy += curEnd - curStart
	}
	return busy
}

// Utilization returns the fraction of [from, to) covered by spans with the
// given labels (all labels if none given).
func (t *Timeline) Utilization(from, to time.Duration, labels ...string) float64 {
	if to <= from {
		return 0
	}
	return float64(t.BusyWithin(from, to, labels...)) / float64(to-from)
}

// End returns the latest span end time, or zero for an empty timeline.
func (t *Timeline) End() time.Duration {
	var end time.Duration
	for _, s := range t.Spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}
