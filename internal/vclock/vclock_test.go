package vclock

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock should start at 0, got %v", c.Now())
	}
	if got := c.Advance(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("Advance returned %v", got)
	}
	if got := c.Advance(-time.Second); got != 5*time.Millisecond {
		t.Fatalf("negative advance moved the clock: %v", got)
	}
	c.AdvanceTo(3 * time.Millisecond) // earlier than now: no-op
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("AdvanceTo moved the clock backwards: %v", c.Now())
	}
	c.AdvanceTo(8 * time.Millisecond)
	if c.Now() != 8*time.Millisecond {
		t.Fatalf("AdvanceTo failed: %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset failed: %v", c.Now())
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	var c Clock
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := c.Now(); got != 8*1000*time.Microsecond {
		t.Fatalf("concurrent advances lost updates: %v", got)
	}
}

func TestTimelineBusyWithin(t *testing.T) {
	tl := &Timeline{Worker: 0}
	tl.Record("rollout", 0, 10)
	tl.Record("rollout", 5, 15)  // overlaps previous
	tl.Record("train", 20, 30)   // different label
	tl.Record("rollout", 40, 50) // disjoint

	if got := tl.BusyWithin(0, 100, "rollout"); got != 25 {
		t.Fatalf("merged busy time = %v, want 25", got)
	}
	if got := tl.BusyWithin(0, 100, "train"); got != 10 {
		t.Fatalf("train busy time = %v, want 10", got)
	}
	// All labels.
	if got := tl.BusyWithin(0, 100); got != 35 {
		t.Fatalf("total busy time = %v, want 35", got)
	}
	// Clipping.
	if got := tl.BusyWithin(8, 12, "rollout"); got != 4 {
		t.Fatalf("clipped busy time = %v, want 4", got)
	}
}

func TestTimelineUtilization(t *testing.T) {
	tl := &Timeline{}
	tl.Record("x", 0, 50)
	if u := tl.Utilization(0, 100); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := tl.Utilization(100, 100); u != 0 {
		t.Fatalf("empty window utilization = %v, want 0", u)
	}
}

func TestTimelineRecordSwapsReversedSpan(t *testing.T) {
	tl := &Timeline{}
	tl.Record("x", 10, 5)
	if tl.Spans[0].Start != 5 || tl.Spans[0].End != 10 {
		t.Fatalf("reversed span not normalised: %+v", tl.Spans[0])
	}
	if tl.End() != 10 {
		t.Fatalf("End = %v, want 10", tl.End())
	}
}

func TestTimelineSort(t *testing.T) {
	tl := &Timeline{}
	tl.Record("b", 10, 20)
	tl.Record("a", 0, 5)
	tl.Sort()
	if tl.Spans[0].Label != "a" {
		t.Fatalf("Sort did not order by start: %v", tl.Spans)
	}
}
