// Chaos-grade fault injection and warm recovery. A seeded FaultPlan
// schedules crash/hang/slow-shard events at virtual-time points (driven by
// a vclock.Clock); a FaultInjector applies them against the cluster as the
// experiment clock advances. Recovery rebuilds a dead shard's
// serving.Server warm: drafter weights restored from the spot
// Checkpointer's latest checkpoint, prefix cache re-warmed from the
// hottest retained prefixes on the survivors.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fastrl/internal/coordinator"
	"fastrl/internal/draft"
	"fastrl/internal/serving"
	"fastrl/internal/spot"
	"fastrl/internal/trace"
	"fastrl/internal/vclock"
)

// FaultKind discriminates injectable faults.
type FaultKind uint8

const (
	// FaultCrash kills a shard at a step boundary: running requests fail
	// with serving.ErrCrashed (failover resubmits them), the shard leaves
	// the serving set until revived.
	FaultCrash FaultKind = iota + 1
	// FaultHang freezes a shard's replicas without failing anything — the
	// fault the health monitor must detect and escalate to a crash.
	FaultHang
	// FaultSlow injects a per-step stall, degrading the shard's throughput
	// without killing it.
	FaultSlow
	// FaultRevive ends a shard's fault: a dead shard is rebuilt warm, a
	// slow/hung shard restored to full speed.
	FaultRevive
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultHang:
		return "hang"
	case FaultSlow:
		return "slow"
	case FaultRevive:
		return "revive"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// FaultEvent is one scheduled fault at a virtual-time point.
type FaultEvent struct {
	// At is the virtual time the event fires.
	At time.Duration
	// Kind is what happens.
	Kind FaultKind
	// Shard is the target shard.
	Shard int
	// Stall is the injected per-step stall (FaultSlow only).
	Stall time.Duration
}

// FaultPlan is a deterministic schedule of fault events, ordered by time.
type FaultPlan struct {
	Events []FaultEvent
}

// FaultPlanConfig parameterises GenerateFaultPlan.
type FaultPlanConfig struct {
	// Seed drives shard and kind selection.
	Seed int64
	// Shards is the cluster size (targets are drawn from [0, Shards)).
	Shards int
	// Duration is the window faults are spread over.
	Duration time.Duration
	// Faults is how many fault/revive pairs to schedule. Default 1.
	Faults int
	// MTTR is the virtual time between a fault and its revive; clamped so
	// at most one shard is down at a time. Default Duration/(4*Faults).
	MTTR time.Duration
	// Kinds restricts the drawn fault kinds (default crash and hang).
	Kinds []FaultKind
	// Stall is the injected stall for FaultSlow events. Default 2ms.
	Stall time.Duration
}

// GenerateFaultPlan builds a deterministic fault plan: Faults evenly-spaced
// fault times across Duration, each paired with a revive MTTR later
// (clamped before the next fault, so at most one shard is down at a time
// and the plan composes with MinServing ≥ 1 clusters). The seed picks
// which shard dies; kinds cycle through Kinds in order.
func GenerateFaultPlan(cfg FaultPlanConfig) FaultPlan {
	if cfg.Shards < 1 || cfg.Duration <= 0 {
		return FaultPlan{}
	}
	if cfg.Faults < 1 {
		cfg.Faults = 1
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []FaultKind{FaultCrash, FaultHang}
	}
	if cfg.Stall <= 0 {
		cfg.Stall = 2 * time.Millisecond
	}
	spacing := cfg.Duration / time.Duration(cfg.Faults+1)
	if cfg.MTTR <= 0 {
		cfg.MTTR = spacing / 4
		if cfg.MTTR <= 0 {
			cfg.MTTR = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var plan FaultPlan
	for i := 1; i <= cfg.Faults; i++ {
		at := spacing * time.Duration(i)
		revive := at + cfg.MTTR
		if next := at + spacing; revive >= next {
			revive = at + spacing*3/4
		}
		ev := FaultEvent{
			At: at,
			// Kinds cycle rather than draw randomly so every configured kind
			// is exercised whenever Faults >= len(Kinds) — a chaos run that
			// never crashes (or never hangs) tests half the failover machinery.
			Kind:  cfg.Kinds[(i-1)%len(cfg.Kinds)],
			Shard: rng.Intn(cfg.Shards),
		}
		if ev.Kind == FaultSlow {
			ev.Stall = cfg.Stall
		}
		plan.Events = append(plan.Events, ev, FaultEvent{At: revive, Kind: FaultRevive, Shard: ev.Shard})
	}
	sort.SliceStable(plan.Events, func(i, j int) bool { return plan.Events[i].At < plan.Events[j].At })
	return plan
}

// FaultInjector replays a FaultPlan against a cluster as virtual time
// advances.
type FaultInjector struct {
	c     *Cluster
	plan  FaultPlan
	clock *vclock.Clock
	next  int
}

// NewFaultInjector binds a plan to the cluster and the experiment clock.
func (c *Cluster) NewFaultInjector(plan FaultPlan, clock *vclock.Clock) *FaultInjector {
	return &FaultInjector{c: c, plan: plan, clock: clock}
}

// Advance moves the virtual clock to t and applies every event that became
// due, returning the applied events in order.
func (fi *FaultInjector) Advance(t time.Duration) []FaultEvent {
	now := fi.clock.AdvanceTo(t)
	var applied []FaultEvent
	for fi.next < len(fi.plan.Events) && fi.plan.Events[fi.next].At <= now {
		ev := fi.plan.Events[fi.next]
		fi.next++
		fi.c.applyFault(ev, now)
		applied = append(applied, ev)
	}
	return applied
}

// Done reports whether every event has been applied.
func (fi *FaultInjector) Done() bool { return fi.next >= len(fi.plan.Events) }

func (c *Cluster) applyFault(ev FaultEvent, now time.Duration) {
	switch ev.Kind {
	case FaultCrash:
		c.CrashShard(ev.Shard, now)
	case FaultHang:
		c.HangShard(ev.Shard, now)
	case FaultSlow:
		c.SlowShard(ev.Shard, ev.Stall, now)
	case FaultRevive:
		c.ReviveShard(ev.Shard, now)
	}
}

// faultKindSpan maps a fault kind to its trace span kind.
func faultKindSpan(k FaultKind) trace.Kind {
	switch k {
	case FaultCrash:
		return trace.KindFaultCrash
	case FaultHang:
		return trace.KindFaultHang
	case FaultSlow:
		return trace.KindFaultSlow
	default:
		return trace.KindFaultRevive
	}
}

// recordFault stamps a fault event into the target shard's flight ring at
// its virtual application time, so postmortems carry the fault itself
// alongside the request spans it interrupted.
func (c *Cluster) recordFault(id int, k FaultKind, now time.Duration, arg int64) {
	c.shards[id].flight.Record(trace.Record{
		Shard: int32(id), Kind: faultKindSpan(k), Start: now, End: now, Arg: arg,
	})
}

// CrashShard kills a shard at its replicas' next step boundary. Order
// matters: the shard leaves the routing set before the server crashes, so
// failover resubmissions racing the crash cannot route back onto the
// dying shard; the session sweep then unsticks anything the server-side
// job failure missed.
func (c *Cluster) CrashShard(id int, now time.Duration) {
	c.recordFault(id, FaultCrash, now, 0)
	c.scaler.markDead(id, now)
	// Crash blocks until the shard's replicas exit, so by the time the
	// postmortem snapshots the ring every in-flight request's final spans
	// have landed.
	c.shards[id].server().Crash()
	c.capturePostmortem(id, now, FaultCrash)
	c.failoverShard(id, serving.ErrCrashed)
}

// HangShard freezes a shard's replicas mid-decode without terminating
// anything — the silent fault. Detection and escalation are the health
// monitor's job (see Monitor.Poll). now is the virtual injection time,
// recorded in the shard's flight ring.
func (c *Cluster) HangShard(id int, now time.Duration) {
	c.recordFault(id, FaultHang, now, 0)
	c.shards[id].server().Hang()
}

// SlowShard injects a per-step stall into a shard's replicas, recording
// the injection in the shard's flight ring (Arg = stall in nanoseconds).
func (c *Cluster) SlowShard(id int, stall time.Duration, now time.Duration) {
	c.recordFault(id, FaultSlow, now, int64(stall))
	c.shards[id].server().SetStall(stall)
}

// CheckpointDrafter checkpoints the cluster's drafter through ck and
// records the checkpoint so dead-shard revival can warm-start from it.
// The drafter must be a *draft.Eagle (the trainable drafter); byte sizes
// model the full-scale checkpoint volume (see spot.Checkpointer.Save).
func (c *Cluster) CheckpointDrafter(ck *spot.Checkpointer, trainableBytes, frozenBytes int64) (spot.SaveStats, error) {
	eagle, ok := c.drafter.(*draft.Eagle)
	if !ok {
		return spot.SaveStats{}, fmt.Errorf("cluster: drafter %T is not checkpointable", c.drafter)
	}
	stats, err := ck.Save(eagle, trainableBytes, frozenBytes)
	if err != nil {
		return stats, err
	}
	c.failMu.Lock()
	c.ckpt, c.ckptPath = ck, stats.Path
	c.failMu.Unlock()
	return stats, nil
}

// ReviveShard brings a faulted shard back into the serving set. A
// degraded (slow or hung) shard is restored in place. A dead shard is
// rebuilt warm: a fresh serving.Server over the shared target, drafter
// weights restored from the recorded checkpoint (when one exists), and
// the shard's prefix cache wiped and re-warmed from the hottest retained
// prefixes across the surviving shards.
func (c *Cluster) ReviveShard(id int, now time.Duration) error {
	sh := c.shards[id]
	c.recordFault(id, FaultRevive, now, 0)
	if !sh.server().Crashed() {
		// Degraded, not dead: clear the injected faults and rejoin.
		sh.server().SetStall(0)
		sh.server().Unhang()
		c.scaler.markRecovered(id, now)
		return nil
	}
	// Reclaim the dead server's replica goroutines (idempotent; the crash
	// already initiated shutdown).
	sh.server().Crash()

	if sh.cache != nil {
		// Wipe state from before the crash, then warm-hand-off through the
		// cache fabric (directory-driven selection of the cluster's hottest
		// prefixes, hidden states included; survivor scan without a fabric)
		// — the revived shard starts with a working set instead of a cold
		// cache. The directory drops the dead incarnation's claims first so
		// no entry dangles across the wipe.
		sh.cache.Clear()
		if c.fabric != nil {
			c.fabric.InvalidateShard(sh.id)
		}
		c.warmHandoff(sh)
	}
	drafter, err := c.recoveredDrafter()
	if err != nil {
		return err
	}
	srv, err := serving.New(c.shardServingConfig(sh), c.target, drafter)
	if err != nil {
		return fmt.Errorf("cluster: reviving shard %d: %w", id, err)
	}
	sh.srv.Store(srv)
	c.scaler.markRecovered(id, now)
	return nil
}

// recoveredDrafter returns the drafter a revived shard should serve with:
// a clone restored from the recorded checkpoint when one exists (the
// warm-recovery path), else the shared live drafter.
func (c *Cluster) recoveredDrafter() (draft.Drafter, error) {
	c.failMu.Lock()
	ck, path := c.ckpt, c.ckptPath
	c.failMu.Unlock()
	if ck == nil {
		return c.drafter, nil
	}
	eagle, ok := c.drafter.(*draft.Eagle)
	if !ok {
		return c.drafter, nil
	}
	if err := ck.Wait(); err != nil {
		return nil, fmt.Errorf("cluster: drafter checkpoint write failed: %w", err)
	}
	clone := eagle.Clone()
	if _, err := spot.Load(path, clone); err != nil {
		return nil, fmt.Errorf("cluster: restoring drafter: %w", err)
	}
	return clone, nil
}

// RollingRestart restarts every serving shard in sequence under load:
// each shard is drained (removed from routing, outstanding requests
// allowed to finish), stopped, rebuilt warm, and returned to the serving
// set before the next shard starts — the cluster never loses more than
// one shard of capacity.
func (c *Cluster) RollingRestart(now time.Duration) error {
	for _, sh := range c.shards {
		if coordinator.State(sh.state.Load()) != coordinator.Busy {
			continue
		}
		c.scaler.markDead(sh.id, now)
		// Graceful drain: the router no longer picks the shard; wait for
		// its outstanding requests to finish.
		for sh.outstanding.Load() > 0 && !sh.server().Crashed() {
			time.Sleep(100 * time.Microsecond)
		}
		sh.server().Stop()
		// A graceful restart keeps the cache contents (shardServingConfig
		// rebinds the shared cache object); only release is needed on real
		// hardware.
		drafter, err := c.recoveredDrafter()
		if err != nil {
			return err
		}
		srv, err := serving.New(c.shardServingConfig(sh), c.target, drafter)
		if err != nil {
			return fmt.Errorf("cluster: rolling restart of shard %d: %w", sh.id, err)
		}
		sh.srv.Store(srv)
		c.scaler.markRecovered(sh.id, now)
	}
	return nil
}
