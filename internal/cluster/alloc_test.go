package cluster

import (
	"testing"

	"fastrl/internal/cachefabric"
	"fastrl/internal/prefixcache"
)

// TestRouterZeroAlloc pins the router's steady-state hot path — live-set
// snapshot plus policy pick — at zero heap allocations per routed request
// for every shipped policy, matching the repo's perf methodology
// (ROADMAP: steady-state hot paths stay at 0 allocs/op). The cache-aware
// policy is pinned both cold (least-loaded fallback) and with a warm
// cache (MatchLen probes on every live shard).
func TestRouterZeroAlloc(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	prompt := gen.Pool()[0].Prompt
	warm := NewShardCaches(4, prefixcache.Config{})
	warm[2].Insert(prompt, len(prompt), nil)
	// A fabric whose directory already tracks the prompt: the pin covers
	// the directory-hit path, not just the cold round-robin fallback.
	fabric := cachefabric.New(cachefabric.Config{}, warm)
	fabric.Sync()
	policies := []Policy{
		NewRoundRobin(), NewLeastLoaded(), NewPrefixAffinity(8),
		NewCacheAware(NewShardCaches(4, prefixcache.Config{})), // cold
		NewCacheAware(warm),
		NewFabricAware(cachefabric.New(cachefabric.Config{}, NewShardCaches(4, prefixcache.Config{}))), // cold
		NewFabricAware(fabric),
	}
	for _, p := range policies {
		cfg := clusterConfig(tk, 4, 1)
		cfg.Policy = p
		cl, err := New(cfg, target, e)
		if err != nil {
			t.Fatal(err)
		}
		// Warm once so lazily-grown state (none expected) is excluded.
		cl.PickShard(prompt)
		if avg := testing.AllocsPerRun(1000, func() {
			cl.PickShard(prompt)
		}); avg != 0 {
			t.Errorf("%s: %v allocs/op on the router hot path, want 0", p.Name(), avg)
		}
		cl.Stop()
	}
}

func BenchmarkRouterPick(b *testing.B) {
	target, e, tk, gen := clusterSetup(b)
	prompt := gen.Pool()[0].Prompt
	for _, p := range []Policy{
		NewRoundRobin(), NewLeastLoaded(), NewPrefixAffinity(8),
		NewCacheAware(NewShardCaches(8, prefixcache.Config{})),
	} {
		b.Run(p.Name(), func(b *testing.B) {
			cfg := clusterConfig(tk, 8, 1)
			cfg.Policy = p
			cl, err := New(cfg, target, e)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Stop()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl.PickShard(prompt)
			}
		})
	}
}
