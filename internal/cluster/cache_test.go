package cluster

import (
	"context"
	"reflect"
	"testing"

	"fastrl/internal/prefixcache"
)

// TestCacheAwareFallsBackCold pins the cold-cluster behaviour: with empty
// caches the policy must behave exactly like least-loaded.
func TestCacheAwareFallsBackCold(t *testing.T) {
	caches := NewShardCaches(3, prefixcache.Config{})
	p := NewCacheAware(caches)
	live := []int{0, 1, 2}
	loads := []int{5, 1, 3}
	if got := p.Pick([]int{1, 2, 3}, live, loads); got != 1 {
		t.Fatalf("cold pick = %d, want least-loaded 1", got)
	}
}

// TestCacheAwarePrefersLongestMatch seeds different shard caches with
// different depths of the query prompt and checks the policy follows the
// longest match even against load.
func TestCacheAwarePrefersLongestMatch(t *testing.T) {
	caches := NewShardCaches(3, prefixcache.Config{})
	prompt := []int{1, 2, 3, 4, 5, 6, 7, 8}
	caches[0].Insert(prompt[:3], 3, nil)
	caches[2].Insert(prompt[:6], 6, nil)
	p := NewCacheAware(caches)
	live := []int{0, 1, 2}
	loads := []int{0, 0, 9} // shard 2 is busiest but has the deepest match
	if got := p.Pick(prompt, live, loads); got != 2 {
		t.Fatalf("pick = %d, want deepest-match shard 2", got)
	}
	// Equal matches break toward the lower load.
	caches[0].Insert(prompt[:6], 6, nil)
	if got := p.Pick(prompt, live, []int{4, 0, 2}); got != 2 {
		t.Fatalf("tie pick = %d, want lower-loaded shard 2", got)
	}
}

// TestCacheAwareLoadSlack pins the hotspot guard: once the best-matching
// shard's backlog exceeds the least-loaded one by more than LoadSlack,
// the pick reverts to least-loaded.
func TestCacheAwareLoadSlack(t *testing.T) {
	caches := NewShardCaches(2, prefixcache.Config{})
	prompt := []int{4, 5, 6, 7}
	caches[0].Insert(prompt, len(prompt), nil)
	p := NewCacheAware(caches)
	p.LoadSlack = 3
	live := []int{0, 1}
	if got := p.Pick(prompt, live, []int{3, 0}); got != 0 {
		t.Fatalf("pick = %d, want locality shard 0 within slack", got)
	}
	if got := p.Pick(prompt, live, []int{4, 0}); got != 1 {
		t.Fatalf("pick = %d, want least-loaded 1 beyond slack", got)
	}
}

// TestCacheAwareRespectsLiveSet checks the policy only scores live shards
// (a parked shard's warm cache must not attract traffic).
func TestCacheAwareRespectsLiveSet(t *testing.T) {
	caches := NewShardCaches(3, prefixcache.Config{})
	prompt := []int{9, 8, 7, 6}
	caches[1].Insert(prompt, len(prompt), nil)
	p := NewCacheAware(caches)
	// Shard 1 (the warm one) is not live.
	live := []int{0, 2}
	loads := []int{2, 1}
	got := p.Pick(prompt, live, loads)
	if live[got] == 1 {
		t.Fatal("picked a shard outside the live set")
	}
	if got != 1 { // index 1 in live = shard 2, the least loaded
		t.Fatalf("pick = %d, want least-loaded fallback index 1", got)
	}
}

// TestClusterCacheWiring runs traffic through a cache-aware cluster and
// checks per-shard caches receive inserts, stats surface the probes, and
// repeated prompts concentrate on the shard that served them first.
func TestClusterCacheWiring(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cfg := clusterConfig(tk, 3, 1)
	caches := NewShardCaches(cfg.Shards, prefixcache.Config{})
	cfg.Caches = caches
	cfg.Policy = NewCacheAware(caches)
	cl, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	task := gen.Pool()[3]
	var shards []int
	for i := 0; i < 4; i++ {
		resp, err := cl.Serve(context.Background(), Request{Prompt: task.Prompt, MaxNew: 24, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, resp.Shard)
	}
	// After the first completion the prompt is resident on the serving
	// shard; every later identical prompt must be routed back to it.
	for i := 1; i < len(shards); i++ {
		if shards[i] != shards[0] {
			t.Fatalf("request %d routed to shard %d, want affinity shard %d (routes %v)",
				i, shards[i], shards[0], shards)
		}
	}
	st := cl.Stats()
	if st.CacheSavedPositions == 0 {
		t.Fatal("no prefill positions saved cluster-wide")
	}
	var withBytes int
	for _, ss := range st.Shards {
		if ss.CacheBytes > 0 {
			withBytes++
		}
	}
	if withBytes == 0 {
		t.Fatal("no shard reports resident cache bytes")
	}
}

// TestClusterCacheMismatch pins the Caches/Shards validation.
func TestClusterCacheMismatch(t *testing.T) {
	target, e, tk, _ := clusterSetup(t)
	cfg := clusterConfig(tk, 3, 1)
	cfg.Caches = NewShardCaches(2, prefixcache.Config{})
	if _, err := New(cfg, target, e); err == nil {
		t.Fatal("expected cache/shard count mismatch error")
	}
}

// TestCacheAwareDeterministic replays the same sequential request stream
// through two identically-configured cache-aware clusters and requires
// identical routing and identical response tokens — the seed-determinism
// property the bench experiment relies on.
func TestCacheAwareDeterministic(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)

	run := func() ([]int, [][]int) {
		cfg := clusterConfig(tk, 3, 1)
		caches := NewShardCaches(cfg.Shards, prefixcache.Config{})
		cfg.Caches = caches
		cfg.Policy = NewCacheAware(caches)
		cl, err := New(cfg, target, e.Clone())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Stop()
		var shards []int
		var tokens [][]int
		for i := 0; i < 12; i++ {
			task := gen.Pool()[i%4]
			resp, err := cl.Serve(context.Background(), Request{
				Prompt: task.Prompt, MaxNew: 16, Seed: int64(i * 7),
			})
			if err != nil {
				t.Fatal(err)
			}
			shards = append(shards, resp.Shard)
			tokens = append(tokens, resp.Tokens)
		}
		return shards, tokens
	}

	s1, t1 := run()
	s2, t2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("routing diverged: %v vs %v", s1, s2)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("response tokens diverged under identical seeds")
	}
}
