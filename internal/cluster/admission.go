package cluster

import (
	"fmt"
	"time"
)

// AdmissionConfig bounds each shard's request backlog.
type AdmissionConfig struct {
	// MaxPending caps a shard's admitted-but-unfinished requests;
	// requests routed to a shard at the cap are shed. The cap is enforced
	// by atomic slot reservation, so it holds exactly under concurrent
	// submits. Default 64.
	MaxPending int
	// SvcAlpha is the EWMA coefficient for the shard's per-request service
	// time estimate (the weight of the newest sample). Default 0.2.
	SvcAlpha float64
	// BurnShed, when > 0, makes admission shed earlier while the shard is
	// burning its SLO error budget fast: while the shard's fast-window
	// burn rate (slo.Engine.BurnRate) is at or above this threshold, the
	// effective backlog cap drops to MaxPending/2, so the overloaded shard
	// drains the queue it already has instead of stacking more latency
	// behind the problem. 0 (the default) disables burn-aware shedding;
	// it only takes effect when the cluster has SLO specs configured.
	BurnShed float64
}

func (a AdmissionConfig) withDefaults() AdmissionConfig {
	if a.MaxPending < 1 {
		a.MaxPending = 64
	}
	if a.SvcAlpha <= 0 || a.SvcAlpha > 1 {
		a.SvcAlpha = 0.2
	}
	return a
}

// ErrShedded reports a request rejected by admission control. It is a
// typed error so callers can distinguish load shedding (retryable, with a
// hint) from hard failures.
type ErrShedded struct {
	// Shard is the shard that shed the request.
	Shard int
	// Pending is the shard's outstanding request count at shed time.
	Pending int
	// RetryAfter estimates when the shard expects to have drained enough
	// to admit the request.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ErrShedded) Error() string {
	return fmt.Sprintf("cluster: shard %d shed request (pending %d, retry after %v)",
		e.Shard, e.Pending, e.RetryAfter)
}

// admit applies the shard's admission policy for a request that has just
// reserved an outstanding slot: n is the reserved count including this
// request, deadline its latency budget (0 = none). It returns nil when
// the request may enter the shard's queue, or *ErrShedded (in which case
// the caller releases the reservation). Because n comes from an atomic
// reservation rather than a load probe, the MaxPending cap holds exactly
// under concurrent submits.
func (sh *shard) admit(n int, deadline time.Duration, cfg AdmissionConfig) error {
	backlog := n - 1 // requests ahead of this one
	svc := sh.svcEstimate()
	replicas := sh.server().Replicas()
	maxPending := cfg.MaxPending
	if cfg.BurnShed > 0 && sh.slo.BurnRate() >= cfg.BurnShed {
		// Burn-aware shedding: the shard's fast window says the error
		// budget is torching, so stop queueing behind the problem — halve
		// the backlog cap until the burn cools below the threshold.
		maxPending = (cfg.MaxPending + 1) / 2
	}
	if n > maxPending {
		// Queue-bound shedding: retry once the backlog beyond the cap has
		// drained through the shard's replicas.
		excess := n - maxPending
		return &ErrShedded{
			Shard:      sh.id,
			Pending:    backlog,
			RetryAfter: scaleDur(svc, float64(excess)/float64(replicas)),
		}
	}
	if deadline > 0 && svc > 0 {
		// Deadline-aware shedding: the expected wait behind the backlog
		// already blows the budget, so failing now lets the client retry
		// elsewhere instead of burning a queue slot.
		estWait := scaleDur(svc, float64(backlog)/float64(replicas))
		if estWait+svc > deadline {
			return &ErrShedded{Shard: sh.id, Pending: backlog, RetryAfter: estWait + svc - deadline}
		}
	}
	return nil
}

func scaleDur(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}
