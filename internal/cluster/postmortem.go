// Postmortem captures: when a shard dies or degrades, its flight-recorder
// ring is snapshotted into a bounded per-cluster log, so every chaos fault
// leaves a capture of the spans (and fault markers) that led up to it —
// the in-memory analogue of pulling a crashed worker's trace buffer.
package cluster

import (
	"fmt"
	"strings"
	"time"

	"fastrl/internal/trace"
)

// Postmortem is one captured flight-recorder snapshot, taken when a shard
// crashed (injected, detected server-side, or escalated from a hang) or
// was degraded out of the routing set.
type Postmortem struct {
	// Shard is the shard the capture was taken from.
	Shard int
	// At is the virtual time of the triggering transition.
	At time.Duration
	// Reason is the fault class that triggered the capture: FaultCrash for
	// death (including hang escalation), FaultSlow for degradation.
	Reason FaultKind
	// Records is the ring snapshot, oldest first — the newest spans the
	// shard recorded before the capture, including fault markers.
	Records []trace.Record
}

// String renders a compact human-readable dump for failure reports.
func (p Postmortem) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "postmortem shard %d at %v (%v), %d records:\n",
		p.Shard, p.At, p.Reason, len(p.Records))
	for _, r := range p.Records {
		fmt.Fprintf(&b, "  req=%-6d %-12s [%v → %v] arg=%d\n",
			r.ReqID, r.Kind, r.Start, r.End, r.Arg)
	}
	return b.String()
}

// maxPostmortems bounds the capture log: chaos runs inject a handful of
// faults, so 32 keeps every capture while still bounding memory if a
// monitor loop degrades the same shard repeatedly.
const maxPostmortems = 32

// capturePostmortem snapshots shard id's flight ring into the postmortem
// log. Oldest captures win when the bound is hit — the first faults of a
// cascade are the interesting ones.
func (c *Cluster) capturePostmortem(id int, at time.Duration, reason FaultKind) {
	recs := c.shards[id].flight.Snapshot()
	c.pmMu.Lock()
	if len(c.postmortems) < maxPostmortems {
		c.postmortems = append(c.postmortems, Postmortem{
			Shard: id, At: at, Reason: reason, Records: recs,
		})
	}
	c.pmMu.Unlock()
}

// Postmortems returns the captures taken so far, oldest first.
func (c *Cluster) Postmortems() []Postmortem {
	c.pmMu.Lock()
	out := make([]Postmortem, len(c.postmortems))
	copy(out, c.postmortems)
	c.pmMu.Unlock()
	return out
}
