package cluster

import (
	"sync/atomic"

	"fastrl/internal/cachefabric"
	"fastrl/internal/prefixcache"
)

// Policy picks a shard for a request out of the live serving set. Pick is
// the router hot path: implementations must not allocate and must be safe
// for concurrent use.
type Policy interface {
	Name() string
	// Pick returns an index into live. live holds the IDs of the shards
	// currently accepting traffic (never empty) in ascending order, and
	// loads[i] is live[i]'s outstanding request count (queued + inflight).
	Pick(prompt []int, live []int, loads []int) int
}

// RoundRobin cycles requests uniformly over the live shards.
type RoundRobin struct {
	n atomic.Uint64
}

// NewRoundRobin builds the round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(prompt []int, live []int, loads []int) int {
	return int((p.n.Add(1) - 1) % uint64(len(live)))
}

// LeastLoaded sends each request to the shard with the fewest outstanding
// requests, tie-broken toward the lowest shard ID.
type LeastLoaded struct{}

// NewLeastLoaded builds the queue-depth-weighted policy.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Policy.
func (p *LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (p *LeastLoaded) Pick(prompt []int, live []int, loads []int) int {
	best := 0
	for i := 1; i < len(loads); i++ {
		if loads[i] < loads[best] {
			best = i
		}
	}
	return best
}

// PrefixAffinity pins requests that share a prompt prefix to the same
// shard via rendezvous (highest-random-weight) hashing over shard IDs.
// Related requests then hit the shard whose drafter context — harvested
// n-grams, warmed CUDA graphs — already matches them, and because the
// weight is a pure function of (prefix hash, shard ID), a shard joining or
// leaving the live set only moves the prefixes that scored it highest;
// everything else stays put.
type PrefixAffinity struct {
	// PrefixLen is how many leading prompt tokens define the affinity key.
	PrefixLen int
}

// NewPrefixAffinity builds the policy; prefixLen < 1 defaults to 8.
func NewPrefixAffinity(prefixLen int) *PrefixAffinity {
	if prefixLen < 1 {
		prefixLen = 8
	}
	return &PrefixAffinity{PrefixLen: prefixLen}
}

// Name implements Policy.
func (p *PrefixAffinity) Name() string { return "prefix-affinity" }

// Pick implements Policy.
func (p *PrefixAffinity) Pick(prompt []int, live []int, loads []int) int {
	h := hashPrefix(prompt, p.PrefixLen)
	best, bestW := 0, rendezvousWeight(h, live[0])
	for i := 1; i < len(live); i++ {
		if w := rendezvousWeight(h, live[i]); w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// hashPrefix is FNV-1a over the first n prompt tokens with an avalanche
// finaliser.
func hashPrefix(prompt []int, n int) uint64 {
	if n > len(prompt) {
		n = len(prompt)
	}
	h := uint64(14695981039346656037)
	for _, t := range prompt[:n] {
		h ^= uint64(uint32(t))
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// CacheAware routes each request to the shard whose prefix cache already
// covers the longest prefix of its prompt — the measurement-driven
// successor to PrefixAffinity: instead of hashing a fixed-length prefix
// blindly, it probes every live shard's cache (MatchLen, allocation-free)
// and scores by expected matched-prefix length, i.e. by prefill work the
// shard would actually skip. Ties break toward the lower-loaded shard, and
// when no shard has any of the prompt cached the policy degrades to
// least-loaded, so a cold cluster behaves exactly like NewLeastLoaded and
// the first completion seeds the affinity that later picks exploit.
type CacheAware struct {
	caches []*prefixcache.Cache
	ll     LeastLoaded
	// LoadSlack bounds how much extra backlog the best-matching shard may
	// carry over the least-loaded live shard before the pick reverts to
	// least-loaded: prefix locality is worth a bounded queue, not a
	// hotspot. Default 16 outstanding requests.
	LoadSlack int
}

// NewCacheAware builds the policy over per-shard caches, indexed by shard
// ID (caches[id] is shard id's cache; it must cover every shard the
// cluster can route to). The caches are typically the same instances
// passed to cluster Config.Caches.
func NewCacheAware(caches []*prefixcache.Cache) *CacheAware {
	return &CacheAware{caches: caches, LoadSlack: 16}
}

// Name implements Policy.
func (p *CacheAware) Name() string { return "cache-aware" }

// Pick implements Policy.
func (p *CacheAware) Pick(prompt []int, live []int, loads []int) int {
	best, bestMatch := -1, 0
	minLoad := loads[0]
	for _, l := range loads[1:] {
		if l < minLoad {
			minLoad = l
		}
	}
	for i, id := range live {
		m := 0
		if id < len(p.caches) && p.caches[id] != nil {
			m = p.caches[id].MatchLen(prompt)
		}
		if m > bestMatch || (m == bestMatch && best >= 0 && m > 0 && loads[i] < loads[best]) {
			best, bestMatch = i, m
		}
	}
	if best < 0 || loads[best]-minLoad > p.LoadSlack {
		// Cold prompt, or the locality shard is already a hotspot: balance
		// load instead (the miss re-seeds the prefix on the new shard).
		return p.ll.Pick(prompt, live, loads)
	}
	return best
}

// FabricAware routes against the cluster cache fabric's prefix
// directory instead of probing every shard's cache: one directory
// lookup per request (rolling hash over the prompt, zero allocations)
// returns the set of shards already holding the longest known prefix,
// and the pick is the least-loaded live holder, rotating round-robin
// among equally-loaded holders. Because the fabric replicates hot
// prefixes to every shard, the holder set converges to the whole live
// set for genuinely hot templates — so locality stops concentrating
// load on whichever shard happened to warm up first, the failure mode
// CacheAware's LoadSlack merely bounds. Unknown prompts fall back to
// round-robin (seeding the prefix on a shard the next Sync registers),
// and a holder hotspot beyond LoadSlack falls back the same way.
type FabricAware struct {
	fabric *cachefabric.Fabric
	rr     RoundRobin
	tie    atomic.Uint64
	// LoadSlack bounds how much extra backlog a holder may carry over the
	// least-loaded live shard before the pick reverts to round-robin.
	// Default 16, matching CacheAware.
	LoadSlack int
}

// NewFabricAware builds the policy over the cluster's fabric
// (Cluster.Fabric after configuring cluster Config.Fabric).
func NewFabricAware(f *cachefabric.Fabric) *FabricAware {
	return &FabricAware{fabric: f, LoadSlack: 16}
}

// Name implements Policy.
func (p *FabricAware) Name() string { return "fabric-aware" }

// Pick implements Policy.
func (p *FabricAware) Pick(prompt []int, live []int, loads []int) int {
	holders, matched := p.fabric.Lookup(prompt)
	if matched == 0 {
		return p.rr.Pick(prompt, live, loads)
	}
	minHolder, minLive, ties := -1, loads[0], 0
	for i, id := range live {
		if loads[i] < minLive {
			minLive = loads[i]
		}
		if id < 64 && holders&(1<<uint(id)) != 0 {
			switch {
			case minHolder < 0 || loads[i] < minHolder:
				minHolder, ties = loads[i], 1
			case loads[i] == minHolder:
				ties++
			}
		}
	}
	if minHolder < 0 || minHolder-minLive > p.LoadSlack {
		// No live holder, or every holder is a hotspot: balance load and
		// let the miss re-seed the prefix where it lands.
		return p.rr.Pick(prompt, live, loads)
	}
	// Rotate among the equally-least-loaded holders so replicated
	// prefixes spread work instead of re-creating the warm-shard hotspot.
	nth := int((p.tie.Add(1) - 1) % uint64(ties))
	for i, id := range live {
		if id < 64 && holders&(1<<uint(id)) != 0 && loads[i] == minHolder {
			if nth == 0 {
				return i
			}
			nth--
		}
	}
	return p.rr.Pick(prompt, live, loads)
}

// rendezvousWeight mixes a prefix hash with a shard ID (splitmix64
// finaliser) for highest-random-weight selection.
func rendezvousWeight(h uint64, shard int) uint64 {
	x := h ^ (uint64(shard)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
