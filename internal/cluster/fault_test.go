package cluster

import (
	"testing"
	"time"

	"fastrl/internal/coordinator"
	"fastrl/internal/vclock"
)

// TestGenerateFaultPlan pins the plan generator's structural invariants:
// events sorted by time, every fault paired with a later revive on the
// same shard, at most one shard down at any instant, kinds cycling
// through the configured set, and determinism under a fixed seed.
func TestGenerateFaultPlan(t *testing.T) {
	cfg := FaultPlanConfig{
		Seed:     42,
		Shards:   4,
		Duration: 10 * time.Second,
		Faults:   5,
		Kinds:    []FaultKind{FaultCrash, FaultHang, FaultSlow},
	}
	plan := GenerateFaultPlan(cfg)
	if got, want := len(plan.Events), 2*cfg.Faults; got != want {
		t.Fatalf("plan has %d events, want %d", got, want)
	}
	down := -1 // shard currently down, -1 when none
	var kinds []FaultKind
	for i, ev := range plan.Events {
		if i > 0 && ev.At < plan.Events[i-1].At {
			t.Fatalf("events not sorted: %v after %v", ev, plan.Events[i-1])
		}
		if ev.Shard < 0 || ev.Shard >= cfg.Shards {
			t.Fatalf("event %v targets shard out of range", ev)
		}
		if ev.Kind == FaultRevive {
			if down != ev.Shard {
				t.Fatalf("revive for shard %d but shard %d is down", ev.Shard, down)
			}
			down = -1
			continue
		}
		if down != -1 {
			t.Fatalf("fault %v while shard %d still down — plan must keep one shard down at a time", ev, down)
		}
		down = ev.Shard
		kinds = append(kinds, ev.Kind)
		if ev.Kind == FaultSlow && ev.Stall <= 0 {
			t.Fatalf("slow fault without a stall: %v", ev)
		}
	}
	if down != -1 {
		t.Fatalf("plan ends with shard %d still down", down)
	}
	for i, k := range kinds {
		if want := cfg.Kinds[i%len(cfg.Kinds)]; k != want {
			t.Fatalf("fault %d kind = %v, want %v (kinds must cycle)", i, k, want)
		}
	}
	again := GenerateFaultPlan(cfg)
	for i := range plan.Events {
		if plan.Events[i] != again.Events[i] {
			t.Fatalf("plan not deterministic at event %d: %v vs %v", i, plan.Events[i], again.Events[i])
		}
	}
}

// TestFaultInjectorAdvance drives a crash/revive plan through the
// injector against a live cluster and checks the shard actually dies and
// comes back as virtual time passes the event points.
func TestFaultInjectorAdvance(t *testing.T) {
	target, e, tk, _ := clusterSetup(t)
	cl, err := New(failoverConfig(tk, 2, 1), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	plan := FaultPlan{Events: []FaultEvent{
		{At: 100 * time.Millisecond, Kind: FaultCrash, Shard: 0},
		{At: 200 * time.Millisecond, Kind: FaultRevive, Shard: 0},
	}}
	clock := &vclock.Clock{}
	fi := cl.NewFaultInjector(plan, clock)

	if applied := fi.Advance(50 * time.Millisecond); len(applied) != 0 {
		t.Fatalf("events applied before due: %v", applied)
	}
	applied := fi.Advance(150 * time.Millisecond)
	if len(applied) != 1 || applied[0].Kind != FaultCrash {
		t.Fatalf("Advance(150ms) applied %v, want the crash", applied)
	}
	if !cl.shards[0].server().Crashed() {
		t.Fatal("shard 0 not crashed after its fault fired")
	}
	if st := cl.Scaler().coord.State(0); st != coordinator.Dead {
		t.Fatalf("shard 0 state = %v, want Dead", st)
	}
	if fi.Done() {
		t.Fatal("injector done with the revive still pending")
	}
	applied = fi.Advance(300 * time.Millisecond)
	if len(applied) != 1 || applied[0].Kind != FaultRevive {
		t.Fatalf("Advance(300ms) applied %v, want the revive", applied)
	}
	if cl.shards[0].server().Crashed() {
		t.Fatal("shard 0 still crashed after revive")
	}
	if st := cl.Scaler().coord.State(0); st != coordinator.Busy {
		t.Fatalf("shard 0 state = %v, want Busy after revive", st)
	}
	if !fi.Done() {
		t.Fatal("injector not done after all events applied")
	}
}
