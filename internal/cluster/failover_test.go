package cluster

import (
	"context"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"fastrl/internal/coordinator"
	"fastrl/internal/gpu"
	"fastrl/internal/prefixcache"
	"fastrl/internal/rollout"
	"fastrl/internal/serving"
	"fastrl/internal/specdec"
	"fastrl/internal/spot"
	"fastrl/internal/tokenizer"
)

// failoverConfig pins one SD strategy (like serving's
// fixedStrategyServerConfig) so a request's token stream depends only on
// its private seed — the property that makes a failover replay
// bit-identical regardless of what else the surviving shard is decoding.
func failoverConfig(tk *tokenizer.Tokenizer, shards, replicas int) Config {
	ecfg := rollout.DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	ecfg.SDThreshold = 0
	ecfg.Strategies = []specdec.Params{{DraftDepth: 6, TopK: 6, TokensToVerify: 24}}
	ecfg.MAB.Thresholds = []int{1}
	return Config{
		Shards:   shards,
		Shard:    serving.Config{Engine: ecfg, Replicas: replicas, MaxBatch: 8, AnswerID: tk.Answer(), EosID: tk.Eos()},
		Failover: FailoverConfig{Enabled: true},
	}
}

// streamedResult is everything a client observes from one stream.
type streamedResult struct {
	tokens  []int
	accepts int
	usage   serving.Response
}

// driveStream pulls a stream to EOF. When firstChunk/proceed are non-nil
// it signals after delivering the first token chunk and then parks until
// proceed closes — the hook the fault tests use to land a fault strictly
// after partial delivery.
func driveStream(st *Stream, firstChunk chan<- struct{}, proceed <-chan struct{}) streamedResult {
	var res streamedResult
	first := false
	for {
		ev, err := st.Recv()
		if err != nil {
			return res
		}
		switch ev.Kind {
		case serving.EventTokens:
			res.tokens = append(res.tokens, ev.Tokens...)
			if !first {
				first = true
				if firstChunk != nil {
					firstChunk <- struct{}{}
					<-proceed
				}
			}
		case serving.EventAccept:
			res.accepts++
		case serving.EventUsage:
			res.usage = ev.Usage
		}
	}
}

// runFailoverScenario serves the given requests on a fresh 2-shard
// cluster, calls fault (if non-nil) once every stream has delivered its
// first token chunk, and returns each request's fully drained stream.
func runFailoverScenario(t *testing.T, reqs []Request, fault func(cl *Cluster)) ([]streamedResult, Stats) {
	t.Helper()
	target, e, tk, _ := clusterSetup(t)
	cl, err := New(failoverConfig(tk, 2, 1), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if fault != nil {
		// Stall shard 0 so its requests are still decoding when the fault
		// lands: first-chunk delivery then becomes a guarantee of a
		// mid-flight fault, not a race against completion.
		cl.SlowShard(0, 20*time.Millisecond, 0)
	}

	results := make([]streamedResult, len(reqs))
	firstChunk := make(chan struct{}, len(reqs))
	proceed := make(chan struct{})
	if fault == nil {
		firstChunk = nil
	}
	var wg sync.WaitGroup
	for i, req := range reqs {
		st, err := cl.Stream(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, st *Stream) {
			defer wg.Done()
			var fc chan<- struct{}
			if firstChunk != nil {
				fc = firstChunk
			}
			results[i] = driveStream(st, fc, proceed)
		}(i, st)
	}
	if fault != nil {
		for range reqs {
			<-firstChunk
		}
		fault(cl)
		close(proceed)
	}
	wg.Wait()
	return results, cl.Stats()
}

// TestFailoverStreamEquivalence pins the failover determinism invariant:
// for both fault types (crash, monitor-escalated hang) every delivered
// stream — token chunks and terminal usage — is bit-identical to an
// unfailed run under the same seeds, with zero duplicate deliveries. The
// replay regenerates the stream from the request's private RNG and
// prompt; the session suppresses the already-delivered prefix.
func TestFailoverStreamEquivalence(t *testing.T) {
	_, _, _, gen := clusterSetup(t)
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{
			Prompt: gen.Pool()[i].Prompt,
			MaxNew: 48,
			Seed:   int64(100 + i),
		})
	}

	ref, refStats := runFailoverScenario(t, reqs, nil)
	for i, r := range ref {
		if r.usage.Err != nil {
			t.Fatalf("reference request %d failed: %v", i, r.usage.Err)
		}
		if len(r.tokens) == 0 {
			t.Fatalf("reference request %d streamed no tokens", i)
		}
	}
	if refStats.Failovers != 0 {
		t.Fatalf("reference run failed over %d times", refStats.Failovers)
	}

	faults := map[string]func(cl *Cluster){
		"crash": func(cl *Cluster) {
			cl.CrashShard(0, time.Second)
		},
		"hang": func(cl *Cluster) {
			// A hang terminates nothing by itself; the health monitor must
			// notice the stalled step counter and escalate to a crash.
			cl.HangShard(0, time.Second)
			mon := cl.NewMonitor(MonitorConfig{HangPolls: 2})
			deadline := time.Now().Add(10 * time.Second)
			for escalated := false; !escalated; {
				if time.Now().After(deadline) {
					t.Fatal("monitor never escalated the hang")
				}
				time.Sleep(2 * time.Millisecond)
				for _, ev := range mon.Poll(time.Second) {
					if ev.Shard == 0 && ev.Kind == FaultCrash {
						escalated = true
					}
				}
			}
		},
	}
	for name, fault := range faults {
		t.Run(name, func(t *testing.T) {
			got, stats := runFailoverScenario(t, reqs, fault)
			for i := range reqs {
				if got[i].usage.Err != nil {
					t.Fatalf("request %d failed across %s: %v", i, name, got[i].usage.Err)
				}
				if len(got[i].tokens) != len(ref[i].tokens) {
					t.Fatalf("request %d: streamed %d tokens, reference %d",
						i, len(got[i].tokens), len(ref[i].tokens))
				}
				for j := range ref[i].tokens {
					if got[i].tokens[j] != ref[i].tokens[j] {
						t.Fatalf("request %d: streamed token %d differs from reference", i, j)
					}
				}
				if len(got[i].usage.Tokens) != len(ref[i].usage.Tokens) {
					t.Fatalf("request %d: usage %d tokens, reference %d",
						i, len(got[i].usage.Tokens), len(ref[i].usage.Tokens))
				}
				for j := range ref[i].usage.Tokens {
					if got[i].usage.Tokens[j] != ref[i].usage.Tokens[j] {
						t.Fatalf("request %d: usage token %d differs from reference", i, j)
					}
				}
				if got[i].usage.AcceptLen != ref[i].usage.AcceptLen {
					t.Fatalf("request %d: accept length %v, reference %v",
						i, got[i].usage.AcceptLen, ref[i].usage.AcceptLen)
				}
				if got[i].accepts != ref[i].accepts {
					t.Fatalf("request %d: %d accept events, reference %d",
						i, got[i].accepts, ref[i].accepts)
				}
			}
			if stats.Failovers == 0 {
				t.Fatal("fault landed but nothing failed over")
			}
			if stats.DuplicateDeliveries != 0 {
				t.Fatalf("%d duplicate deliveries, want 0", stats.DuplicateDeliveries)
			}
			if stats.Errored != 0 {
				t.Fatalf("%d requests errored, want 0", stats.Errored)
			}
		})
	}
}

// TestStopIdempotent pins that cluster.Stop and the shard servers' Stop
// are idempotent and safe concurrently with each other and with
// failover-driven teardown (CrashShard racing Stop).
func TestStopIdempotent(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cl, err := New(failoverConfig(tk, 2, 1), target, e)
	if err != nil {
		t.Fatal(err)
	}
	// Seed some inflight work so teardown really races live requests.
	for i := 0; i < 4; i++ {
		if _, err := cl.Stream(context.Background(), Request{
			Prompt: gen.Pool()[i].Prompt, MaxNew: 32, Seed: int64(i + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); cl.Stop() }()
	}
	wg.Add(2)
	go func() { defer wg.Done(); cl.CrashShard(0, time.Second) }()
	go func() { defer wg.Done(); cl.shards[1].server().Stop() }()
	wg.Wait()
	cl.Stop() // still safe after everything settled
	if _, err := cl.Stream(context.Background(), Request{Prompt: gen.Pool()[0].Prompt, MaxNew: 8}); err == nil {
		t.Fatal("expected error after stop")
	}
}

// TestWarmRecovery pins dead-shard revival: the rebuilt shard comes back
// with drafter weights restored from the spot checkpoint and a prefix
// cache re-warmed from the survivors' hottest prefixes, and rejoins the
// serving set.
func TestWarmRecovery(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cfg := failoverConfig(tk, 2, 1)
	cfg.Caches = NewShardCaches(2, prefixcache.Config{})
	cl, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	dir, err := os.MkdirTemp("", "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ck := spot.NewCheckpointer(dir, spot.SelectiveAsync)
	if _, err := cl.CheckpointDrafter(ck, 1<<20, 4<<20); err != nil {
		t.Fatal(err)
	}
	// Nudge the live drafter after the checkpoint so restore-from-ckpt is
	// observable as "the revived shard got the checkpointed weights".
	preVersion := e.Version

	serveSome := func(n int, seedBase int64) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := cl.Serve(context.Background(), Request{
				Prompt: gen.Pool()[i%len(gen.Pool())].Prompt, MaxNew: 32, Seed: seedBase + int64(i),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	serveSome(8, 100)

	cl.CrashShard(0, time.Second)
	if got := cl.Scaler().ServingShards(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("serving shards after crash = %v, want [1]", got)
	}
	serveSome(4, 200) // survivors keep serving (and keep the cache warm)

	if err := cl.ReviveShard(0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := cl.Scaler().ServingShards(); len(got) != 2 {
		t.Fatalf("serving shards after revival = %v, want both", got)
	}
	if cfg.Caches[0].ResidentBytes() == 0 {
		t.Fatal("revived shard's cache was not re-warmed")
	}
	revived := cl.shards[0].server()
	if revived.Crashed() {
		t.Fatal("revived shard still marked crashed")
	}
	serveSome(8, 300)
	st := cl.Stats()
	if st.Shards[0].Served == 0 {
		t.Fatal("revived shard served nothing")
	}
	if e.Version != preVersion {
		t.Fatalf("live drafter version moved from %d to %d during recovery", preVersion, e.Version)
	}
	if st.Errored != 0 || st.DuplicateDeliveries != 0 {
		t.Fatalf("errored=%d dups=%d after recovery, want 0/0", st.Errored, st.DuplicateDeliveries)
	}
}

// TestRollingRestart pins rolling-restart under sustained load: every
// shard is drained and rebuilt in sequence while traffic keeps flowing,
// no request is lost, and the full serving set survives.
func TestRollingRestart(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cl, err := New(failoverConfig(tk, 2, 1), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	stop := make(chan struct{})
	var served, failed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := cl.Serve(context.Background(), Request{
					Prompt: gen.Pool()[rng.Intn(len(gen.Pool()))].Prompt,
					MaxNew: 24,
					Seed:   int64(w*1000 + i),
				})
				mu.Lock()
				if err != nil {
					failed++
				} else {
					served++
				}
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	if err := cl.RollingRestart(time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if got := cl.Scaler().ServingShards(); len(got) != 2 {
		t.Fatalf("serving shards after rolling restart = %v, want both", got)
	}
	for _, sh := range cl.shards {
		if coordinator.State(sh.state.Load()) != coordinator.Busy {
			t.Fatalf("shard %d not Busy after rolling restart", sh.id)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if served == 0 {
		t.Fatal("no traffic served across the rolling restart")
	}
	if failed != 0 {
		t.Fatalf("%d requests failed across the rolling restart", failed)
	}
}
