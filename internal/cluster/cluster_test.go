package cluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"fastrl/internal/coordinator"
	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/rollout"
	"fastrl/internal/serving"
	"fastrl/internal/tokenizer"
	"fastrl/internal/workload"
)

// clusterSetup builds a small target + trained Eagle drafter pair shared
// by the cluster tests (the serving package's setup, scaled down).
func clusterSetup(t testing.TB) (*model.LM, *draft.Eagle, *tokenizer.Tokenizer, *workload.TaskGen) {
	t.Helper()
	tk := tokenizer.New()
	cfg := model.DefaultConfig(tk.VocabSize(), gpu.Qwen7B)
	cfg.Buckets = 1 << 10
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	target := model.New(cfg, &model.GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})
	gen := workload.NewTaskGen(tk, 32, 9)

	e := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	rng := rand.New(rand.NewSource(10))
	var examples []*draft.Example
	for _, task := range gen.SampleSeeded(20, 11) {
		seq := model.Generate(target, task.Prompt, nil, 0.9, 40, tk.Eos(), rng)
		examples = append(examples, draft.HarvestExamples(target,
			model.Context{Tokens: seq, PromptLen: len(task.Prompt)}, true)...)
	}
	for i := 0; i < 2; i++ {
		e.Train(examples, nil, rng)
	}
	return target, e, tk, gen
}

func clusterConfig(tk *tokenizer.Tokenizer, shards, replicas int) Config {
	ecfg := rollout.DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	ecfg.SDThreshold = 0
	return Config{
		Shards: shards,
		Shard:  serving.Config{Engine: ecfg, Replicas: replicas, AnswerID: tk.Answer(), EosID: tk.Eos()},
	}
}

func TestClusterServeBasic(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cl, err := New(clusterConfig(tk, 2, 1), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	task := gen.Pool()[0]
	resp, err := cl.Serve(context.Background(), Request{Prompt: task.Prompt, MaxNew: 48, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tokens) == 0 {
		t.Fatal("empty completion")
	}
	if resp.Shard < 0 || resp.Shard >= cl.Shards() {
		t.Fatalf("shard %d out of range", resp.Shard)
	}
	if resp.AcceptLen < 1 {
		t.Fatalf("SD accept length %v", resp.AcceptLen)
	}
	st := cl.Stats()
	if st.Served != 1 || st.Shed != 0 {
		t.Fatalf("stats served=%d shed=%d, want 1/0", st.Served, st.Shed)
	}
	if st.P50 <= 0 {
		t.Fatalf("p50 = %v", st.P50)
	}
	if st.MeanAcceptLen < 1 {
		t.Fatalf("cluster accept length %v", st.MeanAcceptLen)
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	target, e, tk, _ := clusterSetup(t)
	if _, err := New(Config{}, target, e); err == nil {
		t.Fatal("expected error for zero shards")
	}
	cfg := clusterConfig(tk, 2, 1)
	cfg.Shard.Engine.Device = nil
	if _, err := New(cfg, target, e); err == nil {
		t.Fatal("expected error for missing device")
	}
}

func TestSubmitAfterStop(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cl, err := New(clusterConfig(tk, 2, 1), target, e)
	if err != nil {
		t.Fatal(err)
	}
	cl.Stop()
	cl.Stop() // idempotent
	if _, err := cl.Submit(context.Background(), Request{Prompt: gen.Pool()[0].Prompt, MaxNew: 8}); err == nil {
		t.Fatal("expected error after stop")
	}
}

// TestClusterDeterministic pins the acceptance criterion that cluster
// serving output is deterministic under fixed seeds: the same arrival
// trace replayed through a fresh cluster (greedy decoding, affinity
// routing) produces token-identical responses on identical shards.
func TestClusterDeterministic(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	arrivals := workload.GenerateArrivals(workload.ArrivalConfig{
		Duration:   2 * time.Second,
		RatePerSec: 8,
		Tasks:      len(gen.Pool()),
		Lengths:    workload.DefaultLengthSampler(48),
		Seed:       5,
	})
	if len(arrivals) < 4 {
		t.Fatalf("trace too small: %d arrivals", len(arrivals))
	}

	replay := func() ([][]int, []int) {
		cfg := clusterConfig(tk, 3, 1)
		cfg.Shard.Engine.Temp = 0
		cfg.Policy = NewPrefixAffinity(4)
		cl, err := New(cfg, target, e)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Stop()
		var tokens [][]int
		var shards []int
		for _, a := range arrivals {
			resp, err := cl.Serve(context.Background(), Request{
				Prompt: gen.Pool()[a.Task].Prompt,
				MaxNew: 32,
				Seed:   a.Seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			tokens = append(tokens, resp.Tokens)
			shards = append(shards, resp.Shard)
		}
		return tokens, shards
	}

	tokA, shA := replay()
	tokB, shB := replay()
	for i := range tokA {
		if shA[i] != shB[i] {
			t.Fatalf("request %d routed to shard %d then %d", i, shA[i], shB[i])
		}
		if len(tokA[i]) != len(tokB[i]) {
			t.Fatalf("request %d: %d vs %d tokens", i, len(tokA[i]), len(tokB[i]))
		}
		for j := range tokA[i] {
			if tokA[i][j] != tokB[i][j] {
				t.Fatalf("request %d token %d differs", i, j)
			}
		}
	}
}

// TestScalerElasticity drives the scaler directly: a lull demotes shards
// into a coordinator-run training session, a burst preempts it back to
// serving, and the state-time accounting reflects the sweep.
func TestScalerElasticity(t *testing.T) {
	target, e, tk, _ := clusterSetup(t)
	cfg := clusterConfig(tk, 4, 1)
	cfg.Scaler = ScalerConfig{TargetPerShard: 10, MinServing: 1, IdleThreshold: 2}
	cl, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	sc := cl.Scaler()

	if got := len(sc.ServingShards()); got != 4 {
		t.Fatalf("initial serving shards = %d, want 4", got)
	}

	// Lull: offered load worth one shard → three demotions, and with
	// IdleThreshold 2 the idle pool becomes a training session.
	actions := sc.Observe(5, 1*time.Second)
	if got := len(sc.ServingShards()); got != 1 {
		t.Fatalf("after lull serving shards = %d, want 1", got)
	}
	training := sc.TrainingShards()
	if len(training) != 3 {
		t.Fatalf("training shards = %v, want 3", training)
	}
	if sc.Leader() < 0 {
		t.Fatal("no training leader elected")
	}
	var sawStart bool
	for _, a := range actions {
		if a.Kind == coordinator.StartTraining {
			sawStart = true
		}
	}
	if !sawStart {
		t.Fatalf("no StartTraining in actions %v", actions)
	}

	// The router must only pick the serving shard now.
	for i := 0; i < 16; i++ {
		if got := cl.PickShard([]int{i}); got != 0 {
			t.Fatalf("routed to non-serving shard %d", got)
		}
	}

	// Burst: full-cluster load preempts every training shard.
	actions = sc.Observe(40, 2*time.Second)
	if got := len(sc.ServingShards()); got != 4 {
		t.Fatalf("after burst serving shards = %d, want 4", got)
	}
	if len(sc.TrainingShards()) != 0 {
		t.Fatal("training survived the burst")
	}
	var sawPreempt bool
	for _, a := range actions {
		if a.Kind == coordinator.PreemptTraining {
			sawPreempt = true
		}
	}
	if !sawPreempt {
		t.Fatalf("no PreemptTraining in actions %v", actions)
	}

	sc.Observe(40, 3*time.Second)
	st := cl.Stats()
	if st.TrainingSessions < 1 || st.Preemptions < 1 {
		t.Fatalf("sessions=%d preemptions=%d, want ≥1 each", st.TrainingSessions, st.Preemptions)
	}
	// Shard 0 served throughout; shard 3 sat out the middle window.
	if st.Shards[0].Utilisation != 1 {
		t.Fatalf("shard 0 utilisation = %v, want 1", st.Shards[0].Utilisation)
	}
	if u := st.Shards[3].Utilisation; u <= 0 || u >= 1 {
		t.Fatalf("shard 3 utilisation = %v, want in (0,1)", u)
	}
	if st.MeanUtilisation <= 0 || st.MeanUtilisation > 1 {
		t.Fatalf("mean utilisation = %v", st.MeanUtilisation)
	}
}

// TestDeadlineShedding warms a 1-replica shard's service estimate, then
// stacks a backlog and checks that an un-meetable deadline is shed with a
// positive retry-after hint.
func TestDeadlineShedding(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cfg := clusterConfig(tk, 1, 1)
	cfg.Admission.MaxPending = 64
	cl, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	// Warm the EWMA service-time estimate.
	for i := 0; i < 2; i++ {
		if _, err := cl.Serve(context.Background(), Request{
			Prompt: gen.Pool()[i].Prompt, MaxNew: 48, Seed: int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Stack a backlog without waiting.
	var chans []<-chan Response
	for i := 0; i < 8; i++ {
		ch, err := cl.Submit(context.Background(), Request{
			Prompt: gen.Pool()[i%len(gen.Pool())].Prompt, MaxNew: 48, Seed: int64(i),
		})
		if err != nil {
			t.Fatalf("backlog submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}
	// A request with a nanosecond budget cannot wait behind that backlog.
	_, err = cl.Submit(context.Background(), Request{
		Prompt: gen.Pool()[0].Prompt, MaxNew: 48, Deadline: time.Nanosecond,
	})
	var shed *ErrShedded
	if !errors.As(err, &shed) {
		t.Fatalf("want *ErrShedded, got %v", err)
	}
	if shed.RetryAfter <= 0 || shed.Pending == 0 {
		t.Fatalf("shed hint not populated: %+v", shed)
	}
	for _, ch := range chans {
		<-ch
	}
	if st := cl.Stats(); st.Shed != 1 || st.ShedRate <= 0 {
		t.Fatalf("shed accounting: shed=%d rate=%v", st.Shed, st.ShedRate)
	}
}
