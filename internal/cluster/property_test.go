package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestPrefixAffinityStable pins the routing property: the same prompt
// prefix always lands on the same live shard, regardless of suffix, load,
// or repetition — and removing an unrelated shard from the live set does
// not move it (rendezvous hashing's minimal-disruption property).
func TestPrefixAffinityStable(t *testing.T) {
	const prefixLen = 6
	p := NewPrefixAffinity(prefixLen)
	rng := rand.New(rand.NewSource(77))

	f := func(seed int64, nShards uint8, promptLen uint8) bool {
		n := 2 + int(nShards)%6
		live := make([]int, n)
		loads := make([]int, n)
		for i := range live {
			live[i] = i
		}
		r := rand.New(rand.NewSource(seed))
		prompt := make([]int, prefixLen+int(promptLen)%16)
		for i := range prompt {
			prompt[i] = r.Intn(512)
		}

		picked := live[p.Pick(prompt, live, loads)]
		// Repetition with arbitrary loads: affinity ignores load.
		for trial := 0; trial < 8; trial++ {
			for i := range loads {
				loads[i] = rng.Intn(100)
			}
			if live[p.Pick(prompt, live, loads)] != picked {
				return false
			}
		}
		// Suffix changes beyond the prefix must not move the request.
		longer := append(append([]int(nil), prompt[:prefixLen]...), rng.Intn(512), rng.Intn(512))
		if live[p.Pick(longer, live, loads)] != picked {
			return false
		}
		// Removing a shard the prefix did not map to must not move it.
		for _, drop := range live {
			if drop == picked {
				continue
			}
			smaller := make([]int, 0, n-1)
			for _, id := range live {
				if id != drop {
					smaller = append(smaller, id)
				}
			}
			if smaller[p.Pick(prompt, smaller, make([]int, len(smaller)))] != picked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixAffinityThroughCluster checks the same stability end-to-end:
// PickShard on a live cluster is constant per prefix while shard states
// are fixed.
func TestPrefixAffinityThroughCluster(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cfg := clusterConfig(tk, 4, 1)
	cfg.Policy = NewPrefixAffinity(4)
	cl, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	for _, task := range gen.Pool()[:8] {
		want := cl.PickShard(task.Prompt)
		for i := 0; i < 16; i++ {
			if got := cl.PickShard(task.Prompt); got != want {
				t.Fatalf("prefix moved: shard %d then %d", want, got)
			}
		}
	}
}

// TestNoSilentDrops pins the admission property: under overload of a
// deliberately tiny shard, every submitted request is accounted for — a
// response or a typed *ErrShedded, never silence — and the cluster's
// shed counter matches the client-observed sheds. The overload comes in
// two phases: a synchronous submission burst whose sheds are guaranteed
// (one submitter outpaces the single replica no matter how the runtime
// schedules completions — admission slots are released synchronously at
// the terminal event, so on one core a purely concurrent burst can be
// legally shed-free), then a concurrent burst that stresses the racing
// reserve/release paths.
func TestNoSilentDrops(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cfg := clusterConfig(tk, 1, 1)
	cfg.Shard.QueueDepth = 2
	cfg.Admission.MaxPending = 2
	cl, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	const n = 80
	var served, shedded int
	shedOrFatal := func(err error) {
		t.Helper()
		var shed *ErrShedded
		if !errors.As(err, &shed) {
			t.Fatalf("untyped error: %v", err)
		}
		if shed.RetryAfter < 0 {
			t.Fatalf("negative retry-after: %+v", shed)
		}
	}

	// Phase 1: synchronous burst — sheds are deterministic.
	var chans []<-chan Response
	for i := 0; i < n/2; i++ {
		task := gen.Pool()[i%len(gen.Pool())]
		ch, err := cl.Submit(context.Background(), Request{Prompt: task.Prompt, MaxNew: 24, Seed: int64(i)})
		if err != nil {
			shedOrFatal(err)
			shedded++
			continue
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if len(resp.Tokens) == 0 {
			t.Error("served response with no tokens")
		}
		served++
	}
	if shedded == 0 {
		t.Fatal("synchronous overload produced no sheds; the property test is vacuous")
	}

	// Phase 2: concurrent burst — accounting must stay exact when
	// submits race the reservation counter.
	start := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n/2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			task := gen.Pool()[i%len(gen.Pool())]
			resp, err := cl.Serve(context.Background(), Request{Prompt: task.Prompt, MaxNew: 24, Seed: int64(i)})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				if len(resp.Tokens) == 0 {
					t.Error("served response with no tokens")
				}
				served++
			default:
				var shed *ErrShedded
				if !errors.As(err, &shed) {
					t.Errorf("untyped error: %v", err)
					return
				}
				if shed.RetryAfter < 0 {
					t.Errorf("negative retry-after: %+v", shed)
				}
				shedded++
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if served+shedded != n {
		t.Fatalf("accounting leak: %d served + %d shed != %d submitted", served, shedded, n)
	}
	st := cl.Stats()
	if st.Served != served || st.Shed != shedded {
		t.Fatalf("cluster stats (%d/%d) disagree with clients (%d/%d)",
			st.Served, st.Shed, served, shedded)
	}
}
