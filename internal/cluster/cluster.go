// Package cluster scales the single-queue serving.Server of paper §7 into
// a sharded serving cluster: a front-door router spreads requests over
// independent shards (each a serving.Server with its own replicas and
// rollout engines) under a pluggable Policy, per-shard admission control
// sheds load with typed, retryable errors instead of unbounded queueing,
// and an elastic scaler reuses the coordinator's worker state machine to
// move shards between SERVING, IDLE, and drafter TRAINING as offered load
// rises and falls — so speculative-decoding spot training and serving
// compete for the same capacity, exactly as in the paper's deployment.
//
// The request surface is streaming-first: Cluster.Stream routes a
// streaming session to a shard and propagates cancellation back to it;
// Submit and Serve are thin wrappers that drain one.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"fastrl/internal/cachefabric"
	"fastrl/internal/coordinator"
	"fastrl/internal/draft"
	"fastrl/internal/metrics"
	"fastrl/internal/model"
	"fastrl/internal/prefixcache"
	"fastrl/internal/serving"
	"fastrl/internal/slo"
	"fastrl/internal/spot"
	"fastrl/internal/trace"
	"fastrl/internal/workload"
)

// Request is one cluster serving job.
type Request struct {
	Prompt []int
	MaxNew int
	// Prior optionally shapes the response length.
	Prior workload.LengthPrior
	// Seed drives the per-request sampling stream.
	Seed int64
	// Deadline is the request's latency budget; admission control sheds
	// the request when the routed shard cannot plausibly meet it. Zero
	// disables deadline shedding (queue-bound shedding still applies).
	Deadline time.Duration
}

// Response is a served completion plus which shard served it. Error
// reporting follows serving.Response: Serve's (and Stream.Wait's) error
// return is authoritative, Err exists for the channel path (Submit).
type Response struct {
	serving.Response
	Shard int
}

// Config parameterises the cluster.
type Config struct {
	// Shards is the number of independent serving shards.
	Shards int
	// Shard configures every shard's serving.Server (replicas, engine).
	Shard serving.Config
	// Policy is the routing policy (default round-robin).
	Policy Policy
	// Admission bounds each shard's backlog.
	Admission AdmissionConfig
	// Scaler drives elastic SERVING/IDLE/TRAINING transitions.
	Scaler ScalerConfig
	// Caches, when non-nil, holds one prefix cache per shard (indexed by
	// shard ID, length Shards): shard i's replicas share Caches[i] for
	// prefill reuse and drafter warm-start. Pass the same slice to
	// NewCacheAware to make routing cache-aware. NewShardCaches builds a
	// uniformly-budgeted set.
	Caches []*prefixcache.Cache
	// Fabric, when non-nil, builds the cluster cache fabric over Caches
	// (which must then be set): a prefix directory maintained from the
	// per-shard cache stats, hot-prefix replication driven by FabricTick
	// and applied by shards at their own step boundaries, and
	// directory-driven warm handoff on revival and scaler promotion. Pass
	// the fabric (Cluster.Fabric) to NewFabricAware to route against the
	// directory. Nil — the default — keeps the cluster byte-identical to
	// one without a fabric.
	Fabric *cachefabric.Config
	// Failover configures dead-shard failover (see FailoverConfig); the
	// zero value disables it.
	Failover FailoverConfig
	// Tracer, when non-nil, traces every request routed through the
	// cluster: each shard's serving.Server starts a lifecycle trace at
	// admission, stamped with the shard ID and mirrored into that shard's
	// flight-recorder ring.
	Tracer *trace.Tracer
	// FlightSlots is the per-shard flight-recorder ring capacity (rounded
	// up to a power of two). Default 1024. The rings exist regardless of
	// Tracer — fault-injection events always land in them, so every chaos
	// fault leaves a postmortem capture even with request tracing off.
	FlightSlots int
	// SLO declares the cluster's service-level objectives (internal/slo).
	// Every shard gets its own burn-rate engine fed by its serving layer
	// (TTFT and per-chunk ITL at step boundaries, outcomes at terminal
	// events); breaches emit trace.KindSLOBreach markers into that shard's
	// flight-recorder ring, and admission can shed earlier while the fast
	// window burns (AdmissionConfig.BurnShed). Empty (the default)
	// disables SLO evaluation entirely.
	SLO []slo.Spec
}

// NewShardCaches builds n independent prefix caches with a shared config,
// ready to pass to Config.Caches and NewCacheAware.
func NewShardCaches(n int, cfg prefixcache.Config) []*prefixcache.Cache {
	out := make([]*prefixcache.Cache, n)
	for i := range out {
		out[i] = prefixcache.New(cfg)
	}
	return out
}

// shard is one serving shard plus its admission and accounting state.
type shard struct {
	id int
	// srv is an atomic pointer because revival swaps in a freshly built
	// server after a crash; readers take one load and work against that
	// snapshot.
	srv atomic.Pointer[serving.Server]
	// cache is the shard's prefix cache (nil without per-shard caches),
	// kept here so revival can wipe and re-warm it.
	cache *prefixcache.Cache
	// state mirrors the coordinator's view (coordinator.Busy == SERVING);
	// the router reads it lock-free on every pick.
	state atomic.Int32
	// outstanding is the admission reservation counter: incremented before
	// a request may enqueue, decremented on completion (or on shed /
	// submit failure). Concurrent submits each reserve atomically, so the
	// MaxPending cap cannot be over-admitted by a check-then-act race the
	// way a raw Pending() probe could.
	outstanding atomic.Int64
	// cAdmitted/cShed/cServed count this shard's admission outcomes in the
	// cluster registry ("shard<i>/admitted" etc). Admission increments
	// cAdmitted with a bare atomic Inc before the shard stream opens;
	// terminal outcomes land inside registry Update groups, so a registry
	// Snapshot never observes outcomes leading admissions.
	cAdmitted *metrics.Counter
	cShed     *metrics.Counter
	cServed   *metrics.Counter
	// flight is the shard's bounded flight-recorder ring: recent request
	// spans (when tracing is on) plus every injected/detected fault event.
	// Cluster-owned, so it survives crash/revival and the postmortem of a
	// dying shard includes the spans recorded right up to the kill.
	flight *trace.FlightRecorder
	// slo is the shard's burn-rate engine (nil without Config.SLO).
	// Cluster-owned like the flight ring, so a revived shard keeps burning
	// the same error budget its previous incarnation torched.
	slo *slo.Engine
	// svcBits holds the EWMA per-request service time in seconds
	// (math.Float64bits), updated on every completion.
	svcBits atomic.Uint64
	// stateTime accumulates observed time per coordinator state; guarded
	// by the scaler's mutex.
	stateTime [coordinator.NumStates]time.Duration
}

// server returns the shard's current serving.Server. The pointer is never
// nil after construction.
func (sh *shard) server() *serving.Server { return sh.srv.Load() }

func (sh *shard) svcEstimate() time.Duration {
	return time.Duration(math.Float64frombits(sh.svcBits.Load()) * float64(time.Second))
}

// Cluster is a sharded SD serving service over one frozen target.
type Cluster struct {
	cfg    Config
	shards []*shard
	scaler *Scaler
	// fabric is the cluster cache fabric (nil unless Config.Fabric).
	fabric *cachefabric.Fabric
	// target/drafter are kept so a dead shard can be rebuilt on revival.
	target  *model.LM
	drafter draft.Drafter

	// reg is the cluster's unified metrics registry: per-shard admission
	// counters, cluster-wide outcome counters, and the latency histograms,
	// all readable through one consistent Snapshot. Lock order: registry
	// lock strictly before statsMu (Update groups and the registered
	// histogram/gauge providers nest statsMu inside).
	reg *metrics.Registry
	// cCancelled/cErrored/cFailovers/cDup are the cluster-wide outcome
	// counters. dup_deliveries counts terminal events a client actually
	// received twice for one logical request (must stay 0 — the chaos
	// experiment asserts it).
	cCancelled *metrics.Counter
	cErrored   *metrics.Counter
	cFailovers *metrics.Counter
	cDup       *metrics.Counter

	// failMu guards the failover-session registry and the recorded drafter
	// checkpoint.
	failMu   sync.Mutex
	sessions map[*foSession]int
	ckpt     *spot.Checkpointer
	ckptPath string

	// pmMu guards the bounded postmortem log (see capturePostmortem).
	pmMu        sync.Mutex
	postmortems []Postmortem

	// routeMu serialises routing decisions so the live/load snapshot
	// buffers are reused allocation-free across picks.
	routeMu sync.Mutex
	liveBuf []int
	loadBuf []int

	// statsMu guards the cluster-wide latency/TTFT/ITL histograms and the
	// accept-length accumulator. The TTFT and ITL histograms take one
	// sample per completed request (serving.Response.TTFT / .ITL — the
	// per-request mean ITL), since per-chunk samples live in the shard
	// they streamed from; exemplars are serving request IDs (unique within
	// one shard).
	statsMu   sync.Mutex
	lats      *metrics.Histogram
	ttfts     *metrics.Histogram
	itls      *metrics.Histogram
	acceptSum float64
	acceptN   int

	stopped atomic.Bool
}

// New builds a cluster of cfg.Shards serving shards over a shared target
// and drafter. drafter may be nil (vanilla decoding on every shard).
func New(cfg Config, target *model.LM, drafter draft.Drafter) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: need at least one shard")
	}
	if cfg.Policy == nil && cfg.Fabric == nil {
		// With a fabric configured, a nil policy instead defaults to
		// fabric-aware routing over the directory — resolved below, once
		// the fabric exists.
		cfg.Policy = NewRoundRobin()
	}
	cfg.Admission = cfg.Admission.withDefaults()
	cfg.Scaler = cfg.Scaler.withDefaults(cfg.Shards)
	cfg.Failover = cfg.Failover.withDefaults()
	// Every admitted request must have a queue slot: with QueueDepth <
	// MaxPending an admitted submit could block in the shard's queue send
	// instead of shedding fast, which is exactly what admission control is
	// for. Size the queue to the cap.
	if cfg.Shard.QueueDepth < cfg.Admission.MaxPending {
		cfg.Shard.QueueDepth = cfg.Admission.MaxPending
	}
	if cfg.Caches != nil && len(cfg.Caches) != cfg.Shards {
		return nil, fmt.Errorf("cluster: %d caches for %d shards", len(cfg.Caches), cfg.Shards)
	}
	if cfg.Fabric != nil {
		if cfg.Caches == nil {
			return nil, fmt.Errorf("cluster: Fabric requires Caches")
		}
		if cfg.Shards > 64 {
			return nil, fmt.Errorf("cluster: fabric supports at most 64 shards (bitmask holder sets)")
		}
	}
	if cfg.FlightSlots <= 0 {
		cfg.FlightSlots = 1024
	}
	c := &Cluster{
		cfg:      cfg,
		target:   target,
		drafter:  drafter,
		sessions: make(map[*foSession]int),
		liveBuf:  make([]int, 0, cfg.Shards),
		loadBuf:  make([]int, 0, cfg.Shards),
		reg:      metrics.NewRegistry(),
		lats:     metrics.NewHistogram(),
		ttfts:    metrics.NewHistogram(),
		itls:     metrics.NewHistogram(),
	}
	c.cCancelled = c.reg.Counter("cancelled")
	c.cErrored = c.reg.Counter("errored")
	c.cFailovers = c.reg.Counter("failovers")
	c.cDup = c.reg.Counter("dup_deliveries")
	if cfg.Fabric != nil {
		c.fabric = cachefabric.New(*cfg.Fabric, cfg.Caches)
		c.fabric.RegisterMetrics(c.reg, "fabric/")
		if c.cfg.Policy == nil {
			c.cfg.Policy = NewFabricAware(c.fabric)
		}
	}
	for _, r := range []struct {
		name string
		hist *metrics.Histogram
	}{{"latency", c.lats}, {"ttft", c.ttfts}, {"itl", c.itls}} {
		hist := r.hist
		c.reg.HistogramFunc(r.name, func() *metrics.Histogram {
			c.statsMu.Lock()
			defer c.statsMu.Unlock()
			return hist.Clone()
		})
	}
	c.reg.Gauge("accept_len_mean", func() float64 {
		c.statsMu.Lock()
		defer c.statsMu.Unlock()
		if c.acceptN == 0 {
			return 0
		}
		return c.acceptSum / float64(c.acceptN)
	})
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{id: i, flight: trace.NewFlightRecorder(cfg.FlightSlots)}
		eng, err := slo.NewEngine(cfg.SLO, i, sh.flight)
		if err != nil {
			for _, prev := range c.shards {
				prev.server().Stop()
			}
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		sh.slo = eng
		if cfg.Caches != nil {
			sh.cache = cfg.Caches[i]
		}
		sh.cAdmitted = c.reg.Counter(fmt.Sprintf("shard%d/admitted", i))
		sh.cShed = c.reg.Counter(fmt.Sprintf("shard%d/shed", i))
		sh.cServed = c.reg.Counter(fmt.Sprintf("shard%d/served", i))
		srv, err := serving.New(c.shardServingConfig(sh), target, drafter)
		if err != nil {
			for _, prev := range c.shards {
				prev.server().Stop()
			}
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		sh.srv.Store(srv)
		sh.state.Store(int32(coordinator.Busy))
		c.shards = append(c.shards, sh)
	}
	scaler, err := newScaler(c, cfg.Scaler)
	if err != nil {
		c.Stop()
		return nil, err
	}
	c.scaler = scaler
	return c, nil
}

// shardServingConfig derives the serving.Config a shard's server (fresh or
// revived) is built from: the shared shard template plus the shard's own
// cache, flight recorder, tracer, and identity. Revival reuses the same
// ring, so a postmortem taken after a later fault still reaches back
// across the shard's previous incarnation.
func (c *Cluster) shardServingConfig(sh *shard) serving.Config {
	shardCfg := c.cfg.Shard
	if sh.cache != nil {
		shardCfg.Cache = sh.cache
	}
	shardCfg.Tracer = c.cfg.Tracer
	shardCfg.Flight = sh.flight
	shardCfg.ShardID = sh.id
	shardCfg.SLO = sh.slo
	return shardCfg
}

// Fabric returns the cluster cache fabric (nil unless Config.Fabric was
// set). Pass it to NewFabricAware for directory-scored routing.
func (c *Cluster) Fabric() *cachefabric.Fabric { return c.fabric }

// ShardServer returns shard id's current serving.Server — a diagnostics
// escape hatch (chaos probes aim a request at a specific revived shard
// through it); regular traffic goes through Stream/Serve routing.
func (c *Cluster) ShardServer(id int) *serving.Server {
	return c.shards[id].server()
}

// FabricTick advances the cache fabric one replication round: gossip
// (eviction journals drained, directory refreshed from per-shard hot
// stats) followed by replication planning toward the currently serving
// shards. Planned copies are enqueued on their target shards, which
// apply them at their own step boundaries and confirm back to the
// directory — the tick never touches a cache mid-step. Drive it at step
// or window boundaries in virtual time; a no-op without a fabric.
func (c *Cluster) FabricTick() {
	if c.fabric == nil {
		return
	}
	c.fabric.Sync()
	var live uint64
	for _, sh := range c.shards {
		if coordinator.State(sh.state.Load()) == coordinator.Busy {
			live |= 1 << uint(sh.id)
		}
	}
	if live == 0 {
		return
	}
	for _, r := range c.fabric.Plan(live) {
		r := r
		sh := c.shards[r.Target]
		if !sh.server().EnqueueWarm(r.Prefix, func() { c.fabric.Confirm(r) }) {
			c.fabric.Abort(r)
		}
	}
}

// hotPrefixLimit bounds how many prefixes a warm handoff copies into a
// shard rejoining the serving set.
const hotPrefixLimit = 64

// warmHandoff seeds sh's prefix cache before it (re)joins the serving
// set — the single warm-handoff path shared by crash revival and scaler
// promotion. With a fabric the copy set is directory-driven (hottest
// entries cluster-wide, hidden states included); without one it degrades
// to the survivor scan the pre-fabric revival used.
func (c *Cluster) warmHandoff(sh *shard) {
	if sh.cache == nil {
		return
	}
	if c.fabric != nil {
		c.fabric.Handoff(sh.cache, sh.id, hotPrefixLimit)
		return
	}
	srcs := make([]*prefixcache.Cache, 0, len(c.shards))
	for _, other := range c.shards {
		if other != sh && other.cache != nil {
			srcs = append(srcs, other.cache)
		}
	}
	cachefabric.HandoffFromSurvivors(sh.cache, srcs, hotPrefixLimit)
}

// Scaler exposes the elastic scaler.
func (c *Cluster) Scaler() *Scaler { return c.scaler }

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Registry exposes the cluster's unified metrics registry. Snapshot it for
// a consistent cluster-wide view; Stats is a typed wrapper over the same
// snapshot.
func (c *Cluster) Registry() *metrics.Registry { return c.reg }

// FlightRecorder returns shard id's flight-recorder ring.
func (c *Cluster) FlightRecorder(id int) *trace.FlightRecorder { return c.shards[id].flight }

// PickShard runs the router for a prompt and returns the chosen shard ID
// without submitting anything. It is the steady-state hot path pinned at
// zero allocations: the live/load snapshot is taken into cluster-owned
// buffers under routeMu.
func (c *Cluster) PickShard(prompt []int) int {
	c.routeMu.Lock()
	live := c.liveBuf[:0]
	loads := c.loadBuf[:0]
	for _, sh := range c.shards {
		if coordinator.State(sh.state.Load()) == coordinator.Busy {
			live = append(live, sh.id)
			loads = append(loads, sh.server().Pending())
		}
	}
	if len(live) == 0 {
		// The scaler floors the serving set at MinServing, so this is a
		// belt-and-braces fallback, not a steady state. Dead shards stay
		// excluded even here; only a cluster with every shard down routes
		// blindly.
		for _, sh := range c.shards {
			if coordinator.State(sh.state.Load()) != coordinator.Dead {
				live = append(live, sh.id)
				loads = append(loads, sh.server().Pending())
			}
		}
	}
	if len(live) == 0 {
		for _, sh := range c.shards {
			live = append(live, sh.id)
			loads = append(loads, sh.server().Pending())
		}
	}
	id := live[c.cfg.Policy.Pick(prompt, live, loads)]
	c.routeMu.Unlock()
	return id
}

// Stream is a streaming session routed through the cluster: a
// serving.Stream bound to the shard that owns the request, with the
// cluster's admission accounting attached to its terminal event.
// Cancellation (context or Cancel) propagates to the owning shard's
// replica, which evicts the request at its next step boundary.
//
// With failover enabled the session survives shard death: a stream whose
// shard crashes or hangs is transparently resubmitted to a survivor (see
// failover.go), and Shard reports only the initial route.
type Stream struct {
	inner *serving.Stream
	// Shard is the shard the request was first routed to.
	Shard int
	// fo carries the failover session when Config.Failover.Enabled; events
	// and the terminal response then route through it.
	fo *foSession
}

// Stream routes a request, applies the routed shard's admission control,
// and returns its streaming session — the primary request path (Submit
// and Serve are wrappers over it). A shed request fails with *ErrShedded;
// every admitted request is guaranteed exactly one terminal event.
func (c *Cluster) Stream(ctx context.Context, req Request) (*Stream, error) {
	if c.cfg.Failover.Enabled {
		fo := &foSession{c: c, ctx: ctx, req: req}
		if err := fo.bind(); err != nil {
			return nil, err
		}
		return &Stream{inner: fo.current(), Shard: fo.shardID(), fo: fo}, nil
	}
	inner, sh, err := c.submitAttempt(ctx, req)
	if err != nil {
		return nil, err
	}
	// The shard's replica invokes this hook exactly once at the terminal
	// event, before any waiter observes it — so the admission slot is
	// released and the stats settled by the time a drained Wait returns,
	// and released even when the caller abandons the stream entirely,
	// with no per-request drain goroutine.
	inner.OnFinish(func(r serving.Response) { c.complete(sh, r) })
	return &Stream{inner: inner, Shard: sh.id}, nil
}

// submitAttempt routes one submission attempt: pick a shard, reserve an
// admission slot, and open the shard stream. It attaches no terminal
// accounting — callers decide between whole-request accounting (complete)
// and per-attempt slot release (failover sessions).
func (c *Cluster) submitAttempt(ctx context.Context, req Request) (*serving.Stream, *shard, error) {
	if c.stopped.Load() {
		return nil, nil, fmt.Errorf("cluster: stopped")
	}
	if err := ctx.Err(); err != nil {
		// A dead caller must not reserve an admission slot.
		return nil, nil, err
	}
	sh := c.shards[c.PickShard(req.Prompt)]
	// Reserve an admission slot first: the reservation is atomic, so the
	// cap holds exactly even when many submits race.
	n := int(sh.outstanding.Add(1))
	if err := sh.admit(n, req.Deadline, c.cfg.Admission); err != nil {
		sh.outstanding.Add(-1)
		sh.cShed.Inc()
		return nil, nil, err
	}
	inner, err := sh.server().Stream(ctx, serving.Request{
		Prompt: req.Prompt, MaxNew: req.MaxNew, Prior: req.Prior, Seed: req.Seed,
	})
	if err != nil {
		// Context cancellation or a stopped/crashed shard: the reservation
		// is released and the submission counts as neither admitted nor
		// shed — the caller got its error directly. (The reserved slot
		// guarantees queue capacity, so the send itself cannot block.)
		sh.outstanding.Add(-1)
		return nil, nil, err
	}
	// Bare atomic Inc, deliberately outside any Update group: it precedes
	// the request's terminal Update group in real time, so every registry
	// Snapshot sees admitted ≥ served+cancelled+errored.
	sh.cAdmitted.Inc()
	return inner, sh, nil
}

// Recv returns the next event from the owning shard (see
// serving.Stream.Recv).
func (st *Stream) Recv() (serving.Event, error) {
	if st.fo != nil {
		return st.fo.Recv()
	}
	return st.inner.Recv()
}

// Wait blocks until the terminal event and returns the final response;
// the error return is authoritative (see serving.Stream.Wait). With
// failover enabled, Wait drives the session's event pump (resubmission
// happens between events), so use either Wait or Recv on a failover
// stream, not both.
func (st *Stream) Wait() (Response, error) {
	if st.fo != nil {
		return st.fo.Wait()
	}
	r, err := st.inner.Wait()
	return Response{Response: r, Shard: st.Shard}, err
}

// Cancel marks the request for retirement on its owning shard.
func (st *Stream) Cancel() {
	if st.fo != nil {
		st.fo.Cancel()
		return
	}
	st.inner.Cancel()
}

// Submit routes a request and returns a channel delivering its response —
// a wrapper that drains a Stream. A shed request fails with *ErrShedded;
// every admitted request is guaranteed a response on the returned channel
// (Response.Err is the failure signal on this path).
func (c *Cluster) Submit(ctx context.Context, req Request) (<-chan Response, error) {
	st, err := c.Stream(ctx, req)
	if err != nil {
		return nil, err
	}
	out := make(chan Response, 1)
	// Goroutine-free delivery: this hook is registered after the
	// accounting hook, so by the time the buffered send publishes the
	// response the admission slot is already released.
	shard := st.Shard
	st.inner.OnFinish(func(r serving.Response) { out <- Response{Response: r, Shard: shard} })
	return out, nil
}

// Serve submits and waits — a wrapper that drains a Stream. The returned
// error is authoritative; on mid-flight cancellation it returns the
// partial response together with context.Canceled.
func (c *Cluster) Serve(ctx context.Context, req Request) (Response, error) {
	st, err := c.Stream(ctx, req)
	if err != nil {
		return Response{}, err
	}
	return st.Wait()
}

// complete folds one terminal response into the shard's service-time
// estimate and the cluster-wide latency/TTFT/ITL/accept accounting.
// Requests that terminate with an error release their admission slot but
// are excluded from the served count, the latency statistics, and the
// service-time EWMA: a cancelled partial decode is not a representative
// service sample, and a hard failure (replica configuration error)
// carries zero-valued timings that would drag the percentiles and the
// admission estimate toward zero. The error itself reaches the caller
// through the response.
func (c *Cluster) complete(sh *shard, r serving.Response) {
	c.settleAttempt(sh)
	c.recordOutcome(sh, r)
}

// settleAttempt releases one admission slot on the shard that carried an
// attempt. Failover sessions call it once per attempt (each attempt holds
// its own reservation); recordOutcome then runs once per logical request.
func (c *Cluster) settleAttempt(sh *shard) {
	sh.outstanding.Add(-1)
}

// recordOutcome folds one logical request's terminal response into the
// accounting, attributed to the shard that delivered it.
func (c *Cluster) recordOutcome(sh *shard, r serving.Response) {
	if r.Err != nil {
		// Hard failures stay countable: every admitted request lands in
		// exactly one of Served/Cancelled/Errored (sheds never reach
		// complete), preserving the no-silent-drop property. The Update
		// group makes the outcome land atomically w.r.t. Snapshot.
		c.reg.Update(func() {
			if errors.Is(r.Err, context.Canceled) {
				c.cCancelled.Inc()
			} else {
				c.cErrored.Inc()
			}
		})
		return
	}
	alpha := c.cfg.Admission.SvcAlpha
	for {
		old := sh.svcBits.Load()
		cur := math.Float64frombits(old)
		sample := r.DecodeTime.Seconds()
		next := sample
		if cur > 0 {
			next = (1-alpha)*cur + alpha*sample
		}
		if sh.svcBits.CompareAndSwap(old, math.Float64bits(next)) {
			break
		}
	}
	// Counter and latency samples settle in one Update group (statsMu
	// nests inside the registry lock, matching the registered histogram
	// providers), so a concurrent Snapshot never tears the outcome.
	ex := r.ReqID
	if ex == 0 {
		ex = -1 // never admitted: no serving request ID to exemplify
	}
	c.reg.Update(func() {
		sh.cServed.Inc()
		c.statsMu.Lock()
		c.lats.RecordDuration(r.Latency, ex)
		if r.TTFT > 0 {
			c.ttfts.RecordDuration(r.TTFT, ex)
		}
		if r.ITL > 0 {
			c.itls.RecordDuration(r.ITL, ex)
		}
		if r.AcceptLen > 0 {
			c.acceptSum += r.AcceptLen
			c.acceptN++
		}
		c.statsMu.Unlock()
	})
}

// Stop shuts every shard down, draining in-flight work. It is idempotent
// and safe to call concurrently with itself and with failover-driven
// teardown: serving.Server.Stop is itself idempotent and every caller
// blocks until the shard's replicas have exited, so whichever Stop
// returns first still returns to a fully-drained cluster.
func (c *Cluster) Stop() {
	c.stopped.Store(true)
	for _, sh := range c.shards {
		sh.server().Stop()
	}
}

// ShardStats is one shard's accounting snapshot.
type ShardStats struct {
	ID    int
	State coordinator.State
	// Admitted/Served/Shed count admission outcomes; Pending is the
	// current backlog.
	Admitted int
	Served   int
	Shed     int
	Pending  int
	// Utilisation is the fraction of scaler-observed time spent SERVING
	// (0 before the first two scaler observations).
	Utilisation float64
	// CacheHitRate / CacheBytes are the shard's prefix-cache probes (zero
	// without per-shard caches).
	CacheHitRate float64
	CacheBytes   int64
	// BurnRate is the shard's maximum fast-window SLO burn rate and SLO
	// its per-spec status (zero/nil without Config.SLO).
	BurnRate float64
	SLO      []slo.SpecStatus
}

// Stats is a cluster-wide snapshot. All counters derive from one registry
// Snapshot, so in any Stats value Served + Cancelled + Errored ≤ Admitted,
// with equality once the cluster is quiescent.
type Stats struct {
	// Admitted counts requests that passed admission control and opened a
	// shard stream (failover resubmissions count once per attempt).
	Admitted int
	Served   int
	Shed     int
	// Cancelled counts requests that were admitted but retired through
	// mid-flight cancellation; Errored counts admitted requests that
	// terminated with a hard failure. Both are excluded from the latency
	// percentiles and the service-time EWMA, but every admitted request
	// lands in exactly one of Served/Cancelled/Errored.
	Cancelled int
	Errored   int
	// ShedRate is shed / (admitted + shed).
	ShedRate float64
	P50      time.Duration
	P95      time.Duration
	// TTFTP50/TTFTP95 are per-request time-to-first-token percentiles;
	// ITLP50/ITLP95 are percentiles over per-request mean inter-token
	// latencies (per-chunk ITL distributions live in each shard's own
	// serving.Stats).
	TTFTP50 time.Duration
	TTFTP95 time.Duration
	ITLP50  time.Duration
	ITLP95  time.Duration
	// P999/TTFTP999 are extreme-tail percentiles over an exact bucket-wise
	// merge of the per-shard latency histograms (metrics.Histogram.Merge) —
	// the cluster-level tails the chaos experiment reports across a failure
	// window, deterministic and independent of merge order (unlike the
	// sampled reservoir merge they replaced).
	P999     time.Duration
	TTFTP999 time.Duration
	// P999Exemplars/TTFTP999Exemplars are the exemplar request IDs retained
	// by the merged p99.9 buckets — the requests to chase through
	// flight-recorder rings and trace exports when the tail moves.
	P999Exemplars     []int64
	TTFTP999Exemplars []int64
	// BurnRate is the maximum fast-window SLO burn rate across shards at
	// snapshot time; SLOBreaches totals breach markers emitted cluster-wide
	// (both zero without Config.SLO). Per-shard status lives in Shards.
	BurnRate    float64
	SLOBreaches int64
	// DuplicateDeliveries counts terminal events a client observed twice
	// for one logical request under failover. The failover dedup keeps it
	// at zero; the chaos experiment asserts that.
	DuplicateDeliveries int
	// Failovers counts successful mid-flight resubmissions (a request that
	// survived its shard's death by replaying on a survivor).
	Failovers int
	// MeanAcceptLen averages per-request SD accept lengths (0 without SD).
	MeanAcceptLen float64
	// MeanUtilisation averages shard utilisation.
	MeanUtilisation float64
	Shards          []ShardStats
	// CacheSavedPositions sums prefill positions skipped via the per-shard
	// prefix caches (0 without caches).
	CacheSavedPositions int64
	// TrainingSessions and Preemptions summarise the scaler's coordinator
	// log.
	TrainingSessions int
	Preemptions      int
}

// Stats summarises the cluster's served traffic and shard states. Every
// counter and percentile is read from one registry Snapshot, so the view
// is consistent: no torn Update groups, outcomes never lead admissions.
func (c *Cluster) Stats() Stats {
	var st Stats
	snap := c.reg.Snapshot()
	util := c.scaler.utilisations()
	for _, sh := range c.shards {
		ss := ShardStats{
			ID:           sh.id,
			State:        coordinator.State(sh.state.Load()),
			Admitted:     int(snap.Counter(fmt.Sprintf("shard%d/admitted", sh.id))),
			Served:       int(snap.Counter(fmt.Sprintf("shard%d/served", sh.id))),
			Shed:         int(snap.Counter(fmt.Sprintf("shard%d/shed", sh.id))),
			Pending:      sh.server().Pending(),
			Utilisation:  util[sh.id],
			CacheHitRate: sh.server().CacheHitRate(),
			CacheBytes:   sh.server().CacheResidentBytes(),
			BurnRate:     sh.slo.BurnRate(),
			SLO:          sh.slo.Status(),
		}
		st.Admitted += ss.Admitted
		st.Served += ss.Served
		st.Shed += ss.Shed
		st.MeanUtilisation += ss.Utilisation
		if ss.BurnRate > st.BurnRate {
			st.BurnRate = ss.BurnRate
		}
		st.SLOBreaches += sh.slo.Breaches()
		if cache := sh.server().Cache(); cache != nil {
			st.CacheSavedPositions += cache.Stats().SavedPositions
		}
		st.Shards = append(st.Shards, ss)
	}
	st.MeanUtilisation /= float64(len(c.shards))
	if total := st.Admitted + st.Shed; total > 0 {
		st.ShedRate = float64(st.Shed) / float64(total)
	}
	st.P50 = time.Duration(snap.Histogram("latency").P50)
	st.P95 = time.Duration(snap.Histogram("latency").P95)
	st.TTFTP50 = time.Duration(snap.Histogram("ttft").P50)
	st.TTFTP95 = time.Duration(snap.Histogram("ttft").P95)
	st.ITLP50 = time.Duration(snap.Histogram("itl").P50)
	st.ITLP95 = time.Duration(snap.Histogram("itl").P95)
	st.Cancelled = int(snap.Counter("cancelled"))
	st.Errored = int(snap.Counter("errored"))
	st.MeanAcceptLen = snap.Gauge("accept_len_mean")
	// Cluster p99.9 merges the per-shard histograms into the cluster-level
	// per-request histograms bucket-wise: the cluster's own histograms hold
	// one sample per request, too coarse for a 99.9th tail on their own,
	// while the shard histograms carry every chunk-level sample. The merge
	// is exact addition — deterministic for a fixed observation set, and
	// the merged tail buckets keep their exemplar request IDs.
	mergedLat, mergedTTFT := metrics.NewHistogram(), metrics.NewHistogram()
	c.statsMu.Lock()
	mergedLat.Merge(c.lats)
	mergedTTFT.Merge(c.ttfts)
	c.statsMu.Unlock()
	for _, sh := range c.shards {
		lats, ttfts := sh.server().TailHistograms()
		mergedLat.Merge(lats)
		mergedTTFT.Merge(ttfts)
	}
	st.P999 = time.Duration(mergedLat.Quantile(99.9))
	st.TTFTP999 = time.Duration(mergedTTFT.Quantile(99.9))
	st.P999Exemplars = mergedLat.ExemplarsAt(99.9)
	st.TTFTP999Exemplars = mergedTTFT.ExemplarsAt(99.9)
	st.DuplicateDeliveries = int(snap.Counter("dup_deliveries"))
	st.Failovers = int(snap.Counter("failovers"))
	st.TrainingSessions, st.Preemptions = c.scaler.sessionCounts()
	return st
}

// BurnRate returns the maximum fast-window SLO burn rate across shards —
// the cluster's load-control signal (0 without Config.SLO).
func (c *Cluster) BurnRate() float64 {
	var max float64
	for _, sh := range c.shards {
		if b := sh.slo.BurnRate(); b > max {
			max = b
		}
	}
	return max
}

// SLOEngine returns shard id's burn-rate engine (nil without Config.SLO).
func (c *Cluster) SLOEngine(id int) *slo.Engine { return c.shards[id].slo }
