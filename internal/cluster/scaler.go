package cluster

import (
	"math"
	"sync"
	"time"

	"fastrl/internal/coordinator"
)

// ScalerConfig parameterises the elastic scaler.
type ScalerConfig struct {
	// TargetPerShard is the offered load (requests per observation window)
	// one serving shard is sized for; the scaler serves
	// ceil(offered / TargetPerShard) shards, clamped to
	// [MinServing, Shards]. Default 8.
	TargetPerShard float64
	// MinServing floors the serving set so the router always has a live
	// shard. Default 1.
	MinServing int
	// IdleThreshold is the coordinator's idle-pool size before a drafter
	// training session starts (paper §4.2). Default 1: a single demoted
	// shard immediately starts spot training.
	IdleThreshold int
}

func (s ScalerConfig) withDefaults(shards int) ScalerConfig {
	if s.TargetPerShard <= 0 {
		s.TargetPerShard = 8
	}
	if s.MinServing < 1 {
		s.MinServing = 1
	}
	if s.MinServing > shards {
		s.MinServing = shards
	}
	if s.IdleThreshold < 1 {
		s.IdleThreshold = 1
	}
	return s
}

// Scaler drives shards between SERVING (coordinator.Busy), IDLE, and
// TRAINING through the coordinator's worker state machine: demoted shards
// go idle and are promoted by the coordinator into drafter spot-training
// sessions (with leader election), and rising load preempts training —
// the same start/join/preempt protocol the paper runs over rollout
// workers, applied to serving capacity.
type Scaler struct {
	c     *Cluster
	cfg   ScalerConfig
	mu    sync.Mutex
	coord *coordinator.Coordinator
	// lastNow timestamps the previous observation for state-time accrual.
	lastNow  time.Duration
	observed bool
}

func newScaler(c *Cluster, cfg ScalerConfig) (*Scaler, error) {
	coord, err := coordinator.New(coordinator.Config{
		Workers:       len(c.shards),
		IdleThreshold: cfg.IdleThreshold,
	})
	if err != nil {
		return nil, err
	}
	return &Scaler{c: c, cfg: cfg, coord: coord}, nil
}

// Observe processes one observation window ending at now: offered is the
// load (requests) that arrived during the window. It resizes the serving
// set and returns the coordinator actions the resize emitted
// (start/join/preempt-training directives for the affected shards).
func (s *Scaler) Observe(offered float64, now time.Duration) []coordinator.Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.accrueLocked(now)

	target := int(math.Ceil(offered / s.cfg.TargetPerShard))
	if target < s.cfg.MinServing {
		target = s.cfg.MinServing
	}
	if target > len(s.c.shards) {
		target = len(s.c.shards)
	}

	var actions []coordinator.Action
	serving := 0
	for _, sh := range s.c.shards {
		if s.coord.State(sh.id) == coordinator.Busy {
			serving++
		}
	}
	switch {
	case serving < target:
		// Promote lowest-ID non-serving shards back to traffic; the
		// coordinator preempts (and checkpoints) any training they were in.
		for _, sh := range s.c.shards {
			if serving == target {
				break
			}
			// Only Idle/Training shards are promotable: WorkerBusy is a
			// no-op on Dead/Degraded shards, so counting them as serving
			// would silently under-provision the live set.
			if st := s.coord.State(sh.id); st == coordinator.Idle || st == coordinator.Training {
				actions = append(actions, s.coord.WorkerBusy(sh.id, now)...)
				serving++
				// Promotion goes through the same warm-handoff path as
				// revival: the fabric copies the cluster's hottest prefixes
				// in before the first routed request arrives. Without a
				// fabric this is a no-op — an idle shard kept its cache.
				if s.c.fabric != nil {
					s.c.warmHandoff(sh)
				}
			}
		}
	case serving > target:
		// Demote highest-ID serving shards: they go idle, and the
		// coordinator promotes the idle pool into a training session once
		// the threshold is met. Low IDs stay serving so prefix-affinity
		// keys move as little as possible.
		for i := len(s.c.shards) - 1; i >= 0 && serving > target; i-- {
			sh := s.c.shards[i]
			if s.coord.State(sh.id) == coordinator.Busy {
				actions = append(actions, s.coord.WorkerIdle(sh.id, now)...)
				serving--
			}
		}
	}
	for _, sh := range s.c.shards {
		sh.state.Store(int32(s.coord.State(sh.id)))
	}
	return actions
}

// markDead records a shard's death in the coordinator (preempting any
// training it led or joined) and mirrors the state for the router, which
// stops picking it on the very next PickShard.
func (s *Scaler) markDead(id int, now time.Duration) []coordinator.Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	actions := s.coord.WorkerDead(id, now)
	s.c.shards[id].state.Store(int32(s.coord.State(id)))
	return actions
}

// markDegraded records a shard as degraded (still alive, excluded from
// routing until it recovers).
func (s *Scaler) markDegraded(id int, now time.Duration) []coordinator.Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	actions := s.coord.WorkerDegraded(id, now)
	s.c.shards[id].state.Store(int32(s.coord.State(id)))
	return actions
}

// markRecovered returns a Dead/Degraded shard to the serving set.
func (s *Scaler) markRecovered(id int, now time.Duration) []coordinator.Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	actions := s.coord.WorkerRecovered(id, now)
	s.c.shards[id].state.Store(int32(s.coord.State(id)))
	return actions
}

// accrueLocked charges the time since the last observation to each
// shard's current state.
func (s *Scaler) accrueLocked(now time.Duration) {
	if s.observed && now > s.lastNow {
		delta := now - s.lastNow
		for _, sh := range s.c.shards {
			sh.stateTime[s.coord.State(sh.id)] += delta
		}
	}
	s.lastNow = now
	s.observed = true
}

// TrainingShards returns the IDs of shards currently in drafter training.
func (s *Scaler) TrainingShards() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord.TrainingWorkers()
}

// ServingShards returns the IDs of shards currently accepting traffic.
func (s *Scaler) ServingShards() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for _, sh := range s.c.shards {
		if s.coord.State(sh.id) == coordinator.Busy {
			out = append(out, sh.id)
		}
	}
	return out
}

// Leader returns the active training-session leader shard, or -1.
func (s *Scaler) Leader() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord.Leader()
}

// utilisations returns each shard's fraction of observed time spent
// SERVING (zero before two observations).
func (s *Scaler) utilisations() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.c.shards))
	for i, sh := range s.c.shards {
		var total time.Duration
		for _, d := range sh.stateTime {
			total += d
		}
		if total > 0 {
			out[i] = float64(sh.stateTime[coordinator.Busy]) / float64(total)
		}
	}
	return out
}

// sessionCounts summarises the coordinator log: training sessions started
// and trainings preempted.
func (s *Scaler) sessionCounts() (sessions, preemptions int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.coord.Log {
		switch a.Kind {
		case coordinator.StartTraining:
			sessions++
		case coordinator.PreemptTraining:
			preemptions++
		}
	}
	return sessions, preemptions
}
