package cluster

import (
	"context"
	"testing"
	"time"

	"fastrl/internal/slo"
	"fastrl/internal/trace"
)

// TestClusterSLOStats pins the cluster-level SLO surface: shards with an
// impossible TTFT objective report burn and breaches through Stats, the
// breach markers land in the shard flight recorders, and the merged-tail
// percentiles come from exemplar-linked histograms.
func TestClusterSLOStats(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cfg := clusterConfig(tk, 2, 1)
	// The fast window spans the whole run in virtual time, so the burn
	// reading at the last observation still covers every TTFT sample.
	cfg.SLO = []slo.Spec{{
		Name: "ttft-p95", Kind: slo.TTFT, Threshold: time.Nanosecond,
		Objective: 0.95, FastWindow: 30 * time.Second,
	}}
	cl, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	for i := 0; i < 10; i++ {
		task := gen.Pool()[i%len(gen.Pool())]
		if _, err := cl.Serve(context.Background(), Request{
			Prompt: task.Prompt, MaxNew: 32, Seed: int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}

	st := cl.Stats()
	if st.BurnRate < 4 {
		t.Fatalf("cluster burn rate = %v, want >= 4 for an all-bad stream", st.BurnRate)
	}
	if st.BurnRate != cl.BurnRate() {
		t.Fatalf("Stats.BurnRate %v != Cluster.BurnRate %v", st.BurnRate, cl.BurnRate())
	}
	if st.SLOBreaches == 0 {
		t.Fatal("impossible objective never breached")
	}
	burned := false
	for _, ss := range st.Shards {
		if len(ss.SLO) != 1 {
			t.Fatalf("shard %d SLO status has %d specs, want 1", ss.ID, len(ss.SLO))
		}
		if ss.BurnRate > 0 {
			burned = true
		}
	}
	if !burned {
		t.Fatal("no shard reports a positive burn rate")
	}
	// Breach markers are in at least one shard's flight-recorder ring.
	found := false
	for id := 0; id < cl.Shards() && !found; id++ {
		for _, r := range cl.FlightRecorder(id).Snapshot() {
			if r.Kind == trace.KindSLOBreach {
				if r.ReqID != -1 || int(r.Shard) != id {
					t.Fatalf("marker fields wrong: %+v on shard %d", r, id)
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no KindSLOBreach marker in any shard ring")
	}
	// Histogram-merged tails: present and exemplar-linked.
	if st.P999 <= 0 || st.TTFTP999 <= 0 {
		t.Fatalf("merged tails empty: p999=%v ttft_p999=%v", st.P999, st.TTFTP999)
	}
	if len(st.P999Exemplars) == 0 || len(st.TTFTP999Exemplars) == 0 {
		t.Fatal("merged p99.9 buckets retained no exemplar request IDs")
	}
}

// TestBurnShedAdmission pins the SLO engine's first control consumer:
// with BurnShed set, a shard whose fast window is burning sheds at half
// the configured backlog cap; the same backlog is admitted while the
// budget is healthy or the knob is off.
func TestBurnShedAdmission(t *testing.T) {
	target, e, tk, _ := clusterSetup(t)
	cfg := clusterConfig(tk, 1, 1)
	cfg.SLO = []slo.Spec{{
		Name: "ttft-p95", Kind: slo.TTFT, Threshold: time.Millisecond, Objective: 0.95,
	}}
	cl, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	sh := cl.shards[0]
	acfg := AdmissionConfig{MaxPending: 8, BurnShed: 4}.withDefaults()
	// Healthy budget: the full cap applies.
	if err := sh.admit(8, 0, acfg); err != nil {
		t.Fatalf("healthy shard shed at the configured cap: %v", err)
	}
	// Torch the fast window: every observation blows the threshold.
	eng := cl.SLOEngine(0)
	for i := 0; i < 50; i++ {
		eng.ObserveLatency(slo.TTFT, time.Second, time.Duration(i)*10*time.Millisecond)
	}
	if b := eng.BurnRate(); b < acfg.BurnShed {
		t.Fatalf("burn = %v, want >= %v after all-bad stream", b, acfg.BurnShed)
	}
	// Burn-aware shedding halves the effective cap: 5 > 8/2 sheds.
	err = sh.admit(5, 0, acfg)
	if err == nil {
		t.Fatal("burning shard admitted above the halved cap")
	}
	if _, ok := err.(*ErrShedded); !ok {
		t.Fatalf("shed error type %T, want *ErrShedded", err)
	}
	// At or under the halved cap still admits.
	if err := sh.admit(4, 0, acfg); err != nil {
		t.Fatalf("burning shard shed under the halved cap: %v", err)
	}
	// Knob off: full cap applies even while burning.
	acfg.BurnShed = 0
	if err := sh.admit(8, 0, acfg); err != nil {
		t.Fatalf("BurnShed=0 changed admission behaviour: %v", err)
	}
}
