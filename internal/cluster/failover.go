// Dead-shard failover: streaming sessions that survive shard crashes.
//
// A failover session wraps the per-attempt serving.Stream and resubmits
// the request to a surviving shard when its shard dies mid-flight. The
// replay is deterministic — the request's private RNG seed, the frozen
// drafter, and a fixed SD strategy make the regenerated token sequence
// independent of batch composition — so the session suppresses the
// already-delivered prefix of the replayed stream and the client observes
// one seamless, bit-identical stream whether or not a failover happened
// (pinned by TestFailoverStreamEquivalence). Exactly-once delivery holds
// at two layers: serving's per-job finished CAS swallows racing terminals
// (a request that completes during failover never emits twice), and the
// session delivers exactly one Usage event per logical request
// (Cluster.Stats().DuplicateDeliveries counts violations; it must be 0).
package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"fastrl/internal/serving"
	"fastrl/internal/trace"
)

// FailoverConfig parameterises dead-shard failover.
type FailoverConfig struct {
	// Enabled turns failover on: streams route through a session that
	// resubmits to a survivor when the owning shard crashes.
	Enabled bool
	// MaxAttempts bounds total submission attempts per logical request
	// (first submit included). Default 3.
	MaxAttempts int
}

func (f FailoverConfig) withDefaults() FailoverConfig {
	if f.MaxAttempts < 1 {
		f.MaxAttempts = 3
	}
	return f
}

// foSession is one logical request's failover state: the current attempt,
// the replay-suppression cursors, and the terminal dedup.
type foSession struct {
	c   *Cluster
	ctx context.Context
	req Request

	// mu guards the attempt binding (inner/sh/attempts) against
	// failoverShard failing the current attempt from the health monitor's
	// goroutine, and the terminal state (done/final).
	mu       sync.Mutex
	inner    *serving.Stream
	sh       *shard
	attempts int
	done     bool
	final    serving.Response

	// cancelled marks an explicit client Cancel: the resulting terminal
	// must be delivered, not retried.
	cancelled atomic.Bool

	// Consumer-owned cursors (Recv is single-consumer): tokens/accept
	// events already handed to the client, and how much of a replayed
	// stream to suppress before resuming delivery.
	delivered    int
	accDelivered int
	suppress     int
	accSuppress  int
}

// bind performs the first submission attempt and registers the session
// for shard-death notification. A submit that lands on a shard dying (or
// restarting) under it is retried within the attempt budget — the same
// window rebind tolerates.
func (fo *foSession) bind() error {
	var lastErr error
	for {
		fo.mu.Lock()
		if fo.attempts >= fo.c.cfg.Failover.MaxAttempts {
			fo.mu.Unlock()
			return lastErr
		}
		fo.attempts++
		fo.mu.Unlock()
		inner, sh, err := fo.c.submitAttempt(fo.ctx, fo.req)
		if err != nil {
			if errors.Is(err, serving.ErrCrashed) || errors.Is(err, serving.ErrStopped) {
				lastErr = err
				continue
			}
			return err
		}
		fo.mu.Lock()
		fo.inner, fo.sh = inner, sh
		fo.mu.Unlock()
		// Each attempt settles its own admission slot; whole-request outcome
		// accounting happens once, at the session's terminal (finish).
		inner.OnFinish(func(serving.Response) { fo.c.settleAttempt(sh) })
		fo.c.registerSession(fo, sh.id)
		return nil
	}
}

func (fo *foSession) current() *serving.Stream {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	return fo.inner
}

func (fo *foSession) shardID() int {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	return fo.sh.id
}

// Recv pulls the next client-visible event, transparently absorbing
// failovers: a crash terminal triggers resubmission, and the replayed
// stream's already-delivered prefix is suppressed so delivery resumes
// exactly where it left off.
func (fo *foSession) Recv() (serving.Event, error) {
	for {
		ev, err := fo.current().Recv()
		if err != nil {
			return ev, err // io.EOF after the delivered Usage
		}
		switch ev.Kind {
		case serving.EventTokens:
			if fo.suppress > 0 {
				if n := len(ev.Tokens); n <= fo.suppress {
					fo.suppress -= n
					continue
				}
				ev.Tokens = ev.Tokens[fo.suppress:]
				fo.suppress = 0
			}
			fo.delivered += len(ev.Tokens)
			return ev, nil
		case serving.EventAccept:
			if fo.accSuppress > 0 {
				fo.accSuppress--
				continue
			}
			fo.accDelivered++
			return ev, nil
		case serving.EventUsage:
			if fo.shouldFailover(ev.Usage.Err) && fo.rebind() {
				continue // pump the replayed stream
			}
			return fo.finish(ev), nil
		default:
			return ev, nil
		}
	}
}

// shouldFailover reports whether a terminal error warrants resubmission:
// only shard-death terminals are retried, and only while the client still
// wants the response and attempts remain.
func (fo *foSession) shouldFailover(err error) bool {
	if err == nil || fo.cancelled.Load() || fo.ctx.Err() != nil {
		return false
	}
	if !errors.Is(err, serving.ErrCrashed) && !errors.Is(err, serving.ErrStopped) {
		return false
	}
	fo.mu.Lock()
	defer fo.mu.Unlock()
	return fo.attempts < fo.c.cfg.Failover.MaxAttempts
}

// rebind resubmits the request to a survivor and arms replay suppression.
// It returns false when no attempt budget remains or resubmission itself
// fails, in which case the caller delivers the crash terminal as-is.
func (fo *foSession) rebind() bool {
	fo.c.unregisterSession(fo)
	for {
		fo.mu.Lock()
		if fo.attempts >= fo.c.cfg.Failover.MaxAttempts {
			fo.mu.Unlock()
			return false
		}
		fo.attempts++
		fo.mu.Unlock()
		inner, sh, err := fo.c.submitAttempt(fo.ctx, fo.req)
		if err != nil {
			if errors.Is(err, serving.ErrCrashed) || errors.Is(err, serving.ErrStopped) {
				// Routed onto a shard that died under us before the router
				// noticed; spend another attempt.
				continue
			}
			// Shed, cancelled, or cluster stopped: no survivor will take the
			// request — deliver the original terminal.
			return false
		}
		fo.mu.Lock()
		fo.inner, fo.sh = inner, sh
		fo.mu.Unlock()
		inner.OnFinish(func(serving.Response) { fo.c.settleAttempt(sh) })
		// The replay regenerates the full stream; skip what the client
		// already has. Determinism of the regenerated prefix is what makes
		// this a seamless continuation rather than a visible restart.
		fo.suppress = fo.delivered
		fo.accSuppress = fo.accDelivered
		fo.c.registerSession(fo, sh.id)
		fo.c.cFailovers.Inc()
		// Leave a failover marker in the adopting shard's ring: a later
		// postmortem shows the replayed request arriving.
		sh.flight.Record(trace.Record{Shard: int32(sh.id), Kind: trace.KindFailover, Arg: int64(fo.attempts)})
		return true
	}
}

// finish delivers the session's terminal event exactly once and settles
// whole-request outcome accounting against the delivering shard.
func (fo *foSession) finish(ev serving.Event) serving.Event {
	fo.c.unregisterSession(fo)
	fo.mu.Lock()
	if fo.done {
		// A second terminal reaching the client would be a double delivery;
		// count it (the chaos experiment asserts this stays 0).
		fo.c.cDup.Inc()
		fo.mu.Unlock()
		return ev
	}
	fo.done = true
	fo.final = ev.Usage
	sh := fo.sh
	fo.mu.Unlock()
	fo.c.recordOutcome(sh, ev.Usage)
	return ev
}

// Wait drives the session's event pump to the terminal and returns the
// final response (error return authoritative, mirroring serving).
func (fo *foSession) Wait() (Response, error) {
	for {
		if _, err := fo.Recv(); err != nil {
			fo.mu.Lock()
			r, sh := fo.final, fo.sh
			fo.mu.Unlock()
			return Response{Response: r, Shard: sh.id}, r.Err
		}
	}
}

// Cancel cancels the current attempt and pins the session so a crash
// terminal racing the cancel is not retried.
func (fo *foSession) Cancel() {
	fo.cancelled.Store(true)
	fo.current().Cancel()
}

// failCurrent force-fails the session's current attempt — the path a
// shard-death notification takes to unblock sessions stranded on a hung
// shard. If the attempt already finished, the Fail is a no-op (serving's
// terminal dedup).
func (fo *foSession) failCurrent(cause error) {
	if st := fo.current(); st != nil {
		st.Fail(cause)
	}
}

// registerSession binds a session's current attempt to a shard for
// death notification.
func (c *Cluster) registerSession(fo *foSession, shard int) {
	c.failMu.Lock()
	c.sessions[fo] = shard
	c.failMu.Unlock()
}

func (c *Cluster) unregisterSession(fo *foSession) {
	c.failMu.Lock()
	delete(c.sessions, fo)
	c.failMu.Unlock()
}

// failoverShard force-fails every session currently bound to a shard.
// The server-side crash path already fails admitted jobs; this is the
// belt-and-braces sweep that also catches sessions whose attempt raced
// registration, and the primary path for hang escalation. Serving's
// per-job terminal dedup makes the overlap harmless.
func (c *Cluster) failoverShard(id int, cause error) {
	c.failMu.Lock()
	victims := make([]*foSession, 0, len(c.sessions))
	for fo, sh := range c.sessions {
		if sh == id {
			victims = append(victims, fo)
		}
	}
	c.failMu.Unlock()
	for _, fo := range victims {
		fo.failCurrent(cause)
	}
}
