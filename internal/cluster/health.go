// Shard health monitoring: the detection half of failover. The monitor
// polls each shard's liveness signals (crash flag, decode-step progress)
// and drives the coordinator's Dead/Degraded transitions — crashed shards
// are marked dead and their sessions failed over, hung shards (inflight
// work but no step progress across consecutive polls) are escalated to a
// crash so their stranded requests replay on survivors, and abnormally
// slow shards are degraded out of the routing set. Recovery is explicit:
// ReviveShard returns a shard once its fault is cleared.
package cluster

import (
	"fmt"
	"time"

	"fastrl/internal/coordinator"
	"fastrl/internal/metrics"
)

// MonitorConfig parameterises the health monitor.
type MonitorConfig struct {
	// HangPolls is how many consecutive reliable polls a shard may show
	// inflight work with zero step progress before the monitor escalates
	// the hang to a crash. Polls where several shards are simultaneously
	// stalled-with-inflight are not charged (see Poll). Default 3.
	HangPolls int
	// SlowFactor enables slow-shard detection when > 0: a serving shard
	// whose per-poll step progress falls below SlowFactor times the live
	// median is marked Degraded (excluded from routing, nothing killed).
	SlowFactor float64
}

func (m MonitorConfig) withDefaults() MonitorConfig {
	if m.HangPolls < 1 {
		m.HangPolls = 3
	}
	return m
}

// HealthEvent records one monitor-driven transition.
type HealthEvent struct {
	Shard int
	// Kind is FaultCrash for a detected death or hang escalation, and
	// FaultSlow for a slow-shard degradation.
	Kind FaultKind
}

func (e HealthEvent) String() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Kind) }

// Monitor polls shard health and applies failure transitions.
type Monitor struct {
	c         *Cluster
	cfg       MonitorConfig
	lastSteps []int64
	stalls    []int
}

// NewMonitor builds a health monitor over the cluster.
func (c *Cluster) NewMonitor(cfg MonitorConfig) *Monitor {
	return &Monitor{
		c:         c,
		cfg:       cfg.withDefaults(),
		lastSteps: make([]int64, len(c.shards)),
		stalls:    make([]int, len(c.shards)),
	}
}

// Poll takes one health observation at virtual time now and applies any
// transitions it implies, returning them. Poll is the monitor's only
// method with side effects; callers run it on their experiment cadence.
func (m *Monitor) Poll(now time.Duration) []HealthEvent {
	deltas := make([]float64, len(m.c.shards))
	stalled := 0
	for i, sh := range m.c.shards {
		srv := sh.server()
		s := srv.StepCount()
		deltas[i] = float64(s - m.lastSteps[i])
		m.lastSteps[i] = s
		if coordinator.State(sh.state.Load()) != coordinator.Dead &&
			!srv.Crashed() && srv.Inflight() > 0 && deltas[i] == 0 {
			stalled++
		}
	}
	// Several shards stalled-with-inflight in the same interval is the
	// signature of the monitoring process itself being starved of CPU (or
	// of a mass outage no single escalation fixes), not of one shard
	// hanging: a hung shard strands only its own requests while survivors
	// keep stepping. Freeze the stall counters for this interval — neither
	// charge nor acquit — so starvation can't escalate a healthy shard,
	// and a real hang still accumulates as soon as observation recovers.
	reliable := stalled <= 1
	var evs []HealthEvent
	for i, sh := range m.c.shards {
		if coordinator.State(sh.state.Load()) == coordinator.Dead {
			m.stalls[i] = 0
			continue
		}
		srv := sh.server()
		if srv.Crashed() {
			// Crash already happened server-side; propagate it to routing
			// and fail over whatever sessions are still bound.
			m.c.CrashShard(i, now)
			evs = append(evs, HealthEvent{Shard: i, Kind: FaultCrash})
			m.stalls[i] = 0
			continue
		}
		if srv.Inflight() > 0 && deltas[i] == 0 {
			// Work on board but no step progress: a hang candidate. Only
			// escalation frees the stranded requests — a hung replica never
			// reaches a step boundary, so cancellation alone cannot.
			if reliable {
				m.stalls[i]++
				if m.stalls[i] >= m.cfg.HangPolls {
					m.c.CrashShard(i, now)
					evs = append(evs, HealthEvent{Shard: i, Kind: FaultCrash})
					m.stalls[i] = 0
				}
			}
			continue
		}
		m.stalls[i] = 0
		if m.cfg.SlowFactor > 0 && coordinator.State(sh.state.Load()) == coordinator.Busy {
			med := m.liveMedian(deltas)
			if med > 0 && deltas[i] < m.cfg.SlowFactor*med {
				m.c.scaler.markDegraded(i, now)
				// Degradation gets a capture too: the ring shows what the
				// shard was (not) doing when it fell behind.
				m.c.capturePostmortem(i, now, FaultSlow)
				evs = append(evs, HealthEvent{Shard: i, Kind: FaultSlow})
			}
		}
	}
	return evs
}

// liveMedian is the median per-poll step progress across serving shards
// that made any progress — the baseline slow detection compares against.
func (m *Monitor) liveMedian(deltas []float64) float64 {
	live := make([]float64, 0, len(deltas))
	for i, sh := range m.c.shards {
		if coordinator.State(sh.state.Load()) == coordinator.Busy && deltas[i] > 0 {
			live = append(live, deltas[i])
		}
	}
	return metrics.Median(live)
}
