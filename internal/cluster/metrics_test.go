package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"fastrl/internal/trace"
)

// TestClusterStatsReconcileUnderLoad drives concurrent serves, cancels,
// and shed-inducing pressure through a small cluster while a snapshotter
// reads Stats continuously. Every observed snapshot must be internally
// consistent (outcomes never lead admissions — the torn-stats bug this
// registry snapshot fixes), and at quiescence the ledger balances:
//
//	Admitted == Served + Cancelled + Errored
//	submissions == Admitted + Shed + direct submit errors
func TestClusterStatsReconcileUnderLoad(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cfg := clusterConfig(tk, 2, 1)
	cfg.Admission = AdmissionConfig{MaxPending: 6} // tight: force sheds
	cl, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := cl.Stats()
			if done := st.Served + st.Cancelled + st.Errored; done > st.Admitted {
				panic("torn cluster snapshot: outcomes lead admissions")
			}
		}
	}()

	const n = 60
	var mu sync.Mutex
	admitted, shed := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task := gen.Pool()[i%len(gen.Pool())]
			st, err := cl.Stream(context.Background(), Request{
				Prompt: task.Prompt, MaxNew: 32, Seed: int64(i),
			})
			if err != nil {
				mu.Lock()
				if _, ok := err.(*ErrShedded); ok {
					shed++
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			admitted++
			mu.Unlock()
			if i%4 == 3 {
				if i%8 == 3 {
					time.Sleep(time.Duration(i) * 50 * time.Microsecond)
				}
				st.Cancel()
			}
			st.Wait()
		}(i)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	st := cl.Stats()
	if st.Admitted != admitted {
		t.Fatalf("Admitted = %d, clients admitted %d", st.Admitted, admitted)
	}
	if st.Shed != shed {
		t.Fatalf("Shed = %d, clients saw %d sheds", st.Shed, shed)
	}
	if done := st.Served + st.Cancelled + st.Errored; done != st.Admitted {
		t.Fatalf("ledger out of balance at quiescence: served=%d cancelled=%d errored=%d admitted=%d\n",
			st.Served, st.Cancelled, st.Errored, st.Admitted)
	}
	if st.Errored != 0 {
		t.Fatalf("unexpected hard failures: %d", st.Errored)
	}
	// Per-shard counters sum to the cluster totals (same snapshot).
	sumAdm, sumServed, sumShed := 0, 0, 0
	for _, ss := range st.Shards {
		sumAdm += ss.Admitted
		sumServed += ss.Served
		sumShed += ss.Shed
	}
	if sumAdm != st.Admitted || sumServed != st.Served || sumShed != st.Shed {
		t.Fatalf("per-shard sums disagree with cluster totals")
	}
}

// TestCrashLeavesPostmortem pins the flight-recorder capture path outside
// the chaos experiment: killing a shard snapshots its ring (which holds
// the injected fault marker), and a warm revival appends to the same ring
// rather than losing it.
func TestCrashLeavesPostmortem(t *testing.T) {
	target, e, tk, _ := clusterSetup(t)
	cl, err := New(clusterConfig(tk, 2, 1), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	const at = 3 * time.Second
	cl.CrashShard(1, at)
	pms := cl.Postmortems()
	if len(pms) != 1 {
		t.Fatalf("postmortems = %d, want 1", len(pms))
	}
	pm := pms[0]
	if pm.Shard != 1 || pm.At != at || pm.Reason != FaultCrash {
		t.Fatalf("postmortem mismatch: %+v", pm)
	}
	found := false
	for _, r := range pm.Records {
		if r.Kind == trace.KindFaultCrash && r.Start == at {
			found = true
		}
	}
	if !found {
		t.Fatalf("postmortem ring lacks the crash marker:\n%s", pm)
	}
	if err := cl.ReviveShard(1, at+time.Second); err != nil {
		t.Fatal(err)
	}
	// The revival reuses the ring: crash marker and revive marker coexist.
	var kinds []trace.Kind
	for _, r := range cl.FlightRecorder(1).Snapshot() {
		kinds = append(kinds, r.Kind)
	}
	wantSeq := map[trace.Kind]bool{trace.KindFaultCrash: false, trace.KindFaultRevive: false}
	for _, k := range kinds {
		if _, ok := wantSeq[k]; ok {
			wantSeq[k] = true
		}
	}
	for k, seen := range wantSeq {
		if !seen {
			t.Fatalf("ring after revival missing %v (got %v)", k, kinds)
		}
	}
}
