package cluster

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"fastrl/internal/serving"
	"fastrl/internal/workload"
)

// TestClusterStreamMatchesServe pins the cluster-level wrapper
// equivalence: token chunks drained from a routed stream concatenate to
// exactly what Serve returns for the same seed (routing included — both
// paths go through the same policy), with exactly one terminal event, and
// TTFT/ITL percentiles surface in the cluster stats.
func TestClusterStreamMatchesServe(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	req := Request{
		Prompt: gen.Pool()[0].Prompt, MaxNew: 48, Seed: 3,
		Prior: workload.LengthPrior{TargetLen: 40, Sharpness: 25},
	}

	mk := func() *Cluster {
		cfg := clusterConfig(tk, 2, 1)
		cfg.Policy = NewPrefixAffinity(4) // deterministic routing
		cl, err := New(cfg, target, e)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}

	clA := mk()
	want, err := clA.Serve(context.Background(), req)
	clA.Stop()
	if err != nil {
		t.Fatal(err)
	}

	clB := mk()
	defer clB.Stop()
	st, err := clB.Stream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard != want.Shard {
		t.Fatalf("stream routed to shard %d, serve to %d", st.Shard, want.Shard)
	}
	var tokens []int
	var usage serving.Response
	terminals := 0
	for {
		ev, err := st.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case serving.EventTokens:
			tokens = append(tokens, ev.Tokens...)
		case serving.EventUsage:
			usage = ev.Usage
			terminals++
		}
	}
	if terminals != 1 {
		t.Fatalf("saw %d terminal events, want exactly 1", terminals)
	}
	if len(tokens) != len(want.Tokens) {
		t.Fatalf("streamed %d tokens, one-shot %d", len(tokens), len(want.Tokens))
	}
	for i := range want.Tokens {
		if tokens[i] != want.Tokens[i] {
			t.Fatalf("streamed token %d differs from the one-shot response", i)
		}
	}
	if usage.TTFT <= 0 {
		t.Fatalf("usage TTFT = %v", usage.TTFT)
	}

	stats := clB.Stats()
	if stats.Served != 1 {
		t.Fatalf("served = %d, want 1", stats.Served)
	}
	if stats.TTFTP50 <= 0 || stats.TTFTP95 < stats.TTFTP50 {
		t.Fatalf("cluster TTFT percentiles wrong: p50=%v p95=%v", stats.TTFTP50, stats.TTFTP95)
	}
	if stats.ITLP50 <= 0 {
		t.Fatalf("cluster ITL p50 = %v, want > 0 for a multi-chunk response", stats.ITLP50)
	}
}

// TestClusterStreamCancelReleasesAdmission pins cancellation propagation
// through the router: cancelling a routed stream retires the request on
// its owning shard, releases the admission reservation (so the slot can
// be re-used), and is accounted as cancelled, not served — without
// perturbing the shard's remaining traffic.
func TestClusterStreamCancelReleasesAdmission(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cfg := clusterConfig(tk, 1, 1)
	cfg.Admission.MaxPending = 2
	cl, err := New(cfg, target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	st, err := cl.Stream(context.Background(), Request{
		Prompt: gen.Pool()[0].Prompt, MaxNew: 1 << 19, Seed: 1,
		Prior: workload.LengthPrior{TargetLen: 1 << 19, Sharpness: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Confirm it is decoding, then cancel mid-flight.
	if ev, err := st.Recv(); err != nil || ev.Kind != serving.EventTokens {
		t.Fatalf("first event: kind=%d err=%v", ev.Kind, err)
	}
	st.Cancel()
	resp, err := st.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
	if len(resp.Tokens) == 0 {
		t.Fatal("no partial tokens on a mid-flight cancel")
	}

	// The admission slot is released: with MaxPending 2, two fresh
	// requests must both be admitted and served.
	for i := 0; i < 2; i++ {
		r, err := cl.Serve(context.Background(), Request{
			Prompt: gen.Pool()[1+i].Prompt, MaxNew: 24, Seed: int64(10 + i),
		})
		if err != nil {
			t.Fatalf("post-cancel serve %d: %v", i, err)
		}
		if len(r.Tokens) == 0 {
			t.Fatalf("post-cancel serve %d returned no tokens", i)
		}
	}

	stats := cl.Stats()
	if stats.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", stats.Cancelled)
	}
	if stats.Served != 2 {
		t.Fatalf("served = %d, want 2 (cancelled request must not count)", stats.Served)
	}
	// Outstanding reservations drain to zero once everything terminal.
	deadline := time.Now().Add(5 * time.Second)
	for {
		total := 0
		for _, ss := range cl.Stats().Shards {
			total += ss.Pending
		}
		if total == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard backlog never drained: %d", total)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterStreamOnCancelledContext pins the fast-fail: an
// already-cancelled context neither reserves an admission slot nor
// enqueues.
func TestClusterStreamOnCancelledContext(t *testing.T) {
	target, e, tk, gen := clusterSetup(t)
	cl, err := New(clusterConfig(tk, 2, 1), target, e)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Stream(ctx, Request{Prompt: gen.Pool()[0].Prompt, MaxNew: 8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream on dead ctx = %v, want context.Canceled", err)
	}
	for _, ss := range cl.Stats().Shards {
		if ss.Pending != 0 || ss.Admitted != 0 {
			t.Fatalf("dead caller consumed shard %d resources: %+v", ss.ID, ss)
		}
	}
}
