package coordinator

import (
	"sync"
	"time"
)

// MsgKind enumerates worker→coordinator messages.
type MsgKind int

const (
	// MsgIdle reports a worker finished its rollout requests.
	MsgIdle MsgKind = iota
	// MsgBusy reports a worker returning to rollout duty.
	MsgBusy
	// MsgRolloutComplete reports the global rollout barrier.
	MsgRolloutComplete
	// MsgDead reports a health-monitor crash/hang verdict for a worker.
	MsgDead
	// MsgDegraded reports a health-monitor slow-shard verdict.
	MsgDegraded
	// MsgRecovered reports a worker revived after death or degradation.
	MsgRecovered
)

// Msg is one worker message.
type Msg struct {
	Kind   MsgKind
	Worker int
	At     time.Duration
}

// Bus runs a Coordinator behind an asynchronous request-reply message
// loop, the in-process analogue of the paper's ZeroMQ centralized
// controller. Workers send state transitions; directives are delivered on
// per-worker channels.
type Bus struct {
	mu   sync.Mutex
	c    *Coordinator
	in   chan Msg
	outs []chan Action
	done chan struct{}
	wg   sync.WaitGroup
}

// NewBus starts the coordinator loop. Each worker owns outs[i], a
// buffered directive channel.
func NewBus(cfg Config) (*Bus, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	b := &Bus{
		c:    c,
		in:   make(chan Msg, 4*cfg.Workers),
		outs: make([]chan Action, cfg.Workers),
		done: make(chan struct{}),
	}
	for i := range b.outs {
		b.outs[i] = make(chan Action, 8)
	}
	b.wg.Add(1)
	go b.loop()
	return b, nil
}

// Send submits a worker message (non-blocking up to the buffer).
func (b *Bus) Send(m Msg) {
	select {
	case b.in <- m:
	case <-b.done:
	}
}

// Directives returns worker w's directive channel.
func (b *Bus) Directives(w int) <-chan Action { return b.outs[w] }

// Coordinator exposes the underlying state machine (snapshot reads).
func (b *Bus) Coordinator() *Coordinator {
	return b.c
}

// Snapshot returns the current worker states safely.
func (b *Bus) Snapshot() []State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.c.States()
}

// Close shuts the loop down gracefully.
func (b *Bus) Close() {
	close(b.done)
	b.wg.Wait()
}

func (b *Bus) loop() {
	defer b.wg.Done()
	for {
		select {
		case <-b.done:
			return
		case m := <-b.in:
			b.mu.Lock()
			var actions []Action
			switch m.Kind {
			case MsgIdle:
				actions = b.c.WorkerIdle(m.Worker, m.At)
			case MsgBusy:
				actions = b.c.WorkerBusy(m.Worker, m.At)
			case MsgRolloutComplete:
				actions = b.c.RolloutComplete(m.At)
			case MsgDead:
				actions = b.c.WorkerDead(m.Worker, m.At)
			case MsgDegraded:
				actions = b.c.WorkerDegraded(m.Worker, m.At)
			case MsgRecovered:
				actions = b.c.WorkerRecovered(m.Worker, m.At)
			}
			b.mu.Unlock()
			for _, a := range actions {
				for _, w := range a.Workers {
					select {
					case b.outs[w] <- a:
					default:
						// A full directive buffer means the worker is not
						// draining; drop rather than deadlock the loop (the
						// worker will resync from the next directive).
					}
				}
			}
		}
	}
}
