package coordinator

import (
	"math/rand"
	"testing"
	"time"
)

// TestCoordinatorInvariants drives the state machine with random event
// sequences and checks structural invariants after every event:
//   - a leader exists if and only if at least one worker is TRAINING
//   - the leader itself is TRAINING
//   - worker states are always one of the three defined values
//   - RolloutComplete always clears all TRAINING workers
func TestCoordinatorInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		workers := 1 + rng.Intn(8)
		threshold := 1 + rng.Intn(3)
		c, err := New(Config{Workers: workers, IdleThreshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		for ev := 0; ev < 60; ev++ {
			w := rng.Intn(workers)
			now := time.Duration(ev)
			switch rng.Intn(4) {
			case 0:
				c.WorkerIdle(w, now)
			case 1:
				c.WorkerBusy(w, now)
			case 2:
				c.RolloutComplete(now)
			case 3:
				c.Reset()
			}
			checkInvariants(t, c, trial, ev)
		}
	}
}

func checkInvariants(t *testing.T, c *Coordinator, trial, ev int) {
	t.Helper()
	training := c.TrainingWorkers()
	leader := c.Leader()
	if len(training) > 0 && leader < 0 {
		t.Fatalf("trial %d ev %d: training workers %v without a leader", trial, ev, training)
	}
	if len(training) == 0 && leader >= 0 {
		t.Fatalf("trial %d ev %d: leader %d with no training workers", trial, ev, leader)
	}
	if leader >= 0 && c.State(leader) != Training {
		t.Fatalf("trial %d ev %d: leader %d in state %v", trial, ev, leader, c.State(leader))
	}
	for w, s := range c.States() {
		if s != Busy && s != Idle && s != Training {
			t.Fatalf("trial %d ev %d: worker %d invalid state %d", trial, ev, w, int(s))
		}
	}
}

// TestCoordinatorActionsConsistent checks emitted actions reference valid
// workers and that StartTraining includes its leader.
func TestCoordinatorActionsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := New(Config{Workers: 6, IdleThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	var actions []Action
	for ev := 0; ev < 300; ev++ {
		w := rng.Intn(6)
		now := time.Duration(ev)
		switch rng.Intn(3) {
		case 0:
			actions = append(actions, c.WorkerIdle(w, now)...)
		case 1:
			actions = append(actions, c.WorkerBusy(w, now)...)
		case 2:
			actions = append(actions, c.RolloutComplete(now)...)
		}
	}
	for _, a := range actions {
		if len(a.Workers) == 0 {
			t.Fatalf("action %v has no workers", a)
		}
		for _, w := range a.Workers {
			if w < 0 || w >= 6 {
				t.Fatalf("action %v references invalid worker", a)
			}
		}
		if a.Kind == StartTraining {
			found := false
			for _, w := range a.Workers {
				if w == a.Leader {
					found = true
				}
			}
			if !found {
				t.Fatalf("StartTraining %v does not include its leader", a)
			}
		}
	}
	if len(actions) == 0 {
		t.Fatal("no actions emitted over 300 events")
	}
}
