package coordinator

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestCoordinatorInvariants drives the state machine with random event
// sequences and checks structural invariants after every event:
//   - a leader exists if and only if at least one worker is TRAINING
//   - the leader itself is TRAINING (so never DEAD or DEGRADED)
//   - worker states are always one of the five defined values
//   - RolloutComplete always clears all TRAINING workers
func TestCoordinatorInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		workers := 1 + rng.Intn(8)
		threshold := 1 + rng.Intn(3)
		c, err := New(Config{Workers: workers, IdleThreshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		for ev := 0; ev < 60; ev++ {
			w := rng.Intn(workers)
			now := time.Duration(ev)
			switch rng.Intn(7) {
			case 0:
				c.WorkerIdle(w, now)
			case 1:
				c.WorkerBusy(w, now)
			case 2:
				c.RolloutComplete(now)
			case 3:
				c.Reset()
			case 4:
				c.WorkerDead(w, now)
			case 5:
				c.WorkerDegraded(w, now)
			case 6:
				c.WorkerRecovered(w, now)
			}
			checkInvariants(t, c, trial, ev)
		}
	}
}

func checkInvariants(t *testing.T, c *Coordinator, trial, ev int) {
	t.Helper()
	training := c.TrainingWorkers()
	leader := c.Leader()
	if len(training) > 0 && leader < 0 {
		t.Fatalf("trial %d ev %d: training workers %v without a leader", trial, ev, training)
	}
	if len(training) == 0 && leader >= 0 {
		t.Fatalf("trial %d ev %d: leader %d with no training workers", trial, ev, leader)
	}
	if leader >= 0 && c.State(leader) != Training {
		t.Fatalf("trial %d ev %d: leader %d in state %v", trial, ev, leader, c.State(leader))
	}
	for w, s := range c.States() {
		switch s {
		case Busy, Idle, Training, Degraded, Dead:
		default:
			t.Fatalf("trial %d ev %d: worker %d invalid state %d", trial, ev, w, int(s))
		}
		if (s == Dead || s == Degraded) && w == leader {
			t.Fatalf("trial %d ev %d: leader %d is %v", trial, ev, w, s)
		}
	}
}

// TestCoordinatorActionsConsistent checks emitted actions reference valid
// workers and that StartTraining includes its leader.
func TestCoordinatorActionsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := New(Config{Workers: 6, IdleThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	var actions []Action
	for ev := 0; ev < 300; ev++ {
		w := rng.Intn(6)
		now := time.Duration(ev)
		switch rng.Intn(3) {
		case 0:
			actions = append(actions, c.WorkerIdle(w, now)...)
		case 1:
			actions = append(actions, c.WorkerBusy(w, now)...)
		case 2:
			actions = append(actions, c.RolloutComplete(now)...)
		}
	}
	for _, a := range actions {
		if len(a.Workers) == 0 {
			t.Fatalf("action %v has no workers", a)
		}
		for _, w := range a.Workers {
			if w < 0 || w >= 6 {
				t.Fatalf("action %v references invalid worker", a)
			}
		}
		if a.Kind == StartTraining {
			found := false
			for _, w := range a.Workers {
				if w == a.Leader {
					found = true
				}
			}
			if !found {
				t.Fatalf("StartTraining %v does not include its leader", a)
			}
		}
	}
	if len(actions) == 0 {
		t.Fatal("no actions emitted over 300 events")
	}
}

// TestFaultTransitions pins the health-state edges: a dead worker ignores
// load-driven promotions, a training leader's death migrates the session,
// and recovery is the only path back to duty.
func TestFaultTransitions(t *testing.T) {
	c, err := New(Config{Workers: 4, IdleThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Start a session led by worker 0 with workers 0 and 1.
	c.WorkerIdle(0, 0)
	c.WorkerIdle(1, 1)
	if c.Leader() != 0 || c.State(0) != Training || c.State(1) != Training {
		t.Fatalf("session setup wrong: leader=%d states=%v", c.Leader(), c.States())
	}
	// Killing the leader preempts it and migrates leadership to worker 1.
	acts := c.WorkerDead(0, 2)
	if len(acts) != 1 || acts[0].Kind != PreemptTraining {
		t.Fatalf("leader death actions = %v", acts)
	}
	if c.State(0) != Dead || c.Leader() != 1 || c.State(1) != Training {
		t.Fatalf("after leader death: leader=%d states=%v", c.Leader(), c.States())
	}
	// Load pressure cannot resurrect a dead worker.
	if acts := c.WorkerBusy(0, 3); acts != nil {
		t.Fatalf("WorkerBusy on dead worker emitted %v", acts)
	}
	if c.State(0) != Dead {
		t.Fatalf("dead worker promoted to %v by WorkerBusy", c.State(0))
	}
	if c.WorkerIdle(0, 4); c.State(0) != Dead {
		t.Fatalf("dead worker moved to %v by WorkerIdle", c.State(0))
	}
	// A step barrier does not revive it either.
	c.Reset()
	if c.State(0) != Dead {
		t.Fatalf("Reset revived dead worker to %v", c.State(0))
	}
	// Degrading a busy worker quarantines it; death outranks degradation.
	c.WorkerDegraded(2, 5)
	if c.State(2) != Degraded {
		t.Fatalf("worker 2 state %v, want DEGRADED", c.State(2))
	}
	c.WorkerDead(2, 6)
	if c.State(2) != Dead {
		t.Fatalf("worker 2 state %v, want DEAD", c.State(2))
	}
	if c.WorkerDegraded(2, 7); c.State(2) != Dead {
		t.Fatalf("degradation demoted a dead worker to %v", c.State(2))
	}
	// Recovery returns both to serving duty.
	c.WorkerRecovered(0, 8)
	c.WorkerRecovered(2, 9)
	if c.State(0) != Busy || c.State(2) != Busy {
		t.Fatalf("recovery failed: states=%v", c.States())
	}
	// Recovering a healthy worker is a no-op.
	if acts := c.WorkerRecovered(3, 10); acts != nil || c.State(3) != Busy {
		t.Fatalf("recovering healthy worker: acts=%v state=%v", acts, c.State(3))
	}
}

// TestBusConcurrentEvents hammers the Bus with concurrent mixed messages
// (including the fault kinds) from several goroutines and checks the
// snapshot stays structurally valid throughout and after close. Run under
// -race this also proves the loop's locking discipline.
func TestBusConcurrentEvents(t *testing.T) {
	const workers = 6
	b, err := NewBus(Config{Workers: workers, IdleThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	kinds := []MsgKind{MsgIdle, MsgBusy, MsgRolloutComplete, MsgDead, MsgDegraded, MsgRecovered}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < 200; i++ {
				b.Send(Msg{
					Kind:   kinds[rng.Intn(len(kinds))],
					Worker: rng.Intn(workers),
					At:     time.Duration(i),
				})
			}
		}(g)
	}
	// Concurrent snapshot reader: every observed state must be valid.
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for w, s := range b.Snapshot() {
				switch s {
				case Busy, Idle, Training, Degraded, Dead:
				default:
					t.Errorf("worker %d invalid state %d", w, int(s))
					return
				}
			}
		}
	}()
	wg.Wait()
	// Drain: give the loop a moment to consume the buffered messages.
	for i := 0; i < 100 && len(b.in) > 0; i++ {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	reader.Wait()
	b.Close()
	// Post-close sends must not panic or block.
	b.Send(Msg{Kind: MsgDead, Worker: 0})
	// Final state machine must still satisfy the invariants.
	c := b.Coordinator()
	if leader := c.Leader(); leader >= 0 && c.State(leader) != Training {
		t.Fatalf("leader %d in state %v after close", leader, c.State(leader))
	}
}
