package coordinator

import (
	"testing"
	"time"
)

func TestIdleThresholdPromotion(t *testing.T) {
	c, err := New(Config{Workers: 4, IdleThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	// First idle worker: below threshold, nothing happens.
	if acts := c.WorkerIdle(1, 10); len(acts) != 0 {
		t.Fatalf("premature training start: %v", acts)
	}
	if c.State(1) != Idle {
		t.Fatalf("worker 1 state %v", c.State(1))
	}
	// Second idle worker reaches the threshold: session starts.
	acts := c.WorkerIdle(3, 20)
	if len(acts) != 1 || acts[0].Kind != StartTraining {
		t.Fatalf("expected StartTraining, got %v", acts)
	}
	if acts[0].Leader != 1 {
		t.Fatalf("leader should be lowest-id idle worker, got %d", acts[0].Leader)
	}
	if len(acts[0].Workers) != 2 {
		t.Fatalf("training workers %v", acts[0].Workers)
	}
	if c.State(1) != Training || c.State(3) != Training {
		t.Fatal("workers not in TRAINING state")
	}
	if c.State(0) != Busy || c.State(2) != Busy {
		t.Fatal("busy workers disturbed")
	}
}

func TestLateIdleWorkerJoins(t *testing.T) {
	c, _ := New(Config{Workers: 4, IdleThreshold: 2})
	c.WorkerIdle(0, 1)
	c.WorkerIdle(1, 2)
	// Session running; a third worker joins immediately.
	acts := c.WorkerIdle(2, 3)
	if len(acts) != 1 || acts[0].Kind != JoinTraining {
		t.Fatalf("expected JoinTraining, got %v", acts)
	}
	if acts[0].Leader != 0 {
		t.Fatalf("join should reference leader 0, got %d", acts[0].Leader)
	}
	if len(c.TrainingWorkers()) != 3 {
		t.Fatalf("training workers %v", c.TrainingWorkers())
	}
}

func TestRolloutCompletePreemptsAll(t *testing.T) {
	c, _ := New(Config{Workers: 3, IdleThreshold: 1})
	c.WorkerIdle(2, 1)
	c.WorkerIdle(0, 2)
	acts := c.RolloutComplete(5)
	if len(acts) != 1 || acts[0].Kind != PreemptTraining {
		t.Fatalf("expected PreemptTraining, got %v", acts)
	}
	if len(acts[0].Workers) != 2 {
		t.Fatalf("preempted %v", acts[0].Workers)
	}
	if c.Leader() != -1 {
		t.Fatal("leader not cleared")
	}
	// Idempotent when nothing trains.
	if acts := c.RolloutComplete(6); len(acts) != 0 {
		t.Fatalf("expected no actions, got %v", acts)
	}
}

func TestWorkerBusyPreemptsAndMigratesLeader(t *testing.T) {
	c, _ := New(Config{Workers: 3, IdleThreshold: 1})
	c.WorkerIdle(0, 1) // leader 0
	c.WorkerIdle(1, 2) // joins
	acts := c.WorkerBusy(0, 3)
	if len(acts) != 1 || acts[0].Kind != PreemptTraining {
		t.Fatalf("expected PreemptTraining for worker 0, got %v", acts)
	}
	if c.Leader() != 1 {
		t.Fatalf("leader should migrate to worker 1, got %d", c.Leader())
	}
	if c.State(0) != Busy {
		t.Fatal("worker 0 not busy")
	}
	// Last trainer leaving closes the session.
	c.WorkerBusy(1, 4)
	if c.Leader() != -1 {
		t.Fatalf("session should close, leader %d", c.Leader())
	}
}

func TestResetRestoresBusy(t *testing.T) {
	c, _ := New(Config{Workers: 3, IdleThreshold: 1})
	c.WorkerIdle(1, 1)
	c.Reset()
	for w, s := range c.States() {
		if s != Busy {
			t.Fatalf("worker %d state %v after reset", w, s)
		}
	}
	if c.Leader() != -1 {
		t.Fatal("leader survived reset")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Workers: 0}); err == nil {
		t.Fatal("expected error for zero workers")
	}
	c, err := New(Config{Workers: 1, IdleThreshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold clamps to 1: a single idle worker starts training.
	if acts := c.WorkerIdle(0, 1); len(acts) != 1 || acts[0].Kind != StartTraining {
		t.Fatalf("threshold clamp failed: %v", acts)
	}
}

func TestStateStrings(t *testing.T) {
	if Busy.String() != "BUSY" || Idle.String() != "IDLE" || Training.String() != "TRAINING" {
		t.Fatal("state strings wrong")
	}
	if StartTraining.String() != "start-training" || PreemptTraining.String() != "preempt-training" {
		t.Fatal("action strings wrong")
	}
}

func TestBusEndToEnd(t *testing.T) {
	b, err := NewBus(Config{Workers: 3, IdleThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	b.Send(Msg{Kind: MsgIdle, Worker: 0, At: 1})
	b.Send(Msg{Kind: MsgIdle, Worker: 2, At: 2})

	// Both workers should receive the StartTraining directive.
	for _, w := range []int{0, 2} {
		select {
		case a := <-b.Directives(w):
			if a.Kind != StartTraining || a.Leader != 0 {
				t.Fatalf("worker %d directive %v", w, a)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("worker %d: no directive", w)
		}
	}

	b.Send(Msg{Kind: MsgRolloutComplete, At: 3})
	for _, w := range []int{0, 2} {
		select {
		case a := <-b.Directives(w):
			if a.Kind != PreemptTraining {
				t.Fatalf("worker %d directive %v", w, a)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("worker %d: no preemption", w)
		}
	}

	// Snapshot must be consistent afterwards (eventually idle).
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := b.Snapshot()
		if snap[0] == Idle && snap[2] == Idle && snap[1] == Busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("states did not settle: %v", snap)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBusConcurrentSenders(t *testing.T) {
	b, err := NewBus(Config{Workers: 8, IdleThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				b.Send(Msg{Kind: MsgIdle, Worker: w, At: time.Duration(i)})
				b.Send(Msg{Kind: MsgBusy, Worker: w, At: time.Duration(i)})
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	// No deadlock, no panic; states settle to something valid.
	snap := b.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot %v", snap)
	}
}
