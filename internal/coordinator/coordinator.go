// Package coordinator implements the Worker Coordinator of the Adaptive
// Drafter (paper §4.2): a centralized controller that tracks rollout
// worker states (BUSY / IDLE / TRAINING), promotes idle workers to
// opportunistic drafter training once an idle threshold is reached,
// elects a training leader, and preempts training when rollout needs the
// resources back.
//
// The decision logic is a pure state machine (Coordinator) so the
// event-driven cluster simulation can drive it in virtual time; Bus wraps
// it in the asynchronous request-reply messaging pattern the paper
// implements over ZeroMQ, for live (goroutine) operation.
package coordinator

import (
	"fmt"
	"time"
)

// State is a rollout worker's lifecycle state.
type State int

const (
	// Busy: serving rollout requests.
	Busy State = iota
	// Idle: rollout finished on this worker, memory released.
	Idle
	// Training: engaged in drafter spot training.
	Training
	// Degraded: the health monitor observed the worker falling behind
	// (slow shard). It keeps its inflight work but the router stops
	// routing new requests to it.
	Degraded
	// Dead: the worker crashed or hung; its inflight work is failed over
	// to survivors and it takes no new work until revived.
	Dead

	// NumStates is the number of defined worker states, for sizing
	// per-state accumulators.
	NumStates = int(Dead) + 1
)

func (s State) String() string {
	switch s {
	case Busy:
		return "BUSY"
	case Idle:
		return "IDLE"
	case Training:
		return "TRAINING"
	case Degraded:
		return "DEGRADED"
	case Dead:
		return "DEAD"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ActionKind enumerates coordinator directives.
type ActionKind int

const (
	// StartTraining directs workers to begin a drafter training session.
	StartTraining ActionKind = iota
	// JoinTraining directs a worker to join the current session's
	// data-parallel group.
	JoinTraining
	// PreemptTraining directs workers to stop training and release
	// resources (graceful shutdown).
	PreemptTraining
)

func (k ActionKind) String() string {
	switch k {
	case StartTraining:
		return "start-training"
	case JoinTraining:
		return "join-training"
	case PreemptTraining:
		return "preempt-training"
	}
	return fmt.Sprintf("action(%d)", int(k))
}

// Action is one coordinator directive.
type Action struct {
	Kind    ActionKind
	Workers []int
	// Leader is the session leader (the first eligible worker, which sets
	// up the training session).
	Leader int
	At     time.Duration
}

// Config parameterises the coordinator.
type Config struct {
	// Workers is the number of rollout workers (one worker = one rollout
	// instance, e.g. a TP group).
	Workers int
	// IdleThreshold is the minimum number of idle workers before a
	// training session starts (paper: configurable threshold).
	IdleThreshold int
}

// Coordinator is the centralized decision state machine (rank 0).
type Coordinator struct {
	cfg    Config
	states []State
	// leader is the active session leader, -1 when no session runs.
	leader int
	// History of emitted actions (diagnostics).
	Log []Action
}

// New creates a coordinator with all workers BUSY.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("coordinator: need at least one worker")
	}
	if cfg.IdleThreshold < 1 {
		cfg.IdleThreshold = 1
	}
	return &Coordinator{
		cfg:    cfg,
		states: make([]State, cfg.Workers),
		leader: -1,
	}, nil
}

// States returns a snapshot of worker states.
func (c *Coordinator) States() []State {
	return append([]State(nil), c.states...)
}

// State returns one worker's state.
func (c *Coordinator) State(worker int) State { return c.states[worker] }

// Leader returns the active training leader, or -1.
func (c *Coordinator) Leader() int { return c.leader }

// TrainingWorkers returns the workers currently in TRAINING state.
func (c *Coordinator) TrainingWorkers() []int {
	var out []int
	for w, s := range c.states {
		if s == Training {
			out = append(out, w)
		}
	}
	return out
}

func (c *Coordinator) idleWorkers() []int {
	var out []int
	for w, s := range c.states {
		if s == Idle {
			out = append(out, w)
		}
	}
	return out
}

func (c *Coordinator) emit(a Action) Action {
	c.Log = append(c.Log, a)
	return a
}

// WorkerIdle processes a BUSY→IDLE transition (the worker's rollout
// requests all finished). When the idle pool reaches the threshold, the
// coordinator promotes idle workers to training: the first eligible
// worker becomes the session leader (it sets up the session); if a
// session is already running, the new worker joins its data-parallel
// group.
func (c *Coordinator) WorkerIdle(worker int, now time.Duration) []Action {
	switch c.states[worker] {
	case Training:
		// A training worker cannot go idle without preemption first.
		return nil
	case Dead, Degraded:
		// A failed or quarantined worker must be recovered explicitly
		// before rejoining the idle pool.
		return nil
	}
	c.states[worker] = Idle

	idle := c.idleWorkers()
	if c.leader >= 0 {
		// Session running: the idle worker joins immediately.
		c.states[worker] = Training
		return []Action{c.emit(Action{Kind: JoinTraining, Workers: []int{worker}, Leader: c.leader, At: now})}
	}
	if len(idle) < c.cfg.IdleThreshold {
		return nil
	}
	// Leader election: the first (lowest-id) eligible worker.
	leader := idle[0]
	c.leader = leader
	for _, w := range idle {
		c.states[w] = Training
	}
	return []Action{c.emit(Action{Kind: StartTraining, Workers: idle, Leader: leader, At: now})}
}

// WorkerBusy processes a transition back to rollout duty (e.g. the next
// RL step starting on this worker).
func (c *Coordinator) WorkerBusy(worker int, now time.Duration) []Action {
	if c.states[worker] == Dead || c.states[worker] == Degraded {
		// Failed or quarantined workers cannot be promoted back to duty by
		// load pressure; WorkerRecovered is the only way out.
		return nil
	}
	var actions []Action
	if c.states[worker] == Training {
		actions = append(actions, c.emit(Action{
			Kind: PreemptTraining, Workers: []int{worker}, Leader: c.leader, At: now,
		}))
		if worker == c.leader {
			c.migrateLeader(now, &actions)
		}
	}
	c.states[worker] = Busy
	return actions
}

// WorkerDead processes a health-monitor verdict that the worker crashed or
// hung. If the worker was mid-training the session is preempted (and the
// leadership migrated) exactly as for a busy preemption, so a shard failure
// never strands a training session.
func (c *Coordinator) WorkerDead(worker int, now time.Duration) []Action {
	if c.states[worker] == Dead {
		return nil
	}
	var actions []Action
	if c.states[worker] == Training {
		actions = append(actions, c.emit(Action{
			Kind: PreemptTraining, Workers: []int{worker}, Leader: c.leader, At: now,
		}))
		if worker == c.leader {
			c.migrateLeader(now, &actions)
		}
	}
	c.states[worker] = Dead
	return actions
}

// WorkerDegraded quarantines a slow worker: it keeps running (and keeps its
// inflight requests) but is excluded from routing and training until
// recovered. A dead worker stays dead — degradation is a weaker verdict.
func (c *Coordinator) WorkerDegraded(worker int, now time.Duration) []Action {
	if c.states[worker] == Dead || c.states[worker] == Degraded {
		return nil
	}
	var actions []Action
	if c.states[worker] == Training {
		actions = append(actions, c.emit(Action{
			Kind: PreemptTraining, Workers: []int{worker}, Leader: c.leader, At: now,
		}))
		if worker == c.leader {
			c.migrateLeader(now, &actions)
		}
	}
	c.states[worker] = Degraded
	return actions
}

// WorkerRecovered returns a dead or degraded worker to BUSY (serving) duty
// after revival. It is a no-op for healthy workers.
func (c *Coordinator) WorkerRecovered(worker int, now time.Duration) []Action {
	if c.states[worker] != Dead && c.states[worker] != Degraded {
		return nil
	}
	c.states[worker] = Busy
	return nil
}

// migrateLeader hands the session to another training worker or closes it.
func (c *Coordinator) migrateLeader(now time.Duration, actions *[]Action) {
	for w, s := range c.states {
		if s == Training && w != c.leader {
			c.leader = w
			return
		}
	}
	c.leader = -1
}

// RolloutComplete halts any ongoing drafter training for the step barrier:
// the coordinator performs a graceful shutdown so the training state is
// checkpointed before the next RL stage claims the GPUs.
func (c *Coordinator) RolloutComplete(now time.Duration) []Action {
	training := c.TrainingWorkers()
	c.leader = -1
	if len(training) == 0 {
		return nil
	}
	for _, w := range training {
		c.states[w] = Idle
	}
	return []Action{c.emit(Action{Kind: PreemptTraining, Workers: training, Leader: -1, At: now})}
}

// Reset returns all workers to BUSY for the next RL step's rollout. Dead
// and degraded workers are left as-is: a step barrier does not revive a
// failed shard.
func (c *Coordinator) Reset() {
	for w := range c.states {
		if c.states[w] == Dead || c.states[w] == Degraded {
			continue
		}
		c.states[w] = Busy
	}
	c.leader = -1
}
