package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fastrl/internal/gpu"
	"fastrl/internal/tokenizer"
)

func testLM(t *testing.T) (*LM, *tokenizer.Tokenizer) {
	t.Helper()
	tk := tokenizer.New()
	cfg := DefaultConfig(tk.VocabSize(), gpu.Qwen7B)
	cfg.Buckets = 1 << 10 // keep tests fast
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	lm := New(cfg, &GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})
	return lm, tk
}

func TestSoftmaxIsDistribution(t *testing.T) {
	f := func(raw []float32, tempRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float32, len(raw))
		for i, x := range raw {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				x = 0
			}
			// Clamp to a sane logit range.
			if x > 50 {
				x = 50
			}
			if x < -50 {
				x = -50
			}
			logits[i] = x
		}
		temp := 0.1 + float64(tempRaw)/64
		probs := make([]float32, len(logits))
		Softmax(logits, temp, probs)
		var sum float64
		for _, p := range probs {
			if p < 0 || math.IsNaN(float64(p)) {
				return false
			}
			sum += float64(p)
		}
		return math.Abs(sum-1) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxGreedyAtZeroTemp(t *testing.T) {
	logits := []float32{0.1, 3.0, -2, 2.9}
	probs := make([]float32, 4)
	Softmax(logits, 0, probs)
	if probs[1] != 1 {
		t.Fatalf("zero-temp softmax not one-hot at argmax: %v", probs)
	}
}

func TestSampleProbsMatchesDistribution(t *testing.T) {
	probs := []float32{0.5, 0.3, 0.2}
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 3)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[SampleProbs(probs, rng)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-float64(p)) > 0.01 {
			t.Fatalf("token %d frequency %v, want %v", i, got, p)
		}
	}
}

func TestTopK(t *testing.T) {
	probs := []float32{0.1, 0.4, 0.2, 0.3}
	got := TopK(probs, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("TopK = %v", got)
	}
	if got := TopK(probs, 100); len(got) != 4 {
		t.Fatalf("TopK clamp failed: %v", got)
	}
}

func TestTableAccumulateAndGrad(t *testing.T) {
	tb := NewTable(4, 3)
	copy(tb.Row(1), []float32{1, 2, 3})
	copy(tb.Row(2), []float32{10, 20, 30})
	dst := make([]float32, 3)
	tb.Accumulate([]int{1, 2}, dst)
	if dst[0] != 11 || dst[1] != 22 || dst[2] != 33 {
		t.Fatalf("Accumulate = %v", dst)
	}
	tb.AddGrad([]int{1}, []float32{1, 1, 1}, 0.5)
	if tb.Row(1)[0] != 1.5 {
		t.Fatalf("AddGrad row1 = %v", tb.Row(1))
	}
	if tb.Row(0)[0] != 0.5 { // bias row always updated
		t.Fatalf("AddGrad bias = %v", tb.Row(0))
	}
	if tb.Row(2)[0] != 10 { // untouched
		t.Fatalf("AddGrad touched wrong row: %v", tb.Row(2))
	}
}

func TestTableCloneIndependence(t *testing.T) {
	tb := NewTable(2, 2)
	tb.Row(1)[0] = 5
	c := tb.Clone()
	c.Row(1)[0] = 9
	if tb.Row(1)[0] != 5 {
		t.Fatal("Clone shares storage")
	}
	if d := tb.L2Distance(c); math.Abs(d-4) > 1e-6 {
		t.Fatalf("L2Distance = %v, want 4", d)
	}
}

func TestLMDeterminism(t *testing.T) {
	a, tk := testLM(t)
	b, _ := testLM(t)
	ctx := Context{Tokens: []int{tk.Bos(), tk.Digit(3), tk.MustID("+")}, PromptLen: 3}
	pa := make([]float32, a.Config().Vocab)
	pb := make([]float32, b.Config().Vocab)
	a.Probs(ctx, nil, 1, pa)
	b.Probs(ctx, nil, 1, pb)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same-seed models disagree")
		}
	}
}

func TestGrammarPriorShapesAnswers(t *testing.T) {
	lm, tk := testLM(t)
	probs := make([]float32, lm.Config().Vocab)
	// After <answer>, digits should dominate.
	ctx := Context{Tokens: []int{tk.Bos(), tk.Answer()}, PromptLen: 1}
	lm.Probs(ctx, nil, 1, probs)
	var digitMass float32
	for d := 0; d <= 9; d++ {
		digitMass += probs[tk.Digit(d)]
	}
	if digitMass < 0.5 {
		t.Fatalf("digit mass after <answer> = %v, want > 0.5", digitMass)
	}
	// After <answer> digit, EOS should be likely.
	ctx = Context{Tokens: []int{tk.Bos(), tk.Answer(), tk.Digit(4)}, PromptLen: 1}
	lm.Probs(ctx, nil, 1, probs)
	if probs[tk.Eos()] < 0.3 {
		t.Fatalf("eos probability after answer digit = %v", probs[tk.Eos()])
	}
}

func TestLogitBias(t *testing.T) {
	lm, tk := testLM(t)
	ctx := Context{Tokens: []int{tk.Bos(), tk.MustID("the")}, PromptLen: 1}
	base := make([]float32, lm.Config().Vocab)
	biased := make([]float32, lm.Config().Vocab)
	lm.Probs(ctx, nil, 1, base)
	lm.Probs(ctx, map[int]float32{tk.Eos(): -10}, 1, biased)
	if biased[tk.Eos()] >= base[tk.Eos()] {
		t.Fatalf("negative bias did not reduce eos probability: %v >= %v",
			biased[tk.Eos()], base[tk.Eos()])
	}
}

func TestPolicyGradientShiftsDistribution(t *testing.T) {
	lm, tk := testLM(t)
	prompt := []int{tk.Bos(), tk.Digit(3), tk.MustID("+"), tk.Digit(4), tk.MustID("=")}
	resp := []int{tk.Answer(), tk.Digit(7), tk.Eos()}
	full := append(append([]int{}, prompt...), resp...)
	ctx := Context{Tokens: full, PromptLen: len(prompt)}

	before := respProb(lm, ctx)
	for i := 0; i < 10; i++ {
		lm.PolicyGradientStep(ctx, 1.0, 0.5, 1.0, nil, 0)
	}
	after := respProb(lm, ctx)
	if after <= before {
		t.Fatalf("positive-advantage update did not increase response probability: %v <= %v", after, before)
	}
	if lm.Version != 10 {
		t.Fatalf("Version = %d, want 10", lm.Version)
	}
}

func TestPolicyGradientNegativeAdvantage(t *testing.T) {
	lm, tk := testLM(t)
	prompt := []int{tk.Bos(), tk.Digit(2), tk.MustID("*"), tk.Digit(3), tk.MustID("=")}
	resp := []int{tk.Answer(), tk.Digit(5), tk.Eos()}
	full := append(append([]int{}, prompt...), resp...)
	ctx := Context{Tokens: full, PromptLen: len(prompt)}
	before := respProb(lm, ctx)
	lm.PolicyGradientStep(ctx, -1.0, 0.5, 1.0, nil, 0)
	after := respProb(lm, ctx)
	if after >= before {
		t.Fatalf("negative-advantage update did not decrease response probability: %v >= %v", after, before)
	}
}

func TestKLPenaltyRestrainsDrift(t *testing.T) {
	free, tk := testLM(t)
	constrained, _ := testLM(t)
	ref := free.Clone()

	prompt := []int{tk.Bos(), tk.Digit(1), tk.MustID("+"), tk.Digit(1), tk.MustID("=")}
	resp := []int{tk.Answer(), tk.Digit(2), tk.Eos()}
	full := append(append([]int{}, prompt...), resp...)
	ctx := Context{Tokens: full, PromptLen: len(prompt)}

	for i := 0; i < 20; i++ {
		free.PolicyGradientStep(ctx, 1, 0.5, 1, nil, 0)
		constrained.PolicyGradientStep(ctx, 1, 0.5, 1, ref, 0.5)
	}
	dFree := free.Table().L2Distance(ref.Table())
	dCon := constrained.Table().L2Distance(ref.Table())
	if dCon >= dFree {
		t.Fatalf("KL-constrained drift %v should be below unconstrained %v", dCon, dFree)
	}
}

func TestHiddenSketchVariesWithContext(t *testing.T) {
	lm, tk := testLM(t)
	h1 := make([]float32, HiddenDim)
	h2 := make([]float32, HiddenDim)
	lm.Hidden(Context{Tokens: []int{tk.Bos(), tk.Digit(1)}, PromptLen: 1}, h1)
	lm.Hidden(Context{Tokens: []int{tk.Bos(), tk.MustID("sum")}, PromptLen: 1}, h2)
	same := true
	for i := range h1 {
		if h1[i] != h2[i] {
			same = false
		}
		if h1[i] < -1 || h1[i] > 1 {
			t.Fatalf("hidden dim %d out of [-1,1]: %v", i, h1[i])
		}
	}
	if same {
		t.Fatal("hidden sketch identical across different contexts")
	}
}

func TestCloneIsolation(t *testing.T) {
	lm, tk := testLM(t)
	ref := lm.Clone()
	prompt := []int{tk.Bos(), tk.Digit(5), tk.MustID("=")}
	full := append(append([]int{}, prompt...), tk.Answer(), tk.Digit(5), tk.Eos())
	ctx := Context{Tokens: full, PromptLen: len(prompt)}
	lm.PolicyGradientStep(ctx, 1, 1, 1, nil, 0)
	if lm.Table().L2Distance(ref.Table()) == 0 {
		t.Fatal("update did not change weights")
	}
	pa := make([]float32, lm.Config().Vocab)
	pb := make([]float32, lm.Config().Vocab)
	lm.Probs(Context{Tokens: prompt, PromptLen: len(prompt)}, nil, 1, pa)
	ref.Probs(Context{Tokens: prompt, PromptLen: len(prompt)}, nil, 1, pb)
	diff := false
	for i := range pa {
		if pa[i] != pb[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("reference model tracked policy update")
	}
}

func TestLogProbConsistency(t *testing.T) {
	lm, tk := testLM(t)
	prompt := []int{tk.Bos(), tk.Digit(9)}
	full := append(append([]int{}, prompt...), tk.Answer(), tk.Digit(9), tk.Eos())
	ctx := Context{Tokens: full, PromptLen: len(prompt)}
	lp := lm.LogProb(ctx, 1)
	if lp >= 0 {
		t.Fatalf("log prob of a sequence should be negative, got %v", lp)
	}
	if want := math.Log(respProb(lm, ctx)); math.Abs(lp-want) > 1e-3 {
		t.Fatalf("LogProb = %v, want %v", lp, want)
	}
}

// respProb returns the product probability of the generated suffix.
func respProb(lm *LM, ctx Context) float64 {
	probs := make([]float32, lm.Config().Vocab)
	p := 1.0
	for pos := ctx.PromptLen; pos < len(ctx.Tokens); pos++ {
		sub := Context{Tokens: ctx.Tokens[:pos], PromptLen: ctx.PromptLen}
		lm.Probs(sub, nil, 1, probs)
		p *= float64(probs[ctx.Tokens[pos]])
	}
	return p
}

func TestFeaturesWithinTable(t *testing.T) {
	lm, tk := testLM(t)
	rng := rand.New(rand.NewSource(3))
	var buf [8]int
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		toks := make([]int, n)
		for i := range toks {
			toks[i] = rng.Intn(tk.VocabSize())
		}
		feats := lm.Features(Context{Tokens: toks, PromptLen: rng.Intn(n + 1)}, buf[:0])
		for _, f := range feats {
			if f < 1 || f >= lm.Table().Rows {
				t.Fatalf("feature %d out of table range [1,%d)", f, lm.Table().Rows)
			}
		}
	}
}
