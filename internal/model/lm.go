package model

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fastrl/internal/gpu"
)

// HiddenDim is the dimensionality of the exposed hidden-state sketch
// consumed by Eagle-style drafters.
const HiddenDim = 32

// maxFeatures bounds the active feature rows per context
// (len(Orders)+len(PromptOrders)). The scoring hot paths stage features
// in [maxFeatures]int stack buffers; New rejects configs that exceed it
// so the zero-allocation contract cannot silently break.
const maxFeatures = 8

// Config parameterises a target LM.
type Config struct {
	// Vocab is the vocabulary size.
	Vocab int
	// Orders are the n-gram context orders (e.g. 1,2,3).
	Orders []int
	// PromptOrders are the context orders additionally combined with the
	// prompt hash. They stand in for attention to the prompt: they let the
	// model condition its next token on which problem it is solving even
	// when the prompt has scrolled out of the local n-gram window.
	PromptOrders []int
	// Buckets is the number of hash buckets per order.
	Buckets int
	// InitScale is the Gaussian scale of random initialisation; larger
	// values make the base distribution more peaked.
	InitScale float64
	// PromptScale attenuates the initial weight scale of prompt-combined
	// feature rows relative to InitScale. Prompt conditioning stays
	// RL-learnable (policy gradients update the rows), but the base
	// distribution is dominated by shared n-gram structure, as in real
	// language models where most next-token mass is locally predictable.
	PromptScale float64
	// Seed drives deterministic initialisation.
	Seed int64
	// Arch is the cost-model architecture this LM represents.
	Arch gpu.Arch
}

// DefaultConfig returns the standard target configuration for the given
// cost-model architecture.
func DefaultConfig(vocab int, arch gpu.Arch) Config {
	return Config{
		Vocab:        vocab,
		Orders:       []int{1, 2, 3},
		PromptOrders: []int{1, 2},
		Buckets:      1 << 14,
		InitScale:    2.2,
		PromptScale:  0.35,
		Seed:         arch2seed(arch),
		Arch:         arch,
	}
}

func arch2seed(a gpu.Arch) int64 {
	var h uint64 = 1469598103934665603
	for _, c := range []byte(a.Name) {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

// Context is the model input for one position: the full token sequence so
// far and the length of the prompt prefix.
type Context struct {
	Tokens    []int
	PromptLen int
}

// PromptHash returns a stable hash of the prompt prefix.
func (c Context) PromptHash() uint64 {
	return hashTokens(c.Tokens[:min(c.PromptLen, len(c.Tokens))], 0x9e3779b97f4a7c15)
}

// LM is the simulated target language model.
type LM struct {
	cfg   Config
	table *Table
	// proj is a fixed random projection of logits into the hidden sketch;
	// it is part of the frozen "architecture", not trained.
	proj [][]float32
	// Version counts applied weight updates (RL steps); drafters use it to
	// detect staleness.
	Version int
}

// New creates an LM with deterministic random initialisation plus a light
// grammar prior (digits follow the answer marker, end-of-sequence follows
// an answer digit) so base models emit well-formed answers at a
// better-than-chance rate, as a pretrained base model would.
func New(cfg Config, grammar *GrammarPrior) *LM {
	if cfg.Vocab <= 0 || cfg.Buckets <= 0 {
		panic("model: invalid config")
	}
	if len(cfg.Orders)+len(cfg.PromptOrders) > maxFeatures {
		// The scoring hot paths stage features in fixed stack buffers of
		// this size; exceeding it would silently spill to the heap and
		// break the zero-allocation contract.
		panic("model: too many feature orders (raise maxFeatures)")
	}
	rows := 1 + (len(cfg.Orders)+len(cfg.PromptOrders))*cfg.Buckets
	m := &LM{cfg: cfg, table: NewTable(rows, cfg.Vocab)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m.table.Randomize(rng, cfg.InitScale)
	if cfg.PromptScale > 0 && cfg.PromptScale != 1 {
		// Attenuate prompt-combined rows (the trailing blocks).
		first := 1 + len(cfg.Orders)*cfg.Buckets
		for r := first; r < rows; r++ {
			row := m.table.Row(r)
			for v := range row {
				row[v] *= float32(cfg.PromptScale)
			}
		}
	}

	m.proj = make([][]float32, HiddenDim)
	projRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5deece66d))
	for d := range m.proj {
		row := make([]float32, cfg.Vocab)
		for v := range row {
			row[v] = float32(projRng.NormFloat64())
		}
		m.proj[d] = row
	}
	if grammar != nil {
		grammar.apply(m)
	}
	return m
}

// Config returns the model configuration.
func (m *LM) Config() Config { return m.cfg }

// Arch returns the cost-model architecture.
func (m *LM) Arch() gpu.Arch { return m.cfg.Arch }

// Clone deep-copies the model (used to freeze the GRPO reference model).
func (m *LM) Clone() *LM {
	c := &LM{cfg: m.cfg, table: m.table.Clone(), proj: m.proj, Version: m.Version}
	return c
}

// CopyWeightsFrom overwrites weights from another LM with the same config.
func (m *LM) CopyWeightsFrom(src *LM) {
	m.table.CopyFrom(src.table)
	m.Version = src.Version
}

// Table exposes the weight table (for checkpoint/size accounting).
func (m *LM) Table() *Table { return m.table }

// Features computes the active feature rows for a context. The returned
// slice is valid until the next call with the same dst.
func (m *LM) Features(ctx Context, dst []int) []int {
	return m.featuresHashed(ctx.Tokens, ctx.PromptHash(), dst)
}

// featuresHashed computes feature rows with a precomputed prompt hash, so
// batched scoring can share the hash across contexts with a common prompt.
func (m *LM) featuresHashed(tokens []int, promptHash uint64, dst []int) []int {
	dst = dst[:0]
	base := 1
	for _, k := range m.cfg.Orders {
		h := hashTokens(tail(tokens, k), uint64(k)*0x100000001b3)
		dst = append(dst, base+int(h%uint64(m.cfg.Buckets)))
		base += m.cfg.Buckets
	}
	for _, k := range m.cfg.PromptOrders {
		h := hashTokens(tail(tokens, k), uint64(k)*0x100000001b3) ^ promptHash
		dst = append(dst, base+int(h%uint64(m.cfg.Buckets)))
		base += m.cfg.Buckets
	}
	return dst
}

// Logits computes next-token logits for a context into dst (len Vocab).
// bias, if non-nil, is added to the named token ids; workload generators
// use it to impose per-request length priors (e.g. discouraging EOS for
// hard problems) without touching model weights.
func (m *LM) Logits(ctx Context, bias map[int]float32, dst []float32) {
	var featBuf [maxFeatures]int
	feats := m.Features(ctx, featBuf[:0])
	m.table.Accumulate(feats, dst)
	if len(bias) > 0 {
		// Apply in ascending id order: map iteration order would make
		// float32 accumulation (and thus sampling) nondeterministic.
		ids := make([]int, 0, len(bias))
		for id := range bias {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if id >= 0 && id < len(dst) {
				dst[id] += bias[id]
			}
		}
	}
}

// Probs computes the next-token distribution at the given temperature. It
// is a thin wrapper over ProbsScratch with a pooled scratch; engines with
// their own Scratch call ProbsScratch/ProbsBatch directly.
func (m *LM) Probs(ctx Context, bias map[int]float32, temp float64, dst []float32) {
	sc := scratchPool.Get().(*Scratch)
	m.ProbsScratch(ctx, bias, temp, dst, sc)
	scratchPool.Put(sc)
}

// Hidden computes the hidden-state sketch for a context: a fixed random
// projection of the (pre-softmax) logits squashed through tanh. Drafters
// consume this the way Eagle consumes target hidden states.
func (m *LM) Hidden(ctx Context, dst []float32) {
	sc := scratchPool.Get().(*Scratch)
	m.HiddenScratch(ctx, dst, sc)
	scratchPool.Put(sc)
}

// PolicyGradientStep applies one REINFORCE-style update for a single
// response: for every generated position, the gradient of log p(token)
// scaled by the advantage, with an optional per-token KL penalty toward
// the reference model. Returns the mean KL (estimated as in GRPO) for
// diagnostics.
func (m *LM) PolicyGradientStep(ctx Context, advantage float64, lr float64, temp float64, ref *LM, klCoef float64) float64 {
	tokens := ctx.Tokens
	promptLen := ctx.PromptLen
	if promptLen >= len(tokens) {
		return 0
	}
	probs := make([]float32, m.cfg.Vocab)
	refProbs := make([]float32, m.cfg.Vocab)
	grad := make([]float32, m.cfg.Vocab)
	var featBuf [maxFeatures]int
	var klSum float64
	var klN int
	for pos := promptLen; pos < len(tokens); pos++ {
		sub := Context{Tokens: tokens[:pos], PromptLen: promptLen}
		feats := m.Features(sub, featBuf[:0])
		logits := make([]float32, m.cfg.Vocab)
		m.table.Accumulate(feats, logits)
		Softmax(logits, temp, probs)
		tok := tokens[pos]

		// Policy-gradient term: A * (onehot - p).
		for v := range grad {
			grad[v] = -probs[v] * float32(advantage)
		}
		grad[tok] += float32(advantage)

		if ref != nil && klCoef > 0 {
			ref.Probs(sub, nil, temp, refProbs)
			// k3 estimator (Schulman): r - 1 - log r with r = ref/p at the
			// sampled token; gradient pulls p toward ref. r is clamped so
			// the diagnostic stays finite when the policy drifts far from
			// the reference at rare tokens.
			r := float64(refProbs[tok]) / (float64(probs[tok]) + 1e-9)
			if r > 1e3 {
				r = 1e3
			}
			kl := r - 1 - logSafe(r)
			klSum += kl
			klN++
			for v := range grad {
				grad[v] += float32(klCoef) * (refProbs[v] - probs[v])
			}
		}
		m.table.AddGrad(feats, grad, float32(lr))
	}
	m.Version++
	if klN == 0 {
		return 0
	}
	return klSum / float64(klN)
}

// LogProb returns the model log-probability of the generated suffix of a
// sequence at the given temperature (used by the GRPO inference stage).
func (m *LM) LogProb(ctx Context, temp float64) float64 {
	tokens := ctx.Tokens
	probs := make([]float32, m.cfg.Vocab)
	var lp float64
	for pos := ctx.PromptLen; pos < len(tokens); pos++ {
		sub := Context{Tokens: tokens[:pos], PromptLen: ctx.PromptLen}
		m.Probs(sub, nil, temp, probs)
		lp += logSafe(float64(probs[tokens[pos]]))
	}
	return lp
}

// GrammarPrior injects a light structural prior into a freshly initialised
// model, standing in for the base model's pretraining: answers are digit
// sequences terminated by EOS, and the answer marker is reachable.
type GrammarPrior struct {
	AnswerID int
	EosID    int
	DigitIDs []int
	// Strength is the logit boost applied to preferred continuations.
	Strength float32
}

func (g *GrammarPrior) apply(m *LM) {
	if g.Strength == 0 {
		g.Strength = 20
	}
	// After the answer marker, emit a digit. The order-1 feature row for
	// tail [<answer>] fires for any context ending in the marker,
	// regardless of prompt, so the rule transfers universally.
	row := m.table.Row(m.orderRow(1, []int{g.AnswerID}))
	for _, v := range g.DigitIDs {
		row[v] += g.Strength
	}
	// After <answer> digit, finish. Applied through the order-2 row so it
	// only fires in answer position, not after every digit in reasoning.
	for _, d := range g.DigitIDs {
		r := m.table.Row(m.orderRow(2, []int{g.AnswerID, d}))
		r[g.EosID] += g.Strength
	}
	// Give every context a mild global pull toward eventually answering,
	// via the bias row.
	bias := m.table.Row(0)
	bias[g.AnswerID] += 1.2
	bias[g.EosID] -= 1.5
}

// orderRow returns the table row index of the plain n-gram feature of
// order k with the given tail tokens. It panics if k is not a configured
// order.
func (m *LM) orderRow(k int, tailToks []int) int {
	base := 1
	for _, o := range m.cfg.Orders {
		if o == k {
			h := hashTokens(tailToks, uint64(k)*0x100000001b3)
			return base + int(h%uint64(m.cfg.Buckets))
		}
		base += m.cfg.Buckets
	}
	panic("model: order not configured")
}

func tail(ts []int, k int) []int {
	if len(ts) <= k {
		return ts
	}
	return ts[len(ts)-k:]
}

func hashTokens(ts []int, salt uint64) uint64 {
	h := salt ^ 14695981039346656037
	for _, t := range ts {
		h ^= uint64(uint32(t)) + 0x9e3779b9
		h *= 1099511628211
	}
	// Finalise to spread low bits.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func tanh32(x float32) float32 {
	if x > 5 {
		return 1
	}
	if x < -5 {
		return -1
	}
	e2 := math.Exp(float64(2 * x))
	return float32((e2 - 1) / (e2 + 1))
}

func logSafe(x float64) float64 {
	if x <= 0 {
		return -20
	}
	return math.Log(x)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = fmt.Sprintf
