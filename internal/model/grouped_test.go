package model

import (
	"math/rand"
	"testing"

	"fastrl/internal/gpu"
)

// TestProbsBatchGroupedMatchesPerGroup pins the bit-identity contract of
// grouped batch scoring: one ProbsBatchGrouped pass over rows from many
// sequences with per-sequence biases must emit exactly the float32 values
// of one ProbsBatch call per group.
func TestProbsBatchGroupedMatchesPerGroup(t *testing.T) {
	cfg := DefaultConfig(96, gpu.Qwen7B)
	cfg.Buckets = 1 << 8
	m := New(cfg, nil)
	rng := rand.New(rand.NewSource(7))

	mkCtx := func(promptLen, n int) []Context {
		prompt := make([]int, promptLen)
		for i := range prompt {
			prompt[i] = rng.Intn(cfg.Vocab)
		}
		ctxs := make([]Context, n)
		for i := range ctxs {
			seq := append([]int(nil), prompt...)
			for k := 0; k <= i; k++ {
				seq = append(seq, rng.Intn(cfg.Vocab))
			}
			ctxs[i] = Context{Tokens: seq, PromptLen: promptLen}
		}
		return ctxs
	}

	type grp struct {
		ctxs []Context
		bias map[int]float32
	}
	groupsIn := []grp{
		{ctxs: mkCtx(6, 4), bias: nil},
		{ctxs: mkCtx(9, 3), bias: map[int]float32{3: 2.5, 17: -1.25}},
		{ctxs: mkCtx(4, 1), bias: map[int]float32{90: 4}},
		{ctxs: mkCtx(7, 5), bias: nil},
	}

	var all []Context
	var groups []RowGroup
	for _, g := range groupsIn {
		all = append(all, g.ctxs...)
		groups = append(groups, RowGroup{N: len(g.ctxs), Bias: g.bias})
	}
	got := make([][]float32, len(all))
	for i := range got {
		got[i] = make([]float32, cfg.Vocab)
	}
	m.ProbsBatchGrouped(all, groups, 0.9, got, NewScratch())

	row := 0
	for gi, g := range groupsIn {
		want := make([][]float32, len(g.ctxs))
		for i := range want {
			want[i] = make([]float32, cfg.Vocab)
		}
		m.ProbsBatch(g.ctxs, g.bias, 0.9, want, NewScratch())
		for i := range want {
			for v := range want[i] {
				if got[row][v] != want[i][v] {
					t.Fatalf("group %d row %d token %d: grouped %v != per-group %v",
						gi, i, v, got[row][v], want[i][v])
				}
			}
			row++
		}
	}
}

// TestProbsBatchGroupedPartitionPanics pins the misuse guard: groups must
// partition the rows exactly.
func TestProbsBatchGroupedPartitionPanics(t *testing.T) {
	cfg := DefaultConfig(32, gpu.Qwen7B)
	cfg.Buckets = 1 << 6
	m := New(cfg, nil)
	ctxs := []Context{{Tokens: []int{1, 2, 3}, PromptLen: 3}}
	dst := [][]float32{make([]float32, cfg.Vocab)}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched groups did not panic")
		}
	}()
	m.ProbsBatchGrouped(ctxs, []RowGroup{{N: 2}}, 1, dst, nil)
}
