package model

import (
	"math/rand"
	"testing"

	"fastrl/internal/gpu"
	"fastrl/internal/tokenizer"
)

func benchLM(b *testing.B) (*LM, *tokenizer.Tokenizer, []int) {
	b.Helper()
	tk := tokenizer.New()
	cfg := DefaultConfig(tk.VocabSize(), gpu.Qwen7B)
	cfg.Buckets = 1 << 12
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	lm := New(cfg, &GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})
	ctx := []int{tk.Bos(), tk.Digit(3), tk.MustID("+"), tk.Digit(4), tk.MustID("="), tk.MustID("so")}
	return lm, tk, ctx
}

func BenchmarkLogits(b *testing.B) {
	lm, _, ctx := benchLM(b)
	dst := make([]float32, lm.Config().Vocab)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm.Logits(Context{Tokens: ctx, PromptLen: 5}, nil, dst)
	}
}

func BenchmarkProbsWithBias(b *testing.B) {
	lm, tk, ctx := benchLM(b)
	dst := make([]float32, lm.Config().Vocab)
	bias := map[int]float32{tk.Eos(): -4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm.Probs(Context{Tokens: ctx, PromptLen: 5}, bias, 0.9, dst)
	}
}

func BenchmarkHiddenSketch(b *testing.B) {
	lm, _, ctx := benchLM(b)
	dst := make([]float32, HiddenDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm.Hidden(Context{Tokens: ctx, PromptLen: 5}, dst)
	}
}

func BenchmarkPolicyGradientStep(b *testing.B) {
	lm, tk, _ := benchLM(b)
	rng := rand.New(rand.NewSource(1))
	prompt := []int{tk.Bos(), tk.Digit(3), tk.MustID("+"), tk.Digit(4), tk.MustID("=")}
	seq := Generate(lm, prompt, nil, 0.9, 64, tk.Eos(), rng)
	ctx := Context{Tokens: seq, PromptLen: len(prompt)}
	ref := lm.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm.PolicyGradientStep(ctx, 0.5, 0.05, 0.9, ref, 0.15)
	}
}

func BenchmarkGenerate64(b *testing.B) {
	lm, tk, _ := benchLM(b)
	rng := rand.New(rand.NewSource(1))
	prompt := []int{tk.Bos(), tk.Digit(3), tk.MustID("+"), tk.Digit(4), tk.MustID("=")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(lm, prompt, nil, 0.9, 64, tk.Eos(), rng)
	}
}

func BenchmarkTableAccumulate(b *testing.B) {
	tb := NewTable(1<<14, 97)
	feats := []int{3, 99, 2048, 8000, 16000}
	dst := make([]float32, 97)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Accumulate(feats, dst)
	}
}

func BenchmarkSoftmax(b *testing.B) {
	logits := make([]float32, 97)
	rng := rand.New(rand.NewSource(2))
	for i := range logits {
		logits[i] = float32(rng.NormFloat64() * 3)
	}
	probs := make([]float32, 97)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(logits, 0.9, probs)
	}
}
