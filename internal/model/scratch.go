package model

import "sync"

// Scratch holds reusable buffers for allocation-free scoring. Engines own
// one Scratch and thread it through every hot-path call so steady-state
// speculation rounds allocate nothing. A Scratch is not safe for
// concurrent use; each goroutine (speculation engine, serving replica)
// owns its own.
type Scratch struct {
	logits  []float32
	probs   []float32
	biasIDs []int
}

// NewScratch returns an empty scratch whose buffers grow lazily on first
// use and are reused afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// Logits returns the scratch logits buffer resized to n. Contents are
// undefined; callers overwrite it fully. The slice is invalidated by the
// next Logits call on the same scratch.
func (s *Scratch) Logits(n int) []float32 {
	if cap(s.logits) < n {
		s.logits = make([]float32, n)
	}
	return s.logits[:n]
}

// probsBuf returns a second float32 buffer (distinct from Logits) for
// callers that need a probability row alongside logits.
func (s *Scratch) probsBuf(n int) []float32 {
	if cap(s.probs) < n {
		s.probs = make([]float32, n)
	}
	return s.probs[:n]
}

// sortedBiasIDs collects the bias token ids in ascending order into the
// scratch. Ascending application keeps float32 accumulation (and thus
// sampling) deterministic regardless of map iteration order. Insertion
// sort avoids the boxing that sort.Ints would add on a 1-2 entry map.
func (s *Scratch) sortedBiasIDs(bias map[int]float32) []int {
	ids := s.biasIDs[:0]
	for id := range bias {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	s.biasIDs = ids
	return ids
}

// scratchPool backs the scratch-free convenience wrappers (Probs, Hidden,
// FusedHidden) so concurrent callers without an engine-owned scratch stay
// allocation-free in steady state.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// scoreInto computes one next-token distribution: hashed features with the
// precomputed prompt hash, table accumulation into logits, bias in
// ascending id order, softmax into dst. Every scoring path (Probs,
// ProbsScratch, ProbsBatch) funnels through this function, so batched and
// sequential scoring are bit-for-bit identical.
func (m *LM) scoreInto(tokens []int, promptHash uint64, biasIDs []int, bias map[int]float32, temp float64, dst, logits []float32) {
	var featBuf [maxFeatures]int
	feats := m.featuresHashed(tokens, promptHash, featBuf[:0])
	m.table.Accumulate(feats, logits)
	for _, id := range biasIDs {
		if id >= 0 && id < len(logits) {
			logits[id] += bias[id]
		}
	}
	Softmax(logits, temp, dst)
}

// ProbsScratch computes the next-token distribution like Probs, using
// caller-owned scratch so the call is allocation-free.
func (m *LM) ProbsScratch(ctx Context, bias map[int]float32, temp float64, dst []float32, sc *Scratch) {
	ids := sc.sortedBiasIDs(bias)
	logits := sc.Logits(m.cfg.Vocab)
	m.scoreInto(ctx.Tokens, ctx.PromptHash(), ids, bias, temp, dst, logits)
}

// ProbsBatch scores many contexts in one call, the batched analogue of the
// tree-verification forward pass: the bias id ordering is computed once,
// all rows share one scratch, and consecutive contexts with the same
// prompt prefix (the common case — every node of a speculation tree
// extends one prompt) share the prompt hash. dst[i] receives the
// distribution for ctxs[i]; every row must have length Vocab. Rows are
// scored with code identical to Probs, so one batched pass emits exactly
// the same float32 values as len(ctxs) sequential Probs calls.
//
// A nil sc borrows a pooled scratch, keeping the call allocation-free in
// steady state.
func (m *LM) ProbsBatch(ctxs []Context, bias map[int]float32, temp float64, dst [][]float32, sc *Scratch) {
	if len(ctxs) != len(dst) {
		panic("model: ProbsBatch rows/contexts length mismatch")
	}
	if sc == nil {
		pooled := scratchPool.Get().(*Scratch)
		defer scratchPool.Put(pooled)
		sc = pooled
	}
	ids := sc.sortedBiasIDs(bias)
	logits := sc.Logits(m.cfg.Vocab)
	var (
		phPrefix []int // previous row's prompt prefix
		havePH   bool
		ph       uint64
	)
	for i, ctx := range ctxs {
		prefix := ctx.Tokens[:min(ctx.PromptLen, len(ctx.Tokens))]
		if !havePH || !samePrompt(prefix, phPrefix) {
			ph = ctx.PromptHash()
			phPrefix, havePH = prefix, true
		}
		m.scoreInto(ctx.Tokens, ph, ids, bias, temp, dst[i], logits)
	}
}

// RowGroup describes one run of consecutive ProbsBatchGrouped rows that
// share a logit bias — in practice, the verification rows of one sequence
// in a multi-sequence speculation step. Per-sequence sampling parameters
// (the workload length prior) apply row-block-wise, exactly as a serving
// engine applies per-request logit processors to its slice of a batched
// forward's logits.
type RowGroup struct {
	// N is the number of consecutive rows in the group.
	N int
	// Bias is the logit bias shared by the group (nil for none).
	Bias map[int]float32
}

// ProbsBatchGrouped scores many contexts in one call like ProbsBatch, but
// with a per-group logit bias: groups partition the rows in order, and
// group g's bias applies to its g.N consecutive rows. Rows funnel through
// the same scoreInto as Probs/ProbsScratch/ProbsBatch, so one grouped
// pass emits exactly the float32 values of per-group ProbsBatch calls —
// the property that lets the batched cross-request verification pass of
// continuous batching stay bit-identical to per-request scoring.
//
// A nil sc borrows a pooled scratch, keeping the call allocation-free in
// steady state.
func (m *LM) ProbsBatchGrouped(ctxs []Context, groups []RowGroup, temp float64, dst [][]float32, sc *Scratch) {
	if len(ctxs) != len(dst) {
		panic("model: ProbsBatchGrouped rows/contexts length mismatch")
	}
	total := 0
	for _, g := range groups {
		total += g.N
	}
	if total != len(ctxs) {
		panic("model: ProbsBatchGrouped groups do not partition the rows")
	}
	if sc == nil {
		pooled := scratchPool.Get().(*Scratch)
		defer scratchPool.Put(pooled)
		sc = pooled
	}
	logits := sc.Logits(m.cfg.Vocab)
	var (
		phPrefix []int
		havePH   bool
		ph       uint64
	)
	off := 0
	for _, g := range groups {
		ids := sc.sortedBiasIDs(g.Bias)
		for i := off; i < off+g.N; i++ {
			ctx := ctxs[i]
			prefix := ctx.Tokens[:min(ctx.PromptLen, len(ctx.Tokens))]
			if !havePH || !samePrompt(prefix, phPrefix) {
				ph = ctx.PromptHash()
				phPrefix, havePH = prefix, true
			}
			m.scoreInto(ctx.Tokens, ph, ids, g.Bias, temp, dst[i], logits)
		}
		off += g.N
	}
}

// samePrompt reports whether two prompt prefixes are identical, sharing
// the fast path when they alias the same slice. Tree-verification rows
// live in per-node arena segments, so pointer identity alone would never
// fire there; an element compare is cheaper than re-hashing (prompts are
// short — the hash is over the prompt only, never the full context).
func samePrompt(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// HiddenScratch computes the hidden-state sketch like Hidden with
// caller-owned scratch, allocation-free.
func (m *LM) HiddenScratch(ctx Context, dst []float32, sc *Scratch) {
	if len(dst) != HiddenDim {
		panic("model: hidden buffer has wrong length")
	}
	logits := sc.Logits(m.cfg.Vocab)
	var featBuf [maxFeatures]int
	feats := m.featuresHashed(ctx.Tokens, ctx.PromptHash(), featBuf[:0])
	m.table.Accumulate(feats, logits)
	for d := 0; d < HiddenDim; d++ {
		row := m.proj[d][:len(logits)]
		// Four accumulator lanes break the dependent-FMA chain of the
		// projection dot product (the hidden sketch is computed once per
		// speculation round and was a visible slice of round time).
		var s0, s1, s2, s3 float32
		v := 0
		for ; v+4 <= len(logits); v += 4 {
			l := logits[v : v+4 : v+4]
			r := row[v : v+4 : v+4]
			s0 += r[0] * l[0]
			s1 += r[1] * l[1]
			s2 += r[2] * l[2]
			s3 += r[3] * l[3]
		}
		for ; v < len(logits); v++ {
			s0 += row[v] * logits[v]
		}
		dst[d] = tanh32((s0 + s1 + s2 + s3) / float32(m.cfg.Vocab))
	}
}
