package model

import (
	"math"
	"math/rand"
	"testing"

	"fastrl/internal/gpu"
)

func newAllocLM(t testing.TB) *LM {
	t.Helper()
	cfg := DefaultConfig(64, gpu.Qwen7B)
	cfg.Buckets = 1 << 10
	return New(cfg, nil)
}

// TestProbsScratchZeroAllocs: scoring with caller-owned scratch must not
// allocate — this is the contract the speculation engine's zero-alloc
// round is built on, with and without a logit bias.
func TestProbsScratchZeroAllocs(t *testing.T) {
	m := newAllocLM(t)
	sc := NewScratch()
	dst := make([]float32, m.Config().Vocab)
	ctx := Context{Tokens: []int{1, 2, 3, 4, 5}, PromptLen: 3}
	bias := map[int]float32{2: -1.5, 7: 2}
	m.ProbsScratch(ctx, bias, 0.9, dst, sc)
	allocs := testing.AllocsPerRun(200, func() {
		m.ProbsScratch(ctx, bias, 0.9, dst, sc)
	})
	if allocs != 0 {
		t.Errorf("ProbsScratch allocates %.1f objects/call, want 0", allocs)
	}
}

// TestProbsBatchZeroAllocs: a batched pass with scratch and caller-owned
// rows must not allocate.
func TestProbsBatchZeroAllocs(t *testing.T) {
	m := newAllocLM(t)
	sc := NewScratch()
	vocab := m.Config().Vocab
	const batch = 16
	ctxs := make([]Context, batch)
	rows := make([][]float32, batch)
	arena := make([]float32, batch*vocab)
	tokens := []int{1, 2, 3, 4, 5, 6, 7}
	for i := range ctxs {
		ctxs[i] = Context{Tokens: tokens[:3+i%5], PromptLen: 2}
		rows[i] = arena[i*vocab : (i+1)*vocab]
	}
	m.ProbsBatch(ctxs, nil, 0.9, rows, sc)
	allocs := testing.AllocsPerRun(200, func() {
		m.ProbsBatch(ctxs, nil, 0.9, rows, sc)
	})
	if allocs != 0 {
		t.Errorf("ProbsBatch allocates %.1f objects/call, want 0", allocs)
	}
}

// TestProbsBatchMatchesProbs: one batched pass must emit bit-identical
// rows to sequential Probs calls — the invariant that lets batched tree
// verification replace per-node calls without touching losslessness.
func TestProbsBatchMatchesProbs(t *testing.T) {
	m := newAllocLM(t)
	rng := rand.New(rand.NewSource(7))
	vocab := m.Config().Vocab
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		ctxs := make([]Context, n)
		rows := make([][]float32, n)
		for i := range ctxs {
			toks := make([]int, 2+rng.Intn(10))
			for j := range toks {
				toks[j] = rng.Intn(vocab)
			}
			ctxs[i] = Context{Tokens: toks, PromptLen: 1 + rng.Intn(len(toks))}
			rows[i] = make([]float32, vocab)
		}
		var bias map[int]float32
		if trial%2 == 0 {
			bias = map[int]float32{rng.Intn(vocab): float32(rng.NormFloat64())}
		}
		temp := 0.5 + rng.Float64()
		m.ProbsBatch(ctxs, bias, temp, rows, nil)
		want := make([]float32, vocab)
		for i, ctx := range ctxs {
			m.Probs(ctx, bias, temp, want)
			for v := range want {
				if rows[i][v] != want[v] {
					t.Fatalf("trial %d row %d token %d: batch %g != sequential %g",
						trial, i, v, rows[i][v], want[v])
				}
			}
		}
	}
}

// TestTopKIntoMatchesReference pins TopKInto's ordering (values
// descending, ties by ascending index) against the straightforward
// k-pass reference the codebase previously used.
func TestTopKIntoMatchesReference(t *testing.T) {
	refTopK := func(probs []float32, k int) []int {
		if k > len(probs) {
			k = len(probs)
		}
		idx := make([]int, 0, k)
		used := make([]bool, len(probs))
		for n := 0; n < k; n++ {
			best := -1
			for i, p := range probs {
				if used[i] {
					continue
				}
				if best < 0 || p > probs[best] {
					best = i
				}
			}
			if best < 0 {
				break
			}
			used[best] = true
			idx = append(idx, best)
		}
		return idx
	}
	rng := rand.New(rand.NewSource(9))
	buf := make([]int, 0, 16)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(40)
		probs := make([]float32, n)
		for i := range probs {
			// Coarse quantisation forces plenty of exact ties.
			probs[i] = float32(rng.Intn(6)) / 5
		}
		k := 1 + rng.Intn(12)
		want := refTopK(probs, k)
		got := TopKInto(probs, k, buf)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v (probs %v k=%d)", trial, got, want, probs, k)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v (probs %v k=%d)", trial, got, want, probs, k)
			}
		}
	}
}

// TestExpfAccuracy bounds the fast softmax exponential against the
// library exp over the range softmax feeds it (max-shifted, so x <= 0,
// plus a margin above zero for safety).
func TestExpfAccuracy(t *testing.T) {
	for x := float32(-90); x <= 5; x += 0.0137 {
		got := float64(expf(x))
		want := math.Exp(float64(x))
		if want < 1e-30 {
			if got > 1e-25 {
				t.Fatalf("expf(%g) = %g, want ~0", x, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 5e-7 {
			t.Fatalf("expf(%g) = %g, want %g (rel err %.2e)", x, got, want, rel)
		}
	}
	// Top of the finite float32 range: exp(x) stays finite and accurate up
	// to ln(MaxFloat32) ~ 88.72 (the 2^128 scale must be split), and
	// overflows cleanly to +Inf beyond.
	for x := float32(88.0); x <= 88.72; x += 0.0113 {
		got := float64(expf(x))
		want := math.Exp(float64(x))
		if math.IsInf(got, 1) {
			t.Fatalf("expf(%g) overflowed to +Inf, want %g", x, want)
		}
		if rel := math.Abs(got-want) / want; rel > 5e-7 {
			t.Fatalf("expf(%g) = %g, want %g (rel err %.2e)", x, got, want, rel)
		}
	}
	if got := expf(89); !math.IsInf(float64(got), 1) {
		t.Fatalf("expf(89) = %g, want +Inf", got)
	}
}
