package model

// NumRankTokens is how many of the target's top-ranked next tokens are
// exposed in the hidden state sketch.
const NumRankTokens = 4

// HiddenState is the target-internal information exposed to Eagle-style
// drafters at the drafting root, standing in for the transformer hidden
// state Eagle conditions on. A real hidden state determines the target's
// next-token distribution exactly (it is the LM-head input); the sketch
// preserves that property approximately via (a) a fixed random projection
// of the logits and (b) the identities of the top-ranked next tokens.
type HiddenState struct {
	// Sketch is one or more concatenated HiddenDim-sized projections
	// (sketch s covers the context with its last s tokens removed,
	// mirroring Eagle-3's multi-layer fusion).
	Sketch []float32
	// TopTokens are the target's NumRankTokens most likely next tokens at
	// the root context, most likely first.
	TopTokens []int
}

// FusedHidden computes the drafting-root hidden state with the given
// number of fused sketches (Eagle uses 1, Eagle-3 2; callers typically
// request 2 so either drafter can consume it).
func FusedHidden(m *LM, ctx Context, sketches int) *HiddenState {
	sc := scratchPool.Get().(*Scratch)
	h := FusedHiddenInto(m, ctx, sketches, &HiddenState{}, sc)
	scratchPool.Put(sc)
	return h
}

// FusedHiddenInto is FusedHidden writing into h, reusing its Sketch and
// TopTokens buffers so a speculation engine computes the drafting-root
// state every round without allocating.
func FusedHiddenInto(m *LM, ctx Context, sketches int, h *HiddenState, sc *Scratch) *HiddenState {
	if sketches < 1 {
		sketches = 1
	}
	need := sketches * HiddenDim
	if cap(h.Sketch) < need {
		h.Sketch = make([]float32, need)
	}
	h.Sketch = h.Sketch[:need]
	for i := range h.Sketch {
		h.Sketch[i] = 0
	}
	for s := 0; s < sketches; s++ {
		n := len(ctx.Tokens) - s
		if n < 0 {
			break
		}
		sub := Context{Tokens: ctx.Tokens[:n], PromptLen: ctx.PromptLen}
		m.HiddenScratch(sub, h.Sketch[s*HiddenDim:(s+1)*HiddenDim], sc)
	}
	probs := sc.probsBuf(m.cfg.Vocab)
	m.ProbsScratch(ctx, nil, 1, probs, sc)
	h.TopTokens = TopKInto(probs, NumRankTokens, h.TopTokens[:0])
	return h
}
