package model

import "math/rand"

// Generate autoregressively samples a continuation of prompt until eos is
// produced or maxNew tokens have been generated, returning the full
// sequence (prompt + generated). bias is the optional per-token logit
// bias; temp the sampling temperature (0 = greedy). Generation is the
// reference (non-speculative) decode path; speculative decoding must be
// distributionally indistinguishable from it.
func Generate(m *LM, prompt []int, bias map[int]float32, temp float64, maxNew int, eos int, rng *rand.Rand) []int {
	tokens := append([]int(nil), prompt...)
	probs := make([]float32, m.Config().Vocab)
	for n := 0; n < maxNew; n++ {
		m.Probs(Context{Tokens: tokens, PromptLen: len(prompt)}, bias, temp, probs)
		tok := SampleProbs(probs, rng)
		tokens = append(tokens, tok)
		if eos >= 0 && tok == eos {
			break
		}
	}
	return tokens
}
