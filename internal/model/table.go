// Package model implements the simulated target language model.
//
// The target LM is a featurised softmax model: hashed n-gram context
// features (plus prompt-conditioned features standing in for attention to
// the prompt) index rows of a weight table whose sum gives next-token
// logits. The model is small enough to train by SGD inside tests, yet has
// the properties the paper's system dynamics depend on: a genuine
// probability distribution per step, genuine distribution shift under RL
// policy-gradient updates, and an internal "hidden state" that Eagle-style
// drafters can condition on.
package model

import (
	"fmt"
	"math"
	"math/rand"
)

// Table is a dense weight matrix of feature rows over the vocabulary with
// the row operations needed for inference and SGD. Row 0 is reserved as
// the bias row and is always active.
type Table struct {
	Vocab int
	Rows  int
	w     []float32 // Rows*Vocab, row-major
}

// NewTable allocates a zeroed table.
func NewTable(rows, vocab int) *Table {
	if rows < 1 || vocab < 1 {
		panic(fmt.Sprintf("model: invalid table shape %dx%d", rows, vocab))
	}
	return &Table{Vocab: vocab, Rows: rows, w: make([]float32, rows*vocab)}
}

// Randomize fills the table with Gaussian noise of the given scale. Larger
// scales yield more peaked (lower-entropy) next-token distributions.
func (t *Table) Randomize(rng *rand.Rand, scale float64) {
	for i := range t.w {
		t.w[i] = float32(rng.NormFloat64() * scale)
	}
}

// Row returns a mutable view of row r.
func (t *Table) Row(r int) []float32 {
	return t.w[r*t.Vocab : (r+1)*t.Vocab]
}

// Accumulate adds the given feature rows (plus the bias row 0) into dst,
// which must have length Vocab. dst is zeroed first. The add loop is
// unrolled four-wide: row accumulation is the inner loop of every forward
// pass and the independent lanes break the dependent-add chain.
func (t *Table) Accumulate(features []int, dst []float32) {
	if len(dst) != t.Vocab {
		panic("model: logits buffer has wrong length")
	}
	copy(dst, t.Row(0))
	for _, f := range features {
		row := t.Row(f)[:len(dst)]
		v := 0
		for ; v+4 <= len(dst); v += 4 {
			d := dst[v : v+4 : v+4]
			r := row[v : v+4 : v+4]
			d[0] += r[0]
			d[1] += r[1]
			d[2] += r[2]
			d[3] += r[3]
		}
		for ; v < len(dst); v++ {
			dst[v] += row[v]
		}
	}
}

// AddGrad applies dst-row updates: for every active feature row (and the
// bias row), w[f][v] += lr * grad[v].
func (t *Table) AddGrad(features []int, grad []float32, lr float32) {
	apply := func(r int) {
		row := t.Row(r)
		for v := range row {
			row[v] += lr * grad[v]
		}
	}
	apply(0)
	for _, f := range features {
		apply(f)
	}
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	c := NewTable(t.Rows, t.Vocab)
	copy(c.w, t.w)
	return c
}

// CopyFrom overwrites this table's weights from src (shapes must match).
func (t *Table) CopyFrom(src *Table) {
	if t.Rows != src.Rows || t.Vocab != src.Vocab {
		panic("model: table shape mismatch in CopyFrom")
	}
	copy(t.w, src.w)
}

// Weights exposes the raw weight slice (for checkpointing).
func (t *Table) Weights() []float32 { return t.w }

// L2Distance returns the Euclidean distance between two same-shaped
// tables, a cheap drift measure between model versions.
func (t *Table) L2Distance(o *Table) float64 {
	if t.Rows != o.Rows || t.Vocab != o.Vocab {
		panic("model: table shape mismatch in L2Distance")
	}
	var s float64
	for i := range t.w {
		d := float64(t.w[i] - o.w[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// Softmax writes softmax(logits/temp) into probs. A temperature of zero
// (or below) produces a one-hot argmax distribution, matching greedy
// decoding semantics.
func Softmax(logits []float32, temp float64, probs []float32) {
	if len(probs) != len(logits) {
		panic("model: probs buffer has wrong length")
	}
	if temp <= 0 {
		best := 0
		for i, l := range logits {
			if l > logits[best] {
				best = i
			}
		}
		for i := range probs {
			probs[i] = 0
		}
		probs[best] = 1
		return
	}
	maxL := logits[0]
	for _, l := range logits[1:] {
		if l > maxL {
			maxL = l
		}
	}
	invTemp := float32(1 / temp)
	// Two accumulator lanes: exp values are positive and bounded by 1
	// (max-shifted), so float32 summation over a vocabulary is exact to
	// ~1e-6 relative, and the split lanes overlap expf latency.
	var sum0, sum1 float32
	i := 0
	for ; i+2 <= len(logits); i += 2 {
		e0 := expf((logits[i] - maxL) * invTemp)
		e1 := expf((logits[i+1] - maxL) * invTemp)
		probs[i] = e0
		probs[i+1] = e1
		sum0 += e0
		sum1 += e1
	}
	if i < len(logits) {
		e := expf((logits[i] - maxL) * invTemp)
		probs[i] = e
		sum0 += e
	}
	inv := 1 / (sum0 + sum1)
	for i := range probs {
		probs[i] *= inv
	}
}

// expf is a fast float32 e^x (cephes-style degree-5 minimax after
// range reduction, relative error ~2e-7). Softmax is the single hottest
// function in a speculation round — every drafted node and every verified
// tree position pays one softmax over the vocabulary — and the float64
// library exp was a large fraction of its cost. Inputs here are max-shifted
// (x <= 0), but the full float32 range is handled.
func expf(x float32) float32 {
	const (
		log2e = 1.44269504088896341
		ln2Hi = 6.93359375e-1
		ln2Lo = -2.12194440e-4
	)
	if x < -87.3 {
		return 0
	}
	if x > 88.73 { // just above ln(MaxFloat32); below it the split scale stays finite
		return float32(math.Inf(1))
	}
	// n = round(x/ln2); r = x - n*ln2 in [-ln2/2, ln2/2].
	z := x * log2e
	var n int32
	if z >= 0 {
		n = int32(z + 0.5)
	} else {
		n = int32(z - 0.5)
	}
	fn := float32(n)
	r := x - fn*ln2Hi
	r -= fn * ln2Lo
	// exp(r) ~ 1 + r + r^2*P(r).
	p := float32(1.9875691500e-4)
	p = p*r + 1.3981999507e-3
	p = p*r + 8.3334519073e-3
	p = p*r + 4.1665795894e-2
	p = p*r + 1.6666665459e-1
	p = p*r + 5.0000001201e-1
	y := p*r*r + r + 1
	// Scale by 2^n via the exponent bits; n in [-126, 128] after clamps.
	// The extremes are split into two factors: a single 2^128 (or a
	// subnormal 2^n) is not representable even when the product is.
	if n >= 128 {
		return y * math.Float32frombits(uint32(64+127)<<23) *
			math.Float32frombits(uint32(n-64+127)<<23)
	}
	if n <= -127 {
		return y * math.Float32frombits(uint32(-63+127)<<23) *
			math.Float32frombits(uint32(n+63+127)<<23)
	}
	return y * math.Float32frombits(uint32(n+127)<<23)
}

// SampleProbs draws a token index from a probability vector.
func SampleProbs(probs []float32, rng *rand.Rand) int {
	u := rng.Float64()
	var cum float64
	for i, p := range probs {
		cum += float64(p)
		if u < cum {
			return i
		}
	}
	return len(probs) - 1
}

// Argmax returns the index of the largest probability.
func Argmax(probs []float32) int {
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best
}

// TopK returns the indices of the k largest entries, descending (ties
// broken by ascending index). k is clamped to len(probs).
func TopK(probs []float32, k int) []int {
	if k > len(probs) {
		k = len(probs)
	}
	return TopKInto(probs, k, make([]int, 0, k))
}

// TopKInto is TopK writing into dst (reset to dst[:0]), allocation-free
// once dst has capacity k. It keeps TopK's exact ordering — values
// descending, ties by ascending index — via a single scan with an
// insertion buffer: most entries fail the cheap "beats the current k-th"
// test, so the common cost is one compare per vocabulary entry instead of
// the k full passes the old implementation made.
func TopKInto(probs []float32, k int, dst []int) []int {
	if k > len(probs) {
		k = len(probs)
	}
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	for i, p := range probs {
		if len(dst) == k {
			if p <= probs[dst[k-1]] {
				continue
			}
			dst = dst[:k-1]
		}
		// Insert i keeping descending order; equal values keep the
		// earlier index first, matching the historical tie-break.
		j := len(dst)
		dst = append(dst, i)
		for j > 0 && probs[dst[j-1]] < p {
			dst[j] = dst[j-1]
			j--
		}
		dst[j] = i
	}
	return dst
}
