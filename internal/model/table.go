// Package model implements the simulated target language model.
//
// The target LM is a featurised softmax model: hashed n-gram context
// features (plus prompt-conditioned features standing in for attention to
// the prompt) index rows of a weight table whose sum gives next-token
// logits. The model is small enough to train by SGD inside tests, yet has
// the properties the paper's system dynamics depend on: a genuine
// probability distribution per step, genuine distribution shift under RL
// policy-gradient updates, and an internal "hidden state" that Eagle-style
// drafters can condition on.
package model

import (
	"fmt"
	"math"
	"math/rand"
)

// Table is a dense weight matrix of feature rows over the vocabulary with
// the row operations needed for inference and SGD. Row 0 is reserved as
// the bias row and is always active.
type Table struct {
	Vocab int
	Rows  int
	w     []float32 // Rows*Vocab, row-major
}

// NewTable allocates a zeroed table.
func NewTable(rows, vocab int) *Table {
	if rows < 1 || vocab < 1 {
		panic(fmt.Sprintf("model: invalid table shape %dx%d", rows, vocab))
	}
	return &Table{Vocab: vocab, Rows: rows, w: make([]float32, rows*vocab)}
}

// Randomize fills the table with Gaussian noise of the given scale. Larger
// scales yield more peaked (lower-entropy) next-token distributions.
func (t *Table) Randomize(rng *rand.Rand, scale float64) {
	for i := range t.w {
		t.w[i] = float32(rng.NormFloat64() * scale)
	}
}

// Row returns a mutable view of row r.
func (t *Table) Row(r int) []float32 {
	return t.w[r*t.Vocab : (r+1)*t.Vocab]
}

// Accumulate adds the given feature rows (plus the bias row 0) into dst,
// which must have length Vocab. dst is zeroed first.
func (t *Table) Accumulate(features []int, dst []float32) {
	if len(dst) != t.Vocab {
		panic("model: logits buffer has wrong length")
	}
	copy(dst, t.Row(0))
	for _, f := range features {
		row := t.Row(f)
		for v := range dst {
			dst[v] += row[v]
		}
	}
}

// AddGrad applies dst-row updates: for every active feature row (and the
// bias row), w[f][v] += lr * grad[v].
func (t *Table) AddGrad(features []int, grad []float32, lr float32) {
	apply := func(r int) {
		row := t.Row(r)
		for v := range row {
			row[v] += lr * grad[v]
		}
	}
	apply(0)
	for _, f := range features {
		apply(f)
	}
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	c := NewTable(t.Rows, t.Vocab)
	copy(c.w, t.w)
	return c
}

// CopyFrom overwrites this table's weights from src (shapes must match).
func (t *Table) CopyFrom(src *Table) {
	if t.Rows != src.Rows || t.Vocab != src.Vocab {
		panic("model: table shape mismatch in CopyFrom")
	}
	copy(t.w, src.w)
}

// Weights exposes the raw weight slice (for checkpointing).
func (t *Table) Weights() []float32 { return t.w }

// L2Distance returns the Euclidean distance between two same-shaped
// tables, a cheap drift measure between model versions.
func (t *Table) L2Distance(o *Table) float64 {
	if t.Rows != o.Rows || t.Vocab != o.Vocab {
		panic("model: table shape mismatch in L2Distance")
	}
	var s float64
	for i := range t.w {
		d := float64(t.w[i] - o.w[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// Softmax writes softmax(logits/temp) into probs. A temperature of zero
// (or below) produces a one-hot argmax distribution, matching greedy
// decoding semantics.
func Softmax(logits []float32, temp float64, probs []float32) {
	if len(probs) != len(logits) {
		panic("model: probs buffer has wrong length")
	}
	if temp <= 0 {
		best := 0
		for i, l := range logits {
			if l > logits[best] {
				best = i
			}
		}
		for i := range probs {
			probs[i] = 0
		}
		probs[best] = 1
		return
	}
	maxL := logits[0]
	for _, l := range logits[1:] {
		if l > maxL {
			maxL = l
		}
	}
	var sum float64
	for i, l := range logits {
		e := math.Exp(float64(l-maxL) / temp)
		probs[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range probs {
		probs[i] *= inv
	}
}

// SampleProbs draws a token index from a probability vector.
func SampleProbs(probs []float32, rng *rand.Rand) int {
	u := rng.Float64()
	var cum float64
	for i, p := range probs {
		cum += float64(p)
		if u < cum {
			return i
		}
	}
	return len(probs) - 1
}

// Argmax returns the index of the largest probability.
func Argmax(probs []float32) int {
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best
}

// TopK returns the indices of the k largest entries, descending. k is
// clamped to len(probs).
func TopK(probs []float32, k int) []int {
	if k > len(probs) {
		k = len(probs)
	}
	idx := make([]int, 0, k)
	used := make([]bool, len(probs))
	for n := 0; n < k; n++ {
		best := -1
		for i, p := range probs {
			if used[i] {
				continue
			}
			if best < 0 || p > probs[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		idx = append(idx, best)
	}
	return idx
}
